//! # csb
//!
//! Facade crate for the Cyber-Security Benchmark (CSB) data-generation suite:
//! a Rust reproduction of *"A Comparison of Graph-Based Synthetic Data
//! Generators for Benchmarking Next-Generation Intrusion Detection Systems"*
//! (IEEE CLUSTER 2017).
//!
//! Re-exports the workspace crates under stable names:
//!
//! * [`stats`] — distributions, sampling, veracity metrics.
//! * [`net`] — packets, PCAP, NetFlow, traffic simulation, attacks.
//! * [`graph`] — the directed property multigraph and analytics kernels.
//! * [`engine`] — the mini map-reduce engine and simulated cluster.
//! * [`gen`] — the PGPBA and PGSK generators (the paper's contribution).
//! * [`ids`] — the NetFlow anomaly-detection approach of paper Section IV.
//! * [`models`] — baseline random-graph models (ER, WS, BA, CL, SBM, R-MAT,
//!   BTER) for comparison.
//! * [`workloads`] — the benchmark's query workloads (node / edge / path /
//!   sub-graph).
//! * [`store`] — the chunked columnar binary store for graphs and flows,
//!   with streaming sinks and the spill primitives the engine shuffles use.
//! * [`obs`] — zero-dependency spans, metrics, and trace/metrics exporters.

pub use csb_core as gen;
pub use csb_engine as engine;
pub use csb_graph as graph;
pub use csb_ids as ids;
pub use csb_models as models;
pub use csb_net as net;
pub use csb_obs as obs;
pub use csb_stats as stats;
pub use csb_store as store;
pub use csb_workloads as workloads;
