//! Integration test: the Section IV detector catches attacks injected into
//! realistic background traffic, end-to-end through the property-graph.

use csb::ids::{detect, evaluate, train_thresholds};
use csb::net::assembler::FlowAssembler;
use csb::net::packet::ip;
use csb::net::trace::AttackKind;
use csb::net::traffic::attacks::AttackInjector;
use csb::net::traffic::sim::{TrafficSim, TrafficSimConfig};

#[test]
fn detects_attacks_in_background_traffic() {
    // Train on benign traffic.
    let train = TrafficSim::new(TrafficSimConfig {
        duration_secs: 40.0,
        sessions_per_sec: 20.0,
        seed: 50,
        ..TrafficSimConfig::default()
    })
    .generate();
    let thresholds = train_thresholds(&FlowAssembler::assemble(&train.packets));

    // Fresh benign capture + attacks.
    let sim = TrafficSim::new(TrafficSimConfig {
        duration_secs: 40.0,
        sessions_per_sec: 20.0,
        seed: 60,
        ..TrafficSimConfig::default()
    });
    let mut trace = sim.generate();
    let servers = sim.topology().servers().to_vec();
    let attacker = ip(198, 51, 100, 66);
    let mut inj = AttackInjector::new(1);
    trace.merge(inj.syn_flood(attacker, servers[0], 80, 1_000_000, 3_000_000, 20_000));
    trace.merge(inj.host_scan(attacker, servers[1], 10_000_000, 3_000_000, 400, 100));
    trace.merge(inj.network_scan(attacker, ip(10, 9, 0, 1), 200, 22, 20_000_000, 3_000_000));
    trace.sort();

    // Detect through the property-graph representation.
    let flows = FlowAssembler::assemble(&trace.packets);
    let graph = csb::graph::graph_from_flows(&flows);
    let graph_flows = csb::ids::pattern::flows_from_graph(&graph);
    let detections = detect(&graph_flows, &thresholds);

    // All three attack kinds found at the right hosts.
    assert!(detections.iter().any(|d| d.kind == AttackKind::SynFlood && d.ip == servers[0]));
    assert!(detections.iter().any(|d| d.kind == AttackKind::HostScan && d.ip == servers[1]));
    assert!(detections.iter().any(|d| d.kind == AttackKind::NetworkScan && d.ip == attacker));

    // Reasonable aggregate quality: perfect recall, few false alarms.
    let report = evaluate(&detections, &trace.labels);
    assert_eq!(report.false_negatives, 0, "missed attacks: {detections:?}");
    assert!(report.precision() >= 0.5, "precision {}", report.precision());
}

#[test]
fn benign_only_capture_raises_few_alarms() {
    let train = TrafficSim::new(TrafficSimConfig {
        duration_secs: 40.0,
        sessions_per_sec: 20.0,
        seed: 70,
        ..TrafficSimConfig::default()
    })
    .generate();
    let thresholds = train_thresholds(&FlowAssembler::assemble(&train.packets));

    let test = TrafficSim::new(TrafficSimConfig {
        duration_secs: 40.0,
        sessions_per_sec: 20.0,
        seed: 71,
        ..TrafficSimConfig::default()
    })
    .generate();
    let flows = FlowAssembler::assemble(&test.packets);
    let detections = detect(&flows, &thresholds);
    assert!(detections.len() <= 2, "too many false alarms: {detections:?}");
}
