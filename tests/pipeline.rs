//! Cross-crate integration tests: the full paper pipeline end-to-end —
//! trace simulation -> PCAP round trip -> flow assembly -> seed graph ->
//! generation -> veracity.

use csb::gen::{
    pgpba, pgsk, seed_from_packets, seed_from_trace, PgpbaConfig, PgskConfig, VeracityJob,
};
use csb::graph::NetflowGraph;
use csb::net::pcap::{read_pcap, write_pcap};
use csb::net::traffic::sim::{TrafficSim, TrafficSimConfig};

/// The default job scores (degree, pagerank), extracted by metric name.
fn veracity(seed: &NetflowGraph, synth: &NetflowGraph) -> (f64, f64) {
    let report =
        VeracityJob::new().seed_graph(seed).synthetic_graph(synth).run().expect("veracity");
    (report.score("degree").expect("degree"), report.score("pagerank").expect("pagerank"))
}

fn degree_veracity(seed: &NetflowGraph, synth: &NetflowGraph) -> f64 {
    veracity(seed, synth).0
}

fn trace(seed: u64) -> csb::net::Trace {
    TrafficSim::new(TrafficSimConfig {
        duration_secs: 20.0,
        sessions_per_sec: 25.0,
        seed,
        ..TrafficSimConfig::default()
    })
    .generate()
}

#[test]
fn full_pipeline_pgpba() {
    let trace = trace(1);
    // PCAP round trip in the middle of the pipeline, as a real user would.
    let mut bytes = Vec::new();
    write_pcap(&mut bytes, &trace.packets).expect("write pcap");
    let packets = read_pcap(&bytes[..]).expect("read pcap");
    let seed = seed_from_packets(&packets);
    assert!(seed.edge_count() > 100);

    let target = seed.edge_count() as u64 * 10;
    let g = pgpba(&seed, &PgpbaConfig { desired_size: target, fraction: 0.2, seed: 2 });
    assert!(g.edge_count() as u64 >= target);

    let (degree, pagerank) = veracity(&seed.graph, &g);
    assert!(degree.is_finite() && degree < 0.01, "degree veracity {degree}");
    assert!(pagerank.is_finite() && pagerank < degree);
}

#[test]
fn full_pipeline_pgsk() {
    let seed = seed_from_trace(&trace(2));
    let target = seed.edge_count() as u64 * 4;
    let g = pgsk(
        &seed,
        &PgskConfig {
            desired_size: target,
            seed: 3,
            kronfit_iterations: 8,
            kronfit_permutation_samples: 200,
        },
    );
    assert!(g.edge_count() as u64 >= target / 2);
    let (degree, _) = veracity(&seed.graph, &g);
    assert!(degree < 0.05, "degree veracity {degree}");
}

#[test]
fn veracity_decreases_with_size_for_both_generators() {
    // The headline trend of paper Figs. 6-7, checked end-to-end.
    let seed = seed_from_trace(&trace(3));
    let e0 = seed.edge_count() as u64;

    // The decay is a trend (paper Fig. 6 has local noise too): compare the
    // ends of a wide size range.
    let ba_scores: Vec<f64> = [2u64, 16, 128]
        .iter()
        .map(|&m| {
            let g = pgpba(&seed, &PgpbaConfig { desired_size: e0 * m, fraction: 0.1, seed: 4 });
            degree_veracity(&seed.graph, &g)
        })
        .collect();
    assert!(
        ba_scores[0] > ba_scores[2] && ba_scores[2] < ba_scores[0] * 0.7,
        "PGPBA scores not decreasing: {ba_scores:?}"
    );

    let sk_scores: Vec<f64> = [1u64, 4, 16]
        .iter()
        .map(|&m| {
            let g = pgsk(
                &seed,
                &PgskConfig {
                    desired_size: e0 * m,
                    seed: 5,
                    kronfit_iterations: 6,
                    kronfit_permutation_samples: 100,
                },
            );
            degree_veracity(&seed.graph, &g)
        })
        .collect();
    assert!(sk_scores[0] > sk_scores[2], "PGSK scores not decreasing overall: {sk_scores:?}");
}

#[test]
fn generated_attributes_come_from_seed_support() {
    // Every synthetic DEST_PORT / PROTOCOL value must exist in the seed:
    // the generators sample empirical distributions, never invent values.
    let seed = seed_from_trace(&trace(4));
    let g = pgpba(
        &seed,
        &PgpbaConfig { desired_size: seed.edge_count() as u64 * 4, fraction: 0.3, seed: 6 },
    );
    let seed_ports: std::collections::HashSet<u16> =
        seed.graph.edge_data().iter().map(|p| p.dst_port).collect();
    let seed_protocols: std::collections::HashSet<_> =
        seed.graph.edge_data().iter().map(|p| p.protocol).collect();
    for p in g.edge_data() {
        assert!(seed_ports.contains(&p.dst_port), "invented port {}", p.dst_port);
        assert!(seed_protocols.contains(&p.protocol), "invented protocol {:?}", p.protocol);
    }
}
