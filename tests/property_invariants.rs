//! Workspace-level property-based tests (proptest) on the core invariants
//! that span crates.

use csb::graph::algo::pagerank::{pagerank, PageRankConfig};
use csb::graph::graph::{PropertyGraph, VertexId};
use csb::graph::Csr;
use csb::net::assembler::FlowAssembler;
use csb::net::packet::{Packet, TcpFlags};
use csb::stats::veracity::{average_euclidean_distance, NormalizedDistribution};
use csb::stats::EmpiricalDistribution;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// CSR round trip: degrees computed via CSR equal edge-list degrees for
    /// arbitrary multigraphs.
    #[test]
    fn csr_degrees_match_edge_list(edges in prop::collection::vec((0u32..50, 0u32..50), 0..400)) {
        let mut g: PropertyGraph<(), ()> = PropertyGraph::new();
        for _ in 0..50 {
            g.add_vertex(());
        }
        for &(s, d) in &edges {
            g.add_edge(VertexId(s), VertexId(d), ());
        }
        let out = Csr::out_of(&g);
        let inn = Csr::in_of(&g);
        let od = g.out_degrees();
        let id = g.in_degrees();
        for v in 0..50u32 {
            prop_assert_eq!(out.degree(VertexId(v)) as u64, od[v as usize]);
            prop_assert_eq!(inn.degree(VertexId(v)) as u64, id[v as usize]);
        }
        prop_assert_eq!(out.edge_count(), edges.len());
    }

    /// PageRank sums to 1 on arbitrary non-empty graphs.
    #[test]
    fn pagerank_is_a_distribution(edges in prop::collection::vec((0u32..30, 0u32..30), 1..200)) {
        let mut g: PropertyGraph<(), ()> = PropertyGraph::new();
        for _ in 0..30 {
            g.add_vertex(());
        }
        for &(s, d) in &edges {
            g.add_edge(VertexId(s), VertexId(d), ());
        }
        let pr = pagerank(&g, &PageRankConfig::default());
        let sum: f64 = pr.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-6, "sum {}", sum);
        prop_assert!(pr.iter().all(|&r| r > 0.0));
    }

    /// The flow assembler conserves packets and bytes.
    #[test]
    fn assembler_conserves_packets_and_bytes(
        specs in prop::collection::vec((0u32..5, 0u32..5, 1024u16..1030, 0u32..2000), 1..100)
    ) {
        let mut packets = Vec::new();
        for (i, &(s, d, port, len)) in specs.iter().enumerate() {
            if s != d {
                packets.push(Packet::udp(i as u64 * 1000, s + 1, port, d + 1, 53, len));
            }
        }
        let total_bytes: u64 = packets.iter().map(|p| p.payload_len as u64).sum();
        let n = packets.len() as u64;
        let flows = FlowAssembler::assemble(&packets);
        prop_assert_eq!(flows.iter().map(|f| f.total_pkts()).sum::<u64>(), n);
        prop_assert_eq!(flows.iter().map(|f| f.total_bytes()).sum::<u64>(), total_bytes);
    }

    /// TCP flows never report more SYN packets than packets.
    #[test]
    fn syn_count_bounded(count in 1usize..40) {
        let mut packets = Vec::new();
        for i in 0..count {
            packets.push(Packet::tcp(i as u64 * 100, 1, 1000 + i as u16, 2, 80, TcpFlags::SYN, 0));
        }
        let flows = FlowAssembler::assemble(&packets);
        for f in &flows {
            prop_assert!(u64::from(f.syn_count) <= f.total_pkts());
        }
    }

    /// Veracity score properties: symmetric-zero on self, non-negative,
    /// scale-invariant.
    #[test]
    fn veracity_score_properties(values in prop::collection::vec(0u64..10_000, 1..300), k in 1u64..50) {
        let a = NormalizedDistribution::from_u64(&values);
        prop_assert_eq!(average_euclidean_distance(&a, &a), 0.0);
        let scaled: Vec<u64> = values.iter().map(|&v| v * k).collect();
        let b = NormalizedDistribution::from_u64(&scaled);
        prop_assert!(average_euclidean_distance(&a, &b) < 1e-12);
    }

    /// Empirical distributions only ever emit values from their support.
    #[test]
    fn empirical_sampling_stays_in_support(
        values in prop::collection::vec(0u64..1000, 1..50),
        seed in 0u64..1000
    ) {
        let dist = EmpiricalDistribution::from_samples(values.iter().copied());
        let support: std::collections::HashSet<u64> = values.into_iter().collect();
        let mut rng = csb::stats::rng::rng_for(seed, 0);
        for _ in 0..100 {
            prop_assert!(support.contains(&dist.sample(&mut rng)));
        }
    }
}
