//! Integration tests across the on-disk formats: a capture survives
//! PCAP -> filter -> flows -> graph -> graph-text and NetFlow v5 exports,
//! with every stage consistent with the previous one.

use csb::graph::graph_from_flows;
use csb::graph::io::{read_graph, write_graph};
use csb::net::assembler::FlowAssembler;
use csb::net::netflow_v5::{read_netflow_v5, write_netflow_v5};
use csb::net::pcap::{read_pcap, write_pcap};
use csb::net::traffic::sim::{TrafficSim, TrafficSimConfig};
use csb::net::Filter;

fn capture() -> csb::net::Trace {
    TrafficSim::new(TrafficSimConfig {
        duration_secs: 15.0,
        sessions_per_sec: 20.0,
        seed: 17,
        ..TrafficSimConfig::default()
    })
    .generate()
}

#[test]
fn pcap_filter_flows_graph_chain() {
    let trace = capture();
    let mut pcap_bytes = Vec::new();
    write_pcap(&mut pcap_bytes, &trace.packets).expect("write pcap");
    let packets = read_pcap(&pcap_bytes[..]).expect("read pcap");
    assert_eq!(packets, trace.packets);

    // Filter down to TCP and rebuild.
    let tcp_only = Filter::parse("tcp").expect("filter").apply(&packets);
    assert!(!tcp_only.is_empty() && tcp_only.len() < packets.len());
    let flows = FlowAssembler::assemble(&tcp_only);
    assert!(flows.iter().all(|f| f.protocol == csb::net::Protocol::Tcp));

    // Graph text format round trip.
    let graph = graph_from_flows(&flows);
    let mut graph_bytes = Vec::new();
    write_graph(&mut graph_bytes, &graph).expect("write graph");
    let graph2 = read_graph(&graph_bytes[..]).expect("read graph");
    assert_eq!(graph.vertex_count(), graph2.vertex_count());
    assert_eq!(graph.edge_count(), graph2.edge_count());
    for (a, b) in graph.edges().zip(graph2.edges()) {
        assert_eq!(a.3, b.3, "edge attributes must survive the text format");
    }
}

#[test]
fn netflow_v5_export_preserves_flow_population() {
    let trace = capture();
    let flows = FlowAssembler::assemble(&trace.packets);
    let mut nf_bytes = Vec::new();
    write_netflow_v5(&mut nf_bytes, &flows).expect("write nf5");
    let parsed = read_netflow_v5(&nf_bytes[..]).expect("read nf5");
    assert_eq!(parsed.len(), flows.len(), "one v5 flow per assembled flow");
    // Aggregate byte/packet conservation (u32 fields suffice at this scale).
    let sum = |fs: &[csb::net::FlowRecord]| {
        (
            fs.iter().map(|f| f.total_bytes()).sum::<u64>(),
            fs.iter().map(|f| f.total_pkts()).sum::<u64>(),
        )
    };
    assert_eq!(sum(&flows), sum(&parsed));
    // The graphs built from both flow sets are identical in shape.
    let a = graph_from_flows(&flows);
    let b = graph_from_flows(&parsed);
    assert_eq!(a.vertex_count(), b.vertex_count());
    assert_eq!(a.edge_count(), b.edge_count());
}

#[test]
fn store_flow_columns_and_netflow_v5_agree_on_the_same_flows() {
    use csb::store::format::{CHUNK_HEADER_LEN, FILE_HEADER_LEN};
    use csb::store::sink::{FlowSink, FlowStoreSink};
    use csb::store::StoreReader;

    let trace = capture();
    let flows = FlowAssembler::assemble(&trace.packets);
    assert!(!flows.is_empty());

    // The store keeps every field: exact round trip.
    let mut sink = FlowStoreSink::new(Vec::new()).expect("sink");
    sink.push_flows(&flows).expect("push");
    let store_bytes = sink.finish().expect("finish");
    let stored = StoreReader::new(std::io::Cursor::new(&store_bytes[..]))
        .expect("reader")
        .load_flows()
        .expect("load");
    assert_eq!(stored, flows);

    // v5 keeps the shared field subset; compare it against the store's copy
    // so the two formats are checked against each other, not just each
    // against the in-memory flows.
    let mut nf_bytes = Vec::new();
    write_netflow_v5(&mut nf_bytes, &stored).expect("write nf5");
    let parsed = read_netflow_v5(&nf_bytes[..]).expect("read nf5");
    assert_eq!(parsed.len(), flows.len());
    for (v5, f) in parsed.iter().zip(&flows) {
        assert_eq!((v5.src_ip, v5.dst_ip), (f.src_ip, f.dst_ip));
        assert_eq!((v5.src_port, v5.dst_port), (f.src_port, f.dst_port));
        assert_eq!(v5.protocol, f.protocol);
        assert_eq!((v5.out_bytes, v5.in_bytes), (f.out_bytes, f.in_bytes));
        assert_eq!((v5.out_pkts, v5.in_pkts), (f.out_pkts, f.in_pkts));
    }

    // Endianness contrast on the same value: the store's first SRC_IP cell
    // is little-endian right after the file and chunk headers (columnar
    // layout puts the SRC_IP column first); v5 carries it big-endian at
    // offset 24 of the datagram (after the 24-byte header).
    let cell = (FILE_HEADER_LEN + CHUNK_HEADER_LEN) as usize;
    assert_eq!(&store_bytes[cell..cell + 4], &flows[0].src_ip.to_le_bytes());
    assert_eq!(&nf_bytes[24..28], &flows[0].src_ip.to_be_bytes());
}

#[test]
fn synthetic_graph_exports_to_netflow() {
    use csb::gen::{pgpba, seed_from_trace, PgpbaConfig};
    let seed = seed_from_trace(&capture());
    let g = pgpba(
        &seed,
        &PgpbaConfig { desired_size: seed.edge_count() as u64 * 3, fraction: 0.4, seed: 5 },
    );
    let flows = csb::workloads::replay_flows(&g, 30.0, 6);
    let mut bytes = Vec::new();
    write_netflow_v5(&mut bytes, &flows).expect("write");
    let parsed = read_netflow_v5(&bytes[..]).expect("read");
    assert_eq!(parsed.len(), flows.len());
    // Generated attributes come from the seed's support even after the
    // round trip.
    let seed_ports: std::collections::HashSet<u16> =
        seed.graph.edge_data().iter().map(|p| p.dst_port).collect();
    assert!(parsed.iter().all(|f| seed_ports.contains(&f.dst_port)));
}
