//! Differential conformance suite for the out-of-core analytics layer.
//!
//! The contract under test (ISSUE 5, extended by the Veracity 2.0 suite):
//! every streaming kernel — over any batching of the edge stream, including
//! store chunk sizes that straddle chunk boundaries mid-vertex, and any
//! rayon thread count — produces *bit-for-bit* the same result as its
//! in-memory counterpart on the same logical graph, after a round-trip
//! through the `EdgeSink` store format.
//!
//! The deprecated free functions (`veracity`, `veracity_scan_with`) stay
//! under test here on purpose: they are frozen compatibility wrappers over
//! `VeracityJob` and must keep returning the exact same bits.
#![allow(deprecated)]

use csb::gen::{veracity, veracity_scan_with, Metric, VeracityJob, VeracityScores};
use csb::graph::algo::pagerank::{pagerank, PageRankConfig};
use csb::graph::algo::{degree_distribution, DegreeDistributions};
use csb::graph::ooc::{degree_distribution_ooc, pagerank_ooc, GraphScan};
use csb::graph::{
    AssortativityMetric, ClusteringMetric, Csr, DegreeMetric, EdgeProperties, GraphMetric,
    MmdDegreeMetric, MmdPagerankMetric, NetflowGraph, PagerankMetric, SpectralMetric, VertexId,
};
use csb::store::sink::{push_graph, GraphStoreSink};
use csb::store::{StoreReader, StoreScan};
use proptest::prelude::*;
use std::io::Cursor;

/// Builds an `n`-vertex multigraph; endpoints are reduced mod `n`.
fn graph_of(n: u32, edges: &[(u32, u32)]) -> NetflowGraph {
    let mut g = NetflowGraph::new();
    let vs: Vec<VertexId> = (0..n).map(|i| g.add_vertex(0x0a00_0000 | i)).collect();
    for &(s, d) in edges {
        g.add_edge(vs[(s % n) as usize], vs[(d % n) as usize], EdgeProperties::placeholder());
    }
    g
}

/// Round-trips `g` through the store format at the given chunk size and
/// returns a scan over the sealed bytes.
fn store_scan(g: &NetflowGraph, chunk_records: usize) -> StoreScan<Cursor<Vec<u8>>> {
    let mut sink = GraphStoreSink::new(Vec::new()).expect("sink").with_chunk_records(chunk_records);
    push_graph(&mut sink, g).expect("push");
    let bytes = sink.finish().expect("seal");
    StoreScan::new(StoreReader::new(Cursor::new(bytes)).expect("reader")).expect("scan")
}

fn assert_bits_eq(a: &[f64], b: &[f64]) {
    assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        assert!((x - y).abs() < 1e-12, "slot {i}: {x} vs {y}");
        assert_eq!(x.to_bits(), y.to_bits(), "slot {i}: {x:e} vs {y:e}");
    }
}

fn assert_distributions_eq(a: &DegreeDistributions, b: &DegreeDistributions) {
    assert_eq!(a.in_degree.support(), b.in_degree.support());
    assert_eq!(a.in_degree.weights(), b.in_degree.weights());
    assert_eq!(a.out_degree.support(), b.out_degree.support());
    assert_eq!(a.out_degree.weights(), b.out_degree.weights());
}

/// Graph shape: a vertex count, an edge list, and a store chunk size chosen
/// small enough (1..=67, vs. up to 400 edges) that chunks straddle the edge
/// ranges of individual vertices and the final chunk runs short.
fn arb_case() -> impl Strategy<Value = (u32, Vec<(u32, u32)>, usize)> {
    (1u32..60, prop::collection::vec((any::<u32>(), any::<u32>()), 0..400), 1usize..=67)
}

/// Runs `metric` in memory and over the store round-trip and asserts the
/// value vectors are bit-identical.
fn assert_metric_conforms<M: GraphMetric>(metric: &M, g: &NetflowGraph, chunk: usize) {
    let mem = metric.compute(g);
    let ooc = metric.compute_scan(&mut store_scan(g, chunk)).expect("ooc metric");
    assert_eq!(mem.len(), ooc.len(), "{}: length", metric.name());
    for (i, (x, y)) in mem.iter().zip(ooc.iter()).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{} slot {i}: {x:e} vs {y:e}", metric.name());
    }
}

/// Runs every Veracity 2.0 metric through `assert_metric_conforms`.
fn assert_all_metrics_conform(g: &NetflowGraph, chunk: usize) {
    assert_metric_conforms(&DegreeMetric, g, chunk);
    assert_metric_conforms(&PagerankMetric::default(), g, chunk);
    assert_metric_conforms(&ClusteringMetric, g, chunk);
    assert_metric_conforms(&AssortativityMetric, g, chunk);
    assert_metric_conforms(&SpectralMetric::default(), g, chunk);
    assert_metric_conforms(&MmdDegreeMetric, g, chunk);
    assert_metric_conforms(&MmdPagerankMetric::default(), g, chunk);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `pagerank_ooc` over the store file == in-memory `pagerank`, bitwise.
    #[test]
    fn pagerank_ooc_conforms((n, edges, chunk) in arb_case()) {
        let g = graph_of(n, &edges);
        let cfg = PageRankConfig::default();
        let mem = pagerank(&g, &cfg);
        let ooc = pagerank_ooc(&mut store_scan(&g, chunk), &cfg).expect("ooc over store");
        assert_bits_eq(&mem, &ooc);
        // And over a raw in-memory scan at an unrelated batch size.
        let direct = pagerank_ooc(&mut GraphScan::of(&g).with_batch(chunk * 3 + 1), &cfg)
            .expect("ooc over scan");
        assert_bits_eq(&mem, &direct);
    }

    /// `degree_distribution_ooc` over the store file == in-memory
    /// `degree_distribution` (exact integer counts, so plain equality).
    #[test]
    fn degree_distribution_ooc_conforms((n, edges, chunk) in arb_case()) {
        let g = graph_of(n, &edges);
        let mem = degree_distribution(&g);
        let ooc = degree_distribution_ooc(&mut store_scan(&g, chunk)).expect("ooc");
        assert_distributions_eq(&mem, &ooc);
    }

    /// The external two-pass CSR build equals the in-memory counting sort —
    /// offsets and neighbor order both — in either orientation.
    #[test]
    fn external_csr_build_conforms((n, edges, chunk) in arb_case()) {
        let g = graph_of(n, &edges);
        let out = Csr::out_of_scan(&mut store_scan(&g, chunk)).expect("out");
        prop_assert_eq!(&out, &Csr::out_of(&g));
        let inn = Csr::in_of_scan(&mut store_scan(&g, chunk)).expect("in");
        prop_assert_eq!(&inn, &Csr::in_of(&g));
    }

    /// `veracity` scored out-of-core over two store files == in-memory
    /// `veracity` on the loaded graphs, bitwise, at independent chunk sizes.
    #[test]
    fn veracity_scan_conforms(
        (n_a, edges_a, chunk_a) in arb_case(),
        (n_b, edges_b, chunk_b) in arb_case(),
    ) {
        let a = graph_of(n_a, &edges_a);
        let b = graph_of(n_b, &edges_b);
        let mem: VeracityScores = veracity(&a, &b);
        let ooc = veracity_scan_with(
            &mut store_scan(&a, chunk_a),
            &mut store_scan(&b, chunk_b),
            &PageRankConfig::default(),
        )
        .expect("ooc veracity");
        prop_assert!((mem.degree - ooc.degree).abs() < 1e-12);
        prop_assert!((mem.pagerank - ooc.pagerank).abs() < 1e-12);
        prop_assert_eq!(mem.degree.to_bits(), ooc.degree.to_bits());
        prop_assert_eq!(mem.pagerank.to_bits(), ooc.pagerank.to_bits());
    }

    /// Every Veracity 2.0 metric kernel — clustering, assortativity, the
    /// spectral sketch, the MMD value vectors — conforms bitwise over graph
    /// shape x store chunk size x rayon thread count.
    #[test]
    fn veracity2_metrics_conform(
        (n, edges, chunk) in arb_case(),
        threads in prop::sample::select(vec![1usize, 4]),
    ) {
        let g = graph_of(n, &edges);
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool");
        pool.install(|| assert_all_metrics_conform(&g, chunk));
    }

    /// A `VeracityJob` over two edge scans scores every metric bit-for-bit
    /// identically to the same job over the materialized graphs, at
    /// independent chunk sizes per side.
    #[test]
    fn veracity_job_conforms_over_scans(
        (n_a, edges_a, chunk_a) in arb_case(),
        (n_b, edges_b, chunk_b) in arb_case(),
    ) {
        let a = graph_of(n_a, &edges_a);
        let b = graph_of(n_b, &edges_b);
        let mem = VeracityJob::new()
            .seed_graph(&a)
            .synthetic_graph(&b)
            .metrics(Metric::ALL)
            .run()
            .expect("in-memory job");
        let mut scan_a = store_scan(&a, chunk_a);
        let mut scan_b = store_scan(&b, chunk_b);
        let ooc = VeracityJob::new()
            .seed_scan(&mut scan_a)
            .synthetic_scan(&mut scan_b)
            .metrics(Metric::ALL)
            .run()
            .expect("scan job");
        prop_assert_eq!(mem.scores.len(), ooc.scores.len());
        for (x, y) in mem.scores.iter().zip(ooc.scores.iter()) {
            prop_assert_eq!(x.metric, y.metric);
            prop_assert_eq!(
                x.score.to_bits(), y.score.to_bits(),
                "{}: {:e} vs {:e}", x.metric, x.score, y.score
            );
        }
    }
}

/// Boundary batchings the proptest strategy rarely lands on exactly:
/// chunk = 1 record and chunk far larger than the edge count.
#[test]
fn metric_kernels_conform_at_boundary_chunk_sizes() {
    let g = graph_of(9, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2), (5, 5), (0, 1)]);
    for chunk in [1usize, 7, 100_000] {
        assert_all_metrics_conform(&g, chunk);
    }
}

/// Hand-computed clustering values (satellite of the Veracity 2.0 issue):
/// the "paw" graph — a triangle with a pendant vertex — has transitivity
/// 3/5 and average-local (1/3 + 1 + 1) / 3 over its eligible vertices.
#[test]
fn clustering_metric_matches_hand_computed_values() {
    let paw = graph_of(4, &[(0, 1), (1, 2), (2, 0), (0, 3)]);
    let v = ClusteringMetric.compute(&paw);
    assert_eq!(v.len(), 2);
    assert!((v[0] - 0.6).abs() < 1e-15, "global: {}", v[0]);
    assert!((v[1] - (1.0 / 3.0 + 2.0) / 3.0).abs() < 1e-15, "average local: {}", v[1]);
    // A 4-cycle has wedges but no closed ones.
    let square = graph_of(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
    assert_eq!(ClusteringMetric.compute(&square), vec![0.0, 0.0]);
}

/// Hand-computed degree assortativity: the path P4 has degree pairs
/// (1,2), (2,2), (2,1) over its edges, giving Pearson r = -1/2; the path
/// P3 gives exactly -1.
#[test]
fn assortativity_metric_matches_hand_computed_values() {
    let p4 = graph_of(4, &[(0, 1), (1, 2), (2, 3)]);
    let v = AssortativityMetric.compute(&p4);
    assert_eq!(v.len(), 1);
    assert!((v[0] + 0.5).abs() < 1e-12, "P4 assortativity: {}", v[0]);
    let p3 = graph_of(3, &[(0, 1), (1, 2)]);
    assert!((AssortativityMetric.compute(&p3)[0] + 1.0).abs() < 1e-12);
}

/// Hand-computed MMD: two one-point samples at distance 1 under an RBF
/// kernel with sigma = 1 give MMD^2 = 2 - 2 e^{-1/2}.
#[test]
fn mmd_matches_hand_computed_value() {
    let got = csb::stats::veracity::mmd_rbf(&[0.0], &[1.0], 1.0);
    let want = 2.0 - 2.0 * (-0.5f64).exp();
    assert!((got - want).abs() < 1e-15, "{got} vs {want}");
    // Identical samples are exactly zero, which is why every MMD metric
    // self-scores 0 in the job-level tests.
    assert_eq!(csb::stats::veracity::mmd_rbf(&[1.0, 2.0], &[1.0, 2.0], 0.7), 0.0);
}

/// The legacy free functions are frozen delegating wrappers: scores from
/// `veracity`/`veracity_with` must stay bit-identical to a default
/// `VeracityJob` on the same pair.
#[test]
fn legacy_wrappers_delegate_bit_for_bit() {
    let a = graph_of(12, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (5, 6), (6, 7), (0, 2)]);
    let b = graph_of(9, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5)]);
    let legacy = veracity(&a, &b);
    let job = VeracityJob::new().seed_graph(&a).synthetic_graph(&b).run().expect("job");
    assert_eq!(legacy.degree.to_bits(), job.score("degree").expect("degree").to_bits());
    assert_eq!(legacy.pagerank.to_bits(), job.score("pagerank").expect("pagerank").to_bits());
}
