//! Differential conformance suite for the out-of-core analytics layer.
//!
//! The contract under test (ISSUE 5): every streaming kernel — over any
//! batching of the edge stream, including store chunk sizes that straddle
//! chunk boundaries mid-vertex — produces *bit-for-bit* the same result as
//! its in-memory counterpart on the same logical graph, after a round-trip
//! through the `EdgeSink` store format.

use csb::gen::{veracity, veracity_scan_with, VeracityScores};
use csb::graph::algo::pagerank::{pagerank, PageRankConfig};
use csb::graph::algo::{degree_distribution, DegreeDistributions};
use csb::graph::ooc::{degree_distribution_ooc, pagerank_ooc, GraphScan};
use csb::graph::{Csr, EdgeProperties, NetflowGraph, VertexId};
use csb::store::sink::{push_graph, GraphStoreSink};
use csb::store::{StoreReader, StoreScan};
use proptest::prelude::*;
use std::io::Cursor;

/// Builds an `n`-vertex multigraph; endpoints are reduced mod `n`.
fn graph_of(n: u32, edges: &[(u32, u32)]) -> NetflowGraph {
    let mut g = NetflowGraph::new();
    let vs: Vec<VertexId> = (0..n).map(|i| g.add_vertex(0x0a00_0000 | i)).collect();
    for &(s, d) in edges {
        g.add_edge(vs[(s % n) as usize], vs[(d % n) as usize], EdgeProperties::placeholder());
    }
    g
}

/// Round-trips `g` through the store format at the given chunk size and
/// returns a scan over the sealed bytes.
fn store_scan(g: &NetflowGraph, chunk_records: usize) -> StoreScan<Cursor<Vec<u8>>> {
    let mut sink = GraphStoreSink::new(Vec::new()).expect("sink").with_chunk_records(chunk_records);
    push_graph(&mut sink, g).expect("push");
    let bytes = sink.finish().expect("seal");
    StoreScan::new(StoreReader::new(Cursor::new(bytes)).expect("reader")).expect("scan")
}

fn assert_bits_eq(a: &[f64], b: &[f64]) {
    assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        assert!((x - y).abs() < 1e-12, "slot {i}: {x} vs {y}");
        assert_eq!(x.to_bits(), y.to_bits(), "slot {i}: {x:e} vs {y:e}");
    }
}

fn assert_distributions_eq(a: &DegreeDistributions, b: &DegreeDistributions) {
    assert_eq!(a.in_degree.support(), b.in_degree.support());
    assert_eq!(a.in_degree.weights(), b.in_degree.weights());
    assert_eq!(a.out_degree.support(), b.out_degree.support());
    assert_eq!(a.out_degree.weights(), b.out_degree.weights());
}

/// Graph shape: a vertex count, an edge list, and a store chunk size chosen
/// small enough (1..=67, vs. up to 400 edges) that chunks straddle the edge
/// ranges of individual vertices and the final chunk runs short.
fn arb_case() -> impl Strategy<Value = (u32, Vec<(u32, u32)>, usize)> {
    (1u32..60, prop::collection::vec((any::<u32>(), any::<u32>()), 0..400), 1usize..=67)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `pagerank_ooc` over the store file == in-memory `pagerank`, bitwise.
    #[test]
    fn pagerank_ooc_conforms((n, edges, chunk) in arb_case()) {
        let g = graph_of(n, &edges);
        let cfg = PageRankConfig::default();
        let mem = pagerank(&g, &cfg);
        let ooc = pagerank_ooc(&mut store_scan(&g, chunk), &cfg).expect("ooc over store");
        assert_bits_eq(&mem, &ooc);
        // And over a raw in-memory scan at an unrelated batch size.
        let direct = pagerank_ooc(&mut GraphScan::of(&g).with_batch(chunk * 3 + 1), &cfg)
            .expect("ooc over scan");
        assert_bits_eq(&mem, &direct);
    }

    /// `degree_distribution_ooc` over the store file == in-memory
    /// `degree_distribution` (exact integer counts, so plain equality).
    #[test]
    fn degree_distribution_ooc_conforms((n, edges, chunk) in arb_case()) {
        let g = graph_of(n, &edges);
        let mem = degree_distribution(&g);
        let ooc = degree_distribution_ooc(&mut store_scan(&g, chunk)).expect("ooc");
        assert_distributions_eq(&mem, &ooc);
    }

    /// The external two-pass CSR build equals the in-memory counting sort —
    /// offsets and neighbor order both — in either orientation.
    #[test]
    fn external_csr_build_conforms((n, edges, chunk) in arb_case()) {
        let g = graph_of(n, &edges);
        let out = Csr::out_of_scan(&mut store_scan(&g, chunk)).expect("out");
        prop_assert_eq!(&out, &Csr::out_of(&g));
        let inn = Csr::in_of_scan(&mut store_scan(&g, chunk)).expect("in");
        prop_assert_eq!(&inn, &Csr::in_of(&g));
    }

    /// `veracity` scored out-of-core over two store files == in-memory
    /// `veracity` on the loaded graphs, bitwise, at independent chunk sizes.
    #[test]
    fn veracity_scan_conforms(
        (n_a, edges_a, chunk_a) in arb_case(),
        (n_b, edges_b, chunk_b) in arb_case(),
    ) {
        let a = graph_of(n_a, &edges_a);
        let b = graph_of(n_b, &edges_b);
        let mem: VeracityScores = veracity(&a, &b);
        let ooc = veracity_scan_with(
            &mut store_scan(&a, chunk_a),
            &mut store_scan(&b, chunk_b),
            &PageRankConfig::default(),
        )
        .expect("ooc veracity");
        prop_assert!((mem.degree - ooc.degree).abs() < 1e-12);
        prop_assert!((mem.pagerank - ooc.pagerank).abs() < 1e-12);
        prop_assert_eq!(mem.degree.to_bits(), ooc.degree.to_bits());
        prop_assert_eq!(mem.pagerank.to_bits(), ooc.pagerank.to_bits());
    }
}
