//! Campaign conformance suite: the end-to-end contracts of the multi-stage
//! attack campaign engine, property-tested over stage mixes, intensities, and
//! seeds.
//!
//! The three invariants locked down here:
//!
//! 1. **Label soundness** — a flow carries an attack label *iff* it was
//!    emitted by a campaign stage: every labeled flow's oriented 5-tuple and
//!    first-packet time match a recorded [`StageAction`] window, actions and
//!    labeled flows are 1:1, and no benign-simulator flow is ever labeled
//!    (checked structurally via the disjoint campaign source-port window).
//! 2. **Determinism** — the same seed produces byte-identical traces and
//!    byte-identical labeled flow stores.
//! 3. **Worker invariance** — the assembled labeled flow stream is identical
//!    for every assembler worker count.

use csb_net::trace::Trace;
use csb_net::traffic::campaign::{
    assemble_labeled, Campaign, CampaignConfig, CampaignRun, StageKind, StageParams,
    CAMPAIGN_SPORT_BASE,
};
use csb_net::traffic::sim::{TrafficSim, TrafficSimConfig};
use csb_net::traffic::topology::TopologyConfig;
use csb_net::LabeledFlow;
use csb_store::sink::LabeledFlowSink;
use csb_store::{Compression, LabeledFlowStoreSink};
use proptest::prelude::*;

/// Benign capture + one campaign over the same topology, merged in time
/// order. Small enough that a proptest case stays cheap.
fn pipeline(stages: &[StageKind], intensity: f64, stealth: f64, seed: u64) -> (Trace, CampaignRun) {
    let sim = TrafficSim::new(TrafficSimConfig {
        topology: TopologyConfig {
            clients: 25,
            servers: 4,
            externals: 15,
            ..TopologyConfig::default()
        },
        duration_secs: 25.0,
        sessions_per_sec: 6.0,
        seed,
        ..TrafficSimConfig::default()
    });
    let mut trace = sim.generate();
    let cfg = CampaignConfig {
        id: 1,
        seed: seed ^ 0xCA11,
        start_secs: 2.0,
        stages: stages
            .iter()
            .map(|&kind| {
                let nominal = StageParams::nominal(kind);
                StageParams {
                    intensity: nominal.intensity * intensity,
                    stealth,
                    duration_secs: nominal.duration_secs * 0.12,
                    ..nominal
                }
            })
            .collect(),
    };
    let run = Campaign::new(cfg).run(sim.topology());
    trace.merge_sorted(run.trace.clone());
    (trace, run)
}

fn store_bytes(flows: &[LabeledFlow], compression: Compression) -> Vec<u8> {
    let mut sink =
        LabeledFlowStoreSink::new_with(Vec::new(), compression).unwrap().with_chunk_records(64);
    sink.push_labeled(flows).unwrap();
    sink.finish().unwrap()
}

fn arb_stage_mix() -> impl Strategy<Value = Vec<StageKind>> {
    // A non-empty subset of the kill chain, in chain order (bitmask 1..16).
    (1u8..16).prop_map(|mask| {
        StageKind::ALL
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, &k)| k)
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Invariant 1, re-derived independently of the labeler: labeled ⇔
    /// emitted by a stage.
    #[test]
    fn labels_are_sound_over_stage_mix_intensity_and_seed(
        stages in arb_stage_mix(),
        intensity in 0.5f64..2.0,
        stealth in 0.0f64..0.9,
        seed in 1u64..500,
    ) {
        let (trace, run) = pipeline(&stages, intensity, stealth, seed);
        let flows = assemble_labeled(&trace, std::slice::from_ref(&run), 1);

        let labeled: Vec<_> = flows.iter().filter(|f| f.label.is_attack()).collect();
        // Every stage action assembled into exactly one labeled flow.
        prop_assert_eq!(labeled.len(), run.actions.len(), "actions and labeled flows are 1:1");
        // A lateral-movement-only chain has no recon findings to act on and
        // legitimately emits nothing; every other mix must label flows.
        if stages.iter().any(|&k| k != StageKind::LateralMovement) {
            prop_assert!(!labeled.is_empty(), "a campaign must emit labeled flows");
        }

        for lf in &labeled {
            // The label's 5-tuple and time window match an emitted action.
            let action = run.actions.iter().find(|a| {
                a.src_ip == lf.flow.src_ip
                    && a.src_port == lf.flow.src_port
                    && a.dst_ip == lf.flow.dst_ip
                    && a.dst_port == lf.flow.dst_port
                    && a.protocol == lf.flow.protocol
                    && (a.start_micros..=a.end_micros).contains(&lf.flow.first_ts_micros)
            });
            let action = action.expect("labeled flow without a matching stage action");
            prop_assert_eq!(lf.label.campaign, run.id);
            prop_assert_eq!(lf.label.stage, action.stage);
            prop_assert_eq!(lf.label.class, action.kind.class());
            // Stage mix honored: only requested stages appear.
            prop_assert!(stages.contains(&action.kind));
        }

        // Structural soundness: campaign originator ports are disjoint from
        // the benign simulator's ephemeral range, so "labeled" and "uses a
        // campaign source port" must coincide exactly.
        for f in &flows {
            prop_assert_eq!(
                f.label.is_attack(),
                f.flow.src_port >= CAMPAIGN_SPORT_BASE,
                "flow {}:{} -> {}:{} labeled={:?}",
                f.flow.src_ip, f.flow.src_port, f.flow.dst_ip, f.flow.dst_port, f.label
            );
        }
    }

    /// Invariant 2: the same seed reproduces the trace and the store bytes.
    #[test]
    fn same_seed_is_byte_identical(
        stages in arb_stage_mix(),
        seed in 1u64..500,
    ) {
        let (trace_a, run_a) = pipeline(&stages, 1.0, 0.3, seed);
        let (trace_b, run_b) = pipeline(&stages, 1.0, 0.3, seed);
        prop_assert_eq!(&trace_a.packets, &trace_b.packets, "merged traces must be identical");
        prop_assert_eq!(&run_a.actions, &run_b.actions);

        let flows_a = assemble_labeled(&trace_a, std::slice::from_ref(&run_a), 1);
        let flows_b = assemble_labeled(&trace_b, std::slice::from_ref(&run_b), 1);
        for compression in [Compression::None, Compression::Columnar] {
            prop_assert_eq!(
                store_bytes(&flows_a, compression),
                store_bytes(&flows_b, compression),
                "labeled stores must be byte-identical ({:?})",
                compression
            );
        }
    }

    /// Invariant 3: worker count never changes the labeled stream.
    #[test]
    fn worker_count_is_invisible_in_the_labeled_stream(
        stages in arb_stage_mix(),
        seed in 1u64..500,
        workers in 2usize..9,
    ) {
        let (trace, run) = pipeline(&stages, 1.0, 0.3, seed);
        let runs = std::slice::from_ref(&run);
        let sequential = assemble_labeled(&trace, runs, 1);
        let parallel = assemble_labeled(&trace, runs, workers);
        prop_assert_eq!(sequential, parallel, "workers={}", workers);
    }
}

/// Benign-only capture: without a campaign nothing is ever labeled — the
/// degenerate case of invariant 1 that proptest's generator cannot hit.
#[test]
fn benign_only_capture_has_no_labels() {
    let sim = TrafficSim::new(TrafficSimConfig {
        duration_secs: 15.0,
        sessions_per_sec: 10.0,
        seed: 77,
        ..TrafficSimConfig::default()
    });
    let trace = sim.generate();
    let flows = assemble_labeled(&trace, &[], 4);
    assert!(!flows.is_empty());
    assert!(flows.iter().all(|f| !f.label.is_attack()), "benign flows must stay unlabeled");
}

/// Stage chaining across the full kill chain: lateral movement only targets
/// hosts recon discovered, and C2/exfil only speak from compromised hosts.
#[test]
fn later_stages_derive_from_earlier_findings() {
    let (_, run) = pipeline(&StageKind::ALL, 1.2, 0.2, 9);
    assert!(!run.compromised.is_empty(), "lateral movement must compromise hosts");
    let attacker = Campaign::attacker_ip(run.id);
    for a in &run.actions {
        match a.kind {
            StageKind::C2Beacon | StageKind::Exfiltration => {
                assert!(
                    run.compromised.contains(&a.src_ip),
                    "stage {:?} spoke from a non-compromised host",
                    a.kind
                );
            }
            StageKind::LateralMovement => {
                assert!(
                    a.src_ip == attacker || run.compromised.contains(&a.src_ip),
                    "lateral movement from an unexpected source"
                );
            }
            StageKind::Recon => assert_eq!(a.src_ip, attacker),
        }
    }
}
