//! Integration tests pinning the *shapes* of the paper's performance
//! figures (8-12) as produced by the calibrated cluster model — the
//! regression net for EXPERIMENTS.md.

use csb::engine::sim::{GenAlgorithm, GenJob};
use csb::engine::{ClusterConfig, CostModel, SimCluster};

const SEED_EDGES: u64 = 1_940_814;

fn job(algorithm: GenAlgorithm, edges: u64) -> GenJob {
    GenJob { algorithm, edges, seed_edges: SEED_EDGES, with_properties: true }
}

fn pgpba() -> GenAlgorithm {
    GenAlgorithm::Pgpba { fraction: 2.0 }
}

#[test]
fn fig8_shape_monotone_then_flat_at_twelve_cores() {
    let model = CostModel::default();
    let tp: Vec<f64> = (1..=20)
        .map(|cores| {
            SimCluster::new(ClusterConfig::shadow_ii_single_node(cores), model)
                .simulate(&job(pgpba(), 50_000_000))
                .throughput_eps
        })
        .collect();
    for i in 1..12 {
        assert!(tp[i] > tp[i - 1], "throughput must rise through 12 cores");
    }
    for i in 12..20 {
        assert!((tp[i] - tp[11]).abs() / tp[11] < 1e-9, "throughput must plateau beyond 12 cores");
    }
}

#[test]
fn fig9_shape_linear_and_pgpba_wins_everywhere() {
    let sim = SimCluster::new(ClusterConfig::shadow_ii(60), CostModel::default());
    let sizes = [4_000_000u64, 16_000_000, 64_000_000, 256_000_000, 1_024_000_000, 4_096_000_000];
    let mut prev = (0.0, 0.0);
    for &e in &sizes {
        let ba = sim.simulate(&job(pgpba(), e)).total_secs;
        let sk = sim.simulate(&job(GenAlgorithm::Pgsk, e)).total_secs;
        assert!(ba < sk, "PGPBA must beat PGSK at {e} edges");
        assert!(ba > prev.0 && sk > prev.1, "times must grow with size");
        prev = (ba, sk);
    }
}

#[test]
fn fig10_overhead_ratios_hold_across_sizes() {
    let sim = SimCluster::new(ClusterConfig::shadow_ii(60), CostModel::default());
    for &e in &[16_000_000u64, 1_000_000_000, 16_000_000_000] {
        let with = |alg, props| {
            let mut j = job(alg, e);
            j.with_properties = props;
            sim.simulate(&j).compute_secs
        };
        let ba = with(pgpba(), true) / with(pgpba(), false) - 1.0;
        let sk = with(GenAlgorithm::Pgsk, true) / with(GenAlgorithm::Pgsk, false) - 1.0;
        assert!((ba - 0.5).abs() < 0.02, "PGPBA overhead {ba} at {e}");
        assert!((sk - 0.3).abs() < 0.02, "PGSK overhead {sk} at {e}");
    }
}

#[test]
fn fig11_shape_flat_below_1e8_then_linear() {
    let sim = SimCluster::new(ClusterConfig::shadow_ii(60), CostModel::default());
    let mem = |e| sim.simulate(&job(pgpba(), e)).memory_per_node_gb;
    // Flat region: two orders of magnitude change memory by < 30%.
    assert!((mem(100_000_000) - mem(1_000_000)) / mem(1_000_000) < 0.3);
    // Linear region: 4x edges -> ~4x incremental memory.
    let base = mem(1_000_000);
    let inc = |e| mem(e) - base;
    let ratio = inc(16_000_000_000) / inc(4_000_000_000);
    assert!((3.5..4.5).contains(&ratio), "linear-region ratio {ratio}");
}

#[test]
fn fig12_shape_pgpba_dominates_and_both_scale() {
    let model = CostModel::default();
    let time = |alg, edges, nodes| {
        SimCluster::new(ClusterConfig::shadow_ii(nodes), model)
            .simulate(&job(alg, edges))
            .total_secs
    };
    let ba10 = time(pgpba(), 9_600_000_000, 10);
    let sk10 = time(GenAlgorithm::Pgsk, 6_000_000_000, 10);
    let mut prev = (1.0f64, 1.0f64);
    for nodes in [20usize, 30, 40, 50, 60] {
        let ba = ba10 / time(pgpba(), 9_600_000_000, nodes);
        let sk = sk10 / time(GenAlgorithm::Pgsk, 6_000_000_000, nodes);
        assert!(ba > prev.0 && sk > prev.1, "speedups must grow with nodes");
        assert!(ba > sk, "PGPBA speedup must dominate PGSK at {nodes} nodes");
        assert!(ba <= nodes as f64 / 10.0 + 1e-9, "speedup cannot beat ideal");
        prev = (ba, sk);
    }
    assert!(prev.0 > 4.5, "PGPBA must approach ideal 6.0, got {}", prev.0);
}

#[test]
fn abstract_claim_billions_under_an_hour() {
    let sim = SimCluster::new(ClusterConfig::shadow_ii(60), CostModel::default());
    for alg in [pgpba(), GenAlgorithm::Pgsk] {
        let r = sim.simulate(&job(alg, 10_000_000_000));
        assert!(r.total_secs < 3600.0, "{alg:?}: {} s", r.total_secs);
    }
}
