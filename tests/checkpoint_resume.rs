//! Crash-recovery invariants of checkpointed generation runs: a store-backed
//! run killed after an *arbitrary* number of chunks and resumed from its
//! manifest produces a file byte-identical to an uninterrupted run.

use csb::gen::{GenJob, PgpbaConfig, SeedBundle};
use csb::net::traffic::sim::{TrafficSim, TrafficSimConfig};
use csb::store::checkpoint::CheckpointManifest;
use csb::store::CsbError;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::OnceLock;

const CHUNK_RECORDS: usize = 512;

fn seed() -> &'static SeedBundle {
    static SEED: OnceLock<SeedBundle> = OnceLock::new();
    SEED.get_or_init(|| {
        let trace = TrafficSim::new(TrafficSimConfig {
            duration_secs: 6.0,
            sessions_per_sec: 12.0,
            seed: 17,
            ..TrafficSimConfig::default()
        })
        .generate();
        csb::gen::seed_from_trace(&trace)
    })
}

fn cfg() -> PgpbaConfig {
    PgpbaConfig { desired_size: 10_000, fraction: 0.5, seed: 99 }
}

/// Bytes of the uninterrupted reference run (computed once).
fn clean_bytes() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let dir = temp_dir("clean");
        let path = dir.join("clean.csbstore");
        GenJob::pgpba(seed(), cfg())
            .store(&path)
            .chunk_records(CHUNK_RECORDS)
            .run()
            .expect("clean run");
        let bytes = std::fs::read(&path).expect("read clean");
        std::fs::remove_dir_all(&dir).ok();
        bytes
    })
}

fn temp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("csb-ckpt-rt-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&d).expect("mkdir");
    d
}

/// Kills a checkpointed run after `kill_after` chunks, optionally tears the
/// tail of the partial file, resumes, and returns the final bytes.
fn kill_and_resume(tag: &str, kill_after: u64, garbage_tail: bool) -> Vec<u8> {
    let dir = temp_dir(tag);
    let store = dir.join("g.csbstore");
    let ckpt = dir.join("ckpt");
    let err = GenJob::pgpba(seed(), cfg())
        .store(&store)
        .chunk_records(CHUNK_RECORDS)
        .checkpoint(&ckpt)
        .checkpoint_every(1)
        .kill_after_chunks(kill_after, false)
        .run()
        .expect_err("the kill hook must fire before the run completes");
    assert!(err.is_transient(), "injected kill should be transient, got {err}");
    assert!(CheckpointManifest::exists(&ckpt), "manifest must survive the crash");
    if garbage_tail {
        // Model a torn in-flight write past the last durable barrier.
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new().append(true).open(&store).expect("open for append");
        f.write_all(&0xDEAD_BEEF_u32.to_le_bytes()).expect("append garbage");
    }
    let run = GenJob::pgpba(seed(), cfg())
        .store(&store)
        .chunk_records(CHUNK_RECORDS)
        .checkpoint(&ckpt)
        .resume()
        .run()
        .expect("resume");
    assert!(run.edges > 0);
    let bytes = std::fs::read(&store).expect("read resumed");
    std::fs::remove_dir_all(&dir).ok();
    bytes
}

#[test]
fn killed_then_resumed_run_is_byte_identical() {
    assert_eq!(kill_and_resume("golden", 5, true), clean_bytes());
}

#[test]
fn resume_without_a_manifest_degrades_to_a_fresh_run() {
    let dir = temp_dir("fresh");
    let store = dir.join("g.csbstore");
    let ckpt = dir.join("ckpt");
    let run = GenJob::pgpba(seed(), cfg())
        .store(&store)
        .chunk_records(CHUNK_RECORDS)
        .checkpoint(&ckpt)
        .resume()
        .run()
        .expect("resume with nothing to resume");
    assert!(run.edges > 0);
    assert_eq!(std::fs::read(&store).expect("read"), clean_bytes());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resuming_under_a_different_seed_is_rejected() {
    let dir = temp_dir("wrongseed");
    let store = dir.join("g.csbstore");
    let ckpt = dir.join("ckpt");
    GenJob::pgpba(seed(), cfg())
        .store(&store)
        .chunk_records(CHUNK_RECORDS)
        .checkpoint(&ckpt)
        .checkpoint_every(1)
        .kill_after_chunks(4, false)
        .run()
        .expect_err("killed");
    let err = GenJob::pgpba(seed(), PgpbaConfig { seed: 100, ..cfg() })
        .store(&store)
        .chunk_records(CHUNK_RECORDS)
        .checkpoint(&ckpt)
        .resume()
        .run()
        .expect_err("wrong master seed");
    assert!(matches!(err, CsbError::Mismatch(_)), "got {err}");
    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The tentpole invariant, property-tested: for an arbitrary kill point
    /// and an arbitrarily torn tail, resume reconstructs the clean bytes.
    #[test]
    fn resume_is_byte_identical_for_arbitrary_kill_points(
        kill_after in 1u64..18,
        garbage_tail in any::<bool>(),
    ) {
        let tag = format!("prop-{kill_after}-{garbage_tail}");
        let bytes = kill_and_resume(&tag, kill_after, garbage_tail);
        prop_assert_eq!(bytes, clean_bytes());
    }
}
