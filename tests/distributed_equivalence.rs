//! Integration tests for the engine-backed distributed generators: they must
//! produce data statistically equivalent to the in-process reference
//! implementations and record the operator mix the paper describes.

use csb::gen::distributed::{materialize, pgpba_distributed, pgsk_distributed, DistConfig};
use csb::gen::topo::Topology;
use csb::gen::{pgpba, seed_from_trace, PgpbaConfig, PgskConfig};
use csb::net::traffic::sim::{TrafficSim, TrafficSimConfig};
use csb::stats::veracity::{average_euclidean_distance, NormalizedDistribution};

fn seed() -> csb::gen::SeedBundle {
    let trace = TrafficSim::new(TrafficSimConfig {
        duration_secs: 15.0,
        sessions_per_sec: 20.0,
        seed: 9,
        ..TrafficSimConfig::default()
    })
    .generate();
    seed_from_trace(&trace)
}

fn degree_shape(src: &[u32], dst: &[u32], n: u32) -> NormalizedDistribution {
    let mut deg = vec![0u64; n as usize];
    for &s in src {
        deg[s as usize] += 1;
    }
    for &d in dst {
        deg[d as usize] += 1;
    }
    NormalizedDistribution::from_u64(&deg)
}

#[test]
fn distributed_pgpba_matches_reference_shape() {
    let seed = seed();
    let cfg = PgpbaConfig { desired_size: seed.edge_count() as u64 * 6, fraction: 0.4, seed: 1 };
    let reference = pgpba(&seed, &cfg);
    let (dist_topo, _) = pgpba_distributed(
        &seed,
        &cfg,
        &DistConfig { partitions: 8, threads: 4, ..DistConfig::default() },
    );

    // Sizes in the same class.
    let ratio = dist_topo.edge_count() as f64 / reference.edge_count() as f64;
    assert!((0.5..2.0).contains(&ratio), "size ratio {ratio}");

    // Degree shapes nearly identical.
    let ref_topo = Topology::of_graph(&reference);
    let a = degree_shape(&ref_topo.src, &ref_topo.dst, ref_topo.num_vertices);
    let b = degree_shape(&dist_topo.src, &dist_topo.dst, dist_topo.num_vertices);
    let score = average_euclidean_distance(&a, &b);
    assert!(score < 1e-4, "distributed vs reference degree shape {score}");
}

#[test]
fn distributed_pgsk_uses_distinct_and_matches_size() {
    let seed = seed();
    let cfg = PgskConfig {
        desired_size: seed.edge_count() as u64 * 3,
        seed: 2,
        kronfit_iterations: 6,
        kronfit_permutation_samples: 100,
    };
    let (topo, metrics) = pgsk_distributed(
        &seed,
        &cfg,
        &DistConfig { partitions: 8, threads: 4, ..DistConfig::default() },
    );
    let got = topo.edge_count() as u64;
    assert!(got >= cfg.desired_size / 2 && got <= cfg.desired_size * 2, "{got}");
    // The paper's PGSK is shuffle-bound: distinct() must appear.
    let ops: Vec<&str> = metrics.ops().iter().map(|o| o.op).collect();
    assert!(ops.contains(&"distinct"), "ops: {ops:?}");
    assert!(metrics.total_shuffled() > 0);
}

#[test]
fn materialized_graph_has_full_attributes() {
    let seed = seed();
    let cfg = PgpbaConfig { desired_size: seed.edge_count() as u64 * 2, fraction: 0.5, seed: 3 };
    let (topo, _) = pgpba_distributed(&seed, &cfg, &DistConfig::default());
    let g = materialize(&topo, &seed, 4);
    assert_eq!(g.edge_count(), topo.edge_count());
    assert_eq!(g.vertex_count() as u32, topo.num_vertices);
    // Attributes populated (duration/bytes come from the seed's model, so at
    // least some edges carry non-zero values).
    assert!(g.edge_data().iter().any(|p| p.in_bytes > 0));
    assert!(g.edge_data().iter().any(|p| p.dst_port > 0));
}

#[test]
fn partition_count_does_not_change_results_materially() {
    let seed = seed();
    let cfg = PgpbaConfig { desired_size: seed.edge_count() as u64 * 3, fraction: 0.5, seed: 5 };
    let (a, _) = pgpba_distributed(
        &seed,
        &cfg,
        &DistConfig { partitions: 2, threads: 2, ..DistConfig::default() },
    );
    let (b, _) = pgpba_distributed(
        &seed,
        &cfg,
        &DistConfig { partitions: 16, threads: 4, ..DistConfig::default() },
    );
    let ratio = a.edge_count() as f64 / b.edge_count() as f64;
    assert!((0.7..1.4).contains(&ratio), "partitioning changed size: {ratio}");
}
