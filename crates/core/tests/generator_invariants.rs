//! Deep invariant tests of the generators, beyond the per-module unit
//! tests: growth-contract bounds, attribute-support membership, and
//! robustness on degenerate seeds.

use csb_core::pgpba::pgpba_topology;
use csb_core::pgsk::pgsk_topology;
use csb_core::seed::{seed_from_trace, SeedBundle};
use csb_core::topo::Topology;
use csb_core::{pgpba, pgsk, PgpbaConfig, PgskConfig};
use csb_net::traffic::sim::{TrafficSim, TrafficSimConfig};
use std::collections::HashSet;

fn seed(sim_seed: u64) -> SeedBundle {
    let trace = TrafficSim::new(TrafficSimConfig {
        duration_secs: 12.0,
        sessions_per_sec: 15.0,
        seed: sim_seed,
        ..TrafficSimConfig::default()
    })
    .generate();
    seed_from_trace(&trace)
}

#[test]
fn pgpba_overshoot_is_bounded_by_one_iteration() {
    // One iteration multiplies the edge count by at most
    // 1 + fraction * (max_out + max_in); the overshoot can never exceed it.
    let s = seed(1);
    let factor = |fraction: f64| {
        1.0 + fraction * (s.analysis.out_degree.max() + s.analysis.in_degree.max()) as f64
    };
    for fraction in [0.1f64, 0.5, 2.0] {
        let target = s.edge_count() as u64 * 6;
        let topo = pgpba_topology(
            &Topology::of_graph(&s.graph),
            &s.analysis,
            &PgpbaConfig { desired_size: target, fraction, seed: 2 },
        );
        let got = topo.edge_count() as u64;
        assert!(got >= target);
        assert!(
            (got as f64) <= target as f64 * factor(fraction),
            "fraction {fraction}: {got} vs bound {}",
            target as f64 * factor(fraction)
        );
    }
}

#[test]
fn pgpba_every_new_edge_touches_a_new_vertex() {
    // Structural contract of Fig. 2 within one iteration: every added edge
    // has the iteration's new vertex as exactly one endpoint. Use a target
    // one past the seed so exactly one iteration runs (attachment targets
    // are then guaranteed to be seed vertices).
    let s = seed(3);
    let seed_topo = Topology::of_graph(&s.graph);
    let topo = pgpba_topology(
        &seed_topo,
        &s.analysis,
        &PgpbaConfig { desired_size: s.edge_count() as u64 + 1, fraction: 0.05, seed: 4 },
    );
    let seed_vertices = seed_topo.num_vertices;
    for i in seed_topo.edge_count()..topo.edge_count() {
        let (src, dst) = (topo.src[i], topo.dst[i]);
        let new_src = src >= seed_vertices;
        let new_dst = dst >= seed_vertices;
        assert!(new_src ^ new_dst, "edge {i} ({src},{dst}) must touch exactly one new vertex");
    }
}

#[test]
fn pgsk_vertices_are_compact_and_touched() {
    let s = seed(5);
    let topo = pgsk_topology(
        &Topology::of_graph(&s.graph),
        &s.analysis,
        &PgskConfig {
            desired_size: s.edge_count() as u64 * 2,
            seed: 6,
            kronfit_iterations: 5,
            kronfit_permutation_samples: 100,
        },
    );
    // Every vertex id below num_vertices appears in at least one edge
    // (Kronecker isolates were compacted away).
    let mut touched = vec![false; topo.num_vertices as usize];
    for (&a, &b) in topo.src.iter().zip(topo.dst.iter()) {
        touched[a as usize] = true;
        touched[b as usize] = true;
    }
    assert!(touched.iter().all(|&t| t), "compacted ids must all be used");
}

#[test]
fn generated_attribute_tuples_stay_within_seed_marginals() {
    let s = seed(7);
    let g =
        pgpba(&s, &PgpbaConfig { desired_size: s.edge_count() as u64 * 3, fraction: 0.5, seed: 8 });
    let support = |f: &dyn Fn(&csb_graph::EdgeProperties) -> u64| -> HashSet<u64> {
        s.graph.edge_data().iter().map(f).collect()
    };
    let durations = support(&|p| p.duration_ms);
    let in_bytes = support(&|p| p.in_bytes);
    let states = support(&|p| p.state.code());
    for p in g.edge_data() {
        assert!(durations.contains(&p.duration_ms));
        assert!(in_bytes.contains(&p.in_bytes));
        assert!(states.contains(&p.state.code()));
    }
}

#[test]
fn single_edge_seed_still_generates() {
    // Degenerate seed: one host pair, one flow.
    use csb_graph::graph_from_flows;
    use csb_net::flow::{FlowRecord, Protocol, TcpConnState};
    let f = FlowRecord {
        src_ip: 1,
        dst_ip: 2,
        protocol: Protocol::Tcp,
        src_port: 1000,
        dst_port: 80,
        duration_ms: 1,
        out_bytes: 10,
        in_bytes: 20,
        out_pkts: 1,
        in_pkts: 1,
        state: TcpConnState::Sf,
        syn_count: 1,
        ack_count: 1,
        first_ts_micros: 0,
    };
    let graph = graph_from_flows(&[f]);
    let analysis = csb_core::analysis::SeedAnalysis::of(&graph);
    let bundle = SeedBundle { graph, analysis };
    let ba = pgpba(&bundle, &PgpbaConfig { desired_size: 50, fraction: 0.5, seed: 9 });
    assert!(ba.edge_count() >= 50);
    let sk = pgsk(
        &bundle,
        &PgskConfig {
            desired_size: 50,
            seed: 9,
            kronfit_iterations: 3,
            kronfit_permutation_samples: 20,
        },
    );
    assert!(sk.edge_count() >= 10);
}

#[test]
fn different_master_seeds_give_different_graphs_same_statistics() {
    let s = seed(11);
    let target = s.edge_count() as u64 * 4;
    let a = pgpba(&s, &PgpbaConfig { desired_size: target, fraction: 0.3, seed: 100 });
    let b = pgpba(&s, &PgpbaConfig { desired_size: target, fraction: 0.3, seed: 200 });
    // Different realizations...
    let ea: Vec<_> = a.edge_sources().iter().map(|v| v.0).collect();
    let eb: Vec<_> = b.edge_sources().iter().map(|v| v.0).collect();
    assert_ne!(ea, eb, "different seeds must differ");
    // ...from the same distribution: sizes within 25%, similar degree shape.
    let ratio = a.edge_count() as f64 / b.edge_count() as f64;
    assert!((0.75..1.33).contains(&ratio), "size ratio {ratio}");
    let degree_veracity = |g: &csb_graph::NetflowGraph| {
        csb_core::VeracityJob::new()
            .seed_graph(&s.graph)
            .synthetic_graph(g)
            .metrics([csb_core::Metric::Degree])
            .run()
            .expect("veracity")
            .score("degree")
            .expect("degree scored")
    };
    let va = degree_veracity(&a);
    let vb = degree_veracity(&b);
    assert!(va < 0.01 && vb < 0.01, "both runs stay high-veracity ({va}, {vb})");
}
