//! Golden determinism test for the KDD feature-row exporter.
//!
//! A fixed-seed campaign pipeline must export byte-identical NSL-KDD-style
//! rows on every run and every worker count; the row hash is pinned against a
//! blessed snapshot guarded by the same rand-provenance probe as
//! `golden.rs` (the hash depends on the simulator's RNG streams, so a
//! stub-vs-crates.io `rand` difference must fail with its own message, not
//! masquerade as an exporter regression).

use csb_core::CampaignJob;
use csb_net::kdd::kdd_csv;
use csb_net::traffic::campaign::CampaignConfig;
use csb_net::traffic::sim::TrafficSimConfig;
use csb_net::traffic::topology::TopologyConfig;
use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};
use std::path::PathBuf;

fn golden_rows(workers: usize) -> String {
    let out = CampaignJob::new()
        .sim(TrafficSimConfig {
            topology: TopologyConfig {
                clients: 30,
                servers: 4,
                externals: 20,
                ..TopologyConfig::default()
            },
            duration_secs: 30.0,
            sessions_per_sec: 10.0,
            ..TrafficSimConfig::default()
        })
        .seed(1701)
        .campaign(CampaignConfig::kill_chain(1, 31337, 3.0))
        .workers(workers)
        .run()
        .expect("campaign run");
    assert!(out.labeled_flows > 0, "golden campaign must label flows");
    kdd_csv(&out.flows)
}

/// FNV-1a over the exported CSV text.
fn fnv(text: &str) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for b in text.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Same provenance probe as `golden.rs`: first 16 draws of a fixed-seed
/// `SmallRng`, so snapshots blessed under a different `rand` implementation
/// fail with a dependency message instead of an exporter-regression message.
fn rng_provenance() -> u64 {
    let mut rng = SmallRng::seed_from_u64(0x0c5b_6010_d3e9);
    let mut h = String::new();
    for _ in 0..16 {
        h.push_str(&format!("{:016x}", rng.next_u64()));
    }
    fnv(&h)
}

#[test]
fn kdd_rows_are_deterministic_and_worker_invariant() {
    let rows = golden_rows(1);
    assert_eq!(rows, golden_rows(1), "same-seed reruns must export identical rows");
    assert_eq!(rows, golden_rows(5), "worker count must not change the exported rows");
    // Sanity: attack classes survived export.
    for class in ["probe", "r2l", "c2", "exfil"] {
        assert!(rows.lines().any(|l| l.split(',').any(|f| f == class)), "missing class {class}");
    }
}

#[test]
fn kdd_rows_match_snapshot() {
    let probe = rng_provenance();
    let rows = golden_rows(1);
    let current = format!(
        "rand-probe {probe:016x}\nkdd-rows {:016x}\nrow-count {}\n",
        fnv(&rows),
        rows.lines().count()
    );
    let path: PathBuf =
        [env!("CARGO_MANIFEST_DIR"), "tests", "snapshots", "kdd_golden.txt"].iter().collect();
    match std::fs::read_to_string(&path) {
        Ok(blessed) => {
            let blessed_probe = blessed.lines().find_map(|l| l.strip_prefix("rand-probe "));
            assert_eq!(
                blessed_probe,
                Some(format!("{probe:016x}").as_str()),
                "snapshot {} was blessed under a different `rand` implementation; \
                 delete the file and rerun to re-bless on this toolchain",
                path.display()
            );
            assert_eq!(
                blessed,
                current,
                "KDD export changed for a fixed seed; if intentional (a simulator, \
                 campaign, or exporter change), delete {} and rerun to re-bless",
                path.display()
            );
        }
        Err(_) => {
            // First run on this checkout: bless. Machine-local (gitignored)
            // because the hash depends on the `rand` provenance above.
            std::fs::create_dir_all(path.parent().expect("parent")).expect("snapshot dir");
            std::fs::write(&path, &current).expect("write snapshot");
            eprintln!("blessed KDD golden snapshot at {}", path.display());
        }
    }
}
