//! Golden determinism tests for the generators.
//!
//! Both generators promise bit-for-bit reproducibility for a fixed master
//! seed, independent of the rayon worker count — the property the parallel
//! materialization scheme (count → prefix-sum → parallel-write, per-chunk
//! RNG streams) was built to preserve. These tests pin it three ways:
//!
//! 1. repeated same-seed runs hash identically,
//! 2. a 1-thread pool and a 7-thread pool hash identically,
//! 3. hashes match a snapshot file, blessed on first run and compared on
//!    every run after (delete the snapshot to re-bless after an intentional
//!    RNG-stream change).

use csb_core::{pgpba, pgsk, seed_from_trace, PgpbaConfig, PgskConfig, SeedBundle};
use csb_graph::NetflowGraph;
use csb_net::traffic::sim::{TrafficSim, TrafficSimConfig};
use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};
use std::path::PathBuf;

fn golden_seed() -> SeedBundle {
    let trace = TrafficSim::new(TrafficSimConfig {
        duration_secs: 15.0,
        sessions_per_sec: 20.0,
        seed: 1701,
        ..TrafficSimConfig::default()
    })
    .generate();
    seed_from_trace(&trace)
}

fn pgpba_cfg() -> PgpbaConfig {
    PgpbaConfig { desired_size: 4_000, fraction: 0.5, seed: 31337 }
}

fn pgsk_cfg() -> PgskConfig {
    PgskConfig {
        desired_size: 3_000,
        seed: 424242,
        kronfit_iterations: 8,
        kronfit_permutation_samples: 200,
    }
}

/// FNV-1a over the full graph: vertex IPs, edge endpoints, and every
/// property field. Any single-bit change anywhere in the output moves it.
fn graph_fingerprint(g: &NetflowGraph) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut mix = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    mix(g.vertex_count() as u64);
    mix(g.edge_count() as u64);
    for &ip in g.vertex_data() {
        mix(ip as u64);
    }
    for (_, s, d, p) in g.edges() {
        mix(s.0 as u64);
        mix(d.0 as u64);
        mix(p.protocol.number() as u64);
        mix(p.src_port as u64);
        mix(p.dst_port as u64);
        mix(p.duration_ms);
        mix(p.out_bytes);
        mix(p.in_bytes);
        mix(p.out_pkts);
        mix(p.in_pkts);
        mix(p.state.code());
    }
    h
}

/// Fingerprint of the `rand` implementation itself: FNV-1a over the first 16
/// draws of a fixed-seed `SmallRng`. The workspace may be built against real
/// crates.io `rand` or against an offline stub whose output is deterministic
/// but not bit-identical to upstream, so generator hashes are only comparable
/// between runs whose probe matches. The probe is recorded in the snapshot so
/// a provenance change fails with its own message instead of masquerading as
/// a generator regression.
fn rng_provenance() -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut rng = SmallRng::seed_from_u64(0x0c5b_6010_d3e9);
    let mut h = OFFSET;
    for _ in 0..16 {
        for b in rng.next_u64().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
    }
    h
}

fn fingerprints() -> (u64, u64) {
    let seed = golden_seed();
    let a = graph_fingerprint(&pgpba(&seed, &pgpba_cfg()));
    let b = graph_fingerprint(&pgsk(&seed, &pgsk_cfg()));
    (a, b)
}

#[test]
fn repeated_runs_hash_identically() {
    let first = fingerprints();
    let second = fingerprints();
    assert_eq!(first, second, "same-seed reruns must be bit-identical");
}

#[test]
fn output_is_independent_of_worker_count() {
    let run_with = |threads: usize| {
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool")
            .install(fingerprints)
    };
    let single = run_with(1);
    let seven = run_with(7);
    assert_eq!(single, seven, "per-chunk RNG streams must make output worker-count independent");
}

#[test]
fn hashes_match_snapshot() {
    let probe = rng_provenance();
    let (pgpba_hash, pgsk_hash) = fingerprints();
    let current =
        format!("rand-probe {probe:016x}\npgpba {pgpba_hash:016x}\npgsk {pgsk_hash:016x}\n");
    let path: PathBuf =
        [env!("CARGO_MANIFEST_DIR"), "tests", "snapshots", "golden_hashes.txt"].iter().collect();
    match std::fs::read_to_string(&path) {
        Ok(blessed) => {
            let blessed_probe = blessed.lines().find_map(|l| l.strip_prefix("rand-probe "));
            assert_eq!(
                blessed_probe,
                Some(format!("{probe:016x}").as_str()),
                "snapshot {} was blessed under a different `rand` implementation \
                 (provenance probe mismatch, e.g. stub vs. real crates.io rand); \
                 this is a dependency-provenance change, not a generator regression — \
                 delete the file and rerun to re-bless on this toolchain",
                path.display()
            );
            assert_eq!(
                blessed,
                current,
                "generator output changed for a fixed seed; if intentional \
                 (an RNG-stream change), delete {} and rerun to re-bless",
                path.display()
            );
        }
        Err(_) => {
            // First run on this checkout: bless the snapshot. The file is
            // machine-local (gitignored) because the hashes depend on the
            // `rand` provenance recorded above.
            std::fs::create_dir_all(path.parent().expect("parent")).expect("snapshot dir");
            std::fs::write(&path, &current).expect("write snapshot");
            eprintln!("blessed golden snapshot at {}", path.display());
        }
    }
}
