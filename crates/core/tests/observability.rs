//! Instrumentation must be a pure observer: collecting spans/counters may
//! never perturb generator output (the probes touch no RNG stream), and a
//! disabled collector must cost no more than a relaxed atomic load per site.

use csb_core::{pgpba, pgpba_timed, pgsk, seed_from_trace, PgpbaConfig, PgskConfig, SeedBundle};
use csb_graph::NetflowGraph;
use csb_net::traffic::sim::{TrafficSim, TrafficSimConfig};
use std::time::{Duration, Instant};

fn small_seed() -> SeedBundle {
    let trace = TrafficSim::new(TrafficSimConfig {
        duration_secs: 12.0,
        sessions_per_sec: 18.0,
        seed: 2024,
        ..TrafficSimConfig::default()
    })
    .generate();
    seed_from_trace(&trace)
}

fn pgpba_cfg() -> PgpbaConfig {
    PgpbaConfig { desired_size: 4_000, fraction: 0.5, seed: 97 }
}

/// FNV-1a over vertices, endpoints, and every property field.
fn fingerprint(g: &NetflowGraph) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |v: u64| {
        for b in v.to_le_bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    mix(g.vertex_count() as u64);
    for &ip in g.vertex_data() {
        mix(ip as u64);
    }
    for (_, s, d, p) in g.edges() {
        mix(s.0 as u64);
        mix(d.0 as u64);
        mix(p.src_port as u64);
        mix(p.dst_port as u64);
        mix(p.out_bytes);
        mix(p.in_bytes);
        mix(p.duration_ms);
    }
    h
}

#[test]
fn instrumented_output_is_bit_identical_to_uninstrumented() {
    let _guard = csb_obs::span::test_lock();
    let seed = small_seed();
    let pgsk_cfg = PgskConfig {
        desired_size: 3_000,
        seed: 11,
        kronfit_iterations: 8,
        kronfit_permutation_samples: 200,
    };

    csb_obs::reset();
    csb_obs::disable();
    let off = (fingerprint(&pgpba(&seed, &pgpba_cfg())), fingerprint(&pgsk(&seed, &pgsk_cfg)));
    assert!(csb_obs::flush_spans().is_empty(), "disabled collector must record nothing");

    csb_obs::enable();
    let on = (fingerprint(&pgpba(&seed, &pgpba_cfg())), fingerprint(&pgsk(&seed, &pgsk_cfg)));
    let spans = csb_obs::flush_spans();
    csb_obs::disable();
    csb_obs::reset();

    assert_eq!(off, on, "collector state must not change generator output");
    assert!(spans.iter().any(|s| s.name == "pgpba.grow"), "grow span collected");
    assert!(spans.iter().any(|s| s.name == "attach"), "attach span collected");
    assert!(spans.iter().any(|s| s.name == "attach.chunk"), "per-worker spans collected");
}

#[test]
fn disabled_collector_overhead_smoke() {
    let _guard = csb_obs::span::test_lock();
    let seed = small_seed();
    let cfg = pgpba_cfg();
    let best_of = |runs: usize, f: &dyn Fn()| {
        let mut best = Duration::MAX;
        for _ in 0..runs {
            let t = Instant::now();
            f();
            best = best.min(t.elapsed());
        }
        best
    };

    csb_obs::reset();
    csb_obs::disable();
    let disabled = best_of(3, &|| {
        let (g, t) = pgpba_timed(&seed, &cfg);
        assert!(g.edge_count() >= 4_000);
        assert!(t.total() > Duration::ZERO);
    });
    assert!(csb_obs::flush_spans().is_empty());

    csb_obs::enable();
    let enabled = best_of(3, &|| {
        let (g, _) = pgpba_timed(&seed, &cfg);
        assert!(g.edge_count() >= 4_000);
    });
    csb_obs::disable();
    csb_obs::reset();

    // Smoke bound, deliberately loose for CI noise: the disabled path (one
    // relaxed load per probe) must not be meaningfully slower than the
    // enabled path, which does strictly more work. The tight <2% bound is
    // checked on the criterion `materialize` bench, not here.
    assert!(
        disabled < enabled * 2 + Duration::from_millis(250),
        "disabled collector should be at least as fast: disabled {disabled:?} vs enabled {enabled:?}"
    );
}
