//! Property-based tests for the Kronecker machinery and generator
//! invariants.

use csb_core::kronecker::initiator::{BitCounts, Initiator};
use csb_core::kronecker::{generate_edges, place_edge};
use csb_stats::rng::rng_for;
use proptest::prelude::*;

/// Strategy for valid initiators with positive mass.
fn arb_initiator() -> impl Strategy<Value = Initiator> {
    (0.05f64..1.0, 0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0)
        .prop_map(|(a, b, c, d)| Initiator::new([[a, b], [c, d]]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Bit-pair counts always sum to k and match a naive per-level count.
    #[test]
    fn bit_counts_sum_to_k(u in any::<u64>(), v in any::<u64>(), k in 1u32..32) {
        let c = BitCounts::of(u, v, k);
        prop_assert_eq!(c.c00 + c.c01 + c.c10 + c.c11, k);
        // Naive recount.
        let (mut n00, mut n01, mut n10, mut n11) = (0u32, 0, 0, 0);
        for level in 0..k {
            let bu = (u >> level) & 1;
            let bv = (v >> level) & 1;
            match (bu, bv) {
                (0, 0) => n00 += 1,
                (0, 1) => n01 += 1,
                (1, 0) => n10 += 1,
                (1, 1) => n11 += 1,
                _ => unreachable!(),
            }
        }
        prop_assert_eq!((c.c00, c.c01, c.c10, c.c11), (n00, n01, n10, n11));
    }

    /// Edge probabilities are valid probabilities and total to sum^k.
    #[test]
    fn edge_probabilities_valid(init in arb_initiator(), k in 1u32..6) {
        let n = Initiator::num_vertices(k);
        let mut total = 0.0;
        for u in 0..n {
            for v in 0..n {
                let p = init.edge_probability(u, v, k);
                prop_assert!((0.0..=1.0 + 1e-12).contains(&p));
                total += p;
            }
        }
        prop_assert!((total - init.expected_edges(k)).abs() < 1e-6 * total.max(1.0));
    }

    /// Recursive descent always lands inside the vertex universe.
    #[test]
    fn descent_in_bounds(init in arb_initiator(), k in 1u32..20, seed in any::<u64>()) {
        let mut rng = rng_for(seed, 0);
        let n = Initiator::num_vertices(k);
        for _ in 0..32 {
            let (u, v) = place_edge(&init, k, &mut rng);
            prop_assert!(u < n && v < n);
        }
    }

    /// Batch generation is deterministic and exactly sized.
    #[test]
    fn batch_generation_contract(init in arb_initiator(), count in 0usize..2000, seed in any::<u64>()) {
        let a = generate_edges(&init, 8, count, seed);
        prop_assert_eq!(a.len(), count);
        let b = generate_edges(&init, 8, count, seed);
        prop_assert_eq!(a, b);
    }
}
