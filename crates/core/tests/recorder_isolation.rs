//! Scoped-recorder contract at the GenJob level: concurrent jobs handed
//! separate recorders must produce disjoint telemetry (no cross-job
//! contamination, nothing leaking onto the global recorder), and scoping
//! telemetry must never change the bytes a store run writes.

use csb_core::{seed_from_trace, GenJob, PgpbaConfig, SeedBundle};
use csb_net::traffic::sim::{TrafficSim, TrafficSimConfig};
use std::path::PathBuf;

fn small_seed(sim_seed: u64) -> SeedBundle {
    let trace = TrafficSim::new(TrafficSimConfig {
        duration_secs: 10.0,
        sessions_per_sec: 15.0,
        seed: sim_seed,
        ..TrafficSimConfig::default()
    })
    .generate();
    seed_from_trace(&trace)
}

fn temp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("csb-rec-iso-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&d).expect("mkdir");
    d
}

#[test]
fn concurrent_jobs_on_separate_recorders_stay_disjoint() {
    let _guard = csb_obs::span::test_lock();
    csb_obs::disable();
    csb_obs::reset();

    let rec_a = csb_obs::Recorder::new();
    let rec_b = csb_obs::Recorder::new();
    let (ra, rb) = (rec_a.clone(), rec_b.clone());
    let (edges_a, edges_b) = std::thread::scope(|s| {
        let a = s.spawn(move || {
            let seed = small_seed(31);
            GenJob::pgpba(&seed, PgpbaConfig { desired_size: 3_000, fraction: 0.5, seed: 5 })
                .recorder(ra)
                .job_id("job-a")
                .run()
                .expect("job a")
                .edges
        });
        let b = s.spawn(move || {
            let seed = small_seed(32);
            GenJob::pgpba(&seed, PgpbaConfig { desired_size: 5_000, fraction: 0.5, seed: 6 })
                .recorder(rb)
                .job_id("job-b")
                .run()
                .expect("job b")
                .edges
        });
        (a.join().expect("thread a"), b.join().expect("thread b"))
    });

    // Each recorder saw exactly its own job's edges...
    let snap_a = rec_a.snapshot_metrics();
    let snap_b = rec_b.snapshot_metrics();
    assert_eq!(snap_a.counter("attach.edges"), Some(edges_a));
    assert_eq!(snap_b.counter("attach.edges"), Some(edges_b));
    assert_ne!(edges_a, edges_b, "jobs were sized apart on purpose");

    // ...its own spans (including per-chunk spans from rayon workers)...
    let spans_a = rec_a.flush_spans();
    let spans_b = rec_b.flush_spans();
    for (label, spans) in [("a", &spans_a), ("b", &spans_b)] {
        assert!(spans.iter().any(|s| s.name == "genjob.run"), "job {label} run span");
        assert!(spans.iter().any(|s| s.name == "attach.chunk"), "job {label} chunk spans");
    }

    // ...and its own status board, finished with its own identity.
    let st_a = rec_a.status().snapshot();
    let st_b = rec_b.status().snapshot();
    assert_eq!(st_a.job_id, "job-a");
    assert_eq!(st_b.job_id, "job-b");
    assert!(st_a.done && st_b.done);
    assert_eq!(st_a.edges_done, edges_a);
    assert_eq!(st_b.edges_done, edges_b);
    assert_eq!(st_a.phase, "done");

    // Nothing leaked onto the (disabled) global recorder.
    assert!(csb_obs::flush_spans().is_empty(), "global recorder caught scoped spans");
    assert!(csb_obs::snapshot_metrics().counters.is_empty(), "global recorder caught metrics");
}

#[test]
fn scoped_telemetry_store_run_is_bit_identical_to_telemetry_off() {
    let _guard = csb_obs::span::test_lock();
    csb_obs::disable();
    csb_obs::reset();
    let seed = small_seed(33);
    let cfg = PgpbaConfig { desired_size: 4_000, fraction: 0.5, seed: 9 };
    let dir = temp_dir("bytes");
    let off_path = dir.join("off.csbstore");
    let on_path = dir.join("on.csbstore");

    GenJob::pgpba(&seed, cfg).store(&off_path).shards(3).run().expect("telemetry off");

    let rec = csb_obs::Recorder::new();
    let run = GenJob::pgpba(&seed, cfg)
        .store(&on_path)
        .shards(3)
        .recorder(rec.clone())
        .run()
        .expect("telemetry scoped");

    // The scoped run actually recorded (it went through the sharded writer
    // threads and the status board)...
    let snap = rec.snapshot_metrics();
    assert_eq!(snap.counter("store.edge_records_written"), Some(run.edges));
    let st = rec.status().snapshot();
    assert!(st.chunks_closed > 0, "chunk closes reach the scoped board");
    assert!(st.done);

    // ...and every shard byte matches the silent run (extends the PR 2
    // on-vs-off guarantee to the scoped path).
    for i in 0..3 {
        let off_shard = dir.join(format!("off.csbstore.s{i}"));
        let on_shard = dir.join(format!("on.csbstore.s{i}"));
        assert_eq!(
            std::fs::read(&off_shard).expect("read off shard"),
            std::fs::read(&on_shard).expect("read on shard"),
            "telemetry changed shard {i} bytes"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpointed_job_reports_progress_on_its_recorder() {
    let _guard = csb_obs::span::test_lock();
    csb_obs::disable();
    csb_obs::reset();
    let seed = small_seed(34);
    let dir = temp_dir("ckpt");
    let rec = csb_obs::Recorder::new();
    let run = GenJob::pgpba(&seed, PgpbaConfig { desired_size: 3_000, fraction: 0.5, seed: 4 })
        .store(dir.join("g.csbstore"))
        .checkpoint(dir.join("ckpt"))
        .checkpoint_every(1)
        .recorder(rec.clone())
        .run()
        .expect("checkpointed run");

    let st = rec.status().snapshot();
    assert!(st.done);
    assert_eq!(st.edges_done, run.edges);
    assert!(st.chunks_closed > 0);
    assert!(st.barriers >= 1, "checkpoint barriers reach the scoped board");
    assert!(st.chunks_durable > 0);
    assert!(st.started_micros.is_some());
    // The board renders as valid JSON for GET /status.
    csb_obs::json::validate_json(&st.to_json()).expect("status JSON");
    assert!(csb_obs::flush_spans().is_empty(), "global recorder stayed clean");
    std::fs::remove_dir_all(&dir).ok();
}
