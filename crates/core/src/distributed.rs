//! Map-reduce implementations of PGPBA and PGSK on the `csb-engine`
//! dataflow — mirroring the paper's Spark/GraphX code path operator by
//! operator:
//!
//! * PGPBA: `RDD.sample()` over the edge dataset (stage 1 of the
//!   preferential attachment), per-record vertex creation and attachment
//!   (map side only — no shuffle), `union` back into the edge dataset.
//! * PGSK: recursive-descent batches as a `flat_map`, `RDD.distinct()` to
//!   discard conflicting descents, driver-side KronFit (as in SNAP),
//!   `flat_map` re-inflation, `map` property generation.
//!
//! The operators run on real threads over real partitions; the recorded
//! [`JobMetrics`] feed the simulated-cluster cost model for the paper-scale
//! performance figures.

use crate::config::{PgpbaConfig, PgskConfig};
use crate::kronecker::{generate_edges, Initiator};
use crate::pgsk::expand;
use crate::seed::SeedBundle;
use crate::topo::{attach_properties, Topology};
use csb_engine::{JobMetrics, Pdd, TaskPolicy, ThreadPool};
use csb_graph::NetflowGraph;
use csb_stats::rng::{derive_seed, rng_for};
use rand::Rng;

/// Engine-level execution settings.
#[derive(Debug, Clone)]
pub struct DistConfig {
    /// Number of dataset partitions (the paper tunes this to 2-4x the
    /// executor cores).
    pub partitions: usize,
    /// Worker threads.
    pub threads: usize,
    /// Task retry/fault policy the engine runs every partition task under
    /// (retries with deterministic backoff; optional fault injection).
    pub tasks: TaskPolicy,
}

impl Default for DistConfig {
    fn default() -> Self {
        DistConfig { partitions: 8, threads: 4, tasks: TaskPolicy::default() }
    }
}

/// Distributed PGPBA: grows the topology on the dataflow engine.
/// Returns the topology and the recorded operator metrics.
pub fn pgpba_distributed(
    seed: &SeedBundle,
    cfg: &PgpbaConfig,
    dist: &DistConfig,
) -> (Topology, JobMetrics) {
    cfg.validate();
    let _span = csb_obs::span_cat("pgpba.distributed", "engine");
    csb_obs::obs_info!(
        "distributed PGPBA: target {} edges on {} partitions / {} threads",
        cfg.desired_size,
        dist.partitions,
        dist.threads
    );
    let metrics = JobMetrics::new();
    let pool = ThreadPool::new(dist.threads);
    let seed_topo = Topology::of_graph(&seed.graph);
    let seed_pairs: Vec<(u32, u32)> =
        seed_topo.src.iter().copied().zip(seed_topo.dst.iter().copied()).collect();

    let mut edges = Pdd::from_vec(seed_pairs, dist.partitions, pool, metrics.clone())
        .with_tasks(dist.tasks.clone());
    let mut num_vertices = seed_topo.num_vertices;
    let mut iteration = 0u64;
    // Final-iteration clamp mirroring `pgpba_topology`: cap the sampling
    // fraction so the expected overshoot stays within one mean degree.
    let mean_degree = (seed.analysis.out_degree.mean() + seed.analysis.in_degree.mean()).max(1.0);

    while edges.count() < cfg.desired_size {
        iteration += 1;
        // Stage 1: sample fraction*|E| edges (with replacement, so
        // fraction > 1 works as in the paper's performance runs).
        let count = edges.count();
        let remaining = cfg.desired_size - count;
        let needed = (remaining as f64 / mean_degree).ceil().max(1.0);
        let fraction = cfg.fraction.min(needed / count as f64);
        let sampled = edges.sample_with_replacement(fraction, cfg.seed ^ iteration);
        if sampled.count() == 0 {
            continue;
        }
        // Globally unique new-vertex ids: per-partition offsets.
        let sizes = sampled.partition_sizes();
        let mut offsets = vec![0u32; sizes.len()];
        let mut acc = num_vertices;
        for (o, s) in offsets.iter_mut().zip(sizes.iter()) {
            *o = acc;
            acc += *s as u32;
        }
        num_vertices = acc;

        let analysis = &seed.analysis;
        let it = iteration;
        let master = cfg.seed;
        let new_edges = sampled.flat_map_indexed(move |p, i, (s, d)| {
            let mut rng = rng_for(master, (it << 40) ^ ((p as u64) << 24) ^ i as u64);
            let v = offsets[p] + i as u32;
            // Stage 2: one endpoint of the sampled edge, uniformly.
            let dest = if rng.gen::<bool>() { s } else { d };
            let mut out_d = analysis.out_degree.sample(&mut rng);
            let in_d = analysis.in_degree.sample(&mut rng);
            if out_d == 0 && in_d == 0 {
                out_d = 1;
            }
            let mut out = Vec::with_capacity((out_d + in_d) as usize);
            for _ in 0..out_d {
                out.push((v, dest));
            }
            for _ in 0..in_d {
                out.push((dest, v));
            }
            out
        });
        edges = edges.union(new_edges);
        csb_obs::obs_debug!("distributed PGPBA iteration {iteration}: {} edges", edges.count());
    }

    let pairs = edges.collect();
    let topo = Topology {
        num_vertices,
        src: pairs.iter().map(|&(s, _)| s).collect(),
        dst: pairs.iter().map(|&(_, d)| d).collect(),
    };
    (topo, metrics)
}

/// Distributed PGSK: Kronecker expansion with engine-side `distinct()`.
pub fn pgsk_distributed(
    seed: &SeedBundle,
    cfg: &PgskConfig,
    dist: &DistConfig,
) -> (Topology, JobMetrics) {
    cfg.validate();
    let _span = csb_obs::span_cat("pgsk.distributed", "engine");
    csb_obs::obs_info!(
        "distributed PGSK: target {} edges on {} partitions / {} threads",
        cfg.desired_size,
        dist.partitions,
        dist.threads
    );
    let metrics = JobMetrics::new();
    let pool = ThreadPool::new(dist.threads);
    let seed_topo = Topology::of_graph(&seed.graph);

    // Fig. 3 lines 1-5 on the engine: dedup the seed's edge multiset.
    let seed_pairs: Vec<(u32, u32)> =
        seed_topo.src.iter().copied().zip(seed_topo.dst.iter().copied()).collect();
    let simple_pdd = Pdd::from_vec(seed_pairs, dist.partitions, pool, metrics.clone())
        .with_tasks(dist.tasks.clone())
        .distinct();
    let mut simple = simple_pdd.collect();
    simple.sort_unstable();

    // Driver-side KronFit (sequential in SNAP too); reuse the in-process
    // expansion sizing, then regenerate the descent on the engine.
    let dup = {
        // Expected duplication factor matches pgsk_topology's clamp.
        let d = &seed.analysis.out_degree;
        let total: f64 = d.weights().iter().sum();
        d.support().iter().zip(d.weights().iter()).map(|(&v, &w)| v.max(1) as f64 * w).sum::<f64>()
            / total
    };
    let target_distinct = ((cfg.desired_size as f64 / dup.max(1.0)).ceil() as u64).max(1);
    let expansion = expand(&simple, seed_topo.num_vertices, target_distinct, cfg);
    let initiator: Initiator = expansion.initiator;
    let k = expansion.k;

    // Engine-side descent + distinct, batched until the target is met
    // (the paper's "parallel implementation of the recursive descent ...
    // called until the number of generated edges is equal or greater").
    let mut distinct: Pdd<(u64, u64)> =
        Pdd::empty(dist.partitions, pool, metrics.clone()).with_tasks(dist.tasks.clone());
    let mut round = 0u64;
    while distinct.count() < target_distinct {
        round += 1;
        let remaining = (target_distinct - distinct.count()) as usize;
        let batch = (remaining * 5 / 4).max(64);
        // One record per chunk of descents keeps the flat_map balanced.
        const CHUNK: usize = 2048;
        let chunks: Vec<usize> = (0..batch.div_ceil(CHUNK)).collect();
        let gen_seed = cfg.seed ^ (0xD15C << 8) ^ round;
        let candidates = Pdd::from_vec(chunks, dist.partitions, pool, metrics.clone())
            .with_tasks(dist.tasks.clone())
            .flat_map(move |c| {
                let n = CHUNK.min(batch - c * CHUNK);
                // Mixed, not added: `gen_seed + c` would let chunk c of one
                // round replay a chunk of an adjacent round (the same replay
                // bug `pgsk::expand` had across master seeds).
                generate_edges(&initiator, k, n, derive_seed(gen_seed, c as u64))
            });
        distinct = distinct.union(candidates).distinct();
        csb_obs::obs_debug!(
            "distributed PGSK round {round}: {} of {target_distinct} distinct edges",
            distinct.count()
        );
        assert!(round < 10_000, "distributed PGSK expansion failed to converge");
    }

    // Re-inflation (lines 8-12) and vertex-id compaction.
    let analysis = &seed.analysis;
    let master = cfg.seed;
    let inflated = distinct.flat_map_indexed(move |p, i, (u, v)| {
        let mut rng = rng_for(master ^ 0xD0B, ((p as u64) << 40) ^ i as u64);
        let copies = analysis.out_degree.sample(&mut rng).max(1);
        std::iter::repeat_n((u, v), copies as usize).collect::<Vec<_>>()
    });
    let pairs = inflated.collect();
    let mut remap: std::collections::HashMap<u64, u32> = std::collections::HashMap::new();
    let mut next = 0u32;
    let mut topo = Topology::default();
    for &(u, v) in &pairs {
        let su = *remap.entry(u).or_insert_with(|| {
            let id = next;
            next += 1;
            id
        });
        let sv = *remap.entry(v).or_insert_with(|| {
            let id = next;
            next += 1;
            id
        });
        topo.src.push(su);
        topo.dst.push(sv);
    }
    topo.num_vertices = next;
    (topo, metrics)
}

/// Materializes a distributed topology into a property-graph (shared final
/// phase; parallel attribute sampling).
pub fn materialize(topo: &Topology, seed: &SeedBundle, rng_seed: u64) -> NetflowGraph {
    let seed_ips: Vec<u32> = seed.graph.vertex_data().to_vec();
    attach_properties(topo, &seed.analysis.properties, &seed_ips, rng_seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seed::seed_from_trace;
    use crate::veracity::{Metric, VeracityJob};
    use csb_net::traffic::sim::{TrafficSim, TrafficSimConfig};

    fn degree_veracity(seed: &NetflowGraph, synthetic: &NetflowGraph) -> f64 {
        VeracityJob::new()
            .seed_graph(seed)
            .synthetic_graph(synthetic)
            .metrics([Metric::Degree])
            .run()
            .expect("in-memory veracity")
            .score("degree")
            .expect("degree scored")
    }

    fn small_seed() -> SeedBundle {
        let trace = TrafficSim::new(TrafficSimConfig {
            duration_secs: 12.0,
            sessions_per_sec: 15.0,
            seed: 5,
            ..TrafficSimConfig::default()
        })
        .generate();
        seed_from_trace(&trace)
    }

    #[test]
    fn distributed_pgpba_reaches_size_and_preserves_shape() {
        let seed = small_seed();
        let target = seed.edge_count() as u64 * 6;
        let cfg = PgpbaConfig { desired_size: target, fraction: 0.5, seed: 1 };
        let (topo, metrics) = pgpba_distributed(&seed, &cfg, &DistConfig::default());
        assert!(topo.edge_count() as u64 >= target);
        assert!(!metrics.is_empty());
        // Same veracity regime as the in-process implementation.
        let g = materialize(&topo, &seed, 99);
        let score = degree_veracity(&seed.graph, &g);
        assert!(score < 0.01, "distributed PGPBA veracity {score}");
    }

    #[test]
    fn distributed_pgpba_keeps_seed_prefix() {
        let seed = small_seed();
        let cfg =
            PgpbaConfig { desired_size: seed.edge_count() as u64 * 2, fraction: 0.3, seed: 2 };
        let (topo, _) = pgpba_distributed(&seed, &cfg, &DistConfig::default());
        // Round-robin partitioning permutes order, but every seed edge must
        // still be present with at least seed multiplicity.
        let count = |pairs: &[(u32, u32)]| {
            let mut m = std::collections::HashMap::new();
            for &p in pairs {
                *m.entry(p).or_insert(0u64) += 1;
            }
            m
        };
        let seed_topo = Topology::of_graph(&seed.graph);
        let seed_pairs: Vec<(u32, u32)> =
            seed_topo.src.iter().copied().zip(seed_topo.dst.iter().copied()).collect();
        let out_pairs: Vec<(u32, u32)> =
            topo.src.iter().copied().zip(topo.dst.iter().copied()).collect();
        let seed_counts = count(&seed_pairs);
        let out_counts = count(&out_pairs);
        for (pair, &c) in &seed_counts {
            assert!(out_counts.get(pair).copied().unwrap_or(0) >= c, "seed edge {pair:?} lost");
        }
    }

    #[test]
    fn distributed_pgsk_reaches_size() {
        let seed = small_seed();
        let target = seed.edge_count() as u64 * 2;
        let cfg = PgskConfig {
            desired_size: target,
            seed: 3,
            kronfit_iterations: 6,
            kronfit_permutation_samples: 100,
        };
        let (topo, metrics) = pgsk_distributed(&seed, &cfg, &DistConfig::default());
        let got = topo.edge_count() as u64;
        assert!(got >= target / 2 && got <= target * 2, "target {target}, got {got}");
        // The engine must have shuffled for distinct().
        assert!(metrics.total_shuffled() > 0, "PGSK must shuffle");
        assert!(metrics.ops().iter().any(|o| o.op == "distinct"));
    }

    #[test]
    fn distributed_runs_are_deterministic() {
        let seed = small_seed();
        let cfg =
            PgpbaConfig { desired_size: seed.edge_count() as u64 * 2, fraction: 0.4, seed: 7 };
        let (a, _) = pgpba_distributed(&seed, &cfg, &DistConfig::default());
        let (b, _) = pgpba_distributed(&seed, &cfg, &DistConfig::default());
        assert_eq!(a.edge_count(), b.edge_count());
        assert_eq!(a.num_vertices, b.num_vertices);
    }
}
