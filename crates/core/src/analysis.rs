//! Seed analysis (paper Fig. 1, last step): the structural and attribute
//! distributions that drive generation.
//!
//! Structure: the in- and out-degree empirical distributions. Attributes:
//! following the paper, the unconditional distribution `p(IN_BYTES)` is
//! computed first and every other NetFlow attribute `a` is modeled as
//! `p(a | IN_BYTES)`, so that generated attributes are mutually consistent
//! (a 60-byte flow gets DNS-like ports and one packet, not a gigabyte
//! duration).

use csb_graph::{EdgeProperties, NetflowGraph};
use csb_net::flow::{Protocol, TcpConnState};
use csb_stats::{ConditionalDistribution, EmpiricalDistribution};
use rand::Rng;

/// The attribute model: `p(IN_BYTES)` plus `p(a | IN_BYTES)` for the other
/// eight NetFlow attributes.
#[derive(Debug, Clone)]
pub struct PropertyModel {
    /// Unconditional `p(IN_BYTES)`.
    pub in_bytes: EmpiricalDistribution,
    /// `p(PROTOCOL | IN_BYTES)` over IANA protocol numbers.
    pub protocol: ConditionalDistribution,
    /// `p(SRC_PORT | IN_BYTES)`.
    pub src_port: ConditionalDistribution,
    /// `p(DEST_PORT | IN_BYTES)`.
    pub dst_port: ConditionalDistribution,
    /// `p(DURATION | IN_BYTES)` (milliseconds).
    pub duration_ms: ConditionalDistribution,
    /// `p(OUT_BYTES | IN_BYTES)`.
    pub out_bytes: ConditionalDistribution,
    /// `p(OUT_PKTS | IN_BYTES)`.
    pub out_pkts: ConditionalDistribution,
    /// `p(IN_PKTS | IN_BYTES)`.
    pub in_pkts: ConditionalDistribution,
    /// `p(STATE | IN_BYTES)` over [`TcpConnState`] codes.
    pub state: ConditionalDistribution,
}

impl PropertyModel {
    /// Extracts the model from a seed graph's edges.
    ///
    /// # Panics
    /// Panics if the graph has no edges.
    pub fn from_graph(g: &NetflowGraph) -> Self {
        assert!(g.edge_count() > 0, "property model needs at least one edge");
        let props = g.edge_data();
        let in_bytes = EmpiricalDistribution::from_samples(props.iter().map(|p| p.in_bytes));
        let pairs = |f: &dyn Fn(&EdgeProperties) -> u64| {
            props.iter().map(|p| (p.in_bytes, f(p))).collect::<Vec<_>>()
        };
        PropertyModel {
            in_bytes,
            protocol: ConditionalDistribution::from_pairs(pairs(&|p| p.protocol.number() as u64)),
            src_port: ConditionalDistribution::from_pairs(pairs(&|p| p.src_port as u64)),
            dst_port: ConditionalDistribution::from_pairs(pairs(&|p| p.dst_port as u64)),
            duration_ms: ConditionalDistribution::from_pairs(pairs(&|p| p.duration_ms)),
            out_bytes: ConditionalDistribution::from_pairs(pairs(&|p| p.out_bytes)),
            out_pkts: ConditionalDistribution::from_pairs(pairs(&|p| p.out_pkts)),
            in_pkts: ConditionalDistribution::from_pairs(pairs(&|p| p.in_pkts)),
            state: ConditionalDistribution::from_pairs(pairs(&|p| p.state.code())),
        }
    }

    /// Samples one edge's attributes *independently* from the marginals —
    /// the strawman the conditional design replaces. Kept for the
    /// `ablation_conditional_props` harness: independent sampling destroys
    /// cross-attribute correlations (e.g. a 60-byte flow can receive a
    /// 10^6-packet count).
    pub fn sample_independent<R: Rng + ?Sized>(&self, rng: &mut R) -> EdgeProperties {
        let protocol = Protocol::from_number(self.protocol.marginal().sample(rng) as u8)
            .unwrap_or(Protocol::Tcp);
        let state =
            TcpConnState::from_code(self.state.marginal().sample(rng)).unwrap_or(TcpConnState::Oth);
        EdgeProperties {
            protocol,
            src_port: self.src_port.marginal().sample(rng) as u16,
            dst_port: self.dst_port.marginal().sample(rng) as u16,
            duration_ms: self.duration_ms.marginal().sample(rng),
            out_bytes: self.out_bytes.marginal().sample(rng),
            in_bytes: self.in_bytes.sample(rng),
            out_pkts: self.out_pkts.marginal().sample(rng),
            in_pkts: self.in_pkts.marginal().sample(rng),
            state,
        }
    }

    /// Samples one edge's attributes: `IN_BYTES` first, the rest conditioned
    /// on it (paper Fig. 1 commentary / Fig. 2 lines 15-20).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> EdgeProperties {
        let in_bytes = self.in_bytes.sample(rng);
        let protocol = Protocol::from_number(self.protocol.sample_given(in_bytes, rng) as u8)
            .unwrap_or(Protocol::Tcp);
        let state = TcpConnState::from_code(self.state.sample_given(in_bytes, rng))
            .unwrap_or(TcpConnState::Oth);
        EdgeProperties {
            protocol,
            src_port: self.src_port.sample_given(in_bytes, rng) as u16,
            dst_port: self.dst_port.sample_given(in_bytes, rng) as u16,
            duration_ms: self.duration_ms.sample_given(in_bytes, rng),
            out_bytes: self.out_bytes.sample_given(in_bytes, rng),
            in_bytes,
            out_pkts: self.out_pkts.sample_given(in_bytes, rng),
            in_pkts: self.in_pkts.sample_given(in_bytes, rng),
            state,
        }
    }
}

/// Everything the generators need to know about the seed.
#[derive(Debug, Clone)]
pub struct SeedAnalysis {
    /// Empirical in-degree distribution of the seed's vertices.
    pub in_degree: EmpiricalDistribution,
    /// Empirical out-degree distribution.
    pub out_degree: EmpiricalDistribution,
    /// The attribute model.
    pub properties: PropertyModel,
}

impl SeedAnalysis {
    /// Analyzes a seed graph.
    ///
    /// # Panics
    /// Panics if the graph has no vertices or no edges.
    pub fn of(g: &NetflowGraph) -> Self {
        assert!(g.vertex_count() > 0, "seed graph has no vertices");
        let dd = csb_graph::algo::degree_distribution(g);
        SeedAnalysis {
            in_degree: dd.in_degree,
            out_degree: dd.out_degree,
            properties: PropertyModel::from_graph(g),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csb_graph::graph_from_flows;
    use csb_net::flow::FlowRecord;
    use csb_stats::rng::rng_for;

    fn flow(src: u32, dst: u32, in_bytes: u64, dur: u64, proto: Protocol) -> FlowRecord {
        FlowRecord {
            src_ip: src,
            dst_ip: dst,
            protocol: proto,
            src_port: 40000,
            dst_port: if proto == Protocol::Udp { 53 } else { 80 },
            duration_ms: dur,
            out_bytes: in_bytes / 10 + 1,
            in_bytes,
            out_pkts: 2,
            in_pkts: in_bytes / 1400 + 1,
            state: if proto == Protocol::Udp { TcpConnState::Oth } else { TcpConnState::Sf },
            syn_count: 1,
            ack_count: 2,
            first_ts_micros: 0,
        }
    }

    fn seed_graph() -> NetflowGraph {
        // Two regimes: small UDP flows (~100 B, short) and big TCP flows
        // (~1 MB, long).
        let mut flows = Vec::new();
        for i in 0..50u32 {
            flows.push(flow(1, 2 + i % 5, 100 + (i % 7) as u64, 10, Protocol::Udp));
            flows.push(flow(2 + i % 5, 1, 1_000_000 + (i % 3) as u64, 5_000, Protocol::Tcp));
        }
        graph_from_flows(&flows)
    }

    #[test]
    fn conditional_sampling_is_consistent() {
        let g = seed_graph();
        let model = PropertyModel::from_graph(&g);
        let mut rng = rng_for(1, 0);
        for _ in 0..500 {
            let p = model.sample(&mut rng);
            if p.in_bytes < 1000 {
                // Small flows must look like the UDP regime.
                assert_eq!(p.protocol, Protocol::Udp, "small flow got {:?}", p.protocol);
                assert_eq!(p.duration_ms, 10);
                assert_eq!(p.dst_port, 53);
                assert_eq!(p.state, TcpConnState::Oth);
            } else {
                assert_eq!(p.protocol, Protocol::Tcp, "large flow got {:?}", p.protocol);
                assert_eq!(p.duration_ms, 5_000);
                assert_eq!(p.dst_port, 80);
                assert_eq!(p.state, TcpConnState::Sf);
            }
        }
    }

    #[test]
    fn in_bytes_marginal_matches_seed_mix() {
        let g = seed_graph();
        let model = PropertyModel::from_graph(&g);
        let mut rng = rng_for(2, 0);
        let small = (0..10_000).filter(|_| model.in_bytes.sample(&mut rng) < 1000).count() as f64
            / 10_000.0;
        assert!((small - 0.5).abs() < 0.03, "small-flow fraction {small}");
    }

    #[test]
    fn seed_analysis_exposes_degrees() {
        let g = seed_graph();
        let a = SeedAnalysis::of(&g);
        // Vertex 1 originates 50 UDP flows; others originate 10 each.
        assert_eq!(a.out_degree.max(), 50);
        assert!(a.in_degree.mean() > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one edge")]
    fn empty_graph_rejected() {
        let g = NetflowGraph::new();
        let _ = PropertyModel::from_graph(&g);
    }
}
