//! Property-Graph Stochastic Kronecker (PGSK), paper Fig. 3.
//!
//! Pipeline:
//! 1. **Simplify** the seed multigraph to a plain graph `Gp` (one edge per
//!    vertex pair, attributes stripped) — lines 1-5, `O(|E|)` via hashing.
//! 2. **KronFit** a 2x2 initiator on `Gp` — line 6.
//! 3. **Kronecker expansion**: recursive-descent edge placement batches,
//!    deduplicated (`distinct()`), repeated until the distinct-edge target
//!    is met — line 7.
//! 4. **Multi-edge re-inflation**: each distinct edge is duplicated
//!    `sample(outDegree)` times so the multigraph character of NetFlow data
//!    returns — lines 8-12.
//! 5. **Attribute generation** for every edge — lines 13-18.

use crate::analysis::SeedAnalysis;
use crate::config::PgskConfig;
use crate::diagnostics::PhaseTimings;
use crate::kronecker::{generate_edges, kronfit, Initiator};
use crate::seed::SeedBundle;
use crate::topo::{attach_properties, edge_windows, Topology};
use csb_graph::NetflowGraph;
use csb_stats::rng::{derive_seed, rng_for};
use csb_stats::EmpiricalDistribution;
use rayon::prelude::*;
use std::collections::HashSet;
use std::time::Instant;

/// Mean of `max(sample, 1)` under a distribution — the expected duplication
/// factor of step 4 (duplication counts are clamped to >= 1 so no distinct
/// edge disappears).
fn mean_duplication(d: &EmpiricalDistribution) -> f64 {
    let total: f64 = d.weights().iter().sum();
    d.support().iter().zip(d.weights().iter()).map(|(&v, &w)| v.max(1) as f64 * w).sum::<f64>()
        / total
}

/// Deduplicates a topology's edges (Fig. 3 lines 1-5).
pub fn simplify(topo: &Topology) -> Vec<(u32, u32)> {
    let mut set: HashSet<(u32, u32)> = HashSet::with_capacity(topo.edge_count());
    for (&s, &d) in topo.src.iter().zip(topo.dst.iter()) {
        set.insert((s, d));
    }
    let mut edges: Vec<(u32, u32)> = set.into_iter().collect();
    edges.sort_unstable();
    edges
}

/// Result of the expansion phase: distinct Kronecker edges plus the model.
#[derive(Debug, Clone)]
pub struct KroneckerExpansion {
    /// The fitted initiator.
    pub initiator: Initiator,
    /// Kronecker power used.
    pub k: u32,
    /// Distinct generated edges.
    pub edges: Vec<(u64, u64)>,
    /// Descent batches needed (the "iterations" of the paper's Section V).
    pub batches: u32,
}

/// RNG stream for descent batch `batch` under `master`.
///
/// Mixed through [`derive_seed`] rather than added: `master + batch` would
/// make batch `b` of master seed `s` replay batch `b-1` of master seed
/// `s + 1`, so adjacent seeds shared most of their expansions.
fn batch_stream(master: u64, batch: u64) -> u64 {
    derive_seed(master, batch)
}

/// Runs steps 1-3: fit and expand until `target_distinct` distinct edges
/// exist (or the space is exhausted).
pub fn expand(
    seed_edges: &[(u32, u32)],
    num_vertices: u32,
    target_distinct: u64,
    cfg: &PgskConfig,
) -> KroneckerExpansion {
    let initiator = kronfit(
        seed_edges,
        num_vertices,
        cfg.kronfit_iterations,
        cfg.kronfit_permutation_samples,
        cfg.seed,
    );
    // Pick k so the expected edge count covers the target; headroom of 2x
    // counters dedup losses.
    let k = initiator.iterations_for_edges(target_distinct as f64 * 2.0).min(31);
    let mut distinct: HashSet<(u64, u64)> = HashSet::with_capacity(target_distinct as usize);
    let mut batches = 0u32;
    while (distinct.len() as u64) < target_distinct {
        batches += 1;
        let remaining = target_distinct - distinct.len() as u64;
        // Oversample slightly: some placements collide.
        let batch = (remaining as usize * 5 / 4).max(64);
        for e in generate_edges(&initiator, k, batch, batch_stream(cfg.seed, batches as u64)) {
            distinct.insert(e);
        }
        assert!(
            batches < 10_000,
            "Kronecker expansion failed to reach {target_distinct} distinct edges \
             (space too small for the fitted initiator)"
        );
    }
    let mut edges: Vec<(u64, u64)> = distinct.into_iter().collect();
    edges.sort_unstable();
    KroneckerExpansion { initiator, k, edges, batches }
}

/// Steps 1-3 for a seed topology: simplify, fit, expand to the distinct-edge
/// target implied by `desired_size` and the seed's duplication factor.
fn expansion_for(
    seed_topo: &Topology,
    analysis: &SeedAnalysis,
    cfg: &PgskConfig,
) -> KroneckerExpansion {
    let _grow = csb_obs::span_cat("pgsk.grow", "gen");
    let simple = simplify(seed_topo);
    let dup = mean_duplication(&analysis.out_degree).max(1.0);
    let target_distinct = ((cfg.desired_size as f64 / dup).ceil() as u64).max(1);
    let expansion = expand(&simple, seed_topo.num_vertices, target_distinct, cfg);
    csb_obs::counter_add("pgsk.expansion_batches", expansion.batches as u64);
    csb_obs::counter_add("pgsk.distinct_edges", expansion.edges.len() as u64);
    csb_obs::obs_debug!(
        "pgsk expansion: k={}, {} distinct edges in {} batches",
        expansion.k,
        expansion.edges.len(),
        expansion.batches
    );
    expansion
}

/// Distinct edges per deterministic RNG stream in [`inflate`].
const INFLATE_CHUNK: usize = 4096;

/// Step 4, multi-edge re-inflation: compact the Kronecker vertex slots to
/// dense ids, sample each distinct edge's copy count, and materialize the
/// copies through the count → prefix-sum → parallel-write scheme. Copy
/// counts come from one deterministic RNG stream per [`INFLATE_CHUNK`]
/// distinct edges, so the output is independent of the worker count.
fn inflate(expansion: &KroneckerExpansion, analysis: &SeedAnalysis, cfg: &PgskConfig) -> Topology {
    let _inflate = csb_obs::span_cat("pgsk.inflate", "gen");
    // Compact vertex ids (serial first-touch order, no RNG): only vertices
    // touched by edges get ids, so the output is not dominated by the
    // 2^k - |touched| isolated slots.
    let mut remap: std::collections::HashMap<u64, u32> =
        std::collections::HashMap::with_capacity(expansion.edges.len());
    let mut next = 0u32;
    let mut id_of = |slot: u64, remap: &mut std::collections::HashMap<u64, u32>| -> u32 {
        *remap.entry(slot).or_insert_with(|| {
            let id = next;
            next += 1;
            id
        })
    };
    let remapped: Vec<(u32, u32)> = expansion
        .edges
        .iter()
        .map(|&(u, v)| {
            let su = id_of(u, &mut remap);
            let sv = id_of(v, &mut remap);
            (su, sv)
        })
        .collect();

    let counts: Vec<usize> = remapped
        .par_chunks(INFLATE_CHUNK)
        .enumerate()
        .flat_map_iter(|(chunk_idx, chunk)| {
            let mut rng = rng_for(cfg.seed, 0xD0B_0000_0000 + chunk_idx as u64);
            chunk
                .iter()
                .map(move |_| analysis.out_degree.sample(&mut rng).max(1) as usize)
                .collect::<Vec<_>>()
        })
        .collect();

    let total: usize = counts.iter().sum();
    let mut src = vec![0u32; total];
    let mut dst = vec![0u32; total];
    let windows = edge_windows(&counts, &mut src, &mut dst);
    windows.into_par_iter().zip(&remapped).for_each(|((win_src, win_dst), &(su, sv))| {
        win_src.fill(su);
        win_dst.fill(sv);
    });
    csb_obs::counter_add("pgsk.edges_inflated", total as u64);
    Topology { num_vertices: next, src, dst }
}

/// Grows the topology only (steps 1-4) — shared with the distributed
/// implementation and the no-properties benchmarks.
pub fn pgsk_topology(seed_topo: &Topology, analysis: &SeedAnalysis, cfg: &PgskConfig) -> Topology {
    cfg.validate();
    assert!(seed_topo.edge_count() > 0, "PGSK needs a non-empty seed");
    let expansion = expansion_for(seed_topo, analysis, cfg);
    inflate(&expansion, analysis, cfg)
}

/// Runs the full PGSK generator.
///
/// Compatibility wrapper: prefer [`GenJob::pgsk`](crate::GenJob::pgsk),
/// which also covers the timed, distributed, sink, and checkpointed-store
/// execution paths.
pub fn pgsk(seed: &SeedBundle, cfg: &PgskConfig) -> NetflowGraph {
    let run = crate::GenJob::pgsk(seed, *cfg).run().expect("in-memory runs cannot fail");
    run.graph.expect("memory output always holds the graph")
}

/// [`pgsk`] with per-phase wall-clock timings (grow / inflate / attach).
///
/// Compatibility wrapper: prefer
/// [`GenJob::pgsk(..).timed()`](crate::GenJob::timed).
pub fn pgsk_timed(seed: &SeedBundle, cfg: &PgskConfig) -> (NetflowGraph, PhaseTimings) {
    cfg.validate();
    let seed_topo = Topology::of_graph(&seed.graph);
    assert!(seed_topo.edge_count() > 0, "PGSK needs a non-empty seed");
    let t0 = Instant::now();
    let expansion = expansion_for(&seed_topo, &seed.analysis, cfg);
    let grow = t0.elapsed();
    let t1 = Instant::now();
    let topo = inflate(&expansion, &seed.analysis, cfg);
    let inflated = t1.elapsed();
    let t2 = Instant::now();
    let g = attach_properties(&topo, &seed.analysis.properties, &[], cfg.seed ^ 0x5EED);
    let attach = t2.elapsed();
    let timings =
        PhaseTimings::new("pgsk", g.edge_count()).grow(grow).inflate(inflated).attach(attach);
    (g, timings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seed::seed_from_trace;
    use csb_net::traffic::sim::{TrafficSim, TrafficSimConfig};

    fn small_seed() -> SeedBundle {
        let trace = TrafficSim::new(TrafficSimConfig {
            duration_secs: 15.0,
            sessions_per_sec: 20.0,
            seed: 77,
            ..TrafficSimConfig::default()
        })
        .generate();
        seed_from_trace(&trace)
    }

    fn fast_cfg(desired_size: u64, seed: u64) -> PgskConfig {
        PgskConfig { desired_size, seed, kronfit_iterations: 8, kronfit_permutation_samples: 200 }
    }

    #[test]
    fn simplify_removes_multi_edges() {
        let topo = Topology { num_vertices: 3, src: vec![0, 0, 0, 1], dst: vec![1, 1, 2, 2] };
        let simple = simplify(&topo);
        assert_eq!(simple, vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn mean_duplication_clamps_zero() {
        let d = EmpiricalDistribution::from_weighted([(0, 1.0), (3, 1.0)]);
        // max(0,1)=1, max(3,1)=3 -> mean 2.
        assert!((mean_duplication(&d) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn reaches_size_within_tolerance() {
        let seed = small_seed();
        let target = seed.edge_count() as u64 * 4;
        let g = pgsk(&seed, &fast_cfg(target, 1));
        let got = g.edge_count() as u64;
        // The duplication step is stochastic; the paper notes sizes can only
        // be controlled coarsely. Expect within 2x either way.
        assert!(got >= target / 2 && got <= target * 2, "target {target}, got {got}");
    }

    #[test]
    fn can_generate_smaller_than_seed() {
        // Paper Section V-A: PGSK starts from as low as 100 edges.
        let seed = small_seed();
        let g = pgsk(&seed, &fast_cfg(100, 2));
        assert!(g.edge_count() >= 50);
        assert!(g.edge_count() < seed.edge_count());
    }

    #[test]
    fn deterministic_given_seed() {
        let seed = small_seed();
        let a = pgsk(&seed, &fast_cfg(2000, 3));
        let b = pgsk(&seed, &fast_cfg(2000, 3));
        assert_eq!(a.edge_count(), b.edge_count());
        for (ea, eb) in a.edges().zip(b.edges()) {
            assert_eq!(ea.1, eb.1);
            assert_eq!(ea.2, eb.2);
            assert_eq!(ea.3, eb.3);
        }
    }

    #[test]
    fn multi_edge_structure_returns() {
        let seed = small_seed();
        let g = pgsk(&seed, &fast_cfg(seed.edge_count() as u64 * 2, 4));
        let mut pairs: std::collections::HashMap<(u32, u32), u32> =
            std::collections::HashMap::new();
        for (_, s, d, _) in g.edges() {
            *pairs.entry((s.0, d.0)).or_insert(0) += 1;
        }
        assert!(pairs.values().any(|&c| c > 1), "re-inflation must produce multi-edges");
    }

    #[test]
    fn adjacent_master_seeds_produce_disjoint_expansions() {
        // Regression: the batch stream used to be `master + batch`, so batch
        // b of master seed s replayed batch b-1 of master seed s+1 and
        // adjacent seeds shared most of their expansion edges.
        for s in [0u64, 9, 1234] {
            for b in 1..6u64 {
                assert_ne!(batch_stream(s, b), batch_stream(s + 1, b - 1));
            }
        }
        let init = Initiator::classic();
        let a = generate_edges(&init, 8, 512, batch_stream(42, 2));
        let b = generate_edges(&init, 8, 512, batch_stream(43, 1));
        assert_ne!(a, b, "adjacent master seeds must not replay each other's batches");
    }

    #[test]
    fn expansion_metadata_is_consistent() {
        let seed = small_seed();
        let topo = Topology::of_graph(&seed.graph);
        let simple = simplify(&topo);
        let exp = expand(&simple, topo.num_vertices, 1000, &fast_cfg(1000, 5));
        assert!(exp.edges.len() >= 1000);
        assert!(exp.batches >= 1);
        let n = Initiator::num_vertices(exp.k);
        assert!(exp.edges.iter().all(|&(u, v)| u < n && v < n));
        // Distinctness.
        let set: HashSet<_> = exp.edges.iter().collect();
        assert_eq!(set.len(), exp.edges.len());
    }
}
