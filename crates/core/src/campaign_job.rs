//! `CampaignJob` — benign traffic plus multi-stage attack campaigns, out to
//! labeled flows.
//!
//! The job mirrors [`GenJob`](crate::GenJob)'s builder shape for the labeled
//! end of the pipeline: simulate a benign capture, run one or more kill-chain
//! campaigns over the same topology, merge the packet streams in time order,
//! assemble flows (optionally across parallel workers — output is
//! byte-identical for every worker count), and attach per-flow ground-truth
//! labels. Store-backed runs write the labeled flow store (single file or
//! shard set) that `csb-ids` evaluation and the KDD exporter consume.
//!
//! ```no_run
//! use csb_core::CampaignJob;
//! use csb_net::traffic::campaign::CampaignConfig;
//! let out = CampaignJob::new()
//!     .duration_secs(60.0)
//!     .sessions_per_sec(40.0)
//!     .seed(7)
//!     .campaign(CampaignConfig::kill_chain(1, 7, 5.0))
//!     .workers(4)
//!     .store("flows.csbstore")
//!     .run()
//!     .unwrap();
//! assert!(out.labeled_flows > 0);
//! ```

use csb_net::traffic::campaign::{
    assemble_labeled, Campaign, CampaignConfig, CampaignRun, LabeledFlow,
};
use csb_net::traffic::sim::{TrafficSim, TrafficSimConfig};
use csb_store::{save_labeled_flows, save_labeled_flows_sharded, Compression, CsbError};
use std::path::PathBuf;

/// Default store chunk size for labeled flow stores (matches the flow sink
/// default).
const DEFAULT_CHUNK_RECORDS: usize = 8192;

/// A configured campaign run. Build with [`CampaignJob::new`], refine with
/// the builder methods, execute with [`CampaignJob::run`].
#[derive(Debug, Clone)]
pub struct CampaignJob {
    sim: TrafficSimConfig,
    campaigns: Vec<CampaignConfig>,
    workers: usize,
    store: Option<PathBuf>,
    shards: usize,
    compression: Compression,
    chunk_records: usize,
    recorder: Option<csb_obs::Recorder>,
}

impl Default for CampaignJob {
    fn default() -> Self {
        CampaignJob::new()
    }
}

/// What a [`CampaignJob`] produced.
#[derive(Debug)]
pub struct CampaignOutcome {
    /// The assembled labeled flow stream, in canonical (time, 5-tuple)
    /// order — benign and attack flows interleaved.
    pub flows: Vec<LabeledFlow>,
    /// One realized run per configured campaign, carrying the ground-truth
    /// [`StageAction`](csb_net::traffic::campaign::StageAction) list.
    pub runs: Vec<CampaignRun>,
    /// Total packets in the merged benign+campaign trace.
    pub packets: usize,
    /// Flows carrying an attack label.
    pub labeled_flows: usize,
}

impl CampaignJob {
    /// A job with the default benign simulator config and no campaigns.
    pub fn new() -> Self {
        CampaignJob {
            sim: TrafficSimConfig::default(),
            campaigns: Vec::new(),
            workers: 1,
            store: None,
            shards: 0,
            compression: Compression::default(),
            chunk_records: DEFAULT_CHUNK_RECORDS,
            recorder: None,
        }
    }

    /// Replaces the whole benign simulator configuration (topology sizing,
    /// rate profile, inbound fraction, ...).
    pub fn sim(mut self, cfg: TrafficSimConfig) -> Self {
        self.sim = cfg;
        self
    }

    /// Capture duration in simulated seconds.
    pub fn duration_secs(mut self, secs: f64) -> Self {
        self.sim.duration_secs = secs;
        self
    }

    /// Mean benign session arrival rate.
    pub fn sessions_per_sec(mut self, rate: f64) -> Self {
        self.sim.sessions_per_sec = rate;
        self
    }

    /// Master seed of the benign simulator (campaigns carry their own seeds
    /// in their [`CampaignConfig`]).
    pub fn seed(mut self, seed: u64) -> Self {
        self.sim.seed = seed;
        self
    }

    /// Adds one campaign to the run.
    pub fn campaign(mut self, cfg: CampaignConfig) -> Self {
        self.campaigns.push(cfg);
        self
    }

    /// Flow-assembler worker count (default 1). Any count produces the same
    /// labeled stream, bit for bit.
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n.max(1);
        self
    }

    /// Also writes the labeled flow store to `path`.
    pub fn store(mut self, path: impl Into<PathBuf>) -> Self {
        self.store = Some(path.into());
        self
    }

    /// Splits the `.store()` output across `n` shard files behind a shard-set
    /// manifest (`n <= 1` keeps the single-file layout). Either layout loads
    /// back to the identical stream.
    pub fn shards(mut self, n: usize) -> Self {
        self.shards = n;
        self
    }

    /// Store compression ([`Compression::Columnar`] writes format v2 with
    /// per-column codecs).
    pub fn compression(mut self, c: Compression) -> Self {
        self.compression = c;
        self
    }

    /// Overrides the store chunk size.
    pub fn chunk_records(mut self, records: usize) -> Self {
        self.chunk_records = records.max(1);
        self
    }

    /// Routes telemetry into `rec` instead of the process-global recorder.
    pub fn recorder(mut self, rec: csb_obs::Recorder) -> Self {
        self.recorder = Some(rec);
        self
    }

    /// Runs the job: simulate, attack, merge, assemble, label, store.
    pub fn run(self) -> Result<CampaignOutcome, CsbError> {
        let _scope = self.recorder.clone().map(|r| r.install());
        let _span = csb_obs::span_cat("campaignjob.run", "gen");

        let sim = TrafficSim::new(self.sim.clone());
        let mut trace = sim.generate();
        let runs: Vec<CampaignRun> = self
            .campaigns
            .iter()
            .map(|cfg| Campaign::new(cfg.clone()).run(sim.topology()))
            .collect();
        for run in &runs {
            trace.merge_sorted(run.trace.clone());
        }
        let packets = trace.packets.len();

        let flows = assemble_labeled(&trace, &runs, self.workers);
        let labeled_flows = flows.iter().filter(|f| f.label.is_attack()).count();
        csb_obs::counter_add("campaign.job.flows", flows.len() as u64);
        csb_obs::counter_add("campaign.job.labeled_flows", labeled_flows as u64);

        if let Some(path) = &self.store {
            if self.shards > 1 {
                save_labeled_flows_sharded(
                    path,
                    &flows,
                    self.shards,
                    self.compression,
                    self.chunk_records,
                )?;
            } else {
                save_labeled_flows(path, &flows, self.compression)?;
            }
        }
        Ok(CampaignOutcome { flows, runs, packets, labeled_flows })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csb_net::traffic::topology::TopologyConfig;
    use std::path::PathBuf;

    fn small_job() -> CampaignJob {
        CampaignJob::new()
            .sim(TrafficSimConfig {
                topology: TopologyConfig {
                    clients: 30,
                    servers: 4,
                    externals: 20,
                    ..TopologyConfig::default()
                },
                duration_secs: 30.0,
                sessions_per_sec: 8.0,
                ..TrafficSimConfig::default()
            })
            .seed(99)
            .campaign(CampaignConfig::kill_chain(1, 99, 2.0))
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("csb-campjob-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&d).expect("mkdir");
        d
    }

    #[test]
    fn job_produces_labeled_and_benign_flows() {
        let out = small_job().run().expect("run");
        assert!(out.labeled_flows > 0, "campaign must label flows");
        assert!(
            out.flows.iter().any(|f| !f.label.is_attack()),
            "benign traffic must survive the merge"
        );
        assert_eq!(out.runs.len(), 1);
        assert!(out.packets > 0);
        // Every campaign action assembled into exactly one labeled flow.
        assert_eq!(out.labeled_flows, out.runs[0].actions.len());
    }

    #[test]
    fn worker_count_does_not_change_the_stream() {
        let base = small_job().run().expect("run").flows;
        for workers in [2usize, 5] {
            let flows = small_job().workers(workers).run().expect("run").flows;
            assert_eq!(flows, base, "workers={workers} must match sequential");
        }
    }

    #[test]
    fn store_layouts_load_back_to_the_same_stream() {
        let dir = temp_dir("layouts");
        let single = dir.join("flows.csbstore");
        let sharded = dir.join("flows.csbset");
        let out = small_job()
            .store(&single)
            .compression(Compression::Columnar)
            .run()
            .expect("single-file run");
        small_job()
            .store(&sharded)
            .shards(3)
            .compression(Compression::Columnar)
            .chunk_records(64)
            .run()
            .expect("sharded run");
        let a = csb_store::load_labeled_flows(&single).expect("load single");
        let b = csb_store::load_labeled_flows(&sharded).expect("load sharded");
        assert_eq!(a, out.flows);
        assert_eq!(b, out.flows);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn two_campaigns_get_distinct_ids() {
        let out = small_job().campaign(CampaignConfig::kill_chain(2, 123, 8.0)).run().expect("run");
        let mut ids: Vec<u32> =
            out.flows.iter().filter(|f| f.label.is_attack()).map(|f| f.label.campaign).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids, vec![1, 2]);
    }
}
