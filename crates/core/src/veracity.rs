//! Veracity 2.0: the pluggable multi-metric benchmark suite behind
//! [`VeracityJob`].
//!
//! The paper's Section V-A scores two distributions — degree (Fig. 6) and
//! PageRank (Fig. 7). The cross-generator benchmarking literature scores
//! more: clustering coefficients, degree assortativity, Laplacian spectra,
//! and kernel-embedding (MMD) distances. [`VeracityJob`] fronts all of them
//! with one builder mirroring [`GenJob`](crate::GenJob):
//!
//! ```no_run
//! use csb_core::{Metric, VeracityJob};
//! # let (seed, synthetic): (csb_core::seed::SeedBundle, csb_graph::NetflowGraph) = unimplemented!();
//! let report = VeracityJob::new()
//!     .seed_graph(&seed.graph)
//!     .synthetic_graph(&synthetic)
//!     .metrics(Metric::ALL)
//!     .run()
//!     .unwrap();
//! println!("clustering distance: {:e}", report.score("clustering").unwrap());
//! ```
//!
//! Inputs per side are interchangeable: an in-memory [`NetflowGraph`], a
//! graph-store path (scored out-of-core, never materialized), or any
//! [`DynEdgeScan`] stream. Whatever the input, a metric's score is
//! **bit-for-bit identical** across them — every kernel behind [`Metric`]
//! keeps the PR 5 differential-conformance contract (see
//! `csb_graph::metric` and the root `ooc_conformance` suite).
//!
//! A *lower* score means *higher* veracity. The pre-2.0 free functions
//! ([`veracity`], [`veracity_with`], [`pagerank_veracity`],
//! [`pagerank_veracity_with`], [`veracity_scan_with`], [`veracity_store`])
//! remain as deprecated thin wrappers over the job and keep returning the
//! exact bits they always did.

use csb_graph::algo::{PageRankConfig, SpectralConfig};
use csb_graph::metric::{
    AssortativityMetric, ClusteringMetric, DegreeMetric, GraphMetric, MmdDegreeMetric,
    MmdPagerankMetric, PagerankMetric, SpectralMetric,
};
use csb_graph::ooc::EdgeScan;
use csb_graph::NetflowGraph;
use csb_store::{open_scan, CsbError, ScanSource};
use std::path::{Path, PathBuf};

/// Environment fallback for the scan cache budget, in MiB; the builder's
/// [`VeracityJob::scan_cache_mb`] takes precedence.
pub const SCAN_CACHE_ENV: &str = "CSB_SCAN_CACHE_MB";

/// Score vectors at most this long are retained verbatim in
/// [`MetricScore::seed_values`] (scalar and sketch metrics); longer
/// per-vertex vectors are dropped after scoring.
const RETAINED_VALUES_MAX: usize = 16;

/// One veracity metric of the suite.
///
/// The closed job-level counterpart of the open `csb_graph::metric`
/// trait: `VeracityJob` dispatches statically through this enum so degree
/// and PageRank vectors can be shared across the metrics that reuse them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Metric {
    /// Degree-distribution distance (paper Fig. 6).
    Degree,
    /// PageRank-distribution distance (paper Fig. 7).
    Pagerank,
    /// Global + average-local clustering coefficient distance.
    Clustering,
    /// Newman degree-assortativity distance.
    Assortativity,
    /// Normalized-Laplacian eigenvalue sketch distance.
    Spectral,
    /// RBF-kernel MMD over the degree samples.
    MmdDegree,
    /// RBF-kernel MMD over the (size-normalized) PageRank samples.
    MmdPagerank,
}

impl Metric {
    /// Every metric, in canonical report order.
    pub const ALL: [Metric; 7] = [
        Metric::Degree,
        Metric::Pagerank,
        Metric::Clustering,
        Metric::Assortativity,
        Metric::Spectral,
        Metric::MmdDegree,
        Metric::MmdPagerank,
    ];

    /// The pre-2.0 pair, used when a job selects no metrics explicitly.
    pub const DEFAULT: [Metric; 2] = [Metric::Degree, Metric::Pagerank];

    /// Stable name, used for report keys and `--metrics` parsing.
    pub fn name(self) -> &'static str {
        match self {
            Metric::Degree => "degree",
            Metric::Pagerank => "pagerank",
            Metric::Clustering => "clustering",
            Metric::Assortativity => "assortativity",
            Metric::Spectral => "spectral",
            Metric::MmdDegree => "mmd_degree",
            Metric::MmdPagerank => "mmd_pagerank",
        }
    }

    fn span_name(self) -> &'static str {
        match self {
            Metric::Degree => "veracity.metric.degree",
            Metric::Pagerank => "veracity.metric.pagerank",
            Metric::Clustering => "veracity.metric.clustering",
            Metric::Assortativity => "veracity.metric.assortativity",
            Metric::Spectral => "veracity.metric.spectral",
            Metric::MmdDegree => "veracity.metric.mmd_degree",
            Metric::MmdPagerank => "veracity.metric.mmd_pagerank",
        }
    }

    /// Parses a comma-separated selection: metric names, plus the shorthands
    /// `mmd` (both MMD metrics) and `all`. Duplicates collapse to the first
    /// occurrence; unknown names and empty selections are
    /// [`CsbError::Config`].
    pub fn parse_list(spec: &str) -> Result<Vec<Metric>, CsbError> {
        let mut out: Vec<Metric> = Vec::new();
        let push = |m: Metric, out: &mut Vec<Metric>| {
            if !out.contains(&m) {
                out.push(m);
            }
        };
        for token in spec.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            match token.to_ascii_lowercase().as_str() {
                "all" => Metric::ALL.iter().for_each(|&m| push(m, &mut out)),
                "mmd" => {
                    push(Metric::MmdDegree, &mut out);
                    push(Metric::MmdPagerank, &mut out);
                }
                other => match Metric::ALL.iter().find(|m| m.name() == other) {
                    Some(&m) => push(m, &mut out),
                    None => {
                        return Err(CsbError::Config(format!(
                            "unknown metric {token:?}; expected one of degree, pagerank, \
                             clustering, assortativity, spectral, mmd_degree, mmd_pagerank, \
                             mmd, all"
                        )))
                    }
                },
            }
        }
        if out.is_empty() {
            return Err(CsbError::Config(format!("no metrics selected in {spec:?}")));
        }
        Ok(out)
    }

    /// Collapses a seed/synthetic score-vector pair into this metric's
    /// reported distance.
    fn distance(self, seed: &[f64], synthetic: &[f64]) -> f64 {
        match self {
            Metric::Degree => DegreeMetric.distance(seed, synthetic),
            Metric::Pagerank => PagerankMetric::default().distance(seed, synthetic),
            Metric::Clustering => ClusteringMetric.distance(seed, synthetic),
            Metric::Assortativity => AssortativityMetric.distance(seed, synthetic),
            Metric::Spectral => SpectralMetric::default().distance(seed, synthetic),
            Metric::MmdDegree => MmdDegreeMetric.distance(seed, synthetic),
            Metric::MmdPagerank => MmdPagerankMetric::default().distance(seed, synthetic),
        }
    }
}

/// Object-safe [`EdgeScan`] with the error erased to [`CsbError`], so
/// [`VeracityJob`] can hold scans of unknown concrete type. Blanket-implemented
/// for every `EdgeScan` whose error converts into `CsbError` (which includes
/// the infallible in-memory scans) — callers never implement it by hand.
pub trait DynEdgeScan {
    /// [`EdgeScan::vertex_count`], error-erased.
    fn dyn_vertex_count(&mut self) -> Result<usize, CsbError>;
    /// [`EdgeScan::edge_count`], error-erased.
    fn dyn_edge_count(&mut self) -> Result<u64, CsbError>;
    /// [`EdgeScan::scan_edges`], error-erased.
    fn dyn_scan_edges(&mut self, f: &mut dyn FnMut(&[u32], &[u32])) -> Result<(), CsbError>;
    /// [`EdgeScan::scan_sources`], error-erased (keeps a columnar store's
    /// single-column projection).
    fn dyn_scan_sources(&mut self, f: &mut dyn FnMut(&[u32])) -> Result<(), CsbError>;
    /// [`EdgeScan::scan_targets`], error-erased.
    fn dyn_scan_targets(&mut self, f: &mut dyn FnMut(&[u32])) -> Result<(), CsbError>;
    /// [`EdgeScan::scratch_bytes`].
    fn dyn_scratch_bytes(&self) -> u64;
}

impl<S: EdgeScan> DynEdgeScan for S
where
    S::Error: Into<CsbError>,
{
    fn dyn_vertex_count(&mut self) -> Result<usize, CsbError> {
        self.vertex_count().map_err(Into::into)
    }

    fn dyn_edge_count(&mut self) -> Result<u64, CsbError> {
        self.edge_count().map_err(Into::into)
    }

    fn dyn_scan_edges(&mut self, f: &mut dyn FnMut(&[u32], &[u32])) -> Result<(), CsbError> {
        self.scan_edges(f).map_err(Into::into)
    }

    fn dyn_scan_sources(&mut self, f: &mut dyn FnMut(&[u32])) -> Result<(), CsbError> {
        self.scan_sources(f).map_err(Into::into)
    }

    fn dyn_scan_targets(&mut self, f: &mut dyn FnMut(&[u32])) -> Result<(), CsbError> {
        self.scan_targets(f).map_err(Into::into)
    }

    fn dyn_scratch_bytes(&self) -> u64 {
        self.scratch_bytes()
    }
}

/// [`EdgeScan`] adapter over a `&mut dyn DynEdgeScan`, re-entering the
/// generic kernels from the type-erased job input.
struct ScanRef<'s>(&'s mut dyn DynEdgeScan);

impl EdgeScan for ScanRef<'_> {
    type Error = CsbError;

    fn vertex_count(&mut self) -> Result<usize, CsbError> {
        self.0.dyn_vertex_count()
    }

    fn edge_count(&mut self) -> Result<u64, CsbError> {
        self.0.dyn_edge_count()
    }

    fn scan_edges(&mut self, f: &mut dyn FnMut(&[u32], &[u32])) -> Result<(), CsbError> {
        self.0.dyn_scan_edges(f)
    }

    fn scan_sources(&mut self, f: &mut dyn FnMut(&[u32])) -> Result<(), CsbError> {
        self.0.dyn_scan_sources(f)
    }

    fn scan_targets(&mut self, f: &mut dyn FnMut(&[u32])) -> Result<(), CsbError> {
        self.0.dyn_scan_targets(f)
    }

    fn scratch_bytes(&self) -> u64 {
        self.0.dyn_scratch_bytes()
    }
}

/// One side of a veracity comparison, before the job opens it.
enum Input<'a> {
    Graph(&'a NetflowGraph),
    Store(PathBuf),
    Scan(&'a mut dyn DynEdgeScan),
}

/// An opened side plus the score vectors shared across metrics (degree
/// feeds `degree` and `mmd_degree`; PageRank feeds `pagerank` and
/// `mmd_pagerank` — each is computed at most once per side).
struct Side<'a> {
    source: Source<'a>,
    degree: Option<Vec<f64>>,
    pagerank: Option<Vec<f64>>,
}

enum Source<'a> {
    Graph(&'a NetflowGraph),
    Store(ScanSource),
    Scan(&'a mut dyn DynEdgeScan),
}

impl<'a> Side<'a> {
    fn open(input: Input<'a>, cache_budget: Option<u64>) -> Result<Self, CsbError> {
        let source = match input {
            Input::Graph(g) => Source::Graph(g),
            Input::Store(path) => {
                let scan = open_scan(&path)?;
                Source::Store(match cache_budget {
                    Some(bytes) => scan.with_cache_budget(bytes),
                    None => scan,
                })
            }
            Input::Scan(scan) => Source::Scan(scan),
        };
        Ok(Side { source, degree: None, pagerank: None })
    }

    fn apply<M: GraphMetric>(&mut self, metric: &M) -> Result<Vec<f64>, CsbError> {
        match &mut self.source {
            Source::Graph(g) => Ok(metric.compute(*g)),
            Source::Store(scan) => metric.compute_scan(scan),
            Source::Scan(scan) => metric.compute_scan(&mut ScanRef(*scan)),
        }
    }

    fn degree_values(&mut self) -> Result<Vec<f64>, CsbError> {
        if self.degree.is_none() {
            self.degree = Some(self.apply(&DegreeMetric)?);
        }
        Ok(self.degree.clone().expect("just cached"))
    }

    fn pagerank_values(&mut self, cfg: &PageRankConfig) -> Result<Vec<f64>, CsbError> {
        if self.pagerank.is_none() {
            self.pagerank = Some(self.apply(&PagerankMetric { cfg: *cfg })?);
        }
        Ok(self.pagerank.clone().expect("just cached"))
    }

    fn values(
        &mut self,
        metric: Metric,
        pagerank: &PageRankConfig,
        spectral: &SpectralConfig,
    ) -> Result<Vec<f64>, CsbError> {
        match metric {
            Metric::Degree | Metric::MmdDegree => self.degree_values(),
            Metric::Pagerank => self.pagerank_values(pagerank),
            Metric::MmdPagerank => Ok(MmdPagerankMetric::scaled(&self.pagerank_values(pagerank)?)),
            Metric::Clustering => self.apply(&ClusteringMetric),
            Metric::Assortativity => self.apply(&AssortativityMetric),
            Metric::Spectral => self.apply(&SpectralMetric { cfg: *spectral }),
        }
    }
}

/// One scored metric of a [`VeracityReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricScore {
    /// The metric's stable name ([`Metric::name`]).
    pub metric: &'static str,
    /// The distance — lower is higher veracity.
    pub score: f64,
    /// The seed's score vector, retained only for the short scalar/sketch
    /// metrics (at most [`RETAINED_VALUES_MAX`] values).
    pub seed_values: Option<Vec<f64>>,
    /// The synthetic side's score vector, same retention rule.
    pub synthetic_values: Option<Vec<f64>>,
}

/// The result of a [`VeracityJob`]: one [`MetricScore`] per selected
/// metric, in selection order.
#[derive(Debug, Clone, PartialEq)]
pub struct VeracityReport {
    /// Scores in selection order.
    pub scores: Vec<MetricScore>,
}

impl VeracityReport {
    /// The score of `metric` (a [`Metric::name`]), if it was selected.
    pub fn score(&self, metric: &str) -> Option<f64> {
        self.scores.iter().find(|s| s.metric == metric).map(|s| s.score)
    }
}

/// Builder for a multi-metric veracity run; see the [module docs](self).
///
/// Each side takes exactly one input — an in-memory graph, a store path
/// (single file or shard manifest, scored out-of-core), or any
/// [`DynEdgeScan`]. Metrics default to the pre-2.0 pair
/// ([`Metric::DEFAULT`]).
pub struct VeracityJob<'a> {
    seed: Option<Input<'a>>,
    synthetic: Option<Input<'a>>,
    metrics: Vec<Metric>,
    pagerank: PageRankConfig,
    spectral: SpectralConfig,
    scan_cache_mb: Option<u64>,
    recorder: Option<csb_obs::Recorder>,
}

impl Default for VeracityJob<'_> {
    fn default() -> Self {
        Self::new()
    }
}

impl<'a> VeracityJob<'a> {
    /// An empty job; both sides must be set before [`VeracityJob::run`].
    pub fn new() -> Self {
        VeracityJob {
            seed: None,
            synthetic: None,
            metrics: Vec::new(),
            pagerank: PageRankConfig::default(),
            spectral: SpectralConfig::default(),
            scan_cache_mb: None,
            recorder: None,
        }
    }

    /// Scores against this in-memory seed graph.
    pub fn seed_graph(mut self, g: &'a NetflowGraph) -> Self {
        self.seed = Some(Input::Graph(g));
        self
    }

    /// Scores this in-memory synthetic graph.
    pub fn synthetic_graph(mut self, g: &'a NetflowGraph) -> Self {
        self.synthetic = Some(Input::Graph(g));
        self
    }

    /// Scores against the graph store at `path`, out-of-core.
    pub fn seed_store(mut self, path: impl AsRef<Path>) -> Self {
        self.seed = Some(Input::Store(path.as_ref().to_path_buf()));
        self
    }

    /// Scores the graph store at `path`, out-of-core.
    pub fn synthetic_store(mut self, path: impl AsRef<Path>) -> Self {
        self.synthetic = Some(Input::Store(path.as_ref().to_path_buf()));
        self
    }

    /// Scores against this edge stream.
    pub fn seed_scan(mut self, scan: &'a mut dyn DynEdgeScan) -> Self {
        self.seed = Some(Input::Scan(scan));
        self
    }

    /// Scores this edge stream.
    pub fn synthetic_scan(mut self, scan: &'a mut dyn DynEdgeScan) -> Self {
        self.synthetic = Some(Input::Scan(scan));
        self
    }

    /// Selects the metrics to score, in report order. Duplicates collapse
    /// to the first occurrence. Unset (or empty) means [`Metric::DEFAULT`].
    pub fn metrics(mut self, metrics: impl IntoIterator<Item = Metric>) -> Self {
        self.metrics.clear();
        for m in metrics {
            if !self.metrics.contains(&m) {
                self.metrics.push(m);
            }
        }
        self
    }

    /// PageRank parameters of the `pagerank` and `mmd_pagerank` metrics.
    pub fn pagerank_config(mut self, cfg: PageRankConfig) -> Self {
        self.pagerank = cfg;
        self
    }

    /// Spectral-sketch parameters of the `spectral` metric.
    pub fn spectral_config(mut self, cfg: SpectralConfig) -> Self {
        self.spectral = cfg;
        self
    }

    /// Caps each store input's decoded-endpoint cache at `mb` MiB (0
    /// disables caching). Unset, the [`SCAN_CACHE_ENV`] environment
    /// variable applies, then the store default (256 MiB). The budget in
    /// force is observable in the `ooc.cache_bytes` gauge.
    pub fn scan_cache_mb(mut self, mb: u64) -> Self {
        self.scan_cache_mb = Some(mb);
        self
    }

    /// Records this run's spans and metrics into `rec` (installed for the
    /// duration of [`VeracityJob::run`]) instead of the process-global
    /// recorder. Scores are bit-identical with or without one.
    pub fn recorder(mut self, rec: csb_obs::Recorder) -> Self {
        self.recorder = Some(rec);
        self
    }

    /// Scores every selected metric and returns the report.
    ///
    /// Errors with [`CsbError::Config`] when a side is missing or the cache
    /// budget is malformed; store inputs surface their I/O and corruption
    /// errors.
    pub fn run(self) -> Result<VeracityReport, CsbError> {
        let VeracityJob { seed, synthetic, metrics, pagerank, spectral, scan_cache_mb, recorder } =
            self;
        let _scope = recorder.map(|r| r.install());
        let _span = csb_obs::span_cat("core.veracity_job", "veracity");
        let env = match std::env::var(SCAN_CACHE_ENV) {
            Ok(s) => Some(s),
            Err(std::env::VarError::NotPresent) => None,
            Err(e) => return Err(CsbError::Config(format!("{SCAN_CACHE_ENV}: {e}"))),
        };
        let budget = resolve_cache_budget(scan_cache_mb, env.as_deref())?;
        let seed = seed.ok_or_else(|| CsbError::Config("VeracityJob needs a seed input".into()))?;
        let synthetic = synthetic
            .ok_or_else(|| CsbError::Config("VeracityJob needs a synthetic input".into()))?;
        let mut seed = Side::open(seed, budget)?;
        let mut synthetic = Side::open(synthetic, budget)?;
        let metrics: Vec<Metric> =
            if metrics.is_empty() { Metric::DEFAULT.to_vec() } else { metrics };
        let mut scores = Vec::with_capacity(metrics.len());
        for &m in &metrics {
            let _span = csb_obs::span_cat(m.span_name(), "veracity");
            let seed_values = seed.values(m, &pagerank, &spectral)?;
            let synthetic_values = synthetic.values(m, &pagerank, &spectral)?;
            let score = m.distance(&seed_values, &synthetic_values);
            csb_obs::metrics::counter_add("veracity.metrics_scored", 1);
            let keep = |v: Vec<f64>| if v.len() <= RETAINED_VALUES_MAX { Some(v) } else { None };
            scores.push(MetricScore {
                metric: m.name(),
                score,
                seed_values: keep(seed_values),
                synthetic_values: keep(synthetic_values),
            });
        }
        Ok(VeracityReport { scores })
    }
}

/// Resolves the scan cache budget in bytes: the builder's MiB value wins,
/// then the [`SCAN_CACHE_ENV`] value, then `None` (store default).
fn resolve_cache_budget(explicit: Option<u64>, env: Option<&str>) -> Result<Option<u64>, CsbError> {
    if let Some(mb) = explicit {
        return Ok(Some(mb << 20));
    }
    match env {
        None => Ok(None),
        Some(s) => match s.trim().parse::<u64>() {
            Ok(mb) => Ok(Some(mb << 20)),
            Err(_) => Err(CsbError::Config(format!(
                "{SCAN_CACHE_ENV} must be a cache budget in MiB, got {s:?}"
            ))),
        },
    }
}

/// Both veracity scores of one synthetic dataset (the pre-2.0 pair).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VeracityScores {
    /// Degree-distribution score (paper Fig. 6).
    pub degree: f64,
    /// PageRank-distribution score (paper Fig. 7).
    pub pagerank: f64,
}

fn legacy_scores(report: &VeracityReport) -> VeracityScores {
    VeracityScores {
        degree: report.score("degree").expect("degree metric scored"),
        pagerank: report.score("pagerank").expect("pagerank metric scored"),
    }
}

fn in_memory_pair(
    seed: &NetflowGraph,
    synthetic: &NetflowGraph,
    metrics: &[Metric],
    cfg: &PageRankConfig,
) -> VeracityReport {
    VeracityJob::new()
        .seed_graph(seed)
        .synthetic_graph(synthetic)
        .metrics(metrics.iter().copied())
        .pagerank_config(*cfg)
        .run()
        .expect("in-memory veracity cannot fail")
}

/// Degree veracity score of `synthetic` against `seed`.
#[deprecated(note = "use `VeracityJob` with `.metrics([Metric::Degree])`")]
pub fn degree_veracity(seed: &NetflowGraph, synthetic: &NetflowGraph) -> f64 {
    in_memory_pair(seed, synthetic, &[Metric::Degree], &PageRankConfig::default())
        .score("degree")
        .expect("degree metric scored")
}

/// PageRank veracity score of `synthetic` against `seed`, with an explicit
/// PageRank configuration (damping, iteration cap, tolerance).
#[deprecated(note = "use `VeracityJob` with `.metrics([Metric::Pagerank])`")]
pub fn pagerank_veracity_with(
    seed: &NetflowGraph,
    synthetic: &NetflowGraph,
    cfg: &PageRankConfig,
) -> f64 {
    in_memory_pair(seed, synthetic, &[Metric::Pagerank], cfg)
        .score("pagerank")
        .expect("pagerank metric scored")
}

/// PageRank veracity score of `synthetic` against `seed` under the default
/// PageRank configuration.
#[deprecated(note = "use `VeracityJob` with `.metrics([Metric::Pagerank])`")]
pub fn pagerank_veracity(seed: &NetflowGraph, synthetic: &NetflowGraph) -> f64 {
    in_memory_pair(seed, synthetic, &[Metric::Pagerank], &PageRankConfig::default())
        .score("pagerank")
        .expect("pagerank metric scored")
}

/// Computes both classic scores with an explicit PageRank configuration.
#[deprecated(note = "use `VeracityJob`")]
pub fn veracity_with(
    seed: &NetflowGraph,
    synthetic: &NetflowGraph,
    cfg: &PageRankConfig,
) -> VeracityScores {
    legacy_scores(&in_memory_pair(seed, synthetic, &Metric::DEFAULT, cfg))
}

/// Computes both classic scores under the default PageRank configuration.
#[deprecated(note = "use `VeracityJob`")]
pub fn veracity(seed: &NetflowGraph, synthetic: &NetflowGraph) -> VeracityScores {
    legacy_scores(&in_memory_pair(seed, synthetic, &Metric::DEFAULT, &PageRankConfig::default()))
}

/// Out-of-core veracity over two streamed graphs — bit-identical to
/// [`veracity_with`] on the materialized graphs.
#[deprecated(note = "use `VeracityJob` with `.seed_scan(..)` / `.synthetic_scan(..)`")]
pub fn veracity_scan_with<S, T>(
    seed: &mut S,
    synthetic: &mut T,
    cfg: &PageRankConfig,
) -> Result<VeracityScores, CsbError>
where
    S: EdgeScan,
    T: EdgeScan,
    S::Error: Into<CsbError>,
    T::Error: Into<CsbError>,
{
    let report =
        VeracityJob::new().seed_scan(seed).synthetic_scan(synthetic).pagerank_config(*cfg).run()?;
    Ok(legacy_scores(&report))
}

/// Out-of-core veracity of the graph store at `synth_path` against the one
/// at `seed_path`, never materializing either graph. Each path may be a
/// single store file (v1 or v2) or a shard-set manifest — the magic decides,
/// and every layout scores bit-identically.
#[deprecated(note = "use `VeracityJob` with `.seed_store(..)` / `.synthetic_store(..)`")]
pub fn veracity_store(
    seed_path: impl AsRef<Path>,
    synth_path: impl AsRef<Path>,
    cfg: &PageRankConfig,
) -> Result<VeracityScores, CsbError> {
    let report = VeracityJob::new()
        .seed_store(seed_path)
        .synthetic_store(synth_path)
        .pagerank_config(*cfg)
        .run()?;
    Ok(legacy_scores(&report))
}

#[cfg(test)]
mod tests {
    // The legacy wrappers are deprecated but must keep returning the exact
    // bits they always did — these tests pin that.
    #![allow(deprecated)]

    use super::*;
    use crate::config::{PgpbaConfig, PgskConfig};
    use crate::seed::{seed_from_trace, SeedBundle};
    use csb_net::traffic::sim::{TrafficSim, TrafficSimConfig};

    fn small_seed() -> SeedBundle {
        let trace = TrafficSim::new(TrafficSimConfig {
            duration_secs: 15.0,
            sessions_per_sec: 20.0,
            seed: 31,
            ..TrafficSimConfig::default()
        })
        .generate();
        seed_from_trace(&trace)
    }

    #[test]
    fn self_veracity_is_zero() {
        let seed = small_seed();
        let v = veracity(&seed.graph, &seed.graph);
        assert_eq!(v.degree, 0.0);
        assert_eq!(v.pagerank, 0.0);
    }

    #[test]
    fn all_metrics_self_score_exactly_zero() {
        let seed = small_seed();
        let report = VeracityJob::new()
            .seed_graph(&seed.graph)
            .synthetic_graph(&seed.graph)
            .metrics(Metric::ALL)
            .run()
            .expect("job");
        assert_eq!(report.scores.len(), Metric::ALL.len());
        for s in &report.scores {
            assert_eq!(s.score, 0.0, "{} self-score must be exactly zero", s.metric);
        }
    }

    #[test]
    fn pgpba_veracity_improves_with_size() {
        // Paper Fig. 6-7: the score decreases as the synthetic graph grows.
        let seed = small_seed();
        let small = crate::pgpba(
            &seed,
            &PgpbaConfig { desired_size: seed.edge_count() as u64 * 2, fraction: 0.1, seed: 1 },
        );
        let large = crate::pgpba(
            &seed,
            &PgpbaConfig { desired_size: seed.edge_count() as u64 * 24, fraction: 0.1, seed: 1 },
        );
        let vs = degree_veracity(&seed.graph, &small);
        let vl = degree_veracity(&seed.graph, &large);
        assert!(vl < vs, "larger graph should score lower: {vl} vs {vs}");
    }

    #[test]
    fn pagerank_scores_are_much_smaller_than_degree_scores() {
        // Paper: degree scores ~1e-10..1e-3, PageRank ~1e-25..1e-18.
        let seed = small_seed();
        let synth = crate::pgpba(
            &seed,
            &PgpbaConfig { desired_size: seed.edge_count() as u64 * 8, fraction: 0.3, seed: 2 },
        );
        let v = veracity(&seed.graph, &synth);
        assert!(v.pagerank < v.degree, "pagerank {} vs degree {}", v.pagerank, v.degree);
    }

    #[test]
    fn explicit_pagerank_config_is_honored() {
        let seed = small_seed();
        let synth = crate::pgpba(
            &seed,
            &PgpbaConfig { desired_size: seed.edge_count() as u64 * 4, fraction: 0.3, seed: 2 },
        );
        let v_default = pagerank_veracity(&seed.graph, &synth);
        assert_eq!(
            v_default,
            pagerank_veracity_with(&seed.graph, &synth, &PageRankConfig::default()),
            "default-config variant must agree with the wrapper"
        );
        let low_damping = PageRankConfig { damping: 0.5, ..PageRankConfig::default() };
        assert_ne!(
            v_default,
            pagerank_veracity_with(&seed.graph, &synth, &low_damping),
            "damping must flow through to the PageRank computation"
        );
        let both = veracity_with(&seed.graph, &synth, &low_damping);
        assert_eq!(both.degree, degree_veracity(&seed.graph, &synth));
    }

    #[test]
    fn veracity_scan_bit_identical_to_in_memory() {
        // The out-of-core path over real store bytes must reproduce the
        // in-memory scores bit-for-bit, at any chunk size.
        use csb_store::sink::{push_graph, GraphStoreSink};
        use csb_store::{StoreReader, StoreScan};
        use std::io::Cursor;
        let seed = small_seed();
        let synth = crate::pgpba(
            &seed,
            &PgpbaConfig { desired_size: seed.edge_count() as u64 * 4, fraction: 0.2, seed: 9 },
        );
        let mem = veracity(&seed.graph, &synth);
        for chunk_records in [7usize, 64, 100_000] {
            let store_of = |g: &NetflowGraph| {
                let mut sink = GraphStoreSink::new(Vec::new())
                    .expect("sink")
                    .with_chunk_records(chunk_records);
                push_graph(&mut sink, g).expect("push");
                let bytes = sink.finish().expect("seal");
                StoreScan::new(StoreReader::new(Cursor::new(bytes)).expect("reader")).expect("scan")
            };
            let ooc = veracity_scan_with(
                &mut store_of(&seed.graph),
                &mut store_of(&synth),
                &PageRankConfig::default(),
            )
            .expect("ooc veracity");
            assert_eq!(mem.degree.to_bits(), ooc.degree.to_bits(), "chunk {chunk_records}");
            assert_eq!(mem.pagerank.to_bits(), ooc.pagerank.to_bits(), "chunk {chunk_records}");
        }
    }

    #[test]
    fn veracity_store_scores_files_on_disk() {
        use csb_store::sink::save_graph;
        let seed = small_seed();
        let synth = crate::pgpba(
            &seed,
            &PgpbaConfig { desired_size: seed.edge_count() as u64 * 2, fraction: 0.2, seed: 4 },
        );
        let dir = std::env::temp_dir().join(format!("csb-veracity-store-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let a = dir.join("seed.csb");
        let b = dir.join("synth.csb");
        save_graph(&a, &seed.graph).expect("save seed");
        save_graph(&b, &synth).expect("save synth");
        let ooc = veracity_store(&a, &b, &PageRankConfig::default()).expect("score");
        let mem = veracity(&seed.graph, &synth);
        assert_eq!(mem.degree.to_bits(), ooc.degree.to_bits());
        assert_eq!(mem.pagerank.to_bits(), ooc.pagerank.to_bits());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_inputs_conform_for_every_metric() {
        use csb_store::sink::save_graph;
        let seed = small_seed();
        let synth = crate::pgpba(
            &seed,
            &PgpbaConfig { desired_size: seed.edge_count() as u64 * 2, fraction: 0.2, seed: 8 },
        );
        let dir = std::env::temp_dir().join(format!("csb-veracity-job-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let a = dir.join("seed.csb");
        let b = dir.join("synth.csb");
        save_graph(&a, &seed.graph).expect("save seed");
        save_graph(&b, &synth).expect("save synth");
        let mem = VeracityJob::new()
            .seed_graph(&seed.graph)
            .synthetic_graph(&synth)
            .metrics(Metric::ALL)
            .run()
            .expect("in-memory job");
        let ooc = VeracityJob::new()
            .seed_store(&a)
            .synthetic_store(&b)
            .metrics(Metric::ALL)
            .scan_cache_mb(4)
            .run()
            .expect("store job");
        for (m, o) in mem.scores.iter().zip(ooc.scores.iter()) {
            assert_eq!(m.metric, o.metric);
            assert_eq!(m.score.to_bits(), o.score.to_bits(), "metric {}", m.metric);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn job_defaults_match_legacy_pair_bitwise() {
        let seed = small_seed();
        let synth = crate::pgpba(
            &seed,
            &PgpbaConfig { desired_size: seed.edge_count() as u64 * 3, fraction: 0.2, seed: 5 },
        );
        let legacy = veracity(&seed.graph, &synth);
        let report =
            VeracityJob::new().seed_graph(&seed.graph).synthetic_graph(&synth).run().expect("job");
        assert_eq!(report.scores.len(), 2);
        assert_eq!(legacy.degree.to_bits(), report.score("degree").unwrap().to_bits());
        assert_eq!(legacy.pagerank.to_bits(), report.score("pagerank").unwrap().to_bits());
    }

    #[test]
    fn metric_parsing() {
        assert_eq!(
            Metric::parse_list("degree,pagerank").unwrap(),
            vec![Metric::Degree, Metric::Pagerank]
        );
        assert_eq!(
            Metric::parse_list("mmd").unwrap(),
            vec![Metric::MmdDegree, Metric::MmdPagerank]
        );
        assert_eq!(Metric::parse_list("all").unwrap().len(), Metric::ALL.len());
        assert_eq!(
            Metric::parse_list("degree, degree ,DEGREE").unwrap(),
            vec![Metric::Degree],
            "duplicates collapse, parsing is case-insensitive"
        );
        assert!(Metric::parse_list("entropy").is_err());
        assert!(Metric::parse_list("").is_err());
        assert!(Metric::parse_list(",,").is_err());
    }

    #[test]
    fn cache_budget_resolution() {
        assert_eq!(resolve_cache_budget(None, None).unwrap(), None);
        assert_eq!(resolve_cache_budget(None, Some("64")).unwrap(), Some(64 << 20));
        assert_eq!(resolve_cache_budget(Some(8), Some("64")).unwrap(), Some(8 << 20));
        assert_eq!(resolve_cache_budget(Some(0), None).unwrap(), Some(0));
        assert!(resolve_cache_budget(None, Some("lots")).is_err());
    }

    #[test]
    fn missing_inputs_are_config_errors() {
        let seed = small_seed();
        assert!(matches!(VeracityJob::new().run(), Err(CsbError::Config(_))));
        assert!(matches!(
            VeracityJob::new().seed_graph(&seed.graph).run(),
            Err(CsbError::Config(_))
        ));
    }

    #[test]
    fn retained_values_only_for_short_vectors() {
        let seed = small_seed();
        let report = VeracityJob::new()
            .seed_graph(&seed.graph)
            .synthetic_graph(&seed.graph)
            .metrics(Metric::ALL)
            .run()
            .expect("job");
        for s in &report.scores {
            match s.metric {
                "clustering" | "assortativity" | "spectral" => {
                    assert!(s.seed_values.is_some(), "{} should retain values", s.metric)
                }
                _ => assert!(s.seed_values.is_none(), "{} should drop values", s.metric),
            }
        }
    }

    #[test]
    fn both_generators_have_low_scores() {
        // Paper Section V-A: "the veracity scores obtained in both the
        // experiments are in general very low".
        let seed = small_seed();
        let target = seed.edge_count() as u64 * 4;
        let ba = crate::pgpba(&seed, &PgpbaConfig { desired_size: target, fraction: 0.1, seed: 3 });
        let sk = crate::pgsk(
            &seed,
            &PgskConfig {
                desired_size: target,
                seed: 3,
                kronfit_iterations: 8,
                kronfit_permutation_samples: 200,
            },
        );
        let vba = veracity(&seed.graph, &ba);
        let vsk = veracity(&seed.graph, &sk);
        assert!(vba.degree < 0.05, "PGPBA degree score {}", vba.degree);
        assert!(vsk.degree < 0.05, "PGSK degree score {}", vsk.degree);
        assert!(vba.pagerank < 0.05);
        assert!(vsk.pagerank < 0.05);
    }
}
