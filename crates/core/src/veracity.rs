//! The Section V-A veracity scores: how closely a synthetic graph's
//! normalized degree and PageRank distributions track the seed's.
//!
//! A *lower* score means *higher* veracity. See
//! `csb_stats::veracity` for the precise metric definition.

use csb_graph::algo::{pagerank, PageRankConfig};
use csb_graph::ooc::{degree_counts_ooc, pagerank_ooc, EdgeScan};
use csb_graph::NetflowGraph;
use csb_stats::veracity::{average_euclidean_distance, NormalizedDistribution};
use csb_store::{open_scan, CsbError};
use std::path::Path;

/// Both veracity scores of one synthetic dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VeracityScores {
    /// Degree-distribution score (paper Fig. 6).
    pub degree: f64,
    /// PageRank-distribution score (paper Fig. 7).
    pub pagerank: f64,
}

/// Total (in + out) degree of every vertex.
fn total_degrees(g: &NetflowGraph) -> Vec<u64> {
    g.in_degrees().iter().zip(g.out_degrees().iter()).map(|(a, b)| a + b).collect()
}

/// Degree veracity score of `synthetic` against `seed`.
pub fn degree_veracity(seed: &NetflowGraph, synthetic: &NetflowGraph) -> f64 {
    average_euclidean_distance(
        &NormalizedDistribution::from_u64(&total_degrees(seed)),
        &NormalizedDistribution::from_u64(&total_degrees(synthetic)),
    )
}

/// PageRank veracity score of `synthetic` against `seed`, with an explicit
/// PageRank configuration (damping, iteration cap, tolerance).
pub fn pagerank_veracity_with(
    seed: &NetflowGraph,
    synthetic: &NetflowGraph,
    cfg: &PageRankConfig,
) -> f64 {
    average_euclidean_distance(
        &NormalizedDistribution::from_values(&pagerank(seed, cfg)),
        &NormalizedDistribution::from_values(&pagerank(synthetic, cfg)),
    )
}

/// PageRank veracity score of `synthetic` against `seed` under the default
/// PageRank configuration.
pub fn pagerank_veracity(seed: &NetflowGraph, synthetic: &NetflowGraph) -> f64 {
    pagerank_veracity_with(seed, synthetic, &PageRankConfig::default())
}

/// Computes both scores with an explicit PageRank configuration.
pub fn veracity_with(
    seed: &NetflowGraph,
    synthetic: &NetflowGraph,
    cfg: &PageRankConfig,
) -> VeracityScores {
    VeracityScores {
        degree: degree_veracity(seed, synthetic),
        pagerank: pagerank_veracity_with(seed, synthetic, cfg),
    }
}

/// Computes both scores under the default PageRank configuration.
pub fn veracity(seed: &NetflowGraph, synthetic: &NetflowGraph) -> VeracityScores {
    veracity_with(seed, synthetic, &PageRankConfig::default())
}

/// Out-of-core veracity over two streamed graphs.
///
/// Uses the `csb_graph::ooc` kernels, so each graph is traversed with
/// O(vertices + batch) scratch and the scores are *bit-identical* to
/// [`veracity_with`] on the materialized graphs (the streaming kernels
/// reproduce their in-memory counterparts bit-for-bit, and the distribution
/// normalization downstream is deterministic given identical inputs).
pub fn veracity_scan_with<S, T>(
    seed: &mut S,
    synthetic: &mut T,
    cfg: &PageRankConfig,
) -> Result<VeracityScores, CsbError>
where
    S: EdgeScan,
    T: EdgeScan,
    S::Error: Into<CsbError>,
    T::Error: Into<CsbError>,
{
    let _span = csb_obs::span_cat("core.veracity_scan", "veracity");
    let seed_deg = degree_counts_ooc(seed).map_err(Into::into)?.total();
    let synth_deg = degree_counts_ooc(synthetic).map_err(Into::into)?.total();
    let degree = average_euclidean_distance(
        &NormalizedDistribution::from_u64(&seed_deg),
        &NormalizedDistribution::from_u64(&synth_deg),
    );
    drop((seed_deg, synth_deg));
    let seed_pr = pagerank_ooc(seed, cfg).map_err(Into::into)?;
    let synth_pr = pagerank_ooc(synthetic, cfg).map_err(Into::into)?;
    let pagerank = average_euclidean_distance(
        &NormalizedDistribution::from_values(&seed_pr),
        &NormalizedDistribution::from_values(&synth_pr),
    );
    Ok(VeracityScores { degree, pagerank })
}

/// Out-of-core veracity of the graph store at `synth_path` against the one
/// at `seed_path`, never materializing either graph. Each path may be a
/// single store file (v1 or v2) or a shard-set manifest — the magic decides,
/// and every layout scores bit-identically.
pub fn veracity_store(
    seed_path: impl AsRef<Path>,
    synth_path: impl AsRef<Path>,
    cfg: &PageRankConfig,
) -> Result<VeracityScores, CsbError> {
    let mut seed = open_scan(seed_path)?;
    let mut synth = open_scan(synth_path)?;
    veracity_scan_with(&mut seed, &mut synth, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{PgpbaConfig, PgskConfig};
    use crate::seed::{seed_from_trace, SeedBundle};
    use csb_net::traffic::sim::{TrafficSim, TrafficSimConfig};

    fn small_seed() -> SeedBundle {
        let trace = TrafficSim::new(TrafficSimConfig {
            duration_secs: 15.0,
            sessions_per_sec: 20.0,
            seed: 31,
            ..TrafficSimConfig::default()
        })
        .generate();
        seed_from_trace(&trace)
    }

    #[test]
    fn self_veracity_is_zero() {
        let seed = small_seed();
        let v = veracity(&seed.graph, &seed.graph);
        assert_eq!(v.degree, 0.0);
        assert_eq!(v.pagerank, 0.0);
    }

    #[test]
    fn pgpba_veracity_improves_with_size() {
        // Paper Fig. 6-7: the score decreases as the synthetic graph grows.
        let seed = small_seed();
        let small = crate::pgpba(
            &seed,
            &PgpbaConfig { desired_size: seed.edge_count() as u64 * 2, fraction: 0.1, seed: 1 },
        );
        let large = crate::pgpba(
            &seed,
            &PgpbaConfig { desired_size: seed.edge_count() as u64 * 24, fraction: 0.1, seed: 1 },
        );
        let vs = degree_veracity(&seed.graph, &small);
        let vl = degree_veracity(&seed.graph, &large);
        assert!(vl < vs, "larger graph should score lower: {vl} vs {vs}");
    }

    #[test]
    fn pagerank_scores_are_much_smaller_than_degree_scores() {
        // Paper: degree scores ~1e-10..1e-3, PageRank ~1e-25..1e-18.
        let seed = small_seed();
        let synth = crate::pgpba(
            &seed,
            &PgpbaConfig { desired_size: seed.edge_count() as u64 * 8, fraction: 0.3, seed: 2 },
        );
        let v = veracity(&seed.graph, &synth);
        assert!(v.pagerank < v.degree, "pagerank {} vs degree {}", v.pagerank, v.degree);
    }

    #[test]
    fn explicit_pagerank_config_is_honored() {
        let seed = small_seed();
        let synth = crate::pgpba(
            &seed,
            &PgpbaConfig { desired_size: seed.edge_count() as u64 * 4, fraction: 0.3, seed: 2 },
        );
        let v_default = pagerank_veracity(&seed.graph, &synth);
        assert_eq!(
            v_default,
            pagerank_veracity_with(&seed.graph, &synth, &PageRankConfig::default()),
            "default-config variant must agree with the wrapper"
        );
        let low_damping = PageRankConfig { damping: 0.5, ..PageRankConfig::default() };
        assert_ne!(
            v_default,
            pagerank_veracity_with(&seed.graph, &synth, &low_damping),
            "damping must flow through to the PageRank computation"
        );
        let both = veracity_with(&seed.graph, &synth, &low_damping);
        assert_eq!(both.degree, degree_veracity(&seed.graph, &synth));
    }

    #[test]
    fn veracity_scan_bit_identical_to_in_memory() {
        // The out-of-core path over real store bytes must reproduce the
        // in-memory scores bit-for-bit, at any chunk size.
        use csb_store::sink::{push_graph, GraphStoreSink};
        use csb_store::{StoreReader, StoreScan};
        use std::io::Cursor;
        let seed = small_seed();
        let synth = crate::pgpba(
            &seed,
            &PgpbaConfig { desired_size: seed.edge_count() as u64 * 4, fraction: 0.2, seed: 9 },
        );
        let mem = veracity(&seed.graph, &synth);
        for chunk_records in [7usize, 64, 100_000] {
            let store_of = |g: &NetflowGraph| {
                let mut sink = GraphStoreSink::new(Vec::new())
                    .expect("sink")
                    .with_chunk_records(chunk_records);
                push_graph(&mut sink, g).expect("push");
                let bytes = sink.finish().expect("seal");
                StoreScan::new(StoreReader::new(Cursor::new(bytes)).expect("reader")).expect("scan")
            };
            let ooc = veracity_scan_with(
                &mut store_of(&seed.graph),
                &mut store_of(&synth),
                &PageRankConfig::default(),
            )
            .expect("ooc veracity");
            assert_eq!(mem.degree.to_bits(), ooc.degree.to_bits(), "chunk {chunk_records}");
            assert_eq!(mem.pagerank.to_bits(), ooc.pagerank.to_bits(), "chunk {chunk_records}");
        }
    }

    #[test]
    fn veracity_store_scores_files_on_disk() {
        use csb_store::sink::save_graph;
        let seed = small_seed();
        let synth = crate::pgpba(
            &seed,
            &PgpbaConfig { desired_size: seed.edge_count() as u64 * 2, fraction: 0.2, seed: 4 },
        );
        let dir = std::env::temp_dir().join(format!("csb-veracity-store-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let a = dir.join("seed.csb");
        let b = dir.join("synth.csb");
        save_graph(&a, &seed.graph).expect("save seed");
        save_graph(&b, &synth).expect("save synth");
        let ooc = veracity_store(&a, &b, &PageRankConfig::default()).expect("score");
        let mem = veracity(&seed.graph, &synth);
        assert_eq!(mem.degree.to_bits(), ooc.degree.to_bits());
        assert_eq!(mem.pagerank.to_bits(), ooc.pagerank.to_bits());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn both_generators_have_low_scores() {
        // Paper Section V-A: "the veracity scores obtained in both the
        // experiments are in general very low".
        let seed = small_seed();
        let target = seed.edge_count() as u64 * 4;
        let ba = crate::pgpba(&seed, &PgpbaConfig { desired_size: target, fraction: 0.1, seed: 3 });
        let sk = crate::pgsk(
            &seed,
            &PgskConfig {
                desired_size: target,
                seed: 3,
                kronfit_iterations: 8,
                kronfit_permutation_samples: 200,
            },
        );
        let vba = veracity(&seed.graph, &ba);
        let vsk = veracity(&seed.graph, &sk);
        assert!(vba.degree < 0.05, "PGPBA degree score {}", vba.degree);
        assert!(vsk.degree < 0.05, "PGSK degree score {}", vsk.degree);
        assert!(vba.pagerank < 0.05);
        assert!(vsk.pagerank < 0.05);
    }
}
