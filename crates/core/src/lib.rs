//! # csb-core
//!
//! The paper's contribution: two property-graph synthetic data generators
//! for benchmarking next-generation intrusion detection systems.
//!
//! * [`pgpba`] — **Property-Graph Parallel Barabási-Albert** (paper Fig. 2):
//!   grows a seed graph by two-stage preferential attachment over the edge
//!   list (sample an edge uniformly, then one of its endpoints), attaching
//!   new vertices with in/out edge counts drawn from the seed's degree
//!   distributions, then samples NetFlow attributes for every edge.
//! * [`pgsk`] — **Property-Graph Stochastic Kronecker** (paper Fig. 3):
//!   deduplicates the seed multigraph, fits a 2x2 stochastic Kronecker
//!   initiator with [`kronecker::kronfit`], expands by recursive-descent
//!   edge placement, re-inflates multi-edges from the seed out-degree
//!   distribution, and samples attributes.
//!
//! Both generators are fronted by [`GenJob`], a single builder covering the
//! in-memory, timed, distributed, sink-streaming, and checkpointed-store
//! execution paths (the free functions remain as thin compatibility
//! wrappers). Checkpointed store runs survive crashes: killed mid-write,
//! they resume from the last durable barrier to a byte-identical file.
//!
//! Supporting modules: [`seed`] (the Fig. 1 preliminary pipeline: PCAP ->
//! NetFlow -> property-graph -> analysis), [`analysis`] (degree and
//! conditional attribute distributions, `p(a | IN_BYTES)`), [`veracity`]
//! (the Section V-A scores plus the Veracity 2.0 multi-metric suite behind
//! [`VeracityJob`]), and [`distributed`] (map-reduce
//! implementations on `csb-engine` mirroring the paper's Spark/GraphX code
//! path, plus simulated-cluster performance estimation).

pub mod analysis;
pub mod campaign_job;
pub mod config;
pub mod diagnostics;
pub mod distributed;
pub mod job;
pub mod kronecker;
pub mod pgpba;
pub mod pgsk;
pub mod seed;
pub mod stream;
pub mod topo;
pub mod veracity;

pub use analysis::{PropertyModel, SeedAnalysis};
pub use campaign_job::{CampaignJob, CampaignOutcome};
pub use config::{PgpbaConfig, PgskConfig};
pub use diagnostics::PhaseTimings;
pub use distributed::DistConfig;
pub use job::{GenConfig, GenJob, GenRun};
pub use pgpba::{pgpba, pgpba_timed};
pub use pgsk::{pgsk, pgsk_timed};
pub use seed::{seed_from_packets, seed_from_trace, SeedBundle};
pub use stream::{attach_properties_to_sink, pgpba_to_sink, pgsk_to_sink};
#[allow(deprecated)]
pub use veracity::{
    degree_veracity, pagerank_veracity, pagerank_veracity_with, veracity, veracity_scan_with,
    veracity_store, veracity_with, VeracityScores,
};
pub use veracity::{DynEdgeScan, Metric, MetricScore, VeracityJob, VeracityReport};
