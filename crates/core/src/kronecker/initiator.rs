//! The 2x2 stochastic Kronecker initiator matrix.

/// A 2x2 stochastic initiator: `theta[i][j]` is the probability weight of an
/// edge landing in quadrant `(i, j)` at each recursion level. The `k`-th
/// Kronecker power describes a graph on `2^k` vertices with
/// `(sum theta)^k` expected edges.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Initiator {
    /// Entry probabilities in `[0, 1]`.
    pub theta: [[f64; 2]; 2],
}

impl Initiator {
    /// Creates an initiator, validating entries.
    ///
    /// # Panics
    /// Panics if entries are outside `[0, 1]` or all zero.
    pub fn new(theta: [[f64; 2]; 2]) -> Self {
        for row in &theta {
            for &t in row {
                assert!((0.0..=1.0).contains(&t) && t.is_finite(), "initiator entries in [0,1]");
            }
        }
        let init = Initiator { theta };
        assert!(init.sum() > 0.0, "initiator must have positive mass");
        init
    }

    /// A textbook core-periphery initiator, the usual KronFit starting point.
    pub fn classic() -> Self {
        Initiator::new([[0.9, 0.6], [0.6, 0.2]])
    }

    /// Sum of entries — the expected edge-count multiplier per level.
    pub fn sum(&self) -> f64 {
        self.theta[0][0] + self.theta[0][1] + self.theta[1][0] + self.theta[1][1]
    }

    /// Sum of squared entries (used by the KronFit likelihood approximation).
    pub fn sum_sq(&self) -> f64 {
        self.theta.iter().flatten().map(|t| t * t).sum()
    }

    /// Expected number of edges of the `k`-th Kronecker power.
    pub fn expected_edges(&self, k: u32) -> f64 {
        self.sum().powi(k as i32)
    }

    /// Number of vertices of the `k`-th power.
    pub fn num_vertices(k: u32) -> u64 {
        1u64 << k
    }

    /// Probability of edge `(u, v)` in the `k`-th power: the product over
    /// recursion levels of the entry selected by the level's bit pair.
    pub fn edge_probability(&self, u: u64, v: u64, k: u32) -> f64 {
        debug_assert!(u < (1 << k) && v < (1 << k));
        let c = BitCounts::of(u, v, k);
        self.theta[0][0].powi(c.c00 as i32)
            * self.theta[0][1].powi(c.c01 as i32)
            * self.theta[1][0].powi(c.c10 as i32)
            * self.theta[1][1].powi(c.c11 as i32)
    }

    /// Smallest `k` whose expected edge count reaches `target` (at least 1).
    ///
    /// # Panics
    /// Panics if the expected multiplier is <= 1 (the power never grows).
    pub fn iterations_for_edges(&self, target: f64) -> u32 {
        let s = self.sum();
        assert!(s > 1.0, "initiator sum {s} <= 1 cannot grow a graph");
        if target <= s {
            1
        } else {
            (target.ln() / s.ln()).ceil() as u32
        }
    }
}

/// Per-level bit-pair counts of a vertex pair — the sufficient statistics of
/// `edge_probability` and of the KronFit gradient.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitCounts {
    /// Levels where both bits are 0.
    pub c00: u32,
    /// Levels with bits (0, 1).
    pub c01: u32,
    /// Levels with bits (1, 0).
    pub c10: u32,
    /// Levels with bits (1, 1).
    pub c11: u32,
}

impl BitCounts {
    /// Counts the bit pairs of `(u, v)` over the low `k` bits.
    #[inline]
    pub fn of(u: u64, v: u64, k: u32) -> Self {
        let mask = if k >= 64 { u64::MAX } else { (1u64 << k) - 1 };
        let (u, v) = (u & mask, v & mask);
        let c11 = (u & v).count_ones();
        let c10 = (u & !v).count_ones();
        let c01 = (!u & v & mask).count_ones();
        let c00 = k - c11 - c10 - c01;
        BitCounts { c00, c01, c10, c11 }
    }

    /// Count for entry `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> u32 {
        match (i, j) {
            (0, 0) => self.c00,
            (0, 1) => self.c01,
            (1, 0) => self.c10,
            (1, 1) => self.c11,
            _ => unreachable!("2x2 initiator"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sums_and_expectations() {
        let i = Initiator::classic();
        assert!((i.sum() - 2.3).abs() < 1e-12);
        assert!((i.expected_edges(3) - 2.3f64.powi(3)).abs() < 1e-9);
        assert_eq!(Initiator::num_vertices(5), 32);
    }

    #[test]
    fn bit_counts() {
        // u = 0b101, v = 0b011, k = 3: pairs (1,0),(0,1),(1,1).
        let c = BitCounts::of(0b101, 0b011, 3);
        assert_eq!(c.c11, 1);
        assert_eq!(c.c10, 1);
        assert_eq!(c.c01, 1);
        assert_eq!(c.c00, 0);
        let z = BitCounts::of(0, 0, 4);
        assert_eq!(z.c00, 4);
    }

    #[test]
    fn edge_probability_products() {
        let i = Initiator::new([[0.5, 0.25], [0.2, 0.1]]);
        // (0,0) at k=2: theta00^2.
        assert!((i.edge_probability(0, 0, 2) - 0.25).abs() < 1e-12);
        // u=0b10, v=0b01: level pairs (1,0) then (0,1).
        assert!((i.edge_probability(0b10, 0b01, 2) - 0.2 * 0.25).abs() < 1e-12);
    }

    #[test]
    fn total_probability_mass_is_sum_pow_k() {
        let i = Initiator::new([[0.7, 0.4], [0.3, 0.1]]);
        let k = 3;
        let n = Initiator::num_vertices(k);
        let total: f64 = (0..n)
            .flat_map(|u| (0..n).map(move |v| (u, v)))
            .map(|(u, v)| i.edge_probability(u, v, k))
            .sum();
        assert!((total - i.expected_edges(k)).abs() < 1e-9, "{total}");
    }

    #[test]
    fn iterations_for_edges_grows() {
        let i = Initiator::classic(); // sum 2.3
        assert_eq!(i.iterations_for_edges(1.0), 1);
        let k = i.iterations_for_edges(1e6);
        assert!(i.expected_edges(k) >= 1e6);
        assert!(i.expected_edges(k - 1) < 1e6);
    }

    #[test]
    #[should_panic(expected = "in [0,1]")]
    fn invalid_entry_panics() {
        let _ = Initiator::new([[1.5, 0.0], [0.0, 0.0]]);
    }

    #[test]
    #[should_panic(expected = "positive mass")]
    fn zero_mass_panics() {
        let _ = Initiator::new([[0.0, 0.0], [0.0, 0.0]]);
    }
}
