//! KronFit: maximum-likelihood estimation of the 2x2 initiator from an
//! observed graph (Leskovec et al., JMLR 2010, Section 5 — the paper's
//! "Kronfit fitting procedure", Fig. 3 line 6).
//!
//! The likelihood of a graph under a stochastic Kronecker model depends on
//! an unknown alignment `sigma` of graph vertices to Kronecker slots. As in
//! the original algorithm we alternate:
//!
//! 1. **Permutation sampling** — Metropolis swaps of slot assignments,
//!    scoring only the edges incident to the swapped vertices (the closed-
//!    form non-edge term below is permutation-invariant);
//! 2. **Gradient ascent on theta** — using the standard Taylor approximation
//!    of the non-edge term:
//!    `sum_{non-edges} ln(1 - p_uv) ~ -(sum theta)^k - 1/2 (sum theta^2)^k
//!     + sum_{edges} (p_uv + 1/2 p_uv^2)`,
//!    which makes both the log-likelihood and its gradient computable in
//!    `O(|E| k)` instead of `O(|V|^2)`.

use crate::kronecker::initiator::{BitCounts, Initiator};
use csb_stats::rng::rng_for;
use rand::Rng;

/// Slot assignment state for the permutation MCMC.
struct Alignment {
    /// Kronecker slot of each graph vertex.
    slot_of: Vec<u64>,
    /// Graph vertex occupying each slot (`u32::MAX` when empty).
    vertex_of: Vec<u32>,
    /// Incident edge indices per vertex.
    incident: Vec<Vec<u32>>,
}

const EMPTY: u32 = u32::MAX;

impl Alignment {
    fn identity(num_vertices: u32, num_slots: u64, edges: &[(u32, u32)]) -> Self {
        let mut incident: Vec<Vec<u32>> = vec![Vec::new(); num_vertices as usize];
        for (i, &(u, v)) in edges.iter().enumerate() {
            incident[u as usize].push(i as u32);
            if v != u {
                incident[v as usize].push(i as u32);
            }
        }
        Alignment {
            slot_of: (0..num_vertices as u64).collect(),
            vertex_of: (0..num_slots)
                .map(|s| if s < num_vertices as u64 { s as u32 } else { EMPTY })
                .collect(),
            incident,
        }
    }
}

/// Per-edge contribution of the permutation-dependent likelihood part:
/// `ln p + p + p^2/2`.
#[inline]
fn edge_ll(init: &Initiator, su: u64, sv: u64, k: u32) -> f64 {
    let p = init.edge_probability(su, sv, k).max(1e-300);
    p.ln() + p + 0.5 * p * p
}

/// Fast moment-matching initializer: picks a core-periphery initiator whose
/// `k`-th power matches the graph's edge count exactly and whose skew
/// (theta00 vs theta11 ratio) is set from the degree variance. Used as a
/// cheap alternative to the full MLE when fitting time dominates (the
/// `kronfit_ablation` bench compares both).
pub fn kronfit_moments(edges: &[(u32, u32)], num_vertices: u32) -> Initiator {
    assert!(!edges.is_empty(), "kronfit needs at least one edge");
    assert!(num_vertices >= 1, "kronfit needs vertices");
    let k = (num_vertices.max(2) as f64).log2().ceil() as u32;
    // Required entry sum: s^k = |E|  =>  s = |E|^(1/k), clamped to the
    // representable range of a [0,1] 2x2 matrix.
    let s = (edges.len() as f64).powf(1.0 / k as f64).clamp(1.01, 3.6);

    // Skew from the degree coefficient of variation: heavier tails need a
    // larger theta00/theta11 contrast.
    let mut degree = vec![0u64; num_vertices as usize];
    for &(u, v) in edges {
        degree[u as usize] += 1;
        degree[v as usize] += 1;
    }
    let n = degree.len() as f64;
    let mean = degree.iter().sum::<u64>() as f64 / n;
    let var = degree.iter().map(|&d| (d as f64 - mean).powi(2)).sum::<f64>() / n;
    let cv = if mean > 0.0 { var.sqrt() / mean } else { 0.0 };
    // Map cv in [0, ~3] onto a contrast ratio a/d in [1.5, 12].
    let contrast = (1.5 + 3.5 * cv).min(12.0);

    // Solve a + 2b + d = s with b = sqrt(a*d) (geometric off-diagonal) and
    // a = contrast * d. Closed form: s = d (sqrt(contrast) + 1)^2.
    let mut d = s / (contrast.sqrt() + 1.0).powi(2);
    let mut a = contrast * d;
    if a > 0.999 {
        // Core entry saturates; re-solve 2 sqrt(a d) + d = s - a for d so
        // the entry sum (and thus the expected edge count) is preserved.
        a = 0.999;
        let residual = (s - a).max(0.0);
        let g = |d: f64| 2.0 * (a * d).sqrt() + d;
        let (mut lo, mut hi) = (0.0f64, 0.999f64);
        for _ in 0..64 {
            let mid = 0.5 * (lo + hi);
            if g(mid) < residual {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        d = 0.5 * (lo + hi);
    }
    let b = ((a * d).sqrt()).min(0.999);
    Initiator::new([[a, b], [b, d.min(0.999)]])
}

/// Fits a 2x2 initiator to the given simple directed graph.
///
/// Indexed 0..2 loops over the 2x2 matrix are intentional (the index pair
/// *is* the quadrant), so the needless_range_loop lint is silenced.
///
/// `edges` must be deduplicated (PGSK's Fig. 3 lines 1-5 do this);
/// `num_vertices` is the vertex-universe size.
///
/// # Panics
/// Panics if the graph is empty or `iterations == 0`.
#[allow(clippy::needless_range_loop)]
pub fn kronfit(
    edges: &[(u32, u32)],
    num_vertices: u32,
    iterations: usize,
    perm_samples: usize,
    seed: u64,
) -> Initiator {
    assert!(!edges.is_empty(), "kronfit needs at least one edge");
    assert!(num_vertices >= 1, "kronfit needs vertices");
    assert!(iterations > 0, "kronfit needs iterations");
    let k = (num_vertices.max(2) as f64).log2().ceil() as u32;
    let num_slots = Initiator::num_vertices(k);
    let mut init = Initiator::classic();
    let mut align = Alignment::identity(num_vertices, num_slots, edges);
    let mut rng = rng_for(seed, 0xF17);

    for it in 0..iterations {
        // --- Permutation sampling (Metropolis over slot swaps). ---
        for _ in 0..perm_samples {
            let a = rng.gen_range(0..num_slots);
            let b = rng.gen_range(0..num_slots);
            if a == b {
                continue;
            }
            let va = align.vertex_of[a as usize];
            let vb = align.vertex_of[b as usize];
            if va == EMPTY && vb == EMPTY {
                continue;
            }
            // Edges whose probability changes: incidents of va and vb.
            let mut affected: Vec<u32> = Vec::new();
            if va != EMPTY {
                affected.extend_from_slice(&align.incident[va as usize]);
            }
            if vb != EMPTY {
                affected.extend_from_slice(&align.incident[vb as usize]);
            }
            affected.sort_unstable();
            affected.dedup();

            let slot_after = |vertex: u32, align: &Alignment| -> u64 {
                let s = align.slot_of[vertex as usize];
                if s == a {
                    b
                } else if s == b {
                    a
                } else {
                    s
                }
            };
            let mut delta = 0.0;
            for &e in &affected {
                let (u, v) = edges[e as usize];
                let before =
                    edge_ll(&init, align.slot_of[u as usize], align.slot_of[v as usize], k);
                let after = edge_ll(&init, slot_after(u, &align), slot_after(v, &align), k);
                delta += after - before;
            }
            if delta >= 0.0 || rng.gen::<f64>() < delta.exp() {
                if va != EMPTY {
                    align.slot_of[va as usize] = b;
                }
                if vb != EMPTY {
                    align.slot_of[vb as usize] = a;
                }
                align.vertex_of[a as usize] = vb;
                align.vertex_of[b as usize] = va;
            }
        }

        // --- Gradient ascent on theta. ---
        let mut grad = [[0.0f64; 2]; 2];
        for &(u, v) in edges {
            let su = align.slot_of[u as usize];
            let sv = align.slot_of[v as usize];
            let c = BitCounts::of(su, sv, k);
            let p = init.edge_probability(su, sv, k).max(1e-300);
            let w = 1.0 + p + p * p;
            for i in 0..2 {
                for j in 0..2 {
                    grad[i][j] += c.get(i, j) as f64 / init.theta[i][j].max(1e-6) * w;
                }
            }
        }
        let s = init.sum();
        let s2 = init.sum_sq();
        let kf = k as f64;
        for i in 0..2 {
            for j in 0..2 {
                grad[i][j] -=
                    kf * s.powi(k as i32 - 1) + kf * init.theta[i][j] * s2.powi(k as i32 - 1);
            }
        }
        // Normalized step with decaying size, clamped into (0, 1).
        let max_g = grad.iter().flatten().fold(0.0f64, |m, g| m.max(g.abs()));
        if max_g > 0.0 {
            let step = 0.05 * (1.0 - it as f64 / iterations as f64).max(0.1);
            for i in 0..2 {
                for j in 0..2 {
                    let t = init.theta[i][j] + step * grad[i][j] / max_g;
                    init.theta[i][j] = t.clamp(1e-3, 0.999);
                }
            }
        }
    }
    init
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kronecker::descent::generate_edges;

    /// Deduplicated planted Kronecker graph for recovery tests.
    fn planted(k: u32, planted_init: &Initiator, seed: u64) -> (Vec<(u32, u32)>, u32) {
        let count = planted_init.expected_edges(k).round() as usize;
        let mut edges: Vec<(u32, u32)> = generate_edges(planted_init, k, count, seed)
            .into_iter()
            .map(|(u, v)| (u as u32, v as u32))
            .collect();
        edges.sort_unstable();
        edges.dedup();
        (edges, Initiator::num_vertices(k) as u32)
    }

    #[test]
    fn recovers_edge_density_of_planted_graph() {
        let truth = Initiator::classic();
        let k = 9;
        let (edges, n) = planted(k, &truth, 42);
        let fitted = kronfit(&edges, n, 30, 500, 1);
        // The fitted model's expected edge count must track the observed one
        // (the property PGSK's sizing relies on).
        let expect = fitted.expected_edges(k);
        let actual = edges.len() as f64;
        let ratio = expect / actual;
        assert!((0.5..2.0).contains(&ratio), "expected {expect} vs actual {actual}");
    }

    #[test]
    fn recovers_core_periphery_orientation() {
        let truth = Initiator::new([[0.9, 0.5], [0.5, 0.1]]);
        let k = 9;
        let (edges, n) = planted(k, &truth, 7);
        let fitted = kronfit(&edges, n, 30, 500, 2);
        assert!(
            fitted.theta[0][0] > fitted.theta[1][1],
            "core {} should exceed periphery {}",
            fitted.theta[0][0],
            fitted.theta[1][1]
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let (edges, n) = planted(7, &Initiator::classic(), 3);
        let a = kronfit(&edges, n, 10, 200, 5);
        let b = kronfit(&edges, n, 10, 200, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn thetas_stay_in_unit_interval() {
        let (edges, n) = planted(6, &Initiator::classic(), 9);
        let fitted = kronfit(&edges, n, 50, 100, 6);
        for row in &fitted.theta {
            for &t in row {
                assert!((1e-3..=0.999).contains(&t), "theta {t} escaped");
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one edge")]
    fn empty_graph_rejected() {
        let _ = kronfit(&[], 4, 10, 10, 0);
    }

    #[test]
    fn moments_initializer_matches_edge_count() {
        let truth = Initiator::classic();
        let k = 9;
        let (edges, n) = planted(k, &truth, 11);
        let fitted = kronfit_moments(&edges, n);
        let expect = fitted.expected_edges(k);
        let ratio = expect / edges.len() as f64;
        assert!((0.8..1.3).contains(&ratio), "expected {expect} vs {}", edges.len());
        // Core-periphery orientation from the skew heuristic.
        assert!(fitted.theta[0][0] > fitted.theta[1][1]);
        // Entries valid.
        for row in &fitted.theta {
            for &t in row {
                assert!((0.0..=1.0).contains(&t));
            }
        }
    }

    #[test]
    fn moments_initializer_handles_flat_graphs() {
        // A ring: minimal degree variance.
        let n = 64u32;
        let edges: Vec<(u32, u32)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        let fitted = kronfit_moments(&edges, n);
        let expect = fitted.expected_edges(6);
        assert!((expect - 64.0).abs() < 20.0, "expected edges {expect}");
    }
}
