//! Recursive-descent edge placement ("ball dropping"): generates one edge of
//! the stochastic Kronecker graph in O(k) by descending the quadrant tree,
//! choosing a quadrant at each level with probability proportional to the
//! initiator entry. This is the `O(|E|)` simulation of the Kronecker product
//! the paper's PGSK builds on, parallelized per batch.

use crate::kronecker::initiator::Initiator;
use csb_stats::rng::rng_for;
use rand::Rng;
use rayon::prelude::*;

/// Places one edge in the `k`-th Kronecker power of the initiator.
#[allow(clippy::needless_range_loop)] // 0..2 indices are the quadrant bits
pub fn place_edge<R: Rng + ?Sized>(init: &Initiator, k: u32, rng: &mut R) -> (u64, u64) {
    let t = &init.theta;
    let sum = init.sum();
    let (mut u, mut v) = (0u64, 0u64);
    for _ in 0..k {
        let mut x = rng.gen::<f64>() * sum;
        let (mut i, mut j) = (1usize, 1usize);
        'pick: for ii in 0..2 {
            for jj in 0..2 {
                x -= t[ii][jj];
                if x < 0.0 {
                    i = ii;
                    j = jj;
                    break 'pick;
                }
            }
        }
        u = (u << 1) | i as u64;
        v = (v << 1) | j as u64;
    }
    (u, v)
}

/// Generates `count` edges in parallel, deterministically per (seed, batch).
/// Edges may repeat — PGSK deduplicates afterwards, exactly like the paper's
/// `RDD.distinct()` step.
pub fn generate_edges(init: &Initiator, k: u32, count: usize, seed: u64) -> Vec<(u64, u64)> {
    const CHUNK: usize = 4096;
    let chunks = count.div_ceil(CHUNK);
    (0..chunks)
        .into_par_iter()
        .flat_map_iter(|c| {
            let mut rng = rng_for(seed, c as u64);
            let n = CHUNK.min(count - c * CHUNK);
            (0..n).map(move |_| place_edge(init, k, &mut rng)).collect::<Vec<_>>()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn edges_stay_in_bounds() {
        let init = Initiator::classic();
        let edges = generate_edges(&init, 10, 10_000, 1);
        assert_eq!(edges.len(), 10_000);
        let n = Initiator::num_vertices(10);
        assert!(edges.iter().all(|&(u, v)| u < n && v < n));
    }

    #[test]
    fn deterministic_given_seed() {
        let init = Initiator::classic();
        let a = generate_edges(&init, 8, 5_000, 7);
        let b = generate_edges(&init, 8, 5_000, 7);
        assert_eq!(a, b);
        let c = generate_edges(&init, 8, 5_000, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn quadrant_frequencies_match_initiator() {
        // At k=1 the edge is exactly one quadrant choice.
        let init = Initiator::new([[0.8, 0.4], [0.2, 0.1]]);
        let sum = init.sum();
        let edges = generate_edges(&init, 1, 200_000, 3);
        let mut counts: HashMap<(u64, u64), u64> = HashMap::new();
        for e in edges {
            *counts.entry(e).or_insert(0) += 1;
        }
        for (i, row) in init.theta.iter().enumerate() {
            for (j, &t) in row.iter().enumerate() {
                let freq = *counts.get(&(i as u64, j as u64)).unwrap_or(&0) as f64 / 200_000.0;
                let expect = t / sum;
                assert!((freq - expect).abs() < 0.01, "cell ({i},{j}): {freq} vs {expect}");
            }
        }
    }

    #[test]
    fn core_periphery_structure_emerges() {
        // With a core-heavy initiator, low-id (core) vertices should carry
        // far more edges than high-id (periphery) ones.
        let init = Initiator::classic();
        let k = 8;
        let edges = generate_edges(&init, k, 50_000, 5);
        let half = Initiator::num_vertices(k) / 2;
        let core = edges.iter().filter(|&&(u, v)| u < half && v < half).count();
        let periphery = edges.iter().filter(|&&(u, v)| u >= half && v >= half).count();
        assert!(core > periphery * 3, "core {core} vs periphery {periphery}");
    }

    #[test]
    fn zero_count_is_empty() {
        assert!(generate_edges(&Initiator::classic(), 5, 0, 0).is_empty());
    }
}
