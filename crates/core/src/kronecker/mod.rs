//! Stochastic Kronecker machinery: the 2x2 initiator matrix, the KronFit
//! estimator, and recursive-descent edge placement (Leskovec et al., JMLR
//! 2010 — the paper's reference [20]).

pub mod descent;
pub mod initiator;
pub mod kronfit;

pub use descent::{generate_edges, place_edge};
pub use initiator::Initiator;
pub use kronfit::{kronfit, kronfit_moments};
