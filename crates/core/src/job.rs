//! `GenJob` — the unified entry point for generation runs.
//!
//! The generators accumulated eight entry points (`pgpba`, `pgsk`, the
//! `*_timed` variants, the `*_to_sink` streamers, and the distributed
//! implementations), each a different combination of the same three
//! orthogonal choices: *which generator*, *where the output goes*, and *what
//! extras to record*. `GenJob` makes the combination explicit:
//!
//! ```no_run
//! use csb_core::{GenJob, PgpbaConfig};
//! # let seed: csb_core::SeedBundle = unimplemented!();
//! // In-memory graph with phase timings:
//! let run = GenJob::pgpba(&seed, PgpbaConfig::new(100_000)).timed().run().unwrap();
//! let graph = run.graph.unwrap();
//!
//! // Straight to a store file, checkpointing every 4 chunks, resuming a
//! // previous kill if a manifest exists:
//! let run = GenJob::pgpba(&seed, PgpbaConfig::new(100_000))
//!     .store("graph.csbstore")
//!     .checkpoint("ckpt-dir")
//!     .checkpoint_every(4)
//!     .resume()
//!     .run()
//!     .unwrap();
//! assert!(run.graph.is_none(), "store runs never hold the graph in memory");
//! ```
//!
//! The old free functions remain as thin wrappers and keep compiling, but
//! new call sites should use `GenJob`.
//!
//! # Checkpointed runs and crash recovery
//!
//! A `.store(..).checkpoint(dir)` run writes a durable
//! [`CheckpointManifest`] every `checkpoint_every` store chunks. If the
//! process dies, re-running the same job with `.resume()` validates the
//! manifest (generator, config hash, master seed), truncates the partial
//! store file back to the last barrier, regrows the (deterministic)
//! topology, and replays attribute attachment only from the first
//! non-durable chunk — producing a file **byte-identical** to an
//! uninterrupted run. With `.retry(policy)` the restart happens in-process:
//! a transient failure mid-write triggers an automatic resume (counted in
//! the `job.restarts` metric) instead of surfacing to the caller.

use crate::config::{PgpbaConfig, PgskConfig};
use crate::diagnostics::PhaseTimings;
use crate::distributed::{pgpba_distributed, pgsk_distributed, DistConfig};
use crate::pgpba::pgpba_topology;
use crate::pgsk::pgsk_topology;
use crate::seed::SeedBundle;
use crate::stream::attach_properties_to_sink;
use crate::topo::{attach_properties, Topology};
use csb_engine::{JobMetrics, RetryPolicy};
use csb_graph::NetflowGraph;
use csb_stats::rng::derive_seed;
use csb_store::checkpoint::{CheckpointIdentity, CheckpointManifest, CheckpointedGraphSink};
use csb_store::shard::{CheckpointedShardedGraphSink, ShardedCheckpointManifest, ShardedGraphSink};
use csb_store::sink::GraphStoreSink;
use csb_store::{Compression, CsbError, EdgeSink};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Which generator a job runs, with its configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GenConfig {
    /// Property-Graph Parallel Barabási-Albert.
    Pgpba(PgpbaConfig),
    /// Property-Graph Stochastic Kronecker.
    Pgsk(PgskConfig),
}

impl GenConfig {
    /// Generator name as recorded in checkpoint manifests and CLI flags.
    pub fn generator_name(&self) -> &'static str {
        match self {
            GenConfig::Pgpba(_) => "pgpba",
            GenConfig::Pgsk(_) => "pgsk",
        }
    }

    /// Master RNG seed of the run.
    pub fn master_seed(&self) -> u64 {
        match self {
            GenConfig::Pgpba(c) => c.seed,
            GenConfig::Pgsk(c) => c.seed,
        }
    }

    /// Requested synthetic edge count.
    pub fn desired_size(&self) -> u64 {
        match self {
            GenConfig::Pgpba(c) => c.desired_size,
            GenConfig::Pgsk(c) => c.desired_size,
        }
    }

    /// Deterministic hash of every config field *except* the seed (the
    /// checkpoint identity records the seed separately). Two jobs with the
    /// same hash, generator, and seed produce the same record stream, which
    /// is exactly the condition under which resuming is sound.
    pub fn config_hash(&self) -> u64 {
        match self {
            GenConfig::Pgpba(c) => {
                let mut h = derive_seed(0xC0F1_6BA0, c.desired_size);
                h = derive_seed(h, c.fraction.to_bits());
                h
            }
            GenConfig::Pgsk(c) => {
                let mut h = derive_seed(0xC0F1_65C0, c.desired_size);
                h = derive_seed(h, c.kronfit_iterations as u64);
                h = derive_seed(h, c.kronfit_permutation_samples as u64);
                h
            }
        }
    }

    fn identity(&self) -> CheckpointIdentity {
        CheckpointIdentity {
            generator: self.generator_name().to_string(),
            config_hash: self.config_hash(),
            master_seed: self.master_seed(),
        }
    }
}

/// Where a job's output goes.
enum Output<'s> {
    /// Materialize a [`NetflowGraph`] in memory (the classic API).
    Memory,
    /// Stream into a caller-provided sink.
    Sink(&'s mut dyn EdgeSink),
    /// Write a store file, optionally with checkpoint barriers.
    Store(PathBuf),
}

/// Checkpointing options of a `.store()` run.
#[derive(Debug, Clone, Default)]
struct CheckpointOpts {
    dir: Option<PathBuf>,
    every: Option<u64>,
    resume: bool,
    chunk_records: Option<usize>,
    kill_after_chunks: Option<(u64, bool)>,
}

/// Store layout options of a `.store()` run.
#[derive(Debug, Clone, Default)]
struct StoreOpts {
    shards: usize,
    compression: Compression,
}

/// A configured generation run. Build with [`GenJob::pgpba`] /
/// [`GenJob::pgsk`], refine with the builder methods, execute with
/// [`GenJob::run`].
pub struct GenJob<'a, 's> {
    seed: &'a SeedBundle,
    config: GenConfig,
    timed: bool,
    distributed: Option<DistConfig>,
    retry: RetryPolicy,
    output: Output<'s>,
    ckpt: CheckpointOpts,
    store_opts: StoreOpts,
    recorder: Option<csb_obs::Recorder>,
    job_id: Option<String>,
    cancel: Option<Arc<AtomicBool>>,
}

/// What a [`GenJob`] produced.
#[derive(Debug)]
pub struct GenRun {
    /// The synthetic graph — `Some` only for in-memory runs.
    pub graph: Option<NetflowGraph>,
    /// Edges generated (for resumed runs: the full logical edge count, not
    /// just the replayed suffix).
    pub edges: u64,
    /// Per-phase wall-clock timings when [`GenJob::timed`] was requested.
    pub timings: Option<PhaseTimings>,
    /// Engine operator metrics when [`GenJob::distributed`] was requested.
    pub metrics: Option<JobMetrics>,
}

impl<'a, 's> GenJob<'a, 's> {
    fn new(seed: &'a SeedBundle, config: GenConfig) -> Self {
        GenJob {
            seed,
            config,
            timed: false,
            distributed: None,
            retry: RetryPolicy::none(),
            output: Output::Memory,
            ckpt: CheckpointOpts::default(),
            store_opts: StoreOpts::default(),
            recorder: None,
            job_id: None,
            cancel: None,
        }
    }

    /// A PGPBA job.
    pub fn pgpba(seed: &'a SeedBundle, cfg: PgpbaConfig) -> Self {
        GenJob::new(seed, GenConfig::Pgpba(cfg))
    }

    /// A PGSK job.
    pub fn pgsk(seed: &'a SeedBundle, cfg: PgskConfig) -> Self {
        GenJob::new(seed, GenConfig::Pgsk(cfg))
    }

    /// Records per-phase wall-clock timings into [`GenRun::timings`].
    pub fn timed(mut self) -> Self {
        self.timed = true;
        self
    }

    /// Routes this job's telemetry (spans, metrics, live status) into `rec`
    /// instead of the process-global recorder, so concurrent jobs never
    /// cross-contaminate. The recorder is installed on the job thread for
    /// the whole run and propagated into the shard writer threads and
    /// parallel attach workers. Telemetry never touches generator RNG
    /// streams: output is bit-identical with or without a recorder.
    pub fn recorder(mut self, rec: csb_obs::Recorder) -> Self {
        self.recorder = Some(rec);
        self
    }

    /// Names the job on its status board (`GET /status`, `--progress`);
    /// defaults to `<generator>-<master_seed, hex>`.
    pub fn job_id(mut self, id: impl Into<String>) -> Self {
        self.job_id = Some(id.into());
        self
    }

    /// Grows the topology on the `csb-engine` dataflow (the paper's
    /// Spark-mirroring path) instead of in-process; operator metrics land in
    /// [`GenRun::metrics`]. The engine's per-task retry/fault policy rides
    /// in [`DistConfig::tasks`].
    pub fn distributed(mut self, dist: DistConfig) -> Self {
        self.distributed = Some(dist);
        self
    }

    /// Streams output into `sink` instead of materializing a graph.
    pub fn sink(mut self, sink: &'s mut dyn EdgeSink) -> Self {
        self.output = Output::Sink(sink);
        self
    }

    /// Writes output to a graph store file at `path`.
    pub fn store(mut self, path: impl Into<PathBuf>) -> Self {
        self.output = Output::Store(path.into());
        self
    }

    /// Splits a `.store()` run across `n` shard files written by parallel
    /// workers (the store path becomes a shard-set manifest; readers and
    /// `load_graph` dispatch on its magic). `n <= 1` keeps the single-file
    /// layout.
    pub fn shards(mut self, n: usize) -> Self {
        self.store_opts.shards = n;
        self
    }

    /// Store compression for `.store()` runs: [`Compression::Columnar`]
    /// writes format v2 with per-column codecs (delta+varint endpoints,
    /// dictionary-packed low-cardinality columns); the default
    /// [`Compression::None`] keeps v1.
    pub fn compression(mut self, c: Compression) -> Self {
        self.store_opts.compression = c;
        self
    }

    /// Enables checkpoint barriers (manifest in `dir`) on a `.store()` run.
    pub fn checkpoint(mut self, dir: impl Into<PathBuf>) -> Self {
        self.ckpt.dir = Some(dir.into());
        self
    }

    /// Store chunks between checkpoint barriers (default
    /// [`csb_store::checkpoint::DEFAULT_CHECKPOINT_EVERY`]).
    pub fn checkpoint_every(mut self, chunks: u64) -> Self {
        self.ckpt.every = Some(chunks.max(1));
        self
    }

    /// Resumes from the checkpoint manifest if one exists (fresh start
    /// otherwise). The manifest's identity must match this job.
    pub fn resume(mut self) -> Self {
        self.ckpt.resume = true;
        self
    }

    /// Job-level restarts: when a checkpointed `.store()` run fails
    /// transiently, resume it in-process up to `policy.max_retries` times
    /// (deterministic backoff) before surfacing the error.
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// Overrides the store chunk size (tests use small chunks to exercise
    /// multi-chunk and checkpoint paths cheaply).
    pub fn chunk_records(mut self, records: usize) -> Self {
        self.ckpt.chunk_records = Some(records.max(1));
        self
    }

    /// Fault-injection hook for checkpointed store runs: the run dies before
    /// writing chunk `n + 1`. With `abort_process` the whole process exits
    /// via [`std::process::abort`] (what the CI kill-and-resume smoke uses);
    /// otherwise a transient error surfaces (or triggers [`GenJob::retry`]).
    /// The hook applies to the *first* attempt only, so a retrying job
    /// recovers instead of dying again.
    pub fn kill_after_chunks(mut self, n: u64, abort_process: bool) -> Self {
        self.ckpt.kill_after_chunks = Some((n, abort_process));
        self
    }

    /// Cooperative cancellation/preemption for store-backed runs: once
    /// `flag` is set, the job stops at the next phase boundary — or, on a
    /// checkpointed run, at the next store chunk boundary after taking a
    /// durable barrier — and surfaces [`CsbError::Transient`]. A preempted
    /// checkpointed job resumes byte-identically via [`GenJob::resume`].
    /// While the flag is set, [`GenJob::retry`] does not auto-restart.
    pub fn cancel_flag(mut self, flag: Arc<AtomicBool>) -> Self {
        self.cancel = Some(flag);
        self
    }

    fn cancelled(&self) -> bool {
        self.cancel.as_ref().is_some_and(|f| f.load(Ordering::Relaxed))
    }

    /// Grows the topology (in-process or on the engine), returning it with
    /// the grow duration and any engine metrics.
    fn grow(&self) -> (Topology, Option<JobMetrics>, std::time::Duration) {
        csb_obs::status::set_phase("grow");
        let t0 = Instant::now();
        match (&self.config, &self.distributed) {
            (GenConfig::Pgpba(cfg), None) => {
                let seed_topo = Topology::of_graph(&self.seed.graph);
                (pgpba_topology(&seed_topo, &self.seed.analysis, cfg), None, t0.elapsed())
            }
            (GenConfig::Pgsk(cfg), None) => {
                let seed_topo = Topology::of_graph(&self.seed.graph);
                (pgsk_topology(&seed_topo, &self.seed.analysis, cfg), None, t0.elapsed())
            }
            (GenConfig::Pgpba(cfg), Some(dist)) => {
                let (topo, metrics) = pgpba_distributed(self.seed, cfg, dist);
                (topo, Some(metrics), t0.elapsed())
            }
            (GenConfig::Pgsk(cfg), Some(dist)) => {
                let (topo, metrics) = pgsk_distributed(self.seed, cfg, dist);
                (topo, Some(metrics), t0.elapsed())
            }
        }
    }

    /// The attach conventions the in-process generators established: PGPBA
    /// keeps seed host addresses and streams under `seed ^ 0x9E37`; PGSK
    /// vertices have no seed correspondence (`seed ^ 0x5EED`, all-synthetic
    /// addresses).
    fn attach_params(&self) -> (Vec<u32>, u64) {
        match &self.config {
            GenConfig::Pgpba(cfg) => (self.seed.graph.vertex_data().to_vec(), cfg.seed ^ 0x9E37),
            GenConfig::Pgsk(cfg) => (Vec::new(), cfg.seed ^ 0x5EED),
        }
    }

    /// Runs the job.
    pub fn run(self) -> Result<GenRun, CsbError> {
        // The scoped recorder (if any) is current for the whole run; worker
        // threads spawned below re-install it explicitly.
        let _scope = self.recorder.clone().map(|r| r.install());
        let _span = csb_obs::span_cat("genjob.run", "gen");
        let job_id = self.job_id.clone().unwrap_or_else(|| {
            format!("{}-{:016x}", self.config.generator_name(), self.config.master_seed())
        });
        csb_obs::status::begin_job(
            &job_id,
            self.config.generator_name(),
            self.config.desired_size(),
        );
        if self.ckpt.kill_after_chunks.is_some() && self.ckpt.dir.is_none() {
            return Err(CsbError::Config(
                "kill_after_chunks requires a checkpoint directory".into(),
            ));
        }
        if (self.ckpt.dir.is_some() || self.ckpt.resume) && !matches!(self.output, Output::Store(_))
        {
            return Err(CsbError::Config(
                "checkpoint/resume apply only to store-backed runs (use .store(path))".into(),
            ));
        }
        let result = match self.output {
            Output::Memory => self.run_memory(),
            Output::Sink(_) => self.run_sink(),
            Output::Store(_) => self.run_store(),
        };
        match &result {
            Ok(run) => {
                csb_obs::status::note_edges(run.edges);
                csb_obs::status::finish();
            }
            Err(_) => csb_obs::status::set_phase("failed"),
        }
        result
    }

    fn run_memory(self) -> Result<GenRun, CsbError> {
        // In-process timed runs keep the fine-grained phase splits of the
        // original timed implementations (PGSK reports grow and inflate
        // separately, which the generic grow() cannot observe).
        if self.timed && self.distributed.is_none() {
            csb_obs::status::set_phase("grow");
            let (g, timings) = match &self.config {
                GenConfig::Pgpba(cfg) => crate::pgpba::pgpba_timed(self.seed, cfg),
                GenConfig::Pgsk(cfg) => crate::pgsk::pgsk_timed(self.seed, cfg),
            };
            let edges = g.edge_count() as u64;
            return Ok(GenRun { graph: Some(g), edges, timings: Some(timings), metrics: None });
        }
        let generator = self.config.generator_name();
        let (topo, metrics, grow) = self.grow();
        let (ips, attach_seed) = self.attach_params();
        csb_obs::status::set_phase("attach");
        let t1 = Instant::now();
        let g = attach_properties(&topo, &self.seed.analysis.properties, &ips, attach_seed);
        let attach = t1.elapsed();
        let edges = g.edge_count() as u64;
        let timings = self
            .timed
            .then(|| PhaseTimings::new(generator, g.edge_count()).grow(grow).attach(attach));
        Ok(GenRun { graph: Some(g), edges, timings, metrics })
    }

    fn run_sink(self) -> Result<GenRun, CsbError> {
        let generator = self.config.generator_name();
        let timed = self.timed;
        let (topo, metrics, grow) = self.grow();
        let (ips, attach_seed) = self.attach_params();
        let Output::Sink(sink) = self.output else { unreachable!("run_sink on non-sink output") };
        csb_obs::status::set_phase("attach");
        let t1 = Instant::now();
        let edges = attach_properties_to_sink(
            &topo,
            &self.seed.analysis.properties,
            &ips,
            attach_seed,
            sink,
        )?;
        let attach = t1.elapsed();
        let timings =
            timed.then(|| PhaseTimings::new(generator, edges as usize).grow(grow).attach(attach));
        Ok(GenRun { graph: None, edges, timings, metrics })
    }

    fn run_store(self) -> Result<GenRun, CsbError> {
        let Output::Store(path) = &self.output else {
            unreachable!("run_store on non-store output")
        };
        let path = path.clone();
        let generator = self.config.generator_name();
        let identity = self.config.identity();
        let checkpointing = self.ckpt.dir.is_some();
        let retry = self.retry;
        let job_seed = derive_seed(self.config.master_seed(), 0x10B);

        let mut resume = self.ckpt.resume;
        let mut kill = self.ckpt.kill_after_chunks;
        let mut attempt = 0u32;
        loop {
            let result = self.run_store_once(&path, &identity, resume, kill);
            match result {
                Ok(run) => return Ok(run),
                // A preempted job (cancel flag set) must surface, not
                // auto-restart: the scheduler that set the flag owns the
                // requeue/resume decision.
                Err(e)
                    if e.is_transient()
                        && checkpointing
                        && attempt < retry.max_retries
                        && !self.cancelled() =>
                {
                    csb_obs::counter_add("job.restarts", 1);
                    csb_obs::status::note_restart();
                    csb_obs::obs_info!(
                        "{generator} store run failed transiently ({e}); resuming from the last \
                         checkpoint (restart {})",
                        attempt + 1
                    );
                    let delay = retry.backoff_ms(attempt, job_seed);
                    if delay > 0 {
                        std::thread::sleep(std::time::Duration::from_millis(delay));
                    }
                    attempt += 1;
                    resume = true;
                    kill = None; // the fault hook models one crash, not a crash loop
                }
                Err(e)
                    if e.is_transient()
                        && checkpointing
                        && retry.max_retries > 0
                        && !self.cancelled() =>
                {
                    return Err(CsbError::RetryExhausted {
                        attempts: attempt + 1,
                        last: Box::new(e),
                    });
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn run_store_once(
        &self,
        path: &std::path::Path,
        identity: &CheckpointIdentity,
        resume: bool,
        kill: Option<(u64, bool)>,
    ) -> Result<GenRun, CsbError> {
        let generator = self.config.generator_name();
        if self.cancelled() {
            return Err(CsbError::Transient("preempted: cancel flag set before grow".into()));
        }
        let (topo, metrics, grow) = self.grow();
        let (ips, attach_seed) = self.attach_params();
        let model = &self.seed.analysis.properties;
        if self.cancelled() && self.ckpt.dir.is_none() {
            // Checkpointed runs defer to the sink's chunk-boundary check,
            // which takes a durable barrier first.
            return Err(CsbError::Transient("preempted: cancel flag set before attach".into()));
        }
        csb_obs::status::set_phase("attach");

        let shards = self.store_opts.shards;
        let compression = self.store_opts.compression;
        let (edges, attach) = match (&self.ckpt.dir, shards) {
            (None, 0..=1) => {
                let mut sink = match self.ckpt.chunk_records {
                    Some(n) => {
                        GraphStoreSink::create_with(path, compression)?.with_chunk_records(n)
                    }
                    None => GraphStoreSink::create_with(path, compression)?,
                };
                let t1 = Instant::now();
                let edges = attach_properties_to_sink(&topo, model, &ips, attach_seed, &mut sink)?;
                sink.finish()?;
                (edges, t1.elapsed())
            }
            (None, n_shards) => {
                let mut sink = ShardedGraphSink::create(path, n_shards, compression)?;
                if let Some(n) = self.ckpt.chunk_records {
                    sink = sink.with_chunk_records(n);
                }
                let t1 = Instant::now();
                let edges = attach_properties_to_sink(&topo, model, &ips, attach_seed, &mut sink)?;
                sink.finish()?;
                (edges, t1.elapsed())
            }
            (Some(dir), 0..=1) => {
                if compression != Compression::None {
                    return Err(CsbError::Config(
                        "columnar compression on a checkpointed run requires sharding \
                         (.shards(n >= 2)); the single-file checkpointed sink writes v1"
                            .into(),
                    ));
                }
                let resuming = resume && CheckpointManifest::exists(dir);
                let mut sink = if resuming {
                    CheckpointedGraphSink::resume(path, dir, identity.clone())?
                } else {
                    let mut s = CheckpointedGraphSink::create(path, dir, identity.clone())?;
                    if let Some(n) = self.ckpt.chunk_records {
                        s = s.with_chunk_records(n);
                    }
                    s
                };
                if let Some(every) = self.ckpt.every {
                    sink = sink.with_checkpoint_every(every);
                }
                if let Some((n, abort)) = kill {
                    sink = sink.with_kill_after_chunks(n, abort);
                }
                if let Some(flag) = &self.cancel {
                    sink = sink.with_stop_flag(Arc::clone(flag));
                }
                let _replay = resuming.then(|| csb_obs::span_cat("resume.replay", "gen"));
                let t1 = Instant::now();
                let edges = attach_properties_to_sink(&topo, model, &ips, attach_seed, &mut sink)?;
                sink.finish()?;
                (edges, t1.elapsed())
            }
            (Some(dir), n_shards) => {
                let resuming = resume && ShardedCheckpointManifest::path_in(dir).is_file();
                let mut sink = if resuming {
                    CheckpointedShardedGraphSink::resume(path, dir, identity.clone(), compression)?
                } else {
                    let mut s = CheckpointedShardedGraphSink::create(
                        path,
                        dir,
                        identity.clone(),
                        n_shards,
                        compression,
                    )?;
                    if let Some(n) = self.ckpt.chunk_records {
                        s = s.with_chunk_records(n);
                    }
                    s
                };
                if let Some(every) = self.ckpt.every {
                    sink = sink.with_checkpoint_every(every);
                }
                if let Some((n, abort)) = kill {
                    sink = sink.with_kill_after_chunks(n, abort);
                }
                if let Some(flag) = &self.cancel {
                    sink = sink.with_stop_flag(Arc::clone(flag));
                }
                let _replay = resuming.then(|| csb_obs::span_cat("resume.replay", "gen"));
                let t1 = Instant::now();
                let edges = attach_properties_to_sink(&topo, model, &ips, attach_seed, &mut sink)?;
                sink.finish()?;
                (edges, t1.elapsed())
            }
        };
        let timings = self
            .timed
            .then(|| PhaseTimings::new(generator, edges as usize).grow(grow).attach(attach));
        Ok(GenRun { graph: None, edges, timings, metrics })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pgpba::{pgpba, pgpba_timed};
    use crate::pgsk::pgsk;
    use crate::seed::seed_from_trace;
    use csb_net::traffic::sim::{TrafficSim, TrafficSimConfig};
    use csb_store::sink::{save_graph_to, MemoryGraphSink};

    fn small_seed() -> SeedBundle {
        let trace = TrafficSim::new(TrafficSimConfig {
            duration_secs: 5.0,
            sessions_per_sec: 10.0,
            seed: 11,
            ..TrafficSimConfig::default()
        })
        .generate();
        seed_from_trace(&trace)
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("csb-genjob-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&d).expect("mkdir");
        d
    }

    fn assert_graphs_equal(a: &NetflowGraph, b: &NetflowGraph) {
        assert_eq!(a.vertex_data(), b.vertex_data());
        assert_eq!(a.edge_sources(), b.edge_sources());
        assert_eq!(a.edge_targets(), b.edge_targets());
        assert_eq!(a.edge_data(), b.edge_data());
    }

    #[test]
    fn memory_run_matches_the_free_functions() {
        let seed = small_seed();
        let ba_cfg = PgpbaConfig { desired_size: 6000, fraction: 0.5, seed: 42 };
        let run = GenJob::pgpba(&seed, ba_cfg).run().expect("run");
        assert_graphs_equal(run.graph.as_ref().expect("graph"), &pgpba(&seed, &ba_cfg));
        assert!(run.timings.is_none() && run.metrics.is_none());

        let sk_cfg = PgskConfig { seed: 7, ..PgskConfig::new(2000) };
        let run = GenJob::pgsk(&seed, sk_cfg).run().expect("run");
        assert_graphs_equal(run.graph.as_ref().expect("graph"), &pgsk(&seed, &sk_cfg));
    }

    #[test]
    fn timed_run_reports_phase_timings() {
        let seed = small_seed();
        let cfg = PgpbaConfig { desired_size: 6000, fraction: 0.5, seed: 42 };
        let run = GenJob::pgpba(&seed, cfg).timed().run().expect("run");
        let timings = run.timings.expect("timings");
        let (reference, ref_timings) = pgpba_timed(&seed, &cfg);
        assert_eq!(timings.generator, ref_timings.generator);
        assert_eq!(timings.edges, reference.edge_count());
        assert_graphs_equal(run.graph.as_ref().expect("graph"), &reference);
    }

    #[test]
    fn sink_run_streams_the_same_graph() {
        let seed = small_seed();
        let cfg = PgpbaConfig { desired_size: 6000, fraction: 0.5, seed: 42 };
        let mut sink = MemoryGraphSink::new();
        let run = GenJob::pgpba(&seed, cfg).sink(&mut sink).run().expect("run");
        assert!(run.graph.is_none());
        let streamed = sink.into_graph();
        assert_eq!(run.edges as usize, streamed.edge_count());
        assert_graphs_equal(&streamed, &pgpba(&seed, &cfg));
    }

    #[test]
    fn distributed_run_returns_metrics() {
        let seed = small_seed();
        let cfg =
            PgpbaConfig { desired_size: seed.edge_count() as u64 * 2, fraction: 0.4, seed: 7 };
        let run = GenJob::pgpba(&seed, cfg).distributed(DistConfig::default()).run().expect("run");
        assert!(run.graph.is_some());
        assert!(!run.metrics.expect("metrics").is_empty());
    }

    #[test]
    fn store_run_is_byte_identical_to_the_sink_path() {
        let seed = small_seed();
        let cfg = PgpbaConfig { desired_size: 6000, fraction: 0.5, seed: 42 };
        let want = save_graph_to(Vec::new(), &pgpba(&seed, &cfg)).expect("save");
        let dir = temp_dir("store");
        let path = dir.join("g.csbstore");
        let run = GenJob::pgpba(&seed, cfg).store(&path).run().expect("run");
        assert!(run.edges > 0);
        assert_eq!(std::fs::read(&path).expect("read"), want);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpointed_kill_then_retry_resumes_to_identical_bytes() {
        let seed = small_seed();
        let cfg = PgpbaConfig { desired_size: 12_000, fraction: 0.5, seed: 42 };
        let dir = temp_dir("killretry");
        let clean = dir.join("clean.csbstore");
        GenJob::pgpba(&seed, cfg).store(&clean).chunk_records(1024).run().expect("clean run");

        // One in-process job: dies after 3 chunks, restarts itself from the
        // checkpoint, finishes — bytes must match the uninterrupted run.
        let crashy = dir.join("crashy.csbstore");
        let ckpt = dir.join("ckpt");
        let run = GenJob::pgpba(&seed, cfg)
            .store(&crashy)
            .chunk_records(1024)
            .checkpoint(&ckpt)
            .checkpoint_every(1)
            .kill_after_chunks(3, false)
            .retry(RetryPolicy { max_retries: 2, base_delay_ms: 0, max_delay_ms: 0 })
            .run()
            .expect("job must survive the injected crash");
        assert!(run.edges > 0);
        assert_eq!(
            std::fs::read(&crashy).expect("read"),
            std::fs::read(&clean).expect("read"),
            "restarted store file must be byte-identical"
        );
        assert!(!CheckpointManifest::exists(&ckpt), "completed run must clear its manifest");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn kill_without_retry_surfaces_transient_and_explicit_resume_completes() {
        let seed = small_seed();
        let cfg = PgskConfig { seed: 7, ..PgskConfig::new(4000) };
        let dir = temp_dir("tworuns");
        let clean = dir.join("clean.csbstore");
        GenJob::pgsk(&seed, cfg).store(&clean).chunk_records(512).run().expect("clean run");

        let crashy = dir.join("crashy.csbstore");
        let ckpt = dir.join("ckpt");
        let err = GenJob::pgsk(&seed, cfg)
            .store(&crashy)
            .chunk_records(512)
            .checkpoint(&ckpt)
            .checkpoint_every(1)
            .kill_after_chunks(4, false)
            .run()
            .expect_err("the injected kill must surface without a retry budget");
        assert!(err.is_transient(), "got {err}");
        assert!(CheckpointManifest::exists(&ckpt), "manifest must survive the crash");

        // Second process: same job + .resume().
        let run = GenJob::pgsk(&seed, cfg)
            .store(&crashy)
            .chunk_records(512)
            .checkpoint(&ckpt)
            .checkpoint_every(1)
            .resume()
            .run()
            .expect("resume");
        assert!(run.edges > 0);
        assert_eq!(
            std::fs::read(&crashy).expect("read"),
            std::fs::read(&clean).expect("read"),
            "resumed store file must be byte-identical"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_with_a_different_config_is_rejected() {
        let seed = small_seed();
        let cfg = PgpbaConfig { desired_size: 9000, fraction: 0.5, seed: 42 };
        let dir = temp_dir("wrongcfg");
        let store = dir.join("g.csbstore");
        let ckpt = dir.join("ckpt");
        GenJob::pgpba(&seed, cfg)
            .store(&store)
            .chunk_records(512)
            .checkpoint(&ckpt)
            .checkpoint_every(1)
            .kill_after_chunks(3, false)
            .run()
            .expect_err("killed");

        let other = PgpbaConfig { desired_size: 9000, fraction: 0.7, seed: 42 };
        let err = GenJob::pgpba(&seed, other)
            .store(&store)
            .chunk_records(512)
            .checkpoint(&ckpt)
            .resume()
            .run()
            .expect_err("different fraction must not resume");
        assert!(matches!(err, CsbError::Mismatch(_)), "got {err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sharded_v2_store_run_loads_and_scores_identically_to_single_v1() {
        let seed = small_seed();
        let cfg = PgpbaConfig { desired_size: 6000, fraction: 0.5, seed: 42 };
        let dir = temp_dir("sharded");
        let single = dir.join("single.csbstore");
        GenJob::pgpba(&seed, cfg).store(&single).chunk_records(512).run().expect("single run");

        let sharded = dir.join("sharded.csbshards");
        let run = GenJob::pgpba(&seed, cfg)
            .store(&sharded)
            .chunk_records(512)
            .shards(4)
            .compression(Compression::Columnar)
            .run()
            .expect("sharded run");
        assert!(run.edges > 0);

        // Same logical graph through the transparent loader...
        let a = csb_store::load_graph(&single).expect("load single");
        let b = csb_store::load_graph(&sharded).expect("load sharded");
        assert_graphs_equal(&a, &b);

        // ...and bit-identical OOC veracity over either layout.
        let seed_store = dir.join("seed.csbstore");
        csb_store::sink::save_graph(&seed_store, &seed.graph).expect("save seed");
        let score = |synth: &std::path::Path| {
            crate::VeracityJob::new()
                .seed_store(&seed_store)
                .synthetic_store(synth)
                .run()
                .expect("score")
        };
        let v1 = score(&single);
        let v2 = score(&sharded);
        assert_eq!(v1.score("degree").unwrap().to_bits(), v2.score("degree").unwrap().to_bits());
        assert_eq!(
            v1.score("pagerank").unwrap().to_bits(),
            v2.score("pagerank").unwrap().to_bits()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sharded_checkpointed_kill_then_retry_resumes_to_identical_shards() {
        let seed = small_seed();
        let cfg = PgpbaConfig { desired_size: 12_000, fraction: 0.5, seed: 42 };
        let dir = temp_dir("shardkill");
        let clean = dir.join("clean.csbshards");
        GenJob::pgpba(&seed, cfg)
            .store(&clean)
            .chunk_records(1024)
            .shards(4)
            .compression(Compression::Columnar)
            .run()
            .expect("clean sharded run");

        let crashy = dir.join("crashy.csbshards");
        let ckpt = dir.join("ckpt");
        let run = GenJob::pgpba(&seed, cfg)
            .store(&crashy)
            .chunk_records(1024)
            .shards(4)
            .compression(Compression::Columnar)
            .checkpoint(&ckpt)
            .checkpoint_every(1)
            .kill_after_chunks(3, false)
            .retry(RetryPolicy { max_retries: 2, base_delay_ms: 0, max_delay_ms: 0 })
            .run()
            .expect("job must survive the injected crash");
        assert!(run.edges > 0);
        for i in 0..4 {
            let a = std::fs::read(dir.join(format!("clean.csbshards.s{i}"))).expect("clean");
            let b = std::fs::read(dir.join(format!("crashy.csbshards.s{i}"))).expect("crashy");
            assert_eq!(a, b, "shard {i} must resume byte-identically");
        }
        assert!(
            !ShardedCheckpointManifest::path_in(&ckpt).is_file(),
            "completed run must clear its manifest"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpointed_single_file_rejects_columnar_compression() {
        let seed = small_seed();
        let cfg = PgpbaConfig { desired_size: 1000, fraction: 0.5, seed: 1 };
        let dir = temp_dir("v2single");
        let err = GenJob::pgpba(&seed, cfg)
            .store(dir.join("g.csbstore"))
            .checkpoint(dir.join("ckpt"))
            .compression(Compression::Columnar)
            .run()
            .expect_err("unsupported combination");
        assert!(matches!(err, CsbError::Config(_)), "got {err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn config_hash_separates_configs_but_not_seeds() {
        let a = GenConfig::Pgpba(PgpbaConfig { desired_size: 100, fraction: 0.1, seed: 1 });
        let b = GenConfig::Pgpba(PgpbaConfig { desired_size: 100, fraction: 0.1, seed: 2 });
        let c = GenConfig::Pgpba(PgpbaConfig { desired_size: 100, fraction: 0.2, seed: 1 });
        let d = GenConfig::Pgsk(PgskConfig::new(100));
        assert_eq!(a.config_hash(), b.config_hash(), "seed lives in the identity, not the hash");
        assert_ne!(a.config_hash(), c.config_hash());
        assert_ne!(a.config_hash(), d.config_hash());
    }

    #[test]
    fn invalid_combinations_are_config_errors() {
        let seed = small_seed();
        let cfg = PgpbaConfig { desired_size: 1000, fraction: 0.5, seed: 1 };
        let err = GenJob::pgpba(&seed, cfg).checkpoint("/tmp/nope").run().expect_err("no store");
        assert!(matches!(err, CsbError::Config(_)), "got {err}");
        let err = GenJob::pgpba(&seed, cfg)
            .store("/tmp/nope.csbstore")
            .kill_after_chunks(1, false)
            .run()
            .expect_err("kill hook needs checkpointing");
        assert!(matches!(err, CsbError::Config(_)), "got {err}");
    }
}
