//! Raw topology representation shared by the generators.
//!
//! Both generators first build *structure* (vertices + directed multi-edges)
//! and only then attach NetFlow attributes (paper Fig. 2 lines 15-20, Fig. 3
//! lines 13-18). [`Topology`] is that intermediate: flat `src`/`dst` arrays,
//! cheap to grow, sample from, and parallelize over.

use crate::analysis::PropertyModel;
use csb_graph::graph::VertexId;
use csb_graph::NetflowGraph;
use csb_stats::rng::rng_for;
use rayon::prelude::*;

/// A bare directed multigraph under construction.
#[derive(Debug, Clone, Default)]
pub struct Topology {
    /// Number of vertices (ids are `0..num_vertices`).
    pub num_vertices: u32,
    /// Edge sources, parallel to `dst`.
    pub src: Vec<u32>,
    /// Edge targets.
    pub dst: Vec<u32>,
}

impl Topology {
    /// Extracts the topology of an existing property-graph.
    pub fn of_graph(g: &NetflowGraph) -> Self {
        Topology {
            num_vertices: g.vertex_count() as u32,
            src: g.edge_sources().iter().map(|v| v.0).collect(),
            dst: g.edge_targets().iter().map(|v| v.0).collect(),
        }
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.src.len()
    }

    /// Appends one edge.
    ///
    /// # Panics
    /// Panics (debug) if an endpoint is out of range.
    pub fn push_edge(&mut self, src: u32, dst: u32) {
        debug_assert!(src < self.num_vertices && dst < self.num_vertices);
        self.src.push(src);
        self.dst.push(dst);
    }
}

/// Synthetic vertex addresses: seed vertices keep their IPs; vertices created
/// by the generators get addresses in a reserved synthetic block so they are
/// recognizable in exports.
pub const SYNTHETIC_IP_BASE: u32 = 0xE000_0000;

/// Splits preallocated `src`/`dst` columns into disjoint per-plan windows:
/// window `i` starts at the exclusive prefix sum of `counts[..i]` and spans
/// `counts[i]` slots in both columns. The windows borrow disjoint regions,
/// so callers can fill them with `into_par_iter` — this is the write side of
/// the count → prefix-sum → parallel-write scheme both generators use.
///
/// # Panics
/// Panics (debug) if `counts` does not sum to the column length.
pub(crate) fn edge_windows<'a>(
    counts: &[usize],
    mut src: &'a mut [u32],
    mut dst: &'a mut [u32],
) -> Vec<(&'a mut [u32], &'a mut [u32])> {
    debug_assert_eq!(counts.iter().sum::<usize>(), src.len(), "counts must cover the columns");
    debug_assert_eq!(src.len(), dst.len());
    let mut windows = Vec::with_capacity(counts.len());
    for &c in counts {
        let (s, rest_s) = src.split_at_mut(c);
        let (d, rest_d) = dst.split_at_mut(c);
        src = rest_s;
        dst = rest_d;
        windows.push((s, d));
    }
    windows
}

/// Number of edges per deterministic RNG stream in [`attach_properties`]
/// (shared by `stream::attach_properties_to_sink`, which must replay the
/// exact same RNG stream layout to produce identical edges).
pub(crate) const ATTACH_CHUNK: usize = 8192;

/// Materializes a [`NetflowGraph`] from a topology by sampling every edge's
/// attributes from the seed's [`PropertyModel`] — the `O(|E| x |properties|)`
/// final phase both generators share.
///
/// `seed_vertex_ips` supplies addresses for the first vertices (the ones
/// inherited from the seed); the rest get synthetic addresses. Surplus seed
/// IPs (callers passing more addresses than `topo.num_vertices`, e.g. a
/// compacted Kronecker topology smaller than its seed) are ignored. Property
/// sampling is parallelized in deterministic per-chunk RNG streams and the
/// graph is assembled with the bulk [`NetflowGraph::from_parts`] constructor
/// — no per-edge `add_edge` calls, no index vector.
pub fn attach_properties(
    topo: &Topology,
    model: &PropertyModel,
    seed_vertex_ips: &[u32],
    seed: u64,
) -> NetflowGraph {
    let _attach = csb_obs::span_cat("attach", "gen");
    let n = topo.num_vertices as usize;
    let edge_count = topo.edge_count();
    let seed_n = seed_vertex_ips.len().min(n);
    let mut ips = seed_vertex_ips[..seed_n].to_vec();
    ips.extend((0..(n - seed_n) as u32).map(|i| SYNTHETIC_IP_BASE + i));
    // One deterministic RNG stream per fixed-size chunk of edges: the stream
    // layout (and thus the output) is independent of the worker count. Each
    // chunk opens its own span on whichever worker thread runs it, so the
    // trace shows the materialization fan-out per worker. Rayon pool threads
    // do not inherit the caller's recorder scope, so it is captured here and
    // re-installed per chunk — a scoped job's chunk spans land on its own
    // recorder, not the global one.
    let recorder = csb_obs::recorder::current();
    let props: Vec<csb_graph::EdgeProperties> = (0..edge_count.div_ceil(ATTACH_CHUNK))
        .into_par_iter()
        .flat_map_iter(|chunk_idx| {
            let _scope = recorder.clone().install();
            let _chunk = csb_obs::span_cat("attach.chunk", "gen");
            let mut rng = rng_for(seed, 0x9_0000_0000 + chunk_idx as u64);
            let len = ATTACH_CHUNK.min(edge_count - chunk_idx * ATTACH_CHUNK);
            (0..len).map(move |_| model.sample(&mut rng)).collect::<Vec<_>>()
        })
        .collect();
    let src: Vec<VertexId> = topo.src.par_iter().map(|&s| VertexId(s)).collect();
    let dst: Vec<VertexId> = topo.dst.par_iter().map(|&d| VertexId(d)).collect();
    csb_obs::counter_add("attach.edges", edge_count as u64);
    NetflowGraph::from_parts(ips, src, dst, props)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::PropertyModel;
    use csb_graph::graph_from_flows;
    use csb_net::flow::{FlowRecord, Protocol, TcpConnState};

    fn tiny_model() -> PropertyModel {
        let f = FlowRecord {
            src_ip: 1,
            dst_ip: 2,
            protocol: Protocol::Tcp,
            src_port: 1000,
            dst_port: 80,
            duration_ms: 3,
            out_bytes: 10,
            in_bytes: 20,
            out_pkts: 1,
            in_pkts: 1,
            state: TcpConnState::Sf,
            syn_count: 1,
            ack_count: 1,
            first_ts_micros: 0,
        };
        PropertyModel::from_graph(&graph_from_flows(&[f]))
    }

    #[test]
    fn of_graph_round_trips() {
        let f = |src, dst| FlowRecord {
            src_ip: src,
            dst_ip: dst,
            protocol: Protocol::Udp,
            src_port: 1,
            dst_port: 2,
            duration_ms: 0,
            out_bytes: 0,
            in_bytes: 0,
            out_pkts: 1,
            in_pkts: 0,
            state: TcpConnState::Oth,
            syn_count: 0,
            ack_count: 0,
            first_ts_micros: 0,
        };
        let g = graph_from_flows(&[f(1, 2), f(2, 3), f(1, 3)]);
        let t = Topology::of_graph(&g);
        assert_eq!(t.num_vertices, 3);
        assert_eq!(t.edge_count(), 3);
    }

    #[test]
    fn attach_properties_fills_every_edge() {
        let mut t = Topology { num_vertices: 4, src: vec![], dst: vec![] };
        for (s, d) in [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)] {
            t.push_edge(s, d);
        }
        let g = attach_properties(&t, &tiny_model(), &[100, 200], 7);
        assert_eq!(g.vertex_count(), 4);
        assert_eq!(g.edge_count(), 5);
        // Seed vertices keep their IPs; the rest are synthetic.
        assert_eq!(*g.vertex(VertexId(0)), 100);
        assert_eq!(*g.vertex(VertexId(1)), 200);
        assert_eq!(*g.vertex(VertexId(2)), SYNTHETIC_IP_BASE);
        assert_eq!(*g.vertex(VertexId(3)), SYNTHETIC_IP_BASE + 1);
        // The degenerate model makes every edge identical.
        for (_, _, _, p) in g.edges() {
            assert_eq!(p.dst_port, 80);
            assert_eq!(p.in_bytes, 20);
        }
    }

    #[test]
    fn surplus_seed_ips_are_ignored() {
        // Regression: a compacted topology can have fewer vertices than the
        // caller has seed IPs (e.g. distributed PGSK); the surplus must be
        // dropped instead of wrapping the synthetic-address offset around.
        let mut t = Topology { num_vertices: 2, src: vec![], dst: vec![] };
        t.push_edge(0, 1);
        let g = attach_properties(&t, &tiny_model(), &[10, 20, 30, 40, 50], 7);
        assert_eq!(g.vertex_count(), 2);
        assert_eq!(*g.vertex(VertexId(0)), 10);
        assert_eq!(*g.vertex(VertexId(1)), 20);
    }

    #[test]
    fn edge_windows_partition_the_columns() {
        let counts = [2usize, 0, 3, 1];
        let mut src = [0u32; 6];
        let mut dst = [0u32; 6];
        let windows = edge_windows(&counts, &mut src, &mut dst);
        assert_eq!(windows.len(), 4);
        for (i, (ws, wd)) in windows.into_iter().enumerate() {
            assert_eq!(ws.len(), counts[i]);
            assert_eq!(wd.len(), counts[i]);
            ws.fill(i as u32);
            wd.fill(10 + i as u32);
        }
        assert_eq!(src, [0, 0, 2, 2, 2, 3]);
        assert_eq!(dst, [10, 10, 12, 12, 12, 13]);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut t = Topology { num_vertices: 2, src: vec![], dst: vec![] };
        for _ in 0..100 {
            t.push_edge(0, 1);
        }
        let m = tiny_model();
        let a = attach_properties(&t, &m, &[], 3);
        let b = attach_properties(&t, &m, &[], 3);
        for (ea, eb) in a.edges().zip(b.edges()) {
            assert_eq!(ea.3, eb.3);
        }
    }
}
