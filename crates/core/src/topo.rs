//! Raw topology representation shared by the generators.
//!
//! Both generators first build *structure* (vertices + directed multi-edges)
//! and only then attach NetFlow attributes (paper Fig. 2 lines 15-20, Fig. 3
//! lines 13-18). [`Topology`] is that intermediate: flat `src`/`dst` arrays,
//! cheap to grow, sample from, and parallelize over.

use crate::analysis::PropertyModel;
use csb_graph::graph::VertexId;
use csb_graph::NetflowGraph;
use csb_stats::rng::rng_for;
use rayon::prelude::*;

/// A bare directed multigraph under construction.
#[derive(Debug, Clone, Default)]
pub struct Topology {
    /// Number of vertices (ids are `0..num_vertices`).
    pub num_vertices: u32,
    /// Edge sources, parallel to `dst`.
    pub src: Vec<u32>,
    /// Edge targets.
    pub dst: Vec<u32>,
}

impl Topology {
    /// Extracts the topology of an existing property-graph.
    pub fn of_graph(g: &NetflowGraph) -> Self {
        Topology {
            num_vertices: g.vertex_count() as u32,
            src: g.edge_sources().iter().map(|v| v.0).collect(),
            dst: g.edge_targets().iter().map(|v| v.0).collect(),
        }
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.src.len()
    }

    /// Appends one edge.
    ///
    /// # Panics
    /// Panics (debug) if an endpoint is out of range.
    pub fn push_edge(&mut self, src: u32, dst: u32) {
        debug_assert!(src < self.num_vertices && dst < self.num_vertices);
        self.src.push(src);
        self.dst.push(dst);
    }
}

/// Synthetic vertex addresses: seed vertices keep their IPs; vertices created
/// by the generators get addresses in a reserved synthetic block so they are
/// recognizable in exports.
pub const SYNTHETIC_IP_BASE: u32 = 0xE000_0000;

/// Materializes a [`NetflowGraph`] from a topology by sampling every edge's
/// attributes from the seed's [`PropertyModel`] — the `O(|E| x |properties|)`
/// final phase both generators share.
///
/// `seed_vertex_ips` supplies addresses for the first vertices (the ones
/// inherited from the seed); the rest get synthetic addresses. Property
/// sampling is parallelized in deterministic per-chunk RNG streams.
pub fn attach_properties(
    topo: &Topology,
    model: &PropertyModel,
    seed_vertex_ips: &[u32],
    seed: u64,
) -> NetflowGraph {
    const CHUNK: usize = 8192;
    let n = topo.num_vertices as usize;
    let mut g = NetflowGraph::with_capacity(n, topo.edge_count());
    for v in 0..n {
        let ip = seed_vertex_ips
            .get(v)
            .copied()
            .unwrap_or_else(|| SYNTHETIC_IP_BASE + (v as u32 - seed_vertex_ips.len() as u32));
        g.add_vertex(ip);
    }
    // Sample all properties in parallel, then append sequentially.
    let props: Vec<csb_graph::EdgeProperties> = (0..topo.edge_count())
        .collect::<Vec<_>>()
        .par_chunks(CHUNK)
        .enumerate()
        .flat_map_iter(|(chunk_idx, chunk)| {
            let mut rng = rng_for(seed, 0x9_0000_0000 + chunk_idx as u64);
            chunk.iter().map(move |_| model.sample(&mut rng)).collect::<Vec<_>>()
        })
        .collect();
    for ((&s, &d), p) in topo.src.iter().zip(topo.dst.iter()).zip(props) {
        g.add_edge(VertexId(s), VertexId(d), p);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::PropertyModel;
    use csb_graph::graph_from_flows;
    use csb_net::flow::{FlowRecord, Protocol, TcpConnState};

    fn tiny_model() -> PropertyModel {
        let f = FlowRecord {
            src_ip: 1,
            dst_ip: 2,
            protocol: Protocol::Tcp,
            src_port: 1000,
            dst_port: 80,
            duration_ms: 3,
            out_bytes: 10,
            in_bytes: 20,
            out_pkts: 1,
            in_pkts: 1,
            state: TcpConnState::Sf,
            syn_count: 1,
            ack_count: 1,
            first_ts_micros: 0,
        };
        PropertyModel::from_graph(&graph_from_flows(&[f]))
    }

    #[test]
    fn of_graph_round_trips() {
        let f = |src, dst| FlowRecord {
            src_ip: src,
            dst_ip: dst,
            protocol: Protocol::Udp,
            src_port: 1,
            dst_port: 2,
            duration_ms: 0,
            out_bytes: 0,
            in_bytes: 0,
            out_pkts: 1,
            in_pkts: 0,
            state: TcpConnState::Oth,
            syn_count: 0,
            ack_count: 0,
            first_ts_micros: 0,
        };
        let g = graph_from_flows(&[f(1, 2), f(2, 3), f(1, 3)]);
        let t = Topology::of_graph(&g);
        assert_eq!(t.num_vertices, 3);
        assert_eq!(t.edge_count(), 3);
    }

    #[test]
    fn attach_properties_fills_every_edge() {
        let mut t = Topology { num_vertices: 4, src: vec![], dst: vec![] };
        for (s, d) in [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)] {
            t.push_edge(s, d);
        }
        let g = attach_properties(&t, &tiny_model(), &[100, 200], 7);
        assert_eq!(g.vertex_count(), 4);
        assert_eq!(g.edge_count(), 5);
        // Seed vertices keep their IPs; the rest are synthetic.
        assert_eq!(*g.vertex(VertexId(0)), 100);
        assert_eq!(*g.vertex(VertexId(1)), 200);
        assert_eq!(*g.vertex(VertexId(2)), SYNTHETIC_IP_BASE);
        assert_eq!(*g.vertex(VertexId(3)), SYNTHETIC_IP_BASE + 1);
        // The degenerate model makes every edge identical.
        for (_, _, _, p) in g.edges() {
            assert_eq!(p.dst_port, 80);
            assert_eq!(p.in_bytes, 20);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut t = Topology { num_vertices: 2, src: vec![], dst: vec![] };
        for _ in 0..100 {
            t.push_edge(0, 1);
        }
        let m = tiny_model();
        let a = attach_properties(&t, &m, &[], 3);
        let b = attach_properties(&t, &m, &[], 3);
        for (ea, eb) in a.edges().zip(b.edges()) {
            assert_eq!(ea.3, eb.3);
        }
    }
}
