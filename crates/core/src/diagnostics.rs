//! Structural diagnostics beyond degree/PageRank — the extra properties the
//! paper names as candidates for richer generation methods (betweenness
//! centrality, connected components) plus the clustering statistics the
//! BTER literature tracks. Used by the `structural_report` harness and the
//! extended-veracity comparison.

use csb_graph::algo::{
    approximate_betweenness, average_clustering, core_numbers, degree_assortativity, pagerank,
    strongly_connected_components, triangle_count, weakly_connected_components, PageRankConfig,
};
use csb_graph::NetflowGraph;
use csb_stats::PowerLaw;
use std::time::Duration;

/// Per-phase wall-clock timings of one generator run, for the performance
/// trajectory (`BENCH_*.json`) and the timed harness binaries.
///
/// Phases mirror the paper's pipeline split: **grow** (topology growth /
/// Kronecker expansion), **inflate** (PGSK multi-edge re-inflation; zero for
/// PGPBA, whose growth materializes edges directly), and **attach**
/// (attribute sampling + graph assembly).
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseTimings {
    /// Generator name (`"pgpba"` / `"pgsk"`).
    pub generator: &'static str,
    /// Edges in the finished graph.
    pub edges: usize,
    /// Topology growth (PGPBA iterations / PGSK simplify+fit+expand).
    pub grow: Duration,
    /// PGSK multi-edge re-inflation (zero for PGPBA).
    pub inflate: Duration,
    /// Attribute sampling and bulk graph assembly.
    pub attach: Duration,
}

impl PhaseTimings {
    /// Starts a timing record with all phases at zero.
    pub fn new(generator: &'static str, edges: usize) -> Self {
        PhaseTimings {
            generator,
            edges,
            grow: Duration::ZERO,
            inflate: Duration::ZERO,
            attach: Duration::ZERO,
        }
    }

    /// Sets the grow-phase duration.
    #[must_use]
    pub fn grow(mut self, d: Duration) -> Self {
        self.grow = d;
        self
    }

    /// Sets the inflate-phase duration.
    #[must_use]
    pub fn inflate(mut self, d: Duration) -> Self {
        self.inflate = d;
        self
    }

    /// Sets the attach-phase duration.
    #[must_use]
    pub fn attach(mut self, d: Duration) -> Self {
        self.attach = d;
        self
    }

    /// Total wall-clock time over all phases.
    pub fn total(&self) -> Duration {
        self.grow + self.inflate + self.attach
    }

    /// Throughput over the whole run (0 when the total rounds to zero).
    pub fn edges_per_sec(&self) -> f64 {
        let secs = self.total().as_secs_f64();
        if secs > 0.0 {
            self.edges as f64 / secs
        } else {
            0.0
        }
    }

    /// Serializes as a JSON object through the shared `csb-obs` writer
    /// (field names and numeric formatting are part of the
    /// `BENCH_*.json` schema — see `csb-bench`).
    pub fn to_json(&self) -> String {
        let mut o = csb_obs::json::JsonObject::new();
        o.str("generator", self.generator)
            .u64("edges", self.edges as u64)
            .f64("grow_secs", self.grow.as_secs_f64(), 6)
            .f64("inflate_secs", self.inflate.as_secs_f64(), 6)
            .f64("attach_secs", self.attach.as_secs_f64(), 6)
            .f64("total_secs", self.total().as_secs_f64(), 6)
            .f64("edges_per_sec", self.edges_per_sec(), 1);
        o.finish()
    }
}

/// A structural fingerprint of one graph.
#[derive(Debug, Clone, PartialEq)]
pub struct StructuralReport {
    /// Vertex count.
    pub vertices: usize,
    /// Edge count (multi-edges counted).
    pub edges: usize,
    /// Mean total degree.
    pub mean_degree: f64,
    /// Maximum total degree.
    pub max_degree: u64,
    /// MLE power-law exponent of the degree tail (xmin = 6), if fittable.
    pub powerlaw_alpha: Option<f64>,
    /// Average local clustering coefficient.
    pub clustering: f64,
    /// Undirected triangle count.
    pub triangles: u64,
    /// Weakly connected component count.
    pub wcc_count: usize,
    /// Fraction of vertices in the largest component.
    pub largest_wcc_fraction: f64,
    /// Largest PageRank score (hub concentration).
    pub pagerank_top_share: f64,
    /// Mean betweenness over a vertex sample.
    pub mean_betweenness: f64,
    /// Strongly connected component count.
    pub scc_count: usize,
    /// Graph degeneracy (maximum k-core).
    pub degeneracy: u32,
    /// Newman degree assortativity.
    pub assortativity: f64,
}

/// Number of Brandes sources sampled for the betweenness estimate.
const BETWEENNESS_SAMPLES: usize = 32;

impl StructuralReport {
    /// Computes the full report.
    ///
    /// # Panics
    /// Panics on an empty graph.
    pub fn of(g: &NetflowGraph) -> Self {
        assert!(g.vertex_count() > 0, "report of empty graph");
        let degrees: Vec<u64> =
            g.in_degrees().iter().zip(g.out_degrees().iter()).map(|(a, b)| a + b).collect();
        let mean_degree = degrees.iter().sum::<u64>() as f64 / degrees.len() as f64;
        let max_degree = *degrees.iter().max().expect("non-empty");
        let powerlaw_alpha = PowerLaw::fit(degrees.iter().copied(), 6).map(|p| p.alpha);
        let wcc = weakly_connected_components(g);
        let pr = pagerank(g, &PageRankConfig::default());
        let pagerank_top_share = pr.iter().copied().fold(0.0f64, f64::max);
        let bc = approximate_betweenness(g, BETWEENNESS_SAMPLES.min(g.vertex_count()), 0x8C);
        let mean_betweenness = bc.iter().sum::<f64>() / bc.len() as f64;
        let scc = strongly_connected_components(g);
        let degeneracy = core_numbers(g).into_iter().max().unwrap_or(0);
        StructuralReport {
            vertices: g.vertex_count(),
            edges: g.edge_count(),
            mean_degree,
            max_degree,
            powerlaw_alpha,
            clustering: average_clustering(g),
            triangles: triangle_count(g),
            wcc_count: wcc.count,
            largest_wcc_fraction: wcc.largest as f64 / g.vertex_count() as f64,
            pagerank_top_share,
            mean_betweenness,
            scc_count: scc.count,
            degeneracy,
            assortativity: degree_assortativity(g),
        }
    }
}

/// Relative gaps between two structural reports (0 = identical on that
/// dimension). `rel(a, b) = |a - b| / max(|a|, |b|, eps)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StructuralGaps {
    /// Mean-degree gap.
    pub mean_degree: f64,
    /// Power-law exponent gap (1.0 when only one side is fittable).
    pub powerlaw_alpha: f64,
    /// Clustering-coefficient gap.
    pub clustering: f64,
    /// Largest-WCC-fraction gap.
    pub largest_wcc_fraction: f64,
    /// PageRank hub-concentration gap.
    pub pagerank_top_share: f64,
}

fn rel(a: f64, b: f64) -> f64 {
    let denom = a.abs().max(b.abs()).max(1e-12);
    (a - b).abs() / denom
}

/// Compares two reports dimension by dimension.
pub fn structural_gaps(a: &StructuralReport, b: &StructuralReport) -> StructuralGaps {
    StructuralGaps {
        mean_degree: rel(a.mean_degree, b.mean_degree),
        powerlaw_alpha: match (a.powerlaw_alpha, b.powerlaw_alpha) {
            (Some(x), Some(y)) => rel(x, y),
            (None, None) => 0.0,
            _ => 1.0,
        },
        clustering: rel(a.clustering, b.clustering),
        largest_wcc_fraction: rel(a.largest_wcc_fraction, b.largest_wcc_fraction),
        pagerank_top_share: rel(a.pagerank_top_share, b.pagerank_top_share),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PgpbaConfig;
    use crate::seed::{seed_from_trace, SeedBundle};
    use csb_net::traffic::sim::{TrafficSim, TrafficSimConfig};

    fn small_seed() -> SeedBundle {
        let trace = TrafficSim::new(TrafficSimConfig {
            duration_secs: 12.0,
            sessions_per_sec: 15.0,
            seed: 13,
            ..TrafficSimConfig::default()
        })
        .generate();
        seed_from_trace(&trace)
    }

    #[test]
    fn report_fields_are_sane() {
        let seed = small_seed();
        let r = StructuralReport::of(&seed.graph);
        assert_eq!(r.vertices, seed.graph.vertex_count());
        assert_eq!(r.edges, seed.graph.edge_count());
        assert!(r.mean_degree > 0.0);
        assert!(r.max_degree as f64 >= r.mean_degree);
        assert!((0.0..=1.0).contains(&r.clustering));
        assert!((0.0..=1.0).contains(&r.largest_wcc_fraction));
        assert!(r.pagerank_top_share > 0.0 && r.pagerank_top_share < 1.0);
        assert!(r.wcc_count >= 1);
        assert!(r.mean_betweenness >= 0.0);
        assert!(r.scc_count >= r.wcc_count);
        assert!(r.degeneracy >= 1);
        assert!((-1.0..=1.0).contains(&r.assortativity));
    }

    #[test]
    fn self_gaps_are_zero() {
        let seed = small_seed();
        let r = StructuralReport::of(&seed.graph);
        let g = structural_gaps(&r, &r);
        assert_eq!(g.mean_degree, 0.0);
        assert_eq!(g.clustering, 0.0);
        assert_eq!(g.pagerank_top_share, 0.0);
    }

    #[test]
    fn phase_timings_totals_and_json() {
        let t = PhaseTimings::new("pgsk", 1_000_000)
            .grow(std::time::Duration::from_millis(250))
            .inflate(std::time::Duration::from_millis(150))
            .attach(std::time::Duration::from_millis(100));
        assert_eq!(t.total(), std::time::Duration::from_millis(500));
        assert!((t.edges_per_sec() - 2_000_000.0).abs() < 1.0);
        let json = t.to_json();
        csb_obs::json::validate_json(&json).expect("PhaseTimings::to_json must be valid JSON");
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"generator\":\"pgsk\""));
        assert!(json.contains("\"edges\":1000000"));
        assert!(json.contains("\"total_secs\":0.500000"));
    }

    #[test]
    fn timed_wrappers_match_untimed_output() {
        let seed = small_seed();
        let cfg = PgpbaConfig { desired_size: 2_000, fraction: 0.4, seed: 11 };
        let (g, t) = crate::pgpba::pgpba_timed(&seed, &cfg);
        let plain = crate::pgpba(&seed, &cfg);
        assert_eq!(g.edge_count(), plain.edge_count());
        assert_eq!(t.edges, g.edge_count());
        assert_eq!(t.inflate, std::time::Duration::ZERO);

        let pcfg = crate::PgskConfig {
            desired_size: 1_500,
            seed: 11,
            kronfit_iterations: 8,
            kronfit_permutation_samples: 200,
        };
        let (g, t) = crate::pgsk::pgsk_timed(&seed, &pcfg);
        let plain = crate::pgsk(&seed, &pcfg);
        assert_eq!(g.edge_count(), plain.edge_count());
        assert_eq!(t.edges, g.edge_count());
    }

    #[test]
    fn pgpba_keeps_structural_gaps_moderate() {
        let seed = small_seed();
        let synth = crate::pgpba(
            &seed,
            &PgpbaConfig { desired_size: seed.edge_count() as u64 * 8, fraction: 0.2, seed: 3 },
        );
        let gaps =
            structural_gaps(&StructuralReport::of(&seed.graph), &StructuralReport::of(&synth));
        // The generator explicitly targets degrees; these coarse structural
        // gaps should stay bounded even for untargeted statistics.
        assert!(gaps.mean_degree < 0.8, "mean degree gap {}", gaps.mean_degree);
        assert!(gaps.largest_wcc_fraction < 0.5, "wcc gap {}", gaps.largest_wcc_fraction);
    }
}
