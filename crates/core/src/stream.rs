//! Streaming generation: run the generators into an [`EdgeSink`] instead of
//! materializing a [`NetflowGraph`](csb_graph::NetflowGraph) in memory.
//!
//! The attribute-attachment phase replays *exactly* the deterministic
//! per-chunk RNG streams of [`attach_properties`](crate::topo::
//! attach_properties) — same [`ATTACH_CHUNK`] granularity, same stream
//! derivation — so a store-backed run produces the identical edge set to the
//! in-memory path, just emitted incrementally. That is what lets `csb export
//! --format store` write a multi-gigabyte graph while holding only the
//! topology plus one chunk of properties.

use crate::analysis::PropertyModel;
use crate::config::{PgpbaConfig, PgskConfig};
use crate::seed::SeedBundle;
use crate::topo::{Topology, ATTACH_CHUNK, SYNTHETIC_IP_BASE};
use csb_graph::EdgeProperties;
use csb_stats::rng::rng_for;
use csb_store::{EdgeSink, StoreError};

/// Streams the attribute-attachment phase into `sink`: vertices first, then
/// edges in [`ATTACH_CHUNK`]-sized batches with per-chunk RNG streams
/// identical to the parallel in-memory path. Returns the edge count.
pub fn attach_properties_to_sink<S: EdgeSink + ?Sized>(
    topo: &Topology,
    model: &PropertyModel,
    seed_vertex_ips: &[u32],
    seed: u64,
    sink: &mut S,
) -> Result<u64, StoreError> {
    let _attach = csb_obs::span_cat("attach", "gen");
    let n = topo.num_vertices as usize;
    let edge_count = topo.edge_count();
    let seed_n = seed_vertex_ips.len().min(n);
    let mut ips = seed_vertex_ips[..seed_n].to_vec();
    ips.extend((0..(n - seed_n) as u32).map(|i| SYNTHETIC_IP_BASE + i));
    sink.push_vertices(&ips)?;
    // Resume fast path: whole ATTACH_CHUNKs already durable in the sink need
    // no regeneration — tell the sink, then replay only from the chunk
    // containing the first non-durable edge (its durable prefix is dropped
    // by the sink's skip counter).
    let first_chunk = sink.resume_skip_edges() as usize / ATTACH_CHUNK;
    if first_chunk > 0 {
        sink.note_skipped_edges((first_chunk * ATTACH_CHUNK) as u64);
        csb_obs::counter_add("resume.chunks_skipped", first_chunk as u64);
        csb_obs::status::note_resume_skip(first_chunk as u64);
    }
    for chunk_idx in first_chunk..edge_count.div_ceil(ATTACH_CHUNK) {
        let _chunk = csb_obs::span_cat("attach.chunk", "gen");
        let mut rng = rng_for(seed, 0x9_0000_0000 + chunk_idx as u64);
        let start = chunk_idx * ATTACH_CHUNK;
        let len = ATTACH_CHUNK.min(edge_count - start);
        let props: Vec<EdgeProperties> = (0..len).map(|_| model.sample(&mut rng)).collect();
        sink.push_edges(&topo.src[start..start + len], &topo.dst[start..start + len], &props)?;
    }
    csb_obs::counter_add("attach.edges", edge_count as u64);
    Ok(edge_count as u64)
}

/// [`pgpba`](crate::pgpba::pgpba), streamed: grows the topology in memory
/// (it is a fraction of the final property volume), then streams attributed
/// edges into `sink`. Returns the edge count.
///
/// Compatibility wrapper: prefer
/// [`GenJob::pgpba(..).sink(..)`](crate::GenJob::sink).
pub fn pgpba_to_sink<S: EdgeSink>(
    seed: &SeedBundle,
    cfg: &PgpbaConfig,
    sink: &mut S,
) -> Result<u64, StoreError> {
    crate::GenJob::pgpba(seed, *cfg).sink(sink).run().map(|run| run.edges)
}

/// [`pgsk`](crate::pgsk::pgsk), streamed. Returns the edge count.
///
/// Compatibility wrapper: prefer
/// [`GenJob::pgsk(..).sink(..)`](crate::GenJob::sink).
pub fn pgsk_to_sink<S: EdgeSink>(
    seed: &SeedBundle,
    cfg: &PgskConfig,
    sink: &mut S,
) -> Result<u64, StoreError> {
    crate::GenJob::pgsk(seed, *cfg).sink(sink).run().map(|run| run.edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pgpba::pgpba;
    use crate::pgsk::pgsk;
    use crate::seed::seed_from_trace;
    use csb_net::traffic::sim::{TrafficSim, TrafficSimConfig};
    use csb_store::sink::{save_graph_to, GraphStoreSink, MemoryGraphSink};

    fn small_seed() -> SeedBundle {
        let trace = TrafficSim::new(TrafficSimConfig {
            duration_secs: 5.0,
            sessions_per_sec: 10.0,
            seed: 11,
            ..TrafficSimConfig::default()
        })
        .generate();
        seed_from_trace(&trace)
    }

    fn assert_graphs_equal(a: &csb_graph::NetflowGraph, b: &csb_graph::NetflowGraph) {
        assert_eq!(a.vertex_data(), b.vertex_data());
        assert_eq!(a.edge_sources(), b.edge_sources());
        assert_eq!(a.edge_targets(), b.edge_targets());
        assert_eq!(a.edge_data(), b.edge_data());
    }

    #[test]
    fn pgpba_to_sink_matches_in_memory_pgpba() {
        let seed = small_seed();
        let cfg = PgpbaConfig { desired_size: 12_000, fraction: 0.5, seed: 42 };
        let g = pgpba(&seed, &cfg);
        assert!(g.edge_count() > ATTACH_CHUNK, "test must span multiple RNG chunks");
        let mut sink = MemoryGraphSink::new();
        let n = pgpba_to_sink(&seed, &cfg, &mut sink).expect("stream");
        let h = sink.into_graph();
        assert_eq!(n as usize, g.edge_count());
        assert_graphs_equal(&g, &h);
    }

    #[test]
    fn pgsk_to_sink_matches_in_memory_pgsk() {
        let seed = small_seed();
        let cfg = PgskConfig { seed: 7, ..PgskConfig::new(2000) };
        let g = pgsk(&seed, &cfg);
        let mut sink = MemoryGraphSink::new();
        let n = pgsk_to_sink(&seed, &cfg, &mut sink).expect("stream");
        let h = sink.into_graph();
        assert_eq!(n as usize, g.edge_count());
        assert_graphs_equal(&g, &h);
    }

    #[test]
    fn store_sink_run_is_byte_identical_to_saving_the_in_memory_graph() {
        // The acceptance bar: a fixed-seed PGPBA run streamed straight into
        // a store sink produces the byte-identical file to generating in
        // memory and saving afterwards.
        let seed = small_seed();
        let cfg =
            PgpbaConfig { desired_size: seed.edge_count() as u64 * 4, fraction: 0.5, seed: 42 };
        let via_memory = save_graph_to(Vec::new(), &pgpba(&seed, &cfg)).expect("save");
        let mut sink = GraphStoreSink::new(Vec::new()).expect("sink");
        pgpba_to_sink(&seed, &cfg, &mut sink).expect("stream");
        let via_stream = sink.finish().expect("finish");
        assert_eq!(via_memory, via_stream, "store bytes must not depend on the generation path");
    }
}
