//! Property-Graph Parallel Barabási-Albert (PGPBA), paper Fig. 2.
//!
//! The preferential attachment is the two-stage edge-list form of Alam et
//! al. [50]: sample an edge uniformly from the edge list, then pick one of
//! its endpoints uniformly. A vertex's probability of being picked is
//! proportional to its degree (it appears in the edge list once per incident
//! edge), so attachment is preferential, yet each pick is O(1) — the
//! property that makes the algorithm parallel and linear.
//!
//! Per iteration, `fraction * |E|` new vertices are created (the paper's
//! fixed-granularity variant). Each new vertex draws an out- and in-degree
//! from the seed distributions and connects both ways to its chosen
//! attachment point. After the size target is reached, every edge receives
//! attributes sampled from the seed's conditional property model.

use crate::analysis::SeedAnalysis;
use crate::config::PgpbaConfig;
use crate::diagnostics::PhaseTimings;
use crate::seed::SeedBundle;
use crate::topo::{attach_properties, edge_windows, Topology};
use csb_graph::NetflowGraph;
use csb_stats::rng::rng_for;
use rand::Rng;
use rayon::prelude::*;
use std::time::Instant;

/// One new vertex's attachment plan, computed in parallel.
struct Attachment {
    dest: u32,
    out_edges: u64,
    in_edges: u64,
}

impl Attachment {
    /// Edges this vertex will materialize.
    fn edge_count(&self) -> usize {
        (self.out_edges + self.in_edges) as usize
    }
}

/// Grows the topology only (no attributes) — shared by [`pgpba`], the
/// distributed implementation, and the Fig. 10 no-properties benchmarks.
pub fn pgpba_topology(
    seed_topo: &Topology,
    analysis: &SeedAnalysis,
    cfg: &PgpbaConfig,
) -> Topology {
    cfg.validate();
    assert!(seed_topo.edge_count() > 0, "PGPBA needs a non-empty seed");
    let _grow = csb_obs::span_cat("pgpba.grow", "gen");
    let mut topo = seed_topo.clone();
    let mut iteration = 0u64;
    // Expected edges a new vertex contributes: used to clamp the final
    // iteration so the overshoot past `desired_size` stays within one mean
    // degree instead of one full iteration (with fraction >= 1 an unclamped
    // batch can multiply the edge count several-fold past the target).
    let mean_degree = (analysis.out_degree.mean() + analysis.in_degree.mean()).max(1.0);

    while (topo.edge_count() as u64) < cfg.desired_size {
        iteration += 1;
        // Stage 1 of the preferential attachment: sample fraction*|E| edges
        // uniformly (with replacement, so fraction > 1 works — the paper's
        // performance runs use fraction = 2).
        let edge_count = topo.edge_count();
        let remaining = cfg.desired_size - edge_count as u64;
        let needed = ((remaining as f64 / mean_degree).ceil() as usize).max(1);
        let new_vertices = ((cfg.fraction * edge_count as f64) as usize).max(1).min(needed);

        let attachments: Vec<Attachment> = (0..new_vertices)
            .into_par_iter()
            .map(|i| {
                let mut rng = rng_for(cfg.seed, (iteration << 32) | i as u64);
                let e = rng.gen_range(0..edge_count);
                // Stage 2: either endpoint of the sampled edge, uniformly.
                let dest = if rng.gen::<bool>() { topo.src[e] } else { topo.dst[e] };
                let mut out_edges = analysis.out_degree.sample(&mut rng);
                let in_edges = analysis.in_degree.sample(&mut rng);
                if out_edges == 0 && in_edges == 0 {
                    // Keep the growth loop productive: a fully isolated new
                    // vertex adds no edges, so force a single out-edge.
                    out_edges = 1;
                }
                Attachment { dest, out_edges, in_edges }
            })
            .collect();

        // Materialize: count per attachment, prefix-sum into disjoint output
        // windows, write every edge in parallel. Edge order is identical to
        // the serial push_edge loop this replaces (out-edges then in-edges,
        // in attachment order), so outputs are bit-for-bit unchanged.
        let _mat = csb_obs::span_cat("pgpba.materialize", "gen");
        let base = topo.num_vertices;
        topo.num_vertices += new_vertices as u32;
        let counts: Vec<usize> = attachments.iter().map(Attachment::edge_count).collect();
        let total: usize = counts.iter().sum();
        let start = topo.src.len();
        topo.src.resize(start + total, 0);
        topo.dst.resize(start + total, 0);
        let windows = edge_windows(&counts, &mut topo.src[start..], &mut topo.dst[start..]);
        windows.into_par_iter().zip(&attachments).enumerate().for_each(
            |(i, ((win_src, win_dst), a))| {
                let v = base + i as u32;
                let out = a.out_edges as usize;
                win_src[..out].fill(v);
                win_dst[..out].fill(a.dest);
                win_src[out..].fill(a.dest);
                win_dst[out..].fill(v);
            },
        );
        drop(_mat);
        csb_obs::counter_add("pgpba.iterations", 1);
        csb_obs::counter_add("pgpba.edges_materialized", total as u64);
        csb_obs::histogram_record("pgpba.batch_vertices", new_vertices as u64);
        csb_obs::obs_debug!(
            "pgpba iteration {iteration}: +{new_vertices} vertices, +{total} edges \
             ({} total)",
            topo.edge_count()
        );
    }
    topo
}

/// [`pgpba`] with per-phase wall-clock timings (grow / attach, edges/sec).
///
/// Compatibility wrapper: prefer
/// [`GenJob::pgpba(..).timed()`](crate::GenJob::timed).
pub fn pgpba_timed(seed: &SeedBundle, cfg: &PgpbaConfig) -> (NetflowGraph, PhaseTimings) {
    let seed_topo = Topology::of_graph(&seed.graph);
    let t0 = Instant::now();
    let topo = pgpba_topology(&seed_topo, &seed.analysis, cfg);
    let grow = t0.elapsed();
    let seed_ips: Vec<u32> = seed.graph.vertex_data().to_vec();
    let t1 = Instant::now();
    let g = attach_properties(&topo, &seed.analysis.properties, &seed_ips, cfg.seed ^ 0x9E37);
    let attach = t1.elapsed();
    let timings = PhaseTimings::new("pgpba", g.edge_count()).grow(grow).attach(attach);
    (g, timings)
}

/// Runs the full PGPBA generator: grow the seed to `desired_size` edges,
/// then attach NetFlow attributes to every edge.
///
/// ```
/// use csb_core::{pgpba, seed_from_trace, PgpbaConfig};
/// use csb_net::traffic::sim::{TrafficSim, TrafficSimConfig};
///
/// let trace = TrafficSim::new(TrafficSimConfig {
///     duration_secs: 5.0,
///     sessions_per_sec: 10.0,
///     seed: 1,
///     ..TrafficSimConfig::default()
/// })
/// .generate();
/// let seed = seed_from_trace(&trace);
/// let target = seed.edge_count() as u64 * 4;
/// let synthetic = pgpba(&seed, &PgpbaConfig { desired_size: target, fraction: 0.3, seed: 2 });
/// assert!(synthetic.edge_count() as u64 >= target);
/// ```
///
/// Compatibility wrapper: prefer [`GenJob::pgpba`](crate::GenJob::pgpba),
/// which also covers the timed, distributed, sink, and checkpointed-store
/// execution paths.
pub fn pgpba(seed: &SeedBundle, cfg: &PgpbaConfig) -> NetflowGraph {
    let run = crate::GenJob::pgpba(seed, *cfg).run().expect("in-memory runs cannot fail");
    run.graph.expect("memory output always holds the graph")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seed::seed_from_trace;
    use csb_net::traffic::sim::{TrafficSim, TrafficSimConfig};
    use csb_stats::veracity::{average_euclidean_distance, NormalizedDistribution};

    fn small_seed() -> SeedBundle {
        let trace = TrafficSim::new(TrafficSimConfig {
            duration_secs: 20.0,
            sessions_per_sec: 25.0,
            seed: 42,
            ..TrafficSimConfig::default()
        })
        .generate();
        seed_from_trace(&trace)
    }

    #[test]
    fn reaches_desired_size() {
        let seed = small_seed();
        let target = seed.edge_count() as u64 * 8;
        let g = pgpba(&seed, &PgpbaConfig { desired_size: target, fraction: 0.3, seed: 1 });
        assert!(g.edge_count() as u64 >= target, "{} < {target}", g.edge_count());
        // Overshoot is bounded by one iteration's worth of growth.
        assert!((g.edge_count() as u64) < target * 3, "overshoot too large: {}", g.edge_count());
        assert!(g.vertex_count() > seed.graph.vertex_count());
    }

    #[test]
    fn deterministic_given_seed() {
        let seed = small_seed();
        let cfg = PgpbaConfig { desired_size: 5_000, fraction: 0.5, seed: 9 };
        let a = pgpba(&seed, &cfg);
        let b = pgpba(&seed, &cfg);
        assert_eq!(a.edge_count(), b.edge_count());
        assert_eq!(a.vertex_count(), b.vertex_count());
        for (ea, eb) in a.edges().zip(b.edges()) {
            assert_eq!(ea.1, eb.1);
            assert_eq!(ea.2, eb.2);
            assert_eq!(ea.3, eb.3);
        }
    }

    #[test]
    fn seed_is_prefix_of_synthetic() {
        // PGPBA grows G' from G: the seed's topology must survive verbatim.
        let seed = small_seed();
        let topo = pgpba_topology(
            &Topology::of_graph(&seed.graph),
            &seed.analysis,
            &PgpbaConfig { desired_size: seed.edge_count() as u64 * 4, fraction: 0.2, seed: 3 },
        );
        let orig = Topology::of_graph(&seed.graph);
        assert_eq!(&topo.src[..orig.edge_count()], &orig.src[..]);
        assert_eq!(&topo.dst[..orig.edge_count()], &orig.dst[..]);
    }

    #[test]
    fn degree_distribution_shape_is_preserved() {
        let seed = small_seed();
        let target = seed.edge_count() as u64 * 16;
        let g = pgpba(&seed, &PgpbaConfig { desired_size: target, fraction: 0.1, seed: 5 });
        let seed_deg: Vec<u64> = seed
            .graph
            .in_degrees()
            .iter()
            .zip(seed.graph.out_degrees().iter())
            .map(|(a, b)| a + b)
            .collect();
        let synth_deg: Vec<u64> =
            g.in_degrees().iter().zip(g.out_degrees().iter()).map(|(a, b)| a + b).collect();
        let score = average_euclidean_distance(
            &NormalizedDistribution::from_u64(&seed_deg),
            &NormalizedDistribution::from_u64(&synth_deg),
        );
        assert!(score < 0.01, "veracity score too high: {score}");
    }

    #[test]
    fn preferential_attachment_creates_heavy_tail() {
        let seed = small_seed();
        let g = pgpba(
            &seed,
            &PgpbaConfig { desired_size: seed.edge_count() as u64 * 16, fraction: 0.3, seed: 7 },
        );
        let total: Vec<u64> =
            g.in_degrees().iter().zip(g.out_degrees().iter()).map(|(a, b)| a + b).collect();
        let max = *total.iter().max().expect("non-empty") as f64;
        let mean = total.iter().sum::<u64>() as f64 / total.len() as f64;
        assert!(max > mean * 20.0, "no hub: max {max}, mean {mean}");
    }

    #[test]
    fn higher_fraction_fewer_iterations_same_size_class() {
        let seed = small_seed();
        let target = seed.edge_count() as u64 * 4;
        // The clamp bounds the final iteration at ceil(remaining / mean_deg)
        // vertices, each adding at most max_deg edges — so overshoot stays
        // within this data-driven bound even at fraction = 2.0, where an
        // unclamped batch would multiply the edge count several-fold.
        let mean_deg = (seed.analysis.out_degree.mean() + seed.analysis.in_degree.mean()).max(1.0);
        let max_deg = (seed.analysis.out_degree.max() + seed.analysis.in_degree.max()).max(1);
        let bound = target + (target as f64 / mean_deg).ceil() as u64 * max_deg;
        for fraction in [0.1, 0.3, 0.6, 0.9, 2.0] {
            let g = pgpba(&seed, &PgpbaConfig { desired_size: target, fraction, seed: 2 });
            assert!(g.edge_count() as u64 >= target, "fraction {fraction}");
            assert!(
                (g.edge_count() as u64) <= bound,
                "fraction {fraction}: overshoot past bound: {} > {bound}",
                g.edge_count()
            );
        }
    }
}
