//! Generator configuration.

/// PGPBA parameters (paper Fig. 2 inputs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PgpbaConfig {
    /// Target synthetic size, in edges (`desired_size`).
    pub desired_size: u64,
    /// New vertices per iteration as a fraction of the current edge count
    /// (`fraction`; the paper sweeps 0.1-0.9 for veracity and uses 2 for
    /// performance runs).
    pub fraction: f64,
    /// Master RNG seed.
    pub seed: u64,
}

impl PgpbaConfig {
    /// A config with the paper's default veracity fraction (0.1).
    pub fn new(desired_size: u64) -> Self {
        PgpbaConfig { desired_size, fraction: 0.1, seed: 0xBA }
    }

    /// Validates parameters.
    ///
    /// # Panics
    /// Panics if `fraction <= 0` or `desired_size == 0`.
    pub fn validate(&self) {
        assert!(self.desired_size > 0, "desired_size must be positive");
        assert!(
            self.fraction > 0.0 && self.fraction.is_finite(),
            "fraction must be positive and finite"
        );
    }
}

/// PGSK parameters (paper Fig. 3 inputs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PgskConfig {
    /// Target synthetic size, in edges.
    pub desired_size: u64,
    /// Master RNG seed.
    pub seed: u64,
    /// KronFit gradient-ascent iterations.
    pub kronfit_iterations: usize,
    /// Permutation-swap samples per gradient step.
    pub kronfit_permutation_samples: usize,
}

impl PgskConfig {
    /// Defaults tuned for laptop-scale fitting.
    pub fn new(desired_size: u64) -> Self {
        PgskConfig {
            desired_size,
            seed: 0x5C,
            kronfit_iterations: 40,
            kronfit_permutation_samples: 2000,
        }
    }

    /// Validates parameters.
    ///
    /// # Panics
    /// Panics if `desired_size == 0` or no fitting iterations are requested.
    pub fn validate(&self) {
        assert!(self.desired_size > 0, "desired_size must be positive");
        assert!(self.kronfit_iterations > 0, "kronfit needs at least one iteration");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        PgpbaConfig::new(1000).validate();
        PgskConfig::new(1000).validate();
    }

    #[test]
    #[should_panic(expected = "desired_size")]
    fn zero_size_rejected() {
        PgpbaConfig { desired_size: 0, fraction: 0.1, seed: 0 }.validate();
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn zero_fraction_rejected() {
        PgpbaConfig { desired_size: 10, fraction: 0.0, seed: 0 }.validate();
    }
}
