//! The preliminary pipeline of paper Fig. 1: PCAP source data -> NetFlow
//! (flow assembly) -> property-graph -> structural & attribute analysis.

use crate::analysis::SeedAnalysis;
use csb_graph::{graph_from_flows, NetflowGraph};
use csb_net::assembler::FlowAssembler;
use csb_net::packet::Packet;
use csb_net::trace::Trace;

/// The seed: the property-graph built from the source trace plus its
/// analysis, ready to be handed to PGPBA/PGSK.
#[derive(Debug, Clone)]
pub struct SeedBundle {
    /// The seed property-graph.
    pub graph: NetflowGraph,
    /// Its structural and attribute distributions.
    pub analysis: SeedAnalysis,
}

impl SeedBundle {
    /// Seed edge count (the paper reports its seed as 1,940,814 edges).
    pub fn edge_count(&self) -> usize {
        self.graph.edge_count()
    }
}

/// Runs the full preliminary pipeline on raw packets.
///
/// # Panics
/// Panics if the packets yield no flows (empty seed).
pub fn seed_from_packets(packets: &[Packet]) -> SeedBundle {
    let flows = FlowAssembler::assemble(packets);
    assert!(!flows.is_empty(), "seed trace produced no flows");
    let graph = graph_from_flows(&flows);
    let analysis = SeedAnalysis::of(&graph);
    SeedBundle { graph, analysis }
}

/// Convenience wrapper over a [`Trace`].
pub fn seed_from_trace(trace: &Trace) -> SeedBundle {
    seed_from_packets(&trace.packets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use csb_net::traffic::sim::{TrafficSim, TrafficSimConfig};

    fn sim_trace() -> Trace {
        TrafficSim::new(TrafficSimConfig {
            duration_secs: 20.0,
            sessions_per_sec: 30.0,
            seed: 11,
            ..TrafficSimConfig::default()
        })
        .generate()
    }

    #[test]
    fn pipeline_builds_nonempty_seed() {
        let seed = seed_from_trace(&sim_trace());
        assert!(seed.graph.vertex_count() > 10);
        assert!(seed.edge_count() > 100);
        // Degree distributions exist and are heavy-ish tailed: max out-degree
        // well above the mean.
        let max = seed.analysis.out_degree.max() as f64;
        let mean = seed.analysis.out_degree.mean();
        assert!(max > mean * 3.0, "max {max} vs mean {mean}");
    }

    #[test]
    fn pipeline_is_deterministic() {
        let a = seed_from_trace(&sim_trace());
        let b = seed_from_trace(&sim_trace());
        assert_eq!(a.graph.edge_count(), b.graph.edge_count());
        assert_eq!(a.graph.vertex_count(), b.graph.vertex_count());
    }

    #[test]
    fn pcap_round_trip_preserves_seed() {
        // Fig. 1 starts from *PCAP data*: write the trace to the on-disk
        // format, read it back, and check the seed is identical.
        let trace = sim_trace();
        let mut bytes = Vec::new();
        csb_net::pcap::write_pcap(&mut bytes, &trace.packets).expect("write");
        let packets = csb_net::pcap::read_pcap(&bytes[..]).expect("read");
        let direct = seed_from_trace(&trace);
        let via_pcap = seed_from_packets(&packets);
        assert_eq!(direct.graph.edge_count(), via_pcap.graph.edge_count());
        assert_eq!(direct.graph.vertex_count(), via_pcap.graph.vertex_count());
    }

    #[test]
    #[should_panic(expected = "no flows")]
    fn empty_trace_rejected() {
        let _ = seed_from_packets(&[]);
    }
}
