//! The daemon's durable state: one directory tree holding job specs,
//! terminal results, outputs, and checkpoints, laid out so that a
//! SIGKILLed daemon recovers by scanning it on the next boot.
//!
//! ```text
//! spool/
//!   jobs/j-000001.spec.json     written atomically at submit
//!   jobs/j-000001.result.json   written atomically at the terminal state
//!   out/j-000001.csbstore       generate output (deterministic path)
//!   ckpt/j-000001/              checkpoint manifest dir
//! ```
//!
//! A spec without a result is unfinished work: recovery re-admits those
//! jobs in id order with `resume` set, so in-flight checkpointed jobs
//! continue byte-identically and queued-but-unstarted jobs simply start.

use crate::proto::{parse_submit, JobSpec, Priority};
use csb_obs::json::{parse_json, JsonObject, JsonValue};
use csb_store::CsbError;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Paths and persistence for one spool directory.
#[derive(Debug, Clone)]
pub struct Spool {
    root: PathBuf,
}

/// A job spec read back from disk during recovery.
#[derive(Debug, Clone)]
pub struct RecoveredJob {
    /// The id the spec file was written under.
    pub id: String,
    /// What to run.
    pub spec: JobSpec,
    /// Its scheduling class.
    pub priority: Priority,
}

impl Spool {
    /// Opens (creating if needed) the spool at `root`.
    pub fn open(root: impl Into<PathBuf>) -> Result<Spool, CsbError> {
        let root = root.into();
        for sub in ["jobs", "out", "ckpt"] {
            std::fs::create_dir_all(root.join(sub))?;
        }
        Ok(Spool { root })
    }

    /// The spool root.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Deterministic output path for a generate job (the same on every
    /// resume, which is what makes kill-and-restart byte-identical).
    pub fn out_path(&self, id: &str) -> PathBuf {
        self.root.join("out").join(format!("{id}.csbstore"))
    }

    /// Checkpoint directory for a job.
    pub fn ckpt_dir(&self, id: &str) -> PathBuf {
        self.root.join("ckpt").join(id)
    }

    fn spec_path(&self, id: &str) -> PathBuf {
        self.root.join("jobs").join(format!("{id}.spec.json"))
    }

    fn result_path(&self, id: &str) -> PathBuf {
        self.root.join("jobs").join(format!("{id}.result.json"))
    }

    /// Atomically writes `id`'s spec (tmp file + rename, same pattern as the
    /// checkpoint manifests).
    pub fn save_spec(&self, id: &str, spec: &JobSpec, priority: Priority) -> Result<(), CsbError> {
        let mut o = JsonObject::new();
        o.str("job", id).str("priority", priority.as_str());
        spec.write_fields(&mut o);
        self.write_atomic(&self.spec_path(id), &o.finish())
    }

    /// Atomically writes `id`'s terminal result line.
    pub fn save_result(&self, id: &str, result_json: &str) -> Result<(), CsbError> {
        self.write_atomic(&self.result_path(id), result_json)
    }

    /// The saved terminal result, if the job finished.
    pub fn load_result(&self, id: &str) -> Option<String> {
        std::fs::read_to_string(self.result_path(id)).ok()
    }

    /// All unfinished jobs (spec without result), sorted by id — submission
    /// order, because ids are sequential.
    pub fn recover(&self) -> Result<Vec<RecoveredJob>, CsbError> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(self.root.join("jobs"))? {
            let path = entry?.path();
            let name = match path.file_name().and_then(|n| n.to_str()) {
                Some(n) => n,
                None => continue,
            };
            let id = match name.strip_suffix(".spec.json") {
                Some(id) => id.to_string(),
                None => continue,
            };
            if self.result_path(&id).is_file() {
                continue; // Finished before the crash.
            }
            let text = std::fs::read_to_string(&path)?;
            let v = parse_json(&text).map_err(|e| CsbError::Corrupt {
                offset: 0,
                message: format!("spec {}: {e}", path.display()),
            })?;
            let (spec, priority) = parse_submit(&v).map_err(|e| CsbError::Corrupt {
                offset: 0,
                message: format!("spec {}: {e}", path.display()),
            })?;
            // Prefer the priority stored at top level (parse_submit defaults
            // it when reading raw submit lines, but save_spec always writes
            // it, so they agree).
            let priority = v
                .get("priority")
                .and_then(JsonValue::as_str)
                .and_then(Priority::parse)
                .unwrap_or(priority);
            out.push(RecoveredJob { id, spec, priority });
        }
        out.sort_by(|a, b| a.id.cmp(&b.id));
        Ok(out)
    }

    fn write_atomic(&self, path: &Path, text: &str) -> Result<(), CsbError> {
        let tmp = path.with_extension("tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(text.as_bytes())?;
            f.write_all(b"\n")?;
            f.sync_data()?;
        }
        std::fs::rename(&tmp, path)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::Algorithm;

    fn temp_spool(tag: &str) -> Spool {
        let d = std::env::temp_dir().join(format!("csb-spool-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        Spool::open(d).expect("open spool")
    }

    fn spec() -> JobSpec {
        JobSpec::Generate {
            algorithm: Algorithm::Pgpba,
            seed_graph: PathBuf::from("/tmp/seed.txt"),
            size: 4000,
            fraction: 0.1,
            seed: 7,
            shards: 2,
            columnar: false,
            chunk_records: Some(128),
        }
    }

    #[test]
    fn recovery_sees_specs_without_results_in_id_order() {
        let sp = temp_spool("recover");
        sp.save_spec("j-000002", &spec(), Priority::Low).unwrap();
        sp.save_spec("j-000001", &spec(), Priority::High).unwrap();
        sp.save_spec("j-000003", &spec(), Priority::Normal).unwrap();
        sp.save_result("j-000001", "{\"ok\":true,\"state\":\"done\"}").unwrap();
        let rec = sp.recover().unwrap();
        let ids: Vec<&str> = rec.iter().map(|r| r.id.as_str()).collect();
        assert_eq!(ids, ["j-000002", "j-000003"]);
        assert_eq!(rec[0].priority, Priority::Low);
        assert_eq!(rec[0].spec, spec());
        assert!(sp.load_result("j-000001").is_some());
        assert!(sp.load_result("j-000002").is_none());
        std::fs::remove_dir_all(sp.root()).ok();
    }

    #[test]
    fn corrupt_spec_files_error_instead_of_vanishing() {
        let sp = temp_spool("corrupt");
        std::fs::write(sp.root().join("jobs/j-000009.spec.json"), "{nope").unwrap();
        assert!(sp.recover().is_err(), "corrupt spec must surface");
        std::fs::remove_dir_all(sp.root()).ok();
    }
}
