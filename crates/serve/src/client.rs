//! A blocking protocol client, shared by the `csb submit/jobs/cancel`
//! subcommands and `bench_serve`. One [`Client`] wraps one TCP connection;
//! every method is a single request/reply round trip (RESULT long-polls
//! server-side).

use crate::proto::{ok_reply, JobSpec, Priority};
use csb_obs::json::{parse_json, JsonValue};
use csb_store::CsbError;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// A connected protocol client.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to a daemon.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, CsbError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client { stream, reader })
    }

    /// Sends one raw request line and parses the reply object. Protocol
    /// errors (`"ok": false`) become `CsbError::Input` with the server's
    /// message.
    pub fn roundtrip(&mut self, line: &str) -> Result<JsonValue, CsbError> {
        self.stream.write_all(line.as_bytes())?;
        self.stream.write_all(b"\n")?;
        self.stream.flush()?;
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply)?;
        if n == 0 {
            return Err(CsbError::Input("server closed the connection".into()));
        }
        let v = parse_json(reply.trim())
            .map_err(|e| CsbError::Input(format!("unparseable reply: {e}")))?;
        if v.get("ok").and_then(JsonValue::as_bool) == Some(true) {
            Ok(v)
        } else {
            let msg = v
                .get("error")
                .and_then(JsonValue::as_str)
                .unwrap_or("server reported failure without an error message");
            Err(CsbError::Input(msg.to_string()))
        }
    }

    /// `ping` → protocol version.
    pub fn ping(&mut self) -> Result<u64, CsbError> {
        let v = self.roundtrip("{\"cmd\":\"ping\"}")?;
        Ok(v.get("version").and_then(JsonValue::as_u64).unwrap_or(0))
    }

    /// `submit` → the new job id.
    pub fn submit(&mut self, spec: &JobSpec, priority: Priority) -> Result<String, CsbError> {
        let mut o = ok_reply(); // the `ok` field is ignored by the server
        o.str("cmd", "submit").str("priority", priority.as_str());
        spec.write_fields(&mut o);
        let v = self.roundtrip(&o.finish())?;
        v.get("job")
            .and_then(JsonValue::as_str)
            .map(str::to_string)
            .ok_or_else(|| CsbError::Input("submit reply carried no job id".into()))
    }

    /// `status` → the job's record object.
    pub fn status(&mut self, job: &str) -> Result<JsonValue, CsbError> {
        let mut o = ok_reply();
        o.str("cmd", "status").str("job", job);
        self.roundtrip(&o.finish())
    }

    /// `cancel` → `true` if the job reached a terminal state immediately.
    pub fn cancel(&mut self, job: &str) -> Result<bool, CsbError> {
        let mut o = ok_reply();
        o.str("cmd", "cancel").str("job", job);
        let v = self.roundtrip(&o.finish())?;
        Ok(v.get("state").and_then(JsonValue::as_str) == Some("canceled"))
    }

    /// `list` → the queue snapshot object.
    pub fn list(&mut self) -> Result<JsonValue, CsbError> {
        let v = self.roundtrip("{\"cmd\":\"list\"}")?;
        v.get("snapshot")
            .cloned()
            .ok_or_else(|| CsbError::Input("list reply had no snapshot".into()))
    }

    /// `shutdown` (drain or now).
    pub fn shutdown(&mut self, drain: bool) -> Result<(), CsbError> {
        let mut o = ok_reply();
        o.str("cmd", "shutdown").str("mode", if drain { "drain" } else { "now" });
        self.roundtrip(&o.finish())?;
        Ok(())
    }

    /// Long-polls `result` until the job is terminal or `timeout` elapses.
    /// Returns the final record; errors with `CsbError::Input` on timeout.
    pub fn result_wait(&mut self, job: &str, timeout: Duration) -> Result<JsonValue, CsbError> {
        let deadline = Instant::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            let slice = remaining.min(Duration::from_secs(5));
            let mut o = ok_reply();
            o.str("cmd", "result").str("job", job).u64("wait_ms", slice.as_millis() as u64);
            let v = self.roundtrip(&o.finish())?;
            let state = v.get("state").and_then(JsonValue::as_str).unwrap_or("");
            if matches!(state, "done" | "failed" | "canceled") {
                return Ok(v);
            }
            if remaining.is_zero() {
                return Err(CsbError::Input(format!(
                    "job {job} still `{state}` after {:.1}s",
                    timeout.as_secs_f64()
                )));
            }
        }
    }
}
