//! The daemon: TCP accept loop speaking the line protocol, N worker threads
//! running jobs off the [`Scheduler`](crate::queue::Scheduler), spool
//! recovery at boot, and an optional csb-obs HTTP endpoint with `/metrics`,
//! `/status`, and a `/jobs` table.
//!
//! Every connection gets its own thread, so a slow, hung, or malicious
//! client can never wedge a worker slot — workers only ever touch the
//! scheduler, never a socket. Shutdown is deterministic end to end: drain
//! (or preempt) the workers, stop the accept loop with a self-connect wake,
//! join every connection thread, drop the obs endpoint (which joins its own
//! accept thread).

use crate::proto::{
    error_reply, ok_reply, parse_request, Algorithm, JobSpec, Request, MAX_LINE_BYTES,
    PROTO_VERSION,
};
use crate::queue::{FinishDisposition, JobRecord, Scheduler};
use crate::spool::Spool;
use csb_core::{GenJob, PgpbaConfig, PgskConfig, SeedBundle, VeracityJob};
use csb_engine::CostModel;
use csb_graph::io::read_graph;
use csb_obs::json::JsonObject;
use csb_obs::{ObsServer, Recorder, Router};
use csb_store::{Compression, CsbError};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How a [`Server::shutdown`] stops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShutdownMode {
    /// Finish queued and running work, then exit.
    Drain,
    /// Preempt running jobs to their checkpoints and exit; queued work is
    /// parked in the spool for the next boot.
    Now,
}

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Protocol listen address (`127.0.0.1:0` = ephemeral port).
    pub listen: String,
    /// Worker slots.
    pub workers: usize,
    /// Spool directory (jobs, outputs, checkpoints).
    pub spool: PathBuf,
    /// Optional csb-obs HTTP endpoint address.
    pub obs_listen: Option<String>,
    /// Admission memory budget, GB.
    pub mem_budget_gb: f64,
    /// Bounded queue length.
    pub max_queue: usize,
    /// Cost model driving admission and placement (see
    /// [`CostModel::calibrate_from_bench`]).
    pub model: CostModel,
}

impl ServeConfig {
    /// Local defaults: ephemeral port, 2 workers, 4 GB budget, queue of
    /// 256, the paper-shaped default cost model, no obs endpoint.
    pub fn new(spool: impl Into<PathBuf>) -> ServeConfig {
        ServeConfig {
            listen: "127.0.0.1:0".into(),
            workers: 2,
            spool: spool.into(),
            obs_listen: None,
            mem_budget_gb: 4.0,
            max_queue: 256,
            model: CostModel::default(),
        }
    }
}

struct Shared {
    sched: Scheduler,
    spool: Spool,
    rec: Recorder,
    workers: usize,
    stop_conns: AtomicBool,
}

/// A running daemon. Dropping the handle aborts hard (threads detach);
/// prefer [`Server::shutdown`] or a protocol `shutdown` + [`Server::wait`].
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    obs_addr: Option<SocketAddr>,
    obs: Option<ObsServer>,
    accept_stop: Arc<AtomicBool>,
    accept: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    conns: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.addr)
            .field("obs_addr", &self.obs_addr)
            .finish()
    }
}

impl Server {
    /// Boots the daemon: opens the spool, re-admits unfinished jobs (with
    /// resume), binds the listener, starts workers, the accept loop, and
    /// the obs endpoint if configured.
    pub fn start(cfg: ServeConfig) -> Result<Server, CsbError> {
        let spool = Spool::open(&cfg.spool)?;
        let rec = Recorder::new();
        let sched =
            Scheduler::new(cfg.workers, cfg.max_queue, cfg.mem_budget_gb, cfg.model, rec.clone());
        let shared = Arc::new(Shared {
            sched,
            spool,
            rec: rec.clone(),
            workers: cfg.workers.max(1),
            stop_conns: AtomicBool::new(false),
        });

        // Recovery: every spec without a result is unfinished — re-admit it
        // resumable, in id (submission) order. Jobs the current budget can
        // no longer admit fail with a persisted result instead of vanishing.
        for job in shared.spool.recover()? {
            match shared.sched.admit(job.spec, job.priority, Some(job.id.clone()), true) {
                Ok(_) => {
                    rec.counter("serve.resumed_jobs").add(1);
                }
                Err(reject) => {
                    let mut o = ok_reply();
                    o.str("job", &job.id).str("state", "failed").str(
                        "error",
                        &format!("not re-admitted on recovery: {}", reject.message()),
                    );
                    shared.spool.save_result(&job.id, &o.finish())?;
                }
            }
        }

        let listener = TcpListener::bind(&cfg.listen)?;
        let addr = listener.local_addr()?;

        let mut workers = Vec::new();
        for idx in 0..cfg.workers.max(1) {
            let sh = Arc::clone(&shared);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("serve-worker-{idx}"))
                    .spawn(move || worker_loop(&sh, idx))?,
            );
        }

        let conns: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> = Arc::default();
        let accept_stop = Arc::new(AtomicBool::new(false));
        let accept = {
            let sh = Arc::clone(&shared);
            let stop = Arc::clone(&accept_stop);
            let conns = Arc::clone(&conns);
            std::thread::Builder::new().name("serve-accept".into()).spawn(move || {
                for conn in listener.incoming() {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    if let Ok(stream) = conn {
                        let sh2 = Arc::clone(&sh);
                        if let Ok(h) = std::thread::Builder::new()
                            .name("serve-conn".into())
                            .spawn(move || handle_client(stream, &sh2))
                        {
                            let mut held = conns.lock().unwrap();
                            held.retain(|h| !h.is_finished());
                            held.push(h);
                        }
                    }
                }
            })?
        };

        let (obs, obs_addr) = match &cfg.obs_listen {
            Some(addr) => {
                let sh = Arc::clone(&shared);
                let router = Router::telemetry(rec).route("/jobs", "job table JSON", move || {
                    csb_obs::HttpResponse::json(jobs_json(&sh))
                });
                let server = ObsServer::serve_router(addr, router)?;
                let a = server.addr();
                (Some(server), Some(a))
            }
            None => (None, None),
        };

        Ok(Server {
            shared,
            addr,
            obs_addr,
            obs,
            accept_stop,
            accept: Some(accept),
            workers,
            conns,
        })
    }

    /// The protocol address (real port when bound to port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The obs HTTP address, when configured.
    pub fn obs_addr(&self) -> Option<SocketAddr> {
        self.obs_addr
    }

    /// The daemon's spool.
    pub fn spool(&self) -> &Spool {
        &self.shared.spool
    }

    /// Direct scheduler access (tests and the in-process bench).
    pub fn scheduler(&self) -> &Scheduler {
        &self.shared.sched
    }

    /// Blocks until the daemon stops (a protocol `shutdown`, or
    /// [`Server::shutdown`] from another thread), then tears everything
    /// down deterministically.
    pub fn wait(mut self) {
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        // Workers are done (drain finished or stop ordered): now stop the
        // accept loop and every connection thread.
        self.shared.stop_conns.store(true, Ordering::Relaxed);
        self.accept_stop.store(true, Ordering::Relaxed);
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(250));
        if let Some(a) = self.accept.take() {
            let _ = a.join();
        }
        let held = std::mem::take(&mut *self.conns.lock().unwrap());
        for h in held {
            let _ = h.join();
        }
        if let Some(obs) = self.obs.take() {
            obs.shutdown();
        }
    }

    /// Stops the daemon from the owning thread and waits for teardown.
    pub fn shutdown(self, mode: ShutdownMode) {
        self.shared.sched.begin_shutdown(mode == ShutdownMode::Drain);
        self.wait();
    }
}

/// One worker: take a job, run it, classify the outcome, persist terminal
/// results.
fn worker_loop(shared: &Shared, idx: usize) {
    while let Some(id) = shared.sched.next_job(idx) {
        let record = match shared.sched.get(&id) {
            Some(r) => r,
            None => continue,
        };
        let t0 = Instant::now();
        let outcome = run_job(shared, &record);
        let disposition = shared.sched.finish_job(&id, t0.elapsed().as_secs_f64(), outcome);
        if disposition == FinishDisposition::Terminal {
            if let Some(rec) = shared.sched.get(&id) {
                let _ = shared.spool.save_result(&id, &result_json(&rec));
            }
        }
    }
}

type RunOutcome = Result<(u64, Option<(f64, f64)>, Option<PathBuf>), (String, bool)>;

fn run_job(shared: &Shared, record: &JobRecord) -> RunOutcome {
    if record.cancel.load(Ordering::Relaxed) {
        // Canceled (or drained) between dequeue and start.
        return Err(("stopped before start".into(), true));
    }
    match &record.spec {
        JobSpec::Generate {
            algorithm,
            seed_graph,
            size,
            fraction,
            seed,
            shards,
            columnar,
            chunk_records,
        } => {
            let fail = |e: CsbError| (e.to_string(), e.is_transient());
            let graph = std::fs::File::open(seed_graph)
                .map_err(|e| (format!("seed graph {}: {e}", seed_graph.display()), false))
                .and_then(|f| {
                    read_graph(f)
                        .map_err(|e| (format!("seed graph {}: {e}", seed_graph.display()), false))
                })?;
            let analysis = csb_core::analysis::SeedAnalysis::of(&graph);
            let bundle = SeedBundle { graph, analysis };
            let out = shared.spool.out_path(&record.id);
            let ckpt = shared.spool.ckpt_dir(&record.id);
            let job_rec = Recorder::new();
            let mut job = match algorithm {
                Algorithm::Pgpba => GenJob::pgpba(
                    &bundle,
                    PgpbaConfig { desired_size: *size, fraction: *fraction, seed: *seed },
                ),
                Algorithm::Pgsk => {
                    let mut c = PgskConfig::new(*size);
                    c.seed = *seed;
                    GenJob::pgsk(&bundle, c)
                }
            }
            .recorder(job_rec)
            .job_id(record.id.clone())
            .store(&out)
            .checkpoint(&ckpt)
            .resume()
            .cancel_flag(Arc::clone(&record.cancel));
            if *shards >= 2 {
                job = job.shards(*shards);
            }
            if *columnar {
                job = job.compression(Compression::Columnar);
            }
            if let Some(n) = chunk_records {
                job = job.chunk_records(*n).checkpoint_every(1);
            }
            let run = job.run().map_err(fail)?;
            Ok((run.edges, None, Some(out)))
        }
        JobSpec::Veracity { seed_store, synth_store } => {
            let report = VeracityJob::new()
                .seed_store(seed_store)
                .synthetic_store(synth_store)
                .run()
                .map_err(|e| (e.to_string(), e.is_transient()))?;
            let score = |m| report.score(m).expect("default metrics scored");
            Ok((0, Some((score("degree"), score("pagerank"))), None))
        }
    }
}

/// Serializes a record's public fields into `o`.
fn record_fields(o: &mut JsonObject, j: &JobRecord) {
    o.str("job", &j.id)
        .str("kind", j.spec.kind())
        .str("priority", j.priority.as_str())
        .str("state", j.state.as_str())
        .u64("restarts", u64::from(j.restarts))
        .u64("preemptions", u64::from(j.preemptions))
        .f64("predicted_gb", j.predicted_gb, 6)
        .f64("predicted_secs", j.predicted_secs, 3)
        .f64("wait_secs", j.wait_secs, 3)
        .f64("run_secs", j.run_secs, 3)
        .u64("edges", j.edges);
    if let Some((degree, pagerank)) = j.scores {
        o.f64("degree", degree, 6).f64("pagerank", pagerank, 6);
    }
    if let Some(out) = &j.out {
        o.str("out", &out.display().to_string());
    }
    if let Some(err) = &j.error {
        o.str("error", err);
    }
    if let Some(seq) = j.done_seq {
        o.u64("done_seq", seq);
    }
}

fn result_json(j: &JobRecord) -> String {
    let mut o = ok_reply();
    record_fields(&mut o, j);
    o.finish()
}

fn jobs_json(shared: &Shared) -> String {
    let (jobs, queued, running, draining) = shared.sched.snapshot();
    let items = jobs.iter().map(|j| {
        let mut o = JsonObject::new();
        record_fields(&mut o, j);
        o.finish()
    });
    let mut o = JsonObject::new();
    o.u64("queue_depth", queued as u64)
        .u64("running", running as u64)
        .u64("workers", shared.workers as u64)
        .bool("draining", draining)
        .raw("jobs", &csb_obs::json::array_of(items.collect::<Vec<_>>()));
    o.finish()
}

/// One connection: newline-framed request/reply until EOF, an oversized
/// line, or shutdown.
fn handle_client(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    let _ = stream.set_nodelay(true);
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        // Drain complete lines already buffered.
        while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = buf.drain(..=pos).collect();
            let text = String::from_utf8_lossy(&line);
            let text = text.trim();
            if text.is_empty() {
                continue;
            }
            let reply = match parse_request(text) {
                Ok(req) => {
                    let (reply, close) = dispatch(shared, req);
                    if close {
                        let _ = write_line(&mut stream, &reply);
                        return;
                    }
                    reply
                }
                Err(e) => {
                    shared.rec.counter("serve.proto_errors").add(1);
                    error_reply(&e)
                }
            };
            if write_line(&mut stream, &reply).is_err() {
                return;
            }
        }
        if buf.len() > MAX_LINE_BYTES {
            // Unframed garbage: reply once, then close — the stream can no
            // longer be trusted to be line-aligned.
            shared.rec.counter("serve.proto_errors").add(1);
            let _ = write_line(
                &mut stream,
                &error_reply(&format!("request line exceeds {MAX_LINE_BYTES} bytes")),
            );
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return, // clean close (mid-line leftovers are dropped)
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shared.stop_conns.load(Ordering::Relaxed) {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

fn write_line(stream: &mut TcpStream, reply: &str) -> std::io::Result<()> {
    stream.write_all(reply.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()
}

/// Executes one request; returns (reply, close-after-reply).
fn dispatch(shared: &Shared, req: Request) -> (String, bool) {
    match req {
        Request::Ping => {
            let mut o = ok_reply();
            o.bool("pong", true).u64("version", u64::from(PROTO_VERSION));
            (o.finish(), false)
        }
        Request::Submit { spec, priority } => {
            if let JobSpec::Generate { seed_graph, .. } = &spec {
                // Catch bad paths at submit, not minutes later on a worker.
                if !seed_graph.is_file() {
                    return (
                        error_reply(&format!(
                            "rejected: seed graph {} is not a file",
                            seed_graph.display()
                        )),
                        false,
                    );
                }
            }
            match shared.sched.admit(spec, priority, None, false) {
                Ok(record) => {
                    if let Err(e) =
                        shared.spool.save_spec(&record.id, &record.spec, record.priority)
                    {
                        // A spec that can't be persisted would vanish on a
                        // crash; fail the submit instead.
                        let _ = shared.sched.cancel(&record.id);
                        return (error_reply(&format!("spool write failed: {e}")), false);
                    }
                    let mut o = ok_reply();
                    o.str("job", &record.id)
                        .str("state", "queued")
                        .f64("predicted_gb", record.predicted_gb, 6)
                        .f64("predicted_secs", record.predicted_secs, 3);
                    (o.finish(), false)
                }
                Err(reject) => (error_reply(&reject.message()), false),
            }
        }
        Request::Status { job } => match shared.sched.get(&job) {
            Some(j) => {
                let mut o = ok_reply();
                record_fields(&mut o, &j);
                (o.finish(), false)
            }
            None => (error_reply(&format!("unknown job `{job}`")), false),
        },
        Request::Result { job, wait_ms } => {
            let wait = Duration::from_millis(wait_ms.min(30_000));
            match shared.sched.wait_terminal(&job, wait) {
                Some(j) => {
                    let mut o = ok_reply();
                    record_fields(&mut o, &j);
                    (o.finish(), false)
                }
                None => (error_reply(&format!("unknown job `{job}`")), false),
            }
        }
        Request::Cancel { job } => match shared.sched.cancel(&job) {
            Ok(done) => {
                let mut o = ok_reply();
                o.str("job", &job).str("state", if done { "canceled" } else { "cancel_requested" });
                (o.finish(), false)
            }
            Err(e) => (error_reply(&e), false),
        },
        Request::List => (jobs_json_reply(shared), false),
        Request::Shutdown { drain } => {
            shared.sched.begin_shutdown(drain);
            let mut o = ok_reply();
            o.bool("draining", true).str("mode", if drain { "drain" } else { "now" });
            (o.finish(), false)
        }
    }
}

fn jobs_json_reply(shared: &Shared) -> String {
    let mut o = ok_reply();
    o.raw("snapshot", &jobs_json(shared));
    o.finish()
}
