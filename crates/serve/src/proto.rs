//! The csb-serve wire protocol: newline-delimited JSON, one request line in,
//! one reply line out, over a plain TCP stream.
//!
//! ## Grammar
//!
//! Every request is a single JSON object on one line (≤ [`MAX_LINE_BYTES`])
//! with a `cmd` field (case-insensitive). Replies are single-line JSON
//! objects that always carry `"ok": true|false`; failed requests add an
//! `"error"` string. A malformed line gets a structured error reply and the
//! connection stays open; an oversized line gets an error reply and a close
//! (the framing can no longer be trusted).
//!
//! | `cmd`      | fields                                                        |
//! |------------|---------------------------------------------------------------|
//! | `ping`     | —                                                             |
//! | `submit`   | `kind` (`generate`/`veracity`) + kind fields, `priority`      |
//! | `status`   | `job`                                                         |
//! | `result`   | `job`, optional `wait_ms` (long-poll until terminal)          |
//! | `cancel`   | `job`                                                         |
//! | `list`     | —                                                             |
//! | `shutdown` | optional `mode` (`drain` default, or `now`)                   |
//!
//! `submit` with `kind:"generate"` takes `algorithm` (`pgpba`/`pgsk`),
//! `seed_graph` (path to a text graph file), `size` (edges), and optionally
//! `fraction` (PGPBA growth fraction, default 0.1), `seed` (RNG master seed,
//! default 1), `shards`, `codec` (`raw`/`columnar`), and `chunk_records`
//! (small values for tests). `kind:"veracity"` takes `seed_store` and
//! `synth_store` (paths to store files or shard manifests).

use csb_obs::json::{parse_json, JsonObject, JsonValue};
use std::path::PathBuf;

/// Hard cap on one request line; beyond this the connection is closed.
pub const MAX_LINE_BYTES: usize = 64 * 1024;

/// Protocol version reported by `ping`.
pub const PROTO_VERSION: u32 = 1;

/// Scheduling class. Within a class jobs run FIFO; across classes, higher
/// wins. A waiting higher class may preempt a running lower-class job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Priority {
    /// Served first; may preempt `Normal` and `Low`.
    High,
    /// The default class.
    Normal,
    /// Served last; first to be preempted.
    Low,
}

impl Priority {
    /// Queue index: 0 (high) .. 2 (low).
    pub fn index(self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        }
    }

    /// Wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Normal => "normal",
            Priority::Low => "low",
        }
    }

    /// Parses a wire name.
    pub fn parse(s: &str) -> Option<Priority> {
        match s {
            "high" => Some(Priority::High),
            "normal" => Some(Priority::Normal),
            "low" => Some(Priority::Low),
            _ => None,
        }
    }
}

/// Which generator a `generate` job runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// Property-Graph Parallel Barabási-Albert.
    Pgpba,
    /// Property-Graph Stochastic Kronecker.
    Pgsk,
}

impl Algorithm {
    /// Wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            Algorithm::Pgpba => "pgpba",
            Algorithm::Pgsk => "pgsk",
        }
    }

    /// Parses a wire name.
    pub fn parse(s: &str) -> Option<Algorithm> {
        match s {
            "pgpba" => Some(Algorithm::Pgpba),
            "pgsk" => Some(Algorithm::Pgsk),
            _ => None,
        }
    }
}

/// What a submitted job does.
#[derive(Debug, Clone, PartialEq)]
pub enum JobSpec {
    /// Generate a synthetic graph into a store file under the spool.
    Generate {
        /// Generator to run.
        algorithm: Algorithm,
        /// Text graph file to derive the seed bundle from.
        seed_graph: PathBuf,
        /// Target size in edges.
        size: u64,
        /// PGPBA growth fraction (ignored by PGSK).
        fraction: f64,
        /// RNG master seed.
        seed: u64,
        /// Output shard count (0/1 = single file).
        shards: usize,
        /// `true` = columnar (v2) codecs; requires `shards >= 2`.
        columnar: bool,
        /// Store chunk size override (None = default).
        chunk_records: Option<usize>,
    },
    /// Score an already-materialized store against a seed store.
    Veracity {
        /// The reference store (file or shard manifest).
        seed_store: PathBuf,
        /// The store under test.
        synth_store: PathBuf,
    },
}

impl JobSpec {
    /// Short kind name for status lines.
    pub fn kind(&self) -> &'static str {
        match self {
            JobSpec::Generate { .. } => "generate",
            JobSpec::Veracity { .. } => "veracity",
        }
    }

    /// Serializes the spec fields into `o` (the inverse of [`parse_submit`]
    /// modulo the `cmd` field — the spool writes these to disk and re-parses
    /// them on recovery).
    pub fn write_fields(&self, o: &mut JsonObject) {
        match self {
            JobSpec::Generate {
                algorithm,
                seed_graph,
                size,
                fraction,
                seed,
                shards,
                columnar,
                chunk_records,
            } => {
                o.str("kind", "generate");
                o.str("algorithm", algorithm.as_str());
                o.str("seed_graph", &seed_graph.display().to_string());
                o.u64("size", *size);
                o.f64("fraction", *fraction, 6);
                o.u64("seed", *seed);
                o.u64("shards", *shards as u64);
                o.str("codec", if *columnar { "columnar" } else { "raw" });
                if let Some(n) = chunk_records {
                    o.u64("chunk_records", *n as u64);
                }
            }
            JobSpec::Veracity { seed_store, synth_store } => {
                o.str("kind", "veracity");
                o.str("seed_store", &seed_store.display().to_string());
                o.str("synth_store", &synth_store.display().to_string());
            }
        }
    }
}

/// A parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness check.
    Ping,
    /// Submit a job.
    Submit {
        /// What to run.
        spec: JobSpec,
        /// Scheduling class.
        priority: Priority,
    },
    /// One job's state.
    Status {
        /// Job id (`j-NNNNNN`).
        job: String,
    },
    /// One job's terminal result, optionally long-polling.
    Result {
        /// Job id.
        job: String,
        /// Milliseconds to block waiting for a terminal state (0 = poll).
        wait_ms: u64,
    },
    /// Cancel a queued or running job.
    Cancel {
        /// Job id.
        job: String,
    },
    /// Queue + job table snapshot.
    List,
    /// Stop the daemon.
    Shutdown {
        /// `true` = finish queued work first; `false` = preempt to
        /// checkpoint and exit.
        drain: bool,
    },
}

fn field<'v>(v: &'v JsonValue, key: &str) -> Result<&'v JsonValue, String> {
    v.get(key).ok_or_else(|| format!("missing field `{key}`"))
}

fn str_field(v: &JsonValue, key: &str) -> Result<String, String> {
    field(v, key)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| format!("field `{key}` must be a string"))
}

fn u64_field_or(v: &JsonValue, key: &str, default: u64) -> Result<u64, String> {
    match v.get(key) {
        None => Ok(default),
        Some(f) => {
            f.as_u64().ok_or_else(|| format!("field `{key}` must be a non-negative integer"))
        }
    }
}

fn f64_field_or(v: &JsonValue, key: &str, default: f64) -> Result<f64, String> {
    match v.get(key) {
        None => Ok(default),
        Some(f) => f.as_f64().ok_or_else(|| format!("field `{key}` must be a number")),
    }
}

/// Parses the fields of a `submit` request (also used by the spool reading
/// specs back from disk).
pub fn parse_submit(v: &JsonValue) -> Result<(JobSpec, Priority), String> {
    let priority = match v.get("priority") {
        None => Priority::Normal,
        Some(p) => {
            let s = p.as_str().ok_or("field `priority` must be a string")?;
            Priority::parse(s).ok_or_else(|| format!("unknown priority `{s}` (high|normal|low)"))?
        }
    };
    let kind = str_field(v, "kind")?;
    let spec = match kind.as_str() {
        "generate" => {
            let alg = str_field(v, "algorithm")?;
            let algorithm = Algorithm::parse(&alg)
                .ok_or_else(|| format!("unknown algorithm `{alg}` (pgpba|pgsk)"))?;
            let size = u64_field_or(v, "size", 0)?;
            if size == 0 {
                return Err("field `size` must be a positive edge count".into());
            }
            let columnar = match v.get("codec").and_then(JsonValue::as_str) {
                None | Some("raw") => false,
                Some("columnar") => true,
                Some(other) => return Err(format!("unknown codec `{other}` (raw|columnar)")),
            };
            let chunk_records = match v.get("chunk_records") {
                None => None,
                Some(f) => {
                    Some(f.as_u64().ok_or("field `chunk_records` must be a non-negative integer")?
                        as usize)
                }
            };
            JobSpec::Generate {
                algorithm,
                seed_graph: PathBuf::from(str_field(v, "seed_graph")?),
                size,
                fraction: f64_field_or(v, "fraction", 0.1)?,
                seed: u64_field_or(v, "seed", 1)?,
                shards: u64_field_or(v, "shards", 0)? as usize,
                columnar,
                chunk_records,
            }
        }
        "veracity" => JobSpec::Veracity {
            seed_store: PathBuf::from(str_field(v, "seed_store")?),
            synth_store: PathBuf::from(str_field(v, "synth_store")?),
        },
        other => return Err(format!("unknown job kind `{other}` (generate|veracity)")),
    };
    Ok((spec, priority))
}

/// Parses one request line. Errors are protocol-level messages suitable for
/// an [`error_reply`].
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = parse_json(line.trim()).map_err(|e| format!("bad JSON: {e}"))?;
    if !matches!(v, JsonValue::Obj(_)) {
        return Err("request must be a JSON object".into());
    }
    let cmd = str_field(&v, "cmd")?.to_ascii_lowercase();
    match cmd.as_str() {
        "ping" => Ok(Request::Ping),
        "submit" => {
            let (spec, priority) = parse_submit(&v)?;
            Ok(Request::Submit { spec, priority })
        }
        "status" => Ok(Request::Status { job: str_field(&v, "job")? }),
        "result" => Ok(Request::Result {
            job: str_field(&v, "job")?,
            wait_ms: u64_field_or(&v, "wait_ms", 0)?,
        }),
        "cancel" => Ok(Request::Cancel { job: str_field(&v, "job")? }),
        "list" => Ok(Request::List),
        "shutdown" => match v.get("mode").and_then(JsonValue::as_str) {
            None | Some("drain") => Ok(Request::Shutdown { drain: true }),
            Some("now") => Ok(Request::Shutdown { drain: false }),
            Some(other) => Err(format!("unknown shutdown mode `{other}` (drain|now)")),
        },
        other => Err(format!("unknown command `{other}`")),
    }
}

/// A structured `{"ok":false,"error":...}` reply line (no trailing newline).
pub fn error_reply(message: &str) -> String {
    let mut o = JsonObject::new();
    o.bool("ok", false).str("error", message);
    o.finish()
}

/// An empty-payload `{"ok":true}` builder callers extend with fields.
pub fn ok_reply() -> JsonObject {
    let mut o = JsonObject::new();
    o.bool("ok", true);
    o
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_submit_with_defaults() {
        let r = parse_request(
            "{\"cmd\":\"submit\",\"kind\":\"generate\",\"algorithm\":\"pgpba\",\
             \"seed_graph\":\"seed.txt\",\"size\":5000}",
        )
        .expect("must parse");
        let Request::Submit { spec, priority } = r else { panic!("not a submit: {r:?}") };
        assert_eq!(priority, Priority::Normal);
        let JobSpec::Generate { algorithm, size, fraction, seed, shards, columnar, .. } = spec
        else {
            panic!("not generate")
        };
        assert_eq!(algorithm, Algorithm::Pgpba);
        assert_eq!(size, 5000);
        assert!((fraction - 0.1).abs() < 1e-12);
        assert_eq!(seed, 1);
        assert_eq!(shards, 0);
        assert!(!columnar);
    }

    #[test]
    fn parses_veracity_and_priorities() {
        let r = parse_request(
            "{\"cmd\":\"submit\",\"kind\":\"veracity\",\"seed_store\":\"a\",\
             \"synth_store\":\"b\",\"priority\":\"high\"}",
        )
        .unwrap();
        let Request::Submit { spec, priority } = r else { panic!() };
        assert_eq!(priority, Priority::High);
        assert_eq!(spec.kind(), "veracity");
    }

    #[test]
    fn cmd_is_case_insensitive() {
        assert_eq!(parse_request("{\"cmd\":\"PING\"}"), Ok(Request::Ping));
        assert_eq!(parse_request("{\"cmd\":\"List\"}"), Ok(Request::List));
    }

    #[test]
    fn shutdown_modes() {
        assert_eq!(parse_request("{\"cmd\":\"shutdown\"}"), Ok(Request::Shutdown { drain: true }));
        assert_eq!(
            parse_request("{\"cmd\":\"shutdown\",\"mode\":\"now\"}"),
            Ok(Request::Shutdown { drain: false })
        );
        assert!(parse_request("{\"cmd\":\"shutdown\",\"mode\":\"later\"}").is_err());
    }

    #[test]
    fn rejects_malformed_requests() {
        for bad in [
            "",
            "not json",
            "42",
            "[]",
            "{\"cmd\":\"nope\"}",
            "{\"cmd\":\"submit\"}",
            "{\"cmd\":\"submit\",\"kind\":\"generate\"}",
            "{\"cmd\":\"submit\",\"kind\":\"generate\",\"algorithm\":\"x\",\
             \"seed_graph\":\"s\",\"size\":10}",
            "{\"cmd\":\"submit\",\"kind\":\"generate\",\"algorithm\":\"pgpba\",\
             \"seed_graph\":\"s\",\"size\":0}",
            "{\"cmd\":\"status\"}",
            "{\"cmd\":\"submit\",\"kind\":\"generate\",\"algorithm\":\"pgpba\",\
             \"seed_graph\":\"s\",\"size\":10,\"priority\":\"urgent\"}",
        ] {
            assert!(parse_request(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn spec_round_trips_through_write_fields() {
        let spec = JobSpec::Generate {
            algorithm: Algorithm::Pgsk,
            seed_graph: PathBuf::from("/tmp/seed.txt"),
            size: 12345,
            fraction: 0.25,
            seed: 99,
            shards: 4,
            columnar: true,
            chunk_records: Some(64),
        };
        let mut o = JsonObject::new();
        spec.write_fields(&mut o);
        let v = parse_json(&o.finish()).unwrap();
        let (back, _) = parse_submit(&v).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn error_reply_is_valid_json() {
        let s = error_reply("bad \"thing\" happened");
        csb_obs::json::validate_json(&s).expect("error reply must validate");
        let v = parse_json(&s).unwrap();
        assert_eq!(v.get("ok"), Some(&JsonValue::Bool(false)));
    }
}
