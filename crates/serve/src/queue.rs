//! The job table and scheduler: a bounded queue with three priority
//! classes (FIFO within a class), cost-model admission control, memory-aware
//! worker placement, and preempt-and-requeue of running checkpointed jobs
//! when a higher class is waiting.
//!
//! ## Admission
//!
//! A `submit` is **rejected** (never queued) when the cost model predicts
//! its resident memory above the configured budget, or when the queue is
//! full. Everything admitted eventually runs — rejection is the only form
//! of load shedding, so clients can tell "try later" from "never".
//!
//! ## Placement
//!
//! Workers take the head of the highest non-empty class whose predicted
//! memory fits in the remaining budget (budget minus the running jobs'
//! predictions). Heads are never overtaken within their class: a head that
//! does not fit blocks its class (FIFO is part of the contract), but lower
//! classes may still be served.
//!
//! ## Preemption
//!
//! When a job queues in a class strictly higher than some running
//! checkpointed generate job and no worker is free, the weakest running job
//! is preempted: its cancel flag is set, the sink takes a durable barrier at
//! the next chunk boundary and surfaces a transient error, and the job is
//! requeued at the *front* of its class with `resume` set. Resume replays
//! from the manifest, so the final store bytes are identical to an
//! uninterrupted run.

use crate::proto::{JobSpec, Priority};
use csb_engine::CostModel;
use csb_obs::Recorder;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Lifecycle of a job. `Done`/`Failed`/`Canceled` are terminal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Admitted, waiting for a worker (also after a preemption requeue).
    Queued,
    /// On a worker now.
    Running,
    /// Finished successfully.
    Done,
    /// Finished with an error (admission-on-recovery failures included).
    Failed,
    /// Canceled by request.
    Canceled,
}

impl JobState {
    /// Wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Canceled => "canceled",
        }
    }

    /// Whether the state is final.
    pub fn is_terminal(self) -> bool {
        matches!(self, JobState::Done | JobState::Failed | JobState::Canceled)
    }
}

/// Why a running job's cancel flag was set — decides how the resulting
/// transient error is classified.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// Not stopped.
    None,
    /// Client `cancel` — terminal.
    Cancel,
    /// Higher-priority job waiting — requeue at the front of the class.
    Preempt,
    /// `shutdown now` — leave queued+resumable for the next boot.
    Drain,
}

/// Everything the scheduler knows about one job.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// `j-NNNNNN`.
    pub id: String,
    /// What to run.
    pub spec: JobSpec,
    /// Scheduling class.
    pub priority: Priority,
    /// Current lifecycle state.
    pub state: JobState,
    /// Resume from the checkpoint manifest when (re)started.
    pub resume: bool,
    /// Times the job left a worker non-terminally and was requeued.
    pub restarts: u32,
    /// How many of those were scheduler preemptions.
    pub preemptions: u32,
    /// Cooperative stop flag shared with the running `GenJob`.
    pub cancel: Arc<AtomicBool>,
    /// Why the flag was last set.
    pub stop_reason: StopReason,
    /// Terminal error text, if failed.
    pub error: Option<String>,
    /// Edges produced (generate jobs).
    pub edges: u64,
    /// Veracity scores (veracity jobs).
    pub scores: Option<(f64, f64)>,
    /// Output path (generate jobs).
    pub out: Option<std::path::PathBuf>,
    /// Predicted resident memory, GB (admission + placement).
    pub predicted_gb: f64,
    /// Predicted single-core compute, seconds.
    pub predicted_secs: f64,
    /// Submission instant.
    pub submitted: Instant,
    /// Seconds spent queued before the first start.
    pub wait_secs: f64,
    /// Seconds spent on workers (sum over restarts).
    pub run_secs: f64,
    /// Completion sequence number (terminal jobs, in finish order).
    pub done_seq: Option<u64>,
    /// Worker slot currently running the job.
    pub worker: Option<usize>,
}

/// Why a submission was turned away.
#[derive(Debug, Clone, PartialEq)]
pub enum Reject {
    /// Predicted memory exceeds the budget — resubmitting won't help.
    OverBudget {
        /// The prediction.
        predicted_gb: f64,
        /// The budget it exceeded.
        budget_gb: f64,
    },
    /// The bounded queue is full — try again later.
    QueueFull {
        /// The configured bound.
        max_queue: usize,
    },
    /// The daemon is shutting down.
    Draining,
    /// The spec can never run (e.g. columnar codec without sharding).
    BadSpec(String),
}

impl Reject {
    /// Human-readable reason for the error reply.
    pub fn message(&self) -> String {
        match self {
            Reject::OverBudget { predicted_gb, budget_gb } => format!(
                "rejected: predicted memory {predicted_gb:.3} GB exceeds the {budget_gb:.3} GB \
                 budget"
            ),
            Reject::QueueFull { max_queue } => {
                format!("rejected: queue full ({max_queue} jobs); try again later")
            }
            Reject::Draining => "rejected: daemon is draining".into(),
            Reject::BadSpec(m) => format!("rejected: {m}"),
        }
    }
}

/// What `finish_job` decided — tells the server whether to persist a
/// terminal result or expect the job to run again.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FinishDisposition {
    /// Terminal: write the result file.
    Terminal,
    /// Requeued (preemption or transient fault): no result yet.
    Requeued,
    /// Parked for the next boot (`shutdown now`): no result, spec stays.
    Parked,
}

/// Cap on transient-fault requeues before a job is failed for good
/// (preemptions and drains do not count against it).
pub const MAX_JOB_RESTARTS: u32 = 5;

struct SchedState {
    jobs: BTreeMap<String, JobRecord>,
    /// Queued ids per class, FIFO.
    queues: [VecDeque<String>; 3],
    next_id: u64,
    draining: bool,
    stopping: bool,
    running: usize,
    done_seq: u64,
}

/// The scheduler: one mutex around the job table, one condvar shared by
/// workers (new work / shutdown) and clients (long-polling `result`).
pub struct Scheduler {
    state: Mutex<SchedState>,
    cv: Condvar,
    workers: usize,
    max_queue: usize,
    mem_budget_gb: f64,
    model: CostModel,
    rec: Recorder,
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("workers", &self.workers)
            .field("max_queue", &self.max_queue)
            .field("mem_budget_gb", &self.mem_budget_gb)
            .finish()
    }
}

impl Scheduler {
    /// A scheduler for `workers` slots, queueing at most `max_queue` jobs,
    /// admitting against `mem_budget_gb` as predicted by `model`, reporting
    /// queue-level metrics into `rec`.
    pub fn new(
        workers: usize,
        max_queue: usize,
        mem_budget_gb: f64,
        model: CostModel,
        rec: Recorder,
    ) -> Scheduler {
        rec.gauge("serve.workers").set(workers as i64);
        Scheduler {
            state: Mutex::new(SchedState {
                jobs: BTreeMap::new(),
                queues: Default::default(),
                next_id: 1,
                draining: false,
                stopping: false,
                running: 0,
                done_seq: 0,
            }),
            cv: Condvar::new(),
            workers: workers.max(1),
            max_queue,
            mem_budget_gb,
            model,
            rec,
        }
    }

    /// Predicted resident memory for `spec`, GB.
    pub fn predict_gb(&self, spec: &JobSpec) -> f64 {
        match spec {
            JobSpec::Generate { size, .. } => *size as f64 * self.model.memory_bytes_per_edge / 1e9,
            // Veracity is out-of-core streaming: a small flat footprint.
            JobSpec::Veracity { .. } => 0.05,
        }
    }

    /// Predicted single-core compute for `spec`, seconds.
    pub fn predict_secs(&self, spec: &JobSpec) -> f64 {
        match spec {
            JobSpec::Generate { algorithm, size, .. } => {
                let gen_ns = match algorithm {
                    crate::proto::Algorithm::Pgpba => self.model.pgpba_ns_per_edge,
                    crate::proto::Algorithm::Pgsk => self.model.pgsk_ns_per_edge,
                };
                *size as f64 * (gen_ns + self.model.property_ns_per_edge) / 1e9
            }
            JobSpec::Veracity { .. } => 1.0,
        }
    }

    /// Admits or rejects a job. `id` pins a recovered job's identity (spool
    /// replay); fresh submissions pass `None` and get the next sequential
    /// id. `resume` marks the first run as a checkpoint resume.
    pub fn admit(
        &self,
        spec: JobSpec,
        priority: Priority,
        id: Option<String>,
        resume: bool,
    ) -> Result<JobRecord, Reject> {
        if let JobSpec::Generate { shards, columnar: true, .. } = &spec {
            if *shards < 2 {
                return Err(Reject::BadSpec(
                    "columnar codec requires shards >= 2 on a checkpointed run".into(),
                ));
            }
        }
        let predicted_gb = self.predict_gb(&spec);
        let predicted_secs = self.predict_secs(&spec);
        let mut s = self.state.lock().unwrap();
        if s.draining {
            return Err(Reject::Draining);
        }
        if predicted_gb > self.mem_budget_gb {
            self.rec.counter("serve.rejected").add(1);
            return Err(Reject::OverBudget { predicted_gb, budget_gb: self.mem_budget_gb });
        }
        let queued: usize = s.queues.iter().map(VecDeque::len).sum();
        if queued >= self.max_queue {
            self.rec.counter("serve.rejected").add(1);
            return Err(Reject::QueueFull { max_queue: self.max_queue });
        }
        let id = match id {
            Some(id) => {
                // Recovered ids advance the counter past themselves so fresh
                // submissions never collide.
                if let Some(n) = id.strip_prefix("j-").and_then(|n| n.parse::<u64>().ok()) {
                    s.next_id = s.next_id.max(n + 1);
                }
                id
            }
            None => {
                let id = format!("j-{:06}", s.next_id);
                s.next_id += 1;
                id
            }
        };
        let record = JobRecord {
            id: id.clone(),
            spec,
            priority,
            state: JobState::Queued,
            resume,
            restarts: 0,
            preemptions: 0,
            cancel: Arc::new(AtomicBool::new(false)),
            stop_reason: StopReason::None,
            error: None,
            edges: 0,
            scores: None,
            out: None,
            predicted_gb,
            predicted_secs,
            submitted: Instant::now(),
            wait_secs: 0.0,
            run_secs: 0.0,
            done_seq: None,
            worker: None,
        };
        s.queues[priority.index()].push_back(id.clone());
        s.jobs.insert(id, record.clone());
        self.rec.counter("serve.submitted").add(1);
        self.update_gauges(&s);
        self.preempt_if_needed(&mut s);
        drop(s);
        self.cv.notify_all();
        Ok(record)
    }

    /// Blocks until there is a job for `worker` (returns its id, moved to
    /// `Running`) or the worker should exit (returns `None`: shutdown, or
    /// drain completed).
    pub fn next_job(&self, worker: usize) -> Option<String> {
        let mut s = self.state.lock().unwrap();
        loop {
            if s.stopping {
                return None;
            }
            let queued: usize = s.queues.iter().map(VecDeque::len).sum();
            if s.draining && queued == 0 && s.running == 0 {
                // Drain complete; wake the siblings so they exit too.
                self.cv.notify_all();
                return None;
            }
            // Memory in use by running jobs.
            let in_use: f64 = s
                .jobs
                .values()
                .filter(|j| j.state == JobState::Running)
                .map(|j| j.predicted_gb)
                .sum();
            let mut picked = None;
            for q in 0..3 {
                if let Some(head) = s.queues[q].front() {
                    let fits = s
                        .jobs
                        .get(head)
                        .map(|j| in_use + j.predicted_gb <= self.mem_budget_gb)
                        .unwrap_or(true);
                    // FIFO within the class: a head that doesn't fit blocks
                    // its class, but lower classes may still run.
                    if fits {
                        picked = Some(q);
                        break;
                    }
                }
            }
            if let Some(q) = picked {
                let id = s.queues[q].pop_front().expect("picked class is non-empty");
                let wait = {
                    let j = s.jobs.get_mut(&id).expect("queued job must exist");
                    j.state = JobState::Running;
                    j.worker = Some(worker);
                    if j.restarts == 0 {
                        j.wait_secs = j.submitted.elapsed().as_secs_f64();
                    }
                    j.wait_secs
                };
                s.running += 1;
                self.rec.histogram("serve.wait_ms").record((wait * 1e3) as u64);
                self.update_gauges(&s);
                return Some(id);
            }
            s = self.cv.wait_timeout(s, Duration::from_millis(200)).unwrap().0;
        }
    }

    /// A clone of `id`'s record (for the worker to run from, and for status
    /// replies).
    pub fn get(&self, id: &str) -> Option<JobRecord> {
        self.state.lock().unwrap().jobs.get(id).cloned()
    }

    /// Classifies a finished worker run. `outcome` is `Ok` with
    /// (edges, scores, out path) on success, `Err` with (message,
    /// is_transient) otherwise.
    #[allow(clippy::type_complexity)]
    pub fn finish_job(
        &self,
        id: &str,
        run_secs: f64,
        outcome: Result<(u64, Option<(f64, f64)>, Option<std::path::PathBuf>), (String, bool)>,
    ) -> FinishDisposition {
        let mut s = self.state.lock().unwrap();
        s.running = s.running.saturating_sub(1);
        let disposition;
        let mut requeue_class = None;
        let mut bump_seq = false;
        {
            let j = match s.jobs.get_mut(id) {
                Some(j) => j,
                None => return FinishDisposition::Terminal,
            };
            j.run_secs += run_secs;
            j.worker = None;
            let reason = j.stop_reason;
            match outcome {
                Ok((edges, scores, out)) => {
                    j.state = JobState::Done;
                    j.edges = edges;
                    j.scores = scores;
                    j.out = out;
                    self.rec.counter("serve.done").add(1);
                    disposition = FinishDisposition::Terminal;
                }
                Err((msg, transient)) => match reason {
                    StopReason::Preempt if transient => {
                        j.state = JobState::Queued;
                        j.resume = true;
                        j.restarts += 1;
                        j.preemptions += 1;
                        j.stop_reason = StopReason::None;
                        j.cancel.store(false, Ordering::Relaxed);
                        self.rec.counter("serve.preemptions").add(1);
                        disposition = FinishDisposition::Requeued;
                    }
                    StopReason::Drain if transient => {
                        // Parked: state stays Queued on disk via the spec
                        // file; the next boot recovers and resumes it.
                        j.state = JobState::Queued;
                        j.resume = true;
                        j.stop_reason = StopReason::None;
                        disposition = FinishDisposition::Parked;
                    }
                    StopReason::Cancel => {
                        j.state = JobState::Canceled;
                        j.error = Some("canceled".into());
                        self.rec.counter("serve.canceled").add(1);
                        disposition = FinishDisposition::Terminal;
                    }
                    _ if transient && j.restarts < MAX_JOB_RESTARTS => {
                        // Transient fault with no stop request: requeue for
                        // a checkpoint resume, bounded by MAX_JOB_RESTARTS.
                        j.state = JobState::Queued;
                        j.resume = true;
                        j.restarts += 1;
                        j.cancel.store(false, Ordering::Relaxed);
                        self.rec.counter("serve.fault_requeues").add(1);
                        disposition = FinishDisposition::Requeued;
                    }
                    _ => {
                        j.state = JobState::Failed;
                        j.error = Some(msg);
                        self.rec.counter("serve.failed").add(1);
                        disposition = FinishDisposition::Terminal;
                    }
                },
            }
            if j.state == JobState::Queued && disposition == FinishDisposition::Requeued {
                requeue_class = Some(j.priority.index());
            } else if j.state.is_terminal() {
                bump_seq = true;
                let total_ms = (j.submitted.elapsed().as_secs_f64() * 1e3) as u64;
                let run_ms = (j.run_secs * 1e3) as u64;
                self.rec.histogram("serve.total_ms").record(total_ms);
                self.rec.histogram("serve.run_ms").record(run_ms);
            }
        }
        if let Some(q) = requeue_class {
            // Requeued work goes to the *front* of its class: it was
            // admitted first and preemption must not also cost it its FIFO
            // position.
            s.queues[q].push_front(id.to_string());
        }
        if bump_seq {
            s.done_seq += 1;
            let seq = s.done_seq;
            if let Some(j) = s.jobs.get_mut(id) {
                j.done_seq = Some(seq);
            }
        }
        self.update_gauges(&s);
        drop(s);
        self.cv.notify_all();
        disposition
    }

    /// Cancels `id`. Queued jobs become terminal immediately (`Ok(true)`);
    /// running jobs get their flag set and finish asynchronously
    /// (`Ok(false)`); unknown ids error.
    pub fn cancel(&self, id: &str) -> Result<bool, String> {
        let mut s = self.state.lock().unwrap();
        let state = {
            let j = match s.jobs.get_mut(id) {
                Some(j) => j,
                None => return Err(format!("unknown job `{id}`")),
            };
            match j.state {
                JobState::Queued => {
                    j.state = JobState::Canceled;
                    j.error = Some("canceled".into());
                    self.rec.counter("serve.canceled").add(1);
                }
                JobState::Running => {
                    j.stop_reason = StopReason::Cancel;
                    j.cancel.store(true, Ordering::Relaxed);
                }
                terminal => return Ok(terminal == JobState::Canceled),
            }
            j.state
        };
        if state == JobState::Canceled {
            for q in &mut s.queues {
                q.retain(|qid| qid != id);
            }
            s.done_seq += 1;
            let seq = s.done_seq;
            if let Some(j) = s.jobs.get_mut(id) {
                j.done_seq = Some(seq);
            }
        }
        self.update_gauges(&s);
        drop(s);
        self.cv.notify_all();
        Ok(state == JobState::Canceled)
    }

    /// Starts a shutdown. `drain` finishes queued work first; otherwise all
    /// running jobs are preempted to their checkpoints and the queue is
    /// parked for the next boot.
    pub fn begin_shutdown(&self, drain: bool) {
        let mut s = self.state.lock().unwrap();
        s.draining = true;
        if !drain {
            s.stopping = true;
            for j in s.jobs.values_mut() {
                if j.state == JobState::Running {
                    j.stop_reason = StopReason::Drain;
                    j.cancel.store(true, Ordering::Relaxed);
                }
            }
        }
        drop(s);
        self.cv.notify_all();
    }

    /// Whether a shutdown has started (drain or immediate).
    pub fn draining(&self) -> bool {
        self.state.lock().unwrap().draining
    }

    /// Whether workers should exit immediately.
    pub fn stopping(&self) -> bool {
        self.state.lock().unwrap().stopping
    }

    /// Blocks until `id` reaches a terminal state or `wait` elapses; returns
    /// the latest record either way (None for unknown ids).
    pub fn wait_terminal(&self, id: &str, wait: Duration) -> Option<JobRecord> {
        let deadline = Instant::now() + wait;
        let mut s = self.state.lock().unwrap();
        loop {
            match s.jobs.get(id) {
                None => return None,
                Some(j) if j.state.is_terminal() => return Some(j.clone()),
                Some(j) => {
                    let now = Instant::now();
                    if now >= deadline || s.stopping {
                        return Some(j.clone());
                    }
                    let step = (deadline - now).min(Duration::from_millis(100));
                    s = self.cv.wait_timeout(s, step).unwrap().0;
                }
            }
        }
    }

    /// A point-in-time copy of every record (id order) plus queue depth.
    pub fn snapshot(&self) -> (Vec<JobRecord>, usize, usize, bool) {
        let s = self.state.lock().unwrap();
        let queued: usize = s.queues.iter().map(VecDeque::len).sum();
        (s.jobs.values().cloned().collect(), queued, s.running, s.draining)
    }

    /// True once a drain has finished (or an immediate stop was ordered).
    pub fn idle_after_drain(&self) -> bool {
        let s = self.state.lock().unwrap();
        let queued: usize = s.queues.iter().map(VecDeque::len).sum();
        s.stopping || (s.draining && queued == 0 && s.running == 0)
    }

    /// Sets the cancel flag of the weakest running preemptible job when a
    /// strictly higher class is waiting with no free worker.
    fn preempt_if_needed(&self, s: &mut SchedState) {
        if s.running < self.workers {
            return; // A free slot will pick the new job up.
        }
        let best_waiting = match (0..3).find(|&q| !s.queues[q].is_empty()) {
            Some(q) => q,
            None => return,
        };
        // Weakest running job: highest class index, preemptible (generate
        // jobs checkpoint, veracity does not), not already stopping.
        let victim = s
            .jobs
            .values()
            .filter(|j| {
                j.state == JobState::Running
                    && j.stop_reason == StopReason::None
                    && matches!(j.spec, JobSpec::Generate { .. })
                    && j.priority.index() > best_waiting
            })
            .max_by_key(|j| j.priority.index())
            .map(|j| j.id.clone());
        if let Some(id) = victim {
            let j = s.jobs.get_mut(&id).expect("victim exists");
            j.stop_reason = StopReason::Preempt;
            j.cancel.store(true, Ordering::Relaxed);
        }
    }

    fn update_gauges(&self, s: &SchedState) {
        let queued: usize = s.queues.iter().map(VecDeque::len).sum();
        self.rec.gauge("serve.queue_depth").set(queued as i64);
        self.rec.gauge("serve.running").set(s.running as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::Algorithm;
    use std::path::PathBuf;

    fn gen_spec(size: u64) -> JobSpec {
        JobSpec::Generate {
            algorithm: Algorithm::Pgpba,
            seed_graph: PathBuf::from("seed.txt"),
            size,
            fraction: 0.1,
            seed: 1,
            shards: 0,
            columnar: false,
            chunk_records: None,
        }
    }

    fn sched(workers: usize, max_queue: usize, budget: f64) -> Scheduler {
        Scheduler::new(workers, max_queue, budget, CostModel::default(), Recorder::new())
    }

    #[test]
    fn budget_zero_rejects_everything() {
        let s = sched(1, 100, 0.0);
        let r = s.admit(gen_spec(1000), Priority::Normal, None, false);
        assert!(matches!(r, Err(Reject::OverBudget { .. })), "{r:?}");
    }

    #[test]
    fn queue_bound_rejects_overflow() {
        let s = sched(1, 2, 100.0);
        assert!(s.admit(gen_spec(10), Priority::Normal, None, false).is_ok());
        assert!(s.admit(gen_spec(10), Priority::Normal, None, false).is_ok());
        let r = s.admit(gen_spec(10), Priority::Normal, None, false);
        assert!(matches!(r, Err(Reject::QueueFull { .. })), "{r:?}");
    }

    #[test]
    fn fifo_within_class_and_priority_across() {
        let s = sched(1, 100, 100.0);
        let a = s.admit(gen_spec(10), Priority::Normal, None, false).unwrap().id;
        let b = s.admit(gen_spec(10), Priority::Normal, None, false).unwrap().id;
        let hi = s.admit(gen_spec(10), Priority::High, None, false).unwrap().id;
        let lo = s.admit(gen_spec(10), Priority::Low, None, false).unwrap().id;
        // High first, then the two normals in submit order, then low.
        for expect in [&hi, &a, &b, &lo] {
            let got = s.next_job(0).expect("job available");
            assert_eq!(&got, expect);
            s.finish_job(&got, 0.0, Ok((1, None, None)));
        }
    }

    #[test]
    fn preemption_targets_the_weakest_running_generate_job() {
        let s = sched(1, 100, 100.0);
        let low = s.admit(gen_spec(10), Priority::Low, None, false).unwrap().id;
        assert_eq!(s.next_job(0).as_deref(), Some(low.as_str()));
        // Submitting a high-priority job with no free slot flags the runner.
        let _hi = s.admit(gen_spec(10), Priority::High, None, false).unwrap().id;
        let rec = s.get(&low).unwrap();
        assert!(rec.cancel.load(Ordering::Relaxed), "victim flag must be set");
        assert_eq!(rec.stop_reason, StopReason::Preempt);
        // The preempted job is requeued at the front of its class, resumable.
        let d = s.finish_job(&low, 0.1, Err(("preempted".into(), true)));
        assert_eq!(d, FinishDisposition::Requeued);
        let rec = s.get(&low).unwrap();
        assert_eq!(rec.state, JobState::Queued);
        assert!(rec.resume);
        assert_eq!(rec.preemptions, 1);
        assert!(!rec.cancel.load(Ordering::Relaxed), "flag cleared for the rerun");
    }

    #[test]
    fn recovered_ids_advance_the_counter() {
        let s = sched(1, 100, 100.0);
        let r = s.admit(gen_spec(10), Priority::Normal, Some("j-000007".into()), true).unwrap();
        assert_eq!(r.id, "j-000007");
        assert!(r.resume);
        let fresh = s.admit(gen_spec(10), Priority::Normal, None, false).unwrap();
        assert_eq!(fresh.id, "j-000008");
    }

    #[test]
    fn cancel_queued_is_immediate_and_running_is_flagged() {
        let s = sched(1, 100, 100.0);
        let a = s.admit(gen_spec(10), Priority::Normal, None, false).unwrap().id;
        let b = s.admit(gen_spec(10), Priority::Normal, None, false).unwrap().id;
        assert_eq!(s.next_job(0).as_deref(), Some(a.as_str()));
        assert_eq!(s.cancel(&b), Ok(true), "queued cancel is terminal");
        assert_eq!(s.get(&b).unwrap().state, JobState::Canceled);
        assert_eq!(s.cancel(&a), Ok(false), "running cancel is async");
        assert!(s.get(&a).unwrap().cancel.load(Ordering::Relaxed));
        let d = s.finish_job(&a, 0.1, Err(("preempted".into(), true)));
        assert_eq!(d, FinishDisposition::Terminal);
        assert_eq!(s.get(&a).unwrap().state, JobState::Canceled);
        assert!(s.cancel("j-999999").is_err());
    }

    #[test]
    fn drain_shutdown_parks_running_jobs() {
        let s = sched(1, 100, 100.0);
        let a = s.admit(gen_spec(10), Priority::Normal, None, false).unwrap().id;
        assert_eq!(s.next_job(0).as_deref(), Some(a.as_str()));
        s.begin_shutdown(false);
        assert!(s.get(&a).unwrap().cancel.load(Ordering::Relaxed));
        let d = s.finish_job(&a, 0.1, Err(("preempted".into(), true)));
        assert_eq!(d, FinishDisposition::Parked);
        assert_eq!(s.get(&a).unwrap().state, JobState::Queued);
        assert!(s.get(&a).unwrap().resume);
        assert!(s.next_job(0).is_none(), "stopping worker exits");
    }

    #[test]
    fn memory_placement_blocks_a_class_head_without_overtaking() {
        // Budget fits the small job but the big head blocks its class.
        let model = CostModel::default();
        let budget = 20.0 * model.memory_bytes_per_edge * 1e6 / 1e9; // ~20M edges worth
        let s = Scheduler::new(2, 100, budget, model, Recorder::new());
        let big = s.admit(gen_spec(15_000_000), Priority::Normal, None, false).unwrap().id;
        let big2 = s.admit(gen_spec(15_000_000), Priority::Normal, None, false).unwrap().id;
        let small_low = s.admit(gen_spec(1_000_000), Priority::Low, None, false).unwrap().id;
        // Worker 0 takes the first big job; worker 1 cannot take the second
        // (won't fit) and must not overtake within the class — it takes the
        // low-priority small one instead.
        assert_eq!(s.next_job(0).as_deref(), Some(big.as_str()));
        assert_eq!(s.next_job(1).as_deref(), Some(small_low.as_str()));
        s.finish_job(&big, 0.1, Ok((1, None, None)));
        assert_eq!(s.next_job(0).as_deref(), Some(big2.as_str()));
    }

    #[test]
    fn wait_terminal_returns_on_completion() {
        let s = Arc::new(sched(1, 100, 100.0));
        let a = s.admit(gen_spec(10), Priority::Normal, None, false).unwrap().id;
        let s2 = Arc::clone(&s);
        let a2 = a.clone();
        let t = std::thread::spawn(move || {
            let id = s2.next_job(0).unwrap();
            std::thread::sleep(Duration::from_millis(50));
            s2.finish_job(&id, 0.05, Ok((42, None, None)));
            a2
        });
        let rec = s.wait_terminal(&a, Duration::from_secs(5)).expect("known job");
        assert_eq!(rec.state, JobState::Done);
        assert_eq!(rec.edges, 42);
        t.join().unwrap();
        assert!(s.wait_terminal("j-404404", Duration::from_millis(1)).is_none());
    }
}
