//! # csb-serve — generation as a service
//!
//! A multi-tenant daemon that accepts generation and veracity jobs over a
//! newline-delimited JSON protocol, schedules them through a cost-model
//! driven admission controller with priority classes, runs them on a
//! bounded pool of worker slots, and survives `SIGKILL` by checkpointing
//! to a durable spool: on the next boot every unfinished job resumes
//! byte-identically from its last chunk barrier.
//!
//! The crate has five layers, each usable on its own:
//!
//! * [`proto`] — the wire grammar: requests, replies, [`JobSpec`].
//! * [`queue`] — the [`Scheduler`]: admission, FIFO-within-class
//!   priorities, memory-aware placement, preempt-and-requeue.
//! * [`spool`] — durable specs/results/outputs/checkpoints and crash
//!   recovery.
//! * [`server`] — the daemon itself ([`Server::start`]).
//! * [`client`] — a blocking [`Client`] for CLIs and load generators.
//!
//! Everything is std-only: `TcpListener` + threads, JSON via the csb-obs
//! writer/parser.

pub mod client;
pub mod proto;
pub mod queue;
pub mod server;
pub mod spool;

pub use client::Client;
pub use proto::{Algorithm, JobSpec, Priority, Request, MAX_LINE_BYTES, PROTO_VERSION};
pub use queue::{JobState, Reject, Scheduler, MAX_JOB_RESTARTS};
pub use server::{ServeConfig, Server, ShutdownMode};
pub use spool::Spool;
