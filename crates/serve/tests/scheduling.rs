//! End-to-end scheduling semantics through the wire protocol: admission
//! rejection under a zero budget, FIFO within a class, preempt-and-resume
//! byte-identity, and kill-the-daemon-and-restart recovery.

use csb_core::analysis::SeedAnalysis;
use csb_core::{GenJob, PgpbaConfig, SeedBundle};
use csb_graph::io::read_graph;
use csb_serve::{Algorithm, Client, JobSpec, Priority, ServeConfig, Server, ShutdownMode};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

fn temp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("csb-sched-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&d).ok();
    std::fs::create_dir_all(&d).expect("create temp dir");
    d
}

fn write_seed_graph(path: &Path) {
    let mut s = String::from("# csb-graph v1\n");
    for i in 0..32u32 {
        s.push_str(&format!("v\t{i}\t{}\n", 0x0A00_0001 + i));
    }
    for i in 0..96u32 {
        let a = (i * 7) % 32;
        let b = (i * 11 + 1) % 32;
        s.push_str(&format!(
            "e\t{a}\t{b}\t6\t{}\t443\t{}\t{}\t{}\t3\t5\t2\n",
            40_000 + i,
            10 + i,
            100 + i * 3,
            200 + i * 5
        ));
    }
    std::fs::write(path, s).expect("write seed graph");
}

fn gen_spec(seed_graph: &Path, size: u64, rng_seed: u64, chunk_records: usize) -> JobSpec {
    JobSpec::Generate {
        algorithm: Algorithm::Pgpba,
        seed_graph: seed_graph.to_path_buf(),
        size,
        fraction: 0.1,
        seed: rng_seed,
        shards: 0,
        columnar: false,
        chunk_records: Some(chunk_records),
    }
}

/// Runs the same job directly (no daemon, uninterrupted) and returns the
/// store bytes — the byte-identity reference.
fn reference_bytes(
    seed_graph: &Path,
    size: u64,
    rng_seed: u64,
    chunk_records: usize,
    scratch: &Path,
) -> Vec<u8> {
    let graph = read_graph(std::fs::File::open(seed_graph).expect("open seed")).expect("read seed");
    let analysis = SeedAnalysis::of(&graph);
    let bundle = SeedBundle { graph, analysis };
    let out = scratch.join("reference.csbstore");
    GenJob::pgpba(&bundle, PgpbaConfig { desired_size: size, fraction: 0.1, seed: rng_seed })
        .store(&out)
        .checkpoint(scratch.join("reference-ckpt"))
        .resume()
        .chunk_records(chunk_records)
        .checkpoint_every(1)
        .run()
        .expect("reference run");
    std::fs::read(&out).expect("read reference bytes")
}

fn wait_for_state(client: &mut Client, job: &str, state: &str, timeout: Duration) {
    let deadline = Instant::now() + timeout;
    loop {
        let v = client.status(job).expect("status");
        let got = v.get("state").and_then(|s| s.as_str()).unwrap_or("?").to_string();
        if got == state {
            return;
        }
        assert!(
            !matches!(got.as_str(), "done" | "failed" | "canceled"),
            "job {job} went terminal ({got}) while waiting for `{state}`"
        );
        assert!(Instant::now() < deadline, "job {job} never reached `{state}` (last: {got})");
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn zero_budget_rejects_all_submissions() {
    let root = temp_dir("budget0");
    let seed = root.join("seed.graph");
    write_seed_graph(&seed);
    let mut cfg = ServeConfig::new(root.join("spool"));
    cfg.workers = 1;
    cfg.mem_budget_gb = 0.0;
    let server = Server::start(cfg).expect("start");
    let mut client = Client::connect(server.addr()).expect("connect");
    let err = client
        .submit(&gen_spec(&seed, 4000, 1, 512), Priority::High)
        .expect_err("generate must be rejected");
    assert!(err.to_string().contains("exceeds"), "{err}");
    let veracity = JobSpec::Veracity {
        seed_store: root.join("a.csbstore"),
        synth_store: root.join("b.csbstore"),
    };
    let err = client.submit(&veracity, Priority::Normal).expect_err("veracity too");
    assert!(err.to_string().contains("exceeds"), "{err}");
    client.shutdown(true).expect("shutdown");
    server.wait();
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn fifo_within_a_class_on_one_worker() {
    let root = temp_dir("fifo");
    let seed = root.join("seed.graph");
    write_seed_graph(&seed);
    let mut cfg = ServeConfig::new(root.join("spool"));
    cfg.workers = 1;
    let server = Server::start(cfg).expect("start");
    let mut client = Client::connect(server.addr()).expect("connect");
    let ids: Vec<String> = (0..3)
        .map(|i| {
            client.submit(&gen_spec(&seed, 3000, 10 + i, 512), Priority::Normal).expect("submit")
        })
        .collect();
    let mut seqs = Vec::new();
    for id in &ids {
        let v = client.result_wait(id, Duration::from_secs(180)).expect("finishes");
        assert_eq!(v.get("state").and_then(|s| s.as_str()), Some("done"), "{v:?}");
        seqs.push(v.get("done_seq").and_then(|s| s.as_u64()).expect("done_seq"));
    }
    assert!(seqs.windows(2).all(|w| w[0] < w[1]), "completion order {seqs:?} is not FIFO");
    client.shutdown(true).expect("shutdown");
    server.wait();
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn preempted_job_resumes_byte_identical() {
    let root = temp_dir("preempt");
    let seed = root.join("seed.graph");
    write_seed_graph(&seed);
    let reference = reference_bytes(&seed, 200_000, 5, 256, &root);

    let mut cfg = ServeConfig::new(root.join("spool"));
    cfg.workers = 1;
    let server = Server::start(cfg).expect("start");
    let mut client = Client::connect(server.addr()).expect("connect");

    // A low-priority job occupies the only worker...
    let low = client.submit(&gen_spec(&seed, 200_000, 5, 256), Priority::Low).expect("submit low");
    wait_for_state(&mut client, &low, "running", Duration::from_secs(60));
    // ...then a high-priority job preempts it.
    let high = client.submit(&gen_spec(&seed, 3000, 6, 256), Priority::High).expect("submit high");
    let vh = client.result_wait(&high, Duration::from_secs(180)).expect("high finishes");
    assert_eq!(vh.get("state").and_then(|s| s.as_str()), Some("done"), "{vh:?}");
    let vl = client.result_wait(&low, Duration::from_secs(300)).expect("low finishes");
    assert_eq!(vl.get("state").and_then(|s| s.as_str()), Some("done"), "{vl:?}");
    let preemptions = vl.get("preemptions").and_then(|s| s.as_u64()).unwrap_or(0);
    assert!(preemptions >= 1, "low job was never preempted: {vl:?}");
    // The high job finished strictly before the preempted low job.
    let sh = vh.get("done_seq").and_then(|s| s.as_u64()).expect("high seq");
    let sl = vl.get("done_seq").and_then(|s| s.as_u64()).expect("low seq");
    assert!(sh < sl, "high ({sh}) must complete before the preempted low ({sl})");

    let out = vl.get("out").and_then(|s| s.as_str()).expect("out path").to_string();
    let bytes = std::fs::read(&out).expect("read preempted output");
    assert_eq!(bytes, reference, "preempt-and-resume output differs from the uninterrupted run");
    client.shutdown(true).expect("shutdown");
    server.wait();
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn shutdown_now_parks_and_the_next_boot_resumes_byte_identical() {
    let root = temp_dir("restart");
    let seed = root.join("seed.graph");
    write_seed_graph(&seed);
    let reference = reference_bytes(&seed, 400_000, 9, 256, &root);
    let spool = root.join("spool");

    // Boot 1: start the job, then pull the plug mid-run.
    let mut cfg = ServeConfig::new(&spool);
    cfg.workers = 1;
    let server = Server::start(cfg.clone()).expect("boot 1");
    let mut client = Client::connect(server.addr()).expect("connect");
    let job = client.submit(&gen_spec(&seed, 400_000, 9, 256), Priority::Normal).expect("submit");
    wait_for_state(&mut client, &job, "running", Duration::from_secs(60));
    std::thread::sleep(Duration::from_millis(150));
    drop(client);
    server.shutdown(ShutdownMode::Now);
    assert!(
        !spool.join(format!("jobs/{job}.result.json")).exists(),
        "a parked job must not have a terminal result on disk"
    );

    // Boot 2 on the same spool: recovery re-admits the job with resume.
    let server = Server::start(cfg).expect("boot 2");
    let mut client = Client::connect(server.addr()).expect("reconnect");
    let v = client.result_wait(&job, Duration::from_secs(300)).expect("resumed job finishes");
    assert_eq!(v.get("state").and_then(|s| s.as_str()), Some("done"), "{v:?}");
    assert_eq!(v.get("job").and_then(|s| s.as_str()), Some(job.as_str()), "id must survive");
    let out = v.get("out").and_then(|s| s.as_str()).expect("out path").to_string();
    let bytes = std::fs::read(&out).expect("read resumed output");
    assert_eq!(bytes, reference, "kill-and-restart output differs from the uninterrupted run");
    assert!(
        spool.join(format!("jobs/{job}.result.json")).exists(),
        "terminal result must be persisted after completion"
    );
    client.shutdown(true).expect("shutdown");
    server.wait();
    std::fs::remove_dir_all(&root).ok();
}
