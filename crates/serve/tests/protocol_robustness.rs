//! Fuzz-style protocol robustness: malformed, truncated, oversized, and
//! binary request lines, plus mid-request disconnects, must never panic a
//! connection thread or wedge a worker slot — the daemon keeps serving real
//! jobs afterwards.

use csb_serve::{Client, ServeConfig, Server};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::time::Duration;

fn temp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("csb-serve-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&d).ok();
    std::fs::create_dir_all(&d).expect("create temp dir");
    d
}

/// A small deterministic seed graph in the text format (32 hosts, 96 flows).
fn write_seed_graph(path: &Path) {
    let mut s = String::from("# csb-graph v1\n");
    for i in 0..32u32 {
        s.push_str(&format!("v\t{i}\t{}\n", 0x0A00_0001 + i));
    }
    for i in 0..96u32 {
        let a = (i * 7) % 32;
        let b = (i * 11 + 1) % 32;
        s.push_str(&format!(
            "e\t{a}\t{b}\t6\t{}\t443\t{}\t{}\t{}\t3\t5\t2\n",
            40_000 + i,
            10 + i,
            100 + i * 3,
            200 + i * 5
        ));
    }
    std::fs::write(path, s).expect("write seed graph");
}

fn read_reply(stream: &mut TcpStream) -> String {
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("read reply");
    line.trim().to_string()
}

#[test]
fn hostile_input_never_wedges_the_daemon() {
    let root = temp_dir("robust");
    let seed = root.join("seed.graph");
    write_seed_graph(&seed);
    let mut cfg = ServeConfig::new(root.join("spool"));
    cfg.workers = 1;
    let server = Server::start(cfg).expect("start server");
    let addr = server.addr();

    // Malformed JSON: structured error reply, connection stays usable.
    {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.write_all(b"this is not json\n").unwrap();
        let reply = read_reply(&mut s);
        assert!(reply.contains("\"ok\":false"), "{reply}");
        assert!(reply.contains("bad JSON"), "{reply}");
        // Truncated JSON on the same connection.
        s.write_all(b"{\"cmd\":\"ping\"\n").unwrap();
        let reply = read_reply(&mut s);
        assert!(reply.contains("\"ok\":false"), "{reply}");
        // Unknown command, unknown job, missing fields: all structured.
        for bad in
            ["{\"cmd\":\"frobnicate\"}\n", "{\"cmd\":\"status\"}\n", "{\"cmd\":\"submit\"}\n"]
        {
            s.write_all(bad.as_bytes()).unwrap();
            let reply = read_reply(&mut s);
            assert!(reply.contains("\"ok\":false"), "{bad:?} -> {reply}");
        }
        // Binary garbage line.
        s.write_all(&[0xff, 0xfe, 0x00, 0x01, b'\n']).unwrap();
        let reply = read_reply(&mut s);
        assert!(reply.contains("\"ok\":false"), "{reply}");
        // The same connection still answers a well-formed request.
        s.write_all(b"{\"cmd\":\"ping\"}\n").unwrap();
        let reply = read_reply(&mut s);
        assert!(reply.contains("\"ok\":true"), "{reply}");
        assert!(reply.contains("\"pong\":true"), "{reply}");
    }

    // Oversized line: one error reply, then the server closes the stream.
    {
        let mut s = TcpStream::connect(addr).expect("connect");
        let huge = vec![b'a'; csb_serve::MAX_LINE_BYTES + 4096];
        s.write_all(&huge).unwrap();
        s.flush().unwrap();
        let mut everything = String::new();
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        s.read_to_string(&mut everything).expect("server must close the stream");
        assert!(everything.contains("\"ok\":false"), "{everything}");
        assert!(everything.contains("exceeds"), "{everything}");
    }

    // Mid-request disconnects: write partial lines and hang up, rapidly.
    for i in 0..20 {
        let mut s = TcpStream::connect(addr).expect("connect");
        if i % 3 == 0 {
            s.write_all(b"{\"cmd\":\"pi").unwrap();
        } else if i % 3 == 1 {
            s.write_all(b"{\"cmd\":\"ping\"}\n{\"cmd\":\"li").unwrap();
        }
        drop(s); // immediate disconnect, sometimes mid-line
    }

    // Empty lines are ignored, not errors.
    {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.write_all(b"\n\n{\"cmd\":\"ping\"}\n").unwrap();
        let reply = read_reply(&mut s);
        assert!(reply.contains("\"pong\":true"), "{reply}");
    }

    // After all that abuse a real job still runs to completion.
    let mut client = Client::connect(addr).expect("client connect");
    assert_eq!(client.ping().expect("ping"), u64::from(csb_serve::PROTO_VERSION));
    let spec = csb_serve::JobSpec::Generate {
        algorithm: csb_serve::Algorithm::Pgpba,
        seed_graph: seed,
        size: 4000,
        fraction: 0.1,
        seed: 7,
        shards: 0,
        columnar: false,
        chunk_records: Some(512),
    };
    let job = client.submit(&spec, csb_serve::Priority::Normal).expect("submit");
    let done = client.result_wait(&job, Duration::from_secs(120)).expect("job finishes");
    assert_eq!(done.get("state").and_then(|v| v.as_str()), Some("done"), "{done:?}");
    let edges = done.get("edges").and_then(|v| v.as_u64()).unwrap_or(0);
    assert!(edges >= 4000, "expected >= 4000 edges, got {edges}");
    let out = done.get("out").and_then(|v| v.as_str()).expect("out path");
    assert!(std::fs::metadata(out).map(|m| m.len() > 0).unwrap_or(false), "{out} missing");

    // Submitting a nonexistent seed path is rejected up front, not on a
    // worker minutes later.
    let bad = csb_serve::JobSpec::Generate {
        algorithm: csb_serve::Algorithm::Pgpba,
        seed_graph: root.join("no-such-seed.graph"),
        size: 4000,
        fraction: 0.1,
        seed: 7,
        shards: 0,
        columnar: false,
        chunk_records: None,
    };
    let err = client.submit(&bad, csb_serve::Priority::Normal).expect_err("must reject");
    assert!(err.to_string().contains("not a file"), "{err}");

    client.shutdown(true).expect("shutdown drain");
    server.wait();
    std::fs::remove_dir_all(&root).ok();
}
