//! The Fig. 4 decision flow: classify traffic patterns into attacks.
//!
//! Destination-based patterns catch victim-centric anomalies (floods toward
//! one host, port scans *of* one host); source-based patterns catch
//! attacker-centric ones (network scans *from* one host). DDoS is a flood
//! whose destination pattern shows many distinct sources.

use crate::params::Thresholds;
use crate::pattern::{destination_patterns, source_patterns, TrafficPattern};
use csb_net::flow::{FlowRecord, Protocol};
use csb_net::trace::AttackKind;

/// One raised alarm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Detection {
    /// Classified attack kind.
    pub kind: AttackKind,
    /// The detection IP the pattern was keyed on (victim for
    /// destination-based detections, attacker for source-based ones).
    pub ip: u32,
}

/// Maximum robust dispersion (MAD/median of flow sizes) for the "small
/// deviation" flood criterion. The attack's uniform junk flows dominate the
/// flow count, so the median-based dispersion stays near 0 even when a few
/// large benign transfers share the victim IP.
const FLOOD_DISPERSION_MAX: f64 = 0.5;

/// Classifies one destination-based pattern (victim perspective).
fn classify_destination(ip: u32, p: &TrafficPattern, t: &Thresholds) -> Option<Detection> {
    // Paper: "checks whether the flow size of an individual flow is small,
    // the number of packets-per-flow is small, and whether a large number of
    // flows appears". The typical (median) flow is used so that a handful of
    // legitimate large transfers sharing the victim IP cannot mask the
    // thousands of tiny attack flows.
    // "Small" is <=: scan and flood probes (SYN+RST, ~0-40 B) sit exactly at
    // the benign minimum the thresholds are trained to.
    let many_small_flows =
        p.n_flow as f64 > t.nf_t && p.median_flow_size <= t.fs_lt && p.median_npacket <= t.np_lt;
    if many_small_flows {
        // "If the fraction N(ACK)/N(SYN) is small and ... a small number of
        // destination ports, the system encounters a TCP SYN flood." The
        // port criterion is read as concentration: the flood's flows pile
        // onto one port even when benign flows to other ports share the IP.
        if p.ack_syn_ratio() < t.sa_t && p.top_port_share() > 0.8 {
            let kind =
                if p.n_sip as f64 > t.sip_t { AttackKind::Ddos } else { AttackKind::SynFlood };
            return Some(Detection { kind, ip });
        }
        // "If a small number of source IP traffic is generated and the
        // number of destination ports is high, that traffic is assumed to be
        // a host scanning."
        if (p.n_sip as f64) <= t.sip_t && p.n_dport as f64 > t.dp_ht {
            return Some(Detection { kind: AttackKind::HostScan, ip });
        }
    }
    // "Most [flooding] attacks create a large total bandwidth and high total
    // packet count ... small deviation in the packet and flow size." A flood
    // looks either uniform (many equal-size junk flows — low CV) or like one
    // monster stream (a single 5-tuple carrying almost all the bytes, e.g. an
    // ICMP echo flood aggregated into one flow).
    if p.sum_flow_size as f64 > t.fs_ht
        && p.sum_npacket as f64 > t.np_ht
        && (p.robust_dispersion() < FLOOD_DISPERSION_MAX || p.max_flow_share() > 0.8)
    {
        let kind = if p.n_sip as f64 > t.sip_t {
            AttackKind::Ddos
        } else {
            match p.dominant_protocol() {
                Protocol::Icmp => AttackKind::IcmpFlood,
                Protocol::Udp => AttackKind::UdpFlood,
                Protocol::Tcp => AttackKind::TcpFlood,
            }
        };
        return Some(Detection { kind, ip });
    }
    None
}

/// Classifies one source-based pattern (attacker perspective).
fn classify_source(ip: u32, p: &TrafficPattern, t: &Thresholds) -> Option<Detection> {
    // "A network scanning makes many destination IP addresses"; flows are
    // small probes. The paper notes total packets/bandwidth (and by the same
    // token port counts, when the scanner also port-scans) "cannot be used
    // to detect scanning", so only the fan-out and flow-shape criteria apply.
    if p.n_dip as f64 > t.dip_t && p.median_flow_size <= t.fs_lt && p.median_npacket <= t.np_lt {
        return Some(Detection { kind: AttackKind::NetworkScan, ip });
    }
    None
}

/// Runs the full Fig. 4 detection flow over a set of flows.
///
/// ```
/// use csb_ids::{detect, Thresholds};
/// use csb_net::assembler::FlowAssembler;
/// use csb_net::packet::ip;
/// use csb_net::trace::AttackKind;
/// use csb_net::traffic::attacks::AttackInjector;
///
/// let mut trace = AttackInjector::new(1)
///     .syn_flood(ip(1, 2, 3, 4), ip(10, 0, 0, 9), 80, 0, 1_000_000, 500);
/// trace.sort();
/// let flows = FlowAssembler::assemble(&trace.packets);
/// let alarms = detect(&flows, &Thresholds::default());
/// assert!(alarms.iter().any(|d| d.kind == AttackKind::SynFlood));
/// ```
pub fn detect(flows: &[FlowRecord], thresholds: &Thresholds) -> Vec<Detection> {
    let _span = csb_obs::span_cat("ids.detect", "ids");
    thresholds.validate();
    let mut out = Vec::new();
    let mut dst: Vec<(u32, TrafficPattern)> = destination_patterns(flows).into_iter().collect();
    dst.sort_unstable_by_key(|&(ip, _)| ip);
    for (ip, p) in &dst {
        if let Some(d) = classify_destination(*ip, p, thresholds) {
            out.push(d);
        }
    }
    let mut src: Vec<(u32, TrafficPattern)> = source_patterns(flows).into_iter().collect();
    src.sort_unstable_by_key(|&(ip, _)| ip);
    for (ip, p) in &src {
        if let Some(d) = classify_source(*ip, p, thresholds) {
            out.push(d);
        }
    }
    csb_obs::counter_add("ids.flows_scanned", flows.len() as u64);
    csb_obs::counter_add("ids.detections", out.len() as u64);
    csb_obs::obs_debug!("ids: {} detections over {} flows", out.len(), flows.len());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use csb_net::assembler::FlowAssembler;
    use csb_net::packet::ip;
    use csb_net::traffic::attacks::{AttackInjector, DEFAULT_ATTACKER};

    const VICTIM: u32 = ip(10, 0, 0, 9);

    fn flows_of(trace: csb_net::trace::Trace) -> Vec<FlowRecord> {
        let mut t = trace;
        t.sort();
        FlowAssembler::assemble(&t.packets)
    }

    #[test]
    fn detects_syn_flood() {
        let trace =
            AttackInjector::new(1).syn_flood(DEFAULT_ATTACKER, VICTIM, 80, 0, 2_000_000, 500);
        let det = detect(&flows_of(trace), &Thresholds::default());
        assert!(
            det.iter().any(|d| d.kind == AttackKind::SynFlood && d.ip == VICTIM),
            "missed SYN flood: {det:?}"
        );
    }

    #[test]
    fn detects_ddos_as_distributed() {
        let bots: Vec<u32> = (0..20).map(|i| ip(198, 51, 100, i + 1)).collect();
        let trace = AttackInjector::new(2).ddos(&bots, VICTIM, 443, 0, 2_000_000, 50);
        let det = detect(&flows_of(trace), &Thresholds::default());
        assert!(
            det.iter().any(|d| d.kind == AttackKind::Ddos && d.ip == VICTIM),
            "missed DDoS: {det:?}"
        );
    }

    #[test]
    fn detects_host_scan() {
        let trace =
            AttackInjector::new(3).host_scan(DEFAULT_ATTACKER, VICTIM, 0, 3_000_000, 300, 60);
        let det = detect(&flows_of(trace), &Thresholds::default());
        assert!(
            det.iter().any(|d| d.kind == AttackKind::HostScan && d.ip == VICTIM),
            "missed host scan: {det:?}"
        );
    }

    #[test]
    fn detects_network_scan() {
        let trace = AttackInjector::new(4).network_scan(
            DEFAULT_ATTACKER,
            ip(10, 3, 0, 1),
            200,
            22,
            0,
            3_000_000,
        );
        let det = detect(&flows_of(trace), &Thresholds::default());
        assert!(
            det.iter().any(|d| d.kind == AttackKind::NetworkScan && d.ip == DEFAULT_ATTACKER),
            "missed network scan: {det:?}"
        );
    }

    #[test]
    fn detects_icmp_flood() {
        let trace =
            AttackInjector::new(5).icmp_flood(DEFAULT_ATTACKER, VICTIM, 0, 2_000_000, 5_000);
        let det = detect(&flows_of(trace), &Thresholds::default());
        assert!(
            det.iter().any(|d| d.kind == AttackKind::IcmpFlood && d.ip == VICTIM),
            "missed ICMP flood: {det:?}"
        );
    }

    #[test]
    fn detects_udp_flood() {
        let trace = AttackInjector::new(6).udp_flood(DEFAULT_ATTACKER, VICTIM, 0, 2_000_000, 5_000);
        let det = detect(&flows_of(trace), &Thresholds::default());
        assert!(
            det.iter().any(|d| (d.kind == AttackKind::UdpFlood || d.kind == AttackKind::Ddos)
                && d.ip == VICTIM),
            "missed UDP flood: {det:?}"
        );
    }

    #[test]
    fn benign_traffic_is_quiet() {
        use csb_net::traffic::sim::{TrafficSim, TrafficSimConfig};
        let trace = TrafficSim::new(TrafficSimConfig {
            duration_secs: 30.0,
            sessions_per_sec: 10.0,
            seed: 7,
            ..TrafficSimConfig::default()
        })
        .generate();
        let flows = FlowAssembler::assemble(&trace.packets);
        let trained = crate::train::train_thresholds(&flows);
        let det = detect(&flows, &trained);
        assert!(det.len() <= 2, "benign traffic should raise (almost) no alarms: {det:?}");
    }

    #[test]
    fn empty_flows_no_detections() {
        assert!(detect(&[], &Thresholds::default()).is_empty());
    }
}
