//! Threshold training.
//!
//! The paper: "this approach uses network driven values for the threshold
//! parameters ... training must be used to set the threshold values based on
//! the parameters of each target network." We train each Table I threshold
//! from quantiles of the corresponding statistic over *benign* traffic, with
//! a safety margin.

use crate::params::Thresholds;
use crate::pattern::{destination_patterns, source_patterns};
use csb_net::flow::FlowRecord;
use csb_stats::summary::quantile;

/// Quantile used for "maximum normal" thresholds.
const HIGH_Q: f64 = 0.99;
/// Multiplicative safety margin above the benign quantile.
const MARGIN: f64 = 2.0;

fn high_threshold(values: &mut [f64], floor: f64) -> f64 {
    if values.is_empty() {
        return floor;
    }
    (quantile(values, HIGH_Q) * MARGIN).max(floor)
}

/// Learns thresholds from benign flows.
///
/// Low thresholds (`fs-LT`, `np-LT`, `dp-LT`) bound what "suspiciously
/// small" means and are taken from low quantiles of benign per-flow
/// statistics; high thresholds from high quantiles of per-IP aggregates.
pub fn train_thresholds(benign: &[FlowRecord]) -> Thresholds {
    let defaults = Thresholds::default();
    if benign.is_empty() {
        return defaults;
    }
    let dst = destination_patterns(benign);
    let src = source_patterns(benign);

    let mut n_flow: Vec<f64> = dst.values().map(|p| p.n_flow as f64).collect();
    let mut n_dport: Vec<f64> = dst.values().map(|p| p.n_dport as f64).collect();
    let mut n_dip: Vec<f64> = src.values().map(|p| p.n_dip as f64).collect();
    let mut sum_fs: Vec<f64> = dst.values().map(|p| p.sum_flow_size as f64).collect();
    let mut sum_np: Vec<f64> = dst.values().map(|p| p.sum_npacket as f64).collect();
    let mut n_sip: Vec<f64> = dst.values().map(|p| p.n_sip as f64).collect();

    // Per-flow smallness bounds from benign per-flow statistics.
    let mut flow_sizes: Vec<f64> = benign.iter().map(|f| f.total_bytes() as f64).collect();
    let mut flow_pkts: Vec<f64> = benign.iter().map(|f| f.total_pkts() as f64).collect();
    let fs_lt = quantile(&mut flow_sizes, 0.10).max(40.0);
    let np_lt = quantile(&mut flow_pkts, 0.10).max(2.0);

    // Table I describes sa-T as the *minimum normal* N(ACK)/N(SYN): benign
    // connections carry many ACK-flagged data packets per SYN, so the benign
    // low quantile sits well above a flood's near-zero ratio. Halve it for
    // margin, and never go below the conservative default.
    let mut ratios: Vec<f64> = dst
        .values()
        .filter(|p| p.n_syn > 0)
        .map(|p| p.ack_syn_ratio())
        .filter(|r| r.is_finite())
        .collect();
    let sa_t = if ratios.is_empty() {
        defaults.sa_t
    } else {
        (quantile(&mut ratios, 0.05) * 0.5).max(defaults.sa_t)
    };

    let t = Thresholds {
        dip_t: high_threshold(&mut n_dip, 10.0),
        sip_t: high_threshold(&mut n_sip, 4.0),
        dp_lt: quantile(&mut n_dport, 0.5).max(3.0),
        dp_ht: high_threshold(&mut n_dport.clone(), 20.0),
        nf_t: high_threshold(&mut n_flow, 20.0),
        fs_lt,
        fs_ht: high_threshold(&mut sum_fs, 1_000_000.0),
        np_lt,
        np_ht: high_threshold(&mut sum_np, 2_000.0),
        sa_t,
    };
    // dp_lt could exceed dp_ht on degenerate data; keep ordering.
    let t = if t.dp_lt > t.dp_ht { Thresholds { dp_lt: t.dp_ht / 2.0, ..t } } else { t };
    t.validate();
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use csb_net::assembler::FlowAssembler;
    use csb_net::traffic::sim::{TrafficSim, TrafficSimConfig};

    fn benign_flows(seed: u64) -> Vec<FlowRecord> {
        let trace = TrafficSim::new(TrafficSimConfig {
            duration_secs: 30.0,
            sessions_per_sec: 15.0,
            seed,
            ..TrafficSimConfig::default()
        })
        .generate();
        FlowAssembler::assemble(&trace.packets)
    }

    #[test]
    fn trained_thresholds_validate_and_exceed_benign_levels() {
        let flows = benign_flows(1);
        let t = train_thresholds(&flows);
        t.validate();
        // Every destination pattern in the training data must be under the
        // flow-count threshold (that is what "maximum normal" means).
        let dst = destination_patterns(&flows);
        let max_flows = dst.values().map(|p| p.n_flow).max().expect("non-empty") as f64;
        assert!(t.nf_t >= max_flows * 0.9, "nf_t {} vs max benign {max_flows}", t.nf_t);
    }

    #[test]
    fn empty_training_falls_back_to_defaults() {
        assert_eq!(train_thresholds(&[]), Thresholds::default());
    }

    #[test]
    fn training_is_deterministic() {
        let flows = benign_flows(2);
        assert_eq!(train_thresholds(&flows), train_thresholds(&flows));
    }
}
