//! Detection evaluation against ground-truth attack labels.

use crate::detector::Detection;
use csb_net::trace::{AttackKind, AttackLabel};
use csb_net::LabeledFlow;

/// Precision/recall report for one detection run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalReport {
    /// Labels matched by at least one detection.
    pub true_positives: usize,
    /// Detections matching no label.
    pub false_positives: usize,
    /// Labels no detection matched.
    pub false_negatives: usize,
}

impl EvalReport {
    /// Precision = TP / (TP + FP); 1.0 when nothing was detected.
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// Recall = TP / (TP + FN); 1.0 when nothing was injected.
    pub fn recall(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// F1 score (harmonic mean of precision and recall).
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// Kind compatibility: DDoS is a distributed flood, so a DDoS detection
/// matches any flood label and vice versa; Smurf/Fraggle are amplification
/// floods a flow-level detector legitimately reports as ICMP/UDP floods (or
/// DDoS, given the many reflector sources); the specific flood kinds must
/// otherwise agree.
fn kinds_match(detected: AttackKind, labeled: AttackKind) -> bool {
    use AttackKind::*;
    if detected == labeled {
        return true;
    }
    let flood = |k: AttackKind| {
        matches!(k, SynFlood | IcmpFlood | UdpFlood | TcpFlood | Ddos | Smurf | Fraggle)
    };
    match (detected, labeled) {
        (Ddos, l) if flood(l) => true,
        (d, Ddos) if flood(d) => true,
        (IcmpFlood, Smurf) | (Smurf, IcmpFlood) => true,
        (UdpFlood, Fraggle) | (Fraggle, UdpFlood) => true,
        _ => false,
    }
}

/// A detection matches a label when kinds are compatible and the detection
/// IP is the label's victim or attacker.
fn matches(det: &Detection, label: &AttackLabel) -> bool {
    kinds_match(det.kind, label.kind) && (det.ip == label.victim || det.ip == label.attacker)
}

/// Time-to-detection of one labeled attack under streaming detection — the
/// quantity the paper's introduction says a graph-IDS benchmark must make
/// measurable ("performance, in terms of threat detection time").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetectionDelay {
    /// The ground-truth attack.
    pub label: AttackLabel,
    /// Microseconds from attack start to the close of the window that first
    /// raised a matching alarm; `None` when never detected.
    pub delay_micros: Option<u64>,
}

/// Computes per-attack detection delays from streaming alarms.
pub fn detection_delays(
    alarms: &[crate::streaming::TimedDetection],
    labels: &[AttackLabel],
) -> Vec<DetectionDelay> {
    labels
        .iter()
        .map(|label| {
            let delay_micros = alarms
                .iter()
                .filter(|a| matches(&a.detection, label))
                .map(|a| a.window_end_micros.saturating_sub(label.start_micros))
                .min();
            DetectionDelay { label: *label, delay_micros }
        })
        .collect()
}

/// Scores detections against labels.
pub fn evaluate(detections: &[Detection], labels: &[AttackLabel]) -> EvalReport {
    let mut tp = 0usize;
    let mut fn_ = 0usize;
    for label in labels {
        if detections.iter().any(|d| matches(d, label)) {
            tp += 1;
        } else {
            fn_ += 1;
        }
    }
    let fp = detections.iter().filter(|d| !labels.iter().any(|l| matches(d, l))).count();
    EvalReport { true_positives: tp, false_positives: fp, false_negatives: fn_ }
}

/// Flow-level precision/recall against campaign ground-truth labels: a flow
/// is *predicted* malicious when either endpoint carries a detection, and is
/// *actually* malicious when its label says so.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowEvalReport {
    /// Total flows scored.
    pub flows: usize,
    /// Labeled flows touching a detected host.
    pub true_positives: usize,
    /// Benign flows touching a detected host.
    pub false_positives: usize,
    /// Labeled flows touching no detected host.
    pub false_negatives: usize,
    /// Benign flows touching no detected host.
    pub true_negatives: usize,
    /// Per kill-chain-stage recall breakdown (stages with zero labeled flows
    /// are omitted).
    pub per_stage: Vec<StageEval>,
}

/// Per-stage slice of a [`FlowEvalReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageEval {
    /// Campaign id.
    pub campaign: u32,
    /// Kill-chain stage index.
    pub stage: u8,
    /// Attack-class code of the stage's flows.
    pub class: u8,
    /// Labeled flows of this stage.
    pub flows: usize,
    /// Of those, flows touching a detected host.
    pub detected: usize,
}

impl FlowEvalReport {
    /// Precision = TP / (TP + FP); 1.0 when nothing was predicted.
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// Recall = TP / (TP + FN); 1.0 when nothing was labeled.
    pub fn recall(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// F1 score.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// Scores detections against per-flow campaign ground truth. Detections are
/// host-granular (`Detection { ip, .. }`), so the prediction rule is: a flow
/// is flagged iff its originator or responder is a detected host.
pub fn evaluate_flows(flows: &[LabeledFlow], detections: &[Detection]) -> FlowEvalReport {
    use std::collections::{BTreeMap, HashSet};
    let flagged: HashSet<u32> = detections.iter().map(|d| d.ip).collect();
    let (mut tp, mut fp, mut fn_, mut tn) = (0usize, 0usize, 0usize, 0usize);
    let mut stages: BTreeMap<(u32, u8, u8), (usize, usize)> = BTreeMap::new();
    for lf in flows {
        let predicted = flagged.contains(&lf.flow.src_ip) || flagged.contains(&lf.flow.dst_ip);
        if lf.label.is_attack() {
            let entry = stages
                .entry((lf.label.campaign, lf.label.stage, lf.label.class.code()))
                .or_insert((0, 0));
            entry.0 += 1;
            if predicted {
                entry.1 += 1;
                tp += 1;
            } else {
                fn_ += 1;
            }
        } else if predicted {
            fp += 1;
        } else {
            tn += 1;
        }
    }
    let per_stage = stages
        .into_iter()
        .map(|((campaign, stage, class), (flows, detected))| StageEval {
            campaign,
            stage,
            class,
            flows,
            detected,
        })
        .collect();
    FlowEvalReport {
        flows: flows.len(),
        true_positives: tp,
        false_positives: fp,
        false_negatives: fn_,
        true_negatives: tn,
        per_stage,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn label(kind: AttackKind, attacker: u32, victim: u32) -> AttackLabel {
        AttackLabel { kind, attacker, victim, start_micros: 0, end_micros: 1 }
    }

    #[test]
    fn perfect_detection() {
        let labels = vec![label(AttackKind::SynFlood, 1, 2)];
        let dets = vec![Detection { kind: AttackKind::SynFlood, ip: 2 }];
        let r = evaluate(&dets, &labels);
        assert_eq!(r.true_positives, 1);
        assert_eq!(r.false_positives, 0);
        assert_eq!(r.false_negatives, 0);
        assert_eq!(r.precision(), 1.0);
        assert_eq!(r.recall(), 1.0);
        assert_eq!(r.f1(), 1.0);
    }

    #[test]
    fn missed_and_spurious() {
        let labels = vec![label(AttackKind::HostScan, 1, 2), label(AttackKind::UdpFlood, 3, 4)];
        let dets = vec![
            Detection { kind: AttackKind::HostScan, ip: 2 },
            Detection { kind: AttackKind::NetworkScan, ip: 99 },
        ];
        let r = evaluate(&dets, &labels);
        assert_eq!(r.true_positives, 1);
        assert_eq!(r.false_positives, 1);
        assert_eq!(r.false_negatives, 1);
        assert!((r.precision() - 0.5).abs() < 1e-12);
        assert!((r.recall() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ddos_matches_flood_labels() {
        let labels = vec![label(AttackKind::SynFlood, 1, 2)];
        let dets = vec![Detection { kind: AttackKind::Ddos, ip: 2 }];
        assert_eq!(evaluate(&dets, &labels).true_positives, 1);
        // But scans are not floods.
        let scan_labels = vec![label(AttackKind::HostScan, 1, 2)];
        assert_eq!(evaluate(&dets, &scan_labels).true_positives, 0);
    }

    #[test]
    fn wrong_ip_does_not_match() {
        let labels = vec![label(AttackKind::SynFlood, 1, 2)];
        let dets = vec![Detection { kind: AttackKind::SynFlood, ip: 7 }];
        let r = evaluate(&dets, &labels);
        assert_eq!(r.true_positives, 0);
        assert_eq!(r.false_positives, 1);
    }

    #[test]
    fn empty_cases() {
        let r = evaluate(&[], &[]);
        assert_eq!(r.precision(), 1.0);
        assert_eq!(r.recall(), 1.0);
    }

    #[test]
    fn amplification_attacks_match_their_flood_signatures() {
        let smurf = vec![label(AttackKind::Smurf, 1, 2)];
        let icmp_det = vec![Detection { kind: AttackKind::IcmpFlood, ip: 2 }];
        assert_eq!(evaluate(&icmp_det, &smurf).true_positives, 1);
        let fraggle = vec![label(AttackKind::Fraggle, 1, 2)];
        let udp_det = vec![Detection { kind: AttackKind::UdpFlood, ip: 2 }];
        assert_eq!(evaluate(&udp_det, &fraggle).true_positives, 1);
        // But not cross-wise.
        assert_eq!(evaluate(&icmp_det, &fraggle).true_positives, 0);
    }

    fn lf(src: u32, dst: u32, label: csb_net::FlowLabel) -> LabeledFlow {
        use csb_net::flow::{FlowRecord, Protocol, TcpConnState};
        LabeledFlow {
            flow: FlowRecord {
                src_ip: src,
                dst_ip: dst,
                protocol: Protocol::Tcp,
                src_port: 40000,
                dst_port: 80,
                duration_ms: 10,
                out_bytes: 100,
                in_bytes: 200,
                out_pkts: 3,
                in_pkts: 2,
                state: TcpConnState::Sf,
                syn_count: 1,
                ack_count: 2,
                first_ts_micros: 0,
            },
            label,
        }
    }

    #[test]
    fn flow_eval_scores_against_campaign_labels() {
        use csb_net::{AttackClass, FlowLabel};
        let probe = FlowLabel { campaign: 1, stage: 0, class: AttackClass::Probe };
        let exfil = FlowLabel { campaign: 1, stage: 3, class: AttackClass::Exfil };
        let flows = vec![
            lf(100, 2, probe),             // attacker 100 detected -> TP
            lf(100, 3, probe),             // TP
            lf(50, 7, exfil),              // nobody detected -> FN
            lf(8, 9, FlowLabel::BENIGN),   // benign, undetected -> TN
            lf(100, 9, FlowLabel::BENIGN), // benign but touches detected host -> FP
        ];
        let dets = vec![Detection { kind: AttackKind::HostScan, ip: 100 }];
        let r = evaluate_flows(&flows, &dets);
        assert_eq!(r.flows, 5);
        assert_eq!(r.true_positives, 2);
        assert_eq!(r.false_positives, 1);
        assert_eq!(r.false_negatives, 1);
        assert_eq!(r.true_negatives, 1);
        assert!((r.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((r.recall() - 2.0 / 3.0).abs() < 1e-12);
        assert!(r.f1() > 0.0);
        // Per-stage breakdown: stage 0 fully detected, stage 3 missed.
        assert_eq!(r.per_stage.len(), 2);
        assert_eq!(r.per_stage[0].stage, 0);
        assert_eq!(r.per_stage[0].flows, 2);
        assert_eq!(r.per_stage[0].detected, 2);
        assert_eq!(r.per_stage[1].stage, 3);
        assert_eq!(r.per_stage[1].class, AttackClass::Exfil.code());
        assert_eq!(r.per_stage[1].detected, 0);
    }

    #[test]
    fn flow_eval_empty_is_perfect() {
        let r = evaluate_flows(&[], &[]);
        assert_eq!(r.precision(), 1.0);
        assert_eq!(r.recall(), 1.0);
        assert!(r.per_stage.is_empty());
    }

    #[test]
    fn detection_delay_picks_earliest_matching_window() {
        use crate::streaming::TimedDetection;
        let l = AttackLabel {
            kind: AttackKind::SynFlood,
            attacker: 1,
            victim: 2,
            start_micros: 3_000_000,
            end_micros: 6_000_000,
        };
        let alarms = vec![
            TimedDetection {
                detection: Detection { kind: AttackKind::SynFlood, ip: 2 },
                window_start_micros: 10_000_000,
                window_end_micros: 15_000_000,
            },
            TimedDetection {
                detection: Detection { kind: AttackKind::SynFlood, ip: 2 },
                window_start_micros: 5_000_000,
                window_end_micros: 10_000_000,
            },
            // Wrong host: must not count.
            TimedDetection {
                detection: Detection { kind: AttackKind::SynFlood, ip: 9 },
                window_start_micros: 0,
                window_end_micros: 5_000_000,
            },
        ];
        let delays = detection_delays(&alarms, &[l]);
        assert_eq!(delays.len(), 1);
        assert_eq!(delays[0].delay_micros, Some(7_000_000));

        let missed = detection_delays(&[], &[l]);
        assert_eq!(missed[0].delay_micros, None);
    }
}
