//! Detection evaluation against ground-truth attack labels.

use crate::detector::Detection;
use csb_net::trace::{AttackKind, AttackLabel};

/// Precision/recall report for one detection run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalReport {
    /// Labels matched by at least one detection.
    pub true_positives: usize,
    /// Detections matching no label.
    pub false_positives: usize,
    /// Labels no detection matched.
    pub false_negatives: usize,
}

impl EvalReport {
    /// Precision = TP / (TP + FP); 1.0 when nothing was detected.
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// Recall = TP / (TP + FN); 1.0 when nothing was injected.
    pub fn recall(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// F1 score (harmonic mean of precision and recall).
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// Kind compatibility: DDoS is a distributed flood, so a DDoS detection
/// matches any flood label and vice versa; Smurf/Fraggle are amplification
/// floods a flow-level detector legitimately reports as ICMP/UDP floods (or
/// DDoS, given the many reflector sources); the specific flood kinds must
/// otherwise agree.
fn kinds_match(detected: AttackKind, labeled: AttackKind) -> bool {
    use AttackKind::*;
    if detected == labeled {
        return true;
    }
    let flood = |k: AttackKind| {
        matches!(k, SynFlood | IcmpFlood | UdpFlood | TcpFlood | Ddos | Smurf | Fraggle)
    };
    match (detected, labeled) {
        (Ddos, l) if flood(l) => true,
        (d, Ddos) if flood(d) => true,
        (IcmpFlood, Smurf) | (Smurf, IcmpFlood) => true,
        (UdpFlood, Fraggle) | (Fraggle, UdpFlood) => true,
        _ => false,
    }
}

/// A detection matches a label when kinds are compatible and the detection
/// IP is the label's victim or attacker.
fn matches(det: &Detection, label: &AttackLabel) -> bool {
    kinds_match(det.kind, label.kind) && (det.ip == label.victim || det.ip == label.attacker)
}

/// Time-to-detection of one labeled attack under streaming detection — the
/// quantity the paper's introduction says a graph-IDS benchmark must make
/// measurable ("performance, in terms of threat detection time").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetectionDelay {
    /// The ground-truth attack.
    pub label: AttackLabel,
    /// Microseconds from attack start to the close of the window that first
    /// raised a matching alarm; `None` when never detected.
    pub delay_micros: Option<u64>,
}

/// Computes per-attack detection delays from streaming alarms.
pub fn detection_delays(
    alarms: &[crate::streaming::TimedDetection],
    labels: &[AttackLabel],
) -> Vec<DetectionDelay> {
    labels
        .iter()
        .map(|label| {
            let delay_micros = alarms
                .iter()
                .filter(|a| matches(&a.detection, label))
                .map(|a| a.window_end_micros.saturating_sub(label.start_micros))
                .min();
            DetectionDelay { label: *label, delay_micros }
        })
        .collect()
}

/// Scores detections against labels.
pub fn evaluate(detections: &[Detection], labels: &[AttackLabel]) -> EvalReport {
    let mut tp = 0usize;
    let mut fn_ = 0usize;
    for label in labels {
        if detections.iter().any(|d| matches(d, label)) {
            tp += 1;
        } else {
            fn_ += 1;
        }
    }
    let fp = detections.iter().filter(|d| !labels.iter().any(|l| matches(d, l))).count();
    EvalReport { true_positives: tp, false_positives: fp, false_negatives: fn_ }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn label(kind: AttackKind, attacker: u32, victim: u32) -> AttackLabel {
        AttackLabel { kind, attacker, victim, start_micros: 0, end_micros: 1 }
    }

    #[test]
    fn perfect_detection() {
        let labels = vec![label(AttackKind::SynFlood, 1, 2)];
        let dets = vec![Detection { kind: AttackKind::SynFlood, ip: 2 }];
        let r = evaluate(&dets, &labels);
        assert_eq!(r.true_positives, 1);
        assert_eq!(r.false_positives, 0);
        assert_eq!(r.false_negatives, 0);
        assert_eq!(r.precision(), 1.0);
        assert_eq!(r.recall(), 1.0);
        assert_eq!(r.f1(), 1.0);
    }

    #[test]
    fn missed_and_spurious() {
        let labels = vec![label(AttackKind::HostScan, 1, 2), label(AttackKind::UdpFlood, 3, 4)];
        let dets = vec![
            Detection { kind: AttackKind::HostScan, ip: 2 },
            Detection { kind: AttackKind::NetworkScan, ip: 99 },
        ];
        let r = evaluate(&dets, &labels);
        assert_eq!(r.true_positives, 1);
        assert_eq!(r.false_positives, 1);
        assert_eq!(r.false_negatives, 1);
        assert!((r.precision() - 0.5).abs() < 1e-12);
        assert!((r.recall() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ddos_matches_flood_labels() {
        let labels = vec![label(AttackKind::SynFlood, 1, 2)];
        let dets = vec![Detection { kind: AttackKind::Ddos, ip: 2 }];
        assert_eq!(evaluate(&dets, &labels).true_positives, 1);
        // But scans are not floods.
        let scan_labels = vec![label(AttackKind::HostScan, 1, 2)];
        assert_eq!(evaluate(&dets, &scan_labels).true_positives, 0);
    }

    #[test]
    fn wrong_ip_does_not_match() {
        let labels = vec![label(AttackKind::SynFlood, 1, 2)];
        let dets = vec![Detection { kind: AttackKind::SynFlood, ip: 7 }];
        let r = evaluate(&dets, &labels);
        assert_eq!(r.true_positives, 0);
        assert_eq!(r.false_positives, 1);
    }

    #[test]
    fn empty_cases() {
        let r = evaluate(&[], &[]);
        assert_eq!(r.precision(), 1.0);
        assert_eq!(r.recall(), 1.0);
    }

    #[test]
    fn amplification_attacks_match_their_flood_signatures() {
        let smurf = vec![label(AttackKind::Smurf, 1, 2)];
        let icmp_det = vec![Detection { kind: AttackKind::IcmpFlood, ip: 2 }];
        assert_eq!(evaluate(&icmp_det, &smurf).true_positives, 1);
        let fraggle = vec![label(AttackKind::Fraggle, 1, 2)];
        let udp_det = vec![Detection { kind: AttackKind::UdpFlood, ip: 2 }];
        assert_eq!(evaluate(&udp_det, &fraggle).true_positives, 1);
        // But not cross-wise.
        assert_eq!(evaluate(&icmp_det, &fraggle).true_positives, 0);
    }

    #[test]
    fn detection_delay_picks_earliest_matching_window() {
        use crate::streaming::TimedDetection;
        let l = AttackLabel {
            kind: AttackKind::SynFlood,
            attacker: 1,
            victim: 2,
            start_micros: 3_000_000,
            end_micros: 6_000_000,
        };
        let alarms = vec![
            TimedDetection {
                detection: Detection { kind: AttackKind::SynFlood, ip: 2 },
                window_start_micros: 10_000_000,
                window_end_micros: 15_000_000,
            },
            TimedDetection {
                detection: Detection { kind: AttackKind::SynFlood, ip: 2 },
                window_start_micros: 5_000_000,
                window_end_micros: 10_000_000,
            },
            // Wrong host: must not count.
            TimedDetection {
                detection: Detection { kind: AttackKind::SynFlood, ip: 9 },
                window_start_micros: 0,
                window_end_micros: 5_000_000,
            },
        ];
        let delays = detection_delays(&alarms, &[l]);
        assert_eq!(delays.len(), 1);
        assert_eq!(delays[0].delay_micros, Some(7_000_000));

        let missed = detection_delays(&[], &[l]);
        assert_eq!(missed[0].delay_micros, None);
    }
}
