//! # csb-ids
//!
//! The NetFlow-based anomaly-detection approach of paper Section IV: traffic
//! patterns are aggregated per destination IP and per source IP, compared
//! against trained thresholds (Table I), and classified by the Fig. 4
//! decision flow into flooding and scanning attacks (DoS/DDoS, TCP SYN
//! flood, ICMP/UDP/TCP floods, host scans, network scans).
//!
//! As the paper notes, the thresholds are network-specific, so
//! [`train::train_thresholds`] learns them from benign traffic quantiles
//! rather than hard-coding them.

pub mod detector;
pub mod eval;
pub mod params;
pub mod pattern;
pub mod streaming;
pub mod train;

pub use detector::{detect, Detection};
pub use eval::{evaluate, evaluate_flows, EvalReport, FlowEvalReport, StageEval};
pub use params::Thresholds;
pub use pattern::{destination_patterns, source_patterns, TrafficPattern};
pub use streaming::{StreamingDetector, TimedDetection};
pub use train::train_thresholds;
