//! The detection parameters and thresholds of paper Table I.

/// Threshold set (Table I). Names mirror the paper's:
/// `dip-T`, `sip-T`, `dp-LT`/`dp-HT`, `nf-T`, `fs-LT`/`fs-HT`,
/// `np-LT`/`np-HT`, `sa-T`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Thresholds {
    /// `dip-T`: max normal number of distinct destination IPs per source IP.
    pub dip_t: f64,
    /// `sip-T`: min number of distinct source IPs (per destination) for a
    /// flood to be considered *distributed*.
    pub sip_t: f64,
    /// `dp-LT`: low destination-port count (floods concentrate on few ports).
    pub dp_lt: f64,
    /// `dp-HT`: high destination-port count (port scans touch many).
    pub dp_ht: f64,
    /// `nf-T`: max normal number of flows per detection IP.
    pub nf_t: f64,
    /// `fs-LT`: lowest normal average flow size, bytes.
    pub fs_lt: f64,
    /// `fs-HT`: highest normal total flow size, bytes.
    pub fs_ht: f64,
    /// `np-LT`: lowest normal average packets per flow.
    pub np_lt: f64,
    /// `np-HT`: highest normal total packet count.
    pub np_ht: f64,
    /// `sa-T`: minimum normal `N(ACK)/N(SYN)` ratio (SYN floods show very
    /// few ACKs per SYN).
    pub sa_t: f64,
}

impl Default for Thresholds {
    /// Conservative defaults for a small office network; production use
    /// should train them per network ([`crate::train_thresholds`]), as the
    /// paper prescribes.
    fn default() -> Self {
        Thresholds {
            dip_t: 30.0,
            sip_t: 5.0,
            dp_lt: 5.0,
            dp_ht: 50.0,
            nf_t: 60.0,
            fs_lt: 120.0,
            fs_ht: 5_000_000.0,
            np_lt: 4.0,
            np_ht: 2_000.0,
            sa_t: 0.5,
        }
    }
}

impl Thresholds {
    /// Sanity-checks ordering relations between low/high threshold pairs.
    ///
    /// # Panics
    /// Panics if a low threshold exceeds its high counterpart or any value is
    /// non-finite.
    pub fn validate(&self) {
        for (name, v) in self.named() {
            assert!(v.is_finite() && v >= 0.0, "threshold {name} must be finite and >= 0");
        }
        assert!(self.dp_lt <= self.dp_ht, "dp-LT must not exceed dp-HT");
    }

    /// `(name, value)` pairs in Table I order, for reports.
    pub fn named(&self) -> [(&'static str, f64); 10] {
        [
            ("dip-T", self.dip_t),
            ("sip-T", self.sip_t),
            ("dp-LT", self.dp_lt),
            ("dp-HT", self.dp_ht),
            ("nf-T", self.nf_t),
            ("fs-LT", self.fs_lt),
            ("fs-HT", self.fs_ht),
            ("np-LT", self.np_lt),
            ("np-HT", self.np_ht),
            ("sa-T", self.sa_t),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        Thresholds::default().validate();
    }

    #[test]
    fn named_covers_table_one() {
        let t = Thresholds::default();
        let names: Vec<&str> = t.named().iter().map(|&(n, _)| n).collect();
        assert_eq!(
            names,
            vec![
                "dip-T", "sip-T", "dp-LT", "dp-HT", "nf-T", "fs-LT", "fs-HT", "np-LT", "np-HT",
                "sa-T"
            ]
        );
    }

    #[test]
    #[should_panic(expected = "dp-LT")]
    fn inverted_pair_rejected() {
        Thresholds { dp_lt: 100.0, dp_ht: 5.0, ..Thresholds::default() }.validate();
    }
}
