//! On-line (streaming) detection — the paper's stated future work
//! ("off-line intrusion detection, followed by on-line intrusion detection
//! with streaming data").
//!
//! Packets are consumed in timestamp order; a tumbling window assembles
//! flows incrementally and runs the Fig. 4 decision flow at each window
//! boundary, emitting timestamped alarms. Flows spanning a boundary are
//! attributed to the window where they complete (or are cut at end-of-
//! stream).

use crate::detector::{detect, Detection};
use crate::params::Thresholds;
use csb_net::assembler::FlowAssembler;
use csb_net::packet::Packet;

/// A detection with the window it fired in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedDetection {
    /// The alarm.
    pub detection: Detection,
    /// Window start, microseconds since stream epoch.
    pub window_start_micros: u64,
    /// Window end (exclusive), microseconds.
    pub window_end_micros: u64,
}

/// Streaming detector with tumbling windows.
#[derive(Debug)]
pub struct StreamingDetector {
    thresholds: Thresholds,
    window_micros: u64,
    assembler: FlowAssembler,
    current_window: u64,
    alarms: Vec<TimedDetection>,
    packets_seen: u64,
}

impl StreamingDetector {
    /// Creates a streaming detector with the given window length.
    ///
    /// The internal flow assembler uses the window length as its inactive
    /// timeout (like a NetFlow exporter's inactive-timeout export), so an
    /// attack flow that goes quiet — e.g. an unanswered SYN — surfaces
    /// within roughly two windows instead of waiting for end of stream.
    ///
    /// # Panics
    /// Panics if `window_micros == 0`.
    pub fn new(thresholds: Thresholds, window_micros: u64) -> Self {
        assert!(window_micros > 0, "window must be positive");
        thresholds.validate();
        StreamingDetector {
            thresholds,
            window_micros,
            assembler: FlowAssembler::with_idle_timeout(window_micros),
            current_window: 0,
            alarms: Vec::new(),
            packets_seen: 0,
        }
    }

    /// Feeds one packet (must be in non-decreasing timestamp order for
    /// window semantics to hold; out-of-order packets are tolerated but
    /// attributed to the current window).
    pub fn push(&mut self, p: &Packet) {
        let window = p.ts_micros / self.window_micros;
        while window > self.current_window {
            self.close_window();
        }
        self.assembler.push(p);
        self.packets_seen += 1;
    }

    /// Closes the current window: expires idle flows up to the boundary and
    /// detects over everything completed.
    fn close_window(&mut self) {
        let _span = csb_obs::span_cat("ids.window", "ids");
        let start = self.current_window * self.window_micros;
        let end = start + self.window_micros;
        self.assembler.advance_time(end);
        let flows = self.assembler.drain_completed();
        csb_obs::counter_add("ids.windows_closed", 1);
        for detection in detect(&flows, &self.thresholds) {
            self.alarms.push(TimedDetection {
                detection,
                window_start_micros: start,
                window_end_micros: end,
            });
        }
        self.current_window += 1;
    }

    /// Alarms raised so far (closed windows only).
    pub fn alarms(&self) -> &[TimedDetection] {
        &self.alarms
    }

    /// Packets consumed so far.
    pub fn packets_seen(&self) -> u64 {
        self.packets_seen
    }

    /// Ends the stream: flushes open flows into a final window and returns
    /// every alarm.
    pub fn finish(mut self) -> Vec<TimedDetection> {
        let assembler = std::mem::take(&mut self.assembler);
        let flows = assembler.finish();
        let start = self.current_window * self.window_micros;
        let end = start + self.window_micros;
        for detection in detect(&flows, &self.thresholds) {
            self.alarms.push(TimedDetection {
                detection,
                window_start_micros: start,
                window_end_micros: end,
            });
        }
        self.alarms
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csb_net::packet::ip;
    use csb_net::trace::AttackKind;
    use csb_net::traffic::attacks::AttackInjector;

    const VICTIM: u32 = ip(10, 0, 0, 9);
    const ATTACKER: u32 = ip(198, 51, 100, 66);

    const WINDOW: u64 = 5_000_000; // 5 s

    #[test]
    fn detects_flood_in_the_right_window() {
        // SYN flood entirely inside window 2 ([10s, 15s)).
        let mut trace =
            AttackInjector::new(1).syn_flood(ATTACKER, VICTIM, 80, 10_500_000, 3_000_000, 2_000);
        trace.sort();
        let mut det = StreamingDetector::new(Thresholds::default(), WINDOW);
        for p in &trace.packets {
            det.push(p);
        }
        let alarms = det.finish();
        let hit = alarms
            .iter()
            .find(|a| a.detection.kind == AttackKind::SynFlood && a.detection.ip == VICTIM)
            .expect("flood must be detected");
        // S0 flows complete only via idle timeout or end-of-stream, so the
        // alarm may fire at stream close; the window must not *precede* the
        // attack.
        assert!(hit.window_end_micros > 10_500_000, "window {:?}", hit);
    }

    #[test]
    fn quiet_stream_raises_nothing() {
        let mut det = StreamingDetector::new(Thresholds::default(), WINDOW);
        for i in 0..100u64 {
            det.push(&Packet::udp(i * 100_000, ip(10, 1, 1, 1), 5353, ip(10, 0, 0, 2), 53, 60));
        }
        assert!(det.finish().is_empty());
    }

    #[test]
    fn two_attacks_two_windows() {
        // Host scans complete (REJ) within their windows, so window
        // attribution is tight.
        let mut inj = AttackInjector::new(2);
        let mut trace = inj.host_scan(ATTACKER, VICTIM, 1_000_000, 2_000_000, 300, 50);
        trace.merge(inj.host_scan(ATTACKER, ip(10, 0, 0, 8), 21_000_000, 2_000_000, 300, 50));
        trace.sort();
        let mut det = StreamingDetector::new(Thresholds::default(), WINDOW);
        for p in &trace.packets {
            det.push(p);
        }
        let alarms = det.finish();
        let windows: Vec<u64> = alarms
            .iter()
            .filter(|a| a.detection.kind == AttackKind::HostScan)
            .map(|a| a.window_start_micros)
            .collect();
        assert!(windows.contains(&0), "first scan in window 0: {alarms:?}");
        assert!(windows.contains(&20_000_000), "second scan in window 4: {alarms:?}");
    }

    #[test]
    fn packets_counted() {
        let mut det = StreamingDetector::new(Thresholds::default(), WINDOW);
        for i in 0..7u64 {
            det.push(&Packet::icmp(i, 1, 2, 8));
        }
        assert_eq!(det.packets_seen(), 7);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_rejected() {
        let _ = StreamingDetector::new(Thresholds::default(), 0);
    }
}
