//! Traffic-pattern aggregation: the "destination based" and "source based"
//! pattern data of paper Section IV, computed from NetFlow records or
//! directly from a property-graph's edges (the aggregation property-graphs
//! make cheap, per the paper's motivation).

use csb_graph::NetflowGraph;
use csb_net::flow::{FlowRecord, Protocol};
use std::collections::{HashMap, HashSet};

/// Aggregated traffic parameters for one detection IP (Table I's measured
/// quantities).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TrafficPattern {
    /// `N(D_IP)`: distinct destination IPs (source-based patterns).
    pub n_dip: u64,
    /// `N(S_IP)`: distinct source IPs (destination-based patterns).
    pub n_sip: u64,
    /// `N(D_port)`: distinct destination ports.
    pub n_dport: u64,
    /// `N(flow)`: number of flows.
    pub n_flow: u64,
    /// `Sum(flowSize)`: total bytes.
    pub sum_flow_size: u64,
    /// `Sum(nPacket)`: total packets.
    pub sum_npacket: u64,
    /// `N(SYN)`: SYN-flagged packets.
    pub n_syn: u64,
    /// `N(ACK)`: ACK-flagged packets.
    pub n_ack: u64,
    /// Per-protocol flow counts, for classifying flood type.
    pub tcp_flows: u64,
    /// UDP flow count.
    pub udp_flows: u64,
    /// ICMP flow count.
    pub icmp_flows: u64,
    /// Per-protocol byte totals (floods are classified by volume: an ICMP
    /// flood is one enormous flow among many small benign UDP flows).
    pub tcp_bytes: u64,
    /// UDP byte total.
    pub udp_bytes: u64,
    /// ICMP byte total.
    pub icmp_bytes: u64,
    /// Median flow size, bytes (robust "typical flow" statistic — a flood's
    /// thousands of tiny flows are not masked by one large benign transfer
    /// sharing the detection IP).
    pub median_flow_size: f64,
    /// Median packets per flow.
    pub median_npacket: f64,
    /// Largest single flow's byte count.
    pub max_flow_size: u64,
    /// Flow count on the busiest destination port.
    pub top_port_flows: u64,
    /// Median absolute deviation of flow sizes (robust dispersion).
    pub flow_size_mad: f64,
    // Internal accumulators for distinct counts.
    dips: HashSet<u32>,
    sips: HashSet<u32>,
    dports: HashSet<u16>,
    port_flows: std::collections::HashMap<u16, u64>,
    // Raw per-flow statistics for medians / deviation.
    flow_sizes: Vec<u64>,
    flow_pkts: Vec<u64>,
    // For the flow-size variance ("small deviation" flood criterion).
    sum_sq_flow_size: f64,
}

impl TrafficPattern {
    fn add(&mut self, f: &FlowRecord) {
        self.n_flow += 1;
        self.sum_flow_size += f.total_bytes();
        self.sum_npacket += f.total_pkts();
        self.n_syn += f.syn_count as u64;
        self.n_ack += f.ack_count as u64;
        self.dips.insert(f.dst_ip);
        self.sips.insert(f.src_ip);
        self.dports.insert(f.dst_port);
        *self.port_flows.entry(f.dst_port).or_insert(0) += 1;
        match f.protocol {
            Protocol::Tcp => {
                self.tcp_flows += 1;
                self.tcp_bytes += f.total_bytes();
            }
            Protocol::Udp => {
                self.udp_flows += 1;
                self.udp_bytes += f.total_bytes();
            }
            Protocol::Icmp => {
                self.icmp_flows += 1;
                self.icmp_bytes += f.total_bytes();
            }
        }
        let s = f.total_bytes() as f64;
        self.sum_sq_flow_size += s * s;
        self.flow_sizes.push(f.total_bytes());
        self.flow_pkts.push(f.total_pkts());
        self.max_flow_size = self.max_flow_size.max(f.total_bytes());
    }

    fn seal(&mut self) {
        self.n_dip = self.dips.len() as u64;
        self.n_sip = self.sips.len() as u64;
        self.n_dport = self.dports.len() as u64;
        self.median_flow_size = median(&mut self.flow_sizes);
        self.median_npacket = median(&mut self.flow_pkts);
        self.top_port_flows = self.port_flows.values().copied().max().unwrap_or(0);
        let m = self.median_flow_size;
        let mut deviations: Vec<u64> =
            self.flow_sizes.iter().map(|&x| (x as f64 - m).abs() as u64).collect();
        self.flow_size_mad = median(&mut deviations);
    }

    /// `Avg(flowSize)`.
    pub fn avg_flow_size(&self) -> f64 {
        if self.n_flow == 0 {
            0.0
        } else {
            self.sum_flow_size as f64 / self.n_flow as f64
        }
    }

    /// `Avg(nPacket)`.
    pub fn avg_npacket(&self) -> f64 {
        if self.n_flow == 0 {
            0.0
        } else {
            self.sum_npacket as f64 / self.n_flow as f64
        }
    }

    /// `N(ACK) / N(SYN)` (infinite when no SYNs — i.e. nothing SYN-floody).
    pub fn ack_syn_ratio(&self) -> f64 {
        if self.n_syn == 0 {
            f64::INFINITY
        } else {
            self.n_ack as f64 / self.n_syn as f64
        }
    }

    /// Coefficient of variation of flow sizes (the paper's "small deviation
    /// in the packet and flow size" flood criterion).
    pub fn flow_size_cv(&self) -> f64 {
        if self.n_flow < 2 {
            return 0.0;
        }
        let mean = self.avg_flow_size();
        if mean == 0.0 {
            return 0.0;
        }
        let var = (self.sum_sq_flow_size / self.n_flow as f64 - mean * mean).max(0.0);
        var.sqrt() / mean
    }

    /// Robust relative dispersion of flow sizes: MAD / median. Near 0 when
    /// the typical flow is uniform (a flood's identical junk flows dominate
    /// the count, so a few variable benign flows cannot inflate it, unlike
    /// the coefficient of variation). 0 when the median is 0.
    pub fn robust_dispersion(&self) -> f64 {
        if self.median_flow_size == 0.0 {
            0.0
        } else {
            self.flow_size_mad / self.median_flow_size
        }
    }

    /// Fraction of flows aimed at the single busiest destination port — a
    /// SYN flood concentrates its flows on one port even when benign traffic
    /// to other ports shares the victim IP (the operational reading of the
    /// paper's "small number of destination ports").
    pub fn top_port_share(&self) -> f64 {
        if self.n_flow == 0 {
            0.0
        } else {
            self.top_port_flows as f64 / self.n_flow as f64
        }
    }

    /// Fraction of total bytes carried by the single largest flow.
    pub fn max_flow_share(&self) -> f64 {
        if self.sum_flow_size == 0 {
            0.0
        } else {
            self.max_flow_size as f64 / self.sum_flow_size as f64
        }
    }

    /// The dominant transport among this pattern's traffic, by byte volume
    /// (flood classification cares about where the bandwidth went).
    pub fn dominant_protocol(&self) -> Protocol {
        if self.icmp_bytes >= self.tcp_bytes && self.icmp_bytes >= self.udp_bytes {
            Protocol::Icmp
        } else if self.udp_bytes >= self.tcp_bytes {
            Protocol::Udp
        } else {
            Protocol::Tcp
        }
    }
}

/// Median of a slice (sorts in place; 0 when empty).
fn median(values: &mut [u64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.sort_unstable();
    let n = values.len();
    if n % 2 == 1 {
        values[n / 2] as f64
    } else {
        (values[n / 2 - 1] + values[n / 2]) as f64 / 2.0
    }
}

fn aggregate(
    flows: &[FlowRecord],
    key: impl Fn(&FlowRecord) -> u32,
) -> HashMap<u32, TrafficPattern> {
    let mut map: HashMap<u32, TrafficPattern> = HashMap::new();
    for f in flows {
        map.entry(key(f)).or_default().add(f);
    }
    for p in map.values_mut() {
        p.seal();
    }
    map
}

/// Destination-based traffic pattern data: one pattern per destination IP.
pub fn destination_patterns(flows: &[FlowRecord]) -> HashMap<u32, TrafficPattern> {
    aggregate(flows, |f| f.dst_ip)
}

/// Source-based traffic pattern data: one pattern per source IP.
pub fn source_patterns(flows: &[FlowRecord]) -> HashMap<u32, TrafficPattern> {
    aggregate(flows, |f| f.src_ip)
}

/// Rebuilds flow records from a property-graph's edges (inverse of
/// `graph_from_flows`, minus packet-level SYN/ACK counts which the graph
/// does not carry — they are reconstructed conservatively from the STATE
/// attribute).
pub fn flows_from_graph(g: &NetflowGraph) -> Vec<FlowRecord> {
    use csb_net::flow::TcpConnState;
    g.edges()
        .map(|(_, s, d, p)| {
            // Handshake-derived SYN/ACK estimates per connection state.
            let (syn, ack) = match (p.protocol, p.state) {
                (Protocol::Tcp, TcpConnState::S0) => (1, 0),
                (Protocol::Tcp, TcpConnState::Rej) => (1, 1),
                (Protocol::Tcp, TcpConnState::Sh) => (1, 0),
                (Protocol::Tcp, _) => (2, (p.out_pkts + p.in_pkts).max(2) as u32),
                _ => (0, 0),
            };
            FlowRecord {
                src_ip: *g.vertex(s),
                dst_ip: *g.vertex(d),
                protocol: p.protocol,
                src_port: p.src_port,
                dst_port: p.dst_port,
                duration_ms: p.duration_ms,
                out_bytes: p.out_bytes,
                in_bytes: p.in_bytes,
                out_pkts: p.out_pkts,
                in_pkts: p.in_pkts,
                state: p.state,
                syn_count: syn,
                ack_count: ack,
                first_ts_micros: 0,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use csb_net::flow::TcpConnState;

    fn flow(
        src: u32,
        dst: u32,
        dport: u16,
        bytes: u64,
        pkts: u64,
        syn: u32,
        ack: u32,
    ) -> FlowRecord {
        FlowRecord {
            src_ip: src,
            dst_ip: dst,
            protocol: Protocol::Tcp,
            src_port: 40000,
            dst_port: dport,
            duration_ms: 1,
            out_bytes: bytes / 2,
            in_bytes: bytes - bytes / 2,
            out_pkts: pkts / 2,
            in_pkts: pkts - pkts / 2,
            state: TcpConnState::Sf,
            syn_count: syn,
            ack_count: ack,
            first_ts_micros: 0,
        }
    }

    #[test]
    fn destination_aggregation() {
        let flows = vec![
            flow(1, 100, 80, 1000, 10, 2, 8),
            flow(2, 100, 80, 3000, 30, 2, 28),
            flow(3, 100, 443, 500, 5, 2, 3),
            flow(1, 200, 22, 100, 2, 1, 1),
        ];
        let pats = destination_patterns(&flows);
        assert_eq!(pats.len(), 2);
        let p = &pats[&100];
        assert_eq!(p.n_flow, 3);
        assert_eq!(p.n_sip, 3);
        assert_eq!(p.n_dport, 2);
        assert_eq!(p.sum_flow_size, 4500);
        assert_eq!(p.sum_npacket, 45);
        assert_eq!(p.n_syn, 6);
        assert_eq!(p.n_ack, 39);
        assert!((p.avg_flow_size() - 1500.0).abs() < 1e-9);
        assert!((p.avg_npacket() - 15.0).abs() < 1e-9);
        assert!((p.ack_syn_ratio() - 6.5).abs() < 1e-9);
    }

    #[test]
    fn source_aggregation_counts_dips() {
        let flows = vec![
            flow(9, 1, 80, 100, 2, 1, 1),
            flow(9, 2, 80, 100, 2, 1, 1),
            flow(9, 3, 80, 100, 2, 1, 1),
        ];
        let pats = source_patterns(&flows);
        assert_eq!(pats[&9].n_dip, 3);
        assert_eq!(pats[&9].n_dport, 1);
    }

    #[test]
    fn cv_distinguishes_uniform_from_mixed() {
        let uniform = vec![
            flow(1, 5, 80, 1000, 10, 1, 1),
            flow(2, 5, 80, 1000, 10, 1, 1),
            flow(3, 5, 80, 1000, 10, 1, 1),
        ];
        let mixed = vec![
            flow(1, 5, 80, 10, 1, 1, 1),
            flow(2, 5, 80, 100_000, 100, 1, 1),
            flow(3, 5, 80, 1000, 10, 1, 1),
        ];
        let pu = &destination_patterns(&uniform)[&5];
        let pm = &destination_patterns(&mixed)[&5];
        assert!(pu.flow_size_cv() < 0.01);
        assert!(pm.flow_size_cv() > 0.5);
    }

    #[test]
    fn medians_are_robust_to_one_giant_flow() {
        // 9 tiny flows and one huge one: the mean explodes, the median holds.
        let mut flows: Vec<FlowRecord> = (0..9).map(|i| flow(i, 5, 80, 40, 1, 1, 0)).collect();
        flows.push(flow(99, 5, 80, 10_000_000, 8_000, 1, 1));
        let p = &destination_patterns(&flows)[&5];
        assert!(p.avg_flow_size() > 100_000.0);
        assert_eq!(p.median_flow_size, 40.0);
        assert_eq!(p.median_npacket, 1.0);
        assert!(p.max_flow_share() > 0.99);
        assert_eq!(p.max_flow_size, 10_000_000);
    }

    #[test]
    fn robust_dispersion_ignores_benign_tail() {
        // 50 identical flood flows + 2 wildly different benign flows: the CV
        // blows up, the robust dispersion stays ~0.
        let mut flows: Vec<FlowRecord> = (0..50).map(|i| flow(i, 5, 9999, 1400, 1, 0, 0)).collect();
        flows.push(flow(97, 5, 80, 5_000_000, 4_000, 1, 10));
        flows.push(flow(98, 5, 80, 12, 1, 1, 1));
        let p = &destination_patterns(&flows)[&5];
        assert!(p.flow_size_cv() > 2.0, "cv {}", p.flow_size_cv());
        assert!(p.robust_dispersion() < 0.01, "dispersion {}", p.robust_dispersion());
    }

    #[test]
    fn ack_syn_ratio_without_syn_is_infinite() {
        let flows = vec![flow(1, 5, 80, 10, 1, 0, 4)];
        let p = &destination_patterns(&flows)[&5];
        assert!(p.ack_syn_ratio().is_infinite());
    }

    #[test]
    fn dominant_protocol_is_by_bytes() {
        let mut p = TrafficPattern {
            tcp_bytes: 100,
            udp_bytes: 500,
            icmp_bytes: 200,
            ..TrafficPattern::default()
        };
        assert_eq!(p.dominant_protocol(), Protocol::Udp);
        // One giant ICMP flow outweighs many small UDP flows.
        p.icmp_bytes = 10_000;
        p.udp_flows = 50;
        p.icmp_flows = 1;
        assert_eq!(p.dominant_protocol(), Protocol::Icmp);
    }
}
