//! The classic *sequential* Barabási-Albert model: vertices arrive one at a
//! time and attach `m` edges to existing vertices chosen with probability
//! proportional to degree. Implemented with the repeated-endpoints edge
//! list, so each preferential pick is O(1) — the same trick PGPBA
//! parallelizes.

use crate::ModelGraph;
use csb_stats::rng::rng_for;
use rand::Rng;

/// Grows a BA graph to `n` vertices, attaching `m` edges per new vertex,
/// starting from an `m`-vertex clique-ish core.
///
/// ```
/// use csb_models::barabasi_albert;
///
/// let g = barabasi_albert(500, 2, 42);
/// assert_eq!(g.num_vertices, 500);
/// let degrees = g.total_degrees();
/// let max = *degrees.iter().max().unwrap() as f64;
/// let mean = degrees.iter().sum::<u64>() as f64 / 500.0;
/// assert!(max > mean * 5.0, "preferential attachment grows hubs");
/// ```
///
/// # Panics
/// Panics unless `1 <= m < n`.
pub fn barabasi_albert(n: u32, m: u32, seed: u64) -> ModelGraph {
    assert!(m >= 1 && m < n, "need 1 <= m < n");
    let mut rng = rng_for(seed, 0xBA);
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(((n - m) * m) as usize);
    // Endpoint multiset: a vertex appears once per incident edge, so uniform
    // sampling from it is degree-proportional sampling.
    let mut endpoints: Vec<u32> = Vec::with_capacity(edges.capacity() * 2);

    // Seed core: a ring over the first m+1 vertices so every early vertex
    // has degree > 0.
    let core = m + 1;
    for u in 0..core {
        let v = (u + 1) % core;
        edges.push((u, v));
        endpoints.push(u);
        endpoints.push(v);
    }

    for u in core..n {
        // Pick m distinct targets preferentially. m is small, so a Vec with
        // a linear membership check beats a hash set and keeps iteration
        // order deterministic.
        let mut targets: Vec<u32> = Vec::with_capacity(m as usize);
        let mut guard = 0;
        while targets.len() < m as usize {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if t != u && !targets.contains(&t) {
                targets.push(t);
            }
            guard += 1;
            assert!(guard < 10_000, "preferential sampling stuck");
        }
        for t in targets {
            edges.push((u, t));
            endpoints.push(u);
            endpoints.push(t);
        }
    }
    ModelGraph { num_vertices: n, edges }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csb_stats::PowerLaw;

    #[test]
    fn sizes_are_exact() {
        let g = barabasi_albert(100, 3, 1);
        g.validate();
        // Core ring (m+1 edges) + m per subsequent vertex.
        assert_eq!(g.edge_count(), 4 + 96 * 3);
        assert_eq!(g.num_vertices, 100);
    }

    #[test]
    fn degree_distribution_is_heavy_tailed() {
        let g = barabasi_albert(3_000, 2, 2);
        let degrees = g.total_degrees();
        let max = *degrees.iter().max().expect("non-empty") as f64;
        let mean = degrees.iter().sum::<u64>() as f64 / degrees.len() as f64;
        assert!(max > mean * 10.0, "no hub: max {max}, mean {mean}");
        // MLE power-law fit lands near the theoretical alpha = 3.
        let fit = PowerLaw::fit(degrees.iter().copied(), 6).expect("fit");
        assert!((2.0..4.5).contains(&fit.alpha), "alpha {}", fit.alpha);
    }

    #[test]
    fn early_vertices_become_hubs() {
        let g = barabasi_albert(2_000, 2, 3);
        let degrees = g.total_degrees();
        let early_avg: f64 = degrees[..10].iter().sum::<u64>() as f64 / 10.0;
        let late_avg: f64 = degrees[1990..].iter().sum::<u64>() as f64 / 10.0;
        assert!(early_avg > late_avg * 3.0, "early {early_avg} vs late {late_avg}");
    }

    #[test]
    fn new_vertex_edges_are_distinct() {
        let g = barabasi_albert(200, 4, 4);
        // For every source vertex >= core, targets are distinct.
        let mut by_src: std::collections::HashMap<u32, Vec<u32>> = std::collections::HashMap::new();
        for &(s, t) in &g.edges {
            by_src.entry(s).or_default().push(t);
        }
        for (s, ts) in by_src {
            if s >= 5 {
                let set: std::collections::HashSet<_> = ts.iter().collect();
                assert_eq!(set.len(), ts.len(), "duplicate targets from {s}");
            }
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(barabasi_albert(300, 2, 5), barabasi_albert(300, 2, 5));
    }

    #[test]
    #[should_panic(expected = "1 <= m < n")]
    fn bad_m_rejected() {
        let _ = barabasi_albert(5, 0, 0);
    }
}
