//! The uniform model interface behind the cross-generator harness.
//!
//! Every baseline family exposes a bespoke constructor (`gnm(n, m, seed)`,
//! `chung_lu(&weights, seed)`, ...). [`GraphModel`] erases those signatures:
//! a model takes a [`TargetShape`] — the seed-derived size and degree
//! sequence every family is parameterized from — plus an RNG seed, and
//! returns a [`ModelGraph`]. [`zoo`] is the full survey lineup with the
//! `baseline_comparison` parameterizations, so `csb compare` and the bench
//! harness score the identical model configurations.

use crate::bter::BterParams;
use crate::rmat::RmatParams;
use crate::{barabasi_albert, bter, chung_lu, gnm, rmat, sbm, watts_strogatz, ModelGraph};

/// The target a model is asked to hit: the seed graph's scale (possibly
/// size-multiplied) and its degree sequence for the sequence-driven models.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TargetShape {
    /// Vertex count to generate.
    pub vertices: u32,
    /// Edge count to aim for (models hit it exactly or in expectation).
    pub edges: usize,
    /// Target degree sequence, `vertices` entries (the seed's sequence,
    /// replicated to size). Only the sequence-driven models (Chung-Lu,
    /// BTER) read it; it may be empty for the others.
    pub degrees: Vec<u64>,
}

impl TargetShape {
    /// A shape with no degree sequence (for density-driven models only).
    pub fn new(vertices: u32, edges: usize) -> Self {
        TargetShape { vertices, edges, degrees: Vec::new() }
    }

    /// Mean out-degree implied by the size, at least 1 — the lattice /
    /// attachment parameter of Watts-Strogatz and Barabási-Albert.
    pub fn avg_out_degree(&self) -> u32 {
        ((self.edges as f64 / self.vertices.max(1) as f64).round() as u32).max(1)
    }
}

/// One baseline generator family under a uniform interface: deterministic
/// in `(shape, seed)`.
pub trait GraphModel {
    /// Stable model name, used for report keys and CLI output.
    fn name(&self) -> &'static str;

    /// Generates a graph aiming at `shape`.
    fn generate(&self, shape: &TargetShape, seed: u64) -> ModelGraph;
}

/// Uniform random graphs: `G(n, m)` with exactly `shape.edges` edges.
#[derive(Debug, Clone, Copy, Default)]
pub struct ErdosRenyiModel;

impl GraphModel for ErdosRenyiModel {
    fn name(&self) -> &'static str {
        "erdos_renyi"
    }

    fn generate(&self, shape: &TargetShape, seed: u64) -> ModelGraph {
        gnm(shape.vertices, shape.edges, seed)
    }
}

/// Small-world ring-lattice rewiring at the survey's 10% rewire rate.
#[derive(Debug, Clone, Copy, Default)]
pub struct WattsStrogatzModel;

impl GraphModel for WattsStrogatzModel {
    fn name(&self) -> &'static str {
        "watts_strogatz"
    }

    fn generate(&self, shape: &TargetShape, seed: u64) -> ModelGraph {
        watts_strogatz(shape.vertices, shape.avg_out_degree(), 0.1, seed)
    }
}

/// Classic sequential Barabási-Albert preferential attachment.
#[derive(Debug, Clone, Copy, Default)]
pub struct BarabasiAlbertModel;

impl GraphModel for BarabasiAlbertModel {
    fn name(&self) -> &'static str {
        "barabasi_albert"
    }

    fn generate(&self, shape: &TargetShape, seed: u64) -> ModelGraph {
        barabasi_albert(shape.vertices, shape.avg_out_degree(), seed)
    }
}

/// Chung-Lu expected-degree random graph driven by `shape.degrees`.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChungLuModel;

impl GraphModel for ChungLuModel {
    fn name(&self) -> &'static str {
        "chung_lu"
    }

    fn generate(&self, shape: &TargetShape, seed: u64) -> ModelGraph {
        let weights: Vec<f64> = shape.degrees.iter().map(|&d| d as f64).collect();
        chung_lu(&weights, seed)
    }
}

/// Block two-level Erdős-Rényi driven by `shape.degrees`.
#[derive(Debug, Clone, Copy, Default)]
pub struct BterModel;

impl GraphModel for BterModel {
    fn name(&self) -> &'static str {
        "bter"
    }

    fn generate(&self, shape: &TargetShape, seed: u64) -> ModelGraph {
        bter(&shape.degrees, BterParams::default(), seed)
    }
}

/// Two-block stochastic block model at the survey's 3:1 intra/inter density
/// ratio, matching `shape.edges` in expectation.
#[derive(Debug, Clone, Copy, Default)]
pub struct SbmModel;

impl GraphModel for SbmModel {
    fn name(&self) -> &'static str {
        "sbm"
    }

    fn generate(&self, shape: &TargetShape, seed: u64) -> ModelGraph {
        let n = shape.vertices;
        let half = n / 2;
        let nn = n as f64 * n as f64;
        let intra = 1.5 * shape.edges as f64 / nn;
        let inter = 0.5 * shape.edges as f64 / nn;
        sbm(&[half, n - half], &[vec![intra, inter], vec![inter, intra]], seed)
    }
}

/// Recursive matrix model with graph500 quadrant probabilities, at the
/// smallest power-of-two scale covering `shape.vertices`.
#[derive(Debug, Clone, Copy, Default)]
pub struct RmatModel;

impl GraphModel for RmatModel {
    fn name(&self) -> &'static str {
        "rmat"
    }

    fn generate(&self, shape: &TargetShape, seed: u64) -> ModelGraph {
        let scale = (shape.vertices.max(2) as f64).log2().ceil() as u32;
        rmat(scale, shape.edges, RmatParams::graph500(), seed)
    }
}

/// The full survey lineup — ER, WS, BA, Chung-Lu, BTER, SBM, R-MAT — with
/// the `baseline_comparison` parameterizations, in stable order.
pub fn zoo() -> Vec<Box<dyn GraphModel>> {
    vec![
        Box::new(ErdosRenyiModel),
        Box::new(WattsStrogatzModel),
        Box::new(BarabasiAlbertModel),
        Box::new(ChungLuModel),
        Box::new(BterModel),
        Box::new(SbmModel),
        Box::new(RmatModel),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape() -> TargetShape {
        // A plausible skewed degree sequence summing to ~2 * edges.
        let degrees: Vec<u64> = (0..64u64).map(|i| 1 + (64 - i) / 8).collect();
        let edges = (degrees.iter().sum::<u64>() / 2) as usize;
        TargetShape { vertices: 64, edges, degrees }
    }

    #[test]
    fn zoo_names_are_unique_and_stable() {
        let names: Vec<&str> = zoo().iter().map(|m| m.name()).collect();
        assert_eq!(
            names,
            vec![
                "erdos_renyi",
                "watts_strogatz",
                "barabasi_albert",
                "chung_lu",
                "bter",
                "sbm",
                "rmat"
            ]
        );
    }

    #[test]
    fn every_model_generates_a_valid_nonempty_graph() {
        let shape = shape();
        for model in zoo() {
            let g = model.generate(&shape, 42);
            g.validate();
            assert!(g.num_vertices > 0, "{} produced no vertices", model.name());
            assert!(g.edge_count() > 0, "{} produced no edges", model.name());
        }
    }

    #[test]
    fn models_are_deterministic_in_the_seed() {
        let shape = shape();
        for model in zoo() {
            let a = model.generate(&shape, 7);
            let b = model.generate(&shape, 7);
            assert_eq!(a, b, "{} must be deterministic", model.name());
        }
    }

    #[test]
    fn avg_out_degree_rounds_and_floors() {
        assert_eq!(TargetShape::new(10, 25).avg_out_degree(), 3);
        assert_eq!(TargetShape::new(10, 2).avg_out_degree(), 1);
        assert_eq!(TargetShape::new(0, 5).avg_out_degree(), 5);
    }
}
