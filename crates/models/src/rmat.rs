//! The R-MAT recursive matrix model (Chakrabarti et al.): each edge descends
//! a 2x2 quadrant tree with probabilities `(a, b, c, d)`, with per-level
//! multiplicative noise so repeated descents do not produce the exact
//! self-similar artifacts of the noiseless model.

use crate::ModelGraph;
use csb_stats::rng::rng_for;
use rand::Rng;

/// R-MAT parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmatParams {
    /// Top-left quadrant probability.
    pub a: f64,
    /// Top-right quadrant probability.
    pub b: f64,
    /// Bottom-left quadrant probability.
    pub c: f64,
    /// Bottom-right quadrant probability.
    pub d: f64,
    /// Relative noise applied to `(a, b, c, d)` at each level (0 disables).
    pub noise: f64,
}

impl RmatParams {
    /// The Graph500 reference parameters.
    pub fn graph500() -> Self {
        RmatParams { a: 0.57, b: 0.19, c: 0.19, d: 0.05, noise: 0.1 }
    }

    /// Validates that probabilities are non-negative and sum to ~1.
    ///
    /// # Panics
    /// Panics otherwise.
    pub fn validate(&self) {
        for q in [self.a, self.b, self.c, self.d] {
            assert!(q >= 0.0 && q.is_finite(), "quadrant probabilities must be >= 0");
        }
        let sum = self.a + self.b + self.c + self.d;
        assert!((sum - 1.0).abs() < 1e-6, "quadrant probabilities must sum to 1, got {sum}");
        assert!((0.0..1.0).contains(&self.noise), "noise must be in [0,1)");
    }
}

/// Generates `m` R-MAT edges over `2^scale` vertices.
///
/// # Panics
/// Panics on invalid parameters or `scale > 31`.
pub fn rmat(scale: u32, m: usize, params: RmatParams, seed: u64) -> ModelGraph {
    params.validate();
    assert!((1..=31).contains(&scale), "scale must be in 1..=31");
    let n = 1u32 << scale;
    let mut rng = rng_for(seed, 0x12A7);
    let mut edges = Vec::with_capacity(m);
    for _ in 0..m {
        let (mut u, mut v) = (0u32, 0u32);
        for _ in 0..scale {
            // Noisy copy of the quadrant probabilities for this level.
            let jitter = |q: f64, rng: &mut rand::rngs::SmallRng| {
                q * (1.0 + params.noise * (rng.gen::<f64>() * 2.0 - 1.0))
            };
            let (a, b, c, d) = (
                jitter(params.a, &mut rng),
                jitter(params.b, &mut rng),
                jitter(params.c, &mut rng),
                jitter(params.d, &mut rng),
            );
            let total = a + b + c + d;
            let x = rng.gen::<f64>() * total;
            let (i, j) = if x < a {
                (0, 0)
            } else if x < a + b {
                (0, 1)
            } else if x < a + b + c {
                (1, 0)
            } else {
                (1, 1)
            };
            u = (u << 1) | i;
            v = (v << 1) | j;
        }
        edges.push((u, v));
    }
    ModelGraph { num_vertices: n, edges }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_and_bounds() {
        let g = rmat(10, 5_000, RmatParams::graph500(), 1);
        g.validate();
        assert_eq!(g.edge_count(), 5_000);
        assert_eq!(g.num_vertices, 1024);
    }

    #[test]
    fn skew_concentrates_in_low_ids() {
        let g = rmat(10, 50_000, RmatParams::graph500(), 2);
        let half = 512u32;
        let low = g.edges.iter().filter(|&&(u, v)| u < half && v < half).count();
        let high = g.edges.iter().filter(|&&(u, v)| u >= half && v >= half).count();
        assert!(low > high * 3, "low {low}, high {high}");
    }

    #[test]
    fn uniform_params_give_uniform_quadrants() {
        let params = RmatParams { a: 0.25, b: 0.25, c: 0.25, d: 0.25, noise: 0.0 };
        let g = rmat(9, 40_000, params, 3);
        let half = 256u32;
        let q00 = g.edges.iter().filter(|&&(u, v)| u < half && v < half).count() as f64;
        assert!((q00 / 40_000.0 - 0.25).abs() < 0.02, "q00 fraction {}", q00 / 40_000.0);
    }

    #[test]
    fn heavy_tail_degrees() {
        let g = rmat(12, 80_000, RmatParams::graph500(), 4);
        let degrees = g.total_degrees();
        let max = *degrees.iter().max().expect("non-empty") as f64;
        let mean =
            degrees.iter().sum::<u64>() as f64 / degrees.iter().filter(|&&d| d > 0).count() as f64;
        assert!(max > mean * 20.0, "max {max}, mean {mean}");
    }

    #[test]
    fn deterministic() {
        let p = RmatParams::graph500();
        assert_eq!(rmat(8, 1000, p, 5), rmat(8, 1000, p, 5));
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn bad_params_rejected() {
        rmat(5, 10, RmatParams { a: 0.5, b: 0.5, c: 0.5, d: 0.5, noise: 0.0 }, 0);
    }
}
