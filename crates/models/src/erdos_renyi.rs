//! Erdős-Rényi random graphs: `G(n, p)` (each ordered pair independently an
//! edge with probability `p`) and `G(n, m)` (exactly `m` distinct edges
//! uniformly at random).
//!
//! `G(n, p)` uses geometric skipping over the implicit pair index, so the
//! cost is `O(m)` rather than `O(n^2)`.

use crate::ModelGraph;
use csb_stats::rng::rng_for;
use rand::Rng;

/// `G(n, p)` over ordered pairs (self-loops excluded).
///
/// # Panics
/// Panics unless `0 <= p <= 1`.
pub fn gnp(n: u32, p: f64, seed: u64) -> ModelGraph {
    assert!((0.0..=1.0).contains(&p), "edge probability must be in [0,1]");
    let mut edges = Vec::new();
    if n > 0 && p > 0.0 {
        let mut rng = rng_for(seed, 0xE2);
        let total = n as u64 * n as u64;
        let mut idx: u64 = 0;
        if p >= 1.0 {
            for u in 0..n {
                for v in 0..n {
                    if u != v {
                        edges.push((u, v));
                    }
                }
            }
        } else {
            let log_q = (1.0 - p).ln();
            loop {
                // Geometric skip to the next selected pair.
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                let skip = (u.ln() / log_q).floor() as u64 + 1;
                idx = match idx.checked_add(skip) {
                    Some(i) => i,
                    None => break,
                };
                if idx > total {
                    break;
                }
                let pair = idx - 1;
                let (s, t) = ((pair / n as u64) as u32, (pair % n as u64) as u32);
                if s != t {
                    edges.push((s, t));
                }
            }
        }
    }
    ModelGraph { num_vertices: n, edges }
}

/// `G(n, m)`: exactly `m` distinct directed edges (no self-loops), uniform.
///
/// # Panics
/// Panics if `m` exceeds the number of possible edges `n*(n-1)`.
pub fn gnm(n: u32, m: usize, seed: u64) -> ModelGraph {
    let possible = n as u64 * (n as u64).saturating_sub(1);
    assert!(m as u64 <= possible, "m = {m} exceeds possible edges {possible}");
    let mut rng = rng_for(seed, 0xE3);
    let mut set = std::collections::HashSet::with_capacity(m);
    while set.len() < m {
        let s = rng.gen_range(0..n);
        let t = rng.gen_range(0..n);
        if s != t {
            set.insert((s, t));
        }
    }
    let mut edges: Vec<(u32, u32)> = set.into_iter().collect();
    edges.sort_unstable();
    ModelGraph { num_vertices: n, edges }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gnp_edge_count_near_expectation() {
        let n = 200u32;
        let p = 0.05;
        let g = gnp(n, p, 1);
        g.validate();
        let expect = (n as f64 * n as f64 - n as f64) * p;
        let got = g.edge_count() as f64;
        assert!((got - expect).abs() < expect * 0.15, "got {got}, expected {expect}");
    }

    #[test]
    fn gnp_extremes() {
        assert_eq!(gnp(10, 0.0, 1).edge_count(), 0);
        let full = gnp(10, 1.0, 1);
        assert_eq!(full.edge_count(), 90);
        assert_eq!(gnp(0, 0.5, 1).edge_count(), 0);
    }

    #[test]
    fn gnp_no_self_loops_and_deterministic() {
        let g = gnp(50, 0.1, 7);
        assert!(g.edges.iter().all(|&(s, t)| s != t));
        assert_eq!(g, gnp(50, 0.1, 7));
        assert_ne!(g, gnp(50, 0.1, 8));
    }

    #[test]
    fn gnm_exact_count_and_distinct() {
        let g = gnm(40, 300, 2);
        g.validate();
        assert_eq!(g.edge_count(), 300);
        let set: std::collections::HashSet<_> = g.edges.iter().collect();
        assert_eq!(set.len(), 300);
        assert!(g.edges.iter().all(|&(s, t)| s != t));
    }

    #[test]
    #[should_panic(expected = "exceeds possible")]
    fn gnm_too_many_edges() {
        let _ = gnm(3, 10, 0);
    }
}
