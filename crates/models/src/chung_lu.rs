//! The Chung-Lu model: random graphs with a prescribed *expected* degree
//! sequence `w`, where edge `(i, j)` appears with probability
//! `w_i w_j / sum(w)`. Implemented in the fast edge-skipping-free form: draw
//! `sum(w) / 2`-ish endpoint pairs weighted by `w` (the "fast Chung-Lu"
//! used by the degree-grouping literature the paper cites), which matches
//! the expected degrees up to collision effects.

use crate::ModelGraph;
use csb_stats::rng::rng_for;
use csb_stats::AliasTable;

/// Generates a directed Chung-Lu graph whose expected total degrees follow
/// `weights`. Produces `round(sum(weights) / 2)` directed edges, endpoints
/// drawn independently with probability proportional to weight (self-loops
/// rejected).
///
/// # Panics
/// Panics if `weights` is empty or all zero.
pub fn chung_lu(weights: &[f64], seed: u64) -> ModelGraph {
    assert!(!weights.is_empty(), "need at least one vertex");
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "weights must have positive mass");
    let n = weights.len() as u32;
    let m = (total / 2.0).round() as usize;
    let table = AliasTable::new(weights);
    let mut rng = rng_for(seed, 0xC1);
    let mut edges = Vec::with_capacity(m);
    let mut guard = 0usize;
    while edges.len() < m {
        let s = table.sample(&mut rng) as u32;
        let t = table.sample(&mut rng) as u32;
        if s != t || n == 1 {
            edges.push((s, t));
        }
        guard += 1;
        assert!(guard < m * 100 + 1000, "chung-lu self-loop rejection stuck");
    }
    ModelGraph { num_vertices: n, edges }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_count_is_half_total_weight() {
        let w = vec![4.0; 100];
        let g = chung_lu(&w, 1);
        g.validate();
        assert_eq!(g.edge_count(), 200);
    }

    #[test]
    fn expected_degrees_tracked() {
        // Vertex 0 has 10x the weight of the others: its realized total
        // degree should be ~10x the average.
        let mut w = vec![2.0; 500];
        w[0] = 20.0;
        let g = chung_lu(&w, 2);
        let degrees = g.total_degrees();
        let avg_rest: f64 = degrees[1..].iter().sum::<u64>() as f64 / (degrees.len() - 1) as f64;
        let d0 = degrees[0] as f64;
        assert!(
            (5.0..20.0).contains(&(d0 / avg_rest)),
            "degree ratio {} (d0 {d0}, rest {avg_rest})",
            d0 / avg_rest
        );
    }

    #[test]
    fn reproduces_a_power_law_sequence() {
        // Prescribe w_i ~ i^-0.5 and check the realized distribution is
        // heavy-tailed in the same direction.
        let w: Vec<f64> = (1..=1000).map(|i| 100.0 * (i as f64).powf(-0.5)).collect();
        let g = chung_lu(&w, 3);
        let degrees = g.total_degrees();
        assert!(degrees[0] > degrees[900] * 3, "head {} tail {}", degrees[0], degrees[900]);
    }

    #[test]
    fn zero_weight_vertices_stay_isolated() {
        let w = vec![0.0, 10.0, 10.0];
        let g = chung_lu(&w, 4);
        assert_eq!(g.total_degrees()[0], 0);
    }

    #[test]
    fn deterministic() {
        let w = vec![3.0; 50];
        assert_eq!(chung_lu(&w, 9), chung_lu(&w, 9));
    }

    #[test]
    #[should_panic(expected = "positive mass")]
    fn all_zero_rejected() {
        let _ = chung_lu(&[0.0, 0.0], 0);
    }
}
