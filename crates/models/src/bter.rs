//! The Block Two-level Erdős-Rényi model (Kolda, Pinar, Plantenga,
//! Seshadhri): matches a degree distribution *and* per-degree clustering by
//! (phase 1) grouping same-degree vertices into dense "affinity blocks" run
//! as local ER graphs, and (phase 2) wiring the residual degree with a
//! Chung-Lu pass.

use crate::chung_lu::chung_lu;
use crate::erdos_renyi::gnp;
use crate::ModelGraph;

/// BTER parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BterParams {
    /// Within-block connectivity (phase-1 ER probability scale in `(0, 1]`).
    /// Higher = more triangles.
    pub rho: f64,
}

impl Default for BterParams {
    fn default() -> Self {
        BterParams { rho: 0.9 }
    }
}

/// Generates a BTER graph whose target total-degree sequence is `degrees`.
///
/// # Panics
/// Panics if `degrees` is empty or `rho` is outside `(0, 1]`.
pub fn bter(degrees: &[u64], params: BterParams, seed: u64) -> ModelGraph {
    assert!(!degrees.is_empty(), "need at least one vertex");
    assert!(params.rho > 0.0 && params.rho <= 1.0, "rho must be in (0,1]");

    // Sort vertices by degree ascending and carve consecutive runs of
    // same-ish degree into blocks of size d+1 (so a degree-d vertex can
    // realize its whole degree inside its block).
    let mut order: Vec<usize> = (0..degrees.len()).collect();
    order.sort_unstable_by_key(|&i| degrees[i]);

    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut residual = vec![0.0f64; degrees.len()];
    let mut cursor = 0usize;
    let mut block_seed = seed;
    while cursor < order.len() {
        let d = degrees[order[cursor]];
        if d == 0 {
            // Isolated vertices: no block, no residual.
            cursor += 1;
            continue;
        }
        let size = ((d + 1) as usize).min(order.len() - cursor);
        let members = &order[cursor..cursor + size];
        cursor += size;
        if size >= 2 {
            // Phase 1: local ER with probability rho * d_min/(size-1),
            // capped at rho.
            let p = (params.rho * d as f64 / (size as f64 - 1.0)).min(params.rho);
            block_seed = block_seed.wrapping_add(0x9E37_79B9);
            let local = gnp(size as u32, p, block_seed);
            for &(s, t) in &local.edges {
                // Emit each unordered pair once (phase 1 is undirected in
                // spirit; keep the lexicographic copy).
                if s < t {
                    edges.push((members[s as usize] as u32, members[t as usize] as u32));
                }
            }
        }
        // Phase 2 residual: whatever the block could not supply.
        for &i in members {
            let supplied = params.rho * (size as f64 - 1.0).min(degrees[i] as f64);
            residual[i] = (degrees[i] as f64 - supplied).max(0.0);
        }
    }

    // Phase 2: Chung-Lu over residual expected degrees.
    if residual.iter().any(|&r| r > 0.5) {
        let cl = chung_lu(&residual, seed ^ 0xB7E2);
        edges.extend(cl.edges);
    }
    ModelGraph { num_vertices: degrees.len() as u32, edges }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    /// Undirected triangle count over the simplified skeleton.
    fn triangles(g: &ModelGraph) -> u64 {
        let mut adj: Vec<HashSet<u32>> = vec![HashSet::new(); g.num_vertices as usize];
        for &(s, t) in &g.edges {
            if s != t {
                adj[s as usize].insert(t);
                adj[t as usize].insert(s);
            }
        }
        let mut count = 0u64;
        for u in 0..g.num_vertices {
            for &v in &adj[u as usize] {
                if v <= u {
                    continue;
                }
                for &w in &adj[v as usize] {
                    if w > v && adj[u as usize].contains(&w) {
                        count += 1;
                    }
                }
            }
        }
        count
    }

    #[test]
    fn degrees_roughly_realized() {
        let degrees: Vec<u64> = (0..400).map(|i| 2 + (i % 7)).collect();
        let g = bter(&degrees, BterParams::default(), 1);
        g.validate();
        let realized = g.total_degrees();
        let target_mean = degrees.iter().sum::<u64>() as f64 / 400.0;
        let got_mean = realized.iter().sum::<u64>() as f64 / 400.0;
        assert!(
            (got_mean - target_mean).abs() < target_mean * 0.5,
            "mean degree {got_mean} vs target {target_mean}"
        );
    }

    #[test]
    fn produces_far_more_triangles_than_chung_lu() {
        let degrees: Vec<u64> = vec![6; 600];
        let g_bter = bter(&degrees, BterParams { rho: 0.95 }, 2);
        let w: Vec<f64> = degrees.iter().map(|&d| d as f64).collect();
        let g_cl = chung_lu(&w, 2);
        let t_bter = triangles(&g_bter);
        let t_cl = triangles(&g_cl).max(1);
        assert!(t_bter > t_cl * 3, "BTER triangles {t_bter} should dwarf CL {t_cl}");
    }

    #[test]
    fn zero_degree_vertices_stay_isolated() {
        let mut degrees = vec![0u64; 10];
        degrees.extend(vec![4u64; 50]);
        let g = bter(&degrees, BterParams::default(), 3);
        let realized = g.total_degrees();
        assert!(realized[..10].iter().all(|&d| d == 0));
    }

    #[test]
    fn deterministic() {
        let degrees: Vec<u64> = (0..100).map(|i| 1 + i % 5).collect();
        assert_eq!(
            bter(&degrees, BterParams::default(), 7),
            bter(&degrees, BterParams::default(), 7)
        );
    }

    #[test]
    #[should_panic(expected = "rho")]
    fn bad_rho_rejected() {
        let _ = bter(&[1, 2], BterParams { rho: 0.0 }, 0);
    }
}
