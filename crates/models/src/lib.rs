//! # csb-models
//!
//! Baseline random-graph models — the generator families the paper's
//! Section II surveys as precursors of PGPBA/PGSK:
//!
//! * [`erdos_renyi`] — uniform random graphs, `G(n, p)` and `G(n, m)`.
//! * [`watts_strogatz`] — small-world ring-lattice rewiring.
//! * [`barabasi_albert`] — the classic sequential BA preferential-attachment
//!   model (the unparallelized ancestor of PGPBA).
//! * [`chung_lu`] — random graphs with a prescribed expected degree
//!   sequence (fast weighted-endpoint variant).
//! * [`sbm`] — the stochastic block model for community structure.
//! * [`rmat`] — the recursive matrix model (deterministic-quadrant ancestor
//!   of the stochastic Kronecker).
//! * [`bter`] — block two-level Erdős-Rényi, capturing degree distribution
//!   *and* clustering.
//!
//! None of these are seed-driven or property-aware; the
//! `baseline_comparison` harness in `csb-bench` scores them against
//! PGPBA/PGSK on the paper's veracity metric to show why the seed-driven
//! generators win for IDS benchmarking.
//!
//! All models emit a bare [`ModelGraph`] and are deterministic given their
//! seed.

pub mod barabasi_albert;
pub mod bter;
pub mod chung_lu;
pub mod erdos_renyi;
pub mod model;
pub mod rmat;
pub mod sbm;
pub mod watts_strogatz;

pub use barabasi_albert::barabasi_albert;
pub use bter::bter;
pub use chung_lu::chung_lu;
pub use erdos_renyi::{gnm, gnp};
pub use model::{zoo, GraphModel, TargetShape};
pub use rmat::rmat;
pub use sbm::sbm;
pub use watts_strogatz::watts_strogatz;

/// A bare directed multigraph produced by a baseline model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelGraph {
    /// Number of vertices; ids are `0..num_vertices`.
    pub num_vertices: u32,
    /// Directed edges.
    pub edges: Vec<(u32, u32)>,
}

impl ModelGraph {
    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Total (in + out) degree per vertex.
    pub fn total_degrees(&self) -> Vec<u64> {
        let mut d = vec![0u64; self.num_vertices as usize];
        for &(s, t) in &self.edges {
            d[s as usize] += 1;
            d[t as usize] += 1;
        }
        d
    }

    /// Checks every edge endpoint is in range.
    ///
    /// # Panics
    /// Panics on a dangling endpoint.
    pub fn validate(&self) {
        for &(s, t) in &self.edges {
            assert!(
                s < self.num_vertices && t < self.num_vertices,
                "dangling edge ({s}, {t}) with {} vertices",
                self.num_vertices
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degrees_count_both_endpoints() {
        let g = ModelGraph { num_vertices: 3, edges: vec![(0, 1), (1, 2), (0, 1)] };
        assert_eq!(g.total_degrees(), vec![2, 3, 1]);
        assert_eq!(g.edge_count(), 3);
        g.validate();
    }

    #[test]
    #[should_panic(expected = "dangling")]
    fn validate_catches_dangling() {
        ModelGraph { num_vertices: 1, edges: vec![(0, 5)] }.validate();
    }
}
