//! Watts-Strogatz small-world graphs: a ring lattice where each vertex
//! connects to its `k` nearest clockwise neighbors, with each edge's far
//! endpoint rewired uniformly at random with probability `beta`.

use crate::ModelGraph;
use csb_stats::rng::rng_for;
use rand::Rng;

/// Watts-Strogatz on `n` vertices, `k` clockwise neighbors each, rewiring
/// probability `beta`. Produces `n * k` directed edges.
///
/// # Panics
/// Panics unless `0 < k < n` and `0 <= beta <= 1`.
pub fn watts_strogatz(n: u32, k: u32, beta: f64, seed: u64) -> ModelGraph {
    assert!(n > 0 && k > 0 && k < n, "need 0 < k < n");
    assert!((0.0..=1.0).contains(&beta), "beta must be in [0,1]");
    let mut rng = rng_for(seed, 0x35);
    let mut edges = Vec::with_capacity((n * k) as usize);
    for u in 0..n {
        for j in 1..=k {
            let lattice_target = (u + j) % n;
            let target = if rng.gen::<f64>() < beta {
                // Rewire: any vertex except u.
                let mut t = rng.gen_range(0..n - 1);
                if t >= u {
                    t += 1;
                }
                t
            } else {
                lattice_target
            };
            edges.push((u, target));
        }
    }
    ModelGraph { num_vertices: n, edges }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_beta_is_pure_lattice() {
        let g = watts_strogatz(10, 2, 0.0, 1);
        g.validate();
        assert_eq!(g.edge_count(), 20);
        for &(u, v) in &g.edges {
            let d = (v + 10 - u) % 10;
            assert!(d == 1 || d == 2, "non-lattice edge ({u},{v})");
        }
    }

    #[test]
    fn out_degrees_always_k() {
        let g = watts_strogatz(30, 3, 0.5, 2);
        let mut out = [0u32; 30];
        for &(u, _) in &g.edges {
            out[u as usize] += 1;
        }
        assert!(out.iter().all(|&d| d == 3));
    }

    #[test]
    fn full_rewiring_breaks_lattice() {
        let g = watts_strogatz(200, 2, 1.0, 3);
        let lattice_edges = g
            .edges
            .iter()
            .filter(|&&(u, v)| {
                let d = (v + 200 - u) % 200;
                d == 1 || d == 2
            })
            .count();
        // Random targets rarely land back on the lattice.
        assert!(lattice_edges < 30, "still {lattice_edges} lattice edges");
    }

    #[test]
    fn no_self_loops() {
        let g = watts_strogatz(50, 4, 0.7, 4);
        assert!(g.edges.iter().all(|&(u, v)| u != v));
    }

    #[test]
    fn deterministic() {
        assert_eq!(watts_strogatz(40, 2, 0.3, 9), watts_strogatz(40, 2, 0.3, 9));
    }

    #[test]
    #[should_panic(expected = "0 < k < n")]
    fn k_too_large() {
        let _ = watts_strogatz(5, 5, 0.1, 0);
    }
}
