//! The stochastic block model: vertices are partitioned into blocks and the
//! probability of an edge depends only on the endpoint blocks. Each block
//! pair is an independent `G(n_a x n_b, p_ab)`, generated with geometric
//! skipping so cost is proportional to the edges produced.

use crate::ModelGraph;
use csb_stats::rng::rng_for;
use rand::Rng;

/// Generates an SBM graph.
///
/// `block_sizes[k]` is block `k`'s vertex count; `p[a][b]` the probability of
/// a directed edge from a block-`a` vertex to a block-`b` vertex. Self-loops
/// excluded.
///
/// # Panics
/// Panics if the probability matrix is not square of the right size or has
/// entries outside `[0, 1]`.
pub fn sbm(block_sizes: &[u32], p: &[Vec<f64>], seed: u64) -> ModelGraph {
    let k = block_sizes.len();
    assert!(k > 0, "need at least one block");
    assert_eq!(p.len(), k, "probability matrix must be {k}x{k}");
    for row in p {
        assert_eq!(row.len(), k, "probability matrix must be {k}x{k}");
        for &q in row {
            assert!((0.0..=1.0).contains(&q), "probabilities in [0,1]");
        }
    }
    let offsets: Vec<u32> = block_sizes
        .iter()
        .scan(0u32, |acc, &s| {
            let o = *acc;
            *acc += s;
            Some(o)
        })
        .collect();
    let n: u32 = block_sizes.iter().sum();

    let mut edges = Vec::new();
    let mut rng = rng_for(seed, 0x5B);
    for a in 0..k {
        for b in 0..k {
            let q = p[a][b];
            if q <= 0.0 || block_sizes[a] == 0 || block_sizes[b] == 0 {
                continue;
            }
            let rows = block_sizes[a] as u64;
            let cols = block_sizes[b] as u64;
            let total = rows * cols;
            let emit = |idx: u64, edges: &mut Vec<(u32, u32)>| {
                let s = offsets[a] + (idx / cols) as u32;
                let t = offsets[b] + (idx % cols) as u32;
                if s != t {
                    edges.push((s, t));
                }
            };
            if q >= 1.0 {
                for idx in 0..total {
                    emit(idx, &mut edges);
                }
            } else {
                let log_q = (1.0 - q).ln();
                let mut idx: u64 = 0;
                loop {
                    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                    let skip = (u.ln() / log_q).floor() as u64 + 1;
                    idx = match idx.checked_add(skip) {
                        Some(i) => i,
                        None => break,
                    };
                    if idx > total {
                        break;
                    }
                    emit(idx - 1, &mut edges);
                }
            }
        }
    }
    ModelGraph { num_vertices: n, edges }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn community_structure_emerges() {
        let sizes = [100, 100];
        let p = vec![vec![0.10, 0.005], vec![0.005, 0.10]];
        let g = sbm(&sizes, &p, 1);
        g.validate();
        let within = g.edges.iter().filter(|&&(s, t)| (s < 100) == (t < 100)).count();
        let across = g.edge_count() - within;
        assert!(within > across * 5, "within {within}, across {across}");
    }

    #[test]
    fn edge_counts_near_expectation() {
        let sizes = [200];
        let p = vec![vec![0.02]];
        let g = sbm(&sizes, &p, 2);
        let expect = 200.0 * 200.0 * 0.02;
        let got = g.edge_count() as f64;
        assert!((got - expect).abs() < expect * 0.2, "got {got}, expected {expect}");
    }

    #[test]
    fn asymmetric_blocks() {
        // Directed: block 0 -> block 1 only.
        let sizes = [50, 50];
        let p = vec![vec![0.0, 0.2], vec![0.0, 0.0]];
        let g = sbm(&sizes, &p, 3);
        assert!(!g.edges.is_empty());
        assert!(g.edges.iter().all(|&(s, t)| s < 50 && t >= 50));
    }

    #[test]
    fn full_probability_block() {
        let g = sbm(&[4], &[vec![1.0]], 4);
        assert_eq!(g.edge_count(), 12); // 4*4 minus 4 self-loops
    }

    #[test]
    fn deterministic() {
        let p = vec![vec![0.1, 0.02], vec![0.02, 0.1]];
        assert_eq!(sbm(&[30, 30], &p, 5), sbm(&[30, 30], &p, 5));
    }

    #[test]
    #[should_panic(expected = "must be 2x2")]
    fn ragged_matrix_rejected() {
        let _ = sbm(&[10, 10], &[vec![0.1]], 0);
    }
}
