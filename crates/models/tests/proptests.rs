//! Property-based invariants of the baseline graph models.

use csb_models::rmat::RmatParams;
use csb_models::{barabasi_albert, bter, chung_lu, gnm, gnp, rmat, sbm, watts_strogatz};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// G(n,p): all edges in range, no self-loops, determinism.
    #[test]
    fn gnp_invariants(n in 2u32..150, p in 0.0f64..0.3, seed in any::<u64>()) {
        let g = gnp(n, p, seed);
        g.validate();
        prop_assert!(g.edges.iter().all(|&(s, t)| s != t));
        prop_assert_eq!(g, gnp(n, p, seed));
    }

    /// G(n,m): exact edge count, distinct edges.
    #[test]
    fn gnm_invariants(n in 3u32..100, frac in 0.0f64..0.5, seed in any::<u64>()) {
        let possible = (n as u64 * (n as u64 - 1)) as usize;
        let m = (possible as f64 * frac) as usize;
        let g = gnm(n, m, seed);
        g.validate();
        prop_assert_eq!(g.edge_count(), m);
        let set: std::collections::HashSet<_> = g.edges.iter().collect();
        prop_assert_eq!(set.len(), m);
    }

    /// Watts-Strogatz: exactly n*k edges, out-degree k everywhere, no loops.
    #[test]
    fn ws_invariants(n in 5u32..120, k in 1u32..4, beta in 0.0f64..1.0, seed in any::<u64>()) {
        prop_assume!(k < n);
        let g = watts_strogatz(n, k, beta, seed);
        g.validate();
        prop_assert_eq!(g.edge_count() as u32, n * k);
        prop_assert!(g.edges.iter().all(|&(s, t)| s != t));
        let mut out = vec![0u32; n as usize];
        for &(s, _) in &g.edges {
            out[s as usize] += 1;
        }
        prop_assert!(out.iter().all(|&d| d == k));
    }

    /// Classic BA: edge count formula, every vertex has degree >= 1.
    #[test]
    fn ba_invariants(n in 10u32..300, m in 1u32..4, seed in any::<u64>()) {
        prop_assume!(m < n);
        let g = barabasi_albert(n, m, seed);
        g.validate();
        let core = m + 1;
        prop_assert_eq!(g.edge_count() as u32, core + (n - core) * m);
        prop_assert!(g.total_degrees().iter().all(|&d| d >= 1));
    }

    /// Chung-Lu: zero-weight vertices stay isolated; edge count = sum(w)/2.
    #[test]
    fn cl_invariants(weights in prop::collection::vec(0.0f64..8.0, 2..120), seed in any::<u64>()) {
        let total: f64 = weights.iter().sum();
        prop_assume!(total > 2.0);
        let g = chung_lu(&weights, seed);
        g.validate();
        prop_assert_eq!(g.edge_count(), (total / 2.0).round() as usize);
        let degrees = g.total_degrees();
        for (i, &w) in weights.iter().enumerate() {
            if w == 0.0 {
                prop_assert_eq!(degrees[i], 0);
            }
        }
    }

    /// SBM: zero-probability block pairs produce no cross edges.
    #[test]
    fn sbm_invariants(a in 2u32..60, b in 2u32..60, p in 0.01f64..0.3, seed in any::<u64>()) {
        let g = sbm(&[a, b], &[vec![p, 0.0], vec![0.0, p]], seed);
        g.validate();
        prop_assert!(g.edges.iter().all(|&(s, t)| (s < a) == (t < a)));
    }

    /// R-MAT: exact edge count, vertices in 2^scale.
    #[test]
    fn rmat_invariants(scale in 3u32..12, m in 0usize..3000, seed in any::<u64>()) {
        let g = rmat(scale, m, RmatParams::graph500(), seed);
        g.validate();
        prop_assert_eq!(g.edge_count(), m);
        prop_assert_eq!(g.num_vertices, 1 << scale);
    }

    /// BTER: zero-degree vertices stay isolated, realized mean degree within
    /// a factor of the target.
    #[test]
    fn bter_invariants(degs in prop::collection::vec(0u64..8, 10..120), seed in any::<u64>()) {
        let target_total: u64 = degs.iter().sum();
        prop_assume!(target_total > 20);
        let g = bter(&degs, csb_models::bter::BterParams::default(), seed);
        g.validate();
        let realized = g.total_degrees();
        for (i, &d) in degs.iter().enumerate() {
            if d == 0 {
                prop_assert_eq!(realized[i], 0);
            }
        }
        let realized_total: u64 = realized.iter().sum();
        let ratio = realized_total as f64 / target_total as f64;
        prop_assert!((0.3..3.0).contains(&ratio), "degree mass ratio {}", ratio);
    }
}
