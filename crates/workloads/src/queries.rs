//! The four query families of the benchmark workload.
//!
//! ```
//! use csb_graph::graph_from_flows;
//! use csb_net::assembler::FlowAssembler;
//! use csb_net::traffic::sim::{TrafficSim, TrafficSimConfig};
//! use csb_workloads::queries::subgraph;
//! use csb_workloads::GraphIndex;
//!
//! let trace = TrafficSim::new(TrafficSimConfig {
//!     duration_secs: 5.0,
//!     sessions_per_sec: 10.0,
//!     seed: 3,
//!     ..TrafficSimConfig::default()
//! })
//! .generate();
//! let g = graph_from_flows(&FlowAssembler::assemble(&trace.packets));
//! let idx = GraphIndex::build(&g);
//! let top = subgraph::top_k_talkers(&idx, 3);
//! assert_eq!(top.len(), 3);
//! assert!(top[0].1 >= top[1].1);
//! ```

use crate::index::GraphIndex;
use csb_graph::graph::VertexId;
use csb_net::flow::Protocol;
use std::collections::VecDeque;

/// Node queries: host-centric lookups.
pub mod node {
    use super::*;

    /// Degree profile of one host.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct HostProfile {
        /// Out-going connection count.
        pub out_degree: usize,
        /// In-coming connection count.
        pub in_degree: usize,
        /// Distinct peers (either direction).
        pub distinct_peers: usize,
    }

    /// Looks up a host and profiles its connectivity. `None` if unknown.
    pub fn host_profile(idx: &GraphIndex<'_>, ip: u32) -> Option<HostProfile> {
        let v = idx.vertex_by_ip(ip)?;
        let mut peers: Vec<u32> =
            idx.out().neighbors(v).iter().chain(idx.in_().neighbors(v).iter()).copied().collect();
        peers.sort_unstable();
        peers.dedup();
        Some(HostProfile {
            out_degree: idx.out().degree(v),
            in_degree: idx.in_().degree(v),
            distinct_peers: peers.len(),
        })
    }
}

/// Edge queries: NetFlow attribute scans.
pub mod edge {
    use super::*;

    /// Number of flows whose destination port is `port`.
    pub fn flows_to_port(idx: &GraphIndex<'_>, port: u16) -> usize {
        idx.graph().edge_data().iter().filter(|p| p.dst_port == port).count()
    }

    /// Number of flows moving more than `bytes` in either direction
    /// (exfiltration-style volume scan).
    pub fn heavy_flows(idx: &GraphIndex<'_>, bytes: u64) -> usize {
        idx.graph().edge_data().iter().filter(|p| p.in_bytes + p.out_bytes > bytes).count()
    }

    /// Total bytes per protocol.
    pub fn volume_by_protocol(idx: &GraphIndex<'_>) -> [(Protocol, u64); 3] {
        let mut tcp = 0u64;
        let mut udp = 0u64;
        let mut icmp = 0u64;
        for p in idx.graph().edge_data() {
            let b = p.in_bytes + p.out_bytes;
            match p.protocol {
                Protocol::Tcp => tcp += b,
                Protocol::Udp => udp += b,
                Protocol::Icmp => icmp += b,
            }
        }
        [(Protocol::Tcp, tcp), (Protocol::Udp, udp), (Protocol::Icmp, icmp)]
    }
}

/// Path queries: reachability and shortest paths (lateral movement).
pub mod path {
    use super::*;

    /// Unweighted shortest-path length (hops) between two hosts following
    /// edge direction. `None` when unreachable.
    pub fn shortest_path_len(idx: &GraphIndex<'_>, from: VertexId, to: VertexId) -> Option<u32> {
        if from == to {
            return Some(0);
        }
        let n = idx.graph().vertex_count();
        let mut dist = vec![u32::MAX; n];
        dist[from.index()] = 0;
        let mut queue = VecDeque::from([from.0]);
        while let Some(u) = queue.pop_front() {
            let d = dist[u as usize];
            for &w in idx.out().neighbors(VertexId(u)) {
                if dist[w as usize] == u32::MAX {
                    dist[w as usize] = d + 1;
                    if w == to.0 {
                        return Some(d + 1);
                    }
                    queue.push_back(w);
                }
            }
        }
        None
    }

    /// Number of hosts reachable within `k` hops (inclusive of the start).
    pub fn k_hop_reach(idx: &GraphIndex<'_>, from: VertexId, k: u32) -> usize {
        let n = idx.graph().vertex_count();
        let mut dist = vec![u32::MAX; n];
        dist[from.index()] = 0;
        let mut queue = VecDeque::from([from.0]);
        let mut count = 1usize;
        while let Some(u) = queue.pop_front() {
            let d = dist[u as usize];
            if d == k {
                continue;
            }
            for &w in idx.out().neighbors(VertexId(u)) {
                if dist[w as usize] == u32::MAX {
                    dist[w as usize] = d + 1;
                    count += 1;
                    queue.push_back(w);
                }
            }
        }
        count
    }
}

/// Sub-graph pattern queries.
pub mod subgraph {
    use super::*;

    /// Hosts that look like port scanners: more than `min_ports` distinct
    /// destination ports across their outgoing flows (the star pattern the
    /// Section IV detector keys on, expressed as a graph query).
    pub fn scan_star_candidates(idx: &GraphIndex<'_>, min_ports: usize) -> Vec<VertexId> {
        let g = idx.graph();
        let n = g.vertex_count();
        let mut ports: Vec<Vec<u16>> = vec![Vec::new(); n];
        for (_, s, _, p) in g.edges() {
            ports[s.index()].push(p.dst_port);
        }
        let mut out = Vec::new();
        for (v, list) in ports.iter_mut().enumerate() {
            list.sort_unstable();
            list.dedup();
            if list.len() > min_ports {
                out.push(VertexId(v as u32));
            }
        }
        out
    }

    /// Host pairs exchanging more than `min_bytes` in *both* directions
    /// summed over their flows (candidate exfil/beacon channels).
    pub fn heavy_pairs(idx: &GraphIndex<'_>, min_bytes: u64) -> Vec<(VertexId, VertexId)> {
        use std::collections::HashMap;
        let mut volume: HashMap<(u32, u32), u64> = HashMap::new();
        for (_, s, d, p) in idx.graph().edges() {
            // Canonical unordered pair.
            let key = if s.0 <= d.0 { (s.0, d.0) } else { (d.0, s.0) };
            *volume.entry(key).or_insert(0) += p.in_bytes + p.out_bytes;
        }
        let mut out: Vec<(VertexId, VertexId)> = volume
            .into_iter()
            .filter(|&(_, v)| v > min_bytes)
            .map(|((a, b), _)| (VertexId(a), VertexId(b)))
            .collect();
        out.sort_unstable();
        out
    }

    /// The `k` highest-total-degree hosts ("top talkers"), descending.
    pub fn top_k_talkers(idx: &GraphIndex<'_>, k: usize) -> Vec<(VertexId, usize)> {
        let mut all: Vec<(VertexId, usize)> = (0..idx.graph().vertex_count() as u32)
            .map(|v| (VertexId(v), idx.total_degree(VertexId(v))))
            .collect();
        all.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        all.truncate(k);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csb_graph::graph_from_flows;
    use csb_graph::NetflowGraph;
    use csb_net::flow::{FlowRecord, TcpConnState};

    fn flow(src: u32, dst: u32, dport: u16, bytes: u64, proto: Protocol) -> FlowRecord {
        FlowRecord {
            src_ip: src,
            dst_ip: dst,
            protocol: proto,
            src_port: 40000,
            dst_port: dport,
            duration_ms: 5,
            out_bytes: bytes / 4,
            in_bytes: bytes - bytes / 4,
            out_pkts: 2,
            in_pkts: 3,
            state: TcpConnState::Sf,
            syn_count: 1,
            ack_count: 4,
            first_ts_micros: 0,
        }
    }

    /// 1 -> 2 -> 3 -> 4 chain plus a scanner host 9 probing 2.
    fn sample() -> NetflowGraph {
        let mut flows = vec![
            flow(1, 2, 80, 1_000, Protocol::Tcp),
            flow(2, 3, 443, 2_000, Protocol::Tcp),
            flow(3, 4, 22, 500, Protocol::Tcp),
            flow(1, 2, 80, 9_000, Protocol::Udp),
        ];
        for port in 1..=30 {
            flows.push(flow(9, 2, port, 40, Protocol::Tcp));
        }
        graph_from_flows(&flows)
    }

    #[test]
    fn node_profile() {
        let g = sample();
        let idx = GraphIndex::build(&g);
        let p = node::host_profile(&idx, 1).expect("host 1");
        assert_eq!(p.out_degree, 2);
        assert_eq!(p.in_degree, 0);
        assert_eq!(p.distinct_peers, 1);
        assert!(node::host_profile(&idx, 12345).is_none());
    }

    #[test]
    fn edge_scans() {
        let g = sample();
        let idx = GraphIndex::build(&g);
        assert_eq!(edge::flows_to_port(&idx, 80), 2);
        assert_eq!(edge::flows_to_port(&idx, 443), 1);
        assert_eq!(edge::heavy_flows(&idx, 1_500), 2); // 2000 and 9000
        let vols = edge::volume_by_protocol(&idx);
        assert_eq!(vols[1].1, 9_000); // UDP
        assert_eq!(vols[2].1, 0); // ICMP
    }

    #[test]
    fn path_queries() {
        let g = sample();
        let idx = GraphIndex::build(&g);
        let v1 = idx.vertex_by_ip(1).expect("1");
        let v4 = idx.vertex_by_ip(4).expect("4");
        assert_eq!(path::shortest_path_len(&idx, v1, v4), Some(3));
        assert_eq!(path::shortest_path_len(&idx, v4, v1), None); // directed
        assert_eq!(path::shortest_path_len(&idx, v1, v1), Some(0));
        assert_eq!(path::k_hop_reach(&idx, v1, 1), 2); // 1 + host 2
        assert_eq!(path::k_hop_reach(&idx, v1, 3), 4); // 1,2,3,4
    }

    #[test]
    fn subgraph_patterns() {
        let g = sample();
        let idx = GraphIndex::build(&g);
        let scanners = subgraph::scan_star_candidates(&idx, 20);
        assert_eq!(scanners.len(), 1);
        assert_eq!(*g.vertex(scanners[0]), 9);

        let pairs = subgraph::heavy_pairs(&idx, 5_000);
        assert_eq!(pairs.len(), 1);
        let (a, b) = pairs[0];
        let ips = (*g.vertex(a), *g.vertex(b));
        assert!(ips == (1, 2) || ips == (2, 1));

        let top = subgraph::top_k_talkers(&idx, 2);
        assert_eq!(*g.vertex(top[0].0), 2, "host 2 is the busiest");
        assert!(top[0].1 >= top[1].1);
    }
}
