//! Flow-stream replay: turns a (synthetic) property-graph back into a
//! time-ordered NetFlow stream — the inverse of the seed mapping — so
//! streaming consumers (the Section IV on-line detector, or any IDS under
//! benchmark) can be driven by generated data and measured on throughput
//! and time-to-detection.

use csb_graph::NetflowGraph;
use csb_net::flow::{FlowRecord, Protocol, TcpConnState};
use csb_stats::rng::rng_for;
use rand::Rng;

/// Synthesizes a flow stream from the graph's edges: every edge becomes one
/// flow whose start time is drawn uniformly over the replay window. Output
/// is sorted by start time. Deterministic given `seed`.
///
/// SYN/ACK packet counts (not stored on edges) are reconstructed from the
/// STATE attribute the way a collector would infer them.
pub fn replay_flows(g: &NetflowGraph, duration_secs: f64, seed: u64) -> Vec<FlowRecord> {
    assert!(duration_secs > 0.0 && duration_secs.is_finite(), "duration must be positive");
    let horizon = (duration_secs * 1e6) as u64;
    let mut rng = rng_for(seed, 0x9E91);
    let mut flows: Vec<FlowRecord> = g
        .edges()
        .map(|(_, s, d, p)| {
            let (syn, ack) = match (p.protocol, p.state) {
                (Protocol::Tcp, TcpConnState::S0 | TcpConnState::Sh) => (1, 0),
                (Protocol::Tcp, TcpConnState::Rej) => (1, 1),
                (Protocol::Tcp, _) => (2, (p.out_pkts + p.in_pkts).max(2) as u32),
                _ => (0, 0),
            };
            FlowRecord {
                src_ip: *g.vertex(s),
                dst_ip: *g.vertex(d),
                protocol: p.protocol,
                src_port: p.src_port,
                dst_port: p.dst_port,
                duration_ms: p.duration_ms,
                out_bytes: p.out_bytes,
                in_bytes: p.in_bytes,
                out_pkts: p.out_pkts,
                in_pkts: p.in_pkts,
                state: p.state,
                syn_count: syn,
                ack_count: ack,
                first_ts_micros: rng.gen_range(0..horizon.max(1)),
            }
        })
        .collect();
    flows.sort_unstable_by_key(|f| f.first_ts_micros);
    flows
}

#[cfg(test)]
mod tests {
    use super::*;
    use csb_graph::graph_from_flows;

    fn flow(src: u32, dst: u32, state: TcpConnState) -> FlowRecord {
        FlowRecord {
            src_ip: src,
            dst_ip: dst,
            protocol: Protocol::Tcp,
            src_port: 40_000,
            dst_port: 80,
            duration_ms: 9,
            out_bytes: 100,
            in_bytes: 200,
            out_pkts: 3,
            in_pkts: 4,
            state,
            syn_count: 2,
            ack_count: 7,
            first_ts_micros: 0,
        }
    }

    #[test]
    fn replay_covers_every_edge_in_order() {
        let g = graph_from_flows(&[
            flow(1, 2, TcpConnState::Sf),
            flow(2, 3, TcpConnState::S0),
            flow(3, 1, TcpConnState::Rej),
        ]);
        let out = replay_flows(&g, 10.0, 7);
        assert_eq!(out.len(), 3);
        assert!(out.windows(2).all(|w| w[0].first_ts_micros <= w[1].first_ts_micros));
        assert!(out.iter().all(|f| f.first_ts_micros < 10_000_000));
        // Attributes survive.
        assert!(out.iter().all(|f| f.out_bytes == 100 && f.in_bytes == 200));
    }

    #[test]
    fn syn_ack_reconstruction_follows_state() {
        let g = graph_from_flows(&[flow(1, 2, TcpConnState::S0)]);
        let out = replay_flows(&g, 1.0, 1);
        assert_eq!(out[0].syn_count, 1);
        assert_eq!(out[0].ack_count, 0);
        let g2 = graph_from_flows(&[flow(1, 2, TcpConnState::Sf)]);
        let out2 = replay_flows(&g2, 1.0, 1);
        assert_eq!(out2[0].syn_count, 2);
        assert!(out2[0].ack_count >= 2);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = graph_from_flows(&[flow(1, 2, TcpConnState::Sf), flow(2, 3, TcpConnState::Sf)]);
        assert_eq!(replay_flows(&g, 5.0, 3), replay_flows(&g, 5.0, 3));
        assert_ne!(
            replay_flows(&g, 5.0, 3)[0].first_ts_micros,
            replay_flows(&g, 5.0, 4)[0].first_ts_micros
        );
    }

    #[test]
    #[should_panic(expected = "duration must be positive")]
    fn zero_duration_rejected() {
        let g = graph_from_flows(&[flow(1, 2, TcpConnState::Sf)]);
        let _ = replay_flows(&g, 0.0, 0);
    }
}
