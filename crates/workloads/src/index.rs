//! Query index over a NetFlow property-graph: host-address lookup plus CSR
//! adjacency, built once and shared by all queries (the role a graph
//! database's indexes play for the platforms the benchmark targets).

use csb_graph::graph::VertexId;
use csb_graph::{Csr, NetflowGraph};
use std::collections::HashMap;

/// Prebuilt indexes for one dataset.
pub struct GraphIndex<'g> {
    graph: &'g NetflowGraph,
    by_ip: HashMap<u32, VertexId>,
    out_csr: Csr,
    in_csr: Csr,
}

impl<'g> GraphIndex<'g> {
    /// Builds the index in `O(|V| + |E|)`.
    pub fn build(graph: &'g NetflowGraph) -> Self {
        let mut by_ip = HashMap::with_capacity(graph.vertex_count());
        for v in graph.vertices() {
            // First writer wins: synthetic graphs can reuse an address.
            by_ip.entry(*graph.vertex(v)).or_insert(v);
        }
        GraphIndex { graph, by_ip, out_csr: Csr::out_of(graph), in_csr: Csr::in_of(graph) }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g NetflowGraph {
        self.graph
    }

    /// Host lookup by IPv4 address.
    pub fn vertex_by_ip(&self, ip: u32) -> Option<VertexId> {
        self.by_ip.get(&ip).copied()
    }

    /// Out-adjacency.
    pub fn out(&self) -> &Csr {
        &self.out_csr
    }

    /// In-adjacency.
    pub fn in_(&self) -> &Csr {
        &self.in_csr
    }

    /// Total degree of a vertex.
    pub fn total_degree(&self, v: VertexId) -> usize {
        self.out_csr.degree(v) + self.in_csr.degree(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csb_graph::graph_from_flows;
    use csb_net::flow::{FlowRecord, Protocol, TcpConnState};

    pub(crate) fn flow(src: u32, dst: u32, dport: u16, bytes: u64) -> FlowRecord {
        FlowRecord {
            src_ip: src,
            dst_ip: dst,
            protocol: Protocol::Tcp,
            src_port: 40000,
            dst_port: dport,
            duration_ms: 5,
            out_bytes: bytes / 4,
            in_bytes: bytes - bytes / 4,
            out_pkts: 2,
            in_pkts: 3,
            state: TcpConnState::Sf,
            syn_count: 1,
            ack_count: 4,
            first_ts_micros: 0,
        }
    }

    #[test]
    fn lookup_and_degrees() {
        let g = graph_from_flows(&[
            flow(10, 20, 80, 100),
            flow(10, 30, 443, 200),
            flow(20, 30, 22, 50),
        ]);
        let idx = GraphIndex::build(&g);
        let v10 = idx.vertex_by_ip(10).expect("host 10");
        assert_eq!(*g.vertex(v10), 10);
        assert_eq!(idx.out().degree(v10), 2);
        assert_eq!(idx.in_().degree(v10), 0);
        assert_eq!(idx.total_degree(v10), 2);
        assert!(idx.vertex_by_ip(99).is_none());
    }
}
