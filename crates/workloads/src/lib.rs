//! # csb-workloads
//!
//! The workload component of the IDS benchmark. The paper's introduction:
//! "to be representative from the workload perspective, the benchmark must
//! include typical operations executed in the cyber-security domain, such as
//! queries on **nodes**, **edges**, **paths**, and **sub-graphs**." This
//! crate implements those four query families over [`csb_graph::NetflowGraph`]
//! datasets (seed or synthetic) plus a deterministic workload runner that
//! measures per-query latency and throughput — the piece a platform under
//! benchmark would execute against the generated data.
//!
//! * [`queries::node`] — host lookup by address, degree profile of a host.
//! * [`queries::edge`] — attribute scans: flows to a port, flows above a
//!   byte threshold, per-protocol volumes.
//! * [`queries::path`] — BFS shortest paths and k-hop reachability
//!   (lateral-movement style questions).
//! * [`queries::subgraph`] — pattern queries: scan-star candidates, heavy
//!   bidirectional pairs (exfiltration-style), top-k talkers.
//! * [`runner`] — a mixed-workload driver with deterministic argument
//!   sampling and latency statistics.

pub mod index;
pub mod queries;
pub mod replay;
pub mod runner;

pub use index::GraphIndex;
pub use replay::replay_flows;
pub use runner::{run_workload, WorkloadReport, WorkloadSpec};
