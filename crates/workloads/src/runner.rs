//! Mixed-workload driver: executes a configurable mix of the four query
//! families against one dataset with deterministic argument sampling, and
//! reports per-family latency statistics — what a platform-under-benchmark
//! would be measured on once fed the synthetic data.

use crate::index::GraphIndex;
use crate::queries::{edge, node, path, subgraph};
use csb_graph::graph::VertexId;
use csb_graph::NetflowGraph;
use csb_stats::rng::rng_for;
use csb_stats::Summary;
use rand::Rng;
use std::time::Instant;

/// How many queries of each family to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadSpec {
    /// Node queries (host profiles).
    pub node_queries: usize,
    /// Edge scans (port / volume filters).
    pub edge_queries: usize,
    /// Path queries (shortest path, k-hop).
    pub path_queries: usize,
    /// Sub-graph pattern queries.
    pub subgraph_queries: usize,
    /// RNG seed for argument sampling.
    pub seed: u64,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            node_queries: 200,
            edge_queries: 50,
            path_queries: 50,
            subgraph_queries: 10,
            seed: 0x0B5,
        }
    }
}

/// Latency statistics for one query family.
#[derive(Debug, Clone)]
pub struct FamilyStats {
    /// Family label.
    pub family: &'static str,
    /// Per-query latency summary, microseconds.
    pub latency_micros: Summary,
    /// Sum of result cardinalities (sanity signal that queries did work; also
    /// prevents the optimizer from discarding them).
    pub total_results: u64,
}

/// A full workload run.
#[derive(Debug, Clone)]
pub struct WorkloadReport {
    /// Stats per family, in node/edge/path/subgraph order.
    pub families: Vec<FamilyStats>,
    /// End-to-end wall time, seconds.
    pub total_secs: f64,
}

impl WorkloadReport {
    /// Total queries executed.
    pub fn total_queries(&self) -> u64 {
        self.families.iter().map(|f| f.latency_micros.count()).sum()
    }

    /// Queries per second over the whole run.
    pub fn qps(&self) -> f64 {
        if self.total_secs == 0.0 {
            0.0
        } else {
            self.total_queries() as f64 / self.total_secs
        }
    }
}

fn timed<R>(stats: &mut Summary, f: impl FnOnce() -> R) -> R {
    let start = Instant::now();
    let r = f();
    stats.record(start.elapsed().as_secs_f64() * 1e6);
    r
}

/// Runs the workload against the graph.
///
/// # Panics
/// Panics on an empty graph (no arguments to sample).
pub fn run_workload(graph: &NetflowGraph, spec: &WorkloadSpec) -> WorkloadReport {
    assert!(graph.vertex_count() > 0, "workload needs a non-empty graph");
    let _span = csb_obs::span_cat("workload.run", "workloads");
    let wall = Instant::now();
    let idx = {
        let _build = csb_obs::span_cat("workload.index_build", "workloads");
        GraphIndex::build(graph)
    };
    let mut rng = rng_for(spec.seed, 0);
    let n = graph.vertex_count() as u32;
    let random_vertex = |rng: &mut rand::rngs::SmallRng| VertexId(rng.gen_range(0..n));

    // Node family.
    let mut node_stats = Summary::new();
    let mut node_results = 0u64;
    let fam = csb_obs::span_cat("workload.node", "workloads");
    for _ in 0..spec.node_queries {
        let ip = *graph.vertex(random_vertex(&mut rng));
        let r = timed(&mut node_stats, || node::host_profile(&idx, ip));
        node_results += r.map(|p| p.distinct_peers as u64).unwrap_or(0);
    }

    // Edge family: alternate the three scans.
    drop(fam);
    let mut edge_stats = Summary::new();
    let mut edge_results = 0u64;
    let fam = csb_obs::span_cat("workload.edge", "workloads");
    for i in 0..spec.edge_queries {
        match i % 3 {
            0 => {
                let port = [80u16, 443, 53, 22, 25][i % 5];
                edge_results += timed(&mut edge_stats, || edge::flows_to_port(&idx, port)) as u64;
            }
            1 => {
                let threshold = 1u64 << (10 + i % 10);
                edge_results +=
                    timed(&mut edge_stats, || edge::heavy_flows(&idx, threshold)) as u64;
            }
            _ => {
                let vols = timed(&mut edge_stats, || edge::volume_by_protocol(&idx));
                edge_results += u64::from(vols.iter().any(|&(_, v)| v > 0));
            }
        }
    }

    // Path family: alternate shortest path and k-hop.
    drop(fam);
    let mut path_stats = Summary::new();
    let mut path_results = 0u64;
    let fam = csb_obs::span_cat("workload.path", "workloads");
    for i in 0..spec.path_queries {
        let a = random_vertex(&mut rng);
        if i % 2 == 0 {
            let b = random_vertex(&mut rng);
            path_results +=
                timed(&mut path_stats, || path::shortest_path_len(&idx, a, b)).unwrap_or(0) as u64;
        } else {
            path_results += timed(&mut path_stats, || path::k_hop_reach(&idx, a, 2)) as u64;
        }
    }

    // Sub-graph family.
    drop(fam);
    let mut sub_stats = Summary::new();
    let mut sub_results = 0u64;
    let fam = csb_obs::span_cat("workload.subgraph", "workloads");
    for i in 0..spec.subgraph_queries {
        match i % 3 {
            0 => {
                sub_results +=
                    timed(&mut sub_stats, || subgraph::scan_star_candidates(&idx, 10)).len() as u64;
            }
            1 => {
                sub_results +=
                    timed(&mut sub_stats, || subgraph::heavy_pairs(&idx, 1_000_000)).len() as u64;
            }
            _ => {
                sub_results +=
                    timed(&mut sub_stats, || subgraph::top_k_talkers(&idx, 10)).len() as u64;
            }
        }
    }

    drop(fam);
    let total_queries =
        (spec.node_queries + spec.edge_queries + spec.path_queries + spec.subgraph_queries) as u64;
    csb_obs::counter_add("workload.queries", total_queries);
    csb_obs::obs_debug!(
        "workload: {total_queries} queries over {} vertices / {} edges",
        graph.vertex_count(),
        graph.edge_count()
    );
    WorkloadReport {
        families: vec![
            FamilyStats { family: "node", latency_micros: node_stats, total_results: node_results },
            FamilyStats { family: "edge", latency_micros: edge_stats, total_results: edge_results },
            FamilyStats { family: "path", latency_micros: path_stats, total_results: path_results },
            FamilyStats {
                family: "subgraph",
                latency_micros: sub_stats,
                total_results: sub_results,
            },
        ],
        total_secs: wall.elapsed().as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csb_graph::graph_from_flows;
    use csb_net::flow::{FlowRecord, Protocol, TcpConnState};

    fn graph(edges: usize) -> NetflowGraph {
        let flows: Vec<FlowRecord> = (0..edges)
            .map(|i| FlowRecord {
                src_ip: (i % 50) as u32 + 1,
                dst_ip: (i % 23) as u32 + 100,
                protocol: Protocol::Tcp,
                src_port: 40000,
                dst_port: (i % 7) as u16 * 100 + 22,
                duration_ms: 1,
                out_bytes: (i as u64 % 900) * 100,
                in_bytes: 100,
                out_pkts: 1,
                in_pkts: 1,
                state: TcpConnState::Sf,
                syn_count: 1,
                ack_count: 1,
                first_ts_micros: 0,
            })
            .collect();
        graph_from_flows(&flows)
    }

    #[test]
    fn runs_the_requested_mix() {
        let g = graph(500);
        let spec = WorkloadSpec {
            node_queries: 20,
            edge_queries: 9,
            path_queries: 10,
            subgraph_queries: 6,
            seed: 1,
        };
        let r = run_workload(&g, &spec);
        assert_eq!(r.total_queries(), 45);
        assert_eq!(r.families.len(), 4);
        assert_eq!(r.families[0].latency_micros.count(), 20);
        assert_eq!(r.families[3].latency_micros.count(), 6);
        assert!(r.qps() > 0.0);
        // Queries actually touched data.
        assert!(r.families[0].total_results > 0);
        assert!(r.families[1].total_results > 0);
    }

    #[test]
    fn argument_sampling_is_deterministic() {
        // Latencies vary run to run, but result cardinalities (and thus the
        // sampled arguments) must not.
        let g = graph(300);
        let spec = WorkloadSpec::default();
        let a = run_workload(&g, &spec);
        let b = run_workload(&g, &spec);
        for (fa, fb) in a.families.iter().zip(b.families.iter()) {
            assert_eq!(fa.total_results, fb.total_results, "family {}", fa.family);
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_graph_rejected() {
        let g = NetflowGraph::new();
        let _ = run_workload(&g, &WorkloadSpec::default());
    }
}
