//! Sharded stores: one logical graph store split across N chunk files
//! written by parallel workers and read back in a deterministic round-robin
//! interleave.
//!
//! A shard set is a tiny manifest file (magic `CSBSHRD1`) naming N ordinary
//! store files that live beside it. Chunk placement is by rule, not by
//! table: every vertex chunk goes to shard 0, and the i-th **edge** chunk of
//! the stream goes to shard `i % N`. Each shard preserves its subsequence in
//! file order, so the logical chunk order is recoverable by dealing the
//! shards back out round-robin — which is exactly what [`ShardedScan`] and
//! [`load_graph_sharded`] do. The logical record stream is therefore
//! **identical** to what a single-file sink would produce from the same
//! pushes, and every OOC kernel scores bit-identically over either layout.
//!
//! [`ShardedGraphSink`] runs one writer thread per shard: the producer
//! re-chunks the record stream and hands finished chunks to the shard's
//! worker over a bounded channel, so column encoding, CRC32, and file I/O of
//! different shards proceed in parallel with generation.
//! [`CheckpointedShardedGraphSink`] is the fault-tolerant variant: a
//! synchronous round-robin writer (barriers need a deterministic durable
//! point across every shard) that fsyncs all shards and atomically replaces
//! a multi-shard manifest every N chunks; a killed run resumes to
//! **byte-identical** shard files.

use crate::codec::Compression;
use crate::crc32::crc32;
use crate::format::{corrupt, ChunkEntry, ChunkKind, FileKind, StoreError, FILE_MAGIC};
use crate::ooc::StoreScan;
use crate::read::StoreReader;
use crate::sink::{encode_edge_chunk, version_for, write_sink_chunk, EdgeSink, CHUNK_RECORDS};
use crate::write::StoreWriter;
use csb_graph::graph::VertexId;
use csb_graph::ooc::EdgeScan;
use csb_graph::{EdgeProperties, NetflowGraph};
use std::fs::{File, OpenOptions};
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Shard-set manifest magic, first 8 bytes.
pub const SHARD_SET_MAGIC: [u8; 8] = *b"CSBSHRD1";

/// Shard-set manifest format version.
pub const SHARD_SET_VERSION: u32 = 1;

/// Sharded checkpoint manifest magic (the single-file checkpoint uses
/// `CSBCKPT1`).
pub const SHARDED_CKPT_MAGIC: [u8; 8] = *b"CSBCKPT2";

/// Chunks a worker channel may buffer before the producer blocks.
const WORKER_QUEUE_CHUNKS: usize = 4;

/// Names the N shard files of the manifest at `manifest_path`:
/// `<file_name>.s0`, `<file_name>.s1`, … in the same directory.
pub fn shard_file_names(manifest_path: impl AsRef<Path>, shards: usize) -> Vec<String> {
    let base = manifest_path
        .as_ref()
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "store".to_string());
    (0..shards).map(|i| format!("{base}.s{i}")).collect()
}

/// True when the file at `path` starts with the shard-set magic.
pub fn is_shard_set(path: impl AsRef<Path>) -> Result<bool, StoreError> {
    let mut f = File::open(path)?;
    let mut magic = [0u8; 8];
    let mut read = 0;
    while read < 8 {
        match f.read(&mut magic[read..])? {
            0 => return Ok(false),
            n => read += n,
        }
    }
    Ok(magic == SHARD_SET_MAGIC)
}

/// The manifest of a shard set: what kind of store it is and the shard file
/// names, in shard order, relative to the manifest's directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSetManifest {
    /// What the shard files hold.
    pub kind: FileKind,
    /// Shard file names, index = shard id.
    pub shards: Vec<String>,
}

impl ShardSetManifest {
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32 + self.shards.len() * 24);
        out.extend_from_slice(&SHARD_SET_MAGIC);
        out.extend_from_slice(&SHARD_SET_VERSION.to_le_bytes());
        out.extend_from_slice(&[self.kind.code(), 0, 0, 0]);
        out.extend_from_slice(&(self.shards.len() as u32).to_le_bytes());
        for name in &self.shards {
            let bytes = name.as_bytes();
            assert!(bytes.len() <= u16::MAX as usize, "shard file name too long");
            out.extend_from_slice(&(bytes.len() as u16).to_le_bytes());
            out.extend_from_slice(bytes);
        }
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    fn from_bytes(bytes: &[u8]) -> Result<Self, StoreError> {
        let bad = |msg: &str| corrupt(0, format!("shard manifest: {msg}"));
        if bytes.len() < 24 || bytes[..8] != SHARD_SET_MAGIC {
            return Err(bad("bad magic"));
        }
        let body_len = bytes.len() - 4;
        let stored_crc = u32::from_le_bytes(bytes[body_len..].try_into().expect("4 bytes"));
        if crc32(&bytes[..body_len]) != stored_crc {
            return Err(bad("CRC mismatch"));
        }
        if u32::from_le_bytes(bytes[8..12].try_into().unwrap()) != SHARD_SET_VERSION {
            return Err(bad("unsupported version"));
        }
        let kind = FileKind::from_code(bytes[12]).ok_or_else(|| bad("bad file kind"))?;
        let count = u32::from_le_bytes(bytes[16..20].try_into().unwrap()) as usize;
        if count == 0 {
            return Err(bad("zero shards"));
        }
        let mut shards = Vec::with_capacity(count);
        let mut o = 20usize;
        for _ in 0..count {
            let len = bytes
                .get(o..o + 2)
                .map(|b| u16::from_le_bytes([b[0], b[1]]) as usize)
                .ok_or_else(|| bad("truncated"))?;
            o += 2;
            let name = bytes.get(o..o + len).ok_or_else(|| bad("truncated"))?;
            o += len;
            shards.push(
                String::from_utf8(name.to_vec()).map_err(|_| bad("shard name is not UTF-8"))?,
            );
        }
        if o != body_len {
            return Err(bad("trailing bytes"));
        }
        Ok(ShardSetManifest { kind, shards })
    }

    /// Writes the manifest at `path` (atomically: temp file + rename).
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), StoreError> {
        let path = path.as_ref();
        let tmp = path.with_extension("shrd.tmp");
        let mut f = File::create(&tmp)?;
        f.write_all(&self.to_bytes())?;
        f.sync_all()?;
        drop(f);
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Loads and validates the manifest at `path`.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        Self::from_bytes(&std::fs::read(path)?)
    }

    /// Absolute paths of the shard files (manifest-relative names resolved
    /// against the manifest's directory).
    pub fn shard_paths(&self, manifest_path: impl AsRef<Path>) -> Vec<PathBuf> {
        let dir = manifest_path.as_ref().parent().map(Path::to_path_buf).unwrap_or_default();
        self.shards.iter().map(|n| dir.join(n)).collect()
    }
}

enum WorkerMsg {
    Chunk { kind: ChunkKind, records: u64, payload: Vec<u8> },
}

fn spawn_shard_worker(
    path: PathBuf,
    compression: Compression,
    rx: Receiver<WorkerMsg>,
) -> JoinHandle<Result<(), StoreError>> {
    // Spawned threads do not inherit the caller's recorder scope; capture it
    // here so a scoped job's shard-writer telemetry stays on its recorder.
    let recorder = csb_obs::recorder::current();
    std::thread::spawn(move || {
        let _obs_scope = recorder.install();
        let mut writer =
            StoreWriter::create_with(&path, FileKind::Graph, version_for(compression))?;
        while let Ok(WorkerMsg::Chunk { kind, records, payload }) = rx.recv() {
            write_sink_chunk(&mut writer, compression, kind, records, &payload)?;
            csb_obs::counter_add("store.shard_chunks", 1);
        }
        writer.finish()?;
        Ok(())
    })
}

/// An [`EdgeSink`] writing a shard set with one writer thread per shard:
/// encoding, CRC, and I/O of different shards overlap with generation and
/// with each other. Produces bytes that depend only on the record stream,
/// the shard count, and the compression mode — a re-run (or a checkpointed
/// run via [`CheckpointedShardedGraphSink`]) is byte-identical per shard.
#[derive(Debug)]
pub struct ShardedGraphSink {
    manifest_path: PathBuf,
    shard_names: Vec<String>,
    txs: Vec<Option<SyncSender<WorkerMsg>>>,
    handles: Vec<Option<JoinHandle<Result<(), StoreError>>>>,
    chunk_records: usize,
    vertices: Vec<u32>,
    src: Vec<u32>,
    dst: Vec<u32>,
    props: Vec<EdgeProperties>,
    edge_chunks_sent: u64,
}

impl ShardedGraphSink {
    /// Creates a shard set: manifest at `path`, shard files
    /// `<path>.s0 … <path>.s{n-1}` beside it.
    pub fn create(
        path: impl AsRef<Path>,
        shards: usize,
        compression: Compression,
    ) -> Result<Self, StoreError> {
        let shards = shards.max(1);
        let path = path.as_ref().to_path_buf();
        let shard_names = shard_file_names(&path, shards);
        let dir = path.parent().map(Path::to_path_buf).unwrap_or_default();
        let mut txs = Vec::with_capacity(shards);
        let mut handles = Vec::with_capacity(shards);
        for name in &shard_names {
            let (tx, rx) = sync_channel(WORKER_QUEUE_CHUNKS);
            txs.push(Some(tx));
            handles.push(Some(spawn_shard_worker(dir.join(name), compression, rx)));
        }
        csb_obs::gauge_set("store.shards", shards as i64);
        Ok(ShardedGraphSink {
            manifest_path: path,
            shard_names,
            txs,
            handles,
            chunk_records: CHUNK_RECORDS,
            vertices: Vec::new(),
            src: Vec::new(),
            dst: Vec::new(),
            props: Vec::new(),
            edge_chunks_sent: 0,
        })
    }

    /// Overrides the chunk size (tests use small chunks).
    pub fn with_chunk_records(mut self, records: usize) -> Self {
        self.chunk_records = records.max(1);
        self
    }

    /// Joins worker `s` to surface its real error.
    fn worker_error(&mut self, s: usize) -> StoreError {
        self.txs[s] = None; // close the channel so the worker unblocks
        match self.handles[s].take().map(JoinHandle::join) {
            Some(Ok(Err(e))) => e,
            Some(Err(_)) => StoreError::Transient(format!("shard {s} writer panicked")),
            _ => StoreError::Transient(format!("shard {s} writer terminated early")),
        }
    }

    fn send_chunk(
        &mut self,
        shard: usize,
        kind: ChunkKind,
        records: u64,
        payload: Vec<u8>,
    ) -> Result<(), StoreError> {
        let msg = WorkerMsg::Chunk { kind, records, payload };
        let tx = match self.txs[shard].clone() {
            Some(tx) => tx,
            None => {
                return Err(StoreError::Transient(format!("shard {shard} writer already failed")))
            }
        };
        if tx.send(msg).is_err() {
            return Err(self.worker_error(shard));
        }
        Ok(())
    }

    fn flush_full_vertex_chunks(&mut self) -> Result<(), StoreError> {
        while self.vertices.len() >= self.chunk_records {
            let rest = self.vertices.split_off(self.chunk_records);
            let chunk = std::mem::replace(&mut self.vertices, rest);
            let payload: Vec<u8> = chunk.iter().flat_map(|ip| ip.to_le_bytes()).collect();
            self.send_chunk(0, ChunkKind::Vertex, chunk.len() as u64, payload)?;
        }
        Ok(())
    }

    fn flush_full_edge_chunks(&mut self) -> Result<(), StoreError> {
        while self.src.len() >= self.chunk_records {
            let rest_src = self.src.split_off(self.chunk_records);
            let rest_dst = self.dst.split_off(self.chunk_records);
            let rest_props = self.props.split_off(self.chunk_records);
            let src = std::mem::replace(&mut self.src, rest_src);
            let dst = std::mem::replace(&mut self.dst, rest_dst);
            let props = std::mem::replace(&mut self.props, rest_props);
            let payload = encode_edge_chunk(&src, &dst, &props);
            let shard = (self.edge_chunks_sent % self.shard_names.len() as u64) as usize;
            self.edge_chunks_sent += 1;
            self.send_chunk(shard, ChunkKind::Edge, src.len() as u64, payload)?;
        }
        Ok(())
    }

    /// Flushes the partial buffers, seals every shard, and writes the
    /// shard-set manifest.
    pub fn finish(mut self) -> Result<(), StoreError> {
        if !self.vertices.is_empty() {
            let payload: Vec<u8> = self.vertices.iter().flat_map(|ip| ip.to_le_bytes()).collect();
            let n = self.vertices.len() as u64;
            self.vertices.clear();
            self.send_chunk(0, ChunkKind::Vertex, n, payload)?;
        }
        if !self.src.is_empty() {
            let payload = encode_edge_chunk(&self.src, &self.dst, &self.props);
            let n = self.src.len() as u64;
            let shard = (self.edge_chunks_sent % self.shard_names.len() as u64) as usize;
            self.edge_chunks_sent += 1;
            self.src.clear();
            self.dst.clear();
            self.props.clear();
            self.send_chunk(shard, ChunkKind::Edge, n, payload)?;
        }
        for tx in &mut self.txs {
            *tx = None; // close channels: workers drain and seal their files
        }
        let mut first_err = None;
        for (s, h) in self.handles.iter_mut().enumerate() {
            let joined = match h.take().map(JoinHandle::join) {
                Some(Ok(r)) => r,
                Some(Err(_)) => Err(StoreError::Transient(format!("shard {s} writer panicked"))),
                None => Ok(()),
            };
            if let (Err(e), None) = (joined, &first_err) {
                first_err = Some(e);
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        let manifest = ShardSetManifest { kind: FileKind::Graph, shards: self.shard_names.clone() };
        manifest.save(&self.manifest_path)
    }
}

impl EdgeSink for ShardedGraphSink {
    fn push_vertices(&mut self, ips: &[u32]) -> Result<(), StoreError> {
        self.vertices.extend_from_slice(ips);
        self.flush_full_vertex_chunks()
    }

    fn push_edges(
        &mut self,
        src: &[u32],
        dst: &[u32],
        props: &[EdgeProperties],
    ) -> Result<(), StoreError> {
        assert_eq!(src.len(), dst.len(), "src/dst length mismatch");
        assert_eq!(src.len(), props.len(), "props length mismatch");
        self.src.extend_from_slice(src);
        self.dst.extend_from_slice(dst);
        self.props.extend_from_slice(props);
        self.flush_full_edge_chunks()
    }
}

/// Validates that the per-shard edge-chunk counts are consistent with
/// round-robin placement of `total` chunks over `shards` shards.
fn check_round_robin(counts: &[usize]) -> Result<usize, StoreError> {
    let total: usize = counts.iter().sum();
    let s = counts.len();
    for (i, &n) in counts.iter().enumerate() {
        let want = (total + s - 1 - i) / s;
        if n != want {
            return Err(corrupt(
                0,
                format!(
                    "shard {i} holds {n} edge chunks; round-robin placement of {total} over \
                     {s} shards requires {want}"
                ),
            ));
        }
    }
    Ok(total)
}

/// [`EdgeScan`] over a shard set: deals the shards' edge chunks back out
/// round-robin, replaying the exact logical chunk order the sink consumed.
/// Each shard keeps its own encoded-block cache (the budget of
/// [`ShardedScan::with_cache_budget`] is split evenly).
#[derive(Debug)]
pub struct ShardedScan {
    scans: Vec<StoreScan<BufReader<File>>>,
    edge_chunks_total: usize,
    vertex_count: usize,
    edge_count: u64,
}

impl ShardedScan {
    /// Opens the shard set whose manifest is at `path`.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        let manifest = ShardSetManifest::load(&path)?;
        if manifest.kind != FileKind::Graph {
            return Err(corrupt(12, "not a graph shard set"));
        }
        let mut scans = Vec::with_capacity(manifest.shards.len());
        for p in manifest.shard_paths(&path) {
            scans.push(StoreScan::open(p)?);
        }
        let mut vertex_count = 0usize;
        let mut edge_count = 0u64;
        for scan in &mut scans {
            vertex_count += scan.vertex_count()?;
            edge_count += scan.edge_count()?;
        }
        for scan in &mut scans {
            scan.set_vertex_range(vertex_count);
        }
        let counts: Vec<usize> = scans.iter().map(StoreScan::edge_chunk_count).collect();
        let edge_chunks_total = check_round_robin(&counts)?;
        Ok(ShardedScan { scans, edge_chunks_total, vertex_count, edge_count })
    }

    /// Caps the total decoded-endpoint cache at `bytes`, split evenly
    /// across shards (0 disables caching).
    pub fn with_cache_budget(mut self, bytes: u64) -> Self {
        let per_shard = bytes / self.scans.len() as u64;
        self.scans = self.scans.into_iter().map(|s| s.with_cache_budget(per_shard)).collect();
        self
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.scans.len()
    }

    /// Runs `f` over logical edge chunk `i`, dealt back from its shard in
    /// the round-robin order the writer used. Borrows cache-resident
    /// chunks in place, like [`StoreScan::with_endpoints`].
    fn with_logical_chunk(
        &mut self,
        i: usize,
        f: &mut dyn FnMut(&[u32], &[u32]),
    ) -> Result<(), StoreError> {
        let shards = self.scans.len();
        self.scans[i % shards].with_endpoints(i / shards, f)
    }
}

impl EdgeScan for ShardedScan {
    type Error = StoreError;

    fn vertex_count(&mut self) -> Result<usize, StoreError> {
        Ok(self.vertex_count)
    }

    fn edge_count(&mut self) -> Result<u64, StoreError> {
        Ok(self.edge_count)
    }

    fn scan_edges(&mut self, f: &mut dyn FnMut(&[u32], &[u32])) -> Result<(), StoreError> {
        for i in 0..self.edge_chunks_total {
            self.with_logical_chunk(i, f)?;
        }
        Ok(())
    }

    fn scan_sources(&mut self, f: &mut dyn FnMut(&[u32])) -> Result<(), StoreError> {
        for i in 0..self.edge_chunks_total {
            self.with_logical_chunk(i, &mut |src, _| f(src))?;
        }
        Ok(())
    }

    fn scan_targets(&mut self, f: &mut dyn FnMut(&[u32])) -> Result<(), StoreError> {
        for i in 0..self.edge_chunks_total {
            self.with_logical_chunk(i, &mut |_, dst| f(dst))?;
        }
        Ok(())
    }

    fn scratch_bytes(&self) -> u64 {
        self.scans.iter().map(|s| 2 * (8 + 4) * s.max_chunk_records()).max().unwrap_or(0)
    }
}

/// An [`EdgeScan`] over either store layout, chosen by the file's magic.
#[derive(Debug)]
pub enum ScanSource {
    /// One sealed store file.
    Single(StoreScan<BufReader<File>>),
    /// A shard set behind its manifest.
    Sharded(ShardedScan),
}

/// Opens `path` as whichever scan its magic says it is: a plain store file
/// or a shard-set manifest.
pub fn open_scan(path: impl AsRef<Path>) -> Result<ScanSource, StoreError> {
    if is_shard_set(&path)? {
        Ok(ScanSource::Sharded(ShardedScan::open(path)?))
    } else {
        Ok(ScanSource::Single(StoreScan::open(path)?))
    }
}

impl ScanSource {
    /// Caps the encoded-block cache at `bytes` (see
    /// [`StoreScan::with_cache_budget`]).
    pub fn with_cache_budget(self, bytes: u64) -> Self {
        match self {
            ScanSource::Single(s) => ScanSource::Single(s.with_cache_budget(bytes)),
            ScanSource::Sharded(s) => ScanSource::Sharded(s.with_cache_budget(bytes)),
        }
    }
}

impl EdgeScan for ScanSource {
    type Error = StoreError;

    fn vertex_count(&mut self) -> Result<usize, StoreError> {
        match self {
            ScanSource::Single(s) => s.vertex_count(),
            ScanSource::Sharded(s) => s.vertex_count(),
        }
    }

    fn edge_count(&mut self) -> Result<u64, StoreError> {
        match self {
            ScanSource::Single(s) => s.edge_count(),
            ScanSource::Sharded(s) => s.edge_count(),
        }
    }

    fn scan_edges(&mut self, f: &mut dyn FnMut(&[u32], &[u32])) -> Result<(), StoreError> {
        match self {
            ScanSource::Single(s) => s.scan_edges(f),
            ScanSource::Sharded(s) => s.scan_edges(f),
        }
    }

    fn scan_sources(&mut self, f: &mut dyn FnMut(&[u32])) -> Result<(), StoreError> {
        match self {
            ScanSource::Single(s) => s.scan_sources(f),
            ScanSource::Sharded(s) => s.scan_sources(f),
        }
    }

    fn scan_targets(&mut self, f: &mut dyn FnMut(&[u32])) -> Result<(), StoreError> {
        match self {
            ScanSource::Single(s) => s.scan_targets(f),
            ScanSource::Sharded(s) => s.scan_targets(f),
        }
    }

    fn scratch_bytes(&self) -> u64 {
        match self {
            ScanSource::Single(s) => s.scratch_bytes(),
            ScanSource::Sharded(s) => s.scratch_bytes(),
        }
    }
}

/// Writes `g` as a sharded graph store: a shard-set manifest at `path` with
/// `shards` shard files beside it, each written by its own worker thread in
/// the requested `compression`. The sharded counterpart of
/// [`crate::sink::save_graph`].
pub fn save_graph_sharded(
    path: impl AsRef<Path>,
    g: &NetflowGraph,
    shards: usize,
    compression: Compression,
) -> Result<(), StoreError> {
    let mut sink = ShardedGraphSink::create(path, shards, compression)?;
    crate::sink::push_graph(&mut sink, g)?;
    sink.finish()
}

/// Reconstructs the property graph behind a shard-set manifest, replaying
/// the logical chunk order (vertex chunks in shard-0 order, edge chunks
/// dealt round-robin).
pub fn load_graph_sharded(path: impl AsRef<Path>) -> Result<NetflowGraph, StoreError> {
    let manifest = ShardSetManifest::load(&path)?;
    if manifest.kind != FileKind::Graph {
        return Err(corrupt(12, "not a graph shard set"));
    }
    let mut readers = Vec::with_capacity(manifest.shards.len());
    for p in manifest.shard_paths(&path) {
        readers.push(StoreReader::open(p)?);
    }
    let mut ips: Vec<u32> = Vec::new();
    let mut edge_lists: Vec<Vec<usize>> = Vec::with_capacity(readers.len());
    for r in &mut readers {
        let mut edges = Vec::new();
        for idx in 0..r.chunks().len() {
            match r.chunks()[idx].kind {
                ChunkKind::Vertex => ips.extend(r.read_vertex_batch(idx)?),
                ChunkKind::Edge => edges.push(idx),
                ChunkKind::Flow | ChunkKind::LabeledFlow => {
                    return Err(corrupt(r.chunks()[idx].offset, "flow chunk in a graph store"))
                }
            }
        }
        edge_lists.push(edges);
    }
    let counts: Vec<usize> = edge_lists.iter().map(Vec::len).collect();
    let total = check_round_robin(&counts)?;
    let mut src: Vec<VertexId> = Vec::new();
    let mut dst: Vec<VertexId> = Vec::new();
    let mut props: Vec<EdgeProperties> = Vec::new();
    let shards = readers.len();
    for i in 0..total {
        let (s, p) = (i % shards, i / shards);
        let batch = readers[s].read_edge_batch(edge_lists[s][p])?;
        src.extend(batch.src.into_iter().map(VertexId));
        dst.extend(batch.dst.into_iter().map(VertexId));
        props.extend(batch.props);
    }
    let n = ips.len();
    if src.iter().chain(dst.iter()).any(|v| v.index() >= n) {
        return Err(corrupt(0, "edge endpoint out of vertex range"));
    }
    Ok(NetflowGraph::from_parts(ips, src, dst, props))
}

/// Writes labeled flows as a sharded flow store: a shard-set manifest at
/// `path` with `shards` flow-store shard files beside it, chunks dealt
/// round-robin. Shard bytes depend only on the flow stream, the shard
/// count, the chunk size, and the compression mode.
pub fn save_labeled_flows_sharded(
    path: impl AsRef<Path>,
    flows: &[csb_net::LabeledFlow],
    shards: usize,
    compression: Compression,
    chunk_records: usize,
) -> Result<(), StoreError> {
    assert!(shards > 0, "need at least one shard");
    let _span = csb_obs::span_cat("store.save_flows_sharded", "store");
    let path = path.as_ref();
    let names = shard_file_names(path, shards);
    let manifest = ShardSetManifest { kind: FileKind::Flows, shards: names };
    let dir = path.parent().map(Path::to_path_buf).unwrap_or_default();
    let mut sinks = Vec::with_capacity(shards);
    for name in &manifest.shards {
        sinks.push(
            crate::sink::LabeledFlowStoreSink::create_with(dir.join(name), compression)?
                .with_chunk_records(chunk_records.max(1)),
        );
    }
    // Deal whole chunks round-robin; each shard sink's chunk size equals the
    // deal size, so shard chunk boundaries match the logical ones.
    for (i, chunk) in flows.chunks(chunk_records.max(1)).enumerate() {
        use crate::sink::LabeledFlowSink as _;
        sinks[i % shards].push_labeled(chunk)?;
    }
    for sink in sinks {
        sink.finish()?;
    }
    manifest.save(path)
}

/// Reconstructs the labeled flow list behind a flow shard-set manifest,
/// replaying the round-robin chunk order.
pub fn load_labeled_flows_sharded(
    path: impl AsRef<Path>,
) -> Result<Vec<csb_net::LabeledFlow>, StoreError> {
    let manifest = ShardSetManifest::load(&path)?;
    if manifest.kind != FileKind::Flows {
        return Err(corrupt(12, "not a flow shard set"));
    }
    let mut readers = Vec::with_capacity(manifest.shards.len());
    for p in manifest.shard_paths(&path) {
        readers.push(StoreReader::open(p)?);
    }
    let mut chunk_lists: Vec<Vec<usize>> = Vec::with_capacity(readers.len());
    for r in &mut readers {
        let mut chunks = Vec::new();
        for idx in 0..r.chunks().len() {
            match r.chunks()[idx].kind {
                ChunkKind::Flow | ChunkKind::LabeledFlow => chunks.push(idx),
                k => {
                    return Err(corrupt(
                        r.chunks()[idx].offset,
                        format!("{k:?} chunk in a flow shard set"),
                    ))
                }
            }
        }
        chunk_lists.push(chunks);
    }
    let counts: Vec<usize> = chunk_lists.iter().map(Vec::len).collect();
    let total = check_round_robin(&counts)?;
    let shards = readers.len();
    let mut flows = Vec::new();
    for i in 0..total {
        let (s, p) = (i % shards, i / shards);
        flows.extend(readers[s].read_labeled_flow_batch(chunk_lists[s][p])?);
    }
    Ok(flows)
}

/// Per-shard durable state inside a [`ShardedCheckpointManifest`].
#[derive(Debug, Clone, PartialEq)]
pub struct ShardCheckpoint {
    /// Shard-file length as of the barrier.
    pub bytes_durable: u64,
    /// Footer index of the shard's durable chunks.
    pub chunks: Vec<ChunkEntry>,
}

/// The durable state of a checkpointed *sharded* run: the single-file
/// manifest's fields plus one durable prefix per shard, written atomically
/// at each barrier so all shards resume from one consistent cut.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedCheckpointManifest {
    /// Who was generating, with what config and seed.
    pub identity: crate::checkpoint::CheckpointIdentity,
    /// Records per store chunk.
    pub chunk_records: u64,
    /// Store format version of the shard files (1 or 2).
    pub store_version: u32,
    /// Vertices contained in durable vertex chunks.
    pub vertices_durable: u64,
    /// Edges contained in durable edge chunks.
    pub edges_durable: u64,
    /// Durable prefix of each shard.
    pub shards: Vec<ShardCheckpoint>,
}

impl ShardedCheckpointManifest {
    /// Path of the manifest inside `dir` (same file name as the single-file
    /// manifest; the magic disambiguates).
    pub fn path_in(dir: impl AsRef<Path>) -> PathBuf {
        dir.as_ref().join(crate::checkpoint::MANIFEST_FILE)
    }

    fn to_bytes(&self) -> Vec<u8> {
        let gen = self.identity.generator.as_bytes();
        assert!(gen.len() <= u8::MAX as usize, "generator name too long");
        let mut out = Vec::with_capacity(128 + gen.len());
        out.extend_from_slice(&SHARDED_CKPT_MAGIC);
        out.extend_from_slice(&SHARD_SET_VERSION.to_le_bytes());
        out.push(gen.len() as u8);
        out.extend_from_slice(gen);
        out.extend_from_slice(&self.identity.config_hash.to_le_bytes());
        out.extend_from_slice(&self.identity.master_seed.to_le_bytes());
        out.extend_from_slice(&self.chunk_records.to_le_bytes());
        out.extend_from_slice(&self.store_version.to_le_bytes());
        out.extend_from_slice(&self.vertices_durable.to_le_bytes());
        out.extend_from_slice(&self.edges_durable.to_le_bytes());
        out.extend_from_slice(&(self.shards.len() as u32).to_le_bytes());
        for s in &self.shards {
            out.extend_from_slice(&s.bytes_durable.to_le_bytes());
            out.extend_from_slice(&(s.chunks.len() as u64).to_le_bytes());
            for c in &s.chunks {
                c.encode_into(&mut out, self.store_version);
            }
        }
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    fn from_bytes(bytes: &[u8]) -> Result<Self, StoreError> {
        let bad = |msg: &str| corrupt(0, format!("sharded checkpoint manifest: {msg}"));
        if bytes.len() < 16 || bytes[..8] != SHARDED_CKPT_MAGIC {
            return Err(bad("bad magic"));
        }
        let body_len = bytes.len() - 4;
        let stored_crc = u32::from_le_bytes(bytes[body_len..].try_into().expect("4 bytes"));
        if crc32(&bytes[..body_len]) != stored_crc {
            return Err(bad("CRC mismatch"));
        }
        if u32::from_le_bytes(bytes[8..12].try_into().unwrap()) != SHARD_SET_VERSION {
            return Err(bad("unsupported version"));
        }
        let gen_len = bytes[12] as usize;
        let mut o = 13usize;
        let take = |o: &mut usize, n: usize| -> Result<&[u8], StoreError> {
            let s = bytes.get(*o..*o + n).ok_or_else(|| bad("truncated"))?;
            *o += n;
            Ok(s)
        };
        let generator = String::from_utf8(take(&mut o, gen_len)?.to_vec())
            .map_err(|_| bad("generator name is not UTF-8"))?;
        let u64_of = |b: &[u8]| u64::from_le_bytes(b.try_into().expect("8 bytes"));
        let config_hash = u64_of(take(&mut o, 8)?);
        let master_seed = u64_of(take(&mut o, 8)?);
        let chunk_records = u64_of(take(&mut o, 8)?);
        let store_version = u32::from_le_bytes(take(&mut o, 4)?.try_into().expect("4 bytes"));
        let vertices_durable = u64_of(take(&mut o, 8)?);
        let edges_durable = u64_of(take(&mut o, 8)?);
        let shard_count =
            u32::from_le_bytes(take(&mut o, 4)?.try_into().expect("4 bytes")) as usize;
        let mut shards = Vec::with_capacity(shard_count);
        for _ in 0..shard_count {
            let bytes_durable = u64_of(take(&mut o, 8)?);
            let chunk_count = u64_of(take(&mut o, 8)?) as usize;
            let mut chunks = Vec::with_capacity(chunk_count);
            for _ in 0..chunk_count {
                chunks.push(ChunkEntry::decode_from(&bytes[..body_len], &mut o, store_version, 0)?);
            }
            shards.push(ShardCheckpoint { bytes_durable, chunks });
        }
        if o != body_len {
            return Err(bad("trailing bytes"));
        }
        Ok(ShardedCheckpointManifest {
            identity: crate::checkpoint::CheckpointIdentity { generator, config_hash, master_seed },
            chunk_records,
            store_version,
            vertices_durable,
            edges_durable,
            shards,
        })
    }

    /// Writes the manifest atomically: temp file, fsync, rename.
    pub fn save(&self, dir: impl AsRef<Path>) -> Result<(), StoreError> {
        let dir = dir.as_ref();
        let tmp = dir.join(format!("{}.tmp", crate::checkpoint::MANIFEST_FILE));
        let mut f = File::create(&tmp)?;
        f.write_all(&self.to_bytes())?;
        f.sync_all()?;
        drop(f);
        std::fs::rename(&tmp, Self::path_in(dir))?;
        Ok(())
    }

    /// Loads and validates the manifest in `dir`.
    pub fn load(dir: impl AsRef<Path>) -> Result<Self, StoreError> {
        let path = Self::path_in(&dir);
        if !path.is_file() {
            return Err(StoreError::Mismatch(format!(
                "no checkpoint manifest at {} — nothing to resume",
                path.display()
            )));
        }
        Self::from_bytes(&std::fs::read(path)?)
    }
}

/// The fault-tolerant sharded sink: round-robin chunk placement identical to
/// [`ShardedGraphSink`], written synchronously so every barrier is a
/// consistent cut — flush + fsync all shards, then atomically replace one
/// [`ShardedCheckpointManifest`] covering every shard's durable prefix. A
/// killed run resumes to byte-identical shard files.
#[derive(Debug)]
pub struct CheckpointedShardedGraphSink {
    writers: Vec<StoreWriter<BufWriter<File>>>,
    manifest_path: PathBuf,
    shard_names: Vec<String>,
    dir: PathBuf,
    identity: crate::checkpoint::CheckpointIdentity,
    compression: Compression,
    chunk_records: usize,
    checkpoint_every: u64,
    vertices: Vec<u32>,
    src: Vec<u32>,
    dst: Vec<u32>,
    props: Vec<EdgeProperties>,
    vertices_chunked: u64,
    edges_chunked: u64,
    edge_chunks_written: u64,
    chunks_since_barrier: u64,
    chunks_written: u64,
    skip_vertices: u64,
    skip_edges: u64,
    kill_after_chunks: Option<u64>,
    kill_aborts_process: bool,
    stop: Option<Arc<AtomicBool>>,
}

impl CheckpointedShardedGraphSink {
    /// Starts a fresh checkpointed sharded run: manifest at `path`, shard
    /// files beside it, barrier manifests in `dir`.
    pub fn create(
        path: impl AsRef<Path>,
        dir: impl AsRef<Path>,
        identity: crate::checkpoint::CheckpointIdentity,
        shards: usize,
        compression: Compression,
    ) -> Result<Self, StoreError> {
        std::fs::create_dir_all(&dir)?;
        let shards = shards.max(1);
        let path = path.as_ref().to_path_buf();
        let shard_names = shard_file_names(&path, shards);
        let parent = path.parent().map(Path::to_path_buf).unwrap_or_default();
        let mut writers = Vec::with_capacity(shards);
        for name in &shard_names {
            writers.push(StoreWriter::create_with(
                parent.join(name),
                FileKind::Graph,
                version_for(compression),
            )?);
        }
        Ok(CheckpointedShardedGraphSink {
            writers,
            manifest_path: path,
            shard_names,
            dir: dir.as_ref().to_path_buf(),
            identity,
            compression,
            chunk_records: CHUNK_RECORDS,
            checkpoint_every: crate::checkpoint::DEFAULT_CHECKPOINT_EVERY,
            vertices: Vec::new(),
            src: Vec::new(),
            dst: Vec::new(),
            props: Vec::new(),
            vertices_chunked: 0,
            edges_chunked: 0,
            edge_chunks_written: 0,
            chunks_since_barrier: 0,
            chunks_written: 0,
            skip_vertices: 0,
            skip_edges: 0,
            kill_after_chunks: None,
            kill_aborts_process: false,
            stop: None,
        })
    }

    /// Resumes a killed sharded run: validates the identity triple,
    /// truncates every shard back to its durable prefix (verifying each
    /// shard's last durable chunk CRC), and arranges for the re-pushed
    /// durable records to be dropped.
    pub fn resume(
        path: impl AsRef<Path>,
        dir: impl AsRef<Path>,
        identity: crate::checkpoint::CheckpointIdentity,
        compression: Compression,
    ) -> Result<Self, StoreError> {
        let m = ShardedCheckpointManifest::load(&dir)?;
        if m.identity != identity {
            return Err(StoreError::Mismatch(format!(
                "checkpoint belongs to a different run: manifest has {}/config {:#x}/seed {}, \
                 resume requested {}/config {:#x}/seed {}",
                m.identity.generator,
                m.identity.config_hash,
                m.identity.master_seed,
                identity.generator,
                identity.config_hash,
                identity.master_seed
            )));
        }
        if m.store_version != version_for(compression) {
            return Err(StoreError::Mismatch(format!(
                "checkpoint store version {} does not match requested compression {}",
                m.store_version,
                compression.name()
            )));
        }
        let path = path.as_ref().to_path_buf();
        let shard_names = shard_file_names(&path, m.shards.len());
        let parent = path.parent().map(Path::to_path_buf).unwrap_or_default();
        let mut writers = Vec::with_capacity(m.shards.len());
        let mut edge_chunks_written = 0u64;
        for (name, state) in shard_names.iter().zip(&m.shards) {
            let shard_path = parent.join(name);
            let mut file = OpenOptions::new().read(true).write(true).open(&shard_path)?;
            let file_len = file.metadata()?.len();
            if file_len < state.bytes_durable {
                return Err(StoreError::Mismatch(format!(
                    "shard {} is shorter ({file_len} B) than the manifest's durable prefix \
                     ({} B)",
                    shard_path.display(),
                    state.bytes_durable
                )));
            }
            let mut header = [0u8; 8];
            file.read_exact(&mut header)?;
            if header != FILE_MAGIC {
                return Err(corrupt(0, "resume target is not a csb store file"));
            }
            if let Some(last) = state.chunks.last() {
                let _span = csb_obs::span_cat("checkpoint.validate", "store");
                file.seek(SeekFrom::Start(last.offset + 28))?;
                let mut payload = vec![0u8; last.payload_len as usize];
                file.read_exact(&mut payload)?;
                if crc32(&payload) != last.crc32 {
                    return Err(corrupt(last.offset, "last durable chunk fails its CRC on resume"));
                }
            }
            file.set_len(state.bytes_durable)?;
            file.seek(SeekFrom::Start(state.bytes_durable))?;
            edge_chunks_written +=
                state.chunks.iter().filter(|c| c.kind == ChunkKind::Edge).count() as u64;
            writers.push(StoreWriter::resume_at(
                BufWriter::new(file),
                m.store_version,
                state.bytes_durable,
                state.chunks.clone(),
            ));
        }
        csb_obs::counter_add("checkpoint.resumes", 1);
        Ok(CheckpointedShardedGraphSink {
            writers,
            manifest_path: path,
            shard_names,
            dir: dir.as_ref().to_path_buf(),
            identity,
            compression,
            chunk_records: (m.chunk_records as usize).max(1),
            checkpoint_every: crate::checkpoint::DEFAULT_CHECKPOINT_EVERY,
            vertices: Vec::new(),
            src: Vec::new(),
            dst: Vec::new(),
            props: Vec::new(),
            vertices_chunked: m.vertices_durable,
            edges_chunked: m.edges_durable,
            edge_chunks_written,
            chunks_since_barrier: 0,
            chunks_written: 0,
            skip_vertices: m.vertices_durable,
            skip_edges: m.edges_durable,
            kill_after_chunks: None,
            kill_aborts_process: false,
            stop: None,
        })
    }

    /// Chunks between barriers (at least 1).
    pub fn with_checkpoint_every(mut self, chunks: u64) -> Self {
        self.checkpoint_every = chunks.max(1);
        self
    }

    /// Overrides the chunk size on a *fresh* run; a resumed sink keeps the
    /// manifest's chunk size.
    pub fn with_chunk_records(mut self, records: usize) -> Self {
        if self.chunks_written == 0 && self.skip_vertices == 0 && self.skip_edges == 0 {
            self.chunk_records = records.max(1);
        }
        self
    }

    /// Fault-injection hook, as on
    /// [`CheckpointedGraphSink`](crate::checkpoint::CheckpointedGraphSink):
    /// refuse (or abort the process) before writing chunk `n + 1`.
    pub fn with_kill_after_chunks(mut self, n: u64, abort_process: bool) -> Self {
        self.kill_after_chunks = Some(n);
        self.kill_aborts_process = abort_process;
        self
    }

    /// Cooperative preemption hook, as on
    /// [`CheckpointedGraphSink`](crate::checkpoint::CheckpointedGraphSink):
    /// once `flag` is set, the next chunk boundary takes a barrier (one
    /// consistent durable cut across all shards) and surfaces a `Transient`
    /// error so the caller can requeue the job for byte-identical resume.
    pub fn with_stop_flag(mut self, flag: Arc<AtomicBool>) -> Self {
        self.stop = Some(flag);
        self
    }

    fn write_chunk(
        &mut self,
        kind: ChunkKind,
        records: u64,
        payload: &[u8],
    ) -> Result<(), StoreError> {
        if self.stop.as_ref().is_some_and(|f| f.load(Ordering::Relaxed)) {
            self.barrier()?;
            return Err(StoreError::Transient(
                "preempted: stop flag set at chunk boundary (checkpoint barrier taken)".into(),
            ));
        }
        if let Some(n) = self.kill_after_chunks {
            if self.chunks_written >= n {
                if self.kill_aborts_process {
                    std::process::abort();
                }
                return Err(StoreError::Transient(format!(
                    "injected kill after {n} chunks (checkpoint fault hook)"
                )));
            }
        }
        let shard = match kind {
            ChunkKind::Vertex => 0,
            _ => {
                let s = (self.edge_chunks_written % self.writers.len() as u64) as usize;
                self.edge_chunks_written += 1;
                s
            }
        };
        write_sink_chunk(&mut self.writers[shard], self.compression, kind, records, payload)?;
        csb_obs::counter_add("store.shard_chunks", 1);
        self.chunks_written += 1;
        match kind {
            ChunkKind::Vertex => self.vertices_chunked += records,
            _ => self.edges_chunked += records,
        }
        self.chunks_since_barrier += 1;
        if self.chunks_since_barrier >= self.checkpoint_every {
            self.barrier()?;
        }
        Ok(())
    }

    /// Flush + fsync every shard, then atomically replace the manifest: one
    /// consistent durable cut across the whole shard set.
    fn barrier(&mut self) -> Result<(), StoreError> {
        let _span = csb_obs::span_cat("checkpoint.write", "store");
        for w in &mut self.writers {
            w.flush()?;
            w.get_mut().get_ref().sync_data()?;
        }
        let manifest = ShardedCheckpointManifest {
            identity: self.identity.clone(),
            chunk_records: self.chunk_records as u64,
            store_version: version_for(self.compression),
            vertices_durable: self.vertices_chunked,
            edges_durable: self.edges_chunked,
            shards: self
                .writers
                .iter()
                .map(|w| ShardCheckpoint {
                    bytes_durable: w.bytes_written(),
                    chunks: w.chunks().to_vec(),
                })
                .collect(),
        };
        manifest.save(&self.dir)?;
        self.chunks_since_barrier = 0;
        csb_obs::counter_add("checkpoint.barriers", 1);
        csb_obs::counter_add(
            "checkpoint.bytes_durable",
            manifest.shards.iter().map(|s| s.bytes_durable).sum(),
        );
        csb_obs::status::note_barrier(manifest.shards.iter().map(|s| s.chunks.len() as u64).sum());
        Ok(())
    }

    fn flush_full_vertex_chunks(&mut self) -> Result<(), StoreError> {
        while self.vertices.len() >= self.chunk_records {
            let rest = self.vertices.split_off(self.chunk_records);
            let chunk = std::mem::replace(&mut self.vertices, rest);
            let payload: Vec<u8> = chunk.iter().flat_map(|ip| ip.to_le_bytes()).collect();
            self.write_chunk(ChunkKind::Vertex, chunk.len() as u64, &payload)?;
        }
        Ok(())
    }

    fn flush_full_edge_chunks(&mut self) -> Result<(), StoreError> {
        while self.src.len() >= self.chunk_records {
            let rest_src = self.src.split_off(self.chunk_records);
            let rest_dst = self.dst.split_off(self.chunk_records);
            let rest_props = self.props.split_off(self.chunk_records);
            let src = std::mem::replace(&mut self.src, rest_src);
            let dst = std::mem::replace(&mut self.dst, rest_dst);
            let props = std::mem::replace(&mut self.props, rest_props);
            let payload = encode_edge_chunk(&src, &dst, &props);
            self.write_chunk(ChunkKind::Edge, src.len() as u64, &payload)?;
        }
        Ok(())
    }

    /// Flushes the partial buffers, seals every shard, writes the shard-set
    /// manifest, and removes the checkpoint manifest.
    pub fn finish(mut self) -> Result<(), StoreError> {
        if !self.vertices.is_empty() {
            let payload: Vec<u8> = self.vertices.iter().flat_map(|ip| ip.to_le_bytes()).collect();
            let n = self.vertices.len() as u64;
            self.vertices.clear();
            self.write_chunk(ChunkKind::Vertex, n, &payload)?;
        }
        if !self.src.is_empty() {
            let payload = encode_edge_chunk(&self.src, &self.dst, &self.props);
            let n = self.src.len() as u64;
            self.src.clear();
            self.dst.clear();
            self.props.clear();
            self.write_chunk(ChunkKind::Edge, n, &payload)?;
        }
        for w in std::mem::take(&mut self.writers) {
            w.finish()?;
        }
        let manifest = ShardSetManifest { kind: FileKind::Graph, shards: self.shard_names.clone() };
        manifest.save(&self.manifest_path)?;
        std::fs::remove_file(ShardedCheckpointManifest::path_in(&self.dir)).ok();
        Ok(())
    }
}

impl EdgeSink for CheckpointedShardedGraphSink {
    fn push_vertices(&mut self, ips: &[u32]) -> Result<(), StoreError> {
        let skip = (self.skip_vertices as usize).min(ips.len());
        self.skip_vertices -= skip as u64;
        self.vertices.extend_from_slice(&ips[skip..]);
        self.flush_full_vertex_chunks()
    }

    fn push_edges(
        &mut self,
        src: &[u32],
        dst: &[u32],
        props: &[EdgeProperties],
    ) -> Result<(), StoreError> {
        assert_eq!(src.len(), dst.len(), "src/dst length mismatch");
        assert_eq!(src.len(), props.len(), "props length mismatch");
        let skip = (self.skip_edges as usize).min(src.len());
        self.skip_edges -= skip as u64;
        self.src.extend_from_slice(&src[skip..]);
        self.dst.extend_from_slice(&dst[skip..]);
        self.props.extend_from_slice(&props[skip..]);
        self.flush_full_edge_chunks()
    }

    fn resume_skip_vertices(&self) -> u64 {
        self.skip_vertices
    }

    fn resume_skip_edges(&self) -> u64 {
        self.skip_edges
    }

    fn note_skipped_edges(&mut self, n: u64) {
        assert!(
            n <= self.skip_edges,
            "producer skipped {n} edges but only {} are durable",
            self.skip_edges
        );
        self.skip_edges -= n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::CheckpointIdentity;
    use crate::error::CsbError;
    use crate::sink::{load_graph, GraphStoreSink};
    use csb_graph::algo::pagerank::{pagerank, PageRankConfig};
    use csb_graph::ooc::pagerank_ooc;
    use csb_net::flow::{Protocol, TcpConnState};

    fn temp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("csb-shard-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        std::fs::create_dir_all(&d).expect("mkdir");
        d
    }

    fn prop(i: u64) -> EdgeProperties {
        EdgeProperties {
            protocol: Protocol::from_number([6, 17, 1][(i % 3) as usize]).unwrap(),
            src_port: (i % 60_000) as u16,
            dst_port: (i % 1024) as u16,
            duration_ms: i * 3,
            out_bytes: i * 100,
            in_bytes: i * 41,
            out_pkts: i,
            in_pkts: i / 2,
            state: TcpConnState::from_code(i % 4).unwrap(),
        }
    }

    fn identity() -> CheckpointIdentity {
        CheckpointIdentity { generator: "pgpba".into(), config_hash: 0xFEED, master_seed: 7 }
    }

    /// Pushes `n_vertices` + `n_edges` deterministic records into `sink`.
    fn push_records<S: EdgeSink>(sink: &mut S, n_vertices: u32, n_edges: u64) {
        let ips: Vec<u32> = (0..n_vertices).map(|i| 0xC0A8_0000 + i).collect();
        sink.push_vertices(&ips).expect("vertices");
        let mut e = 0u64;
        while e < n_edges {
            let batch = 97.min(n_edges - e);
            let src: Vec<u32> = (e..e + batch).map(|i| (i % n_vertices as u64) as u32).collect();
            let dst: Vec<u32> =
                (e..e + batch).map(|i| ((i * 7 + 1) % n_vertices as u64) as u32).collect();
            let props: Vec<EdgeProperties> = (e..e + batch).map(prop).collect();
            sink.push_edges(&src, &dst, &props).expect("edges");
            e += batch;
        }
    }

    /// The same record stream as a single in-memory v1 store file.
    fn single_store_bytes(n_vertices: u32, n_edges: u64, chunk: usize) -> Vec<u8> {
        let mut sink = GraphStoreSink::new(Vec::new()).expect("sink").with_chunk_records(chunk);
        push_records(&mut sink, n_vertices, n_edges);
        sink.finish().expect("seal")
    }

    fn write_sharded(
        dir: &Path,
        shards: usize,
        compression: Compression,
        n_vertices: u32,
        n_edges: u64,
        chunk: usize,
    ) -> PathBuf {
        let manifest = dir.join("g.csbshards");
        let mut sink = ShardedGraphSink::create(&manifest, shards, compression)
            .expect("create")
            .with_chunk_records(chunk);
        push_records(&mut sink, n_vertices, n_edges);
        sink.finish().expect("finish");
        manifest
    }

    #[test]
    fn shard_manifest_round_trips_and_rejects_corruption() {
        let dir = temp_dir("manifest");
        let m = ShardSetManifest {
            kind: FileKind::Graph,
            shards: vec!["g.s0".into(), "g.s1".into(), "g.s2".into()],
        };
        let path = dir.join("g.csbshards");
        m.save(&path).expect("save");
        assert!(is_shard_set(&path).expect("magic"));
        assert_eq!(ShardSetManifest::load(&path).expect("load"), m);

        let mut bytes = std::fs::read(&path).expect("read");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).expect("write");
        let err = ShardSetManifest::load(&path).expect_err("corrupt");
        assert!(matches!(err, CsbError::Corrupt { .. }), "got {err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sharded_load_and_scan_match_single_file() {
        let (n_v, n_e) = (250u32, 4000u64);
        let single = single_store_bytes(n_v, n_e, 256);
        let want = crate::read::StoreReader::new(std::io::Cursor::new(single.clone()))
            .expect("reader")
            .load_graph()
            .expect("load");

        for shards in [1usize, 3, 4] {
            let dir = temp_dir(&format!("roundtrip{shards}"));
            let manifest = write_sharded(&dir, shards, Compression::None, n_v, n_e, 256);
            // Transparent dispatch: load_graph reads the shard set back in
            // the exact logical order the sink consumed.
            let got = load_graph(&manifest).expect("load sharded");
            assert_eq!(got.vertex_count(), want.vertex_count());
            assert_eq!(got.edge_count(), want.edge_count());
            assert_eq!(got.edge_sources(), want.edge_sources(), "shards {shards}");
            assert_eq!(got.edge_targets(), want.edge_targets(), "shards {shards}");
            assert_eq!(got.edge_data(), want.edge_data(), "shards {shards}");
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn sharded_v2_pagerank_bit_identical_to_v1_single_file() {
        let (n_v, n_e) = (200u32, 3000u64);
        let cfg = PageRankConfig::default();
        let single = single_store_bytes(n_v, n_e, 128);
        let reader = crate::read::StoreReader::new(std::io::Cursor::new(single)).expect("reader");
        let mut v1_scan = StoreScan::new(reader).expect("scan");
        let want = pagerank_ooc(&mut v1_scan, &cfg).expect("v1 pagerank");
        let mem = pagerank(
            &crate::read::StoreReader::new(std::io::Cursor::new(single_store_bytes(n_v, n_e, 128)))
                .expect("reader")
                .load_graph()
                .expect("load"),
            &cfg,
        );
        for (a, b) in mem.iter().zip(want.iter()) {
            assert_eq!(a.to_bits(), b.to_bits(), "ooc vs in-memory");
        }

        for compression in [Compression::None, Compression::Columnar] {
            let dir = temp_dir(&format!("pr-{}", compression.name()));
            let manifest = write_sharded(&dir, 4, compression, n_v, n_e, 128);
            let mut scan = open_scan(&manifest).expect("open_scan");
            assert!(matches!(scan, ScanSource::Sharded(_)));
            let got = pagerank_ooc(&mut scan, &cfg).expect("sharded pagerank");
            assert_eq!(want.len(), got.len());
            for (a, b) in want.iter().zip(got.iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "{} shards", compression.name());
            }
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn open_scan_dispatches_on_magic() {
        let dir = temp_dir("dispatch");
        let single_path = dir.join("g.csbstore");
        std::fs::write(&single_path, single_store_bytes(50, 200, 64)).expect("write");
        assert!(matches!(open_scan(&single_path).expect("single"), ScanSource::Single(_)));
        let manifest = write_sharded(&dir, 2, Compression::None, 50, 200, 64);
        assert!(matches!(open_scan(&manifest).expect("sharded"), ScanSource::Sharded(_)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn round_robin_violation_is_corrupt() {
        // Two shards with equal chunk counts is fine for an even total, but
        // swapping the shard order hands shard 0 fewer chunks than shard 1
        // when the total is odd — the scan must refuse, not misorder.
        let dir = temp_dir("rr");
        let manifest = write_sharded(&dir, 2, Compression::None, 60, 3 * 64, 64);
        let m = ShardSetManifest::load(&manifest).expect("load");
        assert_eq!(m.shards.len(), 2);
        let swapped = ShardSetManifest {
            kind: m.kind,
            shards: vec![m.shards[1].clone(), m.shards[0].clone()],
        };
        swapped.save(&manifest).expect("save");
        let err = ShardedScan::open(&manifest).expect_err("violation");
        assert!(matches!(err, CsbError::Corrupt { .. }), "got {err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpointed_sharded_run_matches_parallel_sink_bytes() {
        for compression in [Compression::None, Compression::Columnar] {
            let dir = temp_dir(&format!("ckpt-clean-{}", compression.name()));
            let (n_v, n_e) = (150u32, 2500u64);
            let want_manifest = write_sharded(&dir, 3, compression, n_v, n_e, 128);
            let want = ShardSetManifest::load(&want_manifest).expect("load");

            let ckpt_dir = dir.join("ckpt");
            let manifest = dir.join("c.csbshards");
            let mut sink = CheckpointedShardedGraphSink::create(
                &manifest,
                &ckpt_dir,
                identity(),
                3,
                compression,
            )
            .expect("create")
            .with_chunk_records(128)
            .with_checkpoint_every(2);
            push_records(&mut sink, n_v, n_e);
            sink.finish().expect("finish");

            let got = ShardSetManifest::load(&manifest).expect("load ckpt manifest");
            assert_eq!(got.shards.len(), want.shards.len());
            for (a, b) in want.shard_paths(&want_manifest).iter().zip(got.shard_paths(&manifest)) {
                let wa = std::fs::read(a).expect("read parallel shard");
                let wb = std::fs::read(b).expect("read checkpointed shard");
                assert_eq!(wa, wb, "shard bytes differ ({})", compression.name());
            }
            assert!(
                !ShardedCheckpointManifest::path_in(&ckpt_dir).exists(),
                "finish must remove the checkpoint manifest"
            );
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn killed_sharded_run_resumes_to_identical_bytes() {
        for compression in [Compression::None, Compression::Columnar] {
            let dir = temp_dir(&format!("ckpt-kill-{}", compression.name()));
            let (n_v, n_e) = (150u32, 4000u64);
            let want_manifest = write_sharded(&dir, 4, compression, n_v, n_e, 128);
            let want = ShardSetManifest::load(&want_manifest).expect("load");

            let ckpt_dir = dir.join("ckpt");
            let manifest = dir.join("c.csbshards");
            let mut killed = CheckpointedShardedGraphSink::create(
                &manifest,
                &ckpt_dir,
                identity(),
                4,
                compression,
            )
            .expect("create")
            .with_chunk_records(128)
            .with_checkpoint_every(1)
            .with_kill_after_chunks(7, false);
            let ips: Vec<u32> = (0..n_v).map(|i| 0xC0A8_0000 + i).collect();
            killed.push_vertices(&ips).expect("vertices fit in buffers");
            let mut e = 0u64;
            let err = loop {
                let batch = 97.min(n_e - e);
                let src: Vec<u32> = (e..e + batch).map(|i| (i % n_v as u64) as u32).collect();
                let dst: Vec<u32> =
                    (e..e + batch).map(|i| ((i * 7 + 1) % n_v as u64) as u32).collect();
                let props: Vec<EdgeProperties> = (e..e + batch).map(prop).collect();
                match killed.push_edges(&src, &dst, &props) {
                    Ok(()) => e += batch,
                    Err(err) => break err,
                }
            };
            assert!(err.is_transient(), "injected kill must be transient: {err}");
            drop(killed);
            // Simulate the torn tail a SIGKILL can leave past the barrier on
            // one of the shards.
            let m = ShardedCheckpointManifest::load(&ckpt_dir).expect("ckpt manifest");
            let torn = manifest
                .parent()
                .unwrap()
                .join(format!("{}.s1", manifest.file_name().unwrap().to_string_lossy()));
            let mut f = OpenOptions::new().append(true).open(&torn).expect("open");
            f.write_all(&[0xDE, 0xAD]).expect("tear");
            drop(f);

            let mut resumed =
                CheckpointedShardedGraphSink::resume(&manifest, &ckpt_dir, identity(), compression)
                    .expect("resume");
            assert_eq!(resumed.resume_skip_vertices(), m.vertices_durable);
            assert_eq!(resumed.resume_skip_edges(), m.edges_durable);
            push_records(&mut resumed, n_v, n_e);
            resumed.finish().expect("finish resumed");

            for (a, b) in want
                .shard_paths(&want_manifest)
                .iter()
                .zip(ShardSetManifest::load(&manifest).expect("load").shard_paths(&manifest))
            {
                let wa = std::fs::read(a).expect("read uninterrupted shard");
                let wb = std::fs::read(b).expect("read resumed shard");
                assert_eq!(wa, wb, "resume is not byte-identical ({})", compression.name());
            }
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn resume_rejects_wrong_identity_and_compression() {
        let dir = temp_dir("ckpt-reject");
        let ckpt_dir = dir.join("ckpt");
        let manifest = dir.join("c.csbshards");
        let mut sink = CheckpointedShardedGraphSink::create(
            &manifest,
            &ckpt_dir,
            identity(),
            2,
            Compression::None,
        )
        .expect("create")
        .with_chunk_records(64)
        .with_checkpoint_every(1);
        push_records(&mut sink, 80, 500);
        drop(sink); // abandon without finish: manifest stays

        let mut other = identity();
        other.master_seed ^= 1;
        let err =
            CheckpointedShardedGraphSink::resume(&manifest, &ckpt_dir, other, Compression::None)
                .expect_err("identity");
        assert!(matches!(err, CsbError::Mismatch(_)), "got {err}");

        let err = CheckpointedShardedGraphSink::resume(
            &manifest,
            &ckpt_dir,
            identity(),
            Compression::Columnar,
        )
        .expect_err("compression");
        assert!(matches!(err, CsbError::Mismatch(_)), "got {err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
