//! The chunk reader: opens a sealed store file (format v1 or v2), parses the
//! trailer + footer index, and serves whole chunks, projected columns, or a
//! fully reconstructed [`NetflowGraph`] / flow list.
//!
//! Projection reads go through [`StoreReader::read_columns`], which fetches
//! every requested column of a chunk with **one** contiguous disk read and
//! one `store.read_chunk` span — the scan layers project `SRC`+`DST`
//! together, so a pass over an edge chunk costs a single seek instead of one
//! per column.

use crate::codec::{decode_column, Codec};
use crate::crc32::crc32;
use crate::format::{
    column_offset, corrupt, ChunkEntry, ChunkKind, Column, FileKind, StoreError, CHUNK_MAGIC,
    EDGE_COLUMNS, FILE_MAGIC, FLOW_COLUMNS, FORMAT_VERSION, FORMAT_VERSION_V2,
    LABELED_FLOW_COLUMNS, TRAILER_LEN, TRAILER_MAGIC,
};
use csb_graph::graph::VertexId;
use csb_graph::{EdgeProperties, NetflowGraph};
use csb_net::flow::{FlowRecord, Protocol, TcpConnState};
use csb_net::{AttackClass, FlowLabel, LabeledFlow};
use std::fs::File;
use std::io::{BufReader, Read, Seek, SeekFrom};
use std::path::Path;

/// One decoded edge chunk, column-major.
#[derive(Debug, Clone, Default)]
pub struct EdgeBatch {
    /// Edge sources.
    pub src: Vec<u32>,
    /// Edge targets.
    pub dst: Vec<u32>,
    /// The nine NetFlow attributes per edge.
    pub props: Vec<EdgeProperties>,
}

/// One fetched (but not yet decoded) block of chunk columns: the contiguous
/// stored bytes covering the requested columns, plus what is needed to
/// decode each. Splitting fetch from decode lets the scan layer cache the
/// compact stored bytes and re-decode per pass without re-reading disk.
#[derive(Debug, Clone)]
pub struct ColumnBlock {
    bytes: Vec<u8>,
    /// Per requested column: byte range into `bytes`, codec, width, and the
    /// v2 per-column CRC (`None` for v1 partial reads, which the whole-chunk
    /// CRC cannot cover).
    cols: Vec<(std::ops::Range<usize>, Codec, usize, Option<u32>)>,
    records: usize,
    chunk_offset: u64,
}

impl ColumnBlock {
    /// Stored bytes held by this block (what a cache budget should charge).
    pub fn stored_len(&self) -> usize {
        self.bytes.len()
    }

    /// Decodes requested column `i` (index into the `names` passed to
    /// [`StoreReader::fetch_columns`]), widened to `u64`.
    pub fn decode(&self, i: usize) -> Result<Vec<u64>, StoreError> {
        let (range, codec, width, crc) = &self.cols[i];
        let enc = &self.bytes[range.clone()];
        if let Some(want) = crc {
            if crc32(enc) != *want {
                return Err(corrupt(self.chunk_offset, "column CRC mismatch"));
            }
        }
        let raw = decode_column(*codec, enc, *width, self.records, self.chunk_offset)?;
        Ok(match *width {
            1 => raw.iter().map(|&b| b as u64).collect(),
            2 => raw.chunks_exact(2).map(|c| u16::from_le_bytes([c[0], c[1]]) as u64).collect(),
            4 => u32_col(&raw, 0, self.records).into_iter().map(u64::from).collect(),
            _ => u64_col(&raw, 0, self.records),
        })
    }
}

/// Reads a sealed store file.
#[derive(Debug)]
pub struct StoreReader<R: Read + Seek> {
    r: R,
    version: u32,
    kind: FileKind,
    chunks: Vec<ChunkEntry>,
}

impl StoreReader<BufReader<File>> {
    /// Opens the store file at `path`.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        StoreReader::new(BufReader::new(File::open(path)?))
    }
}

impl<R: Read + Seek> StoreReader<R> {
    /// Parses the header, trailer, and footer index of `r`.
    pub fn new(mut r: R) -> Result<Self, StoreError> {
        let len = r.seek(SeekFrom::End(0))?;
        if len < 16 + TRAILER_LEN {
            return Err(corrupt(0, format!("file too short ({len} bytes)")));
        }
        let mut header = [0u8; 16];
        r.seek(SeekFrom::Start(0))?;
        r.read_exact(&mut header)?;
        if header[..8] != FILE_MAGIC {
            return Err(corrupt(0, "bad file magic"));
        }
        let version = u32::from_le_bytes(header[8..12].try_into().unwrap());
        if version != FORMAT_VERSION && version != FORMAT_VERSION_V2 {
            return Err(corrupt(8, format!("unsupported version {version}")));
        }
        let kind = FileKind::from_code(header[12])
            .ok_or_else(|| corrupt(12, format!("bad file kind {}", header[12])))?;
        let mut trailer = [0u8; TRAILER_LEN as usize];
        r.seek(SeekFrom::Start(len - TRAILER_LEN))?;
        r.read_exact(&mut trailer)?;
        if trailer[16..24] != TRAILER_MAGIC {
            return Err(corrupt(len - 8, "bad trailer magic (file not sealed?)"));
        }
        let chunk_count = u64::from_le_bytes(trailer[0..8].try_into().unwrap());
        let footer_offset = u64::from_le_bytes(trailer[8..16].try_into().unwrap());
        // v2 footer entries are variable-length (the column directory), so
        // the tiling check is "the entries parse and end exactly at the
        // trailer", not a fixed-stride multiplication.
        let footer_len = len
            .checked_sub(TRAILER_LEN)
            .and_then(|end| end.checked_sub(footer_offset))
            .filter(|&fl| chunk_count.checked_mul(32).is_some_and(|min| min <= fl))
            .ok_or_else(|| corrupt(len - TRAILER_LEN, "footer does not tile the file"))?;
        let mut footer = vec![0u8; footer_len as usize];
        r.seek(SeekFrom::Start(footer_offset))?;
        r.read_exact(&mut footer)?;
        let mut chunks = Vec::with_capacity(chunk_count as usize);
        let mut pos = 0usize;
        for _ in 0..chunk_count {
            chunks.push(ChunkEntry::decode_from(&footer, &mut pos, version, footer_offset)?);
        }
        if pos as u64 != footer_len {
            return Err(corrupt(footer_offset, "footer does not tile the file"));
        }
        Ok(StoreReader { r, version, kind, chunks })
    }

    /// What this file holds.
    pub fn kind(&self) -> FileKind {
        self.kind
    }

    /// The file's format version (1 or 2).
    pub fn version(&self) -> u32 {
        self.version
    }

    /// The footer index.
    pub fn chunks(&self) -> &[ChunkEntry] {
        &self.chunks
    }

    /// Total records across chunks of `kind`.
    pub fn record_count(&self, kind: ChunkKind) -> u64 {
        self.chunks.iter().filter(|c| c.kind == kind).map(|c| c.records).sum()
    }

    /// Reads chunk `idx`'s *stored* bytes (raw for v1, encoded for v2),
    /// verifying the chunk header against the footer entry and the bytes
    /// against the chunk CRC32.
    pub fn read_chunk_stored(&mut self, idx: usize) -> Result<Vec<u8>, StoreError> {
        let _span = csb_obs::span_cat("store.read_chunk", "store");
        let entry = &self.chunks[idx];
        let mut header = [0u8; 28];
        self.r.seek(SeekFrom::Start(entry.offset))?;
        self.r.read_exact(&mut header)?;
        if u32::from_le_bytes(header[0..4].try_into().unwrap()) != CHUNK_MAGIC {
            return Err(corrupt(entry.offset, "bad chunk magic"));
        }
        let records = u64::from_le_bytes(header[8..16].try_into().unwrap());
        let payload_len = u64::from_le_bytes(header[16..24].try_into().unwrap());
        if header[4] != entry.kind.code()
            || records != entry.records
            || payload_len != entry.payload_len
        {
            return Err(corrupt(entry.offset, "chunk header disagrees with footer index"));
        }
        let mut payload = vec![0u8; entry.payload_len as usize];
        self.r.read_exact(&mut payload)?;
        if crc32(&payload) != entry.crc32 {
            return Err(corrupt(entry.offset + 28, "chunk payload CRC mismatch"));
        }
        csb_obs::counter_add("store.chunks_read", 1);
        csb_obs::counter_add("store.bytes_read", 28 + entry.payload_len);
        Ok(payload)
    }

    /// Reads chunk `idx` and returns its **raw column-major payload**: the
    /// stored bytes for v1, the per-column decodings for v2. Callers see the
    /// identical layout either way.
    pub fn read_chunk_payload(&mut self, idx: usize) -> Result<Vec<u8>, StoreError> {
        let stored = self.read_chunk_stored(idx)?;
        let entry = &self.chunks[idx];
        if self.version < FORMAT_VERSION_V2 {
            return Ok(stored);
        }
        crate::codec::decode_chunk_columns(
            entry.kind,
            entry.records,
            &stored,
            &entry.columns,
            entry.offset,
        )
    }

    fn expect_kind(&self, idx: usize, kind: ChunkKind) -> Result<&ChunkEntry, StoreError> {
        let entry = &self.chunks[idx];
        if entry.kind != kind {
            return Err(corrupt(entry.offset, format!("chunk {idx} is not a {kind:?} chunk")));
        }
        Ok(entry)
    }

    /// Decodes vertex chunk `idx` into its ip column.
    pub fn read_vertex_batch(&mut self, idx: usize) -> Result<Vec<u32>, StoreError> {
        let n = self.expect_kind(idx, ChunkKind::Vertex)?.records as usize;
        let payload = self.read_chunk_payload(idx)?;
        Ok(u32_col(&payload, 0, n))
    }

    /// Decodes edge chunk `idx` into all eleven columns.
    pub fn read_edge_batch(&mut self, idx: usize) -> Result<EdgeBatch, StoreError> {
        let entry = self.expect_kind(idx, ChunkKind::Edge)?;
        let (n, offset) = (entry.records as usize, entry.offset);
        let payload = self.read_chunk_payload(idx)?;
        let at = |i| column_offset(&EDGE_COLUMNS, i, n);
        let protocol = decode_protocols(&payload[at(2)..], n, offset)?;
        let src_port = u16_col(&payload, at(3), n);
        let dst_port = u16_col(&payload, at(4), n);
        let duration_ms = u64_col(&payload, at(5), n);
        let out_bytes = u64_col(&payload, at(6), n);
        let in_bytes = u64_col(&payload, at(7), n);
        let out_pkts = u64_col(&payload, at(8), n);
        let in_pkts = u64_col(&payload, at(9), n);
        let state = decode_states(&payload[at(10)..], n, offset)?;
        let props = (0..n)
            .map(|i| EdgeProperties {
                protocol: protocol[i],
                src_port: src_port[i],
                dst_port: dst_port[i],
                duration_ms: duration_ms[i],
                out_bytes: out_bytes[i],
                in_bytes: in_bytes[i],
                out_pkts: out_pkts[i],
                in_pkts: in_pkts[i],
                state: state[i],
            })
            .collect();
        Ok(EdgeBatch { src: u32_col(&payload, at(0), n), dst: u32_col(&payload, at(1), n), props })
    }

    /// Decodes flow chunk `idx` into [`FlowRecord`]s.
    pub fn read_flow_batch(&mut self, idx: usize) -> Result<Vec<FlowRecord>, StoreError> {
        let entry = self.expect_kind(idx, ChunkKind::Flow)?;
        let (n, offset) = (entry.records as usize, entry.offset);
        let payload = self.read_chunk_payload(idx)?;
        decode_flow_fields(&payload, &FLOW_COLUMNS, n, offset)
    }

    /// Decodes flow chunk `idx` into [`LabeledFlow`]s. Accepts both labeled
    /// chunks and plain v1 flow chunks — the latter carry no label columns
    /// and read back as all-benign.
    pub fn read_labeled_flow_batch(&mut self, idx: usize) -> Result<Vec<LabeledFlow>, StoreError> {
        let entry = &self.chunks[idx];
        let (kind, n, offset) = (entry.kind, entry.records as usize, entry.offset);
        match kind {
            ChunkKind::Flow => Ok(self
                .read_flow_batch(idx)?
                .into_iter()
                .map(|flow| LabeledFlow { flow, label: FlowLabel::BENIGN })
                .collect()),
            ChunkKind::LabeledFlow => {
                let payload = self.read_chunk_payload(idx)?;
                let flows = decode_flow_fields(&payload, &LABELED_FLOW_COLUMNS, n, offset)?;
                let at = |i| column_offset(&LABELED_FLOW_COLUMNS, i, n);
                let campaign = u32_col(&payload, at(14), n);
                let stage = &payload[at(15)..at(15) + n];
                let class_codes = &payload[at(16)..at(16) + n];
                let mut classes = Vec::with_capacity(n);
                for &c in class_codes {
                    classes.push(AttackClass::from_code(c).ok_or_else(|| {
                        corrupt(offset, format!("invalid attack class code {c}"))
                    })?);
                }
                Ok(flows
                    .into_iter()
                    .enumerate()
                    .map(|(i, flow)| LabeledFlow {
                        flow,
                        label: FlowLabel {
                            campaign: campaign[i],
                            stage: stage[i],
                            class: classes[i],
                        },
                    })
                    .collect())
            }
            _ => Err(corrupt(offset, format!("chunk {idx} is not a flow chunk"))),
        }
    }

    /// Fetches the named columns of an edge or flow chunk with **one**
    /// contiguous disk read (one `store.read_chunk` span, one
    /// `store.chunks_read` increment), without decoding them. For v1 the
    /// read spans the raw bytes from the first to the last requested column;
    /// for v2 it spans their encoded bytes, and each column carries its own
    /// CRC (verified at decode). v1 partial reads skip CRC verification —
    /// the whole-chunk CRC cannot cover a slice.
    pub fn fetch_columns(&mut self, idx: usize, names: &[&str]) -> Result<ColumnBlock, StoreError> {
        assert!(!names.is_empty(), "fetch_columns needs at least one column");
        let _span = csb_obs::span_cat("store.read_chunk", "store");
        let entry = &self.chunks[idx];
        let schema: &[Column] = match entry.kind {
            ChunkKind::Edge => &EDGE_COLUMNS,
            ChunkKind::Flow => &FLOW_COLUMNS,
            ChunkKind::LabeledFlow => &LABELED_FLOW_COLUMNS,
            ChunkKind::Vertex => {
                return Err(corrupt(entry.offset, "vertex chunks have no named columns"))
            }
        };
        let n = entry.records as usize;
        let v2 = self.version >= FORMAT_VERSION_V2;
        if v2 && entry.columns.len() != schema.len() {
            return Err(corrupt(entry.offset, "v2 chunk missing its column directory"));
        }
        // Byte range of each schema column inside the stored payload.
        let col_range = |i: usize| -> std::ops::Range<usize> {
            if v2 {
                let start: usize = entry.columns[..i].iter().map(|c| c.enc_len as usize).sum();
                start..start + entry.columns[i].enc_len as usize
            } else {
                let start = column_offset(schema, i, n);
                start..start + n * schema[i].width
            }
        };
        let mut picked = Vec::with_capacity(names.len());
        for name in names {
            let i = schema
                .iter()
                .position(|c| c.name == *name)
                .ok_or_else(|| corrupt(entry.offset, format!("no column named {name}")))?;
            picked.push(i);
        }
        let lo = picked.iter().map(|&i| col_range(i).start).min().expect("non-empty");
        let hi = picked.iter().map(|&i| col_range(i).end).max().expect("non-empty");
        let mut bytes = vec![0u8; hi - lo];
        self.r.seek(SeekFrom::Start(entry.offset + 28 + lo as u64))?;
        self.r.read_exact(&mut bytes)?;
        csb_obs::counter_add("store.chunks_read", 1);
        csb_obs::counter_add("store.bytes_read", bytes.len() as u64);
        let cols = picked
            .iter()
            .map(|&i| {
                let r = col_range(i);
                let (codec, crc) = if v2 {
                    (entry.columns[i].codec, Some(entry.columns[i].crc32))
                } else {
                    (Codec::Raw, None)
                };
                (r.start - lo..r.end - lo, codec, schema[i].width, crc)
            })
            .collect();
        Ok(ColumnBlock { bytes, cols, records: n, chunk_offset: entry.offset })
    }

    /// Projects the named columns of an edge or flow chunk, widened to
    /// `u64`, from a single disk read (see [`StoreReader::fetch_columns`]).
    pub fn read_columns(
        &mut self,
        idx: usize,
        names: &[&str],
    ) -> Result<Vec<Vec<u64>>, StoreError> {
        let block = self.fetch_columns(idx, names)?;
        (0..names.len()).map(|i| block.decode(i)).collect()
    }

    /// Projects one column by name — [`StoreReader::read_columns`] with a
    /// single name. Scans that need several columns of the same chunk should
    /// ask for them together; separate calls cost one disk read each.
    pub fn read_column(&mut self, idx: usize, name: &str) -> Result<Vec<u64>, StoreError> {
        Ok(self.read_columns(idx, &[name])?.pop().expect("one column requested"))
    }

    /// Reconstructs the property graph from every vertex and edge chunk, in
    /// file order, through the bulk `from_parts` constructor.
    pub fn load_graph(&mut self) -> Result<NetflowGraph, StoreError> {
        if self.kind != FileKind::Graph {
            return Err(corrupt(12, "not a graph store"));
        }
        let mut ips: Vec<u32> = Vec::new();
        let mut src: Vec<VertexId> = Vec::new();
        let mut dst: Vec<VertexId> = Vec::new();
        let mut props: Vec<EdgeProperties> = Vec::new();
        for idx in 0..self.chunks.len() {
            match self.chunks[idx].kind {
                ChunkKind::Vertex => ips.extend(self.read_vertex_batch(idx)?),
                ChunkKind::Edge => {
                    let batch = self.read_edge_batch(idx)?;
                    src.extend(batch.src.into_iter().map(VertexId));
                    dst.extend(batch.dst.into_iter().map(VertexId));
                    props.extend(batch.props);
                }
                ChunkKind::Flow | ChunkKind::LabeledFlow => {
                    return Err(corrupt(self.chunks[idx].offset, "flow chunk in a graph store"))
                }
            }
        }
        let n = ips.len();
        if src.iter().chain(dst.iter()).any(|v| v.index() >= n) {
            return Err(corrupt(0, "edge endpoint out of vertex range"));
        }
        Ok(NetflowGraph::from_parts(ips, src, dst, props))
    }

    /// Reconstructs the flow list from every flow chunk, in file order.
    /// Labeled chunks are read too, with their labels dropped, so the
    /// unlabeled API works on labeled stores.
    pub fn load_flows(&mut self) -> Result<Vec<FlowRecord>, StoreError> {
        if self.kind != FileKind::Flows {
            return Err(corrupt(12, "not a flow store"));
        }
        let mut flows = Vec::with_capacity(self.record_count(ChunkKind::Flow) as usize);
        for idx in 0..self.chunks.len() {
            match self.chunks[idx].kind {
                ChunkKind::Flow => flows.extend(self.read_flow_batch(idx)?),
                _ => flows.extend(self.read_labeled_flow_batch(idx)?.into_iter().map(|l| l.flow)),
            }
        }
        Ok(flows)
    }

    /// Reconstructs the labeled flow list from every flow chunk, in file
    /// order. Plain v1 flow chunks read back as all-benign ([`FlowLabel`]
    /// campaign id 0) — a v1 store carries no ground truth.
    pub fn load_labeled_flows(&mut self) -> Result<Vec<LabeledFlow>, StoreError> {
        if self.kind != FileKind::Flows {
            return Err(corrupt(12, "not a flow store"));
        }
        let mut flows = Vec::new();
        for idx in 0..self.chunks.len() {
            flows.extend(self.read_labeled_flow_batch(idx)?);
        }
        Ok(flows)
    }
}

/// Decodes the 14 [`FlowRecord`] fields from a column-major payload whose
/// schema starts with [`FLOW_COLUMNS`] (the labeled schema shares that
/// prefix, so both chunk kinds decode through here).
fn decode_flow_fields(
    payload: &[u8],
    schema: &[Column],
    n: usize,
    offset: u64,
) -> Result<Vec<FlowRecord>, StoreError> {
    let at = |i| column_offset(schema, i, n);
    let src_ip = u32_col(payload, at(0), n);
    let dst_ip = u32_col(payload, at(1), n);
    let protocol = decode_protocols(&payload[at(2)..], n, offset)?;
    let src_port = u16_col(payload, at(3), n);
    let dst_port = u16_col(payload, at(4), n);
    let duration_ms = u64_col(payload, at(5), n);
    let out_bytes = u64_col(payload, at(6), n);
    let in_bytes = u64_col(payload, at(7), n);
    let out_pkts = u64_col(payload, at(8), n);
    let in_pkts = u64_col(payload, at(9), n);
    let state = decode_states(&payload[at(10)..], n, offset)?;
    let syn_count = u32_col(payload, at(11), n);
    let ack_count = u32_col(payload, at(12), n);
    let first_ts = u64_col(payload, at(13), n);
    Ok((0..n)
        .map(|i| FlowRecord {
            src_ip: src_ip[i],
            dst_ip: dst_ip[i],
            protocol: protocol[i],
            src_port: src_port[i],
            dst_port: dst_port[i],
            duration_ms: duration_ms[i],
            out_bytes: out_bytes[i],
            in_bytes: in_bytes[i],
            out_pkts: out_pkts[i],
            in_pkts: in_pkts[i],
            state: state[i],
            syn_count: syn_count[i],
            ack_count: ack_count[i],
            first_ts_micros: first_ts[i],
        })
        .collect())
}

fn u32_col(payload: &[u8], offset: usize, n: usize) -> Vec<u32> {
    payload[offset..offset + n * 4]
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

fn u16_col(payload: &[u8], offset: usize, n: usize) -> Vec<u16> {
    payload[offset..offset + n * 2]
        .chunks_exact(2)
        .map(|c| u16::from_le_bytes([c[0], c[1]]))
        .collect()
}

fn u64_col(payload: &[u8], offset: usize, n: usize) -> Vec<u64> {
    payload[offset..offset + n * 8]
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

fn decode_protocols(raw: &[u8], n: usize, chunk_at: u64) -> Result<Vec<Protocol>, StoreError> {
    raw[..n]
        .iter()
        .map(|&b| {
            Protocol::from_number(b).ok_or_else(|| corrupt(chunk_at, format!("bad protocol {b}")))
        })
        .collect()
}

fn decode_states(raw: &[u8], n: usize, chunk_at: u64) -> Result<Vec<TcpConnState>, StoreError> {
    raw[..n]
        .iter()
        .map(|&b| {
            TcpConnState::from_code(b as u64)
                .ok_or_else(|| corrupt(chunk_at, format!("bad state {b}")))
        })
        .collect()
}
