//! The chunk reader: opens a sealed store file, parses the trailer + footer
//! index, and serves whole chunks, projected single columns, or a fully
//! reconstructed [`NetflowGraph`] / flow list.

use crate::crc32::crc32;
use crate::format::{
    column_offset, corrupt, ChunkEntry, ChunkKind, Column, FileKind, StoreError, CHUNK_MAGIC,
    EDGE_COLUMNS, FILE_MAGIC, FLOW_COLUMNS, FORMAT_VERSION, TRAILER_LEN, TRAILER_MAGIC,
};
use csb_graph::graph::VertexId;
use csb_graph::{EdgeProperties, NetflowGraph};
use csb_net::flow::{FlowRecord, Protocol, TcpConnState};
use std::fs::File;
use std::io::{BufReader, Read, Seek, SeekFrom};
use std::path::Path;

/// One decoded edge chunk, column-major.
#[derive(Debug, Clone, Default)]
pub struct EdgeBatch {
    /// Edge sources.
    pub src: Vec<u32>,
    /// Edge targets.
    pub dst: Vec<u32>,
    /// The nine NetFlow attributes per edge.
    pub props: Vec<EdgeProperties>,
}

/// Reads a sealed store file.
#[derive(Debug)]
pub struct StoreReader<R: Read + Seek> {
    r: R,
    kind: FileKind,
    chunks: Vec<ChunkEntry>,
}

impl StoreReader<BufReader<File>> {
    /// Opens the store file at `path`.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        StoreReader::new(BufReader::new(File::open(path)?))
    }
}

impl<R: Read + Seek> StoreReader<R> {
    /// Parses the header, trailer, and footer index of `r`.
    pub fn new(mut r: R) -> Result<Self, StoreError> {
        let len = r.seek(SeekFrom::End(0))?;
        if len < 16 + TRAILER_LEN {
            return Err(corrupt(0, format!("file too short ({len} bytes)")));
        }
        let mut header = [0u8; 16];
        r.seek(SeekFrom::Start(0))?;
        r.read_exact(&mut header)?;
        if header[..8] != FILE_MAGIC {
            return Err(corrupt(0, "bad file magic"));
        }
        let version = u32::from_le_bytes(header[8..12].try_into().unwrap());
        if version != FORMAT_VERSION {
            return Err(corrupt(8, format!("unsupported version {version}")));
        }
        let kind = FileKind::from_code(header[12])
            .ok_or_else(|| corrupt(12, format!("bad file kind {}", header[12])))?;
        let mut trailer = [0u8; TRAILER_LEN as usize];
        r.seek(SeekFrom::Start(len - TRAILER_LEN))?;
        r.read_exact(&mut trailer)?;
        if trailer[16..24] != TRAILER_MAGIC {
            return Err(corrupt(len - 8, "bad trailer magic (file not sealed?)"));
        }
        let chunk_count = u64::from_le_bytes(trailer[0..8].try_into().unwrap());
        let footer_offset = u64::from_le_bytes(trailer[8..16].try_into().unwrap());
        let footer_len = chunk_count
            .checked_mul(32)
            .filter(|&fl| footer_offset.checked_add(fl + TRAILER_LEN) == Some(len))
            .ok_or_else(|| corrupt(len - TRAILER_LEN, "footer does not tile the file"))?;
        let mut footer = vec![0u8; footer_len as usize];
        r.seek(SeekFrom::Start(footer_offset))?;
        r.read_exact(&mut footer)?;
        let mut chunks = Vec::with_capacity(chunk_count as usize);
        for (i, e) in footer.chunks_exact(32).enumerate() {
            let at = footer_offset + i as u64 * 32;
            let kind = ChunkKind::from_code(e[0])
                .ok_or_else(|| corrupt(at, format!("bad chunk kind {}", e[0])))?;
            chunks.push(ChunkEntry {
                kind,
                records: u64::from_le_bytes(e[4..12].try_into().unwrap()),
                offset: u64::from_le_bytes(e[12..20].try_into().unwrap()),
                payload_len: u64::from_le_bytes(e[20..28].try_into().unwrap()),
                crc32: u32::from_le_bytes(e[28..32].try_into().unwrap()),
            });
        }
        Ok(StoreReader { r, kind, chunks })
    }

    /// What this file holds.
    pub fn kind(&self) -> FileKind {
        self.kind
    }

    /// The footer index.
    pub fn chunks(&self) -> &[ChunkEntry] {
        &self.chunks
    }

    /// Total records across chunks of `kind`.
    pub fn record_count(&self, kind: ChunkKind) -> u64 {
        self.chunks.iter().filter(|c| c.kind == kind).map(|c| c.records).sum()
    }

    /// Reads chunk `idx`'s payload, verifying the chunk header against the
    /// footer entry and the payload against its CRC32.
    pub fn read_chunk_payload(&mut self, idx: usize) -> Result<Vec<u8>, StoreError> {
        let _span = csb_obs::span_cat("store.read_chunk", "store");
        let entry = self.chunks[idx];
        let mut header = [0u8; 28];
        self.r.seek(SeekFrom::Start(entry.offset))?;
        self.r.read_exact(&mut header)?;
        if u32::from_le_bytes(header[0..4].try_into().unwrap()) != CHUNK_MAGIC {
            return Err(corrupt(entry.offset, "bad chunk magic"));
        }
        let records = u64::from_le_bytes(header[8..16].try_into().unwrap());
        let payload_len = u64::from_le_bytes(header[16..24].try_into().unwrap());
        if header[4] != entry.kind.code()
            || records != entry.records
            || payload_len != entry.payload_len
        {
            return Err(corrupt(entry.offset, "chunk header disagrees with footer index"));
        }
        let mut payload = vec![0u8; entry.payload_len as usize];
        self.r.read_exact(&mut payload)?;
        if crc32(&payload) != entry.crc32 {
            return Err(corrupt(entry.offset + 28, "chunk payload CRC mismatch"));
        }
        csb_obs::counter_add("store.chunks_read", 1);
        csb_obs::counter_add("store.bytes_read", 28 + entry.payload_len);
        Ok(payload)
    }

    fn expect_kind(&self, idx: usize, kind: ChunkKind) -> Result<ChunkEntry, StoreError> {
        let entry = self.chunks[idx];
        if entry.kind != kind {
            return Err(corrupt(entry.offset, format!("chunk {idx} is not a {kind:?} chunk")));
        }
        Ok(entry)
    }

    /// Decodes vertex chunk `idx` into its ip column.
    pub fn read_vertex_batch(&mut self, idx: usize) -> Result<Vec<u32>, StoreError> {
        let entry = self.expect_kind(idx, ChunkKind::Vertex)?;
        let payload = self.read_chunk_payload(idx)?;
        Ok(u32_col(&payload, 0, entry.records as usize))
    }

    /// Decodes edge chunk `idx` into all eleven columns.
    pub fn read_edge_batch(&mut self, idx: usize) -> Result<EdgeBatch, StoreError> {
        let entry = self.expect_kind(idx, ChunkKind::Edge)?;
        let payload = self.read_chunk_payload(idx)?;
        let n = entry.records as usize;
        let at = |i| column_offset(&EDGE_COLUMNS, i, n);
        let protocol = decode_protocols(&payload[at(2)..], n, entry.offset)?;
        let src_port = u16_col(&payload, at(3), n);
        let dst_port = u16_col(&payload, at(4), n);
        let duration_ms = u64_col(&payload, at(5), n);
        let out_bytes = u64_col(&payload, at(6), n);
        let in_bytes = u64_col(&payload, at(7), n);
        let out_pkts = u64_col(&payload, at(8), n);
        let in_pkts = u64_col(&payload, at(9), n);
        let state = decode_states(&payload[at(10)..], n, entry.offset)?;
        let props = (0..n)
            .map(|i| EdgeProperties {
                protocol: protocol[i],
                src_port: src_port[i],
                dst_port: dst_port[i],
                duration_ms: duration_ms[i],
                out_bytes: out_bytes[i],
                in_bytes: in_bytes[i],
                out_pkts: out_pkts[i],
                in_pkts: in_pkts[i],
                state: state[i],
            })
            .collect();
        Ok(EdgeBatch { src: u32_col(&payload, at(0), n), dst: u32_col(&payload, at(1), n), props })
    }

    /// Decodes flow chunk `idx` into [`FlowRecord`]s.
    pub fn read_flow_batch(&mut self, idx: usize) -> Result<Vec<FlowRecord>, StoreError> {
        let entry = self.expect_kind(idx, ChunkKind::Flow)?;
        let payload = self.read_chunk_payload(idx)?;
        let n = entry.records as usize;
        let at = |i| column_offset(&FLOW_COLUMNS, i, n);
        let src_ip = u32_col(&payload, at(0), n);
        let dst_ip = u32_col(&payload, at(1), n);
        let protocol = decode_protocols(&payload[at(2)..], n, entry.offset)?;
        let src_port = u16_col(&payload, at(3), n);
        let dst_port = u16_col(&payload, at(4), n);
        let duration_ms = u64_col(&payload, at(5), n);
        let out_bytes = u64_col(&payload, at(6), n);
        let in_bytes = u64_col(&payload, at(7), n);
        let out_pkts = u64_col(&payload, at(8), n);
        let in_pkts = u64_col(&payload, at(9), n);
        let state = decode_states(&payload[at(10)..], n, entry.offset)?;
        let syn_count = u32_col(&payload, at(11), n);
        let ack_count = u32_col(&payload, at(12), n);
        let first_ts = u64_col(&payload, at(13), n);
        Ok((0..n)
            .map(|i| FlowRecord {
                src_ip: src_ip[i],
                dst_ip: dst_ip[i],
                protocol: protocol[i],
                src_port: src_port[i],
                dst_port: dst_port[i],
                duration_ms: duration_ms[i],
                out_bytes: out_bytes[i],
                in_bytes: in_bytes[i],
                out_pkts: out_pkts[i],
                in_pkts: in_pkts[i],
                state: state[i],
                syn_count: syn_count[i],
                ack_count: ack_count[i],
                first_ts_micros: first_ts[i],
            })
            .collect())
    }

    /// Projects one column of an edge or flow chunk by name, widened to
    /// `u64`. Seeks straight to the column, reading `records x width` bytes
    /// instead of the whole chunk; the projection path skips the CRC (which
    /// covers the full payload) in exchange — use [`read_chunk_payload`]
    /// first when integrity matters more than speed.
    ///
    /// [`read_chunk_payload`]: StoreReader::read_chunk_payload
    pub fn read_column(&mut self, idx: usize, name: &str) -> Result<Vec<u64>, StoreError> {
        let _span = csb_obs::span_cat("store.read_chunk", "store");
        let entry = self.chunks[idx];
        let schema: &[Column] = match entry.kind {
            ChunkKind::Edge => &EDGE_COLUMNS,
            ChunkKind::Flow => &FLOW_COLUMNS,
            ChunkKind::Vertex => {
                return Err(corrupt(entry.offset, "vertex chunks have no named columns"))
            }
        };
        let col = schema
            .iter()
            .position(|c| c.name == name)
            .ok_or_else(|| corrupt(entry.offset, format!("no column named {name}")))?;
        let n = entry.records as usize;
        let width = schema[col].width;
        let start = entry.offset + 28 + column_offset(schema, col, n) as u64;
        let mut raw = vec![0u8; n * width];
        self.r.seek(SeekFrom::Start(start))?;
        self.r.read_exact(&mut raw)?;
        csb_obs::counter_add("store.bytes_read", raw.len() as u64);
        Ok(match width {
            1 => raw.iter().map(|&b| b as u64).collect(),
            2 => raw.chunks_exact(2).map(|c| u16::from_le_bytes([c[0], c[1]]) as u64).collect(),
            4 => u32_col(&raw, 0, n).into_iter().map(u64::from).collect(),
            _ => u64_col(&raw, 0, n),
        })
    }

    /// Reconstructs the property graph from every vertex and edge chunk, in
    /// file order, through the bulk `from_parts` constructor.
    pub fn load_graph(&mut self) -> Result<NetflowGraph, StoreError> {
        if self.kind != FileKind::Graph {
            return Err(corrupt(12, "not a graph store"));
        }
        let mut ips: Vec<u32> = Vec::new();
        let mut src: Vec<VertexId> = Vec::new();
        let mut dst: Vec<VertexId> = Vec::new();
        let mut props: Vec<EdgeProperties> = Vec::new();
        for idx in 0..self.chunks.len() {
            match self.chunks[idx].kind {
                ChunkKind::Vertex => ips.extend(self.read_vertex_batch(idx)?),
                ChunkKind::Edge => {
                    let batch = self.read_edge_batch(idx)?;
                    src.extend(batch.src.into_iter().map(VertexId));
                    dst.extend(batch.dst.into_iter().map(VertexId));
                    props.extend(batch.props);
                }
                ChunkKind::Flow => {
                    return Err(corrupt(self.chunks[idx].offset, "flow chunk in a graph store"))
                }
            }
        }
        let n = ips.len();
        if src.iter().chain(dst.iter()).any(|v| v.index() >= n) {
            return Err(corrupt(0, "edge endpoint out of vertex range"));
        }
        Ok(NetflowGraph::from_parts(ips, src, dst, props))
    }

    /// Reconstructs the flow list from every flow chunk, in file order.
    pub fn load_flows(&mut self) -> Result<Vec<FlowRecord>, StoreError> {
        if self.kind != FileKind::Flows {
            return Err(corrupt(12, "not a flow store"));
        }
        let mut flows = Vec::with_capacity(self.record_count(ChunkKind::Flow) as usize);
        for idx in 0..self.chunks.len() {
            flows.extend(self.read_flow_batch(idx)?);
        }
        Ok(flows)
    }
}

fn u32_col(payload: &[u8], offset: usize, n: usize) -> Vec<u32> {
    payload[offset..offset + n * 4]
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

fn u16_col(payload: &[u8], offset: usize, n: usize) -> Vec<u16> {
    payload[offset..offset + n * 2]
        .chunks_exact(2)
        .map(|c| u16::from_le_bytes([c[0], c[1]]))
        .collect()
}

fn u64_col(payload: &[u8], offset: usize, n: usize) -> Vec<u64> {
    payload[offset..offset + n * 8]
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

fn decode_protocols(raw: &[u8], n: usize, chunk_at: u64) -> Result<Vec<Protocol>, StoreError> {
    raw[..n]
        .iter()
        .map(|&b| {
            Protocol::from_number(b).ok_or_else(|| corrupt(chunk_at, format!("bad protocol {b}")))
        })
        .collect()
}

fn decode_states(raw: &[u8], n: usize, chunk_at: u64) -> Result<Vec<TcpConnState>, StoreError> {
    raw[..n]
        .iter()
        .map(|&b| {
            TcpConnState::from_code(b as u64)
                .ok_or_else(|| corrupt(chunk_at, format!("bad state {b}")))
        })
        .collect()
}
