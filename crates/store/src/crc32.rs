//! CRC32 (IEEE 802.3, the zlib/PNG polynomial) with a compile-time table.
//! Hand-rolled because the store must stay dependency-free; one table lookup
//! per byte is plenty for chunk-sized payloads.

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = make_table();

/// Streaming CRC32 state.
#[derive(Debug, Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Fresh state.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feeds bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state = TABLE[((self.state ^ b as u32) & 0xFF) as usize] ^ (self.state >> 8);
        }
    }

    /// The checksum of everything fed so far.
    pub fn finish(self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_ieee_check_value() {
        // The standard check vector for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_and_incremental() {
        assert_eq!(crc32(b""), 0);
        let mut c = Crc32::new();
        c.update(b"1234");
        c.update(b"56789");
        assert_eq!(c.finish(), crc32(b"123456789"));
    }

    #[test]
    fn detects_single_bit_flips() {
        let mut data = vec![0xA5u8; 256];
        let good = crc32(&data);
        data[100] ^= 0x01;
        assert_ne!(crc32(&data), good);
    }
}
