//! Streaming sinks: push vertices/edges/flows in whatever granularity the
//! producer emits them; the sink re-chunks into fixed-size store chunks, so
//! the file layout depends only on the record stream — a generator pushing
//! edge-by-edge and one pushing 8192-edge batches produce byte-identical
//! files.

use crate::codec::{encode_chunk_columns, Compression};
use crate::format::{
    ChunkKind, FileKind, StoreError, EDGE_COLUMNS, FLOW_COLUMNS, FORMAT_VERSION, FORMAT_VERSION_V2,
};
use crate::read::StoreReader;
use crate::write::StoreWriter;
use csb_graph::graph::VertexId;
use csb_graph::{EdgeProperties, NetflowGraph};
use csb_net::flow::FlowRecord;
use csb_net::LabeledFlow;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

/// Records per store chunk (64 Ki): ~3.4 MB edge chunks, small enough to
/// buffer, large enough that header overhead vanishes.
pub const CHUNK_RECORDS: usize = 65_536;

/// Receives a property graph as a stream of vertex and edge batches.
pub trait EdgeSink {
    /// Appends vertices (ids are assigned densely in push order).
    fn push_vertices(&mut self, ips: &[u32]) -> Result<(), StoreError>;
    /// Appends edges; the three slices must be equally long.
    fn push_edges(
        &mut self,
        src: &[u32],
        dst: &[u32],
        props: &[EdgeProperties],
    ) -> Result<(), StoreError>;

    /// Vertices already durable from a resumed checkpoint; the sink silently
    /// drops this many re-pushed vertices. Zero for fresh sinks.
    fn resume_skip_vertices(&self) -> u64 {
        0
    }

    /// Edges already durable from a resumed checkpoint. A generator may skip
    /// regenerating any chunk of records that falls entirely below this mark
    /// (the sink drops the re-pushed prefix of a partially durable chunk).
    fn resume_skip_edges(&self) -> u64 {
        0
    }

    /// Tells the sink the producer omitted the first `n` edges of the stream
    /// because [`EdgeSink::resume_skip_edges`] said they are already durable.
    /// The sink stops expecting them; pushes resume at edge `n`.
    fn note_skipped_edges(&mut self, _n: u64) {}
}

impl<S: EdgeSink + ?Sized> EdgeSink for &mut S {
    fn push_vertices(&mut self, ips: &[u32]) -> Result<(), StoreError> {
        (**self).push_vertices(ips)
    }

    fn push_edges(
        &mut self,
        src: &[u32],
        dst: &[u32],
        props: &[EdgeProperties],
    ) -> Result<(), StoreError> {
        (**self).push_edges(src, dst, props)
    }

    fn resume_skip_vertices(&self) -> u64 {
        (**self).resume_skip_vertices()
    }

    fn resume_skip_edges(&self) -> u64 {
        (**self).resume_skip_edges()
    }

    fn note_skipped_edges(&mut self, n: u64) {
        (**self).note_skipped_edges(n)
    }
}

/// Receives NetFlow records as a stream of batches.
pub trait FlowSink {
    /// Appends flow records.
    fn push_flows(&mut self, flows: &[FlowRecord]) -> Result<(), StoreError>;
}

/// Receives ground-truth-labeled NetFlow records as a stream of batches.
pub trait LabeledFlowSink {
    /// Appends labeled flow records.
    fn push_labeled(&mut self, flows: &[LabeledFlow]) -> Result<(), StoreError>;
}

pub(crate) fn encode_edge_chunk(src: &[u32], dst: &[u32], props: &[EdgeProperties]) -> Vec<u8> {
    let n = src.len();
    let mut payload = Vec::with_capacity(n * ChunkKind::Edge.record_width());
    debug_assert_eq!(EDGE_COLUMNS.len(), 11);
    for &s in src {
        payload.extend_from_slice(&s.to_le_bytes());
    }
    for &d in dst {
        payload.extend_from_slice(&d.to_le_bytes());
    }
    payload.extend(props.iter().map(|p| p.protocol.number()));
    for p in props {
        payload.extend_from_slice(&p.src_port.to_le_bytes());
    }
    for p in props {
        payload.extend_from_slice(&p.dst_port.to_le_bytes());
    }
    for p in props {
        payload.extend_from_slice(&p.duration_ms.to_le_bytes());
    }
    for p in props {
        payload.extend_from_slice(&p.out_bytes.to_le_bytes());
    }
    for p in props {
        payload.extend_from_slice(&p.in_bytes.to_le_bytes());
    }
    for p in props {
        payload.extend_from_slice(&p.out_pkts.to_le_bytes());
    }
    for p in props {
        payload.extend_from_slice(&p.in_pkts.to_le_bytes());
    }
    payload.extend(props.iter().map(|p| p.state.code() as u8));
    payload
}

fn encode_flow_chunk(flows: &[FlowRecord]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(flows.len() * ChunkKind::Flow.record_width());
    debug_assert_eq!(FLOW_COLUMNS.len(), 14);
    for f in flows {
        payload.extend_from_slice(&f.src_ip.to_le_bytes());
    }
    for f in flows {
        payload.extend_from_slice(&f.dst_ip.to_le_bytes());
    }
    payload.extend(flows.iter().map(|f| f.protocol.number()));
    for f in flows {
        payload.extend_from_slice(&f.src_port.to_le_bytes());
    }
    for f in flows {
        payload.extend_from_slice(&f.dst_port.to_le_bytes());
    }
    for f in flows {
        payload.extend_from_slice(&f.duration_ms.to_le_bytes());
    }
    for f in flows {
        payload.extend_from_slice(&f.out_bytes.to_le_bytes());
    }
    for f in flows {
        payload.extend_from_slice(&f.in_bytes.to_le_bytes());
    }
    for f in flows {
        payload.extend_from_slice(&f.out_pkts.to_le_bytes());
    }
    for f in flows {
        payload.extend_from_slice(&f.in_pkts.to_le_bytes());
    }
    payload.extend(flows.iter().map(|f| f.state.code() as u8));
    for f in flows {
        payload.extend_from_slice(&f.syn_count.to_le_bytes());
    }
    for f in flows {
        payload.extend_from_slice(&f.ack_count.to_le_bytes());
    }
    for f in flows {
        payload.extend_from_slice(&f.first_ts_micros.to_le_bytes());
    }
    payload
}

fn encode_labeled_flow_chunk(flows: &[LabeledFlow]) -> Vec<u8> {
    // The labeled schema is the flow schema plus three trailing label
    // columns, so the flow encoder produces the payload prefix verbatim.
    let base: Vec<FlowRecord> = flows.iter().map(|l| l.flow).collect();
    let mut payload = encode_flow_chunk(&base);
    payload.reserve(flows.len() * 6);
    for l in flows {
        payload.extend_from_slice(&l.label.campaign.to_le_bytes());
    }
    payload.extend(flows.iter().map(|l| l.label.stage));
    payload.extend(flows.iter().map(|l| l.label.class.code()));
    payload
}

/// Format version implied by a compression mode.
pub(crate) fn version_for(compression: Compression) -> u32 {
    match compression {
        Compression::None => FORMAT_VERSION,
        Compression::Columnar => FORMAT_VERSION_V2,
    }
}

/// Writes one chunk through `writer` under the sink's compression mode:
/// raw v1 chunks as-is, v2 chunks per-column encoded and tagged.
pub(crate) fn write_sink_chunk<W: Write>(
    writer: &mut StoreWriter<W>,
    compression: Compression,
    kind: ChunkKind,
    records: u64,
    raw_payload: &[u8],
) -> Result<(), StoreError> {
    match compression {
        Compression::None => writer.write_chunk(kind, records, raw_payload),
        Compression::Columnar => {
            let (stored, columns) = encode_chunk_columns(kind, records, raw_payload);
            writer.write_encoded_chunk(kind, records, &stored, columns)
        }
    }
}

/// An [`EdgeSink`] writing store chunks to `W`.
#[derive(Debug)]
pub struct GraphStoreSink<W: Write> {
    writer: StoreWriter<W>,
    compression: Compression,
    chunk_records: usize,
    vertices: Vec<u32>,
    src: Vec<u32>,
    dst: Vec<u32>,
    props: Vec<EdgeProperties>,
}

impl GraphStoreSink<BufWriter<File>> {
    /// Creates an uncompressed (v1) graph store file at `path`.
    pub fn create(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        GraphStoreSink::create_with(path, Compression::None)
    }

    /// Creates a graph store file at `path` with the given compression.
    pub fn create_with(
        path: impl AsRef<Path>,
        compression: Compression,
    ) -> Result<Self, StoreError> {
        let writer = StoreWriter::create_with(path, FileKind::Graph, version_for(compression))?;
        Ok(GraphStoreSink::from_writer(writer, compression))
    }
}

impl<W: Write> GraphStoreSink<W> {
    /// Starts an uncompressed (v1) graph store stream on `w`.
    pub fn new(w: W) -> Result<Self, StoreError> {
        GraphStoreSink::new_with(w, Compression::None)
    }

    /// Starts a graph store stream on `w` with the given compression.
    pub fn new_with(w: W, compression: Compression) -> Result<Self, StoreError> {
        let writer = StoreWriter::new_with(w, FileKind::Graph, version_for(compression))?;
        Ok(GraphStoreSink::from_writer(writer, compression))
    }

    fn from_writer(writer: StoreWriter<W>, compression: Compression) -> Self {
        GraphStoreSink {
            writer,
            compression,
            chunk_records: CHUNK_RECORDS,
            vertices: Vec::new(),
            src: Vec::new(),
            dst: Vec::new(),
            props: Vec::new(),
        }
    }

    /// Overrides the chunk size (tests use small chunks to exercise the
    /// multi-chunk paths cheaply).
    pub fn with_chunk_records(mut self, records: usize) -> Self {
        self.chunk_records = records.max(1);
        self
    }

    fn flush_full_vertex_chunks(&mut self) -> Result<(), StoreError> {
        while self.vertices.len() >= self.chunk_records {
            let rest = self.vertices.split_off(self.chunk_records);
            let chunk = std::mem::replace(&mut self.vertices, rest);
            let payload: Vec<u8> = chunk.iter().flat_map(|ip| ip.to_le_bytes()).collect();
            write_sink_chunk(
                &mut self.writer,
                self.compression,
                ChunkKind::Vertex,
                chunk.len() as u64,
                &payload,
            )?;
        }
        Ok(())
    }

    fn flush_full_edge_chunks(&mut self) -> Result<(), StoreError> {
        while self.src.len() >= self.chunk_records {
            let rest_src = self.src.split_off(self.chunk_records);
            let rest_dst = self.dst.split_off(self.chunk_records);
            let rest_props = self.props.split_off(self.chunk_records);
            let src = std::mem::replace(&mut self.src, rest_src);
            let dst = std::mem::replace(&mut self.dst, rest_dst);
            let props = std::mem::replace(&mut self.props, rest_props);
            let payload = encode_edge_chunk(&src, &dst, &props);
            write_sink_chunk(
                &mut self.writer,
                self.compression,
                ChunkKind::Edge,
                src.len() as u64,
                &payload,
            )?;
        }
        Ok(())
    }

    /// Flushes the partial buffers and seals the file, returning the inner
    /// writer.
    pub fn finish(mut self) -> Result<W, StoreError> {
        if !self.vertices.is_empty() {
            let payload: Vec<u8> = self.vertices.iter().flat_map(|ip| ip.to_le_bytes()).collect();
            write_sink_chunk(
                &mut self.writer,
                self.compression,
                ChunkKind::Vertex,
                self.vertices.len() as u64,
                &payload,
            )?;
        }
        if !self.src.is_empty() {
            let payload = encode_edge_chunk(&self.src, &self.dst, &self.props);
            write_sink_chunk(
                &mut self.writer,
                self.compression,
                ChunkKind::Edge,
                self.src.len() as u64,
                &payload,
            )?;
        }
        self.writer.finish()
    }
}

impl<W: Write> EdgeSink for GraphStoreSink<W> {
    fn push_vertices(&mut self, ips: &[u32]) -> Result<(), StoreError> {
        self.vertices.extend_from_slice(ips);
        self.flush_full_vertex_chunks()
    }

    fn push_edges(
        &mut self,
        src: &[u32],
        dst: &[u32],
        props: &[EdgeProperties],
    ) -> Result<(), StoreError> {
        assert_eq!(src.len(), dst.len(), "src/dst length mismatch");
        assert_eq!(src.len(), props.len(), "props length mismatch");
        self.src.extend_from_slice(src);
        self.dst.extend_from_slice(dst);
        self.props.extend_from_slice(props);
        self.flush_full_edge_chunks()
    }
}

/// A [`FlowSink`] writing store chunks to `W`.
#[derive(Debug)]
pub struct FlowStoreSink<W: Write> {
    writer: StoreWriter<W>,
    compression: Compression,
    chunk_records: usize,
    flows: Vec<FlowRecord>,
}

impl FlowStoreSink<BufWriter<File>> {
    /// Creates an uncompressed (v1) flow store file at `path`.
    pub fn create(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        FlowStoreSink::create_with(path, Compression::None)
    }

    /// Creates a flow store file at `path` with the given compression.
    pub fn create_with(
        path: impl AsRef<Path>,
        compression: Compression,
    ) -> Result<Self, StoreError> {
        let writer = StoreWriter::create_with(path, FileKind::Flows, version_for(compression))?;
        Ok(FlowStoreSink { writer, compression, chunk_records: CHUNK_RECORDS, flows: Vec::new() })
    }
}

impl<W: Write> FlowStoreSink<W> {
    /// Starts an uncompressed (v1) flow store stream on `w`.
    pub fn new(w: W) -> Result<Self, StoreError> {
        FlowStoreSink::new_with(w, Compression::None)
    }

    /// Starts a flow store stream on `w` with the given compression.
    pub fn new_with(w: W, compression: Compression) -> Result<Self, StoreError> {
        let writer = StoreWriter::new_with(w, FileKind::Flows, version_for(compression))?;
        Ok(FlowStoreSink { writer, compression, chunk_records: CHUNK_RECORDS, flows: Vec::new() })
    }

    /// Overrides the chunk size.
    pub fn with_chunk_records(mut self, records: usize) -> Self {
        self.chunk_records = records.max(1);
        self
    }

    /// Flushes the partial buffer and seals the file.
    pub fn finish(mut self) -> Result<W, StoreError> {
        if !self.flows.is_empty() {
            let payload = encode_flow_chunk(&self.flows);
            write_sink_chunk(
                &mut self.writer,
                self.compression,
                ChunkKind::Flow,
                self.flows.len() as u64,
                &payload,
            )?;
        }
        self.writer.finish()
    }
}

impl<W: Write> FlowSink for FlowStoreSink<W> {
    fn push_flows(&mut self, flows: &[FlowRecord]) -> Result<(), StoreError> {
        self.flows.extend_from_slice(flows);
        while self.flows.len() >= self.chunk_records {
            let rest = self.flows.split_off(self.chunk_records);
            let chunk = std::mem::replace(&mut self.flows, rest);
            let payload = encode_flow_chunk(&chunk);
            write_sink_chunk(
                &mut self.writer,
                self.compression,
                ChunkKind::Flow,
                chunk.len() as u64,
                &payload,
            )?;
        }
        Ok(())
    }
}

/// A [`LabeledFlowSink`] writing labeled flow chunks to `W`. The file is a
/// regular flow store (`FileKind::Flows`) whose chunks carry the labeled
/// schema, so unlabeled readers still load it (labels dropped).
#[derive(Debug)]
pub struct LabeledFlowStoreSink<W: Write> {
    writer: StoreWriter<W>,
    compression: Compression,
    chunk_records: usize,
    flows: Vec<LabeledFlow>,
}

impl LabeledFlowStoreSink<BufWriter<File>> {
    /// Creates a labeled flow store file at `path` with the given
    /// compression.
    pub fn create_with(
        path: impl AsRef<Path>,
        compression: Compression,
    ) -> Result<Self, StoreError> {
        let writer = StoreWriter::create_with(path, FileKind::Flows, version_for(compression))?;
        Ok(LabeledFlowStoreSink {
            writer,
            compression,
            chunk_records: CHUNK_RECORDS,
            flows: Vec::new(),
        })
    }
}

impl<W: Write> LabeledFlowStoreSink<W> {
    /// Starts a labeled flow store stream on `w` with the given compression.
    pub fn new_with(w: W, compression: Compression) -> Result<Self, StoreError> {
        let writer = StoreWriter::new_with(w, FileKind::Flows, version_for(compression))?;
        Ok(LabeledFlowStoreSink {
            writer,
            compression,
            chunk_records: CHUNK_RECORDS,
            flows: Vec::new(),
        })
    }

    /// Overrides the chunk size.
    pub fn with_chunk_records(mut self, records: usize) -> Self {
        self.chunk_records = records.max(1);
        self
    }

    /// Flushes the partial buffer and seals the file.
    pub fn finish(mut self) -> Result<W, StoreError> {
        if !self.flows.is_empty() {
            let payload = encode_labeled_flow_chunk(&self.flows);
            write_sink_chunk(
                &mut self.writer,
                self.compression,
                ChunkKind::LabeledFlow,
                self.flows.len() as u64,
                &payload,
            )?;
        }
        self.writer.finish()
    }
}

impl<W: Write> LabeledFlowSink for LabeledFlowStoreSink<W> {
    fn push_labeled(&mut self, flows: &[LabeledFlow]) -> Result<(), StoreError> {
        self.flows.extend_from_slice(flows);
        while self.flows.len() >= self.chunk_records {
            let rest = self.flows.split_off(self.chunk_records);
            let chunk = std::mem::replace(&mut self.flows, rest);
            let payload = encode_labeled_flow_chunk(&chunk);
            write_sink_chunk(
                &mut self.writer,
                self.compression,
                ChunkKind::LabeledFlow,
                chunk.len() as u64,
                &payload,
            )?;
        }
        Ok(())
    }
}

/// An [`EdgeSink`] accumulating in memory — the reference target the store
/// sinks are tested against, and the adapter that lets streaming generators
/// serve callers who want a [`NetflowGraph`].
#[derive(Debug, Default)]
pub struct MemoryGraphSink {
    ips: Vec<u32>,
    src: Vec<VertexId>,
    dst: Vec<VertexId>,
    props: Vec<EdgeProperties>,
}

impl MemoryGraphSink {
    /// An empty sink.
    pub fn new() -> Self {
        MemoryGraphSink::default()
    }

    /// Builds the graph via the bulk constructor.
    ///
    /// # Panics
    /// Panics if any pushed edge references a vertex that was never pushed.
    pub fn into_graph(self) -> NetflowGraph {
        NetflowGraph::from_parts(self.ips, self.src, self.dst, self.props)
    }
}

impl EdgeSink for MemoryGraphSink {
    fn push_vertices(&mut self, ips: &[u32]) -> Result<(), StoreError> {
        self.ips.extend_from_slice(ips);
        Ok(())
    }

    fn push_edges(
        &mut self,
        src: &[u32],
        dst: &[u32],
        props: &[EdgeProperties],
    ) -> Result<(), StoreError> {
        self.src.extend(src.iter().map(|&s| VertexId(s)));
        self.dst.extend(dst.iter().map(|&d| VertexId(d)));
        self.props.extend_from_slice(props);
        Ok(())
    }
}

/// Writes `g` as a graph store file at `path`.
pub fn save_graph(path: impl AsRef<Path>, g: &NetflowGraph) -> Result<(), StoreError> {
    save_graph_to(BufWriter::new(File::create(path)?), g)?;
    Ok(())
}

/// Writes `g` as a graph store stream on `w`, returning the writer.
pub fn save_graph_to<W: Write>(w: W, g: &NetflowGraph) -> Result<W, StoreError> {
    let mut sink = GraphStoreSink::new(w)?;
    push_graph(&mut sink, g)?;
    sink.finish()
}

/// Streams an in-memory graph into any [`EdgeSink`].
pub fn push_graph(sink: &mut impl EdgeSink, g: &NetflowGraph) -> Result<(), StoreError> {
    sink.push_vertices(g.vertex_data())?;
    let src: Vec<u32> = g.edge_sources().iter().map(|v| v.0).collect();
    let dst: Vec<u32> = g.edge_targets().iter().map(|v| v.0).collect();
    sink.push_edges(&src, &dst, g.edge_data())
}

/// Loads the graph store at `path` — a plain store file or a shard-set
/// manifest, told apart by magic.
pub fn load_graph(path: impl AsRef<Path>) -> Result<NetflowGraph, StoreError> {
    if crate::shard::is_shard_set(&path)? {
        crate::shard::load_graph_sharded(path)
    } else {
        StoreReader::open(path)?.load_graph()
    }
}

/// Writes `flows` as a flow store file at `path`.
pub fn save_flows(path: impl AsRef<Path>, flows: &[FlowRecord]) -> Result<(), StoreError> {
    let mut sink = FlowStoreSink::create(path)?;
    sink.push_flows(flows)?;
    sink.finish()?;
    Ok(())
}

/// Loads the flow store at `path` — a plain store file or a shard-set
/// manifest, told apart by magic. Labels, if present, are dropped.
pub fn load_flows(path: impl AsRef<Path>) -> Result<Vec<FlowRecord>, StoreError> {
    if crate::shard::is_shard_set(&path)? {
        Ok(crate::shard::load_labeled_flows_sharded(path)?.into_iter().map(|l| l.flow).collect())
    } else {
        StoreReader::open(path)?.load_flows()
    }
}

/// Writes labeled flows as a flow store file at `path` with the given
/// compression.
pub fn save_labeled_flows(
    path: impl AsRef<Path>,
    flows: &[LabeledFlow],
    compression: Compression,
) -> Result<(), StoreError> {
    let mut sink = LabeledFlowStoreSink::create_with(path, compression)?;
    sink.push_labeled(flows)?;
    sink.finish()?;
    Ok(())
}

/// Loads the labeled flow store at `path` — a plain store file or a
/// shard-set manifest. Plain v1 flow stores load as all-benign.
pub fn load_labeled_flows(path: impl AsRef<Path>) -> Result<Vec<LabeledFlow>, StoreError> {
    if crate::shard::is_shard_set(&path)? {
        crate::shard::load_labeled_flows_sharded(path)
    } else {
        StoreReader::open(path)?.load_labeled_flows()
    }
}
