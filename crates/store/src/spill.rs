//! Spill files: the disk backing for hash shuffles whose working set exceeds
//! the engine's in-memory budget — the moral equivalent of Spark's shuffle
//! files. A producer writes its records bucketed by destination partition;
//! each destination then reads its bucket from every producer's file, in
//! producer order, so the gathered record order is identical to the
//! in-memory transpose it replaces.

use std::fs::File;
use std::io::{self, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Fixed-width/length-prefixed encoding for records crossing a spill file.
///
/// Implemented for the primitive types and small tuples the engine shuffles;
/// `decode` is the exact inverse of `encode` and advances the input slice.
pub trait SpillCodec: Sized {
    /// Appends this record's bytes to `out`.
    fn encode(&self, out: &mut Vec<u8>);
    /// Reads one record back, advancing `input`. `None` on truncated input.
    fn decode(input: &mut &[u8]) -> Option<Self>;
}

macro_rules! int_codec {
    ($($t:ty),*) => {$(
        impl SpillCodec for $t {
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn decode(input: &mut &[u8]) -> Option<Self> {
                const N: usize = std::mem::size_of::<$t>();
                let (head, rest) = input.split_first_chunk::<N>()?;
                *input = rest;
                Some(<$t>::from_le_bytes(*head))
            }
        }
    )*};
}

int_codec!(u8, u16, u32, u64, i64);

impl SpillCodec for String {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode(out);
        out.extend_from_slice(self.as_bytes());
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        let len = u32::decode(input)? as usize;
        if input.len() < len {
            return None;
        }
        let (head, rest) = input.split_at(len);
        let s = std::str::from_utf8(head).ok()?.to_string();
        *input = rest;
        Some(s)
    }
}

impl<A: SpillCodec, B: SpillCodec> SpillCodec for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some((A::decode(input)?, B::decode(input)?))
    }
}

impl<A: SpillCodec, B: SpillCodec, C: SpillCodec> SpillCodec for (A, B, C) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
        self.2.encode(out);
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some((A::decode(input)?, B::decode(input)?, C::decode(input)?))
    }
}

/// One bucket's contiguous segment inside a spill file.
#[derive(Debug, Clone, Copy)]
struct Segment {
    bucket: usize,
    records: usize,
    offset: u64,
    len: u64,
}

static SPILL_SEQ: AtomicU64 = AtomicU64::new(0);

/// Writes one producer's bucketed records to a uniquely named file in a
/// spill directory.
#[derive(Debug)]
pub struct SpillWriter {
    file: BufWriter<File>,
    path: PathBuf,
    offset: u64,
    segments: Vec<Segment>,
}

impl SpillWriter {
    /// Creates a uniquely named spill file under `dir`.
    pub fn create_in(dir: &Path) -> io::Result<Self> {
        let seq = SPILL_SEQ.fetch_add(1, Ordering::Relaxed);
        let path = dir.join(format!("csb-spill-{}-{seq}.bin", std::process::id()));
        let file = BufWriter::new(File::create(&path)?);
        Ok(SpillWriter { file, path, offset: 0, segments: Vec::new() })
    }

    /// Appends one bucket's records as a segment. Empty buckets write
    /// nothing.
    pub fn write_bucket<T: SpillCodec>(&mut self, bucket: usize, records: &[T]) -> io::Result<()> {
        if records.is_empty() {
            return Ok(());
        }
        let mut buf = Vec::new();
        for r in records {
            r.encode(&mut buf);
        }
        self.file.write_all(&buf)?;
        self.segments.push(Segment {
            bucket,
            records: records.len(),
            offset: self.offset,
            len: buf.len() as u64,
        });
        self.offset += buf.len() as u64;
        csb_obs::counter_add("engine.spill_bytes_written", buf.len() as u64);
        Ok(())
    }

    /// Flushes and seals the file for reading.
    pub fn finish(mut self) -> io::Result<SpillFile> {
        self.file.flush()?;
        Ok(SpillFile { path: self.path, segments: self.segments })
    }
}

/// A sealed spill file; buckets can be read back concurrently (`&self`).
/// The file is deleted on drop.
#[derive(Debug)]
pub struct SpillFile {
    path: PathBuf,
    segments: Vec<Segment>,
}

impl SpillFile {
    /// Records this producer wrote into `bucket`.
    pub fn bucket_records(&self, bucket: usize) -> usize {
        self.segments.iter().filter(|s| s.bucket == bucket).map(|s| s.records).sum()
    }

    /// Total records across all buckets.
    pub fn total_records(&self) -> usize {
        self.segments.iter().map(|s| s.records).sum()
    }

    /// Reads every record of `bucket` back, in write order.
    pub fn read_bucket<T: SpillCodec>(&self, bucket: usize) -> io::Result<Vec<T>> {
        let mut out = Vec::with_capacity(self.bucket_records(bucket));
        let mut file: Option<File> = None;
        for seg in self.segments.iter().filter(|s| s.bucket == bucket) {
            let f = match &mut file {
                Some(f) => f,
                None => file.insert(File::open(&self.path)?),
            };
            let mut raw = vec![0u8; seg.len as usize];
            f.seek(SeekFrom::Start(seg.offset))?;
            f.read_exact(&mut raw)?;
            csb_obs::counter_add("engine.spill_bytes_read", raw.len() as u64);
            let mut input = &raw[..];
            for _ in 0..seg.records {
                out.push(T::decode(&mut input).ok_or_else(|| {
                    io::Error::new(io::ErrorKind::InvalidData, "truncated spill segment")
                })?);
            }
        }
        Ok(out)
    }
}

impl Drop for SpillFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: SpillCodec + PartialEq + std::fmt::Debug>(v: T) {
        let mut buf = Vec::new();
        v.encode(&mut buf);
        let mut input = &buf[..];
        assert_eq!(T::decode(&mut input), Some(v));
        assert!(input.is_empty(), "decode must consume exactly what encode wrote");
    }

    #[test]
    fn codecs_round_trip() {
        round_trip(0u8);
        round_trip(u16::MAX);
        round_trip(0xDEAD_BEEFu32);
        round_trip(u64::MAX);
        round_trip(-42i64);
        round_trip(String::from("héllo\tworld"));
        round_trip(String::new());
        round_trip((7u32, 9u64));
        round_trip((1u64, String::from("x"), 3u64));
    }

    #[test]
    fn decode_rejects_truncation() {
        let mut buf = Vec::new();
        (0xABCD_EF01u32, 7u64).encode(&mut buf);
        let mut short = &buf[..buf.len() - 1];
        assert_eq!(<(u32, u64)>::decode(&mut short), None);
        let mut sbuf = Vec::new();
        String::from("hello").encode(&mut sbuf);
        let mut short = &sbuf[..3];
        assert_eq!(String::decode(&mut short), None);
    }

    #[test]
    fn spill_file_round_trips_buckets_in_write_order() {
        let dir = std::env::temp_dir();
        let mut w = SpillWriter::create_in(&dir).expect("create");
        w.write_bucket(0, &[1u64, 2, 3]).expect("b0");
        w.write_bucket(2, &[10u64]).expect("b2");
        w.write_bucket(0, &[4u64, 5]).expect("b0 again");
        w.write_bucket(1, &[] as &[u64]).expect("empty");
        let f = w.finish().expect("finish");
        assert_eq!(f.total_records(), 6);
        assert_eq!(f.read_bucket::<u64>(0).expect("read"), vec![1, 2, 3, 4, 5]);
        assert_eq!(f.read_bucket::<u64>(1).expect("read"), Vec::<u64>::new());
        assert_eq!(f.read_bucket::<u64>(2).expect("read"), vec![10]);
    }

    #[test]
    fn spill_file_is_deleted_on_drop() {
        let dir = std::env::temp_dir();
        let mut w = SpillWriter::create_in(&dir).expect("create");
        w.write_bucket(0, &[1u32]).expect("write");
        let f = w.finish().expect("finish");
        let path = f.path.clone();
        assert!(path.exists());
        drop(f);
        assert!(!path.exists(), "spill file must be removed on drop");
    }

    #[test]
    fn concurrent_bucket_reads() {
        let dir = std::env::temp_dir();
        let mut w = SpillWriter::create_in(&dir).expect("create");
        for b in 0..8usize {
            let data: Vec<u64> = (0..100).map(|i| (b * 1000 + i) as u64).collect();
            w.write_bucket(b, &data).expect("write");
        }
        let f = w.finish().expect("finish");
        std::thread::scope(|s| {
            for b in 0..8usize {
                let f = &f;
                s.spawn(move || {
                    let got = f.read_bucket::<u64>(b).expect("read");
                    assert_eq!(got.len(), 100);
                    assert_eq!(got[0], b as u64 * 1000);
                });
            }
        });
    }
}
