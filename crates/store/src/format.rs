//! On-disk layout of the csb store format, versions 1 and 2.
//!
//! A store file is, in order:
//!
//! ```text
//! file header   magic "CSBSTOR1" (8) | version u32 | kind u8 | 3 reserved     16 bytes
//! chunk*        chunk header (28) | column payload                            variable
//! footer        one index entry per chunk                                     variable
//! trailer       chunk count u64 | footer offset u64 | magic "CSBEND01"        24 bytes
//! ```
//!
//! All integers are **little-endian**. Each chunk's payload is column-major:
//! the columns of [`EDGE_COLUMNS`] / [`FLOW_COLUMNS`] (or the single-column
//! [`VERTEX_COLUMNS`]) concatenated, so a reader can project a subset of
//! columns without touching the other attributes. The chunk header carries a
//! CRC32 (IEEE) of the stored payload; the trailing footer index makes chunk
//! discovery O(1) from the end of the file without scanning.
//!
//! **Version 1** stores each column raw: `records x width` bytes at a
//! computable offset, footer entries a fixed 32 bytes.
//!
//! **Version 2** stores each column individually encoded (see
//! [`crate::codec`]) and appends a column directory to every footer entry:
//! `ncols u8`, then per column `codec u8 | enc_len u32 | crc32 u32`. Column
//! offsets inside a chunk are prefix sums of `enc_len`, and the per-column
//! CRC lets a projection read verify exactly the bytes it fetched. Footer
//! entries are therefore variable-length in v2; readers must parse the
//! footer sequentially rather than indexing by a fixed stride. A v1 file is
//! readable by a v2 reader unchanged (empty column directory ⇒ raw layout).

use crate::codec::{Codec, ColumnCodec};

/// File magic, first 8 bytes.
pub const FILE_MAGIC: [u8; 8] = *b"CSBSTOR1";
/// Trailer magic, last 8 bytes.
pub const TRAILER_MAGIC: [u8; 8] = *b"CSBEND01";
/// Chunk header magic ("CHNK" in LE byte order).
pub const CHUNK_MAGIC: u32 = u32::from_le_bytes(*b"CHNK");
/// Format version 1: raw columns, fixed 32-byte footer entries.
pub const FORMAT_VERSION: u32 = 1;
/// Format version 2: per-column codecs, footer entries carry a column
/// directory.
pub const FORMAT_VERSION_V2: u32 = 2;

/// File header length in bytes.
pub const FILE_HEADER_LEN: u64 = 16;
/// Chunk header length in bytes (magic + kind + pad + count + len + crc).
pub const CHUNK_HEADER_LEN: u64 = 28;
/// Footer index entry length in bytes (v1; the fixed prefix of a v2 entry).
pub const FOOTER_ENTRY_LEN: u64 = 32;
/// Bytes per column tag appended to a v2 footer entry.
pub const COLUMN_TAG_LEN: u64 = 9;
/// Trailer length in bytes.
pub const TRAILER_LEN: u64 = 24;

/// What a store file holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Vertex + edge chunks of a property graph.
    Graph,
    /// Flow chunks of a NetFlow record stream.
    Flows,
}

impl FileKind {
    /// Stable byte code.
    pub const fn code(self) -> u8 {
        match self {
            FileKind::Graph => 0,
            FileKind::Flows => 1,
        }
    }

    /// Inverse of [`FileKind::code`].
    pub const fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(FileKind::Graph),
            1 => Some(FileKind::Flows),
            _ => None,
        }
    }
}

/// What one chunk holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkKind {
    /// Vertex ip column.
    Vertex,
    /// Edge columns ([`EDGE_COLUMNS`]).
    Edge,
    /// Flow columns ([`FLOW_COLUMNS`]).
    Flow,
    /// Labeled flow columns ([`LABELED_FLOW_COLUMNS`]): the flow schema plus
    /// campaign ground-truth label columns.
    LabeledFlow,
}

impl ChunkKind {
    /// Stable byte code.
    pub const fn code(self) -> u8 {
        match self {
            ChunkKind::Vertex => 0,
            ChunkKind::Edge => 1,
            ChunkKind::Flow => 2,
            ChunkKind::LabeledFlow => 3,
        }
    }

    /// Inverse of [`ChunkKind::code`].
    pub const fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(ChunkKind::Vertex),
            1 => Some(ChunkKind::Edge),
            2 => Some(ChunkKind::Flow),
            3 => Some(ChunkKind::LabeledFlow),
            _ => None,
        }
    }

    /// Payload bytes per record of this chunk kind.
    pub fn record_width(self) -> usize {
        match self {
            ChunkKind::Vertex => 4,
            ChunkKind::Edge => EDGE_COLUMNS.iter().map(|c| c.width).sum(),
            ChunkKind::Flow => FLOW_COLUMNS.iter().map(|c| c.width).sum(),
            ChunkKind::LabeledFlow => LABELED_FLOW_COLUMNS.iter().map(|c| c.width).sum(),
        }
    }
}

/// One fixed-width column of a chunk schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Column {
    /// Column name (matches the paper's attribute vocabulary where one
    /// exists).
    pub name: &'static str,
    /// Bytes per record.
    pub width: usize,
}

const fn col(name: &'static str, width: usize) -> Column {
    Column { name, width }
}

/// Edge chunk schema: endpoints plus the nine NetFlow attributes, in the
/// order of `csb_graph::EdgeProperties`.
pub const EDGE_COLUMNS: [Column; 11] = [
    col("SRC", 4),
    col("DST", 4),
    col("PROTOCOL", 1),
    col("SRC_PORT", 2),
    col("DEST_PORT", 2),
    col("DURATION", 8),
    col("OUT_BYTES", 8),
    col("IN_BYTES", 8),
    col("OUT_PKTS", 8),
    col("IN_PKTS", 8),
    col("STATE", 1),
];

/// Flow chunk schema: the edge schema keyed by address instead of vertex id,
/// plus the detector fields (`syn_count`, `ack_count`, `first_ts_micros`).
pub const FLOW_COLUMNS: [Column; 14] = [
    col("SRC_IP", 4),
    col("DST_IP", 4),
    col("PROTOCOL", 1),
    col("SRC_PORT", 2),
    col("DEST_PORT", 2),
    col("DURATION", 8),
    col("OUT_BYTES", 8),
    col("IN_BYTES", 8),
    col("OUT_PKTS", 8),
    col("IN_PKTS", 8),
    col("STATE", 1),
    col("SYN_COUNT", 4),
    col("ACK_COUNT", 4),
    col("FIRST_TS_MICROS", 8),
];

/// Labeled flow chunk schema: [`FLOW_COLUMNS`] plus the campaign
/// ground-truth label columns (campaign id, kill-chain stage index, attack
/// class code). Campaign id 0 = benign, so unlabeled v1 flow chunks read
/// back as all-benign without translation.
pub const LABELED_FLOW_COLUMNS: [Column; 17] = [
    col("SRC_IP", 4),
    col("DST_IP", 4),
    col("PROTOCOL", 1),
    col("SRC_PORT", 2),
    col("DEST_PORT", 2),
    col("DURATION", 8),
    col("OUT_BYTES", 8),
    col("IN_BYTES", 8),
    col("OUT_PKTS", 8),
    col("IN_PKTS", 8),
    col("STATE", 1),
    col("SYN_COUNT", 4),
    col("ACK_COUNT", 4),
    col("FIRST_TS_MICROS", 8),
    col("CAMPAIGN", 4),
    col("STAGE", 1),
    col("CLASS", 1),
];

/// Vertex chunk schema: the single ip column.
pub const VERTEX_COLUMNS: [Column; 1] = [col("IP", 4)];

/// The column schema of a chunk kind.
pub fn chunk_schema(kind: ChunkKind) -> &'static [Column] {
    match kind {
        ChunkKind::Vertex => &VERTEX_COLUMNS,
        ChunkKind::Edge => &EDGE_COLUMNS,
        ChunkKind::Flow => &FLOW_COLUMNS,
        ChunkKind::LabeledFlow => &LABELED_FLOW_COLUMNS,
    }
}

/// Byte offset of column `index` inside a chunk payload of `records` records.
pub fn column_offset(schema: &[Column], index: usize, records: usize) -> usize {
    schema[..index].iter().map(|c| c.width * records).sum()
}

/// Footer index entry describing one chunk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkEntry {
    /// Chunk kind.
    pub kind: ChunkKind,
    /// Records in the chunk.
    pub records: u64,
    /// File offset of the chunk header.
    pub offset: u64,
    /// Stored payload length in bytes (encoded length for v2 chunks).
    pub payload_len: u64,
    /// CRC32 (IEEE) of the stored payload.
    pub crc32: u32,
    /// v2 column directory, in schema order; empty for v1 chunks (raw
    /// layout, offsets computed from the schema widths).
    pub columns: Vec<ColumnCodec>,
}

impl ChunkEntry {
    /// Serialized length of this entry under `version` framing.
    pub fn encoded_len(&self, version: u32) -> u64 {
        if version >= FORMAT_VERSION_V2 {
            FOOTER_ENTRY_LEN + 1 + self.columns.len() as u64 * COLUMN_TAG_LEN
        } else {
            FOOTER_ENTRY_LEN
        }
    }

    /// Appends the entry under `version` framing: the fixed 32-byte prefix,
    /// plus the column directory for v2.
    pub fn encode_into(&self, out: &mut Vec<u8>, version: u32) {
        out.extend_from_slice(&[self.kind.code(), 0, 0, 0]);
        out.extend_from_slice(&self.records.to_le_bytes());
        out.extend_from_slice(&self.offset.to_le_bytes());
        out.extend_from_slice(&self.payload_len.to_le_bytes());
        out.extend_from_slice(&self.crc32.to_le_bytes());
        if version >= FORMAT_VERSION_V2 {
            debug_assert!(self.columns.len() <= u8::MAX as usize);
            out.push(self.columns.len() as u8);
            for c in &self.columns {
                out.push(c.codec.code());
                out.extend_from_slice(&c.enc_len.to_le_bytes());
                out.extend_from_slice(&c.crc32.to_le_bytes());
            }
        }
    }

    /// Parses one entry under `version` framing, advancing `pos`. `at` is
    /// the file offset of `buf[0]`, for error reporting.
    pub fn decode_from(
        buf: &[u8],
        pos: &mut usize,
        version: u32,
        at: u64,
    ) -> Result<Self, StoreError> {
        let err_at = at + *pos as u64;
        let e = buf
            .get(*pos..*pos + FOOTER_ENTRY_LEN as usize)
            .ok_or_else(|| corrupt(err_at, "truncated footer entry"))?;
        *pos += FOOTER_ENTRY_LEN as usize;
        let kind = ChunkKind::from_code(e[0])
            .ok_or_else(|| corrupt(err_at, format!("bad chunk kind {}", e[0])))?;
        let mut entry = ChunkEntry {
            kind,
            records: u64::from_le_bytes(e[4..12].try_into().unwrap()),
            offset: u64::from_le_bytes(e[12..20].try_into().unwrap()),
            payload_len: u64::from_le_bytes(e[20..28].try_into().unwrap()),
            crc32: u32::from_le_bytes(e[28..32].try_into().unwrap()),
            columns: Vec::new(),
        };
        if version >= FORMAT_VERSION_V2 {
            let &ncols = buf
                .get(*pos)
                .ok_or_else(|| corrupt(err_at, "footer entry missing column directory"))?;
            *pos += 1;
            entry.columns.reserve_exact(ncols as usize);
            for _ in 0..ncols {
                let t = buf
                    .get(*pos..*pos + COLUMN_TAG_LEN as usize)
                    .ok_or_else(|| corrupt(err_at, "truncated column tag"))?;
                *pos += COLUMN_TAG_LEN as usize;
                let codec = Codec::from_code(t[0])
                    .ok_or_else(|| corrupt(err_at, format!("unknown codec {}", t[0])))?;
                entry.columns.push(ColumnCodec {
                    codec,
                    enc_len: u32::from_le_bytes(t[1..5].try_into().unwrap()),
                    crc32: u32::from_le_bytes(t[5..9].try_into().unwrap()),
                });
            }
        }
        Ok(entry)
    }
}

/// Errors from store (de)serialization — an alias of the suite-wide
/// [`CsbError`](crate::error::CsbError) so retry logic can classify store
/// failures without conversion.
pub type StoreError = crate::error::CsbError;

pub(crate) fn corrupt(offset: u64, message: impl Into<String>) -> StoreError {
    StoreError::Corrupt { offset, message: message.into() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_codes_round_trip() {
        for k in [FileKind::Graph, FileKind::Flows] {
            assert_eq!(FileKind::from_code(k.code()), Some(k));
        }
        assert_eq!(FileKind::from_code(9), None);
        for k in [ChunkKind::Vertex, ChunkKind::Edge, ChunkKind::Flow, ChunkKind::LabeledFlow] {
            assert_eq!(ChunkKind::from_code(k.code()), Some(k));
        }
        assert_eq!(ChunkKind::from_code(9), None);
    }

    #[test]
    fn record_widths_sum_the_schemas() {
        assert_eq!(ChunkKind::Vertex.record_width(), 4);
        assert_eq!(ChunkKind::Edge.record_width(), 54);
        assert_eq!(ChunkKind::Flow.record_width(), 70);
    }

    #[test]
    fn column_offsets_are_exclusive_prefix_sums() {
        assert_eq!(column_offset(&EDGE_COLUMNS, 0, 10), 0);
        assert_eq!(column_offset(&EDGE_COLUMNS, 1, 10), 40);
        assert_eq!(column_offset(&EDGE_COLUMNS, 2, 10), 80);
        assert_eq!(column_offset(&EDGE_COLUMNS, 10, 10), 530);
    }

    #[test]
    fn edge_schema_covers_the_nine_attributes() {
        let names: Vec<&str> = EDGE_COLUMNS.iter().skip(2).map(|c| c.name).collect();
        assert_eq!(names, csb_graph::EdgeProperties::ATTRIBUTE_NAMES);
    }
}
