//! On-disk layout of the csb store format, version 1.
//!
//! A store file is, in order:
//!
//! ```text
//! file header   magic "CSBSTOR1" (8) | version u32 | kind u8 | 3 reserved     16 bytes
//! chunk*        chunk header (28) | column payload                            variable
//! footer        one index entry per chunk                                     32 bytes each
//! trailer       chunk count u64 | footer offset u64 | magic "CSBEND01"        24 bytes
//! ```
//!
//! All integers are **little-endian**. Each chunk's payload is column-major:
//! the columns of [`EDGE_COLUMNS`] / [`FLOW_COLUMNS`] (or the single vertex
//! ip column) concatenated, each `records x width` bytes, so a reader can
//! project a single column by seeking to its offset without touching the
//! other eight attributes. The chunk header carries a CRC32 (IEEE) of the
//! payload; the trailing footer index makes chunk discovery O(1) from the
//! end of the file without scanning.

/// File magic, first 8 bytes.
pub const FILE_MAGIC: [u8; 8] = *b"CSBSTOR1";
/// Trailer magic, last 8 bytes.
pub const TRAILER_MAGIC: [u8; 8] = *b"CSBEND01";
/// Chunk header magic ("CHNK" in LE byte order).
pub const CHUNK_MAGIC: u32 = u32::from_le_bytes(*b"CHNK");
/// Format version written by this crate.
pub const FORMAT_VERSION: u32 = 1;

/// File header length in bytes.
pub const FILE_HEADER_LEN: u64 = 16;
/// Chunk header length in bytes (magic + kind + pad + count + len + crc).
pub const CHUNK_HEADER_LEN: u64 = 28;
/// Footer index entry length in bytes.
pub const FOOTER_ENTRY_LEN: u64 = 32;
/// Trailer length in bytes.
pub const TRAILER_LEN: u64 = 24;

/// What a store file holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Vertex + edge chunks of a property graph.
    Graph,
    /// Flow chunks of a NetFlow record stream.
    Flows,
}

impl FileKind {
    /// Stable byte code.
    pub const fn code(self) -> u8 {
        match self {
            FileKind::Graph => 0,
            FileKind::Flows => 1,
        }
    }

    /// Inverse of [`FileKind::code`].
    pub const fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(FileKind::Graph),
            1 => Some(FileKind::Flows),
            _ => None,
        }
    }
}

/// What one chunk holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkKind {
    /// Vertex ip column.
    Vertex,
    /// Edge columns ([`EDGE_COLUMNS`]).
    Edge,
    /// Flow columns ([`FLOW_COLUMNS`]).
    Flow,
}

impl ChunkKind {
    /// Stable byte code.
    pub const fn code(self) -> u8 {
        match self {
            ChunkKind::Vertex => 0,
            ChunkKind::Edge => 1,
            ChunkKind::Flow => 2,
        }
    }

    /// Inverse of [`ChunkKind::code`].
    pub const fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(ChunkKind::Vertex),
            1 => Some(ChunkKind::Edge),
            2 => Some(ChunkKind::Flow),
            _ => None,
        }
    }

    /// Payload bytes per record of this chunk kind.
    pub fn record_width(self) -> usize {
        match self {
            ChunkKind::Vertex => 4,
            ChunkKind::Edge => EDGE_COLUMNS.iter().map(|c| c.width).sum(),
            ChunkKind::Flow => FLOW_COLUMNS.iter().map(|c| c.width).sum(),
        }
    }
}

/// One fixed-width column of a chunk schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Column {
    /// Column name (matches the paper's attribute vocabulary where one
    /// exists).
    pub name: &'static str,
    /// Bytes per record.
    pub width: usize,
}

const fn col(name: &'static str, width: usize) -> Column {
    Column { name, width }
}

/// Edge chunk schema: endpoints plus the nine NetFlow attributes, in the
/// order of `csb_graph::EdgeProperties`.
pub const EDGE_COLUMNS: [Column; 11] = [
    col("SRC", 4),
    col("DST", 4),
    col("PROTOCOL", 1),
    col("SRC_PORT", 2),
    col("DEST_PORT", 2),
    col("DURATION", 8),
    col("OUT_BYTES", 8),
    col("IN_BYTES", 8),
    col("OUT_PKTS", 8),
    col("IN_PKTS", 8),
    col("STATE", 1),
];

/// Flow chunk schema: the edge schema keyed by address instead of vertex id,
/// plus the detector fields (`syn_count`, `ack_count`, `first_ts_micros`).
pub const FLOW_COLUMNS: [Column; 14] = [
    col("SRC_IP", 4),
    col("DST_IP", 4),
    col("PROTOCOL", 1),
    col("SRC_PORT", 2),
    col("DEST_PORT", 2),
    col("DURATION", 8),
    col("OUT_BYTES", 8),
    col("IN_BYTES", 8),
    col("OUT_PKTS", 8),
    col("IN_PKTS", 8),
    col("STATE", 1),
    col("SYN_COUNT", 4),
    col("ACK_COUNT", 4),
    col("FIRST_TS_MICROS", 8),
];

/// Byte offset of column `index` inside a chunk payload of `records` records.
pub fn column_offset(schema: &[Column], index: usize, records: usize) -> usize {
    schema[..index].iter().map(|c| c.width * records).sum()
}

/// Footer index entry describing one chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkEntry {
    /// Chunk kind.
    pub kind: ChunkKind,
    /// Records in the chunk.
    pub records: u64,
    /// File offset of the chunk header.
    pub offset: u64,
    /// Payload length in bytes.
    pub payload_len: u64,
    /// CRC32 (IEEE) of the payload.
    pub crc32: u32,
}

/// Errors from store (de)serialization — an alias of the suite-wide
/// [`CsbError`](crate::error::CsbError) so retry logic can classify store
/// failures without conversion.
pub type StoreError = crate::error::CsbError;

pub(crate) fn corrupt(offset: u64, message: impl Into<String>) -> StoreError {
    StoreError::Corrupt { offset, message: message.into() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_codes_round_trip() {
        for k in [FileKind::Graph, FileKind::Flows] {
            assert_eq!(FileKind::from_code(k.code()), Some(k));
        }
        assert_eq!(FileKind::from_code(9), None);
        for k in [ChunkKind::Vertex, ChunkKind::Edge, ChunkKind::Flow] {
            assert_eq!(ChunkKind::from_code(k.code()), Some(k));
        }
        assert_eq!(ChunkKind::from_code(9), None);
    }

    #[test]
    fn record_widths_sum_the_schemas() {
        assert_eq!(ChunkKind::Vertex.record_width(), 4);
        assert_eq!(ChunkKind::Edge.record_width(), 54);
        assert_eq!(ChunkKind::Flow.record_width(), 70);
    }

    #[test]
    fn column_offsets_are_exclusive_prefix_sums() {
        assert_eq!(column_offset(&EDGE_COLUMNS, 0, 10), 0);
        assert_eq!(column_offset(&EDGE_COLUMNS, 1, 10), 40);
        assert_eq!(column_offset(&EDGE_COLUMNS, 2, 10), 80);
        assert_eq!(column_offset(&EDGE_COLUMNS, 10, 10), 530);
    }

    #[test]
    fn edge_schema_covers_the_nine_attributes() {
        let names: Vec<&str> = EDGE_COLUMNS.iter().skip(2).map(|c| c.name).collect();
        assert_eq!(names, csb_graph::EdgeProperties::ATTRIBUTE_NAMES);
    }
}
