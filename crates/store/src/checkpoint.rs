//! Checkpointed generation runs: a CRC-validated manifest recording the last
//! durable chunk of a store file, and a graph sink that emits a checkpoint
//! barrier every N chunks.
//!
//! The manifest is chunk-aligned by construction — it records exactly the
//! chunks the [`StoreWriter`] footer index knows about, flushed and fsynced
//! to the store file before the manifest is atomically renamed into place.
//! A killed run therefore leaves (a) a store file whose prefix up to
//! `bytes_durable` is valid and (b) a manifest describing that prefix;
//! everything past the barrier is regenerated on resume by replaying the
//! deterministic per-chunk RNG streams, so a resumed run is **byte-identical**
//! to an uninterrupted one (the sinks re-chunk, so file bytes depend only on
//! the record stream).
//!
//! Resume safety comes from three validations: the manifest's own CRC32, the
//! identity triple (generator kind, config hash, RNG master seed) — resuming
//! with a different config would silently splice two different graphs — and
//! a re-read of the last durable chunk's payload against its recorded CRC.

use crate::crc32::crc32;
use crate::format::{
    corrupt, ChunkEntry, ChunkKind, FileKind, StoreError, FILE_MAGIC, FORMAT_VERSION,
};
use crate::sink::{encode_edge_chunk, EdgeSink, CHUNK_RECORDS};
use crate::write::StoreWriter;
use csb_graph::EdgeProperties;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Manifest file name inside a checkpoint directory.
pub const MANIFEST_FILE: &str = "checkpoint.manifest";

/// Manifest magic, first 8 bytes.
pub const MANIFEST_MAGIC: [u8; 8] = *b"CSBCKPT1";

/// Manifest format version.
pub const MANIFEST_VERSION: u32 = 1;

/// Default chunks between checkpoint barriers.
pub const DEFAULT_CHECKPOINT_EVERY: u64 = 8;

/// Identifies *which run* a checkpoint belongs to. Resume refuses to splice
/// a checkpoint into a run with a different generator, config, or seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointIdentity {
    /// Generator kind (`"pgpba"` / `"pgsk"`).
    pub generator: String,
    /// Hash of the full generator configuration.
    pub config_hash: u64,
    /// RNG master seed of the run.
    pub master_seed: u64,
}

/// The durable state of a checkpointed run: identity, chunk geometry, and
/// the store-file prefix written as of the last barrier.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointManifest {
    /// Who was generating, with what config and seed.
    pub identity: CheckpointIdentity,
    /// Records per store chunk (resume must re-chunk identically).
    pub chunk_records: u64,
    /// Vertices contained in durable vertex chunks.
    pub vertices_durable: u64,
    /// Edges contained in durable edge chunks.
    pub edges_durable: u64,
    /// Store-file length as of the barrier (header + durable chunks).
    pub bytes_durable: u64,
    /// Footer index of the durable chunks.
    pub chunks: Vec<ChunkEntry>,
}

impl CheckpointManifest {
    /// Path of the manifest inside `dir`.
    pub fn path_in(dir: impl AsRef<Path>) -> PathBuf {
        dir.as_ref().join(MANIFEST_FILE)
    }

    /// True when `dir` holds a manifest.
    pub fn exists(dir: impl AsRef<Path>) -> bool {
        Self::path_in(dir).is_file()
    }

    fn to_bytes(&self) -> Vec<u8> {
        let gen = self.identity.generator.as_bytes();
        assert!(gen.len() <= u8::MAX as usize, "generator name too long");
        let mut out = Vec::with_capacity(96 + gen.len() + self.chunks.len() * 32);
        out.extend_from_slice(&MANIFEST_MAGIC);
        out.extend_from_slice(&MANIFEST_VERSION.to_le_bytes());
        out.push(gen.len() as u8);
        out.extend_from_slice(gen);
        out.extend_from_slice(&self.identity.config_hash.to_le_bytes());
        out.extend_from_slice(&self.identity.master_seed.to_le_bytes());
        out.extend_from_slice(&self.chunk_records.to_le_bytes());
        out.extend_from_slice(&self.vertices_durable.to_le_bytes());
        out.extend_from_slice(&self.edges_durable.to_le_bytes());
        out.extend_from_slice(&self.bytes_durable.to_le_bytes());
        out.extend_from_slice(&(self.chunks.len() as u64).to_le_bytes());
        for c in &self.chunks {
            c.encode_into(&mut out, FORMAT_VERSION);
        }
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    fn from_bytes(bytes: &[u8]) -> Result<Self, StoreError> {
        let bad = |msg: &str| corrupt(0, format!("checkpoint manifest: {msg}"));
        if bytes.len() < 16 || bytes[..8] != MANIFEST_MAGIC {
            return Err(bad("bad magic"));
        }
        let body_len = bytes.len() - 4;
        let stored_crc = u32::from_le_bytes(bytes[body_len..].try_into().expect("4 bytes"));
        if crc32(&bytes[..body_len]) != stored_crc {
            return Err(bad("CRC mismatch"));
        }
        let u32_at = |o: usize| u32::from_le_bytes(bytes[o..o + 4].try_into().expect("4 bytes"));
        let u64_at = |o: usize| u64::from_le_bytes(bytes[o..o + 8].try_into().expect("8 bytes"));
        if u32_at(8) != MANIFEST_VERSION {
            return Err(bad("unsupported version"));
        }
        let gen_len = bytes[12] as usize;
        let mut o = 13;
        if body_len < o + gen_len + 56 {
            return Err(bad("truncated"));
        }
        let generator = String::from_utf8(bytes[o..o + gen_len].to_vec())
            .map_err(|_| bad("generator name is not UTF-8"))?;
        o += gen_len;
        let config_hash = u64_at(o);
        let master_seed = u64_at(o + 8);
        let chunk_records = u64_at(o + 16);
        let vertices_durable = u64_at(o + 24);
        let edges_durable = u64_at(o + 32);
        let bytes_durable = u64_at(o + 40);
        let chunk_count = u64_at(o + 48) as usize;
        o += 56;
        if body_len != o + chunk_count * 32 {
            return Err(bad("chunk index length mismatch"));
        }
        let mut chunks = Vec::with_capacity(chunk_count);
        for _ in 0..chunk_count {
            chunks.push(ChunkEntry::decode_from(&bytes[..body_len], &mut o, FORMAT_VERSION, 0)?);
        }
        Ok(CheckpointManifest {
            identity: CheckpointIdentity { generator, config_hash, master_seed },
            chunk_records,
            vertices_durable,
            edges_durable,
            bytes_durable,
            chunks,
        })
    }

    /// Writes the manifest atomically: temp file, fsync, rename. A crash
    /// mid-save leaves the previous manifest intact.
    pub fn save(&self, dir: impl AsRef<Path>) -> Result<(), StoreError> {
        let dir = dir.as_ref();
        let tmp = dir.join(format!("{MANIFEST_FILE}.tmp"));
        let bytes = self.to_bytes();
        let mut f = File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
        drop(f);
        std::fs::rename(&tmp, Self::path_in(dir))?;
        Ok(())
    }

    /// Loads and validates the manifest in `dir`.
    pub fn load(dir: impl AsRef<Path>) -> Result<Self, StoreError> {
        let path = Self::path_in(&dir);
        if !path.is_file() {
            return Err(StoreError::Mismatch(format!(
                "no checkpoint manifest at {} — nothing to resume",
                path.display()
            )));
        }
        Self::from_bytes(&std::fs::read(path)?)
    }
}

/// An [`EdgeSink`] writing a graph store file with checkpoint barriers: every
/// `checkpoint_every` chunks the file is flushed + fsynced and a
/// [`CheckpointManifest`] is atomically written beside it. Byte-compatible
/// with [`GraphStoreSink`](crate::sink::GraphStoreSink): an uninterrupted
/// checkpointed run produces the identical file.
#[derive(Debug)]
pub struct CheckpointedGraphSink {
    writer: StoreWriter<BufWriter<File>>,
    dir: PathBuf,
    identity: CheckpointIdentity,
    chunk_records: usize,
    checkpoint_every: u64,
    vertices: Vec<u32>,
    src: Vec<u32>,
    dst: Vec<u32>,
    props: Vec<EdgeProperties>,
    /// Records contained in *written* chunks (buffered tails are volatile).
    vertices_chunked: u64,
    edges_chunked: u64,
    chunks_since_barrier: u64,
    chunks_written: u64,
    /// Re-pushed records to drop because the manifest already covers them.
    skip_vertices: u64,
    skip_edges: u64,
    /// Fault-injection hook: fail (or abort) before writing chunk N+1.
    kill_after_chunks: Option<u64>,
    kill_aborts_process: bool,
    /// Cooperative preemption: when set, the next chunk boundary takes a
    /// barrier and surfaces a `Transient` error instead of writing.
    stop: Option<Arc<AtomicBool>>,
}

impl CheckpointedGraphSink {
    /// Starts a fresh checkpointed run: graph store file at `path`, manifest
    /// barriers in `dir` (created if missing).
    pub fn create(
        path: impl AsRef<Path>,
        dir: impl AsRef<Path>,
        identity: CheckpointIdentity,
    ) -> Result<Self, StoreError> {
        std::fs::create_dir_all(&dir)?;
        let writer = StoreWriter::create(path, FileKind::Graph)?;
        Ok(CheckpointedGraphSink {
            writer,
            dir: dir.as_ref().to_path_buf(),
            identity,
            chunk_records: CHUNK_RECORDS,
            checkpoint_every: DEFAULT_CHECKPOINT_EVERY,
            vertices: Vec::new(),
            src: Vec::new(),
            dst: Vec::new(),
            props: Vec::new(),
            vertices_chunked: 0,
            edges_chunked: 0,
            chunks_since_barrier: 0,
            chunks_written: 0,
            skip_vertices: 0,
            skip_edges: 0,
            kill_after_chunks: None,
            kill_aborts_process: false,
            stop: None,
        })
    }

    /// Resumes a killed run from the manifest in `dir`: validates the
    /// identity triple, truncates the partial store file at `path` back to
    /// the last durable barrier (verifying the final durable chunk's CRC),
    /// and arranges for the re-pushed durable prefix to be dropped.
    pub fn resume(
        path: impl AsRef<Path>,
        dir: impl AsRef<Path>,
        identity: CheckpointIdentity,
    ) -> Result<Self, StoreError> {
        let m = CheckpointManifest::load(&dir)?;
        if m.identity != identity {
            return Err(StoreError::Mismatch(format!(
                "checkpoint belongs to a different run: manifest has {}/config {:#x}/seed {}, \
                 resume requested {}/config {:#x}/seed {}",
                m.identity.generator,
                m.identity.config_hash,
                m.identity.master_seed,
                identity.generator,
                identity.config_hash,
                identity.master_seed
            )));
        }
        let mut file = OpenOptions::new().read(true).write(true).open(&path)?;
        let file_len = file.metadata()?.len();
        if file_len < m.bytes_durable {
            return Err(StoreError::Mismatch(format!(
                "store file {} is shorter ({file_len} B) than the manifest's durable prefix \
                 ({} B)",
                path.as_ref().display(),
                m.bytes_durable
            )));
        }
        let mut header = [0u8; 8];
        file.read_exact(&mut header)?;
        if header != FILE_MAGIC {
            return Err(corrupt(0, "resume target is not a csb store file"));
        }
        // The manifest's own CRC covers the index; re-check the last durable
        // chunk's payload so a torn write inside the durable prefix is caught
        // now, not at read time after hours of appended generation.
        if let Some(last) = m.chunks.last() {
            let _span = csb_obs::span_cat("checkpoint.validate", "store");
            file.seek(SeekFrom::Start(last.offset + 28))?;
            let mut payload = vec![0u8; last.payload_len as usize];
            file.read_exact(&mut payload)?;
            if crc32(&payload) != last.crc32 {
                return Err(corrupt(last.offset, "last durable chunk fails its CRC on resume"));
            }
        }
        file.set_len(m.bytes_durable)?;
        file.seek(SeekFrom::Start(m.bytes_durable))?;
        let writer =
            StoreWriter::resume_at(BufWriter::new(file), FORMAT_VERSION, m.bytes_durable, m.chunks);
        csb_obs::counter_add("checkpoint.resumes", 1);
        Ok(CheckpointedGraphSink {
            writer,
            dir: dir.as_ref().to_path_buf(),
            identity,
            chunk_records: (m.chunk_records as usize).max(1),
            checkpoint_every: DEFAULT_CHECKPOINT_EVERY,
            vertices: Vec::new(),
            src: Vec::new(),
            dst: Vec::new(),
            props: Vec::new(),
            vertices_chunked: m.vertices_durable,
            edges_chunked: m.edges_durable,
            chunks_since_barrier: 0,
            chunks_written: 0,
            skip_vertices: m.vertices_durable,
            skip_edges: m.edges_durable,
            kill_after_chunks: None,
            kill_aborts_process: false,
            stop: None,
        })
    }

    /// Chunks between barriers (at least 1).
    pub fn with_checkpoint_every(mut self, chunks: u64) -> Self {
        self.checkpoint_every = chunks.max(1);
        self
    }

    /// Overrides the chunk size on a *fresh* run (tests use small chunks).
    /// A resumed sink keeps the manifest's chunk size — changing it would
    /// break byte-identity with the uninterrupted run.
    pub fn with_chunk_records(mut self, records: usize) -> Self {
        if self.chunks_written == 0 && self.skip_vertices == 0 && self.skip_edges == 0 {
            self.chunk_records = records.max(1);
        }
        self
    }

    /// Fault-injection hook: the sink refuses to write chunk `n + 1`. With
    /// `abort_process` the whole process dies via [`std::process::abort`]
    /// (SIGKILL semantics: no flush, no destructors — what the CI
    /// kill-and-resume smoke uses); otherwise a
    /// [`CsbError::Transient`](crate::error::CsbError::Transient) surfaces
    /// so in-process tests can observe the "crash".
    pub fn with_kill_after_chunks(mut self, n: u64, abort_process: bool) -> Self {
        self.kill_after_chunks = Some(n);
        self.kill_aborts_process = abort_process;
        self
    }

    /// Cooperative preemption hook: once `flag` is set, the next chunk
    /// boundary takes a checkpoint barrier (making everything written so far
    /// durable — file bytes are untouched, so resume stays byte-identical)
    /// and surfaces [`CsbError::Transient`](crate::error::CsbError::Transient)
    /// to the caller, which requeues the job for later resume.
    pub fn with_stop_flag(mut self, flag: Arc<AtomicBool>) -> Self {
        self.stop = Some(flag);
        self
    }

    fn write_chunk(
        &mut self,
        kind: ChunkKind,
        records: u64,
        payload: &[u8],
    ) -> Result<(), StoreError> {
        if self.stop.as_ref().is_some_and(|f| f.load(Ordering::Relaxed)) {
            self.barrier()?;
            return Err(StoreError::Transient(
                "preempted: stop flag set at chunk boundary (checkpoint barrier taken)".into(),
            ));
        }
        if let Some(n) = self.kill_after_chunks {
            if self.chunks_written >= n {
                if self.kill_aborts_process {
                    std::process::abort();
                }
                return Err(StoreError::Transient(format!(
                    "injected kill after {n} chunks (checkpoint fault hook)"
                )));
            }
        }
        self.writer.write_chunk(kind, records, payload)?;
        self.chunks_written += 1;
        match kind {
            ChunkKind::Vertex => self.vertices_chunked += records,
            _ => self.edges_chunked += records,
        }
        self.chunks_since_barrier += 1;
        if self.chunks_since_barrier >= self.checkpoint_every {
            self.barrier()?;
        }
        Ok(())
    }

    /// Makes everything written so far durable and records it: flush, fsync
    /// the store file, then atomically replace the manifest.
    fn barrier(&mut self) -> Result<(), StoreError> {
        let _span = csb_obs::span_cat("checkpoint.write", "store");
        self.writer.flush()?;
        self.writer.get_mut().get_ref().sync_data()?;
        let manifest = CheckpointManifest {
            identity: self.identity.clone(),
            chunk_records: self.chunk_records as u64,
            vertices_durable: self.vertices_chunked,
            edges_durable: self.edges_chunked,
            bytes_durable: self.writer.bytes_written(),
            chunks: self.writer.chunks().to_vec(),
        };
        manifest.save(&self.dir)?;
        self.chunks_since_barrier = 0;
        csb_obs::counter_add("checkpoint.barriers", 1);
        csb_obs::counter_add("checkpoint.bytes_durable", manifest.bytes_durable);
        csb_obs::status::note_barrier(manifest.chunks.len() as u64);
        Ok(())
    }

    fn flush_full_vertex_chunks(&mut self) -> Result<(), StoreError> {
        while self.vertices.len() >= self.chunk_records {
            let rest = self.vertices.split_off(self.chunk_records);
            let chunk = std::mem::replace(&mut self.vertices, rest);
            let payload: Vec<u8> = chunk.iter().flat_map(|ip| ip.to_le_bytes()).collect();
            self.write_chunk(ChunkKind::Vertex, chunk.len() as u64, &payload)?;
        }
        Ok(())
    }

    fn flush_full_edge_chunks(&mut self) -> Result<(), StoreError> {
        while self.src.len() >= self.chunk_records {
            let rest_src = self.src.split_off(self.chunk_records);
            let rest_dst = self.dst.split_off(self.chunk_records);
            let rest_props = self.props.split_off(self.chunk_records);
            let src = std::mem::replace(&mut self.src, rest_src);
            let dst = std::mem::replace(&mut self.dst, rest_dst);
            let props = std::mem::replace(&mut self.props, rest_props);
            let payload = encode_edge_chunk(&src, &dst, &props);
            self.write_chunk(ChunkKind::Edge, src.len() as u64, &payload)?;
        }
        Ok(())
    }

    /// Flushes the partial buffers, seals the file, and removes the manifest
    /// (the run completed; there is nothing left to resume).
    pub fn finish(mut self) -> Result<(), StoreError> {
        if !self.vertices.is_empty() {
            let payload: Vec<u8> = self.vertices.iter().flat_map(|ip| ip.to_le_bytes()).collect();
            let n = self.vertices.len() as u64;
            self.vertices.clear();
            self.write_chunk(ChunkKind::Vertex, n, &payload)?;
        }
        if !self.src.is_empty() {
            let payload = encode_edge_chunk(&self.src, &self.dst, &self.props);
            let n = self.src.len() as u64;
            self.src.clear();
            self.dst.clear();
            self.props.clear();
            self.write_chunk(ChunkKind::Edge, n, &payload)?;
        }
        self.writer.finish()?;
        std::fs::remove_file(CheckpointManifest::path_in(&self.dir)).ok();
        Ok(())
    }
}

impl EdgeSink for CheckpointedGraphSink {
    fn push_vertices(&mut self, ips: &[u32]) -> Result<(), StoreError> {
        let skip = (self.skip_vertices as usize).min(ips.len());
        self.skip_vertices -= skip as u64;
        self.vertices.extend_from_slice(&ips[skip..]);
        self.flush_full_vertex_chunks()
    }

    fn push_edges(
        &mut self,
        src: &[u32],
        dst: &[u32],
        props: &[EdgeProperties],
    ) -> Result<(), StoreError> {
        assert_eq!(src.len(), dst.len(), "src/dst length mismatch");
        assert_eq!(src.len(), props.len(), "props length mismatch");
        let skip = (self.skip_edges as usize).min(src.len());
        self.skip_edges -= skip as u64;
        self.src.extend_from_slice(&src[skip..]);
        self.dst.extend_from_slice(&dst[skip..]);
        self.props.extend_from_slice(&props[skip..]);
        self.flush_full_edge_chunks()
    }

    fn resume_skip_vertices(&self) -> u64 {
        self.skip_vertices
    }

    fn resume_skip_edges(&self) -> u64 {
        self.skip_edges
    }

    fn note_skipped_edges(&mut self, n: u64) {
        assert!(
            n <= self.skip_edges,
            "producer skipped {n} edges but only {} are durable",
            self.skip_edges
        );
        self.skip_edges -= n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::CsbError;
    use crate::sink::GraphStoreSink;
    use csb_net::flow::{Protocol, TcpConnState};

    fn temp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("csb-ckpt-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&d).expect("mkdir");
        d
    }

    fn prop(i: u64) -> EdgeProperties {
        EdgeProperties {
            protocol: Protocol::from_number([6, 17, 1][(i % 3) as usize]).unwrap(),
            src_port: (i % 60_000) as u16,
            dst_port: (i % 1024) as u16,
            duration_ms: i * 3,
            out_bytes: i * 100,
            in_bytes: i * 41,
            out_pkts: i,
            in_pkts: i / 2,
            state: TcpConnState::from_code(i % 4).unwrap(),
        }
    }

    fn identity() -> CheckpointIdentity {
        CheckpointIdentity { generator: "pgpba".into(), config_hash: 0xC0FFEE, master_seed: 42 }
    }

    /// Pushes `n_vertices` + `n_edges` deterministic records into `sink`,
    /// starting the edge stream at `from_edge`.
    fn push_records<S: EdgeSink>(sink: &mut S, n_vertices: u32, n_edges: u64, from_edge: u64) {
        let ips: Vec<u32> = (0..n_vertices).map(|i| 0xC0A8_0000 + i).collect();
        sink.push_vertices(&ips).expect("vertices");
        let mut e = from_edge;
        while e < n_edges {
            let batch = 97.min(n_edges - e);
            let src: Vec<u32> = (e..e + batch).map(|i| (i % n_vertices as u64) as u32).collect();
            let dst: Vec<u32> =
                (e..e + batch).map(|i| ((i * 7 + 1) % n_vertices as u64) as u32).collect();
            let props: Vec<EdgeProperties> = (e..e + batch).map(prop).collect();
            sink.push_edges(&src, &dst, &props).expect("edges");
            e += batch;
        }
    }

    #[test]
    fn manifest_round_trips() {
        let m = CheckpointManifest {
            identity: identity(),
            chunk_records: 512,
            vertices_durable: 100,
            edges_durable: 2048,
            bytes_durable: 9000,
            chunks: vec![
                ChunkEntry {
                    kind: ChunkKind::Vertex,
                    records: 100,
                    offset: 16,
                    payload_len: 400,
                    crc32: 7,
                    columns: vec![],
                },
                ChunkEntry {
                    kind: ChunkKind::Edge,
                    records: 512,
                    offset: 444,
                    payload_len: 27_648,
                    crc32: 9,
                    columns: vec![],
                },
            ],
        };
        let dir = temp_dir("manifest");
        m.save(&dir).expect("save");
        assert!(CheckpointManifest::exists(&dir));
        let back = CheckpointManifest::load(&dir).expect("load");
        assert_eq!(m, back);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupted_manifest_is_rejected() {
        let m = CheckpointManifest {
            identity: identity(),
            chunk_records: 64,
            vertices_durable: 0,
            edges_durable: 0,
            bytes_durable: 16,
            chunks: vec![],
        };
        let dir = temp_dir("corrupt");
        m.save(&dir).expect("save");
        let path = CheckpointManifest::path_in(&dir);
        let mut bytes = std::fs::read(&path).expect("read");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).expect("write");
        let err = CheckpointManifest::load(&dir).expect_err("corrupt");
        assert!(matches!(err, CsbError::Corrupt { .. }), "got {err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_manifest_is_a_mismatch_not_corruption() {
        let dir = temp_dir("missing");
        let err = CheckpointManifest::load(&dir).expect_err("missing");
        assert!(matches!(err, CsbError::Mismatch(_)), "got {err}");
        assert!(!err.is_transient());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn uninterrupted_checkpointed_run_matches_plain_sink_bytes() {
        let dir = temp_dir("clean");
        let (n_v, n_e) = (300u32, 5000u64);

        let mut plain = GraphStoreSink::new(Vec::new()).expect("plain").with_chunk_records(512);
        push_records(&mut plain, n_v, n_e, 0);
        let want = plain.finish().expect("finish plain");

        let store = dir.join("g.csbstore");
        let mut ckpt = CheckpointedGraphSink::create(&store, &dir, identity())
            .expect("create")
            .with_chunk_records(512)
            .with_checkpoint_every(1);
        push_records(&mut ckpt, n_v, n_e, 0);
        ckpt.finish().expect("finish ckpt");

        assert_eq!(std::fs::read(&store).expect("read"), want, "checkpointing changed the bytes");
        assert!(!CheckpointManifest::exists(&dir), "finish must remove the manifest");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn killed_run_resumes_to_identical_bytes() {
        let dir = temp_dir("resume");
        let (n_v, n_e) = (300u32, 9000u64);

        let mut plain = GraphStoreSink::new(Vec::new()).expect("plain").with_chunk_records(512);
        push_records(&mut plain, n_v, n_e, 0);
        let want = plain.finish().expect("finish plain");

        // Killed run: the fault hook stops the sink after 5 chunks; barriers
        // fired every chunk, so the manifest covers the durable prefix.
        let store = dir.join("g.csbstore");
        let mut killed = CheckpointedGraphSink::create(&store, &dir, identity())
            .expect("create")
            .with_chunk_records(512)
            .with_checkpoint_every(1)
            .with_kill_after_chunks(5, false);
        let ips: Vec<u32> = (0..n_v).map(|i| 0xC0A8_0000 + i).collect();
        killed.push_vertices(&ips).expect("vertices fit in buffers");
        let mut e = 0u64;
        let err = loop {
            let batch = 97.min(n_e - e);
            let src: Vec<u32> = (e..e + batch).map(|i| (i % n_v as u64) as u32).collect();
            let dst: Vec<u32> = (e..e + batch).map(|i| ((i * 7 + 1) % n_v as u64) as u32).collect();
            let props: Vec<EdgeProperties> = (e..e + batch).map(prop).collect();
            match killed.push_edges(&src, &dst, &props) {
                Ok(()) => e += batch,
                Err(err) => break err,
            }
        };
        assert!(err.is_transient(), "injected kill must classify as transient: {err}");
        drop(killed);
        // Simulate the torn tail a SIGKILL can leave past the last barrier.
        let mut f = OpenOptions::new().append(true).open(&store).expect("open");
        f.write_all(&[0xDE, 0xAD, 0xBE, 0xEF]).expect("tear");
        drop(f);

        // Resume: durable prefix is kept, the rest of the stream re-pushed.
        let m = CheckpointManifest::load(&dir).expect("manifest");
        assert_eq!(m.chunk_records, 512);
        let mut resumed = CheckpointedGraphSink::resume(&store, &dir, identity()).expect("resume");
        assert_eq!(resumed.resume_skip_vertices(), m.vertices_durable);
        assert_eq!(resumed.resume_skip_edges(), m.edges_durable);
        push_records(&mut resumed, n_v, n_e, 0);
        resumed.finish().expect("finish resumed");

        assert_eq!(std::fs::read(&store).expect("read"), want, "resume is not byte-identical");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_skipping_durable_whole_chunks_is_identical_too() {
        // The generator-side optimization: skip re-pushing edges below the
        // last durable chunk boundary after telling the sink.
        let dir = temp_dir("skip");
        let (n_v, n_e) = (200u32, 6000u64);

        let mut plain = GraphStoreSink::new(Vec::new()).expect("plain").with_chunk_records(256);
        push_records(&mut plain, n_v, n_e, 0);
        let want = plain.finish().expect("finish plain");

        let store = dir.join("g.csbstore");
        let mut killed = CheckpointedGraphSink::create(&store, &dir, identity())
            .expect("create")
            .with_chunk_records(256)
            .with_checkpoint_every(2)
            .with_kill_after_chunks(7, false);
        let ips: Vec<u32> = (0..n_v).map(|i| 0xC0A8_0000 + i).collect();
        killed.push_vertices(&ips).expect("vertices");
        let mut e = 0u64;
        while e < n_e {
            let batch = 97.min(n_e - e);
            let src: Vec<u32> = (e..e + batch).map(|i| (i % n_v as u64) as u32).collect();
            let dst: Vec<u32> = (e..e + batch).map(|i| ((i * 7 + 1) % n_v as u64) as u32).collect();
            let props: Vec<EdgeProperties> = (e..e + batch).map(prop).collect();
            if killed.push_edges(&src, &dst, &props).is_err() {
                break;
            }
            e += batch;
        }
        drop(killed);

        let mut resumed = CheckpointedGraphSink::resume(&store, &dir, identity()).expect("resume");
        let durable = resumed.resume_skip_edges();
        assert!(durable > 0, "kill must land after at least one barrier");
        // Skip whole durable batches of 100; re-push from the boundary.
        let boundary = durable / 100 * 100;
        resumed.note_skipped_edges(boundary);
        resumed.push_vertices(&ips).expect("vertices");
        let mut e = boundary;
        while e < n_e {
            let batch = 100.min(n_e - e);
            let src: Vec<u32> = (e..e + batch).map(|i| (i % n_v as u64) as u32).collect();
            let dst: Vec<u32> = (e..e + batch).map(|i| ((i * 7 + 1) % n_v as u64) as u32).collect();
            let props: Vec<EdgeProperties> = (e..e + batch).map(prop).collect();
            resumed.push_edges(&src, &dst, &props).expect("push");
            e += batch;
        }
        resumed.finish().expect("finish");
        assert_eq!(std::fs::read(&store).expect("read"), want);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_rejects_wrong_identity() {
        let dir = temp_dir("wrongid");
        let store = dir.join("g.csbstore");
        let mut sink = CheckpointedGraphSink::create(&store, &dir, identity())
            .expect("create")
            .with_chunk_records(64)
            .with_checkpoint_every(1);
        push_records(&mut sink, 50, 500, 0);
        drop(sink); // killed without finish — manifest stays

        for wrong in [
            CheckpointIdentity { generator: "pgsk".into(), ..identity() },
            CheckpointIdentity { config_hash: 1, ..identity() },
            CheckpointIdentity { master_seed: 43, ..identity() },
        ] {
            let err =
                CheckpointedGraphSink::resume(&store, &dir, wrong).expect_err("identity mismatch");
            assert!(matches!(err, CsbError::Mismatch(_)), "got {err}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_detects_corrupt_durable_chunk() {
        let dir = temp_dir("tornchunk");
        let store = dir.join("g.csbstore");
        let mut sink = CheckpointedGraphSink::create(&store, &dir, identity())
            .expect("create")
            .with_chunk_records(64)
            .with_checkpoint_every(1);
        push_records(&mut sink, 50, 500, 0);
        drop(sink);

        let m = CheckpointManifest::load(&dir).expect("manifest");
        let last = m.chunks.last().expect("chunks").clone();
        let mut f = OpenOptions::new().write(true).open(&store).expect("open");
        f.seek(SeekFrom::Start(last.offset + 28 + last.payload_len / 2)).expect("seek");
        f.write_all(&[0xFF]).expect("flip");
        drop(f);

        let err = CheckpointedGraphSink::resume(&store, &dir, identity()).expect_err("torn");
        assert!(matches!(err, CsbError::Corrupt { .. }), "got {err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
