//! Out-of-core scanning: serves a sealed graph store file to the streaming
//! kernels of `csb_graph::ooc` without ever materializing the graph.
//!
//! [`StoreScan`] implements [`EdgeScan`] over a [`StoreReader`], projecting
//! the `SRC`+`DST` columns of each edge chunk with a **single** disk read
//! per chunk per pass via [`StoreReader::fetch_columns`], and O(chunk)
//! decoded at a time. Because chunk iteration follows the footer index, the
//! edge stream replays the exact record order of
//! [`StoreReader::load_graph`], which is what makes
//! `pagerank_ooc(StoreScan)` bit-identical to `pagerank(load_graph())`.
//!
//! Iterative kernels (PageRank) re-scan the same edge stream dozens of
//! times. The scan keeps each chunk's *decoded, narrowed* endpoint columns
//! in a budgeted in-memory cache ([`StoreScan::with_cache_budget`]): a pass
//! whose chunks are resident reads zero disk bytes and runs zero codec
//! work — the kernel callback borrows the cached `u32` slices directly, so
//! warm passes cost what an in-memory scan costs (8 bytes per edge of
//! cache). The `ooc.bytes_read` counter therefore counts **bytes fetched
//! from disk**, not bytes delivered to the kernel; the resident cache size
//! is reported in the `ooc.cache_bytes` gauge.
//!
//! Endpoints are validated against the vertex count as each chunk is
//! decoded, so corrupt files surface as [`CsbError::Corrupt`] instead of a
//! kernel panic.
//!
//! [`CsbError::Corrupt`]: crate::error::CsbError

use crate::format::{corrupt, ChunkKind, FileKind, StoreError};
use crate::read::StoreReader;
use csb_graph::ooc::EdgeScan;
use std::fs::File;
use std::io::{BufReader, Read, Seek};
use std::path::Path;

/// Default endpoint cache budget: 256 MiB of decoded endpoints (8 bytes per
/// edge, so ~32M edges resident). Pass 0 to
/// [`StoreScan::with_cache_budget`] for pure streaming.
pub const DEFAULT_CACHE_BUDGET: u64 = 256 << 20;

/// Decoded, narrowed `(src, dst)` endpoint columns of one edge chunk.
type Endpoints = (Vec<u32>, Vec<u32>);

/// [`EdgeScan`] over a sealed graph store file.
#[derive(Debug)]
pub struct StoreScan<R: Read + Seek> {
    reader: StoreReader<R>,
    vertex_count: usize,
    /// Footer indices of the edge chunks, in file order.
    edge_chunks: Vec<usize>,
    max_chunk_records: u64,
    /// Cached decoded `(src, dst)` endpoint columns, indexed like
    /// `edge_chunks`.
    cache: Vec<Option<Endpoints>>,
    cache_budget: u64,
    cache_used: u64,
}

impl StoreScan<BufReader<File>> {
    /// Opens the graph store at `path` for scanning.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        StoreScan::new(StoreReader::open(path)?)
    }
}

impl<R: Read + Seek> StoreScan<R> {
    /// Wraps an already-open reader. Fails unless the file is a graph store.
    pub fn new(reader: StoreReader<R>) -> Result<Self, StoreError> {
        if reader.kind() != FileKind::Graph {
            return Err(corrupt(12, "not a graph store"));
        }
        let vertex_count = reader.record_count(ChunkKind::Vertex) as usize;
        let mut edge_chunks = Vec::new();
        let mut max_chunk_records = 0;
        for (idx, entry) in reader.chunks().iter().enumerate() {
            match entry.kind {
                ChunkKind::Edge => {
                    edge_chunks.push(idx);
                    max_chunk_records = max_chunk_records.max(entry.records);
                }
                ChunkKind::Vertex => {}
                ChunkKind::Flow | ChunkKind::LabeledFlow => {
                    return Err(corrupt(entry.offset, "flow chunk in a graph store"))
                }
            }
        }
        let cache = (0..edge_chunks.len()).map(|_| None).collect();
        Ok(StoreScan {
            reader,
            vertex_count,
            edge_chunks,
            max_chunk_records,
            cache,
            cache_budget: DEFAULT_CACHE_BUDGET,
            cache_used: 0,
        })
    }

    /// Caps the decoded-endpoint cache at `bytes` (0 disables caching;
    /// every pass then re-reads from disk and re-decodes).
    pub fn with_cache_budget(mut self, bytes: u64) -> Self {
        self.cache_budget = bytes;
        if bytes == 0 {
            self.cache = (0..self.edge_chunks.len()).map(|_| None).collect();
            self.cache_used = 0;
            csb_obs::gauge_set("ooc.cache_bytes", 0);
        }
        self
    }

    /// The wrapped reader (e.g. to load vertex attributes separately).
    pub fn into_reader(self) -> StoreReader<R> {
        self.reader
    }

    /// Edge chunks in this store.
    pub fn edge_chunk_count(&self) -> usize {
        self.edge_chunks.len()
    }

    /// Largest edge chunk, in records.
    pub fn max_chunk_records(&self) -> u64 {
        self.max_chunk_records
    }

    /// Overrides the vertex-id range endpoints are checked against. The
    /// sharded scan puts all vertex chunks on shard 0, so the other shards'
    /// scans must borrow its count.
    pub(crate) fn set_vertex_range(&mut self, vertices: usize) {
        self.vertex_count = vertices;
    }

    /// Fetches and decodes edge chunk `i` (index into the edge chunk list,
    /// not the footer) unless it is already cache-resident. Returns the
    /// decoded pair when it did NOT fit the cache budget (the transient
    /// case); returns `None` when the chunk is now resident in
    /// `self.cache[i]`. One disk read per call on a miss, counted into
    /// `ooc.bytes_read`.
    fn load_chunk(&mut self, i: usize) -> Result<Option<Endpoints>, StoreError> {
        if self.cache[i].is_some() {
            return Ok(None);
        }
        let idx = self.edge_chunks[i];
        let offset = self.reader.chunks()[idx].offset;
        let fetched = self.reader.fetch_columns(idx, &["SRC", "DST"])?;
        csb_obs::counter_add("ooc.bytes_read", fetched.stored_len() as u64);
        let src = narrow_endpoints(fetched.decode(0)?, self.vertex_count, offset)?;
        let dst = narrow_endpoints(fetched.decode(1)?, self.vertex_count, offset)?;
        let cost = 4 * (src.len() + dst.len()) as u64;
        if self.cache_used + cost <= self.cache_budget {
            self.cache_used += cost;
            csb_obs::gauge_set("ooc.cache_bytes", self.cache_used as i64);
            self.cache[i] = Some((src, dst));
            Ok(None)
        } else {
            Ok(Some((src, dst)))
        }
    }

    /// Runs `f` over the endpoint columns of edge chunk `i`, decoded,
    /// narrowed back to the `u32` vertex ids the kernels consume, and
    /// range-checked against the vertex count. A cache-resident chunk is
    /// borrowed in place — zero reads, zero decode, zero copies.
    pub fn with_endpoints(
        &mut self,
        i: usize,
        f: &mut dyn FnMut(&[u32], &[u32]),
    ) -> Result<(), StoreError> {
        match self.load_chunk(i)? {
            Some((src, dst)) => f(&src, &dst),
            None => {
                let (src, dst) = self.cache[i].as_ref().expect("resident");
                f(src, dst);
            }
        }
        Ok(())
    }

    /// Owned-copy variant of [`StoreScan::with_endpoints`] (cache-resident
    /// chunks are cloned); the streaming kernels use the borrowing path.
    pub fn endpoint_chunk(&mut self, i: usize) -> Result<(Vec<u32>, Vec<u32>), StoreError> {
        match self.load_chunk(i)? {
            Some(pair) => Ok(pair),
            None => Ok(self.cache[i].clone().expect("resident")),
        }
    }
}

fn narrow_endpoints(wide: Vec<u64>, vertices: usize, offset: u64) -> Result<Vec<u32>, StoreError> {
    let n = vertices as u64;
    wide.into_iter()
        .map(|v| {
            if v < n {
                Ok(v as u32)
            } else {
                Err(corrupt(offset, format!("edge endpoint {v} out of vertex range {n}")))
            }
        })
        .collect()
}

impl<R: Read + Seek> EdgeScan for StoreScan<R> {
    type Error = StoreError;

    fn vertex_count(&mut self) -> Result<usize, StoreError> {
        Ok(self.vertex_count)
    }

    fn edge_count(&mut self) -> Result<u64, StoreError> {
        Ok(self.reader.record_count(ChunkKind::Edge))
    }

    fn scan_edges(&mut self, f: &mut dyn FnMut(&[u32], &[u32])) -> Result<(), StoreError> {
        for i in 0..self.edge_chunks.len() {
            self.with_endpoints(i, f)?;
        }
        Ok(())
    }

    fn scan_sources(&mut self, f: &mut dyn FnMut(&[u32])) -> Result<(), StoreError> {
        for i in 0..self.edge_chunks.len() {
            self.with_endpoints(i, &mut |src, _| f(src))?;
        }
        Ok(())
    }

    fn scan_targets(&mut self, f: &mut dyn FnMut(&[u32])) -> Result<(), StoreError> {
        for i in 0..self.edge_chunks.len() {
            self.with_endpoints(i, &mut |_, dst| f(dst))?;
        }
        Ok(())
    }

    /// Per-batch buffer bound: two endpoint columns, each transiently held
    /// widened (`u64`) and narrowed (`u32`), over the largest chunk. The
    /// endpoint cache is bounded separately by its own budget and is
    /// excluded here — it is a reuse buffer, not per-batch scratch.
    fn scratch_bytes(&self) -> u64 {
        2 * (8 + 4) * self.max_chunk_records
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{push_graph, GraphStoreSink};
    use csb_graph::algo::pagerank::{pagerank, PageRankConfig};
    use csb_graph::ooc::{degree_counts_ooc, pagerank_ooc, GraphScan};
    use csb_graph::{EdgeProperties, NetflowGraph, VertexId};
    use std::io::Cursor;

    fn sample_graph(n: u32, edges: &[(u32, u32)]) -> NetflowGraph {
        let mut g = NetflowGraph::new();
        let vs: Vec<VertexId> = (0..n).map(|i| g.add_vertex(0x0a00_0000 | i)).collect();
        for &(s, d) in edges {
            g.add_edge(vs[s as usize], vs[d as usize], EdgeProperties::placeholder());
        }
        g
    }

    fn store_bytes(g: &NetflowGraph, chunk_records: usize) -> Vec<u8> {
        let mut sink =
            GraphStoreSink::new(Vec::new()).expect("sink").with_chunk_records(chunk_records);
        push_graph(&mut sink, g).expect("push");
        sink.finish().expect("seal")
    }

    fn scan_of(bytes: Vec<u8>) -> StoreScan<Cursor<Vec<u8>>> {
        StoreScan::new(StoreReader::new(Cursor::new(bytes)).expect("reader")).expect("scan")
    }

    #[test]
    fn store_scan_matches_graph_scan() {
        let g = sample_graph(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 3), (0, 5), (0, 5)]);
        for chunk in [1usize, 2, 3, 100] {
            let mut scan = scan_of(store_bytes(&g, chunk));
            assert_eq!(scan.vertex_count().unwrap(), 6);
            assert_eq!(scan.edge_count().unwrap(), 7);
            let from_store = degree_counts_ooc(&mut scan).unwrap();
            let from_mem = degree_counts_ooc(&mut GraphScan::of(&g)).unwrap();
            assert_eq!(from_store, from_mem, "chunk_records {chunk}");
        }
    }

    #[test]
    fn store_pagerank_bit_identical_to_in_memory() {
        let g = sample_graph(
            9,
            &[(0, 1), (0, 1), (1, 2), (2, 3), (3, 0), (4, 0), (5, 6), (7, 7), (8, 0), (0, 8)],
        );
        let cfg = PageRankConfig::default();
        let mem = pagerank(&g, &cfg);
        for chunk in [1usize, 3, 4, 64] {
            let mut scan = scan_of(store_bytes(&g, chunk));
            let ooc = pagerank_ooc(&mut scan, &cfg).unwrap();
            for (a, b) in mem.iter().zip(ooc.iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "chunk_records {chunk}");
            }
        }
    }

    #[test]
    fn out_of_range_endpoint_is_corrupt_not_panic() {
        // Build a valid 2-vertex store, then shrink the vertex set by
        // rebuilding the scan over a store whose edges point past it.
        let g = sample_graph(3, &[(0, 2), (2, 1)]);
        let bytes = store_bytes(&g, 100);
        let reader = StoreReader::new(Cursor::new(bytes)).expect("reader");
        let mut scan = StoreScan::new(reader).expect("scan");
        scan.vertex_count = 2; // pretend the store only declared 2 vertices
        let err = pagerank_ooc(&mut scan, &PageRankConfig::default());
        assert!(err.is_err(), "expected corrupt error");
    }

    #[test]
    fn flow_store_is_rejected() {
        use crate::sink::{FlowSink, FlowStoreSink};
        let mut sink = FlowStoreSink::new(Vec::new()).expect("sink");
        sink.push_flows(&[]).expect("push");
        let bytes = sink.finish().expect("seal");
        let reader = StoreReader::new(Cursor::new(bytes)).expect("reader");
        assert!(StoreScan::new(reader).is_err());
    }
}
