//! Out-of-core scanning: serves a sealed graph store file to the streaming
//! kernels of `csb_graph::ooc` without ever materializing the graph.
//!
//! [`StoreScan`] implements [`EdgeScan`] over a [`StoreReader`], projecting
//! only the `SRC`/`DST` columns chunk by chunk via
//! [`StoreReader::read_column`] — a fraction of each edge chunk's bytes (8 of
//! 46 per record), and O(chunk) resident at a time. Because chunk iteration
//! follows the footer index, the edge stream replays the exact record order
//! of [`StoreReader::load_graph`], which is what makes
//! `pagerank_ooc(StoreScan) `bit-identical to `pagerank(load_graph())`.
//!
//! Endpoints are validated against the vertex count as each chunk is
//! decoded, so corrupt files surface as [`CsbError::Corrupt`] instead of a
//! kernel panic. Column bytes fed to the kernels are counted into the
//! `ooc.bytes_read` counter (on top of the reader's own
//! `store.bytes_read`).
//!
//! [`CsbError::Corrupt`]: crate::error::CsbError

use crate::format::{corrupt, ChunkKind, FileKind, StoreError};
use crate::read::StoreReader;
use csb_graph::ooc::EdgeScan;
use std::fs::File;
use std::io::{BufReader, Read, Seek};
use std::path::Path;

/// [`EdgeScan`] over a sealed graph store file.
#[derive(Debug)]
pub struct StoreScan<R: Read + Seek> {
    reader: StoreReader<R>,
    vertex_count: usize,
    /// Footer indices of the edge chunks, in file order.
    edge_chunks: Vec<usize>,
    max_chunk_records: u64,
}

impl StoreScan<BufReader<File>> {
    /// Opens the graph store at `path` for scanning.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        StoreScan::new(StoreReader::open(path)?)
    }
}

impl<R: Read + Seek> StoreScan<R> {
    /// Wraps an already-open reader. Fails unless the file is a graph store.
    pub fn new(reader: StoreReader<R>) -> Result<Self, StoreError> {
        if reader.kind() != FileKind::Graph {
            return Err(corrupt(12, "not a graph store"));
        }
        let vertex_count = reader.record_count(ChunkKind::Vertex) as usize;
        let mut edge_chunks = Vec::new();
        let mut max_chunk_records = 0;
        for (idx, entry) in reader.chunks().iter().enumerate() {
            match entry.kind {
                ChunkKind::Edge => {
                    edge_chunks.push(idx);
                    max_chunk_records = max_chunk_records.max(entry.records);
                }
                ChunkKind::Vertex => {}
                ChunkKind::Flow => {
                    return Err(corrupt(entry.offset, "flow chunk in a graph store"))
                }
            }
        }
        Ok(StoreScan { reader, vertex_count, edge_chunks, max_chunk_records })
    }

    /// The wrapped reader (e.g. to load vertex attributes separately).
    pub fn into_reader(self) -> StoreReader<R> {
        self.reader
    }

    /// Projects column `name` of edge chunk `idx`, narrowed back to the
    /// `u32` vertex ids the kernels consume and range-checked against the
    /// vertex count.
    fn endpoint_column(&mut self, idx: usize, name: &str) -> Result<Vec<u32>, StoreError> {
        let wide = self.reader.read_column(idx, name)?;
        csb_obs::counter_add("ooc.bytes_read", 4 * wide.len() as u64);
        let n = self.vertex_count as u64;
        let offset = self.reader.chunks()[idx].offset;
        wide.into_iter()
            .map(|v| {
                if v < n {
                    Ok(v as u32)
                } else {
                    Err(corrupt(offset, format!("edge endpoint {v} out of vertex range {n}")))
                }
            })
            .collect()
    }
}

impl<R: Read + Seek> EdgeScan for StoreScan<R> {
    type Error = StoreError;

    fn vertex_count(&mut self) -> Result<usize, StoreError> {
        Ok(self.vertex_count)
    }

    fn edge_count(&mut self) -> Result<u64, StoreError> {
        Ok(self.reader.record_count(ChunkKind::Edge))
    }

    fn scan_edges(&mut self, f: &mut dyn FnMut(&[u32], &[u32])) -> Result<(), StoreError> {
        for i in 0..self.edge_chunks.len() {
            let idx = self.edge_chunks[i];
            let src = self.endpoint_column(idx, "SRC")?;
            let dst = self.endpoint_column(idx, "DST")?;
            f(&src, &dst);
        }
        Ok(())
    }

    fn scan_sources(&mut self, f: &mut dyn FnMut(&[u32])) -> Result<(), StoreError> {
        for i in 0..self.edge_chunks.len() {
            let idx = self.edge_chunks[i];
            let src = self.endpoint_column(idx, "SRC")?;
            f(&src);
        }
        Ok(())
    }

    fn scan_targets(&mut self, f: &mut dyn FnMut(&[u32])) -> Result<(), StoreError> {
        for i in 0..self.edge_chunks.len() {
            let idx = self.edge_chunks[i];
            let dst = self.endpoint_column(idx, "DST")?;
            f(&dst);
        }
        Ok(())
    }

    /// Per-batch buffer bound: two endpoint columns, each transiently held
    /// widened (`u64`) and narrowed (`u32`), over the largest chunk.
    fn scratch_bytes(&self) -> u64 {
        2 * (8 + 4) * self.max_chunk_records
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{push_graph, GraphStoreSink};
    use csb_graph::algo::pagerank::{pagerank, PageRankConfig};
    use csb_graph::ooc::{degree_counts_ooc, pagerank_ooc, GraphScan};
    use csb_graph::{EdgeProperties, NetflowGraph, VertexId};
    use std::io::Cursor;

    fn sample_graph(n: u32, edges: &[(u32, u32)]) -> NetflowGraph {
        let mut g = NetflowGraph::new();
        let vs: Vec<VertexId> = (0..n).map(|i| g.add_vertex(0x0a00_0000 | i)).collect();
        for &(s, d) in edges {
            g.add_edge(vs[s as usize], vs[d as usize], EdgeProperties::placeholder());
        }
        g
    }

    fn store_bytes(g: &NetflowGraph, chunk_records: usize) -> Vec<u8> {
        let mut sink =
            GraphStoreSink::new(Vec::new()).expect("sink").with_chunk_records(chunk_records);
        push_graph(&mut sink, g).expect("push");
        sink.finish().expect("seal")
    }

    fn scan_of(bytes: Vec<u8>) -> StoreScan<Cursor<Vec<u8>>> {
        StoreScan::new(StoreReader::new(Cursor::new(bytes)).expect("reader")).expect("scan")
    }

    #[test]
    fn store_scan_matches_graph_scan() {
        let g = sample_graph(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 3), (0, 5), (0, 5)]);
        for chunk in [1usize, 2, 3, 100] {
            let mut scan = scan_of(store_bytes(&g, chunk));
            assert_eq!(scan.vertex_count().unwrap(), 6);
            assert_eq!(scan.edge_count().unwrap(), 7);
            let from_store = degree_counts_ooc(&mut scan).unwrap();
            let from_mem = degree_counts_ooc(&mut GraphScan::of(&g)).unwrap();
            assert_eq!(from_store, from_mem, "chunk_records {chunk}");
        }
    }

    #[test]
    fn store_pagerank_bit_identical_to_in_memory() {
        let g = sample_graph(
            9,
            &[(0, 1), (0, 1), (1, 2), (2, 3), (3, 0), (4, 0), (5, 6), (7, 7), (8, 0), (0, 8)],
        );
        let cfg = PageRankConfig::default();
        let mem = pagerank(&g, &cfg);
        for chunk in [1usize, 3, 4, 64] {
            let mut scan = scan_of(store_bytes(&g, chunk));
            let ooc = pagerank_ooc(&mut scan, &cfg).unwrap();
            for (a, b) in mem.iter().zip(ooc.iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "chunk_records {chunk}");
            }
        }
    }

    #[test]
    fn out_of_range_endpoint_is_corrupt_not_panic() {
        // Build a valid 2-vertex store, then shrink the vertex set by
        // rebuilding the scan over a store whose edges point past it.
        let g = sample_graph(3, &[(0, 2), (2, 1)]);
        let bytes = store_bytes(&g, 100);
        let reader = StoreReader::new(Cursor::new(bytes)).expect("reader");
        let mut scan = StoreScan::new(reader).expect("scan");
        scan.vertex_count = 2; // pretend the store only declared 2 vertices
        let err = pagerank_ooc(&mut scan, &PageRankConfig::default());
        assert!(err.is_err(), "expected corrupt error");
    }

    #[test]
    fn flow_store_is_rejected() {
        use crate::sink::{FlowSink, FlowStoreSink};
        let mut sink = FlowStoreSink::new(Vec::new()).expect("sink");
        sink.push_flows(&[]).expect("push");
        let bytes = sink.finish().expect("seal");
        let reader = StoreReader::new(Cursor::new(bytes)).expect("reader");
        assert!(StoreScan::new(reader).is_err());
    }
}
