//! # csb-store
//!
//! The storage layer of the suite: a chunked, columnar, little-endian binary
//! format for property graphs and NetFlow records, plus the spill files that
//! back `csb-engine`'s out-of-core shuffles.
//!
//! The paper's generators run on Spark precisely because their targets
//! (2x10^10 edges) exceed one node's memory; this crate is the moral
//! equivalent of Spark's saved RDDs and shuffle files for our single-node
//! reproduction. Three layers:
//!
//! * [`format`] / [`write`] / [`read`] — the chunk format: fixed-width
//!   columns per edge attribute, per-chunk CRC32, a trailing footer index,
//!   and a reader with single-column projection ([`read::StoreReader::
//!   read_column`]) and a bulk [`read::StoreReader::load_graph`] path through
//!   `PropertyGraph::from_parts`.
//! * [`sink`] — streaming [`sink::EdgeSink`] / [`sink::FlowSink`] writers so
//!   generators and the traffic simulator emit chunks as they produce
//!   records, never holding the full dataset.
//! * [`spill`] — bucketed spill files ([`spill::SpillWriter`] /
//!   [`spill::SpillFile`]) with a compact [`spill::SpillCodec`] record
//!   encoding, used by `csb-engine` when a shuffle exceeds its memory
//!   budget.
//! * [`checkpoint`] — fault tolerance: a CRC-validated
//!   [`checkpoint::CheckpointManifest`] recording the last durable chunk,
//!   and a [`checkpoint::CheckpointedGraphSink`] that emits barriers every N
//!   chunks so a killed generation run resumes byte-identically.
//! * [`error`] — [`error::CsbError`], the suite-wide error enum with a
//!   transient/fatal classification the retry layer keys off.
//!
//! Every store operation is instrumented with `csb-obs` spans
//! (`store.write_chunk`, `store.read_chunk`) and counters
//! (`store.bytes_written`, `store.bytes_read`, `store.chunks_written`,
//! `store.chunks_read`).
//!
//! ```
//! use csb_store::sink::{save_graph_to, MemoryGraphSink};
//! use csb_store::read::StoreReader;
//!
//! let g = csb_graph::NetflowGraph::new();
//! let bytes = save_graph_to(Vec::new(), &g).unwrap();
//! let h = StoreReader::new(std::io::Cursor::new(bytes)).unwrap().load_graph().unwrap();
//! assert_eq!(h.vertex_count(), 0);
//! ```

pub mod checkpoint;
pub mod codec;
pub mod crc32;
pub mod error;
pub mod format;
pub mod ooc;
pub mod read;
pub mod shard;
pub mod sink;
pub mod spill;
pub mod write;

pub use checkpoint::{CheckpointIdentity, CheckpointManifest, CheckpointedGraphSink};
pub use codec::{Codec, ColumnCodec, Compression};
pub use error::CsbError;
pub use format::{ChunkEntry, ChunkKind, Column, FileKind, StoreError};
pub use ooc::StoreScan;
pub use read::{ColumnBlock, EdgeBatch, StoreReader};
pub use shard::{
    load_graph_sharded, load_labeled_flows_sharded, open_scan, save_graph_sharded,
    save_labeled_flows_sharded, CheckpointedShardedGraphSink, ScanSource, ShardSetManifest,
    ShardedCheckpointManifest, ShardedGraphSink, ShardedScan,
};
pub use sink::{
    load_flows, load_graph, load_labeled_flows, push_graph, save_flows, save_graph, save_graph_to,
    save_labeled_flows, EdgeSink, FlowSink, FlowStoreSink, GraphStoreSink, LabeledFlowSink,
    LabeledFlowStoreSink, MemoryGraphSink,
};
pub use spill::{SpillCodec, SpillFile, SpillWriter};
pub use write::StoreWriter;
