//! The chunk writer: append chunks to any `Write` target, then seal the file
//! with the footer index and trailer. The current offset is tracked by
//! counting written bytes, so plain `Write` targets (sockets, pipes,
//! `Vec<u8>`) work — no `Seek` bound on the write path.

use crate::codec::ColumnCodec;
use crate::crc32::crc32;
use crate::format::{
    ChunkEntry, ChunkKind, FileKind, StoreError, CHUNK_MAGIC, FILE_MAGIC, FORMAT_VERSION,
    FORMAT_VERSION_V2, TRAILER_MAGIC,
};
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

/// Writes chunks to `W`, tracking offsets and the footer index.
#[derive(Debug)]
pub struct StoreWriter<W: Write> {
    w: W,
    version: u32,
    written: u64,
    chunks: Vec<ChunkEntry>,
}

impl StoreWriter<BufWriter<File>> {
    /// Creates a format-v1 store file at `path`.
    pub fn create(path: impl AsRef<Path>, kind: FileKind) -> Result<Self, StoreError> {
        StoreWriter::new(BufWriter::new(File::create(path)?), kind)
    }

    /// Creates a store file at `path` with the given format version.
    pub fn create_with(
        path: impl AsRef<Path>,
        kind: FileKind,
        version: u32,
    ) -> Result<Self, StoreError> {
        StoreWriter::new_with(BufWriter::new(File::create(path)?), kind, version)
    }
}

impl<W: Write> StoreWriter<W> {
    /// Starts a format-v1 store stream on `w` by writing the file header.
    pub fn new(w: W, kind: FileKind) -> Result<Self, StoreError> {
        StoreWriter::new_with(w, kind, FORMAT_VERSION)
    }

    /// Starts a store stream with the given format version ([`FORMAT_VERSION`]
    /// or [`FORMAT_VERSION_V2`]).
    pub fn new_with(mut w: W, kind: FileKind, version: u32) -> Result<Self, StoreError> {
        assert!(
            version == FORMAT_VERSION || version == FORMAT_VERSION_V2,
            "unknown store format version {version}"
        );
        w.write_all(&FILE_MAGIC)?;
        w.write_all(&version.to_le_bytes())?;
        w.write_all(&[kind.code(), 0, 0, 0])?;
        Ok(StoreWriter { w, version, written: 16, chunks: Vec::new() })
    }

    /// Reconstructs a writer mid-stream: `w` must be positioned at byte
    /// `written` of a file whose prefix already holds a `version` header and
    /// the chunks in `chunks`. Used by checkpoint resume, which truncates a
    /// partial file back to its last durable barrier and continues.
    pub fn resume_at(w: W, version: u32, written: u64, chunks: Vec<ChunkEntry>) -> Self {
        debug_assert!(written >= 16, "resume offset must be past the file header");
        StoreWriter { w, version, written, chunks }
    }

    /// The format version this writer stamps.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Chunks written so far.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// The footer index accumulated so far.
    pub fn chunks(&self) -> &[ChunkEntry] {
        &self.chunks
    }

    /// Flushes the inner writer without sealing the file.
    pub fn flush(&mut self) -> Result<(), StoreError> {
        self.w.flush()?;
        Ok(())
    }

    /// The inner writer (checkpoint barriers use this to fsync the file).
    pub fn get_mut(&mut self) -> &mut W {
        &mut self.w
    }

    /// Bytes written so far (headers included).
    pub fn bytes_written(&self) -> u64 {
        self.written
    }

    /// Appends one chunk of `records` records with the given raw column-major
    /// payload. v1 only: v2 chunks must carry a column directory, so v2
    /// writers go through [`StoreWriter::write_encoded_chunk`].
    pub fn write_chunk(
        &mut self,
        kind: ChunkKind,
        records: u64,
        payload: &[u8],
    ) -> Result<(), StoreError> {
        debug_assert_eq!(payload.len(), records as usize * kind.record_width());
        assert_eq!(
            self.version, FORMAT_VERSION,
            "v2 writers must tag every chunk's columns via write_encoded_chunk"
        );
        self.write_chunk_inner(kind, records, payload, Vec::new())
    }

    /// Appends one v2 chunk: per-column encoded bytes (concatenated in
    /// schema order) plus their codec tags, as produced by
    /// [`crate::codec::encode_chunk_columns`].
    pub fn write_encoded_chunk(
        &mut self,
        kind: ChunkKind,
        records: u64,
        stored: &[u8],
        columns: Vec<ColumnCodec>,
    ) -> Result<(), StoreError> {
        assert_eq!(self.version, FORMAT_VERSION_V2, "encoded chunks require a v2 file");
        debug_assert_eq!(
            columns.iter().map(|c| c.enc_len as u64).sum::<u64>(),
            stored.len() as u64,
            "column tags must tile the stored payload"
        );
        self.write_chunk_inner(kind, records, stored, columns)
    }

    fn write_chunk_inner(
        &mut self,
        kind: ChunkKind,
        records: u64,
        payload: &[u8],
        columns: Vec<ColumnCodec>,
    ) -> Result<(), StoreError> {
        let _span = csb_obs::span_cat("store.write_chunk", "store");
        let crc = crc32(payload);
        let entry = ChunkEntry {
            kind,
            records,
            offset: self.written,
            payload_len: payload.len() as u64,
            crc32: crc,
            columns,
        };
        self.w.write_all(&CHUNK_MAGIC.to_le_bytes())?;
        self.w.write_all(&[kind.code(), 0, 0, 0])?;
        self.w.write_all(&records.to_le_bytes())?;
        self.w.write_all(&entry.payload_len.to_le_bytes())?;
        self.w.write_all(&crc.to_le_bytes())?;
        self.w.write_all(payload)?;
        self.written += 28 + payload.len() as u64;
        self.chunks.push(entry);
        csb_obs::counter_add("store.chunks_written", 1);
        csb_obs::counter_add("store.bytes_written", 28 + payload.len() as u64);
        if kind == ChunkKind::Edge {
            csb_obs::counter_add("store.edge_records_written", records);
        }
        csb_obs::status::note_chunk_closed(1);
        Ok(())
    }

    /// Writes the footer index and trailer, flushes, and returns the inner
    /// writer. A file not sealed by `finish` has no trailer and is rejected
    /// by the reader.
    pub fn finish(mut self) -> Result<W, StoreError> {
        let footer_offset = self.written;
        let mut footer = Vec::new();
        for c in &self.chunks {
            c.encode_into(&mut footer, self.version);
        }
        self.w.write_all(&footer)?;
        self.w.write_all(&(self.chunks.len() as u64).to_le_bytes())?;
        self.w.write_all(&footer_offset.to_le_bytes())?;
        self.w.write_all(&TRAILER_MAGIC)?;
        self.w.flush()?;
        Ok(self.w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{FILE_HEADER_LEN, FOOTER_ENTRY_LEN, TRAILER_LEN};

    #[test]
    fn header_chunks_footer_layout() {
        let mut w = StoreWriter::new(Vec::new(), FileKind::Graph).expect("new");
        w.write_chunk(ChunkKind::Vertex, 2, &[1, 0, 0, 0, 2, 0, 0, 0]).expect("chunk");
        assert_eq!(w.chunk_count(), 1);
        let bytes = w.finish().expect("finish");
        let expect = FILE_HEADER_LEN + 28 + 8 + FOOTER_ENTRY_LEN + TRAILER_LEN;
        assert_eq!(bytes.len() as u64, expect);
        assert_eq!(&bytes[..8], &FILE_MAGIC);
        assert_eq!(&bytes[bytes.len() - 8..], &TRAILER_MAGIC);
        // Chunk magic right after the file header.
        assert_eq!(&bytes[16..20], &CHUNK_MAGIC.to_le_bytes());
    }

    #[test]
    fn offsets_count_headers_and_payloads() {
        let mut w = StoreWriter::new(Vec::new(), FileKind::Graph).expect("new");
        assert_eq!(w.bytes_written(), 16);
        w.write_chunk(ChunkKind::Vertex, 1, &[9, 0, 0, 0]).expect("chunk");
        assert_eq!(w.bytes_written(), 16 + 28 + 4);
    }
}
