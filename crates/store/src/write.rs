//! The chunk writer: append chunks to any `Write` target, then seal the file
//! with the footer index and trailer. The current offset is tracked by
//! counting written bytes, so plain `Write` targets (sockets, pipes,
//! `Vec<u8>`) work — no `Seek` bound on the write path.

use crate::crc32::crc32;
use crate::format::{
    ChunkEntry, ChunkKind, FileKind, StoreError, CHUNK_MAGIC, FILE_MAGIC, FORMAT_VERSION,
    TRAILER_MAGIC,
};
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

/// Writes chunks to `W`, tracking offsets and the footer index.
#[derive(Debug)]
pub struct StoreWriter<W: Write> {
    w: W,
    written: u64,
    chunks: Vec<ChunkEntry>,
}

impl StoreWriter<BufWriter<File>> {
    /// Creates a store file at `path`.
    pub fn create(path: impl AsRef<Path>, kind: FileKind) -> Result<Self, StoreError> {
        StoreWriter::new(BufWriter::new(File::create(path)?), kind)
    }
}

impl<W: Write> StoreWriter<W> {
    /// Starts a store stream on `w` by writing the file header.
    pub fn new(mut w: W, kind: FileKind) -> Result<Self, StoreError> {
        w.write_all(&FILE_MAGIC)?;
        w.write_all(&FORMAT_VERSION.to_le_bytes())?;
        w.write_all(&[kind.code(), 0, 0, 0])?;
        Ok(StoreWriter { w, written: 16, chunks: Vec::new() })
    }

    /// Reconstructs a writer mid-stream: `w` must be positioned at byte
    /// `written` of a file whose prefix already holds the header and the
    /// chunks in `chunks`. Used by checkpoint resume, which truncates a
    /// partial file back to its last durable barrier and continues.
    pub fn resume_at(w: W, written: u64, chunks: Vec<ChunkEntry>) -> Self {
        debug_assert!(written >= 16, "resume offset must be past the file header");
        StoreWriter { w, written, chunks }
    }

    /// Chunks written so far.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// The footer index accumulated so far.
    pub fn chunks(&self) -> &[ChunkEntry] {
        &self.chunks
    }

    /// Flushes the inner writer without sealing the file.
    pub fn flush(&mut self) -> Result<(), StoreError> {
        self.w.flush()?;
        Ok(())
    }

    /// The inner writer (checkpoint barriers use this to fsync the file).
    pub fn get_mut(&mut self) -> &mut W {
        &mut self.w
    }

    /// Bytes written so far (headers included).
    pub fn bytes_written(&self) -> u64 {
        self.written
    }

    /// Appends one chunk of `records` records with the given column-major
    /// payload.
    pub fn write_chunk(
        &mut self,
        kind: ChunkKind,
        records: u64,
        payload: &[u8],
    ) -> Result<(), StoreError> {
        let _span = csb_obs::span_cat("store.write_chunk", "store");
        debug_assert_eq!(payload.len(), records as usize * kind.record_width());
        let crc = crc32(payload);
        let entry = ChunkEntry {
            kind,
            records,
            offset: self.written,
            payload_len: payload.len() as u64,
            crc32: crc,
        };
        self.w.write_all(&CHUNK_MAGIC.to_le_bytes())?;
        self.w.write_all(&[kind.code(), 0, 0, 0])?;
        self.w.write_all(&records.to_le_bytes())?;
        self.w.write_all(&entry.payload_len.to_le_bytes())?;
        self.w.write_all(&crc.to_le_bytes())?;
        self.w.write_all(payload)?;
        self.written += 28 + payload.len() as u64;
        self.chunks.push(entry);
        csb_obs::counter_add("store.chunks_written", 1);
        csb_obs::counter_add("store.bytes_written", 28 + payload.len() as u64);
        Ok(())
    }

    /// Writes the footer index and trailer, flushes, and returns the inner
    /// writer. A file not sealed by `finish` has no trailer and is rejected
    /// by the reader.
    pub fn finish(mut self) -> Result<W, StoreError> {
        let footer_offset = self.written;
        for c in &self.chunks {
            self.w.write_all(&[c.kind.code(), 0, 0, 0])?;
            self.w.write_all(&c.records.to_le_bytes())?;
            self.w.write_all(&c.offset.to_le_bytes())?;
            self.w.write_all(&c.payload_len.to_le_bytes())?;
            self.w.write_all(&c.crc32.to_le_bytes())?;
        }
        self.w.write_all(&(self.chunks.len() as u64).to_le_bytes())?;
        self.w.write_all(&footer_offset.to_le_bytes())?;
        self.w.write_all(&TRAILER_MAGIC)?;
        self.w.flush()?;
        Ok(self.w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{FILE_HEADER_LEN, FOOTER_ENTRY_LEN, TRAILER_LEN};

    #[test]
    fn header_chunks_footer_layout() {
        let mut w = StoreWriter::new(Vec::new(), FileKind::Graph).expect("new");
        w.write_chunk(ChunkKind::Vertex, 2, &[1, 0, 0, 0, 2, 0, 0, 0]).expect("chunk");
        assert_eq!(w.chunk_count(), 1);
        let bytes = w.finish().expect("finish");
        let expect = FILE_HEADER_LEN + 28 + 8 + FOOTER_ENTRY_LEN + TRAILER_LEN;
        assert_eq!(bytes.len() as u64, expect);
        assert_eq!(&bytes[..8], &FILE_MAGIC);
        assert_eq!(&bytes[bytes.len() - 8..], &TRAILER_MAGIC);
        // Chunk magic right after the file header.
        assert_eq!(&bytes[16..20], &CHUNK_MAGIC.to_le_bytes());
    }

    #[test]
    fn offsets_count_headers_and_payloads() {
        let mut w = StoreWriter::new(Vec::new(), FileKind::Graph).expect("new");
        assert_eq!(w.bytes_written(), 16);
        w.write_chunk(ChunkKind::Vertex, 1, &[9, 0, 0, 0]).expect("chunk");
        assert_eq!(w.bytes_written(), 16 + 28 + 4);
    }
}
