//! Per-column compression codecs for store format v2.
//!
//! Each v2 chunk stores its columns individually encoded and concatenated;
//! the footer entry carries one [`ColumnCodec`] tag per column (codec id,
//! encoded length, CRC32 of the encoded bytes), so a reader can locate and
//! verify any single column without touching the rest of the chunk.
//!
//! Two codecs beyond [`Codec::Raw`], both zero-dependency:
//!
//! * [`Codec::DeltaVarint`] — zigzag delta + LEB128 varint over `u32`
//!   columns. The generators emit edges roughly in vertex-attachment order,
//!   so the `SRC` endpoint column is near-sorted and deltas are tiny; a
//!   near-sorted column costs ~1 byte per record instead of 4.
//! * [`Codec::Dict`] — per-chunk dictionary in first-appearance order with
//!   bit-packed indices (2/4/8/16 bits for dictionaries of ≤4/≤16/≤256/≤4096
//!   entries). Low-cardinality columns (protocol, TCP state, ports) collapse
//!   to a fraction of a byte per record.
//!
//! The encoder always measures candidates against `Raw` and keeps the
//! smallest, so a hostile column (random `DST` endpoints, high-cardinality
//! ports) never regresses past the v1 size. Decoding is total: every length,
//! shift, and dictionary index is bounds-checked and malformed input surfaces
//! as [`CsbError::Corrupt`](crate::error::CsbError), never a panic.

use crate::crc32::crc32;
use crate::format::{chunk_schema, corrupt, ChunkKind, StoreError};

/// Largest dictionary [`Codec::Dict`] will build; columns with more distinct
/// values fall back to [`Codec::Raw`].
pub const MAX_DICT_ENTRIES: usize = 4096;

/// How a column's bytes are stored inside a v2 chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Codec {
    /// Little-endian fixed-width values, exactly as in format v1.
    Raw,
    /// Zigzag deltas between consecutive values, LEB128 varint encoded.
    DeltaVarint,
    /// Dictionary in first-appearance order + bit-packed indices.
    Dict,
}

impl Codec {
    /// Stable byte code (written into v2 footer entries).
    pub const fn code(self) -> u8 {
        match self {
            Codec::Raw => 0,
            Codec::DeltaVarint => 1,
            Codec::Dict => 2,
        }
    }

    /// Inverse of [`Codec::code`].
    pub const fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(Codec::Raw),
            1 => Some(Codec::DeltaVarint),
            2 => Some(Codec::Dict),
            _ => None,
        }
    }
}

/// Per-column codec tag in a v2 footer entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColumnCodec {
    /// How the column is encoded.
    pub codec: Codec,
    /// Encoded length in bytes.
    pub enc_len: u32,
    /// CRC32 (IEEE) of the encoded bytes.
    pub crc32: u32,
}

/// Whether a sink compresses its chunks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Compression {
    /// Format v1: raw column-major chunks.
    #[default]
    None,
    /// Format v2: per-column codecs, smallest-wins against raw.
    Columnar,
}

impl Compression {
    /// Parses the CLI spelling (`raw` / `columnar`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "raw" => Some(Compression::None),
            "columnar" => Some(Compression::Columnar),
            _ => None,
        }
    }

    /// CLI spelling.
    pub const fn name(self) -> &'static str {
        match self {
            Compression::None => "raw",
            Compression::Columnar => "columnar",
        }
    }
}

const fn zigzag_encode(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

const fn zigzag_decode(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

fn read_varint(buf: &[u8], pos: &mut usize, at: u64) -> Result<u64, StoreError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let &b =
            buf.get(*pos).ok_or_else(|| corrupt(at, "truncated varint (column ends mid-value)"))?;
        *pos += 1;
        if shift == 63 && b > 1 {
            return Err(corrupt(at, "varint overflows 64 bits"));
        }
        v |= u64::from(b & 0x7F) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(corrupt(at, "varint longer than 10 bytes"));
        }
    }
}

/// Reads column values as u64 for codec-side processing (input is a raw
/// little-endian column of `n` values, `width` bytes each).
fn raw_values(raw: &[u8], width: usize) -> impl Iterator<Item = u64> + '_ {
    raw.chunks_exact(width).map(move |c| {
        let mut v = [0u8; 8];
        v[..width].copy_from_slice(c);
        u64::from_le_bytes(v)
    })
}

fn push_value(out: &mut Vec<u8>, v: u64, width: usize) {
    out.extend_from_slice(&v.to_le_bytes()[..width]);
}

fn encode_delta_varint(raw: &[u8], width: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(raw.len() / 2);
    let mut prev = 0u64;
    for v in raw_values(raw, width) {
        // Deltas live in the wrapping u64 domain reinterpreted as i64:
        // small steps in either direction zigzag to short varints, and
        // full-width values cannot overflow the subtraction.
        write_varint(&mut out, zigzag_encode(v.wrapping_sub(prev) as i64));
        prev = v;
    }
    out
}

fn decode_delta_varint(enc: &[u8], width: usize, n: usize, at: u64) -> Result<Vec<u8>, StoreError> {
    let max = if width == 8 { u64::MAX } else { (1u64 << (8 * width)) - 1 };
    let mut out = Vec::with_capacity(n * width);
    let mut pos = 0usize;
    let mut prev = 0u64;
    for _ in 0..n {
        let d = zigzag_decode(read_varint(enc, &mut pos, at)?);
        let v = prev.wrapping_add(d as u64);
        if v > max {
            return Err(corrupt(at, format!("delta-decoded value {v} out of column range")));
        }
        push_value(&mut out, v, width);
        prev = v;
    }
    if pos != enc.len() {
        return Err(corrupt(at, "trailing bytes after delta-varint column"));
    }
    Ok(out)
}

/// Index width in bits for a dictionary of `len` entries.
fn index_bits(len: usize) -> u8 {
    match len {
        0..=4 => 2,
        5..=16 => 4,
        17..=256 => 8,
        _ => 16,
    }
}

/// Dictionary layout: `[dict_len u16][index_bits u8][entries dict_len×width]
/// [indices ceil(n×bits/8)]`, indices packed little-endian within each byte.
/// Returns `None` when the column exceeds [`MAX_DICT_ENTRIES`] distinct
/// values.
fn encode_dict(raw: &[u8], width: usize) -> Option<Vec<u8>> {
    let n = raw.len() / width;
    let mut dict: Vec<u64> = Vec::new();
    let mut indices: Vec<u16> = Vec::with_capacity(n);
    for v in raw_values(raw, width) {
        // Linear scan: the dictionary is small by construction and columns
        // are dominated by repeats of the first few entries.
        let idx = match dict.iter().position(|&d| d == v) {
            Some(i) => i,
            None => {
                if dict.len() >= MAX_DICT_ENTRIES {
                    return None;
                }
                dict.push(v);
                dict.len() - 1
            }
        };
        indices.push(idx as u16);
    }
    let bits = index_bits(dict.len());
    let mut out = Vec::with_capacity(3 + dict.len() * width + (n * bits as usize).div_ceil(8));
    out.extend_from_slice(&(dict.len() as u16).to_le_bytes());
    out.push(bits);
    for &d in &dict {
        push_value(&mut out, d, width);
    }
    let mut acc = 0u32;
    let mut filled = 0u8;
    for &i in &indices {
        acc |= u32::from(i) << filled;
        filled += bits;
        while filled >= 8 {
            out.push(acc as u8);
            acc >>= 8;
            filled -= 8;
        }
    }
    if filled > 0 {
        out.push(acc as u8);
    }
    Some(out)
}

fn decode_dict(enc: &[u8], width: usize, n: usize, at: u64) -> Result<Vec<u8>, StoreError> {
    if enc.len() < 3 {
        return Err(corrupt(at, "dictionary column shorter than its header"));
    }
    let dict_len = u16::from_le_bytes([enc[0], enc[1]]) as usize;
    let bits = enc[2];
    if dict_len > MAX_DICT_ENTRIES || (n > 0 && dict_len == 0) {
        return Err(corrupt(at, format!("dictionary of {dict_len} entries out of range")));
    }
    if bits != index_bits(dict_len) {
        return Err(corrupt(at, format!("index width {bits} disagrees with dictionary size")));
    }
    let entries_end = 3 + dict_len * width;
    let packed_len = (n * bits as usize).div_ceil(8);
    if enc.len() != entries_end + packed_len {
        return Err(corrupt(at, "dictionary column length mismatch"));
    }
    let dict: Vec<u64> = raw_values(&enc[3..entries_end], width).collect();
    let packed = &enc[entries_end..];
    let mut out = Vec::with_capacity(n * width);
    let mask = if bits == 16 { 0xFFFFu32 } else { (1u32 << bits) - 1 };
    let mut acc = 0u32;
    let mut avail = 0u8;
    let mut next = 0usize;
    for _ in 0..n {
        while avail < bits {
            acc |= u32::from(packed[next]) << avail;
            next += 1;
            avail += 8;
        }
        let idx = (acc & mask) as usize;
        acc >>= bits;
        avail -= bits;
        let &v = dict
            .get(idx)
            .ok_or_else(|| corrupt(at, format!("dictionary index {idx} out of range")))?;
        push_value(&mut out, v, width);
    }
    Ok(out)
}

/// Encodes one raw column, choosing the smallest of the candidate codecs;
/// ties (and pathological inputs) keep [`Codec::Raw`], so an encoded column
/// is never larger than its raw form.
pub fn encode_column(raw: &[u8], width: usize) -> (Codec, Vec<u8>) {
    let mut best = (Codec::Raw, raw.to_vec());
    if width <= 8 {
        let dv = encode_delta_varint(raw, width);
        if dv.len() < best.1.len() {
            best = (Codec::DeltaVarint, dv);
        }
    }
    if let Some(d) = encode_dict(raw, width) {
        if d.len() < best.1.len() {
            best = (Codec::Dict, d);
        }
    }
    best
}

/// Decodes one column back to raw little-endian fixed-width bytes.
pub fn decode_column(
    codec: Codec,
    enc: &[u8],
    width: usize,
    n: usize,
    at: u64,
) -> Result<Vec<u8>, StoreError> {
    match codec {
        Codec::Raw => {
            if enc.len() != n * width {
                return Err(corrupt(at, "raw column length mismatch"));
            }
            Ok(enc.to_vec())
        }
        Codec::DeltaVarint => decode_delta_varint(enc, width, n, at),
        Codec::Dict => decode_dict(enc, width, n, at),
    }
}

/// Splits a raw column-major chunk payload into per-column encodings,
/// returning the concatenated stored bytes and one [`ColumnCodec`] per
/// schema column. Emits `store.cols_*` counters so the codec mix of a run
/// shows up in the metrics snapshot.
pub fn encode_chunk_columns(
    kind: ChunkKind,
    records: u64,
    raw_payload: &[u8],
) -> (Vec<u8>, Vec<ColumnCodec>) {
    let schema = chunk_schema(kind);
    let n = records as usize;
    debug_assert_eq!(raw_payload.len(), n * kind.record_width());
    let mut stored = Vec::with_capacity(raw_payload.len() / 2);
    let mut columns = Vec::with_capacity(schema.len());
    let mut off = 0usize;
    for c in schema {
        let raw = &raw_payload[off..off + n * c.width];
        off += n * c.width;
        let (codec, enc) = encode_column(raw, c.width);
        let counter = match codec {
            Codec::Raw => "store.cols_raw",
            Codec::DeltaVarint => "store.cols_delta",
            Codec::Dict => "store.cols_dict",
        };
        csb_obs::counter_add(counter, 1);
        columns.push(ColumnCodec { codec, enc_len: enc.len() as u32, crc32: crc32(&enc) });
        stored.extend_from_slice(&enc);
    }
    csb_obs::counter_add("store.enc_bytes_saved", (raw_payload.len() - stored.len()) as u64);
    (stored, columns)
}

/// Decodes a v2 stored chunk back to its raw column-major payload.
pub fn decode_chunk_columns(
    kind: ChunkKind,
    records: u64,
    stored: &[u8],
    columns: &[ColumnCodec],
    at: u64,
) -> Result<Vec<u8>, StoreError> {
    let schema = chunk_schema(kind);
    if columns.len() != schema.len() {
        return Err(corrupt(
            at,
            format!("chunk has {} column tags, schema has {}", columns.len(), schema.len()),
        ));
    }
    let n = records as usize;
    let mut raw = Vec::with_capacity(n * kind.record_width());
    let mut off = 0usize;
    for (c, tag) in schema.iter().zip(columns) {
        let end = off + tag.enc_len as usize;
        let enc = stored
            .get(off..end)
            .ok_or_else(|| corrupt(at, "column directory overruns the stored chunk"))?;
        raw.extend_from_slice(&decode_column(tag.codec, enc, c.width, n, at)?);
        off = end;
    }
    if off != stored.len() {
        return Err(corrupt(at, "trailing bytes after the last encoded column"));
    }
    Ok(raw)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw_u32(vals: &[u32]) -> Vec<u8> {
        vals.iter().flat_map(|v| v.to_le_bytes()).collect()
    }

    #[test]
    fn zigzag_round_trips() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(zigzag_decode(zigzag_encode(v)), v);
        }
    }

    #[test]
    fn delta_varint_round_trips_and_compresses_sorted() {
        let vals: Vec<u32> = (0..10_000).map(|i| i * 3).collect();
        let raw = raw_u32(&vals);
        let enc = encode_delta_varint(&raw, 4);
        assert!(enc.len() * 3 < raw.len(), "near-sorted column must shrink");
        assert_eq!(decode_delta_varint(&enc, 4, vals.len(), 0).unwrap(), raw);
    }

    #[test]
    fn dict_round_trips_low_cardinality() {
        let vals: Vec<u32> = (0..5000).map(|i| [6, 17, 1][i % 3]).collect();
        let raw = raw_u32(&vals);
        let enc = encode_dict(&raw, 4).expect("3 distinct values");
        assert!(enc.len() * 10 < raw.len(), "2-bit indices over 3 entries");
        assert_eq!(decode_dict(&enc, 4, vals.len(), 0).unwrap(), raw);
    }

    #[test]
    fn dict_refuses_high_cardinality() {
        let vals: Vec<u32> = (0..(MAX_DICT_ENTRIES as u32 + 1)).collect();
        assert!(encode_dict(&raw_u32(&vals), 4).is_none());
    }

    #[test]
    fn encode_column_never_beats_raw_size_upward() {
        let mut rng_state = 0x1234_5678u64;
        let vals: Vec<u32> = (0..4096)
            .map(|_| {
                rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (rng_state >> 32) as u32
            })
            .collect();
        let raw = raw_u32(&vals);
        let (codec, enc) = encode_column(&raw, 4);
        assert!(enc.len() <= raw.len());
        assert_eq!(decode_column(codec, &enc, 4, vals.len(), 0).unwrap(), raw);
    }

    #[test]
    fn truncated_varint_is_corrupt_not_panic() {
        let raw = raw_u32(&[1, 1000, 5]);
        let mut enc = encode_delta_varint(&raw, 4);
        enc.pop();
        let err = decode_delta_varint(&enc, 4, 3, 7).expect_err("truncated");
        assert!(matches!(err, crate::error::CsbError::Corrupt { offset: 7, .. }), "got {err}");
    }

    #[test]
    fn out_of_range_dict_index_is_corrupt_not_panic() {
        // 1-entry dictionary but an index word of 1: byte-pack [dict_len=1,
        // bits=2, entry, indices=0b01].
        let mut enc = vec![1u8, 0, 2];
        enc.extend_from_slice(&42u32.to_le_bytes());
        enc.push(0b01);
        let err = decode_dict(&enc, 4, 1, 3).expect_err("index out of range");
        assert!(matches!(err, crate::error::CsbError::Corrupt { offset: 3, .. }), "got {err}");
    }

    #[test]
    fn chunk_columns_round_trip() {
        use csb_graph::EdgeProperties;
        let n = 300u64;
        let props: Vec<EdgeProperties> = (0..n).map(|_| EdgeProperties::placeholder()).collect();
        let src: Vec<u32> = (0..n as u32).collect();
        let dst: Vec<u32> = (0..n as u32).map(|i| i.wrapping_mul(2654435761)).collect();
        let raw = crate::sink::encode_edge_chunk(&src, &dst, &props);
        let (stored, cols) = encode_chunk_columns(ChunkKind::Edge, n, &raw);
        assert_eq!(cols.len(), 11);
        assert!(stored.len() < raw.len(), "placeholder props are highly compressible");
        let back = decode_chunk_columns(ChunkKind::Edge, n, &stored, &cols, 0).unwrap();
        assert_eq!(back, raw);
    }
}
