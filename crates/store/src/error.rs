//! `CsbError` — the shared error type of the suite.
//!
//! One enum instead of per-crate `String` / `io::Error` soup, so the retry
//! layer in `csb-engine` can classify failures structurally
//! ([`CsbError::is_transient`]) instead of string-matching messages. The
//! store's old `StoreError` is now an alias of this type; the CLI commands
//! return it directly.

use std::io;

/// Errors from the csb suite: storage, generation jobs, and the CLI.
#[derive(Debug)]
pub enum CsbError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Structural problem with a store file's contents.
    Corrupt {
        /// File offset of the problem (best effort).
        offset: u64,
        /// What was wrong.
        message: String,
    },
    /// Invalid configuration or command-line usage.
    Config(String),
    /// Malformed input data (pcap / NetFlow / text graph / filter syntax).
    Input(String),
    /// A consistency check failed: checkpoint identity, `--expect`
    /// verification, or a resumed run that disagrees with its manifest.
    Mismatch(String),
    /// A transient condition worth retrying (injected faults, contended
    /// resources). Produced by the fault-injection hooks and by anything
    /// that knows its failure is momentary.
    Transient(String),
    /// A transient error that survived every allowed retry.
    RetryExhausted {
        /// Attempts made (initial try + retries).
        attempts: u32,
        /// The last transient error observed.
        last: Box<CsbError>,
    },
}

impl CsbError {
    /// True when retrying the failed operation could plausibly succeed.
    ///
    /// Transient: [`CsbError::Transient`] and interrupted/timed-out I/O.
    /// Everything else — corruption, bad configuration, mismatches, and
    /// [`CsbError::RetryExhausted`] — is fatal: retrying replays the same
    /// failure.
    pub fn is_transient(&self) -> bool {
        match self {
            CsbError::Transient(_) => true,
            CsbError::Io(e) => matches!(
                e.kind(),
                io::ErrorKind::Interrupted | io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
            ),
            _ => false,
        }
    }
}

impl std::fmt::Display for CsbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsbError::Io(e) => write!(f, "I/O error: {e}"),
            CsbError::Corrupt { offset, message } => {
                write!(f, "corrupt store at byte {offset}: {message}")
            }
            CsbError::Config(m) => write!(f, "{m}"),
            CsbError::Input(m) => write!(f, "{m}"),
            CsbError::Mismatch(m) => write!(f, "{m}"),
            CsbError::Transient(m) => write!(f, "transient failure: {m}"),
            CsbError::RetryExhausted { attempts, last } => {
                write!(f, "failed after {attempts} attempts: {last}")
            }
        }
    }
}

impl std::error::Error for CsbError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CsbError::Io(e) => Some(e),
            CsbError::RetryExhausted { last, .. } => Some(last.as_ref()),
            _ => None,
        }
    }
}

impl From<io::Error> for CsbError {
    fn from(e: io::Error) -> Self {
        CsbError::Io(e)
    }
}

impl From<std::convert::Infallible> for CsbError {
    fn from(e: std::convert::Infallible) -> Self {
        match e {}
    }
}

impl From<csb_graph::io::GraphIoError> for CsbError {
    fn from(e: csb_graph::io::GraphIoError) -> Self {
        match e {
            csb_graph::io::GraphIoError::Io(io) => CsbError::Io(io),
            other => CsbError::Input(other.to_string()),
        }
    }
}

impl From<csb_net::pcap::PcapError> for CsbError {
    fn from(e: csb_net::pcap::PcapError) -> Self {
        CsbError::Input(e.to_string())
    }
}

impl From<csb_net::netflow_v5::NetflowError> for CsbError {
    fn from(e: csb_net::netflow_v5::NetflowError) -> Self {
        CsbError::Input(e.to_string())
    }
}

impl From<csb_net::filter::FilterError> for CsbError {
    fn from(e: csb_net::filter::FilterError) -> Self {
        CsbError::Input(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transient_classification() {
        assert!(CsbError::Transient("flaky".into()).is_transient());
        assert!(CsbError::Io(io::Error::new(io::ErrorKind::Interrupted, "eintr")).is_transient());
        assert!(CsbError::Io(io::Error::new(io::ErrorKind::TimedOut, "slow")).is_transient());
        assert!(!CsbError::Io(io::Error::new(io::ErrorKind::NotFound, "gone")).is_transient());
        assert!(!CsbError::Corrupt { offset: 0, message: "bad".into() }.is_transient());
        assert!(!CsbError::Config("bad flag".into()).is_transient());
        assert!(!CsbError::Mismatch("wrong seed".into()).is_transient());
        // Exhaustion is terminal even though its cause was transient.
        let exhausted = CsbError::RetryExhausted {
            attempts: 3,
            last: Box::new(CsbError::Transient("still flaky".into())),
        };
        assert!(!exhausted.is_transient());
    }

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = CsbError::Io(io::Error::new(io::ErrorKind::NotFound, "missing"));
        assert!(e.to_string().contains("missing"));
        assert!(e.source().is_some());
        let x = CsbError::RetryExhausted {
            attempts: 5,
            last: Box::new(CsbError::Transient("hiccup".into())),
        };
        assert!(x.to_string().contains("5 attempts"));
        assert!(x.source().expect("has source").to_string().contains("hiccup"));
        assert!(CsbError::Config("msg".into()).source().is_none());
    }
}
