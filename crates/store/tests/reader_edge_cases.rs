//! `StoreReader` edge cases that feed the out-of-core kernels: an empty
//! store, single-record chunks, and a final short chunk. In every shape,
//! the bulk `load_graph` path, manual chunk iteration, and the streaming
//! `StoreScan` must agree on the record stream.

use csb_graph::graph::VertexId;
use csb_graph::ooc::EdgeScan;
use csb_graph::{EdgeProperties, NetflowGraph};
use csb_store::sink::{push_graph, GraphStoreSink};
use csb_store::{ChunkKind, StoreReader, StoreScan};
use std::io::Cursor;

fn graph_of(n: u32, edges: &[(u32, u32)]) -> NetflowGraph {
    let mut g = NetflowGraph::new();
    let vs: Vec<VertexId> = (0..n).map(|i| g.add_vertex(0xc0a8_0000 | i)).collect();
    for &(s, d) in edges {
        g.add_edge(vs[s as usize], vs[d as usize], EdgeProperties::placeholder());
    }
    g
}

fn sealed_bytes(g: &NetflowGraph, chunk_records: usize) -> Vec<u8> {
    let mut sink = GraphStoreSink::new(Vec::new()).expect("sink").with_chunk_records(chunk_records);
    push_graph(&mut sink, g).expect("push");
    sink.finish().expect("seal")
}

/// Collects the edge stream three ways and asserts they are identical.
fn assert_paths_agree(bytes: Vec<u8>, expect_edges: usize) {
    // Path 1: bulk graph load.
    let mut reader = StoreReader::new(Cursor::new(bytes.clone())).expect("reader");
    let g = reader.load_graph().expect("load_graph");
    let loaded: Vec<(u32, u32)> =
        g.edge_sources().iter().zip(g.edge_targets().iter()).map(|(s, d)| (s.0, d.0)).collect();
    assert_eq!(loaded.len(), expect_edges);

    // Path 2: manual chunk iteration over decoded edge batches.
    let mut reader = StoreReader::new(Cursor::new(bytes.clone())).expect("reader");
    let mut iterated = Vec::new();
    for idx in 0..reader.chunks().len() {
        if reader.chunks()[idx].kind != ChunkKind::Edge {
            continue;
        }
        let batch = reader.read_edge_batch(idx).expect("edge batch");
        iterated.extend(batch.src.iter().copied().zip(batch.dst.iter().copied()));
    }
    assert_eq!(loaded, iterated, "load_graph vs chunk iteration");

    // Path 3: the streaming scan the out-of-core kernels consume.
    let mut scan =
        StoreScan::new(StoreReader::new(Cursor::new(bytes)).expect("reader")).expect("scan");
    assert_eq!(scan.vertex_count().expect("infallible"), g.vertex_count());
    assert_eq!(scan.edge_count().expect("count"), expect_edges as u64);
    let mut scanned = Vec::new();
    scan.scan_edges(&mut |src, dst| {
        scanned.extend(src.iter().copied().zip(dst.iter().copied()));
    })
    .expect("scan_edges");
    assert_eq!(loaded, scanned, "load_graph vs StoreScan");
}

#[test]
fn empty_store() {
    let g = NetflowGraph::new();
    let bytes = sealed_bytes(&g, 16);
    assert_paths_agree(bytes.clone(), 0);
    let reader = StoreReader::new(Cursor::new(bytes)).expect("reader");
    assert_eq!(reader.record_count(ChunkKind::Edge), 0);
    assert_eq!(reader.record_count(ChunkKind::Vertex), 0);
}

#[test]
fn vertices_but_no_edges() {
    let g = graph_of(5, &[]);
    assert_paths_agree(sealed_bytes(&g, 16), 0);
}

#[test]
fn single_record_chunks() {
    // chunk_records = 1: every edge is its own chunk.
    let g = graph_of(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 0)]);
    let bytes = sealed_bytes(&g, 1);
    let reader = StoreReader::new(Cursor::new(bytes.clone())).expect("reader");
    let edge_chunks = reader.chunks().iter().filter(|c| c.kind == ChunkKind::Edge).count();
    assert_eq!(edge_chunks, 5, "one chunk per edge");
    assert!(reader.chunks().iter().filter(|c| c.kind == ChunkKind::Edge).all(|c| c.records == 1));
    assert_paths_agree(bytes, 5);
}

#[test]
fn final_short_chunk() {
    // 7 edges at 3 records per chunk: two full chunks plus a short tail of 1.
    let edges = [(0, 1), (1, 2), (2, 0), (0, 2), (2, 1), (1, 0), (0, 0)];
    let g = graph_of(3, &edges);
    let bytes = sealed_bytes(&g, 3);
    let reader = StoreReader::new(Cursor::new(bytes.clone())).expect("reader");
    let records: Vec<u64> =
        reader.chunks().iter().filter(|c| c.kind == ChunkKind::Edge).map(|c| c.records).collect();
    assert_eq!(records, vec![3, 3, 1], "final chunk runs short");
    assert_paths_agree(bytes, 7);
}

#[test]
fn chunk_size_larger_than_data() {
    // A chunk bound far above the record count: one short chunk total.
    let g = graph_of(3, &[(0, 1), (1, 2)]);
    let bytes = sealed_bytes(&g, 1_000_000);
    let reader = StoreReader::new(Cursor::new(bytes.clone())).expect("reader");
    let edge_chunks = reader.chunks().iter().filter(|c| c.kind == ChunkKind::Edge).count();
    assert_eq!(edge_chunks, 1);
    assert_paths_agree(bytes, 2);
}
