//! The tentpole invariant: `load(save(g)) == g` — vertices, edge order, and
//! all nine attributes — for arbitrary graphs and chunk sizes.

use csb_graph::graph::VertexId;
use csb_graph::{EdgeProperties, NetflowGraph};
use csb_net::flow::{Protocol, TcpConnState};
use csb_store::sink::{push_graph, GraphStoreSink};
use csb_store::{StoreError, StoreReader};
use proptest::prelude::*;
use std::io::Cursor;

/// Raw edge material: endpoints (reduced mod the vertex count in the body)
/// plus every attribute as an integer.
type RawEdge = (u32, u32, (u64, u16, u16, u64), (u64, u64, u64, u64), u64);

fn arb_edges() -> impl Strategy<Value = Vec<RawEdge>> {
    prop::collection::vec(
        (
            any::<u32>(),
            any::<u32>(),
            (0u64..3, any::<u16>(), any::<u16>(), any::<u64>()),
            (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
            0u64..8,
        ),
        0..200,
    )
}

fn build_graph(ips: &[u32], raw: &[RawEdge]) -> NetflowGraph {
    let n = ips.len() as u32;
    let mut src = Vec::with_capacity(raw.len());
    let mut dst = Vec::with_capacity(raw.len());
    let mut props = Vec::with_capacity(raw.len());
    for &(s, d, (proto, sp, dp, dur), (ob, ib, op, ip), state) in raw {
        src.push(VertexId(s % n));
        dst.push(VertexId(d % n));
        props.push(EdgeProperties {
            protocol: Protocol::from_number([1, 6, 17][proto as usize]).unwrap(),
            src_port: sp,
            dst_port: dp,
            duration_ms: dur,
            out_bytes: ob,
            in_bytes: ib,
            out_pkts: op,
            in_pkts: ip,
            state: TcpConnState::from_code(state).unwrap(),
        });
    }
    NetflowGraph::from_parts(ips.to_vec(), src, dst, props)
}

fn save_with_chunk(g: &NetflowGraph, chunk_records: usize) -> Result<Vec<u8>, StoreError> {
    let mut sink = GraphStoreSink::new(Vec::new())?.with_chunk_records(chunk_records);
    push_graph(&mut sink, g)?;
    sink.finish()
}

fn assert_graphs_equal(a: &NetflowGraph, b: &NetflowGraph) {
    assert_eq!(a.vertex_data(), b.vertex_data());
    assert_eq!(a.edge_sources(), b.edge_sources());
    assert_eq!(a.edge_targets(), b.edge_targets());
    assert_eq!(a.edge_data(), b.edge_data());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn load_save_round_trips(
        ips in prop::collection::vec(any::<u32>(), 1..40),
        raw in arb_edges(),
        chunk in 1usize..64,
    ) {
        let g = build_graph(&ips, &raw);
        let bytes = save_with_chunk(&g, chunk).expect("save");
        let h = StoreReader::new(Cursor::new(bytes)).expect("open").load_graph().expect("load");
        assert_graphs_equal(&g, &h);
    }

    #[test]
    fn chunk_size_does_not_change_the_graph(
        ips in prop::collection::vec(any::<u32>(), 1..40),
        raw in arb_edges(),
    ) {
        // The record stream, not the push/chunk granularity, defines the
        // dataset: every chunking loads back to the same graph.
        let g = build_graph(&ips, &raw);
        let small = save_with_chunk(&g, 7).expect("save small");
        let large = save_with_chunk(&g, 1 << 20).expect("save large");
        let a = StoreReader::new(Cursor::new(small)).expect("open").load_graph().expect("load");
        let b = StoreReader::new(Cursor::new(large)).expect("open").load_graph().expect("load");
        assert_graphs_equal(&a, &b);
        assert_graphs_equal(&g, &a);
    }

    #[test]
    fn column_projection_matches_full_decode(
        ips in prop::collection::vec(any::<u32>(), 1..40),
        raw in arb_edges(),
    ) {
        let g = build_graph(&ips, &raw);
        let bytes = save_with_chunk(&g, 16).expect("save");
        let mut r = StoreReader::new(Cursor::new(bytes)).expect("open");
        let mut projected: Vec<u64> = Vec::new();
        for idx in 0..r.chunks().len() {
            if r.chunks()[idx].kind == csb_store::ChunkKind::Edge {
                projected.extend(r.read_column(idx, "IN_BYTES").expect("project"));
            }
        }
        let expect: Vec<u64> = g.edge_data().iter().map(|p| p.in_bytes).collect();
        prop_assert_eq!(projected, expect);
    }

    #[test]
    fn corrupted_payload_is_detected(
        ips in prop::collection::vec(any::<u32>(), 1..40),
        raw in arb_edges(),
        flip in any::<u64>(),
    ) {
        let g = build_graph(&ips, &raw);
        prop_assume!(g.edge_count() > 0);
        let mut bytes = save_with_chunk(&g, 1 << 20).expect("save");
        // Flip one bit inside the edge chunk payload (past the file header,
        // vertex chunk, and edge chunk header; before the footer + trailer).
        let lo = 16 + 28 + 4 * g.vertex_count() + 28;
        let hi = bytes.len() - 24 - 2 * 32;
        let at = lo + (flip as usize) % (hi - lo);
        bytes[at] ^= 0x40;
        let result = StoreReader::new(Cursor::new(bytes)).and_then(|mut r| r.load_graph());
        prop_assert!(result.is_err(), "bit flip at {} must not load silently", at);
    }
}
