//! Differential tests for the labeled flow store: `load(save(f)) == f`
//! including the label columns, across compressions, chunk sizes, and shard
//! layouts — plus read-compat of unlabeled v1 flow stores over a checked-in
//! fixture (the flow-store counterpart of the PR 6 graph-store compat test).

use csb_net::flow::{FlowRecord, Protocol, TcpConnState};
use csb_net::{AttackClass, FlowLabel, LabeledFlow};
use csb_store::sink::FlowSink;
use csb_store::{
    load_flows, load_labeled_flows, load_labeled_flows_sharded, save_labeled_flows,
    save_labeled_flows_sharded, Compression, FlowStoreSink, LabeledFlowSink, LabeledFlowStoreSink,
    StoreReader,
};
use proptest::prelude::*;
use std::path::PathBuf;

type RawFlow = (u32, u32, (u64, u16, u16, u64), (u64, u64, u64, u64), (u64, u32, u32, u64));
type RawLabel = (u32, u8, u64);

fn arb_flows() -> impl Strategy<Value = Vec<(RawFlow, RawLabel)>> {
    prop::collection::vec(
        (
            (
                any::<u32>(),
                any::<u32>(),
                (0u64..3, any::<u16>(), any::<u16>(), any::<u64>()),
                (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
                (0u64..8, any::<u32>(), any::<u32>(), any::<u64>()),
            ),
            (any::<u32>(), any::<u8>(), 0u64..6),
        ),
        0..120,
    )
}

fn build(raw: &[(RawFlow, RawLabel)]) -> Vec<LabeledFlow> {
    raw.iter()
        .map(
            |&(
                (si, di, (proto, sp, dp, dur), (ob, ib, op, ip), (state, syn, ack, ts)),
                (c, st, cl),
            )| {
                LabeledFlow {
                    flow: FlowRecord {
                        src_ip: si,
                        dst_ip: di,
                        protocol: Protocol::from_number([1, 6, 17][proto as usize]).unwrap(),
                        src_port: sp,
                        dst_port: dp,
                        duration_ms: dur,
                        out_bytes: ob,
                        in_bytes: ib,
                        out_pkts: op,
                        in_pkts: ip,
                        state: TcpConnState::from_code(state).unwrap(),
                        syn_count: syn,
                        ack_count: ack,
                        first_ts_micros: ts,
                    },
                    label: FlowLabel {
                        campaign: c,
                        stage: st,
                        class: AttackClass::from_code(cl as u8).unwrap(),
                    },
                }
            },
        )
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn labeled_round_trip_both_compressions(raw in arb_flows(), chunk in 1usize..40) {
        let flows = build(&raw);
        for compression in [Compression::None, Compression::Columnar] {
            let dir = tempdir();
            let path = dir.join("flows.csb");
            let mut sink = LabeledFlowStoreSink::create_with(&path, compression)
                .unwrap()
                .with_chunk_records(chunk);
            sink.push_labeled(&flows).unwrap();
            sink.finish().unwrap();
            let back = load_labeled_flows(&path).unwrap();
            prop_assert_eq!(&back, &flows, "labeled round trip ({:?})", compression);
            // The unlabeled API reads the same file, labels dropped.
            let plain = load_flows(&path).unwrap();
            let want: Vec<FlowRecord> = flows.iter().map(|l| l.flow).collect();
            prop_assert_eq!(plain, want);
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn sharded_layout_preserves_the_stream(raw in arb_flows(), shards in 1usize..5, chunk in 1usize..20) {
        let flows = build(&raw);
        let dir = tempdir();
        let path = dir.join("flows.csbset");
        save_labeled_flows_sharded(&path, &flows, shards, Compression::Columnar, chunk).unwrap();
        let back = load_labeled_flows_sharded(&path).unwrap();
        prop_assert_eq!(&back, &flows, "sharded round trip, {} shards", shards);
        // The top-level loader sniffs the manifest magic.
        let sniffed = load_labeled_flows(&path).unwrap();
        prop_assert_eq!(sniffed, flows);
        std::fs::remove_dir_all(&dir).ok();
    }
}

fn tempdir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "csb-labeled-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The frozen flow list behind `tests/fixtures/v1-flows.csbstore`.
fn fixture_flows() -> Vec<FlowRecord> {
    let states = [
        TcpConnState::Sf,
        TcpConnState::S0,
        TcpConnState::Rej,
        TcpConnState::Oth,
        TcpConnState::Rsto,
        TcpConnState::Rstr,
        TcpConnState::S1,
        TcpConnState::Sh,
    ];
    let protos = [Protocol::Tcp, Protocol::Udp, Protocol::Icmp];
    (0u64..23)
        .map(|i| FlowRecord {
            src_ip: 0x0A01_0002 + i as u32,
            dst_ip: 0x0A00_0002 + (i as u32 % 5),
            protocol: protos[i as usize % 3],
            src_port: 32768 + i as u16 * 7,
            dst_port: [80u16, 443, 53, 22][i as usize % 4],
            duration_ms: i * 131,
            out_bytes: i * 1017 + 40,
            in_bytes: i * 2511 + 60,
            out_pkts: i + 3,
            in_pkts: i + 2,
            state: states[i as usize % 8],
            syn_count: (i % 3) as u32,
            ack_count: (i % 7) as u32,
            first_ts_micros: i * 500_000,
        })
        .collect()
}

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures/v1-flows.csbstore")
}

/// v1 read-compat: an unlabeled v1 flow store written by the frozen v1
/// encoder must keep loading — both through the unlabeled API and through
/// the labeled API (as all-benign). The fixture file is checked in; on a
/// checkout where it is missing the test writes it first (bless-on-first-run,
/// like the golden tests), so a format regression shows up as a mismatch
/// against the committed bytes.
#[test]
fn v1_flow_store_fixture_keeps_loading() {
    let path = fixture_path();
    let flows = fixture_flows();
    if !path.exists() {
        let mut sink = FlowStoreSink::create(&path).unwrap().with_chunk_records(7);
        sink.push_flows(&flows).unwrap();
        sink.finish().unwrap();
        eprintln!("blessed new v1 flow fixture at {}", path.display());
    }
    // Byte 8 is the format version: the fixture must stay v1.
    let bytes = std::fs::read(&path).unwrap();
    assert_eq!(bytes[8], 1, "fixture must be a v1 store");
    let r = StoreReader::open(&path).unwrap();
    assert_eq!(r.version(), 1);
    assert_eq!(load_flows(&path).unwrap(), flows);
    let labeled = load_labeled_flows(&path).unwrap();
    assert_eq!(labeled.len(), flows.len());
    for (l, f) in labeled.iter().zip(&flows) {
        assert_eq!(&l.flow, f);
        assert_eq!(l.label, FlowLabel::BENIGN, "v1 stores carry no ground truth");
    }
}

/// A corrupt attack-class byte must surface as a corruption error, not a
/// panic or a silent default.
#[test]
fn invalid_class_code_is_corrupt() {
    let dir = tempdir();
    let path = dir.join("bad.csb");
    let flows = vec![LabeledFlow {
        flow: fixture_flows()[0],
        label: FlowLabel { campaign: 9, stage: 1, class: AttackClass::Probe },
    }];
    save_labeled_flows(&path, &flows, Compression::None).unwrap();
    let mut bytes = std::fs::read(&path).unwrap();
    // The CLASS column is the last payload byte of the single chunk (header
    // is 8 magic + 4 version; chunk header precedes payload; class column is
    // the final column). Flip it to an invalid code and fix nothing else —
    // the reader must fail CRC or class validation, never panic.
    let n = bytes.len();
    // Find the payload: single record, class byte sits right before the
    // footer. Corrupt a broad tail region instead of exact offset math.
    for b in bytes.iter_mut().take(n / 2).skip(12) {
        *b = 0xFF;
    }
    std::fs::write(&path, &bytes).unwrap();
    assert!(load_labeled_flows(&path).is_err());
    std::fs::remove_dir_all(&dir).ok();
}
