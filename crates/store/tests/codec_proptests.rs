//! Property-based tests for the v2 column codecs: every encode→decode round
//! trip is the identity, encoded columns never exceed their raw form, and
//! arbitrary (hostile) bytes decode to `Corrupt` errors — never a panic,
//! never an out-of-range value silently accepted.

use csb_store::codec::{
    decode_chunk_columns, decode_column, encode_chunk_columns, encode_column, Codec,
};
use csb_store::ChunkKind;
use proptest::prelude::*;

fn arb_width() -> impl Strategy<Value = usize> {
    prop::sample::select(vec![1usize, 2, 4, 8])
}

fn arb_kind() -> impl Strategy<Value = ChunkKind> {
    prop::sample::select(vec![ChunkKind::Vertex, ChunkKind::Edge, ChunkKind::Flow])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any raw column survives whichever codec the encoder picks, and the
    /// pick is never larger than raw.
    #[test]
    fn column_encode_decode_is_identity(
        width in arb_width(),
        values in prop::collection::vec(any::<u8>(), 0..1024),
    ) {
        let n = values.len() / width;
        let raw = &values[..n * width];
        let (codec, enc) = encode_column(raw, width);
        prop_assert!(enc.len() <= raw.len(), "{codec:?} grew the column");
        let back = decode_column(codec, &enc, width, n, 0).expect("roundtrip");
        prop_assert_eq!(back.as_slice(), raw);
    }

    /// Low-cardinality columns (the protocol/state/port shape) round-trip
    /// through the dictionary and compress when wide.
    #[test]
    fn low_cardinality_column_roundtrips(
        width in prop::sample::select(vec![2usize, 4, 8]),
        picks in prop::collection::vec(0u8..4, 1..512),
    ) {
        let raw: Vec<u8> = picks
            .iter()
            .flat_map(|&p| {
                let v = [7u64, 99, 1024, 65_000][p as usize];
                v.to_le_bytes()[..width].to_vec()
            })
            .collect();
        let (codec, enc) = encode_column(&raw, width);
        let back = decode_column(codec, &enc, width, picks.len(), 0).expect("roundtrip");
        prop_assert_eq!(back, raw.clone());
        // ≤4 distinct values bit-pack to 2 bits each: long wide columns
        // must actually shrink.
        if picks.len() >= 256 {
            prop_assert!(enc.len() < raw.len(), "{codec:?}: {} !< {}", enc.len(), raw.len());
        }
    }

    /// A whole chunk payload (any kind) splits, encodes, and reassembles
    /// bit-identically.
    #[test]
    fn chunk_encode_decode_is_identity(
        kind in arb_kind(),
        records in 0usize..200,
        seed in any::<u64>(),
    ) {
        // Deterministic pseudo-random payload from the seed (xorshift) so
        // the case minimizer stays effective.
        let mut s = seed | 1;
        let len = records * kind.record_width();
        let raw: Vec<u8> = (0..len)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                s as u8
            })
            .collect();
        let (stored, columns) = encode_chunk_columns(kind, records as u64, &raw);
        prop_assert!(stored.len() <= raw.len());
        let back = decode_chunk_columns(kind, records as u64, &stored, &columns, 0)
            .expect("roundtrip");
        prop_assert_eq!(back, raw);
    }

    /// Hostile bytes never panic a decoder: truncated varints, bad
    /// dictionary headers, out-of-range indices — all must surface as
    /// `Err`, and any `Ok` must have the exact expected length.
    #[test]
    fn arbitrary_bytes_never_panic_decoders(
        codec_code in 0u8..3,
        width in arb_width(),
        n in 0usize..64,
        bytes in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        let codec = Codec::from_code(codec_code).expect("valid code");
        if let Ok(raw) = decode_column(codec, &bytes, width, n, 0) {
            prop_assert_eq!(raw.len(), n * width);
        }
    }

    /// Truncating a valid encoding at any point decodes to an error (or,
    /// for the raw codec, only when the length no longer matches) — never
    /// to a silently wrong column.
    #[test]
    fn truncated_encodings_are_rejected(
        width in arb_width(),
        values in prop::collection::vec(any::<u8>(), 8..512),
        cut in 0usize..512,
    ) {
        let n = values.len() / width;
        let raw = &values[..n * width];
        let (codec, enc) = encode_column(raw, width);
        prop_assume!(cut < enc.len());
        match decode_column(codec, &enc[..cut], width, n, 0) {
            Err(_) => {}
            Ok(back) => {
                // A prefix that still decodes cleanly can only happen if it
                // reproduces the exact original column (impossible for a
                // strict prefix of raw, conceivable only for empty input).
                prop_assert_eq!(back.as_slice(), raw);
            }
        }
    }
}
