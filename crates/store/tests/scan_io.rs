//! I/O-shape regressions for the out-of-core scan path.
//!
//! The old `StoreScan` projected SRC and DST through two separate
//! `read_column` calls, so every edge chunk cost *two* `store.read_chunk`
//! spans (and two payload reads) per pass — BENCH_veracity.json showed ~165
//! spans per chunk-pass where ~20 chunks existed. These tests pin the fixed
//! contract: one chunk read per chunk per pass when streaming, and zero
//! re-reads once the encoded-block cache holds the store.

use csb_graph::ooc::EdgeScan;
use csb_graph::{EdgeProperties, NetflowGraph, VertexId};
use csb_store::sink::{push_graph, GraphStoreSink};
use csb_store::{ChunkKind, StoreReader, StoreScan};
use std::io::Cursor;

fn sample_graph(n: u32, edges_per_vertex: u32) -> NetflowGraph {
    let mut g = NetflowGraph::new();
    let vs: Vec<VertexId> = (0..n).map(|i| g.add_vertex(0x0a00_0000 | i)).collect();
    for i in 0..n {
        for j in 1..=edges_per_vertex {
            let d = (i + j) % n;
            g.add_edge(vs[i as usize], vs[d as usize], EdgeProperties::placeholder());
        }
    }
    g
}

fn store_bytes(g: &NetflowGraph, chunk_records: usize) -> Vec<u8> {
    let mut sink = GraphStoreSink::new(Vec::new()).expect("sink").with_chunk_records(chunk_records);
    push_graph(&mut sink, g).expect("push");
    sink.finish().expect("seal")
}

fn chunk_read_spans() -> usize {
    csb_obs::flush_spans().iter().filter(|s| s.name == "store.read_chunk").count()
}

fn counter_value(name: &str) -> u64 {
    csb_obs::snapshot_metrics()
        .counters
        .iter()
        .find(|(n, _)| *n == name)
        .map(|&(_, v)| v)
        .unwrap_or(0)
}

#[test]
fn streaming_scan_reads_each_chunk_exactly_once_per_pass() {
    let _guard = csb_obs::span::test_lock();
    let g = sample_graph(64, 10); // 640 edges
    let bytes = store_bytes(&g, 100); // 7 edge chunks
    let reader = StoreReader::new(Cursor::new(bytes)).expect("reader");
    let edge_chunks = reader.chunks().iter().filter(|c| c.kind == ChunkKind::Edge).count();
    assert!(edge_chunks >= 2, "test store must span several chunks");

    // Budget 0 = pure streaming: every pass must hit the disk, but only
    // once per chunk — SRC and DST come from one projected payload read.
    let mut scan = StoreScan::new(reader).expect("scan").with_cache_budget(0);
    csb_obs::reset();
    csb_obs::enable();
    scan.scan_edges(&mut |_, _| {}).expect("edges pass");
    scan.scan_sources(&mut |_| {}).expect("sources pass");
    scan.scan_targets(&mut |_| {}).expect("targets pass");
    let spans = chunk_read_spans();
    let chunks_read = counter_value("store.chunks_read");
    csb_obs::disable();
    csb_obs::reset();

    assert_eq!(
        spans,
        3 * edge_chunks,
        "a pass must cost exactly one store.read_chunk span per chunk"
    );
    assert_eq!(chunks_read as usize, 3 * edge_chunks);
}

#[test]
fn block_cache_eliminates_rereads_across_passes() {
    let _guard = csb_obs::span::test_lock();
    let g = sample_graph(64, 10);
    let bytes = store_bytes(&g, 100);
    let reader = StoreReader::new(Cursor::new(bytes)).expect("reader");
    let edge_chunks = reader.chunks().iter().filter(|c| c.kind == ChunkKind::Edge).count();

    // Default budget is plenty for this store: pass 1 faults everything in,
    // passes 2..=6 are served from memory — no spans, no bytes.
    let mut scan = StoreScan::new(reader).expect("scan");
    csb_obs::reset();
    csb_obs::enable();
    scan.scan_edges(&mut |_, _| {}).expect("first pass");
    let first_spans = chunk_read_spans();
    let first_bytes = counter_value("ooc.bytes_read");
    for _ in 0..5 {
        scan.scan_edges(&mut |_, _| {}).expect("warm pass");
    }
    let warm_spans = chunk_read_spans();
    let warm_bytes = counter_value("ooc.bytes_read");
    csb_obs::disable();
    csb_obs::reset();

    assert_eq!(first_spans, edge_chunks, "cold pass reads each chunk once");
    assert!(first_bytes > 0, "cold pass must touch the store");
    assert_eq!(warm_spans, 0, "warm passes must not re-read chunks");
    assert_eq!(warm_bytes, first_bytes, "ooc.bytes_read must not grow on warm passes");
}

#[test]
fn multi_column_projection_is_one_read_and_matches_single_column() {
    let _guard = csb_obs::span::test_lock();
    let g = sample_graph(32, 6);
    let bytes = store_bytes(&g, 64);
    let mut reader = StoreReader::new(Cursor::new(bytes)).expect("reader");
    let edge_idx =
        reader.chunks().iter().position(|c| c.kind == ChunkKind::Edge).expect("edge chunk");

    csb_obs::reset();
    csb_obs::enable();
    let both = reader.read_columns(edge_idx, &["SRC", "DST"]).expect("projection");
    let spans_both = chunk_read_spans();
    let src = reader.read_column(edge_idx, "SRC").expect("src");
    let dst = reader.read_column(edge_idx, "DST").expect("dst");
    let spans_single = chunk_read_spans();
    csb_obs::disable();
    csb_obs::reset();

    assert_eq!(spans_both, 1, "two-column projection must be one chunk read");
    assert_eq!(spans_single, 2, "separate projections cost a read each");
    assert_eq!(both[0], src);
    assert_eq!(both[1], dst);
}
