//! Operator-level counters from real engine runs.
//!
//! Every [`crate::Pdd`] operator records how many records it read, produced,
//! and shuffled. The simulated cluster converts these counts into time and
//! memory; the counters are also how the integration tests check that the
//! distributed generator does the same amount of work the complexity analysis
//! in the paper predicts (`O(|E|)` per phase).

use parking_lot::Mutex;
use std::sync::Arc;

/// One operator's record accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpMetrics {
    /// Operator kind label (static for simplicity).
    pub op: &'static str,
    /// Records read from the upstream dataset.
    pub records_in: u64,
    /// Records produced.
    pub records_out: u64,
    /// Records moved across the (simulated) network by a shuffle.
    pub shuffled: u64,
}

/// Shared accumulator threaded through a dataflow job.
#[derive(Debug, Clone, Default)]
pub struct JobMetrics {
    inner: Arc<Mutex<Vec<OpMetrics>>>,
}

impl JobMetrics {
    /// Fresh, empty metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one operator's counts.
    ///
    /// Besides the per-operator log consumed by the cluster cost model, the
    /// aggregate totals are mirrored into the shared `csb-obs` registry
    /// (`engine.ops` / `engine.records_in` / `engine.records_out` /
    /// `engine.shuffled`), so `--metrics-out` exports engine work alongside
    /// generator counters.
    pub fn record(&self, op: &'static str, records_in: u64, records_out: u64, shuffled: u64) {
        self.inner.lock().push(OpMetrics { op, records_in, records_out, shuffled });
        csb_obs::counter_add("engine.ops", 1);
        csb_obs::counter_add("engine.records_in", records_in);
        csb_obs::counter_add("engine.records_out", records_out);
        csb_obs::counter_add("engine.shuffled", shuffled);
    }

    /// Snapshot of all operator records so far.
    pub fn ops(&self) -> Vec<OpMetrics> {
        self.inner.lock().clone()
    }

    /// Total records produced across all operators.
    pub fn total_records_out(&self) -> u64 {
        self.inner.lock().iter().map(|o| o.records_out).sum()
    }

    /// Total shuffled records across all operators.
    pub fn total_shuffled(&self) -> u64 {
        self.inner.lock().iter().map(|o| o.shuffled).sum()
    }

    /// Number of operator executions recorded.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate() {
        let m = JobMetrics::new();
        assert!(m.is_empty());
        m.record("map", 10, 10, 0);
        m.record("distinct", 10, 7, 10);
        assert_eq!(m.len(), 2);
        assert_eq!(m.total_records_out(), 17);
        assert_eq!(m.total_shuffled(), 10);
        let ops = m.ops();
        assert_eq!(ops[0].op, "map");
        assert_eq!(ops[1].records_out, 7);
    }

    #[test]
    fn clones_share_state() {
        let m = JobMetrics::new();
        let m2 = m.clone();
        m2.record("filter", 5, 3, 0);
        assert_eq!(m.len(), 1);
    }
}
