//! Thread pool executing per-partition tasks.
//!
//! Partitions are claimed with an atomic cursor (work stealing by
//! competition), the pattern the hpc guides recommend when per-task cost is
//! uneven. Threads are scoped (crossbeam) so tasks may borrow from the
//! caller's stack.

use crossbeam::thread;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A fixed-width thread pool for partitioned jobs.
#[derive(Debug, Clone, Copy)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// Pool with the given parallelism (at least 1).
    pub fn new(threads: usize) -> Self {
        ThreadPool { threads: threads.max(1) }
    }

    /// Pool sized to the machine.
    pub fn default_for_host() -> Self {
        Self::new(std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
    }

    /// Configured parallelism.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f(partition_index, &mut partition)` over every partition, in
    /// parallel, in place.
    pub fn for_each_partition<T, F>(&self, partitions: &mut [T], f: F)
    where
        T: Send,
        F: Fn(usize, &mut T) + Send + Sync,
    {
        if partitions.is_empty() {
            return;
        }
        let _job = csb_obs::span_cat("engine.for_each_partition", "engine");
        let n = partitions.len();
        let workers = self.threads.min(n);
        if workers <= 1 {
            for (i, p) in partitions.iter_mut().enumerate() {
                let _part = csb_obs::span_cat("engine.partition", "engine");
                f(i, p);
            }
            return;
        }
        let cursor = AtomicUsize::new(0);
        let base = partitions.as_mut_ptr() as usize;
        // Workers do not inherit the caller's recorder scope; re-install it
        // so scoped-job partition spans land on the job's own recorder.
        let recorder = csb_obs::recorder::current();
        thread::scope(|s| {
            for _ in 0..workers {
                let cursor = &cursor;
                let f = &f;
                let recorder = recorder.clone();
                s.spawn(move |_| {
                    let _obs_scope = recorder.install();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        // SAFETY: each index i is claimed exactly once via the
                        // atomic counter, so no two threads alias the same
                        // element; the scope guarantees the slice outlives the
                        // workers.
                        let item = unsafe { &mut *(base as *mut T).add(i) };
                        // Per-partition span on the claiming worker's thread, so
                        // a trace shows how partitions spread over the pool.
                        let _part = csb_obs::span_cat("engine.partition", "engine");
                        f(i, item);
                    }
                });
            }
        })
        .expect("worker panicked");
    }

    /// Maps every partition to a new value, in parallel, preserving order.
    pub fn map_partitions<T, U, F>(&self, partitions: Vec<T>, f: F) -> Vec<U>
    where
        T: Send,
        U: Send,
        F: Fn(usize, T) -> U + Send + Sync,
    {
        let mut slots: Vec<(Option<T>, Option<U>)> =
            partitions.into_iter().map(|p| (Some(p), None)).collect();
        self.for_each_partition(&mut slots, |i, slot| {
            let input = slot.0.take().expect("each slot claimed exactly once");
            slot.1 = Some(f(i, input));
        });
        slots.into_iter().map(|s| s.1.expect("every slot computed")).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn processes_every_partition_once() {
        let pool = ThreadPool::new(4);
        let mut parts: Vec<u64> = (0..64).collect();
        pool.for_each_partition(&mut parts, |i, p| {
            *p += i as u64 * 1000;
        });
        for (i, &v) in parts.iter().enumerate() {
            assert_eq!(v, i as u64 + i as u64 * 1000);
        }
    }

    #[test]
    fn single_thread_and_empty() {
        let pool = ThreadPool::new(1);
        let mut parts: Vec<u64> = vec![5];
        pool.for_each_partition(&mut parts, |_, p| *p *= 2);
        assert_eq!(parts, vec![10]);
        let mut empty: Vec<u64> = Vec::new();
        pool.for_each_partition(&mut empty, |_, _| panic!("no partitions"));
    }

    #[test]
    fn zero_threads_clamped() {
        assert_eq!(ThreadPool::new(0).threads(), 1);
    }

    #[test]
    fn map_partitions_preserves_order() {
        let pool = ThreadPool::new(4);
        let parts: Vec<u64> = (0..40).collect();
        let out = pool.map_partitions(parts, |i, p| p * 2 + i as u64);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, i as u64 * 3);
        }
    }

    #[test]
    fn uneven_work_balances() {
        let pool = ThreadPool::new(8);
        let mut parts: Vec<Vec<u64>> =
            (0..32).map(|i| if i % 7 == 0 { vec![0; 10_000] } else { vec![0; 10] }).collect();
        pool.for_each_partition(&mut parts, |_, p| {
            for (j, x) in p.iter_mut().enumerate() {
                *x = j as u64;
            }
        });
        assert!(parts.iter().all(|p| p.iter().enumerate().all(|(j, &x)| x == j as u64)));
    }
}
