//! Cluster descriptions.
//!
//! [`ClusterConfig::shadow_ii`] mirrors the paper's testbed: the Shadow II
//! supercomputer at Mississippi State (110 nodes, 2x Intel Xeon E5-2680 v2 =
//! 20 cores and 512 GB per node, 54 Gb/s InfiniBand), of which the paper uses
//! 10-60 nodes with 12 executor cores per node (its Fig. 8 tuning study found
//! no benefit past 12 of the 20 cores — memory bandwidth saturates).

/// A homogeneous cluster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterConfig {
    /// Number of compute nodes.
    pub nodes: usize,
    /// Physical cores per node.
    pub cores_per_node: usize,
    /// Executor cores actually used per node (`total-executor-cores` /
    /// nodes, in Spark terms).
    pub executor_cores_per_node: usize,
    /// RAM per node, GB.
    pub memory_per_node_gb: f64,
    /// Interconnect bandwidth per node, Gb/s.
    pub network_gbps: f64,
    /// Cores per node beyond which throughput no longer scales (memory
    /// bandwidth saturation; 12 on Shadow II per the paper's Fig. 8).
    pub saturation_cores: usize,
}

impl ClusterConfig {
    /// One Shadow II node with the given executor-core count (the paper's
    /// Fig. 8 single-node tuning study sweeps this 1..=20).
    pub fn shadow_ii_single_node(executor_cores: usize) -> Self {
        ClusterConfig { nodes: 1, executor_cores_per_node: executor_cores, ..Self::shadow_ii(1) }
    }

    /// `nodes` Shadow II nodes at the paper's production setting of 12
    /// executor cores per node.
    pub fn shadow_ii(nodes: usize) -> Self {
        assert!(nodes >= 1, "cluster needs at least one node");
        ClusterConfig {
            nodes,
            cores_per_node: 20,
            executor_cores_per_node: 12,
            memory_per_node_gb: 512.0,
            network_gbps: 54.0,
            saturation_cores: 12,
        }
    }

    /// Cores that contribute to throughput on one node.
    pub fn effective_cores_per_node(&self) -> usize {
        self.executor_cores_per_node.min(self.saturation_cores).min(self.cores_per_node).max(1)
    }

    /// Total effective cores across the cluster.
    pub fn effective_cores_total(&self) -> usize {
        self.effective_cores_per_node() * self.nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shadow_ii_matches_paper_testbed() {
        let c = ClusterConfig::shadow_ii(60);
        assert_eq!(c.nodes, 60);
        assert_eq!(c.cores_per_node, 20);
        assert_eq!(c.memory_per_node_gb, 512.0);
        assert_eq!(c.network_gbps, 54.0);
        assert_eq!(c.effective_cores_total(), 720);
    }

    #[test]
    fn saturation_caps_effective_cores() {
        for cores in 1..=20 {
            let c = ClusterConfig::shadow_ii_single_node(cores);
            assert_eq!(c.effective_cores_per_node(), cores.min(12));
        }
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_panics() {
        let _ = ClusterConfig::shadow_ii(0);
    }
}
