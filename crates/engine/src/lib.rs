//! # csb-engine
//!
//! A miniature map-reduce dataflow engine plus a simulated-cluster cost
//! model — the stand-in for the paper's Apache Spark / GraphX substrate.
//!
//! Two cooperating layers:
//!
//! * **Real execution** — [`Pdd`] ("partitioned distributed dataset", the
//!   RDD analogue) runs `map` / `flat_map` / `filter` / `sample` /
//!   `distinct` / `reduce_by_key` operators over real partitions on a real
//!   thread pool ([`executor`]). The distributed generator implementations in
//!   `csb-core` run on this layer, so their output is *actual data*,
//!   verifiable against the in-process reference implementations.
//! * **Simulated platform** — [`cluster::ClusterConfig`] describes a cluster
//!   (the Shadow II preset matches the paper's testbed: nodes x 20 cores x
//!   512 GB, 54 Gb/s interconnect) and [`sim::SimCluster`] converts operator
//!   record counts into simulated wall-clock time and per-node memory via the
//!   calibrated [`costmodel::CostModel`]. This is what regenerates the
//!   paper's cluster-scale figures (8-12) on a laptop: the *shapes* (core
//!   saturation, linear scaling in edges, shuffle-bound speedup loss) come
//!   from the model's structure, with constants documented in `costmodel`.

pub mod cluster;
pub mod costmodel;
pub mod dataset;
pub mod executor;
pub mod metrics;
pub mod retry;
pub mod sim;

pub use cluster::ClusterConfig;
pub use costmodel::CostModel;
pub use dataset::{Pdd, SpillConfig};
pub use executor::ThreadPool;
pub use metrics::JobMetrics;
pub use retry::{FaultConfig, RetryPolicy, TaskPolicy};
pub use sim::{SimCluster, SimReport};
