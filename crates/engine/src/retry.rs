//! Task retry with deterministic backoff, plus fault injection.
//!
//! Spark's resilience story is per-task retry: a task that dies is re-run
//! (up to `spark.task.maxFailures`) without restarting the job. [`Pdd`]
//! operators get the same property through a [`TaskPolicy`] gate at the top
//! of every per-partition task: an injected (or observed-transient) failure
//! delays and re-runs the task instead of killing the job.
//!
//! Everything here is deterministic. Backoff delays and injected-fault
//! decisions derive from seeds via `csb_stats::rng::derive_seed`, and a
//! retried task re-runs the *same* pure computation — faults cost wall-clock
//! time, never change data. That is what lets the fault-injection smoke test
//! assert bit-equality between a clean run and a 10%-failure run.
//!
//! [`Pdd`]: crate::dataset::Pdd

use csb_stats::rng::derive_seed;
use csb_store::CsbError;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How often and how patiently a failed task is retried.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first failure (Spark's `maxFailures - 1`).
    pub max_retries: u32,
    /// Delay before the first retry, in milliseconds.
    pub base_delay_ms: u64,
    /// Ceiling on the exponential backoff, in milliseconds.
    pub max_delay_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_retries: 3, base_delay_ms: 10, max_delay_ms: 1_000 }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn none() -> Self {
        RetryPolicy { max_retries: 0, base_delay_ms: 0, max_delay_ms: 0 }
    }

    /// Backoff before retrying after failure number `attempt` (0-based):
    /// exponential `base * 2^attempt` capped at `max_delay_ms`, with
    /// deterministic jitter in `[delay/2, delay]` derived from `task_seed`
    /// — same task, same attempt, same delay, every run.
    pub fn backoff_ms(&self, attempt: u32, task_seed: u64) -> u64 {
        let exp = self.base_delay_ms.saturating_mul(1u64 << attempt.min(20)).min(self.max_delay_ms);
        if exp == 0 {
            return 0;
        }
        let jitter = derive_seed(task_seed, 0xB0FF ^ u64::from(attempt));
        exp / 2 + jitter % (exp / 2 + 1)
    }

    /// Runs `f` (passed the 0-based attempt number) until it succeeds, fails
    /// fatally, or exhausts the retry budget. Only errors whose
    /// [`CsbError::is_transient`] is true are retried; a fatal error aborts
    /// immediately and exhaustion returns [`CsbError::RetryExhausted`].
    pub fn run<T>(
        &self,
        task_seed: u64,
        mut f: impl FnMut(u32) -> Result<T, CsbError>,
    ) -> Result<T, CsbError> {
        let mut attempt = 0u32;
        loop {
            match f(attempt) {
                Ok(v) => return Ok(v),
                Err(e) if !e.is_transient() => return Err(e),
                Err(e) => {
                    csb_obs::counter_add("engine.task_failures", 1);
                    if attempt >= self.max_retries {
                        return Err(CsbError::RetryExhausted {
                            attempts: attempt + 1,
                            last: Box::new(e),
                        });
                    }
                    let delay = self.backoff_ms(attempt, task_seed);
                    if delay > 0 {
                        std::thread::sleep(Duration::from_millis(delay));
                    }
                    csb_obs::counter_add("engine.task_retries", 1);
                    attempt += 1;
                }
            }
        }
    }
}

/// Injects failures into engine tasks for resilience testing: each task
/// attempt independently fails with `failure_probability`, decided
/// deterministically from `(seed, task, attempt)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Probability in `[0, 1]` that any single task attempt fails.
    pub failure_probability: f64,
    /// Seed of the fault stream (independent of the generator's data seed).
    pub seed: u64,
}

impl FaultConfig {
    /// True when attempt `attempt` of the task identified by `task_seed`
    /// should fail. Pure: the same triple always decides the same way.
    pub fn should_fail(&self, task_seed: u64, attempt: u32) -> bool {
        let h = derive_seed(self.seed, derive_seed(task_seed, u64::from(attempt)));
        // Top 53 bits to a uniform f64 in [0, 1).
        ((h >> 11) as f64 / (1u64 << 53) as f64) < self.failure_probability
    }
}

/// Per-task policy carried by every [`Pdd`]: a retry budget plus an optional
/// fault injector. Cloning shares the operation counter, so datasets derived
/// from one another number their operators globally.
///
/// [`Pdd`]: crate::dataset::Pdd
#[derive(Debug, Clone, Default)]
pub struct TaskPolicy {
    /// Retry budget and backoff shape.
    pub retry: RetryPolicy,
    /// Fault injector; `None` (the default) makes [`TaskPolicy::gate`] free.
    pub fault: Option<FaultConfig>,
    op_counter: Arc<AtomicU64>,
}

impl TaskPolicy {
    /// A policy with the given retry budget and no fault injection.
    pub fn new(retry: RetryPolicy) -> Self {
        TaskPolicy { retry, fault: None, op_counter: Arc::new(AtomicU64::new(0)) }
    }

    /// Adds a fault injector.
    pub fn with_fault(mut self, fault: FaultConfig) -> Self {
        self.fault = Some(fault);
        self
    }

    /// Allocates the next operator id (one per `Pdd` operator invocation, so
    /// each (operator, partition) task has a distinct fault/backoff stream).
    pub fn next_op(&self) -> u64 {
        self.op_counter.fetch_add(1, Ordering::Relaxed)
    }

    /// Task gate: called at the top of a per-partition task. With no fault
    /// injector this returns immediately. With one, the task "fails" with
    /// the configured probability and is retried under the retry policy —
    /// delaying, never changing data.
    ///
    /// # Panics
    /// Panics when the retry budget is exhausted — inside the infallible
    /// `Pdd` operators there is no error channel, matching how shuffle-spill
    /// I/O failures are handled.
    pub fn gate(&self, op: u64, partition: usize) {
        let Some(fault) = self.fault else { return };
        let task_seed = derive_seed(fault.seed, (op << 20) | partition as u64);
        self.retry
            .run(task_seed, |attempt| {
                if fault.should_fail(task_seed, attempt) {
                    Err(CsbError::Transient(format!(
                        "injected fault: op {op}, partition {partition}, attempt {attempt}"
                    )))
                } else {
                    Ok(())
                }
            })
            .unwrap_or_else(|e| {
                panic!("engine task (op {op}, partition {partition}) gave up: {e}")
            });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_and_exponential() {
        let p = RetryPolicy { max_retries: 10, base_delay_ms: 8, max_delay_ms: 100 };
        for attempt in 0..6 {
            let a = p.backoff_ms(attempt, 42);
            let b = p.backoff_ms(attempt, 42);
            assert_eq!(a, b, "same (attempt, seed) must give the same delay");
            let exp = (8u64 << attempt).min(100);
            assert!(
                a >= exp / 2 && a <= exp,
                "attempt {attempt}: {a} outside [{}, {exp}]",
                exp / 2
            );
        }
        // The cap holds for absurd attempt numbers without overflow.
        assert!(p.backoff_ms(63, 1) <= 100);
        // Different task seeds jitter differently (for at least one attempt).
        assert!((0..6).any(|a| p.backoff_ms(a, 1) != p.backoff_ms(a, 2)));
    }

    #[test]
    fn zero_base_delay_never_sleeps() {
        let p = RetryPolicy { max_retries: 3, base_delay_ms: 0, max_delay_ms: 50 };
        for attempt in 0..4 {
            assert_eq!(p.backoff_ms(attempt, 7), 0);
        }
    }

    #[test]
    fn run_retries_transient_until_success() {
        let p = RetryPolicy { max_retries: 5, base_delay_ms: 0, max_delay_ms: 0 };
        let mut calls = 0u32;
        let out = p.run(1, |attempt| {
            calls += 1;
            if attempt < 3 {
                Err(CsbError::Transient("flaky".into()))
            } else {
                Ok(attempt)
            }
        });
        assert_eq!(out.unwrap(), 3);
        assert_eq!(calls, 4, "three failures then success");
    }

    #[test]
    fn run_classifies_exhaustion_and_fatal_errors() {
        let p = RetryPolicy { max_retries: 2, base_delay_ms: 0, max_delay_ms: 0 };
        // Always-transient exhausts the budget: 1 try + 2 retries.
        let err = p.run(1, |_| Err::<(), _>(CsbError::Transient("still down".into()))).unwrap_err();
        match err {
            CsbError::RetryExhausted { attempts, last } => {
                assert_eq!(attempts, 3);
                assert!(last.is_transient());
            }
            other => panic!("expected RetryExhausted, got {other}"),
        }
        // A fatal error aborts on the first attempt — no retries.
        let mut calls = 0u32;
        let err = p
            .run(1, |_| {
                calls += 1;
                Err::<(), _>(CsbError::Config("bad flag".into()))
            })
            .unwrap_err();
        assert!(matches!(err, CsbError::Config(_)));
        assert_eq!(calls, 1, "fatal errors must not be retried");
    }

    #[test]
    fn fault_decisions_are_deterministic_and_roughly_calibrated() {
        let f = FaultConfig { failure_probability: 0.1, seed: 99 };
        let fails: usize = (0..10_000).filter(|&t| f.should_fail(t, 0)).count();
        assert!((700..1300).contains(&fails), "10% of 10k tasks, got {fails}");
        for t in 0..100 {
            assert_eq!(f.should_fail(t, 0), f.should_fail(t, 0));
        }
        assert!((0..10_000u64)
            .all(|t| !FaultConfig { failure_probability: 0.0, seed: 1 }.should_fail(t, 0)));
        assert!((0..100u64)
            .all(|t| FaultConfig { failure_probability: 1.0, seed: 1 }.should_fail(t, 0)));
    }

    #[test]
    fn gate_without_faults_is_free_and_with_faults_recovers() {
        let clean = TaskPolicy::default();
        clean.gate(clean.next_op(), 0); // must not panic or sleep

        let flaky =
            TaskPolicy::new(RetryPolicy { max_retries: 60, base_delay_ms: 0, max_delay_ms: 0 })
                .with_fault(FaultConfig { failure_probability: 0.3, seed: 7 });
        // With a generous budget every task eventually passes the gate.
        for partition in 0..64 {
            flaky.gate(flaky.next_op(), partition);
        }
    }

    #[test]
    #[should_panic(expected = "gave up")]
    fn gate_panics_when_exhausted() {
        let doomed = TaskPolicy::new(RetryPolicy::none())
            .with_fault(FaultConfig { failure_probability: 1.0, seed: 1 });
        doomed.gate(doomed.next_op(), 0);
    }

    #[test]
    fn cloned_policies_share_the_op_counter() {
        let a = TaskPolicy::default();
        let b = a.clone();
        assert_eq!(a.next_op(), 0);
        assert_eq!(b.next_op(), 1);
        assert_eq!(a.next_op(), 2);
    }
}
