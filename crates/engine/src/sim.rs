//! The simulated cluster: converts a generation job description into
//! simulated wall-clock time and per-node memory using the
//! [`CostModel`] — the layer that regenerates the paper's Figures 8-12 at
//! paper scale on a laptop.

use crate::cluster::ClusterConfig;
use crate::costmodel::CostModel;
use crate::metrics::JobMetrics;

/// Which generator a simulated job runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GenAlgorithm {
    /// Property-Graph Parallel Barabási-Albert with the given `fraction`
    /// parameter (new vertices per iteration as a fraction of current edges).
    Pgpba {
        /// The PGPBA `fraction` parameter.
        fraction: f64,
    },
    /// Property-Graph Stochastic Kronecker.
    Pgsk,
}

/// A generation job to simulate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenJob {
    /// Generator and parameters.
    pub algorithm: GenAlgorithm,
    /// Target synthetic size, edges.
    pub edges: u64,
    /// Seed graph size, edges (the paper's seed: 1,940,814).
    pub seed_edges: u64,
    /// Whether edge/vertex attributes are generated (paper Fig. 10 measures
    /// the overhead of turning this on).
    pub with_properties: bool,
}

/// Simulated outcome of a job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimReport {
    /// End-to-end simulated time, seconds.
    pub total_secs: f64,
    /// Compute portion, seconds.
    pub compute_secs: f64,
    /// Shuffle (network + serialization) portion, seconds.
    pub shuffle_secs: f64,
    /// Synchronization-barrier portion, seconds.
    pub barrier_secs: f64,
    /// Per-node resident memory at peak, GB.
    pub memory_per_node_gb: f64,
    /// Edges per second of simulated throughput.
    pub throughput_eps: f64,
    /// Synchronization rounds (generator iterations).
    pub iterations: u32,
}

/// A cluster plus cost model, ready to simulate jobs.
#[derive(Debug, Clone, Copy)]
pub struct SimCluster {
    cluster: ClusterConfig,
    model: CostModel,
}

impl SimCluster {
    /// Binds a cost model to a cluster.
    pub fn new(cluster: ClusterConfig, model: CostModel) -> Self {
        SimCluster { cluster, model }
    }

    /// The cluster description.
    pub fn cluster(&self) -> &ClusterConfig {
        &self.cluster
    }

    /// The cost model.
    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// Number of generator iterations (synchronization rounds) a job needs.
    ///
    /// * PGPBA grows the edge set by roughly `(1 + fraction)` per iteration
    ///   (paper Section V: "12 iterations with fraction = 2" reach 9.6x10^9
    ///   edges), so `iters = ceil(log(E/E0) / log(1 + fraction))`.
    /// * PGSK doubles per Kronecker iteration but needs extra rounds because
    ///   `distinct()` discards conflicting descents (paper: 30 iterations for
    ///   6x10^9 edges): `iters = ceil(1.5 * log2(E / E_p))` with the
    ///   deduplicated seed `E_p ~ E0 / 4`.
    pub fn iterations(&self, job: &GenJob) -> u32 {
        let e = job.edges.max(2) as f64;
        match job.algorithm {
            GenAlgorithm::Pgpba { fraction } => {
                assert!(fraction > 0.0, "fraction must be positive");
                let e0 = job.seed_edges.max(1) as f64;
                if e <= e0 {
                    1
                } else {
                    ((e / e0).ln() / (1.0 + fraction).ln()).ceil().max(1.0) as u32
                }
            }
            GenAlgorithm::Pgsk => {
                let ep = (job.seed_edges as f64 / 4.0).max(1.0);
                let base = if e <= ep { 1.0 } else { (e / ep).log2() };
                (1.5 * base).ceil().max(1.0) as u32
            }
        }
    }

    /// Simulates one generation job.
    pub fn simulate(&self, job: &GenJob) -> SimReport {
        let _span = csb_obs::span_cat("sim.simulate", "engine");
        let m = &self.model;
        let c = &self.cluster;
        let e = job.edges as f64;
        let cores = c.effective_cores_total() as f64;
        let iterations = self.iterations(job);

        let gen_ns = match job.algorithm {
            GenAlgorithm::Pgpba { .. } => m.pgpba_ns_per_edge,
            GenAlgorithm::Pgsk => m.pgsk_ns_per_edge,
        };
        let prop_ns = if job.with_properties { m.property_ns_per_edge } else { 0.0 };
        let compute_secs = e * (gen_ns + prop_ns) / 1e9 / cores;

        // Only PGSK shuffles (its per-iteration distinct); PGPBA's stages are
        // map-side only. Each node moves ~E/nodes records over its own link.
        let shuffle_secs = match job.algorithm {
            GenAlgorithm::Pgsk => {
                let bytes_per_node = e * m.shuffle_bytes_per_record / c.nodes as f64;
                let bits = bytes_per_node * 8.0;
                bits / (c.network_gbps * 1e9)
            }
            GenAlgorithm::Pgpba { .. } => 0.0,
        };

        let barrier_secs =
            iterations as f64 * (m.barrier_base_secs + m.barrier_per_node_secs * c.nodes as f64);

        let total_secs = m.job_overhead_secs + compute_secs + shuffle_secs + barrier_secs;
        let memory_per_node_gb =
            m.platform_memory_gb + e * m.memory_bytes_per_edge / c.nodes as f64 / 1e9;
        csb_obs::obs_debug!(
            "simulated {:?} at {} edges on {} nodes: {total_secs:.1}s, {iterations} iterations",
            job.algorithm,
            job.edges,
            c.nodes
        );

        SimReport {
            total_secs,
            compute_secs,
            shuffle_secs,
            barrier_secs,
            memory_per_node_gb,
            throughput_eps: e / total_secs,
            iterations,
        }
    }
}

impl SimCluster {
    /// Projects a *real* engine run (its recorded operator metrics) onto
    /// this cluster: per-record compute at `ns_per_record`, shuffle volume
    /// from the recorded shuffled-record counts, one synchronization round
    /// per shuffling operator. Peak memory takes the largest single
    /// operator's output as the resident dataset.
    ///
    /// This is the bridge between laptop-scale engine runs and paper-scale
    /// projections: run the distributed generator small, then ask "what
    /// would this dataflow cost on Shadow II".
    pub fn estimate_from_metrics(&self, metrics: &JobMetrics, ns_per_record: f64) -> SimReport {
        let _span = csb_obs::span_cat("sim.estimate_from_metrics", "engine");
        let m = &self.model;
        let c = &self.cluster;
        let ops = metrics.ops();
        let records: u64 = ops.iter().map(|o| o.records_out).sum();
        let shuffled: u64 = ops.iter().map(|o| o.shuffled).sum();
        let rounds = ops.iter().filter(|o| o.shuffled > 0).count().max(1) as u32;
        let resident = ops.iter().map(|o| o.records_out).max().unwrap_or(0);

        let compute_secs = records as f64 * ns_per_record / 1e9 / c.effective_cores_total() as f64;
        let shuffle_secs = shuffled as f64 * m.shuffle_bytes_per_record * 8.0
            / (c.nodes as f64 * c.network_gbps * 1e9);
        let barrier_secs =
            rounds as f64 * (m.barrier_base_secs + m.barrier_per_node_secs * c.nodes as f64);
        let total_secs = m.job_overhead_secs + compute_secs + shuffle_secs + barrier_secs;
        SimReport {
            total_secs,
            compute_secs,
            shuffle_secs,
            barrier_secs,
            memory_per_node_gb: m.platform_memory_gb
                + resident as f64 * m.memory_bytes_per_edge / c.nodes as f64 / 1e9,
            throughput_eps: records as f64 / total_secs,
            iterations: rounds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEED_EDGES: u64 = 1_940_814;

    fn job(algorithm: GenAlgorithm, edges: u64) -> GenJob {
        GenJob { algorithm, edges, seed_edges: SEED_EDGES, with_properties: true }
    }

    #[test]
    fn single_node_throughput_saturates_at_12_cores() {
        // Paper Fig. 8: throughput rises with executor cores then flattens.
        let model = CostModel::default();
        let tp = |cores: usize| {
            let sim = SimCluster::new(ClusterConfig::shadow_ii_single_node(cores), model);
            sim.simulate(&job(GenAlgorithm::Pgpba { fraction: 2.0 }, 100_000_000)).throughput_eps
        };
        assert!(tp(4) > tp(1) * 2.0);
        assert!(tp(12) > tp(6) * 1.4);
        let plateau = (tp(20) - tp(12)).abs() / tp(12);
        assert!(plateau < 0.01, "throughput should plateau after 12 cores ({plateau})");
    }

    #[test]
    fn generation_time_linear_in_edges() {
        // Paper Fig. 9: both algorithms linear in size; PGPBA faster.
        // In the regime where compute dominates fixed job/barrier overhead
        // (the right-hand side of Fig. 9), quadrupling the size must roughly
        // quadruple the time.
        let sim = SimCluster::new(ClusterConfig::shadow_ii(60), CostModel::default());
        for alg in [GenAlgorithm::Pgpba { fraction: 2.0 }, GenAlgorithm::Pgsk] {
            let t1 = sim.simulate(&job(alg, 5_000_000_000)).total_secs;
            let t4 = sim.simulate(&job(alg, 20_000_000_000)).total_secs;
            let ratio = t4 / t1;
            assert!((3.0..5.0).contains(&ratio), "{alg:?} scaling ratio {ratio}");
        }
        let ba = sim.simulate(&job(GenAlgorithm::Pgpba { fraction: 2.0 }, 4_000_000_000));
        let sk = sim.simulate(&job(GenAlgorithm::Pgsk, 4_000_000_000));
        assert!(ba.total_secs < sk.total_secs, "PGPBA must beat PGSK");
    }

    #[test]
    fn twenty_billion_edges_under_an_hour_on_60_nodes() {
        // Paper abstract: billions of edges in under an hour on 60 nodes.
        let sim = SimCluster::new(ClusterConfig::shadow_ii(60), CostModel::default());
        let r = sim.simulate(&job(GenAlgorithm::Pgpba { fraction: 2.0 }, 20_000_000_000));
        assert!(r.total_secs < 3600.0, "took {} s", r.total_secs);
    }

    #[test]
    fn property_overhead_matches_fig10() {
        let sim = SimCluster::new(ClusterConfig::shadow_ii(60), CostModel::default());
        let with = |alg, props| {
            let mut j = job(alg, 10_000_000_000);
            j.with_properties = props;
            sim.simulate(&j).compute_secs
        };
        let ba_ovh = with(GenAlgorithm::Pgpba { fraction: 2.0 }, true)
            / with(GenAlgorithm::Pgpba { fraction: 2.0 }, false)
            - 1.0;
        let sk_ovh = with(GenAlgorithm::Pgsk, true) / with(GenAlgorithm::Pgsk, false) - 1.0;
        assert!((ba_ovh - 0.5).abs() < 0.02, "PGPBA property overhead {ba_ovh}");
        assert!((sk_ovh - 0.3).abs() < 0.02, "PGSK property overhead {sk_ovh}");
    }

    #[test]
    fn memory_flat_then_linear() {
        // Paper Fig. 11: ~constant below 1e8 edges, linear to ~300 GB at 2e10.
        let sim = SimCluster::new(ClusterConfig::shadow_ii(60), CostModel::default());
        let mem =
            |e| sim.simulate(&job(GenAlgorithm::Pgpba { fraction: 2.0 }, e)).memory_per_node_gb;
        assert!(mem(1_000_000) < 10.0);
        assert!((mem(100_000_000) - mem(1_000_000)) / mem(1_000_000) < 0.25);
        let big = mem(20_000_000_000);
        assert!((250.0..400.0).contains(&big), "memory at 2e10: {big} GB");
    }

    #[test]
    fn strong_scaling_pgpba_near_ideal_pgsk_below() {
        // Paper Fig. 12: fixed sizes (9.6e9 PGPBA / 6e9 PGSK), nodes 10->60.
        let speedup = |alg, edges| {
            let t10 = SimCluster::new(ClusterConfig::shadow_ii(10), CostModel::default())
                .simulate(&job(alg, edges))
                .total_secs;
            let t60 = SimCluster::new(ClusterConfig::shadow_ii(60), CostModel::default())
                .simulate(&job(alg, edges))
                .total_secs;
            t10 / t60
        };
        let ba = speedup(GenAlgorithm::Pgpba { fraction: 2.0 }, 9_600_000_000);
        let sk = speedup(GenAlgorithm::Pgsk, 6_000_000_000);
        assert!(ba > 4.5, "PGPBA speedup {ba} should be near ideal 6");
        assert!(sk < ba, "PGSK ({sk}) must scale worse than PGPBA ({ba})");
        assert!(sk > 2.0, "PGSK should still scale, got {sk}");
    }

    #[test]
    fn iteration_counts_in_paper_ballpark() {
        let sim = SimCluster::new(ClusterConfig::shadow_ii(10), CostModel::default());
        // Paper: 12 iterations (fraction 2) for 9.6e9; 30 for PGSK at 6e9.
        let ba = sim.iterations(&job(GenAlgorithm::Pgpba { fraction: 2.0 }, 9_600_000_000));
        assert!((6..=14).contains(&ba), "PGPBA iterations {ba}");
        let sk = sim.iterations(&job(GenAlgorithm::Pgsk, 6_000_000_000));
        assert!((20..=40).contains(&sk), "PGSK iterations {sk}");
    }

    #[test]
    fn estimate_from_metrics_tracks_recorded_work() {
        let sim = SimCluster::new(ClusterConfig::shadow_ii(10), CostModel::default());
        let small = crate::metrics::JobMetrics::new();
        small.record("map", 1000, 1000, 0);
        let big = crate::metrics::JobMetrics::new();
        big.record("map", 1_000_000, 1_000_000, 0);
        big.record("distinct", 1_000_000, 900_000, 1_000_000);
        let rs = sim.estimate_from_metrics(&small, 30_000.0);
        let rb = sim.estimate_from_metrics(&big, 30_000.0);
        assert!(rb.compute_secs > rs.compute_secs * 100.0);
        assert!(rb.shuffle_secs > 0.0);
        assert_eq!(rs.iterations, 1);
        assert!(rb.barrier_secs > 0.0);
        assert!(rb.memory_per_node_gb >= rs.memory_per_node_gb);
    }

    #[test]
    fn smaller_than_seed_is_one_iteration() {
        let sim = SimCluster::new(ClusterConfig::shadow_ii(1), CostModel::default());
        assert_eq!(sim.iterations(&job(GenAlgorithm::Pgpba { fraction: 0.5 }, 1000)), 1);
    }
}
