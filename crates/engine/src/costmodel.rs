//! The calibrated cost model translating operator record counts into
//! simulated cluster time and memory.
//!
//! Constants are *Spark-shaped*, not Rust-shaped: the paper's platform is
//! Spark/GraphX on the JVM, where per-record costs are tens of microseconds
//! (object churn, serialization) and per-edge memory is close to a kilobyte
//! (boxed tuples + RDD lineage). Defaults are chosen so the model lands in
//! the paper's reported envelope — "billions of edges in less than an hour
//! on 60 compute nodes", ~300 GB/node at 2x10^10 edges — and, critically, so
//! that the *relationships* the paper measures hold structurally:
//!
//! * property generation costs the same per edge for both generators, which
//!   makes it a ~50% overhead for the faster PGPBA and ~30% for the slower
//!   PGSK (paper Fig. 10 commentary);
//! * PGSK pays a per-iteration `distinct()` shuffle whose barrier cost grows
//!   with the node count, which is what pulls its strong-scaling curve below
//!   PGPBA's near-ideal one (paper Fig. 12).
//!
//! `CostModel::calibrate_from_measurement` lets a harness rescale the compute
//! constants from a measured in-process run instead.

/// Per-record and per-platform cost constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// PGPBA edge-generation cost, ns per produced edge per core.
    pub pgpba_ns_per_edge: f64,
    /// PGSK edge-generation cost (recursive descent + dedup CPU), ns per
    /// produced edge per core.
    pub pgsk_ns_per_edge: f64,
    /// Attribute-generation cost, ns per edge per core (same function for
    /// both generators — paper Fig. 10).
    pub property_ns_per_edge: f64,
    /// Serialized size of one shuffled edge record, bytes.
    pub shuffle_bytes_per_record: f64,
    /// Fixed job-submission overhead, seconds.
    pub job_overhead_secs: f64,
    /// Per-synchronization-round base latency, seconds.
    pub barrier_base_secs: f64,
    /// Additional per-round latency per participating node, seconds
    /// (stragglers + all-to-all coordination).
    pub barrier_per_node_secs: f64,
    /// Resident platform overhead per node, GB (JVM, Spark daemons, cached
    /// metadata) — the flat left side of the paper's Fig. 11.
    pub platform_memory_gb: f64,
    /// In-memory footprint of one materialized property-edge, bytes.
    pub memory_bytes_per_edge: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            pgpba_ns_per_edge: 30_000.0,
            pgsk_ns_per_edge: 50_000.0,
            property_ns_per_edge: 15_000.0,
            shuffle_bytes_per_record: 48.0,
            job_overhead_secs: 30.0,
            barrier_base_secs: 2.0,
            barrier_per_node_secs: 0.05,
            platform_memory_gb: 8.0,
            memory_bytes_per_edge: 900.0,
        }
    }
}

impl CostModel {
    /// Rescales the compute constants so that PGPBA's per-edge cost matches a
    /// measured value, preserving the PGSK/property ratios (5/3 and 1/2 of
    /// PGPBA respectively, the ratios implied by the paper's Figs. 9-10).
    pub fn calibrate_from_measurement(pgpba_ns_per_edge: f64) -> Self {
        assert!(
            pgpba_ns_per_edge.is_finite() && pgpba_ns_per_edge > 0.0,
            "measured cost must be positive"
        );
        CostModel {
            pgpba_ns_per_edge,
            pgsk_ns_per_edge: pgpba_ns_per_edge * 5.0 / 3.0,
            property_ns_per_edge: pgpba_ns_per_edge * 0.5,
            ..Self::default()
        }
    }

    /// Calibrates all three compute constants from the stamped numbers in a
    /// `BENCH_materialize.json` file (see `crates/bench` for the schema):
    /// per-edge generation cost from each generator's `grow_secs +
    /// inflate_secs` over its `edges`, and the shared property cost from
    /// PGPBA's `attach_secs`. Platform constants (memory, barriers, job
    /// overhead) keep their defaults — the bench is single-node and says
    /// nothing about them. Admission control fed from this model predicts
    /// with *measured* throughput instead of the paper's Spark-shaped
    /// defaults.
    pub fn calibrate_from_bench(
        path: impl AsRef<std::path::Path>,
    ) -> Result<Self, csb_store::CsbError> {
        let text = std::fs::read_to_string(path.as_ref())?;
        let v = csb_obs::json::parse_json(&text).map_err(|e| {
            csb_store::CsbError::Input(format!(
                "{} is not valid JSON: {e}",
                path.as_ref().display()
            ))
        })?;
        let section_ns_per_edge =
            |section: &str, field: &str| -> Result<f64, csb_store::CsbError> {
                let missing = |what: &str| {
                    csb_store::CsbError::Input(format!(
                        "{}: missing or non-numeric {what}",
                        path.as_ref().display()
                    ))
                };
                let s = v.get(section).ok_or_else(|| missing(section))?;
                let edges = s
                    .get("edges")
                    .and_then(csb_obs::json::JsonValue::as_f64)
                    .ok_or_else(|| missing(&format!("{section}.edges")))?;
                if edges <= 0.0 {
                    return Err(missing(&format!("{section}.edges (must be positive)")));
                }
                let mut secs = 0.0;
                for f in field.split('+') {
                    secs += s
                        .get(f)
                        .and_then(csb_obs::json::JsonValue::as_f64)
                        .ok_or_else(|| missing(&format!("{section}.{f}")))?;
                }
                Ok((secs * 1e9 / edges).max(1.0))
            };
        Ok(CostModel {
            pgpba_ns_per_edge: section_ns_per_edge("pgpba", "grow_secs+inflate_secs")?,
            pgsk_ns_per_edge: section_ns_per_edge("pgsk", "grow_secs+inflate_secs")?,
            property_ns_per_edge: section_ns_per_edge("pgpba", "attach_secs")?,
            ..Self::default()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn property_overhead_ratios_match_paper() {
        let m = CostModel::default();
        // ~50% of PGPBA's base cost, ~30% of PGSK's.
        assert!((m.property_ns_per_edge / m.pgpba_ns_per_edge - 0.5).abs() < 1e-9);
        assert!((m.property_ns_per_edge / m.pgsk_ns_per_edge - 0.3).abs() < 1e-9);
    }

    #[test]
    fn billions_per_hour_envelope() {
        // 2e10 edges of PGPBA on 60 nodes x 12 cores must be under an hour.
        let m = CostModel::default();
        let cores = 60.0 * 12.0;
        let secs = 2e10 * (m.pgpba_ns_per_edge + m.property_ns_per_edge) / 1e9 / cores;
        assert!(secs < 3600.0, "PGPBA 2e10 edges took {secs} s");
    }

    #[test]
    fn calibration_preserves_ratios() {
        let m = CostModel::calibrate_from_measurement(120.0);
        assert_eq!(m.pgpba_ns_per_edge, 120.0);
        assert!((m.pgsk_ns_per_edge - 200.0).abs() < 1e-9);
        assert!((m.property_ns_per_edge - 60.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn bad_calibration_panics() {
        let _ = CostModel::calibrate_from_measurement(-1.0);
    }

    #[test]
    fn calibrate_from_bench_uses_stamped_numbers() {
        let dir = std::env::temp_dir().join(format!("csb-costmodel-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_materialize.json");
        // 1e6 edges in 0.05 s grow → 50 ns/edge; attach 0.1 s → 100 ns/edge.
        std::fs::write(
            &path,
            "{\"bench\":\"materialize\",\
             \"pgpba\":{\"edges\":1000000,\"grow_secs\":0.04,\"inflate_secs\":0.01,\
             \"attach_secs\":0.1},\
             \"pgsk\":{\"edges\":2000000,\"grow_secs\":0.15,\"inflate_secs\":0.05,\
             \"attach_secs\":0.2}}",
        )
        .unwrap();
        let m = CostModel::calibrate_from_bench(&path).expect("must calibrate");
        assert!((m.pgpba_ns_per_edge - 50.0).abs() < 1e-6, "{}", m.pgpba_ns_per_edge);
        assert!((m.pgsk_ns_per_edge - 100.0).abs() < 1e-6, "{}", m.pgsk_ns_per_edge);
        assert!((m.property_ns_per_edge - 100.0).abs() < 1e-6, "{}", m.property_ns_per_edge);
        // Platform constants stay at their defaults.
        assert_eq!(m.memory_bytes_per_edge, CostModel::default().memory_bytes_per_edge);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn calibrate_from_bench_rejects_bad_files() {
        let dir = std::env::temp_dir().join(format!("csb-costmodel-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let missing = dir.join("nope.json");
        assert!(CostModel::calibrate_from_bench(&missing).is_err(), "missing file must error");
        let garbage = dir.join("garbage.json");
        std::fs::write(&garbage, "not json at all").unwrap();
        assert!(CostModel::calibrate_from_bench(&garbage).is_err(), "garbage must error");
        let incomplete = dir.join("incomplete.json");
        std::fs::write(&incomplete, "{\"pgpba\":{\"edges\":0}}").unwrap();
        assert!(CostModel::calibrate_from_bench(&incomplete).is_err(), "zero edges must error");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn calibrate_from_bench_reads_the_checked_in_file() {
        // The repo root's stamped BENCH_materialize.json must stay parseable.
        let path =
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_materialize.json");
        if !path.is_file() {
            return;
        }
        let m = CostModel::calibrate_from_bench(&path).expect("stamped bench must calibrate");
        assert!(m.pgpba_ns_per_edge >= 1.0);
        assert!(m.pgsk_ns_per_edge >= 1.0);
        assert!(m.property_ns_per_edge >= 1.0);
    }

    #[test]
    fn memory_envelope_matches_fig11() {
        // ~300 GB/node at 2e10 edges on 60 nodes.
        let m = CostModel::default();
        let gb = m.platform_memory_gb + 2e10 * m.memory_bytes_per_edge / 60.0 / 1e9;
        assert!((250.0..400.0).contains(&gb), "memory {gb} GB/node");
    }
}
