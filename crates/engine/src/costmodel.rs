//! The calibrated cost model translating operator record counts into
//! simulated cluster time and memory.
//!
//! Constants are *Spark-shaped*, not Rust-shaped: the paper's platform is
//! Spark/GraphX on the JVM, where per-record costs are tens of microseconds
//! (object churn, serialization) and per-edge memory is close to a kilobyte
//! (boxed tuples + RDD lineage). Defaults are chosen so the model lands in
//! the paper's reported envelope — "billions of edges in less than an hour
//! on 60 compute nodes", ~300 GB/node at 2x10^10 edges — and, critically, so
//! that the *relationships* the paper measures hold structurally:
//!
//! * property generation costs the same per edge for both generators, which
//!   makes it a ~50% overhead for the faster PGPBA and ~30% for the slower
//!   PGSK (paper Fig. 10 commentary);
//! * PGSK pays a per-iteration `distinct()` shuffle whose barrier cost grows
//!   with the node count, which is what pulls its strong-scaling curve below
//!   PGPBA's near-ideal one (paper Fig. 12).
//!
//! `CostModel::calibrate_from_measurement` lets a harness rescale the compute
//! constants from a measured in-process run instead.

/// Per-record and per-platform cost constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// PGPBA edge-generation cost, ns per produced edge per core.
    pub pgpba_ns_per_edge: f64,
    /// PGSK edge-generation cost (recursive descent + dedup CPU), ns per
    /// produced edge per core.
    pub pgsk_ns_per_edge: f64,
    /// Attribute-generation cost, ns per edge per core (same function for
    /// both generators — paper Fig. 10).
    pub property_ns_per_edge: f64,
    /// Serialized size of one shuffled edge record, bytes.
    pub shuffle_bytes_per_record: f64,
    /// Fixed job-submission overhead, seconds.
    pub job_overhead_secs: f64,
    /// Per-synchronization-round base latency, seconds.
    pub barrier_base_secs: f64,
    /// Additional per-round latency per participating node, seconds
    /// (stragglers + all-to-all coordination).
    pub barrier_per_node_secs: f64,
    /// Resident platform overhead per node, GB (JVM, Spark daemons, cached
    /// metadata) — the flat left side of the paper's Fig. 11.
    pub platform_memory_gb: f64,
    /// In-memory footprint of one materialized property-edge, bytes.
    pub memory_bytes_per_edge: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            pgpba_ns_per_edge: 30_000.0,
            pgsk_ns_per_edge: 50_000.0,
            property_ns_per_edge: 15_000.0,
            shuffle_bytes_per_record: 48.0,
            job_overhead_secs: 30.0,
            barrier_base_secs: 2.0,
            barrier_per_node_secs: 0.05,
            platform_memory_gb: 8.0,
            memory_bytes_per_edge: 900.0,
        }
    }
}

impl CostModel {
    /// Rescales the compute constants so that PGPBA's per-edge cost matches a
    /// measured value, preserving the PGSK/property ratios (5/3 and 1/2 of
    /// PGPBA respectively, the ratios implied by the paper's Figs. 9-10).
    pub fn calibrate_from_measurement(pgpba_ns_per_edge: f64) -> Self {
        assert!(
            pgpba_ns_per_edge.is_finite() && pgpba_ns_per_edge > 0.0,
            "measured cost must be positive"
        );
        CostModel {
            pgpba_ns_per_edge,
            pgsk_ns_per_edge: pgpba_ns_per_edge * 5.0 / 3.0,
            property_ns_per_edge: pgpba_ns_per_edge * 0.5,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn property_overhead_ratios_match_paper() {
        let m = CostModel::default();
        // ~50% of PGPBA's base cost, ~30% of PGSK's.
        assert!((m.property_ns_per_edge / m.pgpba_ns_per_edge - 0.5).abs() < 1e-9);
        assert!((m.property_ns_per_edge / m.pgsk_ns_per_edge - 0.3).abs() < 1e-9);
    }

    #[test]
    fn billions_per_hour_envelope() {
        // 2e10 edges of PGPBA on 60 nodes x 12 cores must be under an hour.
        let m = CostModel::default();
        let cores = 60.0 * 12.0;
        let secs = 2e10 * (m.pgpba_ns_per_edge + m.property_ns_per_edge) / 1e9 / cores;
        assert!(secs < 3600.0, "PGPBA 2e10 edges took {secs} s");
    }

    #[test]
    fn calibration_preserves_ratios() {
        let m = CostModel::calibrate_from_measurement(120.0);
        assert_eq!(m.pgpba_ns_per_edge, 120.0);
        assert!((m.pgsk_ns_per_edge - 200.0).abs() < 1e-9);
        assert!((m.property_ns_per_edge - 60.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn bad_calibration_panics() {
        let _ = CostModel::calibrate_from_measurement(-1.0);
    }

    #[test]
    fn memory_envelope_matches_fig11() {
        // ~300 GB/node at 2e10 edges on 60 nodes.
        let m = CostModel::default();
        let gb = m.platform_memory_gb + 2e10 * m.memory_bytes_per_edge / 60.0 / 1e9;
        assert!((250.0..400.0).contains(&gb), "memory {gb} GB/node");
    }
}
