//! `Pdd<T>` — partitioned distributed dataset, the RDD analogue.
//!
//! Operators execute eagerly over real partitions on a [`ThreadPool`] and
//! record their counts into [`JobMetrics`]. The operator set is exactly what
//! the paper's implementations need: `sample` (PGPBA's first preferential-
//! attachment stage uses `RDD.sample()`), `distinct` (PGSK deduplicates
//! conflicting Kronecker descents with `RDD.distinct()`), plus the usual
//! `map` / `flat_map` / `filter` / `union` / `reduce_by_key`.
//!
//! Hash shuffles (`distinct`, `group_by_key`, `reduce_by_key`) can spill to
//! disk: when the estimated shuffle volume exceeds [`SpillConfig::
//! budget_bytes`], producers write bucketed `csb-store` spill files instead
//! of holding every bucket in memory, and consumers read their bucket back
//! from each producer in order — the same gathered record order as the
//! in-memory transpose, so results are identical either way.

use crate::costmodel::CostModel;
use crate::executor::ThreadPool;
use crate::metrics::JobMetrics;
use crate::retry::TaskPolicy;
use csb_stats::rng::rng_for;
use csb_store::{SpillCodec, SpillFile, SpillWriter};
use rand::Rng;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::path::PathBuf;

/// When and where a shuffle spills to disk.
///
/// The estimated shuffle volume is `records × bytes_per_record`; when it
/// exceeds `budget_bytes` the shuffle goes through `csb-store` spill files
/// in `dir`. The default budget is unlimited (never spill), matching the
/// previous all-in-memory behaviour.
#[derive(Debug, Clone)]
pub struct SpillConfig {
    /// In-memory shuffle budget in bytes; `u64::MAX` disables spilling.
    pub budget_bytes: u64,
    /// Estimated serialized size of one shuffled record; defaults to the
    /// cluster cost model's `shuffle_bytes_per_record` so the gate and the
    /// simulated-cluster accounting agree on shuffle volume.
    pub bytes_per_record: f64,
    /// Directory spill files are created in (deleted when the shuffle ends).
    pub dir: PathBuf,
}

impl Default for SpillConfig {
    fn default() -> Self {
        SpillConfig {
            budget_bytes: u64::MAX,
            bytes_per_record: CostModel::default().shuffle_bytes_per_record,
            dir: std::env::temp_dir(),
        }
    }
}

impl SpillConfig {
    /// True when shuffling `records` records should go through disk.
    fn should_spill(&self, records: u64) -> bool {
        records as f64 * self.bytes_per_record > self.budget_bytes as f64
    }
}

/// A dataset split into partitions, processed in parallel.
///
/// ```
/// use csb_engine::{JobMetrics, Pdd, ThreadPool};
///
/// let metrics = JobMetrics::new();
/// let d = Pdd::from_vec((0u64..100).collect(), 8, ThreadPool::new(4), metrics.clone());
/// let distinct_evens = d.map(|x| x / 2).distinct();
/// assert_eq!(distinct_evens.count(), 50);
/// // Every operator reported its record counts for the cluster cost model.
/// assert!(metrics.ops().iter().any(|o| o.op == "distinct" && o.shuffled > 0));
/// ```
#[derive(Debug, Clone)]
pub struct Pdd<T> {
    partitions: Vec<Vec<T>>,
    pool: ThreadPool,
    metrics: JobMetrics,
    spill: SpillConfig,
    tasks: TaskPolicy,
}

impl<T: Send> Pdd<T> {
    /// Distributes `data` round-robin over `partitions` partitions.
    pub fn from_vec(
        data: Vec<T>,
        partitions: usize,
        pool: ThreadPool,
        metrics: JobMetrics,
    ) -> Self {
        let nparts = partitions.max(1);
        let mut parts: Vec<Vec<T>> = (0..nparts)
            .map(|i| Vec::with_capacity(data.len() / nparts + usize::from(i == 0)))
            .collect();
        let n = data.len() as u64;
        for (i, item) in data.into_iter().enumerate() {
            parts[i % nparts].push(item);
        }
        metrics.record("parallelize", 0, n, 0);
        Pdd {
            partitions: parts,
            pool,
            metrics,
            spill: SpillConfig::default(),
            tasks: TaskPolicy::default(),
        }
    }

    /// An empty dataset with the given partitioning.
    pub fn empty(partitions: usize, pool: ThreadPool, metrics: JobMetrics) -> Self {
        let mut parts = Vec::with_capacity(partitions.max(1));
        parts.resize_with(partitions.max(1), Vec::new);
        Pdd {
            partitions: parts,
            pool,
            metrics,
            spill: SpillConfig::default(),
            tasks: TaskPolicy::default(),
        }
    }

    /// Replaces the spill configuration; downstream datasets inherit it.
    pub fn with_spill(mut self, spill: SpillConfig) -> Self {
        self.spill = spill;
        self
    }

    /// The spill configuration shuffles on this dataset use.
    pub fn spill_config(&self) -> &SpillConfig {
        &self.spill
    }

    /// Replaces the task retry/fault policy; downstream datasets inherit it.
    pub fn with_tasks(mut self, tasks: TaskPolicy) -> Self {
        self.tasks = tasks;
        self
    }

    /// The task retry/fault policy this dataset's operators run under.
    pub fn task_policy(&self) -> &TaskPolicy {
        &self.tasks
    }

    /// Total records.
    pub fn count(&self) -> u64 {
        self.partitions.iter().map(|p| p.len() as u64).sum()
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// The metrics accumulator this dataset reports into.
    pub fn metrics(&self) -> &JobMetrics {
        &self.metrics
    }

    /// Gathers all records to the caller ("driver"), draining the dataset.
    pub fn collect(self) -> Vec<T> {
        let mut out = Vec::with_capacity(self.count() as usize);
        for p in self.partitions {
            out.extend(p);
        }
        out
    }

    /// Per-partition record counts.
    pub fn partition_sizes(&self) -> Vec<usize> {
        self.partitions.iter().map(Vec::len).collect()
    }

    /// Element-wise map.
    pub fn map<U: Send, F>(self, f: F) -> Pdd<U>
    where
        F: Fn(T) -> U + Send + Sync,
    {
        let n_in = self.count();
        let op = self.tasks.next_op();
        let tasks = self.tasks;
        let parts = self.pool.map_partitions(self.partitions, |p, part| {
            tasks.gate(op, p);
            part.into_iter().map(&f).collect::<Vec<U>>()
        });
        let out = Pdd {
            partitions: parts,
            pool: self.pool,
            metrics: self.metrics,
            spill: self.spill,
            tasks,
        };
        out.metrics.record("map", n_in, out.count(), 0);
        out
    }

    /// One-to-many map.
    pub fn flat_map<U: Send, I, F>(self, f: F) -> Pdd<U>
    where
        I: IntoIterator<Item = U>,
        F: Fn(T) -> I + Send + Sync,
    {
        let n_in = self.count();
        let op = self.tasks.next_op();
        let tasks = self.tasks;
        let parts = self.pool.map_partitions(self.partitions, |p, part| {
            tasks.gate(op, p);
            part.into_iter().flat_map(&f).collect::<Vec<U>>()
        });
        let out = Pdd {
            partitions: parts,
            pool: self.pool,
            metrics: self.metrics,
            spill: self.spill,
            tasks,
        };
        out.metrics.record("flat_map", n_in, out.count(), 0);
        out
    }

    /// Keeps records satisfying the predicate.
    pub fn filter<F>(self, f: F) -> Pdd<T>
    where
        F: Fn(&T) -> bool + Send + Sync,
    {
        let n_in = self.count();
        let op = self.tasks.next_op();
        let tasks = self.tasks;
        let parts = self.pool.map_partitions(self.partitions, |p, mut part| {
            tasks.gate(op, p);
            part.retain(|x| f(x));
            part
        });
        let out = Pdd {
            partitions: parts,
            pool: self.pool,
            metrics: self.metrics,
            spill: self.spill,
            tasks,
        };
        out.metrics.record("filter", n_in, out.count(), 0);
        out
    }

    /// Bernoulli sample of roughly `fraction` of the records —
    /// `RDD.sample(false, fraction)`, the first stage of PGPBA's two-stage
    /// preferential attachment.
    pub fn sample(&self, fraction: f64, seed: u64) -> Pdd<T>
    where
        T: Clone + Sync,
    {
        assert!((0.0..=1.0).contains(&fraction), "sample fraction must be in [0,1]");
        let n_in = self.count();
        let op = self.tasks.next_op();
        let tasks = self.tasks.clone();
        let mut parts: Vec<(usize, &Vec<T>, Vec<T>)> =
            self.partitions.iter().enumerate().map(|(i, p)| (i, p, Vec::new())).collect();
        self.pool.for_each_partition(&mut parts, |_, slot| {
            let (idx, input, out) = (slot.0, slot.1, &mut slot.2);
            tasks.gate(op, idx);
            let mut rng = rng_for(seed, idx as u64);
            out.extend(input.iter().filter(|_| rng.gen::<f64>() < fraction).cloned());
        });
        let partitions: Vec<Vec<T>> = parts.into_iter().map(|s| s.2).collect();
        let out = Pdd {
            partitions,
            pool: self.pool,
            metrics: self.metrics.clone(),
            spill: self.spill.clone(),
            tasks,
        };
        out.metrics.record("sample", n_in, out.count(), 0);
        out
    }

    /// Map with `(partition, index_in_partition, item)` — the hook
    /// distributed algorithms use to derive deterministic per-record RNG
    /// streams and globally unique ids (via per-partition offsets).
    pub fn map_indexed<U: Send, F>(self, f: F) -> Pdd<U>
    where
        F: Fn(usize, usize, T) -> U + Send + Sync,
    {
        let n_in = self.count();
        let op = self.tasks.next_op();
        let tasks = self.tasks;
        let parts = self.pool.map_partitions(self.partitions, |p, part| {
            tasks.gate(op, p);
            part.into_iter().enumerate().map(|(i, x)| f(p, i, x)).collect::<Vec<U>>()
        });
        let out = Pdd {
            partitions: parts,
            pool: self.pool,
            metrics: self.metrics,
            spill: self.spill,
            tasks,
        };
        out.metrics.record("map_indexed", n_in, out.count(), 0);
        out
    }

    /// Flat-map with `(partition, index_in_partition, item)`.
    pub fn flat_map_indexed<U: Send, I, F>(self, f: F) -> Pdd<U>
    where
        I: IntoIterator<Item = U>,
        F: Fn(usize, usize, T) -> I + Send + Sync,
    {
        let n_in = self.count();
        let op = self.tasks.next_op();
        let tasks = self.tasks;
        let parts = self.pool.map_partitions(self.partitions, |p, part| {
            tasks.gate(op, p);
            part.into_iter().enumerate().flat_map(|(i, x)| f(p, i, x)).collect::<Vec<U>>()
        });
        let out = Pdd {
            partitions: parts,
            pool: self.pool,
            metrics: self.metrics,
            spill: self.spill,
            tasks,
        };
        out.metrics.record("flat_map_indexed", n_in, out.count(), 0);
        out
    }

    /// Sample *with replacement*: each record contributes `Poisson(fraction)`
    /// copies — `RDD.sample(true, fraction)` in Spark terms, which is what
    /// lets PGPBA run with `fraction = 2` (the paper's performance setting).
    pub fn sample_with_replacement(&self, fraction: f64, seed: u64) -> Pdd<T>
    where
        T: Clone + Sync,
    {
        assert!(fraction >= 0.0 && fraction.is_finite(), "fraction must be non-negative");
        let n_in = self.count();
        let op = self.tasks.next_op();
        let tasks = self.tasks.clone();
        let mut parts: Vec<(usize, &Vec<T>, Vec<T>)> =
            self.partitions.iter().enumerate().map(|(i, p)| (i, p, Vec::new())).collect();
        self.pool.for_each_partition(&mut parts, |_, slot| {
            let (idx, input, out) = (slot.0, slot.1, &mut slot.2);
            tasks.gate(op, idx);
            let mut rng = rng_for(seed, 0x5A17 ^ idx as u64);
            for x in input.iter() {
                for _ in 0..poisson(fraction, &mut rng) {
                    out.push(x.clone());
                }
            }
        });
        let partitions: Vec<Vec<T>> = parts.into_iter().map(|s| s.2).collect();
        let out = Pdd {
            partitions,
            pool: self.pool,
            metrics: self.metrics.clone(),
            spill: self.spill.clone(),
            tasks,
        };
        out.metrics.record("sample_with_replacement", n_in, out.count(), 0);
        out
    }

    /// Concatenates two datasets (keeps left's partition count by merging
    /// pairwise, wrapping the extra partitions around).
    pub fn union(mut self, other: Pdd<T>) -> Pdd<T> {
        let n = self.partitions.len();
        for (i, part) in other.partitions.into_iter().enumerate() {
            self.partitions[i % n].extend(part);
        }
        self.metrics.record("union", 0, self.count(), 0);
        self
    }
}

/// Knuth's Poisson sampler — fine for the small means (fractions) used here.
fn poisson<R: Rng>(lambda: f64, rng: &mut R) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    let l = (-lambda).exp();
    let mut k = 0u64;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
    }
}

fn hash_of<T: Hash>(x: &T) -> u64 {
    // FxHash-style multiply-xor; cheap and adequate for partitioning.
    struct Fx(u64);
    impl Hasher for Fx {
        fn finish(&self) -> u64 {
            self.0
        }
        fn write(&mut self, bytes: &[u8]) {
            for &b in bytes {
                self.0 = (self.0 ^ b as u64).wrapping_mul(0x100_0000_01b3);
            }
        }
    }
    let mut h = Fx(0xcbf2_9ce4_8422_2325);
    x.hash(&mut h);
    h.finish()
}

/// Hash shuffle shared by `distinct` / `group_by_key` / `reduce_by_key`:
/// routes every record to the partition `bucket_of` names and returns the
/// gathered partitions plus the shuffled record count.
///
/// Below the spill budget this is the in-memory transpose; above it each
/// producer writes its buckets to a `csb-store` spill file and each consumer
/// reads its bucket back from every producer *in producer order* — the same
/// gathered order as the transpose, so downstream results are identical.
fn hash_shuffle<T, F>(
    pool: &ThreadPool,
    spill: &SpillConfig,
    partitions: Vec<Vec<T>>,
    bucket_of: F,
) -> (Vec<Vec<T>>, u64)
where
    T: Send + SpillCodec,
    F: Fn(&T) -> usize + Send + Sync,
{
    let nparts = partitions.len();
    let n_in: u64 = partitions.iter().map(|p| p.len() as u64).sum();
    if !spill.should_spill(n_in) {
        // Shuffle write: bucket every record by hash.
        let bucketed: Vec<Vec<Vec<T>>> = pool.map_partitions(partitions, |_, part| {
            let mut buckets: Vec<Vec<T>> = Vec::with_capacity(nparts);
            buckets.resize_with(nparts, Vec::new);
            for x in part {
                buckets[bucket_of(&x)].push(x);
            }
            buckets
        });
        // Shuffle read: transpose.
        let mut gathered: Vec<Vec<T>> = Vec::with_capacity(nparts);
        gathered.resize_with(nparts, Vec::new);
        let mut shuffled = 0u64;
        for mut producer in bucketed {
            for (b, bucket) in producer.drain(..).enumerate() {
                shuffled += bucket.len() as u64;
                gathered[b].extend(bucket);
            }
        }
        return (gathered, shuffled);
    }

    // Spill path: same bucketing, but each producer streams its buckets to
    // a spill file. I/O failure has no recovery story mid-shuffle, so it
    // panics with context rather than silently corrupting the dataset.
    let _span = csb_obs::span_cat("engine.spill", "engine");
    csb_obs::counter_add("engine.spills", 1);
    csb_obs::obs_debug!(
        "shuffle of {n_in} records exceeds spill budget of {} bytes, spilling to {}",
        spill.budget_bytes,
        spill.dir.display()
    );
    let dir = spill.dir.clone();
    let files: Vec<SpillFile> = pool.map_partitions(partitions, move |_, part| {
        let mut buckets: Vec<Vec<T>> = Vec::with_capacity(nparts);
        buckets.resize_with(nparts, Vec::new);
        for x in part {
            buckets[bucket_of(&x)].push(x);
        }
        let mut w = SpillWriter::create_in(&dir).expect("create shuffle spill file");
        for (b, bucket) in buckets.iter().enumerate() {
            w.write_bucket(b, bucket).expect("write shuffle spill bucket");
        }
        w.finish().expect("seal shuffle spill file")
    });
    let shuffled: u64 = files.iter().map(|f| f.total_records() as u64).sum();
    let files = &files;
    let gathered: Vec<Vec<T>> = pool.map_partitions((0..nparts).collect(), |_, b: usize| {
        let mut out = Vec::new();
        for f in files {
            out.extend(f.read_bucket::<T>(b).expect("read shuffle spill bucket"));
        }
        out
    });
    (gathered, shuffled)
}

impl<T: Send + Hash + Eq + Clone + SpillCodec> Pdd<T> {
    /// Hash-shuffles records so equal records land in the same partition,
    /// then deduplicates — `RDD.distinct()`, the operator PGSK relies on to
    /// discard conflicting edges generated by independent recursive descents.
    pub fn distinct(self) -> Pdd<T> {
        let n_in = self.count();
        let nparts = self.partitions.len();
        let op = self.tasks.next_op();
        let tasks = self.tasks;
        let (gathered, shuffled) = hash_shuffle(&self.pool, &self.spill, self.partitions, |x| {
            (hash_of(x) % nparts as u64) as usize
        });
        // Per-partition dedup.
        let parts = self.pool.map_partitions(gathered, |p, part| {
            tasks.gate(op, p);
            let mut seen = std::collections::HashSet::with_capacity(part.len());
            let mut out = Vec::with_capacity(part.len());
            for x in part {
                if seen.insert(x.clone()) {
                    out.push(x);
                }
            }
            out
        });
        let out = Pdd {
            partitions: parts,
            pool: self.pool,
            metrics: self.metrics,
            spill: self.spill,
            tasks,
        };
        let n_out = out.count();
        out.metrics.record("distinct", n_in, n_out, shuffled);
        csb_obs::obs_debug!("distinct: {n_in} in, {n_out} out, {shuffled} shuffled");
        out
    }
}

impl<T: Send + Ord> Pdd<T> {
    /// The `k` smallest records under `Ord` — Spark's `takeOrdered`:
    /// per-partition top-k, then a driver-side merge, so no full shuffle.
    pub fn take_ordered(&self, k: usize) -> Vec<T>
    where
        T: Clone + Sync,
    {
        let op = self.tasks.next_op();
        let tasks = self.tasks.clone();
        let mut parts: Vec<(&Vec<T>, Vec<T>)> =
            self.partitions.iter().map(|p| (p, Vec::new())).collect();
        self.pool.for_each_partition(&mut parts, |p, slot| {
            tasks.gate(op, p);
            let (input, out) = (slot.0, &mut slot.1);
            let mut local: Vec<T> = input.to_vec();
            local.sort_unstable();
            local.truncate(k);
            *out = local;
        });
        let mut merged: Vec<T> = parts.into_iter().flat_map(|s| s.1).collect();
        merged.sort_unstable();
        merged.truncate(k);
        self.metrics.record("take_ordered", self.count(), merged.len() as u64, 0);
        merged
    }
}

impl<K, V> Pdd<(K, V)>
where
    K: Send + Hash + Eq + Clone + SpillCodec,
    V: Send + SpillCodec,
{
    /// Hash-shuffles by key and groups values per key.
    pub fn group_by_key(self) -> Pdd<(K, Vec<V>)> {
        let n_in = self.count();
        let nparts = self.partitions.len();
        let op = self.tasks.next_op();
        let tasks = self.tasks;
        let (gathered, shuffled) =
            hash_shuffle(&self.pool, &self.spill, self.partitions, |kv: &(K, V)| {
                (hash_of(&kv.0) % nparts as u64) as usize
            });
        let parts = self.pool.map_partitions(gathered, |p, part| {
            tasks.gate(op, p);
            let mut acc: HashMap<K, Vec<V>> = HashMap::new();
            for (k, v) in part {
                acc.entry(k).or_default().push(v);
            }
            acc.into_iter().collect::<Vec<(K, Vec<V>)>>()
        });
        let out = Pdd {
            partitions: parts,
            pool: self.pool,
            metrics: self.metrics,
            spill: self.spill,
            tasks,
        };
        let n_out = out.count();
        out.metrics.record("group_by_key", n_in, n_out, shuffled);
        csb_obs::obs_debug!("group_by_key: {n_in} in, {n_out} keys, {shuffled} shuffled");
        out
    }

    /// Inner hash join: pairs every value of a key on the left with every
    /// value of that key on the right (the vertex-attribute join GraphX
    /// performs when materializing triplets).
    pub fn join<W>(self, right: Pdd<(K, W)>) -> Pdd<(K, (V, W))>
    where
        K: Sync,
        V: Clone,
        W: Send + Sync + Clone + SpillCodec,
    {
        let n_in = self.count() + right.count();
        let left = self.group_by_key();
        let shuffled_left = left.metrics().total_shuffled();
        let right_grouped = right.group_by_key();
        let mut rhs: HashMap<K, Vec<W>> = HashMap::new();
        for (k, vs) in right_grouped.collect() {
            rhs.insert(k, vs);
        }
        let out = left.flat_map(move |(k, vs)| {
            let mut pairs = Vec::new();
            if let Some(ws) = rhs.get(&k) {
                for v in &vs {
                    for w in ws {
                        pairs.push((k.clone(), (v.clone(), w.clone())));
                    }
                }
            }
            pairs
        });
        let _ = shuffled_left;
        out.metrics.record("join", n_in, out.count(), 0);
        out
    }

    /// Hash-shuffles by key and reduces values per key.
    pub fn reduce_by_key<F>(self, f: F) -> Pdd<(K, V)>
    where
        F: Fn(V, V) -> V + Send + Sync,
    {
        let n_in = self.count();
        let nparts = self.partitions.len();
        let op = self.tasks.next_op();
        let tasks = self.tasks;
        let (gathered, shuffled) =
            hash_shuffle(&self.pool, &self.spill, self.partitions, |kv: &(K, V)| {
                (hash_of(&kv.0) % nparts as u64) as usize
            });
        let parts = self.pool.map_partitions(gathered, |p, part| {
            tasks.gate(op, p);
            let mut acc: HashMap<K, V> = HashMap::with_capacity(part.len());
            for (k, v) in part {
                match acc.remove(&k) {
                    Some(prev) => {
                        let merged = f(prev, v);
                        acc.insert(k, merged);
                    }
                    None => {
                        acc.insert(k, v);
                    }
                }
            }
            acc.into_iter().collect::<Vec<(K, V)>>()
        });
        let out = Pdd {
            partitions: parts,
            pool: self.pool,
            metrics: self.metrics,
            spill: self.spill,
            tasks,
        };
        let n_out = out.count();
        out.metrics.record("reduce_by_key", n_in, n_out, shuffled);
        csb_obs::obs_debug!("reduce_by_key: {n_in} in, {n_out} keys, {shuffled} shuffled");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pdd(data: Vec<u64>, parts: usize) -> Pdd<u64> {
        Pdd::from_vec(data, parts, ThreadPool::new(4), JobMetrics::new())
    }

    #[test]
    fn count_and_collect() {
        let d = pdd((0..100).collect(), 8);
        assert_eq!(d.count(), 100);
        assert_eq!(d.num_partitions(), 8);
        let mut all = d.collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn map_filter_flat_map() {
        let d = pdd((0..10).collect(), 3);
        let out = d.map(|x| x * 2).filter(|&x| x % 4 == 0).flat_map(|x| vec![x, x + 1]);
        let mut all = out.collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 4, 5, 8, 9, 12, 13, 16, 17]);
    }

    #[test]
    fn sample_fraction_roughly_respected() {
        let d = pdd((0..100_000).collect(), 8);
        let s = d.sample(0.1, 42);
        let n = s.count() as f64;
        assert!((n - 10_000.0).abs() < 600.0, "sampled {n}");
        // Deterministic given the seed.
        let s2 = d.sample(0.1, 42);
        assert_eq!(s.collect(), s2.collect());
        // Different seeds differ.
        let s3 = d.sample(0.1, 43);
        assert_ne!(s3.count(), 0);
    }

    #[test]
    fn sample_extremes() {
        let d = pdd((0..1000).collect(), 4);
        assert_eq!(d.sample(0.0, 1).count(), 0);
        assert_eq!(d.sample(1.0, 1).count(), 1000);
    }

    #[test]
    fn distinct_removes_duplicates() {
        let mut data: Vec<u64> = (0..1000).collect();
        data.extend(0..500);
        data.extend(0..250);
        let d = pdd(data, 8).distinct();
        assert_eq!(d.count(), 1000);
        let mut all = d.collect();
        all.sort_unstable();
        assert_eq!(all, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn distinct_records_shuffle_metrics() {
        let m = JobMetrics::new();
        let d = Pdd::from_vec(vec![1u64, 1, 2, 2, 3], 4, ThreadPool::new(2), m.clone());
        let _ = d.distinct();
        let ops = m.ops();
        let distinct = ops.iter().find(|o| o.op == "distinct").expect("recorded");
        assert_eq!(distinct.records_in, 5);
        assert_eq!(distinct.records_out, 3);
        assert_eq!(distinct.shuffled, 5);
    }

    #[test]
    fn map_indexed_gives_unique_coordinates() {
        let d = pdd((0..100).collect(), 7);
        let coords = d.map_indexed(|p, i, _| (p, i)).collect();
        let set: std::collections::HashSet<_> = coords.iter().collect();
        assert_eq!(set.len(), 100, "coordinates must be unique");
    }

    #[test]
    fn flat_map_indexed_expands() {
        let d = pdd(vec![10, 20], 1);
        let mut out = d.flat_map_indexed(|_, i, x| vec![x, x + i as u64]).collect();
        out.sort_unstable();
        assert_eq!(out, vec![10, 10, 20, 21]);
    }

    #[test]
    fn sample_with_replacement_matches_mean() {
        let d = pdd((0..50_000).collect(), 8);
        for fraction in [0.5, 2.0] {
            let n = d.sample_with_replacement(fraction, 9).count() as f64;
            let expect = 50_000.0 * fraction;
            assert!(
                (n - expect).abs() < expect * 0.05,
                "fraction {fraction}: got {n}, expected {expect}"
            );
        }
        assert_eq!(d.sample_with_replacement(0.0, 1).count(), 0);
    }

    #[test]
    fn union_concatenates() {
        let a = pdd(vec![1, 2, 3], 2);
        let b = pdd(vec![4, 5], 3);
        let mut all = a.union(b).collect();
        all.sort_unstable();
        assert_eq!(all, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn group_by_key_collects_all_values() {
        let data: Vec<(u64, u64)> = (0..60).map(|i| (i % 6, i)).collect();
        let d = Pdd::from_vec(data, 4, ThreadPool::new(3), JobMetrics::new());
        let mut grouped = d.group_by_key().collect();
        grouped.sort_unstable_by_key(|(k, _)| *k);
        assert_eq!(grouped.len(), 6);
        for (k, mut vs) in grouped {
            vs.sort_unstable();
            assert_eq!(vs.len(), 10);
            assert!(vs.iter().all(|v| v % 6 == k));
        }
    }

    #[test]
    fn take_ordered_returns_global_minimums() {
        let mut data: Vec<u64> = (0..1000).rev().collect();
        data.push(3); // duplicate
        let d = Pdd::from_vec(data, 8, ThreadPool::new(4), JobMetrics::new());
        assert_eq!(d.take_ordered(5), vec![0, 1, 2, 3, 3]);
        assert_eq!(d.take_ordered(0), Vec::<u64>::new());
        // k larger than the dataset returns everything sorted.
        let small = Pdd::from_vec(vec![3u64, 1, 2], 2, ThreadPool::new(2), JobMetrics::new());
        assert_eq!(small.take_ordered(10), vec![1, 2, 3]);
    }

    #[test]
    fn reduce_by_key_sums() {
        let data: Vec<(u64, u64)> = (0..100).map(|i| (i % 10, 1u64)).collect();
        let d = Pdd::from_vec(data, 5, ThreadPool::new(4), JobMetrics::new());
        let mut out = d.reduce_by_key(|a, b| a + b).collect();
        out.sort_unstable();
        assert_eq!(out.len(), 10);
        assert!(out.iter().all(|&(_, c)| c == 10));
    }

    #[test]
    fn join_pairs_matching_keys() {
        let left = Pdd::from_vec(
            vec![(1u64, "a".to_string()), (1, "b".to_string()), (2, "c".to_string())],
            3,
            ThreadPool::new(2),
            JobMetrics::new(),
        );
        let right = Pdd::from_vec(
            vec![(1u64, 10u64), (2, 20), (2, 21), (3, 30)],
            2,
            ThreadPool::new(2),
            JobMetrics::new(),
        );
        let mut out = left.join(right).collect();
        out.sort_unstable_by_key(|(k, (v, w))| (*k, v.clone(), *w));
        let expect: Vec<(u64, (String, u64))> = vec![
            (1, ("a".to_string(), 10)),
            (1, ("b".to_string(), 10)),
            (2, ("c".to_string(), 20)),
            (2, ("c".to_string(), 21)),
        ];
        assert_eq!(out, expect);
    }

    #[test]
    fn empty_dataset_operations() {
        let d: Pdd<u64> = Pdd::empty(4, ThreadPool::new(2), JobMetrics::new());
        assert_eq!(d.count(), 0);
        let d = d.map(|x| x + 1).filter(|_| true);
        assert_eq!(d.count(), 0);
        assert_eq!(d.distinct().count(), 0);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn bad_fraction_panics() {
        let d = pdd(vec![1], 1);
        let _ = d.sample(1.5, 0);
    }

    /// Forces every shuffle through disk.
    fn always_spill() -> SpillConfig {
        SpillConfig { budget_bytes: 0, ..SpillConfig::default() }
    }

    #[test]
    fn distinct_is_identical_with_and_without_spill() {
        let mut data: Vec<u64> = (0..2000).map(|i| i % 700).collect();
        data.extend(0..100);
        let in_mem = pdd(data.clone(), 8).distinct().collect();
        let spilled = pdd(data, 8).with_spill(always_spill()).distinct().collect();
        assert_eq!(in_mem, spilled, "spill must not change results or their order");
    }

    #[test]
    fn group_by_key_is_identical_with_and_without_spill() {
        let data: Vec<(u64, u64)> = (0..500).map(|i| (i % 17, i)).collect();
        let make = || Pdd::from_vec(data.clone(), 6, ThreadPool::new(3), JobMetrics::new());
        let mut in_mem = make().group_by_key().collect();
        let mut spilled = make().with_spill(always_spill()).group_by_key().collect();
        in_mem.sort_unstable();
        spilled.sort_unstable();
        assert_eq!(in_mem, spilled);
    }

    #[test]
    fn reduce_by_key_is_identical_with_and_without_spill() {
        let data: Vec<(u64, u64)> = (0..300).map(|i| (i % 11, 1)).collect();
        let make = || Pdd::from_vec(data.clone(), 4, ThreadPool::new(2), JobMetrics::new());
        let mut in_mem = make().reduce_by_key(|a, b| a + b).collect();
        let mut spilled = make().with_spill(always_spill()).reduce_by_key(|a, b| a + b).collect();
        in_mem.sort_unstable();
        spilled.sort_unstable();
        assert_eq!(in_mem, spilled);
    }

    #[test]
    fn spilled_shuffle_reports_the_same_metrics() {
        let data: Vec<u64> = vec![1, 1, 2, 2, 3];
        let m = JobMetrics::new();
        let d = Pdd::from_vec(data, 4, ThreadPool::new(2), m.clone()).with_spill(always_spill());
        let _ = d.distinct();
        let distinct = m.ops().into_iter().find(|o| o.op == "distinct").expect("recorded");
        assert_eq!(distinct.records_in, 5);
        assert_eq!(distinct.records_out, 3);
        assert_eq!(distinct.shuffled, 5, "spilled shuffle must count like the in-memory one");
    }

    #[test]
    fn spill_emits_span_and_counter() {
        let _guard = csb_obs::span::test_lock();
        csb_obs::reset();
        csb_obs::enable();
        let d = pdd((0..100).collect(), 4).with_spill(always_spill());
        let _ = d.distinct();
        csb_obs::disable();
        let spans = csb_obs::span::flush_spans();
        assert!(
            spans.iter().any(|s| s.name == "engine.spill"),
            "spill must be visible as an engine.spill span"
        );
        let counters = csb_obs::snapshot_metrics().counters;
        let get = |name: &str| counters.iter().find(|(n, _)| *n == name).map_or(0, |(_, v)| *v);
        assert!(get("engine.spills") >= 1);
        assert!(get("engine.spill_bytes_written") > 0);
        assert!(get("engine.spill_bytes_read") > 0);
    }

    #[test]
    fn fault_injected_pipeline_matches_clean_run_and_counts_retries() {
        use crate::retry::{FaultConfig, RetryPolicy};
        let _guard = csb_obs::span::test_lock();
        csb_obs::reset();
        csb_obs::enable();
        let flaky =
            TaskPolicy::new(RetryPolicy { max_retries: 60, base_delay_ms: 0, max_delay_ms: 0 })
                .with_fault(FaultConfig { failure_probability: 0.3, seed: 11 });
        let data: Vec<u64> = (0..5000).map(|i| i % 900).collect();
        let clean = pdd(data.clone(), 8).map(|x| x * 3).filter(|x| x % 2 == 0).distinct().collect();
        let faulty = pdd(data, 8)
            .with_tasks(flaky)
            .map(|x| x * 3)
            .filter(|x| x % 2 == 0)
            .distinct()
            .collect();
        csb_obs::disable();
        assert_eq!(clean, faulty, "injected faults must only delay tasks, never change data");
        let counters = csb_obs::snapshot_metrics().counters;
        let get = |name: &str| counters.iter().find(|(n, _)| *n == name).map_or(0, |(_, v)| *v);
        assert!(get("engine.task_failures") > 0, "30% fault rate must trip at least once");
        assert!(get("engine.task_retries") > 0, "failed tasks must be retried");
    }

    #[test]
    fn spill_budget_gate_uses_bytes_per_record() {
        let spill =
            SpillConfig { budget_bytes: 480, bytes_per_record: 48.0, ..SpillConfig::default() };
        assert!(!spill.should_spill(10), "exactly at budget stays in memory");
        assert!(spill.should_spill(11));
        assert!(!SpillConfig::default().should_spill(1 << 40), "default budget never spills");
    }
}
