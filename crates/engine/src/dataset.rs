//! `Pdd<T>` — partitioned distributed dataset, the RDD analogue.
//!
//! Operators execute eagerly over real partitions on a [`ThreadPool`] and
//! record their counts into [`JobMetrics`]. The operator set is exactly what
//! the paper's implementations need: `sample` (PGPBA's first preferential-
//! attachment stage uses `RDD.sample()`), `distinct` (PGSK deduplicates
//! conflicting Kronecker descents with `RDD.distinct()`), plus the usual
//! `map` / `flat_map` / `filter` / `union` / `reduce_by_key`.

use crate::executor::ThreadPool;
use crate::metrics::JobMetrics;
use csb_stats::rng::rng_for;
use rand::Rng;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// A dataset split into partitions, processed in parallel.
///
/// ```
/// use csb_engine::{JobMetrics, Pdd, ThreadPool};
///
/// let metrics = JobMetrics::new();
/// let d = Pdd::from_vec((0u64..100).collect(), 8, ThreadPool::new(4), metrics.clone());
/// let distinct_evens = d.map(|x| x / 2).distinct();
/// assert_eq!(distinct_evens.count(), 50);
/// // Every operator reported its record counts for the cluster cost model.
/// assert!(metrics.ops().iter().any(|o| o.op == "distinct" && o.shuffled > 0));
/// ```
#[derive(Debug, Clone)]
pub struct Pdd<T> {
    partitions: Vec<Vec<T>>,
    pool: ThreadPool,
    metrics: JobMetrics,
}

impl<T: Send> Pdd<T> {
    /// Distributes `data` round-robin over `partitions` partitions.
    pub fn from_vec(
        data: Vec<T>,
        partitions: usize,
        pool: ThreadPool,
        metrics: JobMetrics,
    ) -> Self {
        let nparts = partitions.max(1);
        let mut parts: Vec<Vec<T>> = (0..nparts)
            .map(|i| Vec::with_capacity(data.len() / nparts + usize::from(i == 0)))
            .collect();
        let n = data.len() as u64;
        for (i, item) in data.into_iter().enumerate() {
            parts[i % nparts].push(item);
        }
        metrics.record("parallelize", 0, n, 0);
        Pdd { partitions: parts, pool, metrics }
    }

    /// An empty dataset with the given partitioning.
    pub fn empty(partitions: usize, pool: ThreadPool, metrics: JobMetrics) -> Self {
        let mut parts = Vec::with_capacity(partitions.max(1));
        parts.resize_with(partitions.max(1), Vec::new);
        Pdd { partitions: parts, pool, metrics }
    }

    /// Total records.
    pub fn count(&self) -> u64 {
        self.partitions.iter().map(|p| p.len() as u64).sum()
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// The metrics accumulator this dataset reports into.
    pub fn metrics(&self) -> &JobMetrics {
        &self.metrics
    }

    /// Gathers all records to the caller ("driver"), draining the dataset.
    pub fn collect(self) -> Vec<T> {
        let mut out = Vec::with_capacity(self.count() as usize);
        for p in self.partitions {
            out.extend(p);
        }
        out
    }

    /// Per-partition record counts.
    pub fn partition_sizes(&self) -> Vec<usize> {
        self.partitions.iter().map(Vec::len).collect()
    }

    /// Element-wise map.
    pub fn map<U: Send, F>(self, f: F) -> Pdd<U>
    where
        F: Fn(T) -> U + Send + Sync,
    {
        let n_in = self.count();
        let parts = self.pool.map_partitions(self.partitions, |_, part| {
            part.into_iter().map(&f).collect::<Vec<U>>()
        });
        let out = Pdd { partitions: parts, pool: self.pool, metrics: self.metrics };
        out.metrics.record("map", n_in, out.count(), 0);
        out
    }

    /// One-to-many map.
    pub fn flat_map<U: Send, I, F>(self, f: F) -> Pdd<U>
    where
        I: IntoIterator<Item = U>,
        F: Fn(T) -> I + Send + Sync,
    {
        let n_in = self.count();
        let parts = self.pool.map_partitions(self.partitions, |_, part| {
            part.into_iter().flat_map(&f).collect::<Vec<U>>()
        });
        let out = Pdd { partitions: parts, pool: self.pool, metrics: self.metrics };
        out.metrics.record("flat_map", n_in, out.count(), 0);
        out
    }

    /// Keeps records satisfying the predicate.
    pub fn filter<F>(self, f: F) -> Pdd<T>
    where
        F: Fn(&T) -> bool + Send + Sync,
    {
        let n_in = self.count();
        let parts = self.pool.map_partitions(self.partitions, |_, mut part| {
            part.retain(|x| f(x));
            part
        });
        let out = Pdd { partitions: parts, pool: self.pool, metrics: self.metrics };
        out.metrics.record("filter", n_in, out.count(), 0);
        out
    }

    /// Bernoulli sample of roughly `fraction` of the records —
    /// `RDD.sample(false, fraction)`, the first stage of PGPBA's two-stage
    /// preferential attachment.
    pub fn sample(&self, fraction: f64, seed: u64) -> Pdd<T>
    where
        T: Clone + Sync,
    {
        assert!((0.0..=1.0).contains(&fraction), "sample fraction must be in [0,1]");
        let n_in = self.count();
        let mut parts: Vec<(usize, &Vec<T>, Vec<T>)> =
            self.partitions.iter().enumerate().map(|(i, p)| (i, p, Vec::new())).collect();
        self.pool.for_each_partition(&mut parts, |_, slot| {
            let (idx, input, out) = (slot.0, slot.1, &mut slot.2);
            let mut rng = rng_for(seed, idx as u64);
            out.extend(input.iter().filter(|_| rng.gen::<f64>() < fraction).cloned());
        });
        let partitions: Vec<Vec<T>> = parts.into_iter().map(|s| s.2).collect();
        let out = Pdd { partitions, pool: self.pool, metrics: self.metrics.clone() };
        out.metrics.record("sample", n_in, out.count(), 0);
        out
    }

    /// Map with `(partition, index_in_partition, item)` — the hook
    /// distributed algorithms use to derive deterministic per-record RNG
    /// streams and globally unique ids (via per-partition offsets).
    pub fn map_indexed<U: Send, F>(self, f: F) -> Pdd<U>
    where
        F: Fn(usize, usize, T) -> U + Send + Sync,
    {
        let n_in = self.count();
        let parts = self.pool.map_partitions(self.partitions, |p, part| {
            part.into_iter().enumerate().map(|(i, x)| f(p, i, x)).collect::<Vec<U>>()
        });
        let out = Pdd { partitions: parts, pool: self.pool, metrics: self.metrics };
        out.metrics.record("map_indexed", n_in, out.count(), 0);
        out
    }

    /// Flat-map with `(partition, index_in_partition, item)`.
    pub fn flat_map_indexed<U: Send, I, F>(self, f: F) -> Pdd<U>
    where
        I: IntoIterator<Item = U>,
        F: Fn(usize, usize, T) -> I + Send + Sync,
    {
        let n_in = self.count();
        let parts = self.pool.map_partitions(self.partitions, |p, part| {
            part.into_iter().enumerate().flat_map(|(i, x)| f(p, i, x)).collect::<Vec<U>>()
        });
        let out = Pdd { partitions: parts, pool: self.pool, metrics: self.metrics };
        out.metrics.record("flat_map_indexed", n_in, out.count(), 0);
        out
    }

    /// Sample *with replacement*: each record contributes `Poisson(fraction)`
    /// copies — `RDD.sample(true, fraction)` in Spark terms, which is what
    /// lets PGPBA run with `fraction = 2` (the paper's performance setting).
    pub fn sample_with_replacement(&self, fraction: f64, seed: u64) -> Pdd<T>
    where
        T: Clone + Sync,
    {
        assert!(fraction >= 0.0 && fraction.is_finite(), "fraction must be non-negative");
        let n_in = self.count();
        let mut parts: Vec<(usize, &Vec<T>, Vec<T>)> =
            self.partitions.iter().enumerate().map(|(i, p)| (i, p, Vec::new())).collect();
        self.pool.for_each_partition(&mut parts, |_, slot| {
            let (idx, input, out) = (slot.0, slot.1, &mut slot.2);
            let mut rng = rng_for(seed, 0x5A17 ^ idx as u64);
            for x in input.iter() {
                for _ in 0..poisson(fraction, &mut rng) {
                    out.push(x.clone());
                }
            }
        });
        let partitions: Vec<Vec<T>> = parts.into_iter().map(|s| s.2).collect();
        let out = Pdd { partitions, pool: self.pool, metrics: self.metrics.clone() };
        out.metrics.record("sample_with_replacement", n_in, out.count(), 0);
        out
    }

    /// Concatenates two datasets (keeps left's partition count by merging
    /// pairwise, wrapping the extra partitions around).
    pub fn union(mut self, other: Pdd<T>) -> Pdd<T> {
        let n = self.partitions.len();
        for (i, part) in other.partitions.into_iter().enumerate() {
            self.partitions[i % n].extend(part);
        }
        self.metrics.record("union", 0, self.count(), 0);
        self
    }
}

/// Knuth's Poisson sampler — fine for the small means (fractions) used here.
fn poisson<R: Rng>(lambda: f64, rng: &mut R) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    let l = (-lambda).exp();
    let mut k = 0u64;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
    }
}

fn hash_of<T: Hash>(x: &T) -> u64 {
    // FxHash-style multiply-xor; cheap and adequate for partitioning.
    struct Fx(u64);
    impl Hasher for Fx {
        fn finish(&self) -> u64 {
            self.0
        }
        fn write(&mut self, bytes: &[u8]) {
            for &b in bytes {
                self.0 = (self.0 ^ b as u64).wrapping_mul(0x100_0000_01b3);
            }
        }
    }
    let mut h = Fx(0xcbf2_9ce4_8422_2325);
    x.hash(&mut h);
    h.finish()
}

impl<T: Send + Hash + Eq + Clone> Pdd<T> {
    /// Hash-shuffles records so equal records land in the same partition,
    /// then deduplicates — `RDD.distinct()`, the operator PGSK relies on to
    /// discard conflicting edges generated by independent recursive descents.
    pub fn distinct(self) -> Pdd<T> {
        let n_in = self.count();
        let nparts = self.partitions.len();
        // Shuffle write: bucket every record by hash.
        let bucketed: Vec<Vec<Vec<T>>> = self.pool.map_partitions(self.partitions, |_, part| {
            let mut buckets: Vec<Vec<T>> = vec![Vec::new(); nparts];
            for x in part {
                let b = (hash_of(&x) % nparts as u64) as usize;
                buckets[b].push(x);
            }
            buckets
        });
        // Shuffle read: transpose.
        let mut gathered: Vec<Vec<T>> = vec![Vec::new(); nparts];
        let mut shuffled = 0u64;
        for mut producer in bucketed {
            for (b, bucket) in producer.drain(..).enumerate() {
                shuffled += bucket.len() as u64;
                gathered[b].extend(bucket);
            }
        }
        // Per-partition dedup.
        let parts = self.pool.map_partitions(gathered, |_, part| {
            let mut seen = std::collections::HashSet::with_capacity(part.len());
            let mut out = Vec::with_capacity(part.len());
            for x in part {
                if seen.insert(x.clone()) {
                    out.push(x);
                }
            }
            out
        });
        let out = Pdd { partitions: parts, pool: self.pool, metrics: self.metrics };
        let n_out = out.count();
        out.metrics.record("distinct", n_in, n_out, shuffled);
        csb_obs::obs_debug!("distinct: {n_in} in, {n_out} out, {shuffled} shuffled");
        out
    }
}

impl<T: Send + Ord> Pdd<T> {
    /// The `k` smallest records under `Ord` — Spark's `takeOrdered`:
    /// per-partition top-k, then a driver-side merge, so no full shuffle.
    pub fn take_ordered(&self, k: usize) -> Vec<T>
    where
        T: Clone + Sync,
    {
        let mut parts: Vec<(&Vec<T>, Vec<T>)> =
            self.partitions.iter().map(|p| (p, Vec::new())).collect();
        self.pool.for_each_partition(&mut parts, |_, slot| {
            let (input, out) = (slot.0, &mut slot.1);
            let mut local: Vec<T> = input.to_vec();
            local.sort_unstable();
            local.truncate(k);
            *out = local;
        });
        let mut merged: Vec<T> = parts.into_iter().flat_map(|s| s.1).collect();
        merged.sort_unstable();
        merged.truncate(k);
        self.metrics.record("take_ordered", self.count(), merged.len() as u64, 0);
        merged
    }
}

impl<K, V> Pdd<(K, V)>
where
    K: Send + Hash + Eq + Clone,
    V: Send,
{
    /// Hash-shuffles by key and groups values per key.
    pub fn group_by_key(self) -> Pdd<(K, Vec<V>)> {
        let n_in = self.count();
        let nparts = self.partitions.len();
        let bucketed: Vec<Vec<Vec<(K, V)>>> =
            self.pool.map_partitions(self.partitions, |_, part| {
                let mut buckets: Vec<Vec<(K, V)>> = Vec::with_capacity(nparts);
                buckets.resize_with(nparts, Vec::new);
                for kv in part {
                    let b = (hash_of(&kv.0) % nparts as u64) as usize;
                    buckets[b].push(kv);
                }
                buckets
            });
        let mut gathered: Vec<Vec<(K, V)>> = Vec::with_capacity(nparts);
        gathered.resize_with(nparts, Vec::new);
        let mut shuffled = 0u64;
        for mut producer in bucketed {
            for (b, bucket) in producer.drain(..).enumerate() {
                shuffled += bucket.len() as u64;
                gathered[b].extend(bucket);
            }
        }
        let parts = self.pool.map_partitions(gathered, |_, part| {
            let mut acc: HashMap<K, Vec<V>> = HashMap::new();
            for (k, v) in part {
                acc.entry(k).or_default().push(v);
            }
            acc.into_iter().collect::<Vec<(K, Vec<V>)>>()
        });
        let out = Pdd { partitions: parts, pool: self.pool, metrics: self.metrics };
        let n_out = out.count();
        out.metrics.record("group_by_key", n_in, n_out, shuffled);
        csb_obs::obs_debug!("group_by_key: {n_in} in, {n_out} keys, {shuffled} shuffled");
        out
    }

    /// Inner hash join: pairs every value of a key on the left with every
    /// value of that key on the right (the vertex-attribute join GraphX
    /// performs when materializing triplets).
    pub fn join<W>(self, right: Pdd<(K, W)>) -> Pdd<(K, (V, W))>
    where
        K: Sync,
        V: Clone,
        W: Send + Sync + Clone,
    {
        let n_in = self.count() + right.count();
        let left = self.group_by_key();
        let shuffled_left = left.metrics().total_shuffled();
        let right_grouped = right.group_by_key();
        let mut rhs: HashMap<K, Vec<W>> = HashMap::new();
        for (k, vs) in right_grouped.collect() {
            rhs.insert(k, vs);
        }
        let out = left.flat_map(move |(k, vs)| {
            let mut pairs = Vec::new();
            if let Some(ws) = rhs.get(&k) {
                for v in &vs {
                    for w in ws {
                        pairs.push((k.clone(), (v.clone(), w.clone())));
                    }
                }
            }
            pairs
        });
        let _ = shuffled_left;
        out.metrics.record("join", n_in, out.count(), 0);
        out
    }

    /// Hash-shuffles by key and reduces values per key.
    pub fn reduce_by_key<F>(self, f: F) -> Pdd<(K, V)>
    where
        F: Fn(V, V) -> V + Send + Sync,
    {
        let n_in = self.count();
        let nparts = self.partitions.len();
        let bucketed: Vec<Vec<Vec<(K, V)>>> =
            self.pool.map_partitions(self.partitions, |_, part| {
                let mut buckets: Vec<Vec<(K, V)>> = Vec::with_capacity(nparts);
                buckets.resize_with(nparts, Vec::new);
                for kv in part {
                    let b = (hash_of(&kv.0) % nparts as u64) as usize;
                    buckets[b].push(kv);
                }
                buckets
            });
        let mut gathered: Vec<Vec<(K, V)>> = Vec::with_capacity(nparts);
        gathered.resize_with(nparts, Vec::new);
        let mut shuffled = 0u64;
        for mut producer in bucketed {
            for (b, bucket) in producer.drain(..).enumerate() {
                shuffled += bucket.len() as u64;
                gathered[b].extend(bucket);
            }
        }
        let parts = self.pool.map_partitions(gathered, |_, part| {
            let mut acc: HashMap<K, V> = HashMap::with_capacity(part.len());
            for (k, v) in part {
                match acc.remove(&k) {
                    Some(prev) => {
                        let merged = f(prev, v);
                        acc.insert(k, merged);
                    }
                    None => {
                        acc.insert(k, v);
                    }
                }
            }
            acc.into_iter().collect::<Vec<(K, V)>>()
        });
        let out = Pdd { partitions: parts, pool: self.pool, metrics: self.metrics };
        let n_out = out.count();
        out.metrics.record("reduce_by_key", n_in, n_out, shuffled);
        csb_obs::obs_debug!("reduce_by_key: {n_in} in, {n_out} keys, {shuffled} shuffled");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pdd(data: Vec<u64>, parts: usize) -> Pdd<u64> {
        Pdd::from_vec(data, parts, ThreadPool::new(4), JobMetrics::new())
    }

    #[test]
    fn count_and_collect() {
        let d = pdd((0..100).collect(), 8);
        assert_eq!(d.count(), 100);
        assert_eq!(d.num_partitions(), 8);
        let mut all = d.collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn map_filter_flat_map() {
        let d = pdd((0..10).collect(), 3);
        let out = d.map(|x| x * 2).filter(|&x| x % 4 == 0).flat_map(|x| vec![x, x + 1]);
        let mut all = out.collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 4, 5, 8, 9, 12, 13, 16, 17]);
    }

    #[test]
    fn sample_fraction_roughly_respected() {
        let d = pdd((0..100_000).collect(), 8);
        let s = d.sample(0.1, 42);
        let n = s.count() as f64;
        assert!((n - 10_000.0).abs() < 600.0, "sampled {n}");
        // Deterministic given the seed.
        let s2 = d.sample(0.1, 42);
        assert_eq!(s.collect(), s2.collect());
        // Different seeds differ.
        let s3 = d.sample(0.1, 43);
        assert_ne!(s3.count(), 0);
    }

    #[test]
    fn sample_extremes() {
        let d = pdd((0..1000).collect(), 4);
        assert_eq!(d.sample(0.0, 1).count(), 0);
        assert_eq!(d.sample(1.0, 1).count(), 1000);
    }

    #[test]
    fn distinct_removes_duplicates() {
        let mut data: Vec<u64> = (0..1000).collect();
        data.extend(0..500);
        data.extend(0..250);
        let d = pdd(data, 8).distinct();
        assert_eq!(d.count(), 1000);
        let mut all = d.collect();
        all.sort_unstable();
        assert_eq!(all, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn distinct_records_shuffle_metrics() {
        let m = JobMetrics::new();
        let d = Pdd::from_vec(vec![1u64, 1, 2, 2, 3], 4, ThreadPool::new(2), m.clone());
        let _ = d.distinct();
        let ops = m.ops();
        let distinct = ops.iter().find(|o| o.op == "distinct").expect("recorded");
        assert_eq!(distinct.records_in, 5);
        assert_eq!(distinct.records_out, 3);
        assert_eq!(distinct.shuffled, 5);
    }

    #[test]
    fn map_indexed_gives_unique_coordinates() {
        let d = pdd((0..100).collect(), 7);
        let coords = d.map_indexed(|p, i, _| (p, i)).collect();
        let set: std::collections::HashSet<_> = coords.iter().collect();
        assert_eq!(set.len(), 100, "coordinates must be unique");
    }

    #[test]
    fn flat_map_indexed_expands() {
        let d = pdd(vec![10, 20], 1);
        let mut out = d.flat_map_indexed(|_, i, x| vec![x, x + i as u64]).collect();
        out.sort_unstable();
        assert_eq!(out, vec![10, 10, 20, 21]);
    }

    #[test]
    fn sample_with_replacement_matches_mean() {
        let d = pdd((0..50_000).collect(), 8);
        for fraction in [0.5, 2.0] {
            let n = d.sample_with_replacement(fraction, 9).count() as f64;
            let expect = 50_000.0 * fraction;
            assert!(
                (n - expect).abs() < expect * 0.05,
                "fraction {fraction}: got {n}, expected {expect}"
            );
        }
        assert_eq!(d.sample_with_replacement(0.0, 1).count(), 0);
    }

    #[test]
    fn union_concatenates() {
        let a = pdd(vec![1, 2, 3], 2);
        let b = pdd(vec![4, 5], 3);
        let mut all = a.union(b).collect();
        all.sort_unstable();
        assert_eq!(all, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn group_by_key_collects_all_values() {
        let data: Vec<(u64, u64)> = (0..60).map(|i| (i % 6, i)).collect();
        let d = Pdd::from_vec(data, 4, ThreadPool::new(3), JobMetrics::new());
        let mut grouped = d.group_by_key().collect();
        grouped.sort_unstable_by_key(|(k, _)| *k);
        assert_eq!(grouped.len(), 6);
        for (k, mut vs) in grouped {
            vs.sort_unstable();
            assert_eq!(vs.len(), 10);
            assert!(vs.iter().all(|v| v % 6 == k));
        }
    }

    #[test]
    fn take_ordered_returns_global_minimums() {
        let mut data: Vec<u64> = (0..1000).rev().collect();
        data.push(3); // duplicate
        let d = Pdd::from_vec(data, 8, ThreadPool::new(4), JobMetrics::new());
        assert_eq!(d.take_ordered(5), vec![0, 1, 2, 3, 3]);
        assert_eq!(d.take_ordered(0), Vec::<u64>::new());
        // k larger than the dataset returns everything sorted.
        let small = Pdd::from_vec(vec![3u64, 1, 2], 2, ThreadPool::new(2), JobMetrics::new());
        assert_eq!(small.take_ordered(10), vec![1, 2, 3]);
    }

    #[test]
    fn reduce_by_key_sums() {
        let data: Vec<(u64, u64)> = (0..100).map(|i| (i % 10, 1u64)).collect();
        let d = Pdd::from_vec(data, 5, ThreadPool::new(4), JobMetrics::new());
        let mut out = d.reduce_by_key(|a, b| a + b).collect();
        out.sort_unstable();
        assert_eq!(out.len(), 10);
        assert!(out.iter().all(|&(_, c)| c == 10));
    }

    #[test]
    fn join_pairs_matching_keys() {
        let left = Pdd::from_vec(
            vec![(1u64, "a"), (1, "b"), (2, "c")],
            3,
            ThreadPool::new(2),
            JobMetrics::new(),
        );
        let right = Pdd::from_vec(
            vec![(1u64, 10u64), (2, 20), (2, 21), (3, 30)],
            2,
            ThreadPool::new(2),
            JobMetrics::new(),
        );
        let mut out = left.join(right).collect();
        out.sort_unstable_by_key(|&(k, (v, w))| (k, v, w));
        assert_eq!(out, vec![(1, ("a", 10)), (1, ("b", 10)), (2, ("c", 20)), (2, ("c", 21)),]);
    }

    #[test]
    fn empty_dataset_operations() {
        let d: Pdd<u64> = Pdd::empty(4, ThreadPool::new(2), JobMetrics::new());
        assert_eq!(d.count(), 0);
        let d = d.map(|x| x + 1).filter(|_| true);
        assert_eq!(d.count(), 0);
        assert_eq!(d.distinct().count(), 0);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn bad_fraction_panics() {
        let d = pdd(vec![1], 1);
        let _ = d.sample(1.5, 0);
    }
}
