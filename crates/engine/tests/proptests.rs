//! Property-based tests: every `Pdd` operator must agree with the obvious
//! sequential `Vec` reference implementation, regardless of partitioning
//! and thread count.

use csb_engine::{JobMetrics, Pdd, ThreadPool};
use proptest::prelude::*;
use std::collections::HashSet;

fn pdd(data: Vec<u64>, parts: usize, threads: usize) -> Pdd<u64> {
    Pdd::from_vec(data, parts, ThreadPool::new(threads), JobMetrics::new())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// map/filter/flat_map match Vec semantics up to ordering.
    #[test]
    fn map_filter_flatmap_match_vec(
        data in prop::collection::vec(0u64..1000, 0..300),
        parts in 1usize..9,
        threads in 1usize..5,
    ) {
        let reference: Vec<u64> = data
            .iter()
            .map(|x| x * 3)
            .filter(|x| x % 2 == 0)
            .flat_map(|x| [x, x + 1])
            .collect();
        let mut expected = reference;
        expected.sort_unstable();

        let mut got = pdd(data, parts, threads)
            .map(|x| x * 3)
            .filter(|x| x % 2 == 0)
            .flat_map(|x| [x, x + 1])
            .collect();
        got.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    /// distinct matches HashSet semantics.
    #[test]
    fn distinct_matches_set(
        data in prop::collection::vec(0u64..50, 0..400),
        parts in 1usize..9,
    ) {
        let expected: HashSet<u64> = data.iter().copied().collect();
        let got: HashSet<u64> = pdd(data, parts, 4).distinct().collect().into_iter().collect();
        prop_assert_eq!(got, expected);
    }

    /// reduce_by_key matches a HashMap fold.
    #[test]
    fn reduce_by_key_matches_map(
        data in prop::collection::vec((0u64..10, 1u64..100), 0..300),
        parts in 1usize..9,
    ) {
        let mut expected = std::collections::HashMap::new();
        for &(k, v) in &data {
            *expected.entry(k).or_insert(0u64) += v;
        }
        let d = Pdd::from_vec(data, parts, ThreadPool::new(4), JobMetrics::new());
        let got: std::collections::HashMap<u64, u64> =
            d.reduce_by_key(|a, b| a + b).collect().into_iter().collect();
        prop_assert_eq!(got, expected);
    }

    /// take_ordered matches sort + truncate.
    #[test]
    fn take_ordered_matches_sort(
        data in prop::collection::vec(0u64..10_000, 0..300),
        parts in 1usize..9,
        k in 0usize..20,
    ) {
        let mut expected = data.clone();
        expected.sort_unstable();
        expected.truncate(k);
        let got = pdd(data, parts, 4).take_ordered(k);
        prop_assert_eq!(got, expected);
    }

    /// Partition count never changes the multiset of records.
    #[test]
    fn repartitioning_is_invisible(
        data in prop::collection::vec(0u64..1000, 0..200),
        p1 in 1usize..9,
        p2 in 1usize..9,
    ) {
        let mut a = pdd(data.clone(), p1, 2).map(|x| x ^ 7).collect();
        let mut b = pdd(data, p2, 4).map(|x| x ^ 7).collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }
}
