//! Criterion benchmarks of the benchmark-workload queries themselves
//! (node / edge / path / sub-graph families) over a synthetic dataset.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use csb_bench::standard_seed_scaled;
use csb_core::{pgpba, PgpbaConfig};
use csb_stats::rng::rng_for;
use csb_workloads::queries::{edge, node, path, subgraph};
use csb_workloads::{replay_flows, GraphIndex};
use rand::Rng;

fn bench_queries(c: &mut Criterion) {
    let seed = standard_seed_scaled(0.2);
    let g = pgpba(
        &seed,
        &PgpbaConfig { desired_size: seed.edge_count() as u64 * 8, fraction: 0.3, seed: 1 },
    );
    let idx = GraphIndex::build(&g);
    let mut rng = rng_for(9, 0);
    let n = g.vertex_count() as u32;

    let mut group = c.benchmark_group("workload_queries");
    group.bench_function("node_host_profile", |b| {
        b.iter(|| {
            let ip = *g.vertex(csb_graph::graph::VertexId(rng.gen_range(0..n)));
            node::host_profile(&idx, ip)
        })
    });
    group.throughput(Throughput::Elements(g.edge_count() as u64));
    group.bench_function("edge_flows_to_port", |b| b.iter(|| edge::flows_to_port(&idx, 443)));
    group.bench_function("edge_heavy_flows", |b| b.iter(|| edge::heavy_flows(&idx, 100_000)));
    group.bench_function("path_k_hop", |b| {
        b.iter(|| path::k_hop_reach(&idx, csb_graph::graph::VertexId(rng.gen_range(0..n)), 2))
    });
    group.bench_function("subgraph_scan_stars", |b| {
        b.iter(|| subgraph::scan_star_candidates(&idx, 10))
    });
    group.bench_function("subgraph_top_talkers", |b| b.iter(|| subgraph::top_k_talkers(&idx, 10)));
    group.finish();

    let mut replay_group = c.benchmark_group("replay");
    replay_group.throughput(Throughput::Elements(g.edge_count() as u64));
    replay_group.bench_function("graph_to_flow_stream", |b| b.iter(|| replay_flows(&g, 60.0, 2)));
    replay_group.finish();
}

criterion_group!(benches, bench_queries);
criterion_main!(benches);
