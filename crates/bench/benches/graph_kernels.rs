//! Criterion benchmarks of the graph analytics kernels the veracity
//! pipeline depends on (degree extraction, PageRank parallel vs sequential,
//! connected components, seed analysis).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use csb_bench::standard_seed_scaled;
use csb_core::analysis::SeedAnalysis;
use csb_core::{pgpba, PgpbaConfig};
use csb_graph::algo::pagerank::{pagerank, pagerank_sequential, PageRankConfig};
use csb_graph::algo::{degree_distribution, weakly_connected_components};

fn bench_kernels(c: &mut Criterion) {
    let seed = standard_seed_scaled(0.2);
    let g = pgpba(
        &seed,
        &PgpbaConfig { desired_size: seed.edge_count() as u64 * 8, fraction: 0.5, seed: 1 },
    );
    let edges = g.edge_count() as u64;

    let mut group = c.benchmark_group("kernels");
    group.throughput(Throughput::Elements(edges));
    let cfg = PageRankConfig { max_iters: 20, ..PageRankConfig::default() };
    group.bench_function("pagerank_parallel", |b| b.iter(|| pagerank(&g, &cfg)));
    group.bench_function("pagerank_sequential", |b| b.iter(|| pagerank_sequential(&g, &cfg)));
    group.bench_function("degree_distribution", |b| b.iter(|| degree_distribution(&g)));
    group.bench_function("wcc", |b| b.iter(|| weakly_connected_components(&g)));
    group.bench_function("seed_analysis", |b| b.iter(|| SeedAnalysis::of(&g)));
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
