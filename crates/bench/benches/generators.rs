//! Criterion micro-benchmarks of the generators themselves: topology
//! growth, attribute generation, and the end-to-end paths — the local
//! counterparts of the paper's Figures 9-10, plus the data used to
//! calibrate `csb_engine::CostModel` from real per-edge costs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use csb_bench::standard_seed_scaled;
use csb_core::pgpba::pgpba_topology;
use csb_core::pgsk::pgsk_topology;
use csb_core::topo::{attach_properties, Topology};
use csb_core::{pgpba, pgsk, PgpbaConfig, PgskConfig};

fn bench_topology_growth(c: &mut Criterion) {
    let seed = standard_seed_scaled(0.2);
    let seed_topo = Topology::of_graph(&seed.graph);
    let mut group = c.benchmark_group("topology_growth");
    for mult in [4u64, 16] {
        let target = seed.edge_count() as u64 * mult;
        group.throughput(Throughput::Elements(target));
        group.bench_with_input(BenchmarkId::new("pgpba", target), &target, |b, &t| {
            b.iter(|| {
                pgpba_topology(
                    &seed_topo,
                    &seed.analysis,
                    &PgpbaConfig { desired_size: t, fraction: 0.5, seed: 1 },
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("pgsk", target), &target, |b, &t| {
            b.iter(|| {
                pgsk_topology(
                    &seed_topo,
                    &seed.analysis,
                    &PgskConfig {
                        desired_size: t,
                        seed: 1,
                        kronfit_iterations: 4,
                        kronfit_permutation_samples: 50,
                    },
                )
            })
        });
    }
    group.finish();
}

fn bench_property_generation(c: &mut Criterion) {
    let seed = standard_seed_scaled(0.2);
    let seed_topo = Topology::of_graph(&seed.graph);
    let topo = pgpba_topology(
        &seed_topo,
        &seed.analysis,
        &PgpbaConfig { desired_size: seed.edge_count() as u64 * 8, fraction: 0.5, seed: 2 },
    );
    let mut group = c.benchmark_group("property_generation");
    group.throughput(Throughput::Elements(topo.edge_count() as u64));
    group.bench_function("attach_properties", |b| {
        b.iter(|| attach_properties(&topo, &seed.analysis.properties, &[], 3))
    });
    group.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let seed = standard_seed_scaled(0.1);
    let target = seed.edge_count() as u64 * 8;
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    group.throughput(Throughput::Elements(target));
    group.bench_function("pgpba_full", |b| {
        b.iter(|| pgpba(&seed, &PgpbaConfig { desired_size: target, fraction: 0.5, seed: 4 }))
    });
    group.bench_function("pgsk_full", |b| {
        b.iter(|| {
            pgsk(
                &seed,
                &PgskConfig {
                    desired_size: target,
                    seed: 4,
                    kronfit_iterations: 4,
                    kronfit_permutation_samples: 50,
                },
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_topology_growth, bench_property_generation, bench_end_to_end);
criterion_main!(benches);
