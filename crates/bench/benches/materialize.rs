//! Criterion benchmark of the parallel edge-materialization path: the
//! count → prefix-sum → parallel-write scheme plus bulk graph assembly,
//! against the pre-refactor serial per-edge reference. Feeds the
//! `BENCH_materialize.json` perf trajectory (see `bench_materialize`).
//!
//! Scale: the attach comparison runs at ~1M edges by default; `CSB_SCALE`
//! multiplies every workload.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use csb_bench::{attach_serial_reference, scale, standard_seed_scaled};
use csb_core::pgpba::pgpba_topology;
use csb_core::pgsk::pgsk_topology;
use csb_core::topo::{attach_properties, Topology};
use csb_core::{PgpbaConfig, PgskConfig};

/// A deterministic random-ish topology (cheap LCG, no growth model): the
/// attach benches measure materialization throughput, not generator logic.
fn synthetic_topology(vertices: u32, edges: usize) -> Topology {
    let mut state = 0x2545_F491_4F6C_DD1Du64;
    let mut next = move || {
        state =
            state.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1_442_695_040_888_963_407);
        (state >> 33) as u32
    };
    let src = (0..edges).map(|_| next() % vertices).collect();
    let dst = (0..edges).map(|_| next() % vertices).collect();
    Topology { num_vertices: vertices, src, dst }
}

fn bench_attach(c: &mut Criterion) {
    let seed = standard_seed_scaled(0.1);
    let edges = (1_000_000.0 * scale()) as usize;
    let topo = synthetic_topology(50_000, edges.max(10_000));
    let mut group = c.benchmark_group("materialize_attach");
    group.sample_size(10);
    group.throughput(Throughput::Elements(topo.edge_count() as u64));
    group.bench_function("parallel", |b| {
        b.iter(|| attach_properties(&topo, &seed.analysis.properties, &[], 3))
    });
    group.bench_function("serial_reference", |b| {
        b.iter(|| attach_serial_reference(&topo, &seed.analysis.properties, 3))
    });
    group.finish();
}

fn bench_growth_materialization(c: &mut Criterion) {
    let seed = standard_seed_scaled(0.2);
    let seed_topo = Topology::of_graph(&seed.graph);
    let target = ((seed.edge_count() as f64) * 64.0 * scale()) as u64;
    let mut group = c.benchmark_group("materialize_topology");
    group.sample_size(10);
    group.throughput(Throughput::Elements(target));
    group.bench_function("pgpba", |b| {
        b.iter(|| {
            pgpba_topology(
                &seed_topo,
                &seed.analysis,
                &PgpbaConfig { desired_size: target, fraction: 1.0, seed: 1 },
            )
        })
    });
    group.bench_function("pgsk", |b| {
        b.iter(|| {
            pgsk_topology(
                &seed_topo,
                &seed.analysis,
                &PgskConfig {
                    desired_size: target,
                    seed: 1,
                    kronfit_iterations: 4,
                    kronfit_permutation_samples: 50,
                },
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_attach, bench_growth_materialization);
criterion_main!(benches);
