//! Ablation benchmarks for the design choices called out in DESIGN.md:
//!
//! * alias-method vs binary-search CDF sampling of empirical distributions
//!   (property generation does one draw per attribute per edge);
//! * the two-stage edge-list preferential attachment vs the naive
//!   degree-weighted vertex selection it replaces (the O(1) vs O(V) trade
//!   PGPBA inherits from Alam et al.);
//! * hash-set vs sort-dedup `distinct()` strategies (PGSK's shuffle step).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use csb_bench::standard_seed_scaled;
use csb_core::kronecker::{generate_edges, kronfit, kronfit_moments, Initiator};
use csb_core::pgsk::simplify;
use csb_core::topo::Topology;
use csb_graph::partition::PartitionStrategy;
use csb_stats::rng::rng_for;
use csb_stats::EmpiricalDistribution;
use rand::Rng;

fn bench_sampling(c: &mut Criterion) {
    // A distribution with a large, skewed support, like real degree data.
    let dist = EmpiricalDistribution::from_weighted((1..=2_000u64).map(|v| (v, 1.0 / v as f64)));
    let mut group = c.benchmark_group("sampling_ablation");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("alias", |b| {
        let mut rng = rng_for(1, 0);
        b.iter(|| (0..10_000).map(|_| dist.sample(&mut rng)).sum::<u64>())
    });
    group.bench_function("cdf_binary_search", |b| {
        let mut rng = rng_for(1, 1);
        b.iter(|| (0..10_000).map(|_| dist.sample_cdf(&mut rng)).sum::<u64>())
    });
    group.finish();
}

fn bench_attachment(c: &mut Criterion) {
    let seed = standard_seed_scaled(0.3);
    let src: Vec<u32> = seed.graph.edge_sources().iter().map(|v| v.0).collect();
    let dst: Vec<u32> = seed.graph.edge_targets().iter().map(|v| v.0).collect();
    let n = seed.graph.vertex_count();
    // Naive preferential attachment: degree-weighted vertex selection by
    // prefix-sum scan — O(V) per pick.
    let degrees: Vec<u64> = {
        let mut d = vec![0u64; n];
        for &s in &src {
            d[s as usize] += 1;
        }
        for &t in &dst {
            d[t as usize] += 1;
        }
        d
    };
    let total_degree: u64 = degrees.iter().sum();

    let mut group = c.benchmark_group("pgpba_attachment_ablation");
    group.throughput(Throughput::Elements(1_000));
    group.bench_function("edge_list_two_stage", |b| {
        let mut rng = rng_for(2, 0);
        b.iter(|| {
            (0..1_000)
                .map(|_| {
                    let e = rng.gen_range(0..src.len());
                    if rng.gen::<bool>() {
                        src[e]
                    } else {
                        dst[e]
                    }
                })
                .map(u64::from)
                .sum::<u64>()
        })
    });
    group.bench_function("naive_degree_scan", |b| {
        let mut rng = rng_for(2, 1);
        b.iter(|| {
            (0..1_000)
                .map(|_| {
                    let mut target = rng.gen_range(0..total_degree);
                    let mut pick = 0u32;
                    for (v, &d) in degrees.iter().enumerate() {
                        if target < d {
                            pick = v as u32;
                            break;
                        }
                        target -= d;
                    }
                    pick
                })
                .map(u64::from)
                .sum::<u64>()
        })
    });
    group.finish();
}

fn bench_distinct(c: &mut Criterion) {
    let edges = generate_edges(&Initiator::classic(), 16, 200_000, 3);
    let mut group = c.benchmark_group("pgsk_distinct_ablation");
    group.throughput(Throughput::Elements(edges.len() as u64));
    group.bench_function("hash_set", |b| {
        b.iter(|| {
            let set: std::collections::HashSet<(u64, u64)> = edges.iter().copied().collect();
            set.len()
        })
    });
    group.bench_function("sort_dedup", |b| {
        b.iter(|| {
            let mut v = edges.clone();
            v.sort_unstable();
            v.dedup();
            v.len()
        })
    });
    group.finish();
}

fn bench_partitioning(c: &mut Criterion) {
    let seed = standard_seed_scaled(0.3);
    let g = &seed.graph;
    let mut group = c.benchmark_group("partition_ablation");
    group.throughput(Throughput::Elements(g.edge_count() as u64));
    for (name, strategy) in [
        ("random_vertex_cut", PartitionStrategy::RandomVertexCut),
        ("edge_partition_1d", PartitionStrategy::EdgePartition1D),
        ("edge_partition_2d", PartitionStrategy::EdgePartition2D),
    ] {
        group.bench_function(name, |b| b.iter(|| strategy.assign(g, 16)));
    }
    group.finish();
}

fn bench_kronfit(c: &mut Criterion) {
    let seed = standard_seed_scaled(0.2);
    let topo = Topology::of_graph(&seed.graph);
    let simple = simplify(&topo);
    let n = topo.num_vertices;
    let mut group = c.benchmark_group("kronfit_ablation");
    group.sample_size(10);
    group.bench_function("mle_10_iters", |b| b.iter(|| kronfit(&simple, n, 10, 200, 1)));
    group.bench_function("moment_matching", |b| b.iter(|| kronfit_moments(&simple, n)));
    group.finish();
}

criterion_group!(
    benches,
    bench_sampling,
    bench_attachment,
    bench_distinct,
    bench_partitioning,
    bench_kronfit
);
criterion_main!(benches);
