//! # csb-bench
//!
//! Shared harness utilities for regenerating the paper's evaluation
//! (Figures 5-12, Table I, and the Fig. 4 detector evaluation). Each
//! experiment is a binary (`src/bin/fig*.rs`, `src/bin/table1*.rs`) that
//! prints the same rows/series the paper plots; `benches/` holds the
//! Criterion micro-benchmarks and ablations.
//!
//! Scale: harnesses run the real generators at laptop scale (the
//! `CSB_SCALE` environment variable multiplies the default workload) and use
//! the calibrated simulated cluster for paper-scale cluster axes, as
//! documented in DESIGN.md.
//!
//! ## `BENCH_materialize.json` schema
//!
//! One object per run, written by `bench_materialize` through the shared
//! `csb-obs` JSON writer:
//!
//! ```text
//! { "bench":"materialize", "status":"measured", "scale":F,
//!   "threads":N, "section_threads": { section: N, ... }, "os":S,
//!   "git_rev":S,
//!   "pgpba":PhaseTimings, "pgsk":PhaseTimings,
//!   "attach_edges":N, "attach_serial_secs":F, "attach_parallel_secs":F,
//!   "attach_speedup":F,
//!   "store_shards":N, "store_codec":S, "store_write_edges":N,
//!   "store_write_secs":F, "store_write_edges_per_sec":F,
//!   "peak_rss_bytes":N, "store_enc_bytes_saved":N,
//!   "spans": { name: {"count":N, "total_micros":N}, ... } }
//! ```
//!
//! The `store_*` fields time the same attach stream materialized straight
//! into a sharded columnar-compressed store (one writer worker per shard).
//! `peak_rss_bytes` is the largest `VmRSS` the background [`csb_obs::Sampler`]
//! observed over the whole harness (0 on procfs-less platforms), and
//! `store_enc_bytes_saved` is the `store.enc_bytes_saved` counter — raw
//! minus encoded payload bytes across every columnar chunk written.
//!
//! `PhaseTimings` is [`csb_core::PhaseTimings::to_json`]; `spans` aggregates
//! the csb-obs span stream per name. Provenance fields are best-effort:
//! `threads` is the pool width the harness configured
//! ([`configured_pool_width`]), `section_threads` is the width rayon
//! actually reported *inside* each measured section (captured by
//! [`with_pool`], asserted equal to `threads` for parallel sections), `os`
//! is `std::env::consts::OS`, and `git_rev` comes from [`git_rev`]: the
//! `GIT_REV` environment variable (set by CI), then `git rev-parse HEAD`,
//! then reading `.git/HEAD` directly (walking up from the working
//! directory, the crate directory, and the executable) when no git binary
//! is available; `"unknown"` remains the placeholder when no provenance
//! source works at all.
//!
//! ## `BENCH_veracity.json` schema
//!
//! One object per run, written by `bench_veracity` (the in-memory vs
//! out-of-core veracity trajectory; `--smoke` emits `"status":"smoke"` at a
//! reduced workload):
//!
//! ```text
//! { "bench":"veracity", "status":"measured"|"smoke", "scale":F,
//!   "threads":N, "section_threads": { "mem":N, "ooc":N },
//!   "store_shards":N, "store_codec":S, "os":S, "git_rev":S,
//!   "seed_vertices":N, "seed_edges":N, "synth_vertices":N, "synth_edges":N,
//!   "mem_secs":F, "ooc_secs":F,
//!   "metrics": { name: {"mem_secs":F, "ooc_secs":F, "score":F}, ... },
//!   "degree":F, "pagerank":F,
//!   "peak_scratch_bytes":N, "scratch_bound_bytes":N, "ooc_bytes_read":N,
//!   "peak_rss_bytes":N, "store_enc_bytes_saved":N,
//!   "spans": { name: {"count":N, "total_micros":N}, ... } }
//! ```
//!
//! `peak_rss_bytes` and `store_enc_bytes_saved` are as in
//! `BENCH_materialize.json`: the sampler's RSS high-water mark and the
//! columnar encoder's total payload savings for the synthetic shard set.
//!
//! `metrics` has one entry per [`csb_core::Metric`] (the full Veracity 2.0
//! suite, in `Metric::ALL` order): the wall-clock seconds of a
//! single-metric `VeracityJob` run per path and the score, printed with
//! `{:e}` (shortest round-trip) so parsing recovers the exact f64. Each
//! score is asserted bit-identical between the in-memory and out-of-core
//! paths before the file is written. `mem_secs`/`ooc_secs` are the sums
//! over the per-metric sections, and `degree`/`pagerank` duplicate those
//! two scores at top level so pre-2.0 consumers keep parsing. The per-path
//! timings bracket the whole single-metric job, so the out-of-core numbers
//! include re-opening the stores per metric.
//!
//! `peak_scratch_bytes` is the `ooc.peak_scratch_bytes` gauge high-water
//! mark over the *degree and pagerank* sections; the harness asserts it
//! stays under `scratch_bound_bytes`, the O(vertices + chunk) ceiling of
//! the streaming distribution kernels. (Clustering legitimately holds the
//! simplified adjacency — O(V + E) — and the spectral sketch its iteration
//! vectors, so those sections are outside the bound.)
//! `store_shards`/`store_codec` describe the synthetic store's layout (the
//! seed store is always a v1 single file, so each run also exercises the
//! v1-compat read path).
//!
//! ## `BENCH_serve.json` schema
//!
//! One object per run, written by `bench_serve` — the csb-serve load
//! benchmark: an in-process daemon with N worker slots under hundreds of
//! concurrent protocol clients, each submitting small generate jobs and
//! long-polling for the result (`--smoke` shrinks the fleet for CI):
//!
//! ```text
//! { "bench":"serve", "status":"measured"|"smoke", "os":S, "git_rev":S,
//!   "workers":N, "clients":N, "jobs_per_client":N, "job_size_edges":N,
//!   "jobs_submitted":N, "jobs_done":N, "jobs_failed":N, "jobs_rejected":N,
//!   "lost":N, "duplicates":N,
//!   "wall_secs":F, "jobs_per_sec":F,
//!   "p50_ms":F, "p90_ms":F, "p99_ms":F, "max_ms":F, "mean_ms":F,
//!   "max_queue_depth":N, "rejection_rate":F }
//! ```
//!
//! Latencies are client-side submit-to-done (the long-poll `result` reply),
//! so they include queueing. `lost` is submitted-minus-accounted (must be
//! 0), `duplicates` counts job ids or completion sequence numbers seen
//! twice (must be 0) — together they are the zero-lost/zero-duplicated
//! acceptance check. `max_queue_depth` is the deepest scheduler queue a
//! 20 ms poller observed, and `rejection_rate` is rejected over attempted
//! submissions.

use csb_core::analysis::SeedAnalysis;
use csb_core::seed::{seed_from_trace, SeedBundle};
use csb_core::topo::{Topology, SYNTHETIC_IP_BASE};
use csb_core::PropertyModel;
use csb_graph::graph::VertexId;
use csb_graph::NetflowGraph;
use csb_net::traffic::sim::{TrafficSim, TrafficSimConfig};
use csb_stats::rng::rng_for;
use std::path::Path;

/// Reads the workload multiplier from `CSB_SCALE` (default 1.0).
pub fn scale() -> f64 {
    std::env::var("CSB_SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(1.0)
}

/// The pool width the bench harnesses configure for their measured
/// sections: the `CSB_BENCH_THREADS` environment variable when set to a
/// positive integer, else the host parallelism. This is the width the
/// JSON `threads` provenance field must agree with — reading the *default*
/// rayon width at JSON-write time instead is exactly the bug that stamped
/// `threads: 1` on multi-worker runs.
pub fn configured_pool_width() -> usize {
    std::env::var("CSB_BENCH_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n: &usize| n > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
}

/// Runs one measured section inside a rayon pool of `width` threads and
/// returns `(result, observed)`, where `observed` is the pool width rayon
/// actually reported *inside* the section — the value bench JSONs must
/// record per section, so the provenance reflects the pool the section ran
/// under rather than whatever pool happened to be current when the JSON was
/// assembled.
pub fn with_pool<T>(width: usize, f: impl FnOnce() -> T) -> (T, usize) {
    let pool =
        rayon::ThreadPoolBuilder::new().num_threads(width.max(1)).build().expect("thread pool");
    let mut observed = 0;
    let out = pool.install(|| {
        observed = rayon::current_num_threads();
        f()
    });
    (out, observed)
}

/// Builds the standard seed used across the harnesses: a simulated
/// enterprise trace standing in for the paper's SMIA 2011 capture.
/// At scale 1.0 it yields a seed of roughly 4-6 thousand edges.
pub fn standard_seed() -> SeedBundle {
    standard_seed_scaled(scale())
}

/// The standard seed at an explicit scale factor.
///
/// When the `CSB_SEED_STORE` environment variable names a directory, the
/// simulated seed graph is cached there as a `csb-store` file (see
/// [`seed_via_store_cache`]), so repeated harness runs at the same scale
/// skip the traffic simulation and flow assembly entirely.
pub fn standard_seed_scaled(scale: f64) -> SeedBundle {
    match std::env::var("CSB_SEED_STORE") {
        Ok(dir) if !dir.is_empty() => seed_via_store_cache(Path::new(&dir), scale),
        _ => simulate_seed(scale),
    }
}

/// The uncached simulation behind [`standard_seed_scaled`].
fn simulate_seed(scale: f64) -> SeedBundle {
    let cfg = TrafficSimConfig {
        duration_secs: 60.0 * scale.max(0.05),
        sessions_per_sec: 60.0,
        seed: 0xC5B_5EED,
        ..TrafficSimConfig::default()
    };
    seed_from_trace(&TrafficSim::new(cfg).generate())
}

/// Loads the standard seed for `scale` from a `csb-store` cache file in
/// `dir`, simulating and saving it on a miss. The analysis is recomputed
/// from the loaded graph (it is derived data; only the graph is persisted).
pub fn seed_via_store_cache(dir: &Path, scale: f64) -> SeedBundle {
    let file = dir.join(format!("csb-seed-scale-{scale}.csbstore"));
    if let Ok(graph) = csb_store::load_graph(&file) {
        return SeedBundle { analysis: SeedAnalysis::of(&graph), graph };
    }
    let seed = simulate_seed(scale);
    std::fs::create_dir_all(dir).ok();
    if let Err(e) = csb_store::save_graph(&file, &seed.graph) {
        eprintln!("warning: could not cache seed graph at {}: {e}", file.display());
    }
    seed
}

/// Best-effort git revision for provenance stamps, in order of preference:
/// the `GIT_REV` environment variable (set by CI), `git rev-parse HEAD`, and
/// finally reading `.git/HEAD` (and the ref or packed-refs entry it points
/// to) directly — for containers without a git binary. `"unknown"` only when
/// every source fails.
///
/// The `.git` lookup walks up from *three* anchors — the working directory,
/// this crate's source directory, and the running executable — because bench
/// binaries are routinely invoked from outside the checkout (CI stages,
/// `cargo run` wrappers with a scratch cwd). The working-directory-only walk
/// used to stamp `git_rev: "unknown"` in exactly those runs.
pub fn git_rev() -> String {
    if let Ok(rev) = std::env::var("GIT_REV") {
        let rev = rev.trim().to_string();
        if !rev.is_empty() {
            return rev;
        }
    }
    if let Ok(out) = std::process::Command::new("git").args(["rev-parse", "HEAD"]).output() {
        if out.status.success() {
            if let Ok(s) = String::from_utf8(out.stdout) {
                let s = s.trim();
                if !s.is_empty() {
                    return s.to_string();
                }
            }
        }
    }
    let anchors = [
        std::env::current_dir().ok(),
        Some(Path::new(env!("CARGO_MANIFEST_DIR")).to_path_buf()),
        std::env::current_exe().ok().and_then(|p| p.parent().map(Path::to_path_buf)),
    ];
    for start in anchors.into_iter().flatten() {
        if let Some(rev) = rev_from_ancestors(&start) {
            return rev;
        }
    }
    "unknown".to_string()
}

/// Walks up from `start` to the filesystem root looking for a `.git`
/// directory, and resolves HEAD inside the first one found.
fn rev_from_ancestors(start: &Path) -> Option<String> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let git = d.join(".git");
        if git.is_dir() {
            return rev_from_git_dir(&git);
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Resolves HEAD inside a `.git` directory without invoking git: follows a
/// `ref: ` indirection to the loose ref file or a `packed-refs` entry, and
/// accepts a detached-HEAD hash as-is.
fn rev_from_git_dir(git: &Path) -> Option<String> {
    let head = std::fs::read_to_string(git.join("HEAD")).ok()?;
    let head = head.trim();
    let Some(refname) = head.strip_prefix("ref: ") else {
        return (!head.is_empty()).then(|| head.to_string());
    };
    if let Ok(s) = std::fs::read_to_string(git.join(refname)) {
        let s = s.trim();
        if !s.is_empty() {
            return Some(s.to_string());
        }
    }
    let packed = std::fs::read_to_string(git.join("packed-refs")).ok()?;
    for line in packed.lines() {
        if let Some((hash, name)) = line.split_once(' ') {
            if name == refname && !hash.starts_with('#') && !hash.starts_with('^') {
                return Some(hash.to_string());
            }
        }
    }
    None
}

/// Edges per RNG stream in [`attach_serial_reference`]; matches the parallel
/// implementation in `csb_core::topo` so both sample identical streams.
const ATTACH_CHUNK: usize = 8192;

/// The pre-refactor attribute-attachment path: serial per-chunk property
/// sampling followed by per-edge `add_edge` calls. Kept as the baseline the
/// `materialize` bench and the `bench_materialize` harness compare
/// `attach_properties` against; for all-synthetic vertex addresses the
/// output is bit-identical to the parallel path.
pub fn attach_serial_reference(topo: &Topology, model: &PropertyModel, seed: u64) -> NetflowGraph {
    let edge_count = topo.edge_count();
    let mut g = NetflowGraph::with_capacity(topo.num_vertices as usize, edge_count);
    for i in 0..topo.num_vertices {
        g.add_vertex(SYNTHETIC_IP_BASE + i);
    }
    let mut props = Vec::with_capacity(edge_count);
    for chunk_idx in 0..edge_count.div_ceil(ATTACH_CHUNK) {
        let mut rng = rng_for(seed, 0x9_0000_0000 + chunk_idx as u64);
        let len = ATTACH_CHUNK.min(edge_count - chunk_idx * ATTACH_CHUNK);
        for _ in 0..len {
            props.push(model.sample(&mut rng));
        }
    }
    for ((&s, &d), p) in topo.src.iter().zip(topo.dst.iter()).zip(props) {
        g.add_edge(VertexId(s), VertexId(d), p);
    }
    g
}

/// A plain-text aligned table writer for harness output.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table { headers: headers.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends one row (must match the header count).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .zip(widths.iter())
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>().join("  "));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Scientific-notation formatting used across the harnesses.
pub fn sci(x: f64) -> String {
    format!("{x:.3e}")
}

/// Engineering formatting for large counts.
pub fn eng(x: f64) -> String {
    if x >= 1e9 {
        format!("{:.2}B", x / 1e9)
    } else if x >= 1e6 {
        format!("{:.2}M", x / 1e6)
    } else if x >= 1e3 {
        format!("{:.2}k", x / 1e3)
    } else {
        format!("{x:.0}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_seed_is_reasonable() {
        let seed = standard_seed_scaled(0.2);
        assert!(seed.edge_count() > 200, "seed too small: {}", seed.edge_count());
        assert!(seed.graph.vertex_count() > 50);
    }

    #[test]
    fn serial_reference_matches_parallel_attach() {
        let seed = standard_seed_scaled(0.05);
        let topo = Topology::of_graph(&seed.graph);
        let serial = attach_serial_reference(&topo, &seed.analysis.properties, 9);
        let parallel = csb_core::topo::attach_properties(&topo, &seed.analysis.properties, &[], 9);
        assert_eq!(serial.vertex_data(), parallel.vertex_data());
        assert_eq!(serial.edge_count(), parallel.edge_count());
        for (a, b) in serial.edges().zip(parallel.edges()) {
            assert_eq!(a.1, b.1);
            assert_eq!(a.2, b.2);
            assert_eq!(a.3, b.3);
        }
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["a", "bbbb"]);
        t.row(&["1".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("a  bbbb"));
        assert!(s.lines().count() == 3);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_rows_rejected() {
        let mut t = Table::new(&["a"]);
        t.row(&["1".into(), "2".into()]);
    }

    #[test]
    fn rev_from_git_dir_reads_loose_and_packed_refs() {
        let dir = std::env::temp_dir().join(format!("csb-bench-git-{}", std::process::id()));
        let git = dir.join(".git");
        std::fs::create_dir_all(git.join("refs/heads")).expect("mkdir");

        // Loose ref.
        std::fs::write(git.join("HEAD"), "ref: refs/heads/main\n").expect("head");
        std::fs::write(git.join("refs/heads/main"), "abc123\n").expect("ref");
        assert_eq!(rev_from_git_dir(&git).as_deref(), Some("abc123"));

        // Packed ref only.
        std::fs::remove_file(git.join("refs/heads/main")).expect("rm");
        std::fs::write(
            git.join("packed-refs"),
            "# pack-refs with: peeled fully-peeled sorted\ndef456 refs/heads/main\n",
        )
        .expect("packed");
        assert_eq!(rev_from_git_dir(&git).as_deref(), Some("def456"));

        // Detached HEAD.
        std::fs::write(git.join("HEAD"), "0123abcd\n").expect("head");
        assert_eq!(rev_from_git_dir(&git).as_deref(), Some("0123abcd"));

        // Unresolvable ref.
        std::fs::write(git.join("HEAD"), "ref: refs/heads/gone\n").expect("head");
        assert_eq!(rev_from_git_dir(&git), None);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn git_rev_resolves_in_this_repository() {
        // This repo has a real .git; whichever source wins, the result must
        // be a hex hash, not the placeholder.
        let rev = git_rev();
        assert_ne!(rev, "unknown");
        assert!(rev.len() >= 7 && rev.chars().all(|c| c.is_ascii_hexdigit()), "got {rev:?}");
    }

    #[test]
    fn rev_resolves_from_a_subdirectory() {
        // Regression: the `.git` walk used to start only at the working
        // directory, so a bench binary launched from outside the checkout
        // stamped "unknown". The walk must find the repo from any directory
        // *below* it, however deep.
        let dir = std::env::temp_dir().join(format!("csb-bench-anchor-{}", std::process::id()));
        let git = dir.join(".git");
        std::fs::create_dir_all(&git).expect("mkdir .git");
        std::fs::write(git.join("HEAD"), "feedface01\n").expect("head");
        let deep = dir.join("crates").join("bench").join("src").join("bin");
        std::fs::create_dir_all(&deep).expect("mkdir deep");
        assert_eq!(rev_from_ancestors(&deep).as_deref(), Some("feedface01"));
        // And from the repo root itself.
        assert_eq!(rev_from_ancestors(&dir).as_deref(), Some("feedface01"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn git_rev_anchors_on_the_crate_directory() {
        // The crate-dir anchor alone must resolve this repository's HEAD —
        // this is the path a bench binary takes when its working directory
        // is outside the checkout and no git binary answers.
        let rev = rev_from_ancestors(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("crate anchor");
        assert!(rev.len() >= 7 && rev.chars().all(|c| c.is_ascii_hexdigit()), "got {rev:?}");
    }

    #[test]
    fn with_pool_reports_the_configured_width() {
        let (sum, observed) = with_pool(3, || (1..=4).sum::<i32>());
        assert_eq!(sum, 10);
        assert_eq!(observed, 3, "section must observe the pool it was given");
        // Zero is clamped to a one-thread pool, never a zero-width one.
        let ((), observed) = with_pool(0, || ());
        assert_eq!(observed, 1);
    }

    #[test]
    fn configured_pool_width_is_positive() {
        assert!(configured_pool_width() >= 1);
    }

    #[test]
    fn seed_store_cache_round_trips() {
        let dir = std::env::temp_dir().join(format!("csb-bench-cache-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let first = seed_via_store_cache(&dir, 0.05);
        assert!(dir.read_dir().expect("cache dir").count() > 0, "cache file written");
        let second = seed_via_store_cache(&dir, 0.05);
        assert_eq!(first.graph.vertex_data(), second.graph.vertex_data());
        assert_eq!(first.graph.edge_sources(), second.graph.edge_sources());
        assert_eq!(first.graph.edge_data(), second.graph.edge_data());
        // The analysis recomputed from the cached graph matches too.
        assert_eq!(
            first.analysis.out_degree.mean(),
            second.analysis.out_degree.mean(),
            "derived analysis must be identical"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(eng(1_500.0), "1.50k");
        assert_eq!(eng(2_000_000.0), "2.00M");
        assert_eq!(eng(3_100_000_000.0), "3.10B");
        assert_eq!(eng(12.0), "12");
        assert!(sci(0.000123).starts_with("1.230e-4"));
    }
}
