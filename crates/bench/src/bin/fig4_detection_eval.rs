//! Figure 4 evaluation: run the Section IV detection flow over benign
//! traffic with injected attacks of every kind and report per-kind
//! precision / recall against ground truth.

use csb_bench::Table;
use csb_ids::{detect, evaluate, train_thresholds};
use csb_net::assembler::FlowAssembler;
use csb_net::packet::ip;
use csb_net::trace::AttackKind;
use csb_net::traffic::attacks::AttackInjector;
use csb_net::traffic::sim::{TrafficSim, TrafficSimConfig};

fn main() {
    println!("Fig. 4 detection-flow evaluation\n");

    // Benign background: train thresholds on a separate benign capture.
    let train_trace = TrafficSim::new(TrafficSimConfig {
        duration_secs: 60.0,
        sessions_per_sec: 30.0,
        seed: 100,
        ..TrafficSimConfig::default()
    })
    .generate();
    let thresholds = train_thresholds(&FlowAssembler::assemble(&train_trace.packets));

    // Test capture: fresh benign traffic + one attack of each kind.
    let sim = TrafficSim::new(TrafficSimConfig {
        duration_secs: 60.0,
        sessions_per_sec: 30.0,
        seed: 200,
        ..TrafficSimConfig::default()
    });
    let mut trace = sim.generate();
    let servers = sim.topology().servers().to_vec();
    // One adversary host per attack (source-based statistics stay clean, as
    // they would for unrelated real-world attackers).
    let mut inj = AttackInjector::new(0xA77ACC);
    let attacker = |i: u8| ip(198, 51, 100, 10 + i);
    let bots: Vec<u32> = (0..150).map(|i| ip(198, 51, 101, (i % 250) as u8)).collect();
    let s = 5_000_000u64; // stagger attacks within the capture
    trace.merge(inj.syn_flood(attacker(0), servers[0], 80, s, 3_000_000, 20_000));
    trace.merge(inj.icmp_flood(attacker(1), servers[1], 2 * s, 3_000_000, 30_000));
    trace.merge(inj.udp_flood(attacker(2), servers[2], 3 * s, 3_000_000, 30_000));
    trace.merge(inj.tcp_flood(attacker(3), servers[3], 80, 4 * s, 3_000_000, 30_000));
    trace.merge(inj.ddos(&bots, servers[4], 443, 5 * s, 3_000_000, 150));
    trace.merge(inj.host_scan(attacker(5), servers[5], 6 * s, 3_000_000, 400, 80));
    trace.merge(inj.network_scan(attacker(6), ip(10, 9, 0, 1), 200, 22, 7 * s, 3_000_000));
    trace.sort();

    let flows = FlowAssembler::assemble(&trace.packets);
    let detections = detect(&flows, &thresholds);

    println!("raised alarms:");
    for d in &detections {
        println!("  {:>12} at {}", d.kind.to_string(), csb_net::packet::fmt_ip(d.ip));
    }
    println!();

    let mut t = Table::new(&["attack", "injected", "detected (any kind at its host)", "recall"]);
    for kind in AttackKind::ALL {
        let labels: Vec<_> = trace.labels.iter().filter(|l| l.kind == kind).copied().collect();
        if labels.is_empty() {
            continue;
        }
        let r = evaluate(&detections, &labels);
        t.row(&[
            kind.to_string(),
            labels.len().to_string(),
            r.true_positives.to_string(),
            format!("{:.2}", r.recall()),
        ]);
    }
    let overall = evaluate(&detections, &trace.labels);
    t.print();
    println!(
        "\noverall: {} detections, precision {:.2}, recall {:.2}, F1 {:.2}",
        detections.len(),
        overall.precision(),
        overall.recall(),
        overall.f1()
    );
    println!(
        "\nCaveat (paper Section IV): the approach only detects attacks that\n\
         load the network; thresholds are network-specific and trained."
    );
}
