//! Figure 10: edge-generation throughput vs size on 60 nodes, and the
//! property-generation overhead: ~50% of PGPBA's generation time, ~30% of
//! PGSK's (same absolute cost; PGPBA's base is lower).

use csb_bench::{eng, Table};
use csb_engine::sim::{GenAlgorithm, GenJob};
use csb_engine::{ClusterConfig, CostModel, SimCluster};

const SEED_EDGES: u64 = 1_940_814;

fn main() {
    println!("Figure 10: throughput and property-generation overhead (60 nodes)\n");
    let sim = SimCluster::new(ClusterConfig::shadow_ii(60), CostModel::default());
    let mut t = Table::new(&[
        "edges",
        "PGPBA eps (props)",
        "PGPBA eps (no props)",
        "PGPBA ovh %",
        "PGSK eps (props)",
        "PGSK eps (no props)",
        "PGSK ovh %",
    ]);
    let mut edges = 16_000_000u64;
    while edges <= 20_000_000_000 {
        let run = |alg, props| {
            sim.simulate(&GenJob {
                algorithm: alg,
                edges,
                seed_edges: SEED_EDGES,
                with_properties: props,
            })
        };
        let ba_p = run(GenAlgorithm::Pgpba { fraction: 2.0 }, true);
        let ba_n = run(GenAlgorithm::Pgpba { fraction: 2.0 }, false);
        let sk_p = run(GenAlgorithm::Pgsk, true);
        let sk_n = run(GenAlgorithm::Pgsk, false);
        let ovh = |with: f64, without: f64| (with / without - 1.0) * 100.0;
        t.row(&[
            eng(edges as f64),
            eng(ba_p.throughput_eps),
            eng(ba_n.throughput_eps),
            format!("{:.0}", ovh(ba_p.compute_secs, ba_n.compute_secs)),
            eng(sk_p.throughput_eps),
            eng(sk_n.throughput_eps),
            format!("{:.0}", ovh(sk_p.compute_secs, sk_n.compute_secs)),
        ]);
        edges *= 4;
    }
    t.print();
    println!(
        "\nExpected shape: PGPBA outperforms PGSK in throughput at every size;\n\
         property generation adds ~50% to PGPBA and ~30% to PGSK because the\n\
         attribute sampler costs the same per edge in both (paper Fig. 10)."
    );
}
