//! Figure 8: single-node edge-generation throughput vs
//! `total-executor-cores` (1..=20). The paper's tuning study found the
//! maximum at 12 cores with no benefit beyond (memory-bandwidth
//! saturation); the calibrated cluster model reproduces that plateau.

use csb_bench::{eng, Table};
use csb_engine::sim::{GenAlgorithm, GenJob};
use csb_engine::{ClusterConfig, CostModel, SimCluster};

const SEED_EDGES: u64 = 1_940_814;

fn main() {
    println!("Figure 8: single-node throughput vs executor cores\n");
    let model = CostModel::default();
    let edges = 100_000_000;
    let mut t = Table::new(&["cores", "PGPBA edges/s", "PGSK edges/s"]);
    for cores in 1..=20 {
        let sim = SimCluster::new(ClusterConfig::shadow_ii_single_node(cores), model);
        let ba = sim.simulate(&GenJob {
            algorithm: GenAlgorithm::Pgpba { fraction: 2.0 },
            edges,
            seed_edges: SEED_EDGES,
            with_properties: true,
        });
        let sk = sim.simulate(&GenJob {
            algorithm: GenAlgorithm::Pgsk,
            edges,
            seed_edges: SEED_EDGES,
            with_properties: true,
        });
        t.row(&[cores.to_string(), eng(ba.throughput_eps), eng(sk.throughput_eps)]);
    }
    t.print();
    println!(
        "\nExpected shape: throughput rises with cores and plateaus at 12 of\n\
         the 20 physical cores for both generators (paper Fig. 8)."
    );
}
