//! Figure 9: edge-generation time vs synthetic size (4M .. 20B edges) on 60
//! nodes, PGPBA (fraction = 2) vs PGSK — both linear, PGPBA faster.

use csb_bench::{eng, Table};
use csb_engine::sim::{GenAlgorithm, GenJob};
use csb_engine::{ClusterConfig, CostModel, SimCluster};

const SEED_EDGES: u64 = 1_940_814;

fn main() {
    println!("Figure 9: generation time vs size (60 nodes, fraction = 2)\n");
    let sim = SimCluster::new(ClusterConfig::shadow_ii(60), CostModel::default());
    let mut t = Table::new(&["edges", "PGPBA secs", "PGSK secs"]);
    let mut edges = 4_000_000u64;
    while edges <= 20_000_000_000 {
        let ba = sim.simulate(&GenJob {
            algorithm: GenAlgorithm::Pgpba { fraction: 2.0 },
            edges,
            seed_edges: SEED_EDGES,
            with_properties: true,
        });
        let sk = sim.simulate(&GenJob {
            algorithm: GenAlgorithm::Pgsk,
            edges,
            seed_edges: SEED_EDGES,
            with_properties: true,
        });
        t.row(&[
            eng(edges as f64),
            format!("{:.1}", ba.total_secs),
            format!("{:.1}", sk.total_secs),
        ]);
        edges *= 4;
    }
    t.print();
    println!(
        "\nExpected shape: both curves linear in the edge count once compute\n\
         dominates fixed overhead; PGPBA beats PGSK throughout; 20B edges in\n\
         under an hour (paper Fig. 9 / abstract)."
    );
}
