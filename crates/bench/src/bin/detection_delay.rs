//! Time-to-detection benchmark (extension experiment): the paper motivates
//! graph-IDS benchmarking with "threat detection time". This harness injects
//! SYN floods of varying intensity into benign background traffic, runs the
//! windowed streaming detector, and reports how long each attack survives
//! before its first alarm — as a function of attack rate and window length.

use csb_bench::Table;
use csb_ids::eval::detection_delays;
use csb_ids::{train_thresholds, StreamingDetector};
use csb_net::assembler::FlowAssembler;
use csb_net::packet::ip;
use csb_net::traffic::attacks::AttackInjector;
use csb_net::traffic::sim::{TrafficSim, TrafficSimConfig};

fn main() {
    // Train on a benign capture.
    let train = TrafficSim::new(TrafficSimConfig {
        duration_secs: 40.0,
        sessions_per_sec: 25.0,
        seed: 1,
        ..TrafficSimConfig::default()
    })
    .generate();
    let thresholds = train_thresholds(&FlowAssembler::assemble(&train.packets));

    println!(
        "Time-to-detection: SYN floods of varying rate, windowed streaming\n\
         detection over benign background traffic\n"
    );
    let mut t = Table::new(&["flood pkts/s", "window s", "detected", "delay s"]);
    for &pkts_per_sec in &[500usize, 2_000, 10_000] {
        for &window_secs in &[1u64, 5, 10] {
            // Fresh background + one flood starting at t = 12 s, 8 s long.
            let sim = TrafficSim::new(TrafficSimConfig {
                duration_secs: 40.0,
                sessions_per_sec: 25.0,
                seed: 2 + pkts_per_sec as u64,
                ..TrafficSimConfig::default()
            });
            let mut trace = sim.generate();
            let victim = sim.topology().servers()[0];
            let mut inj = AttackInjector::new(3);
            trace.merge(inj.syn_flood(
                ip(198, 51, 100, 66),
                victim,
                80,
                12_000_000,
                8_000_000,
                pkts_per_sec * 8,
            ));
            trace.sort();

            let mut det = StreamingDetector::new(thresholds, window_secs * 1_000_000);
            for p in &trace.packets {
                det.push(p);
            }
            let alarms = det.finish();
            let delays = detection_delays(&alarms, &trace.labels);
            let d = &delays[0];
            t.row(&[
                pkts_per_sec.to_string(),
                window_secs.to_string(),
                d.delay_micros.is_some().to_string(),
                d.delay_micros
                    .map(|us| format!("{:.1}", us as f64 / 1e6))
                    .unwrap_or_else(|| "-".into()),
            ]);
        }
    }
    t.print();
    println!(
        "\nExpected shape: every flood rate above threshold is caught, and\n\
         the delay is bounded by the streaming window (attack flows export\n\
         on the inactive timeout, so delay ~ 2 windows − offset) — the\n\
         latency/granularity trade a benchmark user tunes with the window\n\
         parameter, exactly the \"threat detection time\" the paper targets."
    );
}
