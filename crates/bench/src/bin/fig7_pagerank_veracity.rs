//! Figure 7: PageRank-veracity score vs synthetic size, same configurations
//! as Figure 6. PGPBA is expected to track the seed's PageRank distribution
//! better than PGSK in all configurations.

use csb_bench::{eng, sci, standard_seed, Table};
use csb_core::{pgpba, pgsk, Metric, PgpbaConfig, PgskConfig, VeracityJob};
use csb_graph::NetflowGraph;

/// The Fig. 7 score: the PageRank metric alone through the 2.0 job API.
fn pagerank_veracity(seed: &NetflowGraph, synth: &NetflowGraph) -> f64 {
    VeracityJob::new()
        .seed_graph(seed)
        .synthetic_graph(synth)
        .metrics([Metric::Pagerank])
        .run()
        .expect("veracity")
        .score("pagerank")
        .expect("pagerank scored")
}

fn main() {
    let seed = standard_seed();
    let e0 = seed.edge_count() as u64;
    println!("Figure 7: PageRank veracity vs size (seed {} edges)\n", eng(e0 as f64));

    let mut t = Table::new(&["generator", "config", "edges", "pagerank veracity"]);

    for mult in [0.0002_f64, 0.01, 0.1, 1.0, 4.0, 16.0] {
        let target = ((e0 as f64 * mult) as u64).max(100);
        let g = pgsk(&seed, &PgskConfig::new(target));
        let v = pagerank_veracity(&seed.graph, &g);
        t.row(&["PGSK".into(), "-".into(), eng(g.edge_count() as f64), sci(v)]);
    }

    for fraction in [0.1, 0.3, 0.6, 0.9] {
        for mult in [2.5_f64, 8.0, 32.0] {
            let target = (e0 as f64 * mult) as u64;
            let g = pgpba(&seed, &PgpbaConfig { desired_size: target, fraction, seed: 7 });
            let v = pagerank_veracity(&seed.graph, &g);
            t.row(&[
                "PGPBA".into(),
                format!("fraction {fraction}"),
                eng(g.edge_count() as f64),
                sci(v),
            ]);
        }
    }
    t.print();
    println!(
        "\nExpected shape: scores decrease with size; PageRank scores sit well\n\
         below the Figure 6 degree scores; PGPBA outperforms PGSK (paper Fig. 7)."
    );
}
