//! Benchmark-workload demonstration (extension experiment): run the
//! node/edge/path/sub-graph query mix — the "typical operations executed in
//! the cyber-security domain" the paper's introduction requires of a
//! benchmark — against synthetic datasets of growing size, measuring query
//! latency scaling. This is the end-to-end use the generated data exists
//! for: quantifying a graph platform's threat-detection query performance.

use csb_bench::{eng, standard_seed, Table};
use csb_core::{pgpba, PgpbaConfig};
use csb_workloads::{run_workload, WorkloadSpec};

fn main() {
    let seed = standard_seed();
    println!(
        "Cyber-security query workload vs dataset size (seed {} edges)\n",
        eng(seed.edge_count() as f64)
    );
    let spec = WorkloadSpec::default();
    let mut t = Table::new(&[
        "dataset",
        "edges",
        "node us",
        "edge us",
        "path us",
        "subgraph us",
        "total qps",
    ]);

    let mut datasets = vec![("seed".to_string(), seed.graph.clone())];
    for mult in [4u64, 16, 64] {
        let g = pgpba(
            &seed,
            &PgpbaConfig { desired_size: seed.edge_count() as u64 * mult, fraction: 0.3, seed: 21 },
        );
        datasets.push((format!("PGPBA x{mult}"), g));
    }

    for (name, g) in &datasets {
        let r = run_workload(g, &spec);
        let mean = |i: usize| format!("{:.1}", r.families[i].latency_micros.mean());
        t.row(&[
            name.clone(),
            eng(g.edge_count() as f64),
            mean(0),
            mean(1),
            mean(2),
            mean(3),
            format!("{:.0}", r.qps()),
        ]);
    }
    t.print();
    println!(
        "\nExpected shape: node-query latency stays ~flat (indexed lookups),\n\
         edge scans and sub-graph patterns grow linearly with dataset size,\n\
         path queries grow with the reachable component — the latency/size\n\
         curves an IDS platform benchmark exists to measure."
    );
}
