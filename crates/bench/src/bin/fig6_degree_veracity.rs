//! Figure 6: degree-veracity score vs synthetic size, for PGSK and PGPBA at
//! fractions 0.1 / 0.3 / 0.6 / 0.9. Scores must decrease as the synthetic
//! graph grows; PGSK can start far below the seed size.

use csb_bench::{eng, sci, standard_seed, Table};
use csb_core::{pgpba, pgsk, Metric, PgpbaConfig, PgskConfig, VeracityJob};
use csb_graph::NetflowGraph;

/// The Fig. 6 score: the degree metric alone through the 2.0 job API.
fn degree_veracity(seed: &NetflowGraph, synth: &NetflowGraph) -> f64 {
    VeracityJob::new()
        .seed_graph(seed)
        .synthetic_graph(synth)
        .metrics([Metric::Degree])
        .run()
        .expect("veracity")
        .score("degree")
        .expect("degree scored")
}

fn main() {
    let seed = standard_seed();
    let e0 = seed.edge_count() as u64;
    println!("Figure 6: degree veracity vs size (seed {} edges)\n", eng(e0 as f64));

    let mut t = Table::new(&["generator", "config", "edges", "degree veracity"]);

    // PGSK starts as low as 100 edges (paper Section V-A).
    for mult in [0.0002_f64, 0.01, 0.1, 1.0, 4.0, 16.0] {
        let target = ((e0 as f64 * mult) as u64).max(100);
        let g = pgsk(&seed, &PgskConfig::new(target));
        let v = degree_veracity(&seed.graph, &g);
        t.row(&["PGSK".into(), "-".into(), eng(g.edge_count() as f64), sci(v)]);
    }

    for fraction in [0.1, 0.3, 0.6, 0.9] {
        for mult in [2.5_f64, 8.0, 32.0] {
            let target = (e0 as f64 * mult) as u64;
            let g = pgpba(&seed, &PgpbaConfig { desired_size: target, fraction, seed: 6 });
            let v = degree_veracity(&seed.graph, &g);
            t.row(&[
                "PGPBA".into(),
                format!("fraction {fraction}"),
                eng(g.edge_count() as f64),
                sci(v),
            ]);
        }
    }
    t.print();
    println!(
        "\nExpected shape: scores decrease monotonically with size for every\n\
         configuration; PGPBA and PGSK are comparable, with small fractions\n\
         rendering the degree distribution slightly better (paper Fig. 6)."
    );
}
