//! Veracity trajectory point: times every Veracity 2.0 metric in-memory
//! against the out-of-core path over sealed store files, checks each score
//! is bit-identical across paths, and records the peak scratch footprint of
//! the streaming distribution kernels — the O(vertices + chunk) bound of
//! ISSUE 5's acceptance criteria.
//!
//! The seed store is written as a v1 single file and the synthetic store as
//! a v2 sharded + columnar-compressed shard set, so every run exercises the
//! v1-compat rule and the format-v2 read path side by side; the scores must
//! be bit-identical across layouts.
//!
//! Writes `BENCH_veracity.json` (schema note in crates/bench/src/lib.rs) and
//! schema-checks its own output. `--smoke` shrinks the workload for CI;
//! `CSB_SCALE` multiplies the default ~1M-edge synthetic graph.

use csb_bench::{configured_pool_width, eng, scale, standard_seed_scaled, with_pool};
use csb_core::{pgpba, Metric, PgpbaConfig, VeracityJob};
use csb_graph::algo::PageRankConfig;
use csb_graph::NetflowGraph;
use csb_obs::json::JsonObject;
use csb_store::sink::CHUNK_RECORDS;
use std::collections::BTreeMap;
use std::time::Instant;

/// Fields every `BENCH_veracity.json` must carry; CI checks the emitted
/// file against this list, so keep it in sync with the schema note in
/// crates/bench/src/lib.rs.
const SCHEMA_FIELDS: [&str; 22] = [
    "bench",
    "status",
    "scale",
    "threads",
    "section_threads",
    "store_shards",
    "store_codec",
    "os",
    "git_rev",
    "seed_vertices",
    "seed_edges",
    "synth_vertices",
    "synth_edges",
    "mem_secs",
    "ooc_secs",
    "metrics",
    "degree",
    "pagerank",
    "peak_scratch_bytes",
    "scratch_bound_bytes",
    "peak_rss_bytes",
    "store_enc_bytes_saved",
];

fn schema_check(json: &str) {
    csb_obs::json::validate_json(json).expect("BENCH_veracity.json is valid JSON");
    for field in SCHEMA_FIELDS {
        assert!(
            json.contains(&format!("\"{field}\":")),
            "BENCH_veracity.json is missing field {field:?}"
        );
    }
    for m in Metric::ALL {
        assert!(
            json.contains(&format!("\"{}\":", m.name())),
            "BENCH_veracity.json is missing metric {:?}",
            m.name()
        );
    }
}

/// One timed metric: wall-clock for each path plus the (bit-identical)
/// score.
struct MetricRow {
    metric: Metric,
    mem_secs: f64,
    ooc_secs: f64,
    score: f64,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = if smoke { 0.05 } else { scale() };
    let target = (1_000_000.0 * scale) as u64;

    csb_obs::reset();
    csb_obs::enable();
    let sampler = csb_obs::Sampler::start(
        csb_obs::recorder::current(),
        std::time::Duration::from_millis(200),
    );
    let peak_scratch = csb_obs::metrics::gauge("ooc.peak_scratch_bytes");
    let ooc_bytes = csb_obs::metrics::counter("ooc.bytes_read");

    let seed = standard_seed_scaled(scale);
    let synth: NetflowGraph =
        pgpba(&seed, &PgpbaConfig { desired_size: target, fraction: 1.0, seed: 7 });
    println!(
        "seed {}v/{}e, synthetic {}v/{}e (target {})",
        eng(seed.graph.vertex_count() as f64),
        eng(seed.graph.edge_count() as f64),
        eng(synth.vertex_count() as f64),
        eng(synth.edge_count() as f64),
        eng(target as f64),
    );

    let dir = std::env::temp_dir().join(format!("csb-bench-veracity-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    // Seed as a v1 single file, synthetic as a v2 sharded + compressed
    // shard set: one run covers both layouts, and the scan path must score
    // them bit-identically.
    let store_shards: usize = 4;
    let store_codec = csb_store::Compression::Columnar;
    let seed_store = dir.join("seed.csbstore");
    let synth_store = dir.join("synth.csbshards");
    csb_store::save_graph(&seed_store, &seed.graph).expect("save seed store");
    csb_store::save_graph_sharded(&synth_store, &synth, store_shards, store_codec)
        .expect("save synth shard set");

    // Each measured section runs inside the pool this harness configures,
    // and records the width rayon reported *inside* the section — reading
    // the default pool width at JSON-write time is the bug that stamped
    // `threads: 1` on multi-worker runs.
    let pool_width = configured_pool_width();
    let pr = PageRankConfig::default();

    let (mem_rows, mem_threads) = with_pool(pool_width, || {
        Metric::ALL
            .iter()
            .map(|&m| {
                let t = Instant::now();
                let report = VeracityJob::new()
                    .seed_graph(&seed.graph)
                    .synthetic_graph(&synth)
                    .metrics([m])
                    .pagerank_config(pr)
                    .run()
                    .expect("in-memory veracity");
                let secs = t.elapsed().as_secs_f64();
                (m, report.score(m.name()).expect("selected metric scored"), secs)
            })
            .collect::<Vec<_>>()
    });

    // The distribution kernels (degree, pagerank, and the MMD metrics that
    // reuse their score vectors) are the ones under the O(vertices + chunk)
    // scratch contract; clustering holds the simplified adjacency
    // (O(V + E)) and the spectral sketch its iteration vectors (O(k * V)),
    // so the bounded peak is captured while only degree/pagerank have run.
    // Metric::ALL orders those two first.
    peak_scratch.set(0);
    let mut bounded_peak = 0u64;
    let (ooc_rows, ooc_threads) = with_pool(pool_width, || {
        Metric::ALL
            .iter()
            .map(|&m| {
                let t = Instant::now();
                let report = VeracityJob::new()
                    .seed_store(&seed_store)
                    .synthetic_store(&synth_store)
                    .metrics([m])
                    .pagerank_config(pr)
                    .run()
                    .expect("out-of-core veracity");
                let secs = t.elapsed().as_secs_f64();
                if matches!(m, Metric::Degree | Metric::Pagerank) {
                    bounded_peak = bounded_peak.max(peak_scratch.get().max(0) as u64);
                }
                (m, report.score(m.name()).expect("selected metric scored"), secs)
            })
            .collect::<Vec<_>>()
    });

    // Provenance guard (hard failure under --smoke and measured runs alike):
    // the recorded thread counts must be the pool the sections actually ran
    // under, not a default read before the pool was configured.
    for (section, observed) in [("mem", mem_threads), ("ooc", ooc_threads)] {
        assert_eq!(
            observed, pool_width,
            "section {section:?} ran at {observed} threads but the harness configured \
             {pool_width} — threads metadata would misreport the run"
        );
    }

    // The conformance contract, enforced per metric at bench scale too.
    let rows: Vec<MetricRow> = mem_rows
        .into_iter()
        .zip(ooc_rows)
        .map(|((m, mem_score, mem_secs), (m2, ooc_score, ooc_secs))| {
            assert_eq!(m, m2, "metric order diverged between sections");
            assert_eq!(
                mem_score.to_bits(),
                ooc_score.to_bits(),
                "{} scores diverged: {mem_score:e} vs {ooc_score:e}",
                m.name()
            );
            MetricRow { metric: m, mem_secs, ooc_secs, score: mem_score }
        })
        .collect();
    let mem_secs: f64 = rows.iter().map(|r| r.mem_secs).sum();
    let ooc_secs: f64 = rows.iter().map(|r| r.ooc_secs).sum();
    let score_of = |name: &str| {
        rows.iter().find(|r| r.metric.name() == name).map(|r| r.score).expect("metric row")
    };

    // The acceptance bound: streaming distribution-veracity scratch is
    // O(vertices + chunk) — three f64/u64 vectors over the larger vertex
    // set plus the scan's per-chunk column buffers, with 2x headroom for
    // allocator slop. Asserted over the degree/pagerank sections only; see
    // the comment above the out-of-core loop.
    let max_vertices = seed.graph.vertex_count().max(synth.vertex_count()) as u64;
    let bound = 2 * (24 * max_vertices + 24 * CHUNK_RECORDS as u64);
    assert!(bounded_peak > 0, "kernels never reported scratch");
    assert!(
        bounded_peak <= bound,
        "peak scratch {bounded_peak} B exceeds O(V + chunk) bound {bound} B"
    );
    println!("metric         score          mem_secs   ooc_secs");
    for r in &rows {
        println!(
            "{:<13} {:>13.6e} {:>9.3} {:>10.3}",
            r.metric.name(),
            r.score,
            r.mem_secs,
            r.ooc_secs
        );
    }
    println!(
        "all {} metrics bit-identical in-memory vs out-of-core; \
         in-memory {mem_secs:.3}s, out-of-core {ooc_secs:.3}s; \
         peak distribution scratch {} B (bound {} B), {} column bytes streamed",
        rows.len(),
        eng(bounded_peak as f64),
        eng(bound as f64),
        eng(ooc_bytes.get() as f64),
    );

    let samples = sampler.stop();
    let peak_rss = csb_obs::sampler::peak_rss_bytes(&samples);
    let enc_saved = csb_obs::snapshot_metrics().counter("store.enc_bytes_saved").unwrap_or(0);
    csb_obs::disable();
    let mut agg: BTreeMap<&'static str, (u64, u64)> = BTreeMap::new();
    for s in csb_obs::flush_spans() {
        let e = agg.entry(s.name).or_insert((0, 0));
        e.0 += 1;
        e.1 += s.dur_micros;
    }
    let mut spans = JsonObject::new();
    for (name, (count, total_micros)) in agg {
        let mut o = JsonObject::new();
        o.u64("count", count).u64("total_micros", total_micros);
        spans.raw(name, &o.finish());
    }

    let git_rev = csb_bench::git_rev();
    let mut section_threads = JsonObject::new();
    section_threads.u64("mem", mem_threads as u64).u64("ooc", ooc_threads as u64);
    let mut metrics = JsonObject::new();
    for r in &rows {
        let mut o = JsonObject::new();
        o.f64("mem_secs", r.mem_secs, 6).f64("ooc_secs", r.ooc_secs, 6);
        // `{:e}` round-trips the exact f64 score.
        o.raw("score", &format!("{:e}", r.score));
        metrics.raw(r.metric.name(), &o.finish());
    }
    let mut root = JsonObject::new();
    root.str("bench", "veracity")
        .str("status", if smoke { "smoke" } else { "measured" })
        .f64("scale", scale, 3)
        .u64("threads", pool_width as u64)
        .raw("section_threads", &section_threads.finish())
        .u64("store_shards", store_shards as u64)
        .str("store_codec", store_codec.name())
        .str("os", std::env::consts::OS)
        .str("git_rev", &git_rev)
        .u64("seed_vertices", seed.graph.vertex_count() as u64)
        .u64("seed_edges", seed.graph.edge_count() as u64)
        .u64("synth_vertices", synth.vertex_count() as u64)
        .u64("synth_edges", synth.edge_count() as u64)
        .f64("mem_secs", mem_secs, 6)
        .f64("ooc_secs", ooc_secs, 6)
        .raw("metrics", &metrics.finish())
        // `{:e}` round-trips the exact f64 scores; degree/pagerank stay as
        // top-level fields so pre-2.0 consumers keep parsing.
        .raw("degree", &format!("{:e}", score_of("degree")))
        .raw("pagerank", &format!("{:e}", score_of("pagerank")))
        .u64("peak_scratch_bytes", bounded_peak)
        .u64("scratch_bound_bytes", bound)
        .u64("ooc_bytes_read", ooc_bytes.get())
        .u64("peak_rss_bytes", peak_rss)
        .u64("store_enc_bytes_saved", enc_saved)
        .raw("spans", &spans.finish());
    let mut json = root.finish();
    json.push('\n');
    schema_check(&json);
    std::fs::write("BENCH_veracity.json", &json).expect("write BENCH_veracity.json");
    println!("wrote BENCH_veracity.json");
    std::fs::remove_dir_all(&dir).ok();
}
