//! Detection-throughput benchmark (extension experiment): the paper's
//! motivation is that "having a clear idea of the performance, in terms of
//! threat detection time, and of the scalability of a graph-based IDS is
//! paramount". This harness uses the suite end-to-end for exactly that:
//! generate synthetic datasets of growing size with PGPBA, replay them as
//! time-ordered flow streams, drive the windowed streaming detector, and
//! measure ingest throughput and wall time — the "time-to-detection"
//! capability the benchmark exists to quantify.

use csb_bench::{eng, standard_seed, Table};
use csb_core::{pgpba, PgpbaConfig};
use csb_ids::{train_thresholds, Thresholds};
use csb_workloads::replay_flows;
use std::time::Instant;

/// Drives the per-window detection pipeline over a flow stream, returning
/// (wall seconds, windows processed, alarms).
fn drive(
    flows: &[csb_net::FlowRecord],
    thresholds: &Thresholds,
    window_micros: u64,
) -> (f64, u64, usize) {
    // The streaming detector consumes packets; flows replayed from a graph
    // are already assembled, so window + detect directly per window.
    let start = Instant::now();
    let mut alarms = 0usize;
    let mut windows = 0u64;
    let mut current: Vec<csb_net::FlowRecord> = Vec::new();
    let mut window_idx = 0u64;
    for f in flows {
        let w = f.first_ts_micros / window_micros;
        if w != window_idx {
            alarms += csb_ids::detect(&current, thresholds).len();
            current.clear();
            windows += 1;
            window_idx = w;
        }
        current.push(*f);
    }
    if !current.is_empty() {
        alarms += csb_ids::detect(&current, thresholds).len();
        windows += 1;
    }
    (start.elapsed().as_secs_f64(), windows, alarms)
}

fn main() {
    let seed = standard_seed();
    // Thresholds trained on the benign seed trace (flows from the seed
    // graph replayed).
    let benign = replay_flows(&seed.graph, 60.0, 1);
    let thresholds = train_thresholds(&benign);

    println!(
        "Streaming-detection throughput vs synthetic dataset size\n\
         (5 s tumbling windows; thresholds trained on the seed)\n"
    );
    let mut t = Table::new(&["dataset", "flows", "windows", "alarms", "wall s", "flows/s"]);
    for mult in [1u64, 4, 16, 64] {
        let g = if mult == 1 {
            seed.graph.clone()
        } else {
            pgpba(
                &seed,
                &PgpbaConfig {
                    desired_size: seed.edge_count() as u64 * mult,
                    fraction: 0.3,
                    seed: 31,
                },
            )
        };
        // Replay over a window proportional to size so flow *rate* is
        // constant across rows.
        let duration = 60.0 * mult as f64;
        let flows = replay_flows(&g, duration, 2);
        let (wall, windows, alarms) = drive(&flows, &thresholds, 5_000_000);
        t.row(&[
            if mult == 1 { "seed".into() } else { format!("PGPBA x{mult}") },
            eng(flows.len() as f64),
            windows.to_string(),
            alarms.to_string(),
            format!("{wall:.3}"),
            eng(flows.len() as f64 / wall),
        ]);
    }
    t.print();
    println!(
        "\nExpected shape: ingest throughput (flows/s) stays roughly constant\n\
         as the dataset grows — windowed detection cost is linear in the\n\
         stream — quantifying the detection-rate capacity of the platform\n\
         under benchmark. Alarm counts grow with the synthetic size: PGPBA's\n\
         preferential attachment amplifies hub fan-in beyond thresholds\n\
         trained on the smaller seed, illustrating the paper's point that\n\
         thresholds are network-specific and need retraining per dataset."
    );
}
