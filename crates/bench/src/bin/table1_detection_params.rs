//! Table I: the anomaly-detection parameters and their thresholds, with
//! values trained on benign simulated traffic (the paper prescribes
//! network-specific training).

use csb_bench::Table;
use csb_ids::{train_thresholds, Thresholds};
use csb_net::assembler::FlowAssembler;
use csb_net::traffic::sim::{TrafficSim, TrafficSimConfig};

const DESCRIPTIONS: [(&str, &str); 10] = [
    ("dip-T", "max normal number of distinct destination IPs with same source IP"),
    ("sip-T", "distinct source IPs (per destination) above which a flood is distributed"),
    ("dp-LT", "minimum normal number of destination ports with same detection IP"),
    ("dp-HT", "maximum normal number of destination ports with same detection IP"),
    ("nf-T", "max normal number of flows with the same detection IP"),
    ("fs-LT", "lowest normal flow size with same detection IP (bytes)"),
    ("fs-HT", "highest normal total flow size with same detection IP (bytes)"),
    ("np-LT", "smallest normal number of packets per flow"),
    ("np-HT", "highest normal total packet count"),
    ("sa-T", "minimum normal N(ACK)/N(SYN) ratio with same destination IP"),
];

fn main() {
    println!("Table I: anomaly-detection parameters (defaults vs trained)\n");
    let trace = TrafficSim::new(TrafficSimConfig {
        duration_secs: 60.0,
        sessions_per_sec: 40.0,
        seed: 0x7AB1E,
        ..TrafficSimConfig::default()
    })
    .generate();
    let flows = FlowAssembler::assemble(&trace.packets);
    let trained = train_thresholds(&flows);
    let defaults = Thresholds::default();

    let mut t = Table::new(&["parameter", "default", "trained", "description"]);
    for (((name, default), (name2, trained)), (name3, desc)) in
        defaults.named().iter().zip(trained.named().iter()).zip(DESCRIPTIONS.iter())
    {
        assert_eq!(name, name2);
        assert_eq!(name, name3);
        t.row(&[
            name.to_string(),
            format!("{default:.1}"),
            format!("{trained:.1}"),
            desc.to_string(),
        ]);
    }
    t.print();
    println!(
        "\nTrained values come from quantiles over {} benign flows\n\
         ({} destination patterns), per the paper's training prescription.",
        flows.len(),
        csb_ids::destination_patterns(&flows).len()
    );
}
