//! Figure 5: degree distributions of the seed vs PGPBA and PGSK synthetic
//! graphs (normalized, log-binned), showing that all three share the same
//! shape while the larger synthetic graphs shift down-left, and that PGSK
//! exhibits extra spikes from Kronecker self-similarity.

use csb_bench::{eng, standard_seed, Table};
use csb_core::{pgpba, pgsk, PgpbaConfig, PgskConfig};
use csb_graph::NetflowGraph;
use csb_stats::LogHistogram;

fn total_degrees(g: &NetflowGraph) -> Vec<u64> {
    g.in_degrees().iter().zip(g.out_degrees().iter()).map(|(a, b)| a + b).collect()
}

/// Log2-binned normalized-degree series: (normalized degree bin center,
/// fraction of vertices).
fn series(g: &NetflowGraph) -> Vec<(f64, f64)> {
    let degrees = total_degrees(g);
    let total: u64 = degrees.iter().sum();
    let mut hist = LogHistogram::base2();
    for &d in &degrees {
        hist.record(d as f64);
    }
    let n = degrees.len() as f64;
    hist.bins()
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c > 0)
        .map(|(i, &c)| (hist.bin_center(i) / total as f64, c as f64 / n))
        .collect()
}

fn main() {
    let seed = standard_seed();
    // The paper grows the ~2M-edge seed to ~1.2-1.3B edges (3 orders of
    // magnitude); we reproduce the ratio at laptop scale.
    let target = seed.edge_count() as u64 * 100;
    println!(
        "Figure 5: degree distribution comparison (seed {} edges; target {} edges)\n",
        eng(seed.edge_count() as f64),
        eng(target as f64)
    );

    let ba = pgpba(&seed, &PgpbaConfig { desired_size: target, fraction: 0.1, seed: 5 });
    let sk = pgsk(&seed, &PgskConfig::new(target));

    for (name, g) in [("seed", &seed.graph), ("PGPBA", &ba), ("PGSK", &sk)] {
        println!(
            "{name}: |V| = {}, |E| = {}",
            eng(g.vertex_count() as f64),
            eng(g.edge_count() as f64)
        );
        let mut t = Table::new(&["normalized degree", "fraction of vertices"]);
        for (x, y) in series(g) {
            t.row(&[format!("{x:.3e}"), format!("{y:.4}")]);
        }
        t.print();
        println!();
    }
    println!(
        "Expected shape: all three series share a heavy-tailed profile; the\n\
         synthetic series sit ~2 orders of magnitude left of the seed due to\n\
         per-graph normalization (paper Fig. 5 commentary)."
    );
}
